package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"tcrowd/internal/tabular"
)

// Server exposes the platform over HTTP — the interface a crowdsourcing
// frontend (or AMT external-HIT iframe) would talk to.
//
//	POST /projects                     {"id", "schema", "rows"}
//	GET  /projects                     -> ["id", ...]
//	GET  /projects/{id}/tasks?worker=u&count=k
//	POST /projects/{id}/answers        {"worker", "row", "column", "label"|"number"}
//	GET  /projects/{id}/estimates      -> inferred truth + worker quality
//	GET  /projects/{id}/stats
type Server struct {
	p   *Platform
	mux *http.ServeMux
}

// NewServer wraps a platform with HTTP handlers.
func NewServer(p *Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /projects", s.createProject)
	s.mux.HandleFunc("GET /projects", s.listProjects)
	s.mux.HandleFunc("GET /projects/{id}/tasks", s.tasks)
	s.mux.HandleFunc("POST /projects/{id}/answers", s.submit)
	s.mux.HandleFunc("GET /projects/{id}/estimates", s.estimates)
	s.mux.HandleFunc("GET /projects/{id}/stats", s.stats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoProject):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicateID), errors.Is(err, ErrAlreadyAnswered):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type createProjectReq struct {
	ID     string         `json:"id"`
	Schema tabular.Schema `json:"schema"`
	Rows   int            `json:"rows"`
	TCrowd bool           `json:"tcrowd_assignment"`
}

func (s *Server) createProject(w http.ResponseWriter, r *http.Request) {
	var req createProjectReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	if req.ID == "" {
		writeErr(w, errors.New("platform: project id required"))
		return
	}
	_, err := s.p.CreateProject(req.ID, req.Schema, ProjectConfig{
		Rows:                req.Rows,
		UseTCrowdAssignment: req.TCrowd,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) listProjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.ProjectIDs())
}

func (s *Server) tasks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, errors.New("platform: worker query parameter required"))
		return
	}
	count := 0
	if c := r.URL.Query().Get("count"); c != "" {
		if _, err := fmt.Sscanf(c, "%d", &count); err != nil {
			writeErr(w, fmt.Errorf("platform: bad count: %w", err))
			return
		}
	}
	tasks, err := s.p.RequestTasks(id, tabular.WorkerID(worker), count)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tasks)
}

type submitReq struct {
	Worker string   `json:"worker"`
	Row    int      `json:"row"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req submitReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	var v tabular.Value
	switch {
	case req.Label != nil:
		j := proj.Table.Schema.ColumnIndex(req.Column)
		if j < 0 {
			writeErr(w, fmt.Errorf("platform: unknown column %q", req.Column))
			return
		}
		idx := -1
		for k, lbl := range proj.Table.Schema.Columns[j].Labels {
			if lbl == *req.Label {
				idx = k
				break
			}
		}
		if idx < 0 {
			writeErr(w, fmt.Errorf("platform: unknown label %q", *req.Label))
			return
		}
		v = tabular.LabelValue(idx)
	case req.Number != nil:
		v = tabular.NumberValue(*req.Number)
	default:
		writeErr(w, errors.New("platform: answer needs label or number"))
		return
	}
	if err := s.p.Submit(id, tabular.WorkerID(req.Worker), req.Row, req.Column, v); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
}

type estimateJSON struct {
	Entity string   `json:"entity"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
}

type estimatesResp struct {
	Estimates     []estimateJSON     `json:"estimates"`
	WorkerQuality map[string]float64 `json:"worker_quality"`
	Iterations    int                `json:"iterations"`
	Converged     bool               `json:"converged"`
}

func (s *Server) estimates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.p.RunInference(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := estimatesResp{
		WorkerQuality: make(map[string]float64, len(res.WorkerQuality)),
		Iterations:    res.Iterations,
		Converged:     res.Converged,
	}
	for u, q := range res.WorkerQuality {
		resp.WorkerQuality[string(u)] = q
	}
	for i := 0; i < proj.Table.NumRows(); i++ {
		for j, col := range proj.Table.Schema.Columns {
			v := res.Estimates[i][j]
			if v.IsNone() {
				continue
			}
			ej := estimateJSON{Entity: proj.Table.Entities[i], Column: col.Name}
			if v.Kind == tabular.Label {
				lbl := col.Labels[v.L]
				ej.Label = &lbl
			} else {
				x := v.X
				ej.Number = &x
			}
			resp.Estimates = append(resp.Estimates, ej)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	st, err := s.p.Stats(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
