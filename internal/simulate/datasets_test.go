package simulate

import (
	"math"
	"testing"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// TestTable6Statistics pins the stand-ins to the published dataset shapes
// (Table 6 of the paper). This is experiment id "table6" of the harness.
func TestTable6Statistics(t *testing.T) {
	tests := []struct {
		name           string
		rows, cols     int
		cells          int
		answersPerTask int
	}{
		{"Celebrity", 174, 7, 1218, 5},
		{"Restaurant", 203, 5, 1015, 4},
		{"Emotion", 100, 7, 700, 10},
	}
	for _, tt := range tests {
		ds, err := StandIn(tt.name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Name != tt.name {
			t.Fatalf("name %q", ds.Name)
		}
		if got := ds.Table.NumRows(); got != tt.rows {
			t.Fatalf("%s rows=%d want %d", tt.name, got, tt.rows)
		}
		if got := ds.Table.NumCols(); got != tt.cols {
			t.Fatalf("%s cols=%d want %d", tt.name, got, tt.cols)
		}
		if got := ds.Table.NumCells(); got != tt.cells {
			t.Fatalf("%s cells=%d want %d", tt.name, got, tt.cells)
		}
		if ds.AnswersPerTask != tt.answersPerTask {
			t.Fatalf("%s multiplicity=%d want %d", tt.name, ds.AnswersPerTask, tt.answersPerTask)
		}
		if err := ds.Table.Validate(); err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if len(ds.Alpha) != tt.rows || len(ds.Beta) != tt.cols || len(ds.ContScale) != tt.cols {
			t.Fatalf("%s: planted parameter arity", tt.name)
		}
	}
}

func TestStandInUnknown(t *testing.T) {
	if _, err := StandIn("Bogus", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if got := StandInNames(); len(got) != 3 || got[0] != "Celebrity" {
		t.Fatalf("StandInNames=%v", got)
	}
}

func TestStandInsDeterministic(t *testing.T) {
	a := Celebrity(7)
	b := Celebrity(7)
	for i := 0; i < a.Table.NumRows(); i++ {
		for j := 0; j < a.Table.NumCols(); j++ {
			if !a.Table.Truth[i][j].Equal(b.Table.Truth[i][j]) {
				t.Fatal("same seed must give same truth")
			}
		}
	}
	c := Celebrity(8)
	same := true
	for i := 0; i < a.Table.NumRows() && same; i++ {
		for j := 0; j < a.Table.NumCols(); j++ {
			if !a.Table.Truth[i][j].Equal(c.Table.Truth[i][j]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestEmotionAllContinuous(t *testing.T) {
	ds := Emotion(3)
	for _, c := range ds.Table.Schema.Columns {
		if c.Type != tabular.Continuous {
			t.Fatal("Emotion must be all-continuous")
		}
	}
	// Valence spans negatives.
	neg := false
	for i := 0; i < ds.Table.NumRows(); i++ {
		if ds.Table.Truth[i][6].X < 0 {
			neg = true
			break
		}
	}
	if !neg {
		t.Fatal("valence never negative across 100 rows is implausible")
	}
}

func TestRestaurantRowErrorCorrelation(t *testing.T) {
	// The premise of Sec. 5.2/Fig. 6: errors on StartTarget and EndTarget
	// correlate within a worker-row because row confusion degrades both.
	ds := Restaurant(5)
	cr := NewCrowd(ds, 6)
	log := cr.FixedAssignment(4)

	var startErr, endErr []float64
	for i := 0; i < ds.Table.NumRows(); i++ {
		for _, a := range log.ByCell(tabular.Cell{Row: i, Col: 3}) {
			end, ok := log.WorkerAnswerIn(a.Worker, tabular.Cell{Row: i, Col: 4})
			if !ok {
				continue
			}
			startErr = append(startErr, math.Abs(a.Value.X-ds.Table.Truth[i][3].X))
			endErr = append(endErr, math.Abs(end.Value.X-ds.Table.Truth[i][4].X))
		}
	}
	if len(startErr) < 100 {
		t.Fatalf("too few paired errors: %d", len(startErr))
	}
	r := stats.Pearson(startErr, endErr)
	if r < 0.15 {
		t.Fatalf("start/end error correlation too weak: r=%v", r)
	}
}

func TestCelebrityWorkerQualityConsistentAcrossTypes(t *testing.T) {
	// Fig. 3's premise: a worker's quality is consistent across categorical
	// and continuous attributes. In the simulator both are driven by the
	// same phi, so per-worker categorical error rate and continuous error
	// std must correlate positively.
	ds := Celebrity(9)
	cr := NewCrowd(ds, 10)
	log := cr.FixedAssignment(5)

	var catErr, contErr []float64
	for _, u := range log.Workers() {
		wrong, total := 0, 0
		var errs []float64
		for _, a := range log.ByWorker(u) {
			truth := ds.Table.TruthAt(a.Cell)
			switch ds.Table.Schema.Columns[a.Cell.Col].Type {
			case tabular.Categorical:
				total++
				if !a.Value.Equal(truth) {
					wrong++
				}
			case tabular.Continuous:
				errs = append(errs, (a.Value.X-truth.X)/ds.ContScale[a.Cell.Col])
			}
		}
		if total == 0 || len(errs) == 0 {
			continue
		}
		catErr = append(catErr, float64(wrong)/float64(total))
		contErr = append(contErr, stats.StdDev(errs))
	}
	if len(catErr) < 20 {
		t.Fatalf("too few workers with both datatypes: %d", len(catErr))
	}
	r := stats.Pearson(catErr, contErr)
	if r < 0.4 {
		t.Fatalf("cross-datatype quality correlation too weak: r=%v", r)
	}
}
