package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic pins that placement is a pure function of the
// node set and key — two independently built rings agree on every key,
// whatever order the nodes were listed in.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2", "n2"}, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("project-%d", i)
		if got, want := b.Locate(key), a.Locate(key); got != want {
			t.Fatalf("Locate(%q) = %q on reordered ring, %q on original", key, got, want)
		}
	}
}

// TestRingBalance checks ownership uniformity: with the default vnode
// density no node of three should own more than half of 3000 keys (raw
// FNV without the finalizer mix skews far worse than this).
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"node-a", "node-b", "node-c"}, 0)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Locate(fmt.Sprintf("project-%d", i))]++
	}
	for _, n := range r.Nodes() {
		if counts[n] == 0 {
			t.Fatalf("node %s owns no keys", n)
		}
		if counts[n] > 1500 {
			t.Fatalf("node %s owns %d/3000 keys — ring badly skewed", n, counts[n])
		}
	}
}

// TestRingStability pins the consistent-hashing contract the cluster
// layer's handoff depends on: adding one node to three moves only keys
// that now belong to the NEW node — no key moves between surviving
// nodes, so restarting with a changed peer list transfers only the
// moved projects.
func TestRingStability(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("project-%d", i)
		was, is := before.Locate(key), after.Locate(key)
		if was == is {
			continue
		}
		moved++
		if is != "n4" {
			t.Fatalf("key %q moved %s -> %s: only moves to the new node are allowed", key, was, is)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node — ring ignores membership")
	}
	if moved > 2000/2 {
		t.Fatalf("%d/2000 keys moved adding one node to three — expected ~1/4", moved)
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	if got := NewRing(nil, 0).Locate("x"); got != "" {
		t.Fatalf("empty ring located %q", got)
	}
	one := NewRing([]string{"solo"}, 4)
	for i := 0; i < 10; i++ {
		if got := one.Locate(fmt.Sprintf("k%d", i)); got != "solo" {
			t.Fatalf("single-node ring located %q", got)
		}
	}
}
