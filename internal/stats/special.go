package stats

import "math"

// This file implements the special functions the paper's math depends on:
// stable logarithms of the Gauss error function (worker quality
// q = erf(eps/sqrt(2*alpha*beta*phi)) appears inside log-likelihoods), the
// regularized incomplete gamma function, and quantiles of the normal and
// chi-square distributions (CATD weights workers by chi-square quantiles).

// LogErf returns ln(erf(x)) for x > 0, stable for both tiny and large x.
// For large x, erf(x) rounds to 1 and the naive log loses all precision;
// we switch to log1p(-erfc(x)).
func LogErf(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	e := math.Erf(x)
	if e < 0.5 {
		return math.Log(e)
	}
	return math.Log1p(-math.Erfc(x))
}

// LogErfc returns ln(erfc(x)) = ln(1 - erf(x)), stable for large x where
// erfc underflows. For x > 20 it uses the asymptotic expansion
// erfc(x) ~ exp(-x^2)/(x*sqrt(pi)) * (1 - 1/(2x^2) + 3/(4x^4)).
func LogErfc(x float64) float64 {
	if x < 20 {
		e := math.Erfc(x)
		if e > 0 {
			return math.Log(e)
		}
	}
	if x <= 0 {
		// erfc in [1,2] here; plain log is exact enough.
		return math.Log(math.Erfc(x))
	}
	ix2 := 1 / (x * x)
	series := 1 - 0.5*ix2 + 0.75*ix2*ix2
	return -x*x - math.Log(x*math.Sqrt(math.Pi)) + math.Log(series)
}

// DErfDx returns d/dx erf(x) = 2/sqrt(pi) * exp(-x^2).
func DErfDx(x float64) float64 {
	return 2 / math.SqrtPi * math.Exp(-x*x)
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// using the inverse error function. It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// GammaIncLower returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x)/Gamma(a) for a > 0, x >= 0.
//
// Numerical Recipes style: series expansion for x < a+1, continued fraction
// for x >= a+1.
func GammaIncLower(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaIncUpper returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncUpper(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*Eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by its continued fraction
// (modified Lentz), valid for x >= a+1.
func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < Eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for X ~ chi-square with k degrees of
// freedom.
func ChiSquareCDF(x float64, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncLower(k/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of the chi-square distribution
// with k > 0 degrees of freedom, computed by monotone bisection refined with
// Newton steps on the regularized incomplete gamma function. CATD uses
// chi-square quantiles to upper-bound worker reliability on sparse data.
func ChiSquareQuantile(p, k float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 || k <= 0 {
		panic("stats: ChiSquareQuantile requires 0 < p < 1 and k > 0")
	}
	// Wilson-Hilferty starting point.
	z := NormalQuantile(p)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	x := k * t * t * t
	if x <= 0 {
		x = 1e-8
	}
	lo, hi := 0.0, math.Max(4*x, 4*k+40)
	for ChiSquareCDF(hi, k) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		f := ChiSquareCDF(x, k) - p
		if math.Abs(f) < 1e-12 {
			break
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := chiSquarePDF(x, k)
		if pdf > 1e-300 {
			nx := x - f/pdf
			if nx > lo && nx < hi {
				x = nx
				continue
			}
		}
		x = 0.5 * (lo + hi)
	}
	return x
}

func chiSquarePDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(k / 2)
	return math.Exp((k/2-1)*math.Log(x) - x/2 - k/2*math.Ln2 - lg)
}
