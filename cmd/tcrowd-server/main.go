// Command tcrowd-server runs the AMT-like crowdsourcing platform over HTTP
// (the system architecture of the paper's Fig. 1), serving many projects
// from one process through a sharded inference scheduler.
//
// Usage:
//
//	tcrowd-server -addr :8080
//	tcrowd-server -wal-dir ./wal                     # durable: ack = fsynced
//	tcrowd-server -wal-dir ./wal -fsync interval     # bounded-loss durability
//	tcrowd-server -addr :8080 -state platform.json   # import/export snapshot
//	tcrowd-server -workers 8 -queue-depth 128        # explicit shard sizing
//	tcrowd-server -retain-generations 16             # deeper pinned-read window
//	tcrowd-server -node-id n1 -peers n1=http://a:8080,n2=http://b:8080 -wal-dir ./wal
//	                                                 # static-membership cluster node
//
// Endpoints — the versioned /v1 wire API (full reference: README.md next
// to this file; wire types: package api; official Go SDK: package client;
// the pre-v1 unversioned aliases were removed this release):
//
//	POST /v1/projects                  register a schema
//	GET  /v1/projects/{id}/tasks       dynamic task assignment (external-HIT)
//	POST /v1/projects/{id}/answers     submit one answer or an atomic batch
//	GET  /v1/projects/{id}/estimates   generation-pinned truth estimates
//	GET  /v1/projects/{id}/snapshot    alias of /estimates (merged endpoints)
//	GET  /v1/projects/{id}/watch       generation-bump stream (long-poll / SSE)
//	GET  /v1/projects/{id}/stats       collection progress
//	GET  /v1/stats                     shard-scheduler metrics
//
// Every non-2xx body is a typed error envelope
// {"error":{"code","message","retryable"}} with stable machine codes
// (docs/api-routes.txt lists the full surface and is drift-checked in CI).
//
// # Serving architecture
//
// Projects are partitioned across -workers inference shards by consistent
// hashing on the project ID (internal/shard). Each shard is one worker
// goroutine with a bounded queue of coalescing jobs; every completed
// refresh publishes an immutable, numbered snapshot generation:
//
//   - POST /v1/.../answers validates the whole submission up front
//     (batches are atomic: any invalid row rejects everything with
//     per-item detail), appends to the project's append-only log, and
//     enqueues at most ONE coalescing refresh per request on the
//     project's refresh cadence — it never waits on inference. Recorded
//     answers are always acknowledged 201; a saturated shard surfaces as
//     refresh:"deferred" in-body.
//   - GET /v1/.../tasks routes any due assignment-engine refresh through
//     the project's shard worker (same coalescing and backpressure as
//     estimate refreshes) — never on the request goroutine under the
//     platform lock. Under backpressure tasks are served from the stale
//     assignment state instead of failing.
//   - GET /v1/.../estimates serves one pinned generation per response:
//     by default the latest published snapshot (one atomic pointer load,
//     immune to shard backlog), ?generation= for a retained past state,
//     and a ?cursor= (which encodes the generation) for O(1) pages of a
//     walk that can never span model states. ?min_generation= is
//     refresh-if-stale: a value above the latest routes one coalescing
//     refresh through the shard and waits — the strongly consistent
//     read, and the only one that can 429. Responses carry
//     ETag:"<generation>"; If-None-Match answers 304.
//   - GET /v1/.../watch pushes generation bumps (summary deltas: answers
//     absorbed, cells changed) to consumers instead of them polling:
//     long-poll with ?after=&timeout=, or SSE with Accept:
//     text/event-stream. Slow consumers get intermediate bumps coalesced
//     to the latest event, never an unbounded buffer.
//
// One hot project can saturate only its own shard; other projects keep
// refreshing (isolation), and queue bounds turn overload into fast,
// typed backpressure instead of unbounded memory growth.
//
// # Durability
//
// With -wal-dir, every project keeps a segmented, CRC-framed write-ahead
// log: project creation and every accepted answer batch are appended (and,
// under -fsync=always, fsynced) BEFORE the request is acknowledged, so an
// acknowledged answer survives a hard kill at any instant. At boot the
// logs are replayed — torn tails from a mid-write crash are truncated at
// the last durable record, while corruption before the tail refuses to
// boot rather than silently dropping history. Segments rotate at
// -wal-segment-bytes and rotation schedules a checkpoint compaction on
// the project's shard, bounding both disk use and replay time.
//
// -state is demoted to an import/export snapshot: imported at start only
// into an empty platform, exported atomically (temp file + fsync +
// rename) on shutdown. The WAL is the source of truth.
//
// # Cluster mode
//
// -node-id plus -peers (a static id=url membership list including this
// node) turn the process into one node of a cluster (internal/cluster):
// the same consistent-hash ring that spreads projects over in-process
// shards now spreads them over nodes. Every project has one home node —
// writes always execute there — and every published snapshot generation
// replicates to the other nodes, which serve the full read surface
// (pinned estimates, ETag/304, watch) from local state. Requests arriving
// at the wrong node are forwarded (default), redirected with 307, or
// rejected with a typed 421 not_home envelope per -route; the Go SDK
// follows not_home referrals automatically. Cluster mode requires
// -wal-dir: membership changes hand projects off by shipping the WAL to
// the new home. See ARCHITECTURE.md, "Cluster layer".
//
// On SIGINT/SIGTERM the server stops accepting HTTP, exports -state if
// set, drains the shard queues, and flushes + fsyncs every WAL regardless
// of policy. At startup, every recovered or imported project with answers
// gets a coalescing warmup refresh enqueued, so the read path serves
// immediately after restart instead of 404ing until the first write.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcrowd/internal/cluster"
	"tcrowd/internal/cluster/member"
	"tcrowd/internal/platform"
	"tcrowd/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		state       = flag.String("state", "", "optional JSON export file (imported at start when the platform is empty, exported atomically on SIGINT/SIGTERM); durability lives in -wal-dir")
		seed        = flag.Int64("seed", 1, "assignment tie-breaking seed")
		workers     = flag.Int("workers", 0, "inference shard workers (0 = GOMAXPROCS-derived)")
		depth       = flag.Int("queue-depth", 0, "per-shard refresh queue bound (0 = default 64)")
		retain      = flag.Int("retain-generations", 0, "published snapshot generations kept addressable per project for pinned reads (0 = default 8)")
		walDir      = flag.String("wal-dir", "", "write-ahead log directory: answers are persisted before acknowledgement and replayed at boot (empty = no durability)")
		fsync       = flag.String("fsync", "always", "WAL fsync policy: always (ack = durable), interval (bounded loss, background flush), never (OS-paced)")
		walSeg      = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes; rotation triggers checkpoint compaction (0 = default 4 MiB)")
		fsyncInt    = flag.Duration("fsync-interval", 0, "flush cadence for -fsync=interval (0 = default 100ms)")
		rateLimit   = flag.Float64("rate-limit", 0, "per-worker request rate limit in tokens/sec (1 token = 1 answer or task request; 0 = unlimited); exceeding it answers 429 rate_limited with Retry-After")
		rateBurst   = flag.Float64("rate-burst", 0, "per-worker token-bucket capacity for -rate-limit (0 = max(rate, 1))")
		retainBytes = flag.Int64("retain-bytes", 0, "byte budget for retained snapshot generations per project: old generations evict early when the ring exceeds it (0 = count cap only; the latest generation always survives)")
		nodeID      = flag.String("node-id", "", "this node's id in -peers; both flags together enable cluster mode")
		peers       = flag.String("peers", "", "static cluster membership as id=url,id=url,... including this node; projects are consistent-hashed to their home node, writes route there, reads replicate everywhere")
		routeMode   = flag.String("route", "forward", "what the edge does with a request for a project homed elsewhere: forward (transparent proxy), redirect (307 + Location), reject (421 not_home envelope the SDK follows)")
	)
	flag.Parse()

	members, err := member.Parse(*nodeID, *peers)
	if err != nil {
		fatal(err)
	}
	mode, err := cluster.ParseRouteMode(*routeMode)
	if err != nil {
		fatal(err)
	}
	if members != nil && *walDir == "" {
		// Handoff ships the WAL; without one a membership change would
		// orphan recorded answers on the old home.
		fatal(fmt.Errorf("cluster mode (-peers) requires -wal-dir"))
	}

	opts := platform.Options{Workers: *workers, QueueDepth: *depth, RetainGenerations: *retain, RetainBytes: *retainBytes}
	var p *platform.Platform
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		opts.WAL = &platform.WALOptions{
			Dir:          *walDir,
			SegmentBytes: *walSeg,
			Policy:       policy,
			Interval:     *fsyncInt,
		}
		recovered, rep, err := platform.Recover(*seed, opts)
		if err != nil {
			fatal(fmt.Errorf("recovering %s: %w", *walDir, err))
		}
		p = recovered
		fmt.Printf("recovered %d projects (%d answers) from %s [fsync=%s]\n",
			rep.Projects, rep.Answers, *walDir, policy)
		for _, id := range rep.TornProjects {
			fmt.Printf("  project %s: torn log tail truncated at last durable record\n", id)
		}
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			// -state is the import/export format now; the WAL is the source
			// of truth. Import only into an empty platform so a stale export
			// can never duplicate or shadow recovered projects.
			if p != nil && len(p.ProjectIDs()) > 0 {
				fmt.Printf("skipping %s import: %d projects already recovered from WAL\n", *state, len(p.ProjectIDs()))
				f.Close()
			} else {
				if p == nil {
					p = platform.NewWithOptions(*seed, opts)
				}
				n, err := p.ImportProjects(f)
				f.Close()
				if err != nil {
					fatal(fmt.Errorf("importing %s: %w", *state, err))
				}
				fmt.Printf("imported %d projects from %s\n", n, *state)
			}
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if p == nil {
		p = platform.NewWithOptions(*seed, opts)
	}

	handler := platform.NewServer(p)
	if *rateLimit > 0 {
		handler.SetRateLimiter(platform.NewRateLimiter(platform.RateLimiterConfig{
			Rate:  *rateLimit,
			Burst: *rateBurst,
		}))
		fmt.Printf("per-worker rate limit: %.3g tokens/sec (burst %.3g)\n", *rateLimit, *rateBurst)
	}
	var root http.Handler = handler
	var node *cluster.Node
	if members != nil {
		node, err = cluster.New(cluster.Options{Members: members, Platform: p, Local: handler, Mode: mode})
		if err != nil {
			fatal(err)
		}
		// Boot rebalance: with static membership the only way ownership
		// moved is an operator editing -peers across a restart, so hand off
		// anything no longer homed here (retrying until every peer is up).
		node.StartRebalance()
		root = node
		fmt.Printf("cluster node %s of %d members (route=%s)\n", members.Self().ID, members.Size(), *routeMode)
	}
	srv := &http.Server{Addr: *addr, Handler: root}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		// Graceful stop: let in-flight requests finish (a recorded answer
		// must get its acknowledgment — an aborted connection would make
		// the client retry into a 409), with a bound so a wedged handler
		// can't stall shutdown forever.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}()

	fmt.Printf("tcrowd-server listening on %s (%d inference workers)\n", *addr, p.NumShardWorkers())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}

	// HTTP is stopped: detach the cluster layer first (its shippers hold
	// the publish hook), then export state while the WAL is still open
	// (Close wedges late appends), then drain queued refreshes and fsync
	// the logs. The export is atomic — temp file, fsync, rename — so a
	// crash mid-save can never destroy the previous export.
	if node != nil {
		node.Close()
	}
	if *state != "" {
		if err := p.SaveToFile(*state); err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-server: saving state: %v\n", err)
		} else {
			fmt.Printf("state saved to %s\n", *state)
		}
	}
	if err := p.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tcrowd-server: closing platform: %v\n", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcrowd-server: %v\n", err)
	os.Exit(1)
}
