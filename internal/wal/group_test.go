package wal

import (
	"fmt"
	"testing"
	"time"
)

// flusherCount reports the shared flusher's registry size and whether its
// goroutine is running.
func flusherCount() (int, bool) {
	group.mu.Lock()
	defer group.mu.Unlock()
	return len(group.logs), group.running
}

// TestGroupCommitSharedFlusher pins the group-commit satellite: N
// SyncInterval logs share ONE background flusher (the registry holds them
// all and one goroutine drains them), dirty appends reach Sync within the
// interval, and the flusher terminates once the last log closes.
func TestGroupCommitSharedFlusher(t *testing.T) {
	const interval = 5 * time.Millisecond
	fs := NewMemFS()
	var logs []*Log
	for i := 0; i < 16; i++ {
		l, _, err := Open(fmt.Sprintf("proj/p%02d", i), Options{
			FS: fs, CheckpointType: ckptType, Policy: SyncInterval, Interval: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, l)
	}
	if n, running := flusherCount(); n != 16 || !running {
		t.Fatalf("registry after 16 opens: %d logs, running=%v; want 16, true", n, running)
	}

	for i, l := range logs {
		if _, err := l.Append(rec(3, fmt.Sprintf("batch-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The shared flusher must clear every dirty flag within a few
	// intervals — that is the durability contract of -fsync=interval.
	deadline := time.Now().Add(2 * time.Second)
	for {
		clean := true
		for _, l := range logs {
			l.mu.Lock()
			if l.dirty {
				clean = false
			}
			l.mu.Unlock()
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dirty logs not flushed by the shared flusher")
		}
		time.Sleep(interval)
	}

	// Appends survive a hard crash once the flusher ran: the crash seam
	// drops unsynced bytes, so surviving data proves Sync happened.
	for i, l := range logs {
		crashed := fs.Recovered()
		_, rep, err := Open(l.Dir(), Options{FS: crashed, CheckpointType: ckptType})
		if err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		if len(rep.Records) != 1 {
			t.Fatalf("log %d: %d records survived the crash, want 1", i, len(rep.Records))
		}
	}

	// Closing every log empties the registry and stops the goroutine.
	for _, l := range logs {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		n, running := flusherCount()
		if n == 0 && !running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher still has %d logs (running=%v) after all closes", n, running)
		}
		time.Sleep(interval)
	}
}

// TestGroupCommitOnlyIntervalLogs pins that SyncAlways and SyncNever logs
// never register with the shared flusher — they need no background
// flushing, and registering them would keep the goroutine alive for
// nothing.
func TestGroupCommitOnlyIntervalLogs(t *testing.T) {
	fs := NewMemFS()
	before, _ := flusherCount()
	a, _, err := Open("proj/always", Options{FS: fs, CheckpointType: ckptType, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	nv, _, err := Open("proj/never", Options{FS: fs, CheckpointType: ckptType, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if after, _ := flusherCount(); after != before {
		t.Fatalf("registry grew from %d to %d on SyncAlways/SyncNever opens", before, after)
	}
	// Double-close must stay safe with the shared registry.
	a.Close()
	if err := nv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nv.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
}
