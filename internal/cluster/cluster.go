// Package cluster takes the shard ring out of the process: a static
// member set (the -peers flag, identical on every node) places every
// project on a home node via consistent hashing (internal/cluster/member,
// reusing shard.Ring), and each node's edge either serves a request
// locally or routes it to the home — forwarding transparently (default),
// redirecting with 307, or rejecting with a typed 421 not_home envelope
// the SDK follows automatically.
//
// Writes always land on the home node. Reads scale out: every published
// generation streams from the home to all peers (per-peer drop-to-latest
// shippers off the platform's publish hook), and followers serve the
// whole pinned-read surface — ?generation=/?cursor= re-reads,
// ETag/If-None-Match 304s, watch long-poll and SSE — from replicated
// generations. Cold catch-up and membership handoff ship WAL segments
// over the internal API and replay them through the ordinary crash
// recovery path, so a follower promoted to home owns the full answer
// history it mirrored.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"tcrowd/internal/cluster/member"
	"tcrowd/internal/platform"
)

// hopHeader marks a request already forwarded once by a peer's edge. A
// hopped request is never forwarded again: if the receiving node is not
// the home either (peer lists disagree mid-rollout), it answers 421
// not_home instead of bouncing the request around the ring.
const hopHeader = "X-Tcrowd-Forwarded"

// homeHeader carries the sending home node's base URL on internal
// replication requests, so followers learn where to send clients.
const homeHeader = "X-Tcrowd-Home"

// RouteMode says what the edge does with a request whose home is another
// node.
type RouteMode int

const (
	// RouteForward proxies the request to the home node transparently:
	// clients see one logical service whatever node they talk to.
	RouteForward RouteMode = iota
	// RouteRedirect answers 307 with the home node's URL in Location;
	// clients re-issue the request there themselves (net/http does it
	// automatically, preserving method and body).
	RouteRedirect
	// RouteReject answers 421 not_home with the home's base URL in the
	// envelope; the tcrowd SDK follows it automatically.
	RouteReject
)

// ParseRouteMode maps the -route flag to a mode.
func ParseRouteMode(s string) (RouteMode, error) {
	switch s {
	case "", "forward":
		return RouteForward, nil
	case "redirect":
		return RouteRedirect, nil
	case "reject":
		return RouteReject, nil
	}
	return 0, fmt.Errorf("cluster: unknown route mode %q (want forward, redirect or reject)", s)
}

// replicaReadable is the request suffix set a follower serves locally
// from replicated generations; everything else routes to the home node.
// tasks and workers are deliberately absent: assignment mutates engine
// state and reputation lives with the answer stream, both home-only.
var replicaReadable = map[string]bool{
	"estimates": true,
	"snapshot":  true,
	"watch":     true,
	"stats":     true,
}

// Options configures a cluster node.
type Options struct {
	// Members is the parsed -peers set; nil is rejected (run without a
	// Node at all for single-node serving).
	Members *member.Set
	// Platform is the local data plane.
	Platform *platform.Platform
	// Local is the local /v1 handler (the platform server, rate limiter
	// and all) requests are delegated to when this node serves them.
	Local http.Handler
	// Mode picks the routing behaviour for non-home requests.
	Mode RouteMode
	// Client overrides the peer HTTP client (tests). The default has no
	// overall timeout — forwarded watch requests are long-polls — and
	// per-call deadlines guard the internal replication requests instead.
	Client *http.Client
}

// Node is one cluster member's serving edge: an http.Handler wrapping the
// local /v1 surface with ring routing, plus the internal replication API
// and the per-peer generation shippers.
type Node struct {
	set    *member.Set
	p      *platform.Platform
	local  http.Handler
	mode   RouteMode
	client *http.Client
	mux    *http.ServeMux

	// shippers fan published generations out, one per peer (immutable
	// after New).
	shippers []*peerShipper

	stop    chan struct{}
	closing sync.Once
	wg      sync.WaitGroup

	mu sync.Mutex
	// walTop tracks, per follower project, the highest WAL segment index
	// mirrored locally — the next catch-up pull's from watermark.
	//tcrowd:guardedby mu
	walTop map[string]int
	// pulling dedups concurrent catch-up pulls per project.
	//tcrowd:guardedby mu
	pulling map[string]bool
}

// New builds the node, installs the platform publish hook, and starts the
// per-peer shippers. Call Close to stop them.
func New(opts Options) (*Node, error) {
	if opts.Members == nil {
		return nil, errors.New("cluster: Options.Members is required")
	}
	if opts.Platform == nil || opts.Local == nil {
		return nil, errors.New("cluster: Options.Platform and Options.Local are required")
	}
	n := &Node{
		set:     opts.Members,
		p:       opts.Platform,
		local:   opts.Local,
		mode:    opts.Mode,
		client:  opts.Client,
		mux:     http.NewServeMux(),
		stop:    make(chan struct{}),
		walTop:  make(map[string]int),
		pulling: make(map[string]bool),
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	n.registerInternalRoutes()
	for _, peer := range n.set.Peers() {
		s := newPeerShipper(n.set.Self().Addr, peer.Addr, n.client)
		n.shippers = append(n.shippers, s)
		n.wg.Add(1)
		go func() { defer n.wg.Done(); s.run(n.stop) }()
	}
	n.p.SetPublishHook(n.onPublish)
	return n, nil
}

// Close detaches the publish hook and stops the shippers and any
// in-flight rebalance loop. Queued generations not yet shipped are
// dropped — followers catch up from the internal API on the next publish
// or boot. Idempotent: shutdown paths (signal handler, defer, test
// cleanup) may race.
func (n *Node) Close() {
	n.closing.Do(func() {
		n.p.SetPublishHook(nil)
		close(n.stop)
	})
	n.wg.Wait()
}

// ServeHTTP implements http.Handler: internal routes first, then the
// ring-routed public surface.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/internal/") {
		n.mux.ServeHTTP(w, r)
		return
	}
	n.route(w, r)
}

// splitProjectPath extracts the project segment (and the suffix after it)
// from a /v1/projects/{id}[/rest] path.
func splitProjectPath(p string) (id, rest string, ok bool) {
	const pre = "/v1/projects/"
	if !strings.HasPrefix(p, pre) {
		return "", "", false
	}
	seg, rest, _ := strings.Cut(p[len(pre):], "/")
	if seg == "" {
		return "", "", false
	}
	if unesc, err := url.PathUnescape(seg); err == nil {
		seg = unesc
	}
	return seg, rest, true
}

// route is the cluster edge: pick the home node off the ring and serve
// locally, serve from the replica, or route away.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && (r.URL.Path == "/v1/projects" || r.URL.Path == "/v1/projects/") {
		n.routeCreate(w, r)
		return
	}
	id, rest, ok := splitProjectPath(r.URL.Path)
	if !ok {
		// Non-project surface (project listing, /v1/stats): every node
		// answers for itself.
		n.local.ServeHTTP(w, r)
		return
	}
	home := n.set.HomeOf(id)
	if home.ID == n.set.Self().ID {
		n.serveAsHome(w, r, id)
		return
	}
	// Replica reads serve locally once the project has replicated here;
	// the platform's follower guards and replica_stale/not_home errors
	// handle the rest of the surface.
	if r.Method == http.MethodGet && replicaReadable[rest] && n.hasLocal(id) {
		n.local.ServeHTTP(w, r)
		return
	}
	if r.Header.Get(hopHeader) != "" {
		// Already forwarded once — peer lists disagree. Stop the loop and
		// hand the client the address this node believes in.
		platform.WriteError(w, &platform.NotHomeError{Project: id, Home: home.Addr})
		return
	}
	n.routeAway(w, r, id, home, nil)
}

// routeCreate routes POST /v1/projects by peeking the project ID out of
// the body: creates are writes and must land on the new project's home.
func (n *Node) routeCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		platform.WriteError(w, fmt.Errorf("cluster: reading request body: %w", err))
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	// A body the peek cannot decode still goes to a validator: serve it
	// locally and let the platform emit its usual 400.
	_ = json.Unmarshal(body, &req)
	r.Body = io.NopCloser(bytes.NewReader(body))
	if req.ID == "" {
		n.local.ServeHTTP(w, r)
		return
	}
	home := n.set.HomeOf(req.ID)
	if home.ID == n.set.Self().ID {
		n.local.ServeHTTP(w, r)
		return
	}
	if r.Header.Get(hopHeader) != "" {
		platform.WriteError(w, &platform.NotHomeError{Project: req.ID, Home: home.Addr})
		return
	}
	n.routeAway(w, r, req.ID, home, body)
}

// hasLocal reports whether the local platform holds the project (home or
// follower).
func (n *Node) hasLocal(id string) bool {
	_, err := n.p.Project(id)
	return err == nil
}

// serveAsHome serves a request this node owns, fanning project deletions
// out to the peers' replicas after a successful local delete.
func (n *Node) serveAsHome(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method == http.MethodDelete {
		sw := &statusWriter{ResponseWriter: w}
		n.local.ServeHTTP(sw, r)
		if sw.status >= 200 && sw.status < 300 {
			n.broadcastRemove(id)
		}
		return
	}
	n.local.ServeHTTP(w, r)
}

// statusWriter records the response status for post-serve decisions.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// broadcastRemove tells every peer to drop its replica of a deleted
// project. Best-effort: an unreachable peer reaps the orphan replica on
// its next boot rebalance (the home 404s its catch-up pulls).
func (n *Node) broadcastRemove(id string) {
	for _, peer := range n.set.Peers() {
		peer := peer
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			req, err := http.NewRequest(http.MethodDelete,
				peer.Addr+"/v1/internal/projects/"+url.PathEscape(id), nil)
			if err != nil {
				return
			}
			req.Header.Set(homeHeader, n.set.Self().Addr)
			resp, err := n.doInternal(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
}

// internalTimeout bounds one internal replication request (generations
// apply, WAL ship, replica removal). Generous: a WAL ship moves whole
// segments.
const internalTimeout = 30 * time.Second

// doInternal issues an internal request with the standard deadline.
func (n *Node) doInternal(req *http.Request) (*http.Response, error) {
	ctx, cancel := contextWithTimeout(req, internalTimeout)
	defer cancel()
	return n.client.Do(req.WithContext(ctx))
}

// routeAway sends a non-home request where it belongs per the configured
// mode. body, when non-nil, is the already-consumed request body.
func (n *Node) routeAway(w http.ResponseWriter, r *http.Request, id string, home member.Member, body []byte) {
	switch n.mode {
	case RouteRedirect:
		// 307 preserves method and body; Go clients re-issue automatically.
		w.Header().Set("Location", home.Addr+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	case RouteReject:
		platform.WriteError(w, &platform.NotHomeError{Project: id, Home: home.Addr})
	default:
		n.forward(w, r, id, home, body)
	}
}

// forward proxies the request to the home node and copies the response
// back VERBATIM — status, headers (Retry-After, ETag, Content-Type...)
// and body bytes, whatever the status. Error envelopes and backpressure
// hints must survive the hop untouched: the proxy is transport, not
// policy. The body is streamed with per-chunk flushes so forwarded watch
// streams (SSE, long-poll) deliver events as they happen.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, id string, home member.Member, body []byte) {
	if body == nil && r.Body != nil {
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			platform.WriteError(w, fmt.Errorf("cluster: reading request body: %w", err))
			return
		}
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		home.Addr+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		platform.WriteError(w, fmt.Errorf("cluster: building forward request: %w", err))
		return
	}
	out.Header = r.Header.Clone()
	out.Header.Set(hopHeader, n.set.Self().ID)
	resp, err := n.client.Do(out)
	if err != nil {
		// The hop failed, but the client can still go direct: answer 421
		// with the home address instead of an opaque 502.
		platform.WriteError(w, &platform.NotHomeError{Project: id, Home: home.Addr})
		return
	}
	defer resp.Body.Close()
	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// flushCopy streams src to w, flushing after every chunk so proxied
// event streams are delivered promptly.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, err := src.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
