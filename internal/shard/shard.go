// Package shard partitions a multi-project serving workload across a fixed
// pool of inference workers, giving each project a stable home worker and
// each worker a bounded job queue — the isolation and admission-control
// layer between the HTTP platform and the EM engine.
//
// Motivation. One tcrowd-server process hosts many projects, but before
// this layer every project refresh ran on one shared pool with no admission
// control: a single hot project could queue unbounded refresh work and
// starve every other project. The scheduler fixes both failure modes
// structurally:
//
//   - Isolation: projects are partitioned across N single-goroutine workers
//     by consistent hashing on the project ID, so one project's refresh
//     storm can only ever occupy its own shard; projects on other shards
//     keep refreshing at full speed.
//   - Admission control: each shard's queue is bounded. Once it fills,
//     Submit fails fast with ErrShardSaturated instead of queueing
//     unbounded work — the caller (the HTTP layer) turns that into a 429
//     and the client backs off.
//   - Work collapsing: refresh jobs are idempotent "absorb whatever is in
//     the log now" operations, so multiple pending refreshes for the same
//     key coalesce into one queue entry. A burst of 1000 submissions to one
//     project costs one queued refresh, not 1000; the queue depth is
//     bounded by distinct hot projects, not by traffic.
//
// Jobs must be idempotent read-current-state operations for coalescing to
// be sound: a coalesced waiter observes the effect of a job that started
// after its Submit, which is only equivalent to running its own job if the
// job reads its inputs at execution time (a T-Crowd refresh reads the
// project's append-only log when it runs, so it absorbs everything
// submitted before it started — including the coalesced caller's answers).
//
// Jobs coalesce only while queued: a job that has started executing may
// already have read state, so a Submit landing mid-execution enqueues a
// fresh job behind it. One worker per shard means same-key jobs are
// naturally serialised; job functions never run concurrently with
// themselves for the same key.
//
// Each shard worker may itself fan out inside a job (the EM engine's
// parallel E/M-steps use the internal/pool goroutine pool); pool.Run is
// deadlock-free under saturation because the submitting goroutine works its
// own job, so stacking N shard workers on top of the GOMAXPROCS pool
// oversubscribes gracefully instead of deadlocking.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tcrowd/internal/pool"
)

// Typed scheduler errors.
var (
	// ErrShardSaturated is returned by Submit/SubmitWait when the key's
	// shard queue is full. It is the backpressure signal: callers should
	// shed or delay work (the HTTP layer maps it to 429 Too Many Requests).
	ErrShardSaturated = errors.New("shard: queue saturated")
	// ErrClosed is returned by Submit/SubmitWait after Close began.
	ErrClosed = errors.New("shard: scheduler closed")
	// ErrJobPanicked wraps a recovered job panic — a server-side fault,
	// not a caller mistake (the HTTP layer maps it to 500).
	ErrJobPanicked = errors.New("shard: job panicked")
)

// Options configures New. The zero value is a sensible production default.
type Options struct {
	// Workers is the number of shard workers (and shards — each worker
	// owns exactly one queue). Default: the internal/pool worker count,
	// i.e. GOMAXPROCS at pool start.
	Workers int
	// QueueDepth bounds each shard's pending-job queue; a full queue
	// rejects Submit with ErrShardSaturated. Coalescing means depth is
	// consumed per distinct key, not per call. Default 64.
	QueueDepth int
	// Replicas is the number of virtual nodes per shard on the consistent-
	// hash ring. More replicas smooth the key distribution at the cost of
	// a larger ring. Default 128.
	Replicas int
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = pool.Size()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Replicas <= 0 {
		o.Replicas = 128
	}
	return o
}

// job is one queued unit of work plus everybody waiting on it.
type job struct {
	key string
	run func() error
	// waiters receive the job's error (nil on success) exactly once each.
	// Appended under the shard mutex while the job is queued; read by the
	// worker after dequeue (which also happens under the mutex), so no
	// waiter can be added once the worker owns the job.
	waiters []chan error
}

// shardQueue is one worker's bounded FIFO plus its metrics. All fields are
// guarded by mu.
//
//tcrowd:guardedby mu
type shardQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	queue    []*job
	pending  map[string]*job // queued (not yet running) job per key
	max      int
	closing  bool

	// counters (see Metrics for meanings)
	enqueued  uint64
	coalesced uint64
	rejected  uint64
	completed uint64
	failed    uint64
	busyNs    int64
	lastNs    int64
}

// Scheduler partitions keys across shard workers. Safe for concurrent use.
type Scheduler struct {
	ring   ring
	shards []*shardQueue
	wg     sync.WaitGroup
}

// New starts a scheduler with opts.Workers shard workers.
func New(opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		ring:   buildRing(opts.Workers, opts.Replicas),
		shards: make([]*shardQueue, opts.Workers),
	}
	for i := range s.shards {
		sq := &shardQueue{
			pending: make(map[string]*job),
			max:     opts.QueueDepth,
		}
		sq.nonEmpty = sync.NewCond(&sq.mu)
		s.shards[i] = sq
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sq.loop()
		}()
	}
	return s
}

// NumShards returns the worker/shard count.
func (s *Scheduler) NumShards() int { return len(s.shards) }

// ShardFor returns the shard index owning key (stable for a fixed worker
// count; consistent under resizing).
func (s *Scheduler) ShardFor(key string) int { return s.ring.locate(key) }

// Submit enqueues fn on key's shard and returns immediately. If a job for
// key is already queued the call coalesces into it (fn is dropped — the
// queued job will observe the same state, see the package comment on
// idempotency) and Submit succeeds. With no queued job and a full queue,
// Submit fails with an error wrapping ErrShardSaturated. fn's error is
// recorded in the shard metrics; use SubmitWait to receive it.
func (s *Scheduler) Submit(key string, fn func() error) error {
	return s.submit(key, key, fn, nil)
}

// SubmitWait enqueues fn like Submit but blocks until the job (or the
// queued job it coalesced into) finishes, returning the job's error.
func (s *Scheduler) SubmitWait(key string, fn func() error) error {
	done := make(chan error, 1)
	if err := s.submit(key, key, fn, done); err != nil {
		return err
	}
	return <-done
}

// SubmitWaitKeyed is SubmitWait with the routing identity split from the
// coalescing identity: the job runs on routeKey's shard (so different job
// kinds for one entity share that entity's worker and its isolation/
// backpressure budget) but coalesces only with queued jobs carrying the
// same jobKey (so kinds never collapse into each other). The platform uses
// this to run estimate refreshes and assignment refreshes for one project
// on the project's home shard under distinct coalescing keys.
func (s *Scheduler) SubmitWaitKeyed(routeKey, jobKey string, fn func() error) error {
	done, err := s.SubmitNotifyKeyed(routeKey, jobKey, fn)
	if err != nil {
		return err
	}
	return <-done
}

// SubmitNotifyKeyed enqueues like SubmitWaitKeyed but returns the
// completion channel instead of blocking on it, letting the caller bound
// its wait (e.g. select with a timeout) while the job still runs to
// completion either way. The channel receives the job's error (nil on
// success) exactly once.
func (s *Scheduler) SubmitNotifyKeyed(routeKey, jobKey string, fn func() error) (<-chan error, error) {
	done := make(chan error, 1)
	if err := s.submit(routeKey, jobKey, fn, done); err != nil {
		return nil, err
	}
	return done, nil
}

func (s *Scheduler) submit(routeKey, key string, fn func() error, done chan error) error {
	shard := s.ring.locate(routeKey)
	sq := s.shards[shard]
	sq.mu.Lock()
	defer sq.mu.Unlock()
	if sq.closing {
		return ErrClosed
	}
	if j, ok := sq.pending[key]; ok {
		sq.coalesced++
		if done != nil {
			j.waiters = append(j.waiters, done)
		}
		return nil
	}
	if len(sq.queue) >= sq.max {
		sq.rejected++
		return fmt.Errorf("%w: shard %d at depth %d (key %q)",
			ErrShardSaturated, shard, len(sq.queue), key)
	}
	j := &job{key: key, run: fn}
	if done != nil {
		j.waiters = append(j.waiters, done)
	}
	sq.queue = append(sq.queue, j)
	sq.pending[key] = j
	sq.enqueued++
	sq.nonEmpty.Signal()
	return nil
}

// Close stops accepting new jobs, drains every shard's queue (all jobs
// already accepted — queued or running — complete, and their waiters are
// notified), and returns when all workers have exited.
func (s *Scheduler) Close() {
	for _, sq := range s.shards {
		sq.mu.Lock()
		sq.closing = true
		sq.nonEmpty.Signal()
		sq.mu.Unlock()
	}
	s.wg.Wait()
}

// loop is the shard worker: dequeue, run, account, notify — until closed
// and drained.
func (sq *shardQueue) loop() {
	for {
		sq.mu.Lock()
		for len(sq.queue) == 0 && !sq.closing {
			sq.nonEmpty.Wait()
		}
		if len(sq.queue) == 0 { // closing and drained
			sq.mu.Unlock()
			return
		}
		j := sq.queue[0]
		sq.queue = sq.queue[1:]
		delete(sq.pending, j.key) // from here on, new submits start a fresh job
		sq.mu.Unlock()

		start := time.Now()
		err := runJob(j.run)
		elapsed := time.Since(start)

		sq.mu.Lock()
		sq.completed++
		if err != nil {
			sq.failed++
		}
		sq.busyNs += elapsed.Nanoseconds()
		sq.lastNs = elapsed.Nanoseconds()
		sq.mu.Unlock()

		for _, w := range j.waiters {
			w <- err // buffered (cap 1), never blocks
		}
	}
}

// runJob executes fn, converting a panic into an error so one bad job
// cannot kill its shard worker (which would silently stall every project
// on the shard).
func runJob(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrJobPanicked, r)
		}
	}()
	return fn()
}

// Metrics is a point-in-time snapshot of one shard's counters.
type Metrics struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Depth is the current number of queued (not yet running) jobs.
	Depth int `json:"depth"`
	// Enqueued counts jobs accepted into the queue (coalesced calls not
	// included).
	Enqueued uint64 `json:"enqueued"`
	// Coalesced counts Submit/SubmitWait calls collapsed into an
	// already-queued job.
	Coalesced uint64 `json:"coalesced"`
	// Rejected counts calls refused with ErrShardSaturated.
	Rejected uint64 `json:"rejected"`
	// Completed counts finished jobs; Failed is the subset that returned
	// an error (or panicked).
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// BusyNs is total job execution time; LastJobNs the most recent job's.
	// BusyNs/Completed is the shard's mean refresh latency.
	BusyNs    int64 `json:"busy_ns"`
	LastJobNs int64 `json:"last_job_ns"`
}

// Metrics snapshots every shard's counters, indexed by shard.
func (s *Scheduler) Metrics() []Metrics {
	out := make([]Metrics, len(s.shards))
	for i, sq := range s.shards {
		sq.mu.Lock()
		out[i] = Metrics{
			Shard:     i,
			Depth:     len(sq.queue),
			Enqueued:  sq.enqueued,
			Coalesced: sq.coalesced,
			Rejected:  sq.rejected,
			Completed: sq.completed,
			Failed:    sq.failed,
			BusyNs:    sq.busyNs,
			LastJobNs: sq.lastNs,
		}
		sq.mu.Unlock()
	}
	return out
}
