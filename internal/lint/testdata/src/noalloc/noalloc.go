// Package noalloc exercises the noalloc analyzer: allocating constructs
// in annotated hot paths, with unannotated functions left alone.
package noalloc

import "fmt"

type buf struct {
	xs []float64
}

//tcrowd:noalloc
func (b *buf) fill(vs []float64) {
	for i, v := range vs {
		b.xs[i] = v
	}
}

//tcrowd:noalloc
func (b *buf) grow(vs []float64) {
	b.xs = append(b.xs, vs...) // want `append`
	m := make(map[int]int)     // want `make`
	_ = m
	s := []int{1, 2} // want `slice literal`
	_ = s
	fmt.Println(len(vs)) // want `fmt call`
}

//tcrowd:noalloc
func capture(n int) func() int {
	return func() int { return n } // want `closure capturing n`
}

//tcrowd:noalloc
func pure(n int) func() int {
	return func() int { return 0 } // captures nothing: fine
}

//tcrowd:noalloc
func box(v float64) any {
	return sink(v) // want `boxes`
}

//tcrowd:noalloc
func pointerRides(b *buf) any {
	return sink(b) // pointers fit the interface word: fine
}

func sink(v any) any { return v }

// unannotated functions allocate freely.
func unannotated() []int {
	return append([]int(nil), 1, 2)
}

//tcrowd:noalloc
func waivedGrow(b *buf, v float64) {
	//lint:allow noalloc amortized arena growth, cold path
	b.xs = append(b.xs, v) // waived `append`
}
