package platform

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/internal/shard"
	"tcrowd/internal/tabular"
)

// wedge occupies the scheduler shard owning key with a job that blocks
// until the returned release func is called (idempotent, so tests can both
// defer and call it), then fills the rest of the shard's queue with filler
// keys so further distinct-key submits are rejected. depth is the
// platform's QueueDepth.
func wedge(t *testing.T, p *Platform, key string, depth int) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	sh := p.sched.ShardFor(key)
	if err := p.sched.Submit("wedge-blocker-"+pickKeyOnShard(t, p, sh, 0), func() error {
		<-gate
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to occupy the worker (its slot leaves the queue).
	waitFor(t, func() bool { return p.ShardMetrics()[sh].Depth == 0 })
	for i := 0; i < depth; i++ {
		k := pickKeyOnShard(t, p, sh, i+1)
		if err := p.sched.Submit("wedge-filler-"+k, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	return func() { once.Do(func() { close(gate) }) }
}

// pickKeyOnShard probes for the (skip+1)-th suffix that lands on shard sh.
// The "wedge-blocker-"/"wedge-filler-" prefixes are part of the submitted
// key, so probe with them attached.
func pickKeyOnShard(t *testing.T, p *Platform, sh, skip int) string {
	t.Helper()
	found := 0
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if p.sched.ShardFor("wedge-blocker-"+k) == sh && p.sched.ShardFor("wedge-filler-"+k) == sh {
			if found == skip {
				return k
			}
			found++
		}
	}
	t.Fatalf("no key found on shard %d", sh)
	return ""
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// seedProject creates a project with a few answers and one published
// snapshot. RefreshEvery is 1 so every submission exercises the refresh
// enqueue (the backpressure tests need each Submit to touch the queue).
func seedProject(t *testing.T, p *Platform, id string) {
	t.Helper()
	if _, err := p.CreateProject(id, demoSchema(), ProjectConfig{Rows: 3, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		if err := p.Submit(id, w, 0, "category", tabular.LabelValue(1)); err != nil {
			t.Fatal(err)
		}
		if err := p.Submit(id, w, 0, "price", tabular.NumberValue(100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.RunInference(id); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitPublishesSnapshotAsync pins the async serving loop: submissions
// alone (no RunInference call) eventually publish an estimate snapshot that
// reflects the whole log.
func TestSubmitPublishesSnapshotAsync(t *testing.T) {
	p := New(41)
	defer p.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		if err := p.Submit("a", w, 0, "category", tabular.LabelValue(2)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := p.Stats("a")
	waitFor(t, func() bool {
		res, err := p.Snapshot("a")
		return err == nil && res.AnswersSeen == st.Answers
	})
	res, err := p.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimates[0][0].Equal(tabular.LabelValue(2)) {
		t.Fatalf("async snapshot estimate %v", res.Estimates[0][0])
	}
}

// TestSnapshotNeverBlocksOnSaturatedShard is the acceptance-criterion test
// for non-blocking reads: with the project's shard wedged (stuck worker,
// full queue), Snapshot still serves the last published estimates
// immediately, RunInference and Submit surface typed backpressure, and the
// recorded answer is not lost.
func TestSnapshotNeverBlocksOnSaturatedShard(t *testing.T) {
	p := NewWithOptions(42, Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	seedProject(t, p, "a")
	before, err := p.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}

	release := wedge(t, p, "a", 1)
	defer release()

	// Non-blocking read: returns the published snapshot promptly.
	got := make(chan *InferenceResult, 1)
	go func() {
		res, err := p.Snapshot("a")
		if err != nil {
			t.Error(err)
		}
		got <- res
	}()
	select {
	case res := <-got:
		if res != before {
			t.Fatal("snapshot changed while shard wedged")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot blocked on a saturated shard")
	}

	// Strongly consistent read: fails fast with the typed error.
	if _, err := p.RunInference("a"); !errors.Is(err, shard.ErrShardSaturated) {
		t.Fatalf("RunInference on saturated shard: %v", err)
	}

	// Submission: answer recorded, refresh shed, typed error returned.
	err = p.Submit("a", "w9", 1, "price", tabular.NumberValue(7))
	if !errors.Is(err, shard.ErrShardSaturated) {
		t.Fatalf("Submit on saturated shard: %v", err)
	}
	proj, _ := p.Project("a")
	if !proj.Log.HasAnswered("w9", tabular.Cell{Row: 1, Col: 1}) {
		t.Fatal("backpressured submission lost the answer")
	}

	// Released, the shard drains and consistent reads work again —
	// absorbing the answer whose refresh was shed.
	release()
	waitFor(t, func() bool {
		m := p.ShardMetrics()[0]
		return m.Depth == 0 && m.Completed == m.Enqueued
	})
	res, err := p.RunInference("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.WorkerQuality["w9"]; !ok {
		t.Fatal("post-release refresh missed the shed answer")
	}
}

// TestShardIsolationAcrossProjects is the acceptance-criterion isolation
// test at the platform layer: with one project's shard fully saturated,
// a project on another shard keeps refreshing.
func TestShardIsolationAcrossProjects(t *testing.T) {
	p := NewWithOptions(43, Options{Workers: 4, QueueDepth: 1})
	defer p.Close()

	// Find two project ids on distinct shards.
	hotID := "hot-project"
	coldID := ""
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("cold-project-%d", i)
		if p.sched.ShardFor(id) != p.sched.ShardFor(hotID) {
			coldID = id
			break
		}
	}
	if coldID == "" {
		t.Fatal("no cold project id found")
	}
	seedProject(t, p, hotID)
	seedProject(t, p, coldID)

	release := wedge(t, p, hotID, 1)
	defer release()

	// Hot project's shard rejects new refresh work...
	if _, err := p.RunInference(hotID); !errors.Is(err, shard.ErrShardSaturated) {
		t.Fatalf("wedged shard accepted refresh: %v", err)
	}
	// ...while the cold project's refreshes proceed, promptly and with
	// fresh data.
	if err := p.Submit(coldID, "w8", 1, "price", tabular.NumberValue(55)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var res *InferenceResult
	go func() {
		var err error
		res, err = p.RunInference(coldID)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cold project starved behind saturated hot shard")
	}
	if _, ok := res.WorkerQuality["w8"]; !ok {
		t.Fatal("cold refresh missing the new answer")
	}
}

// TestServerBackpressureAndSnapshot covers the HTTP layer end to end
// under a wedged shard: submissions record with an in-body deferred
// refresh, the ?min_generation= refresh path 429s, the default pinned
// read stays 200 (stale-marked), and /v1/stats reports the rejections.
func TestServerBackpressureAndSnapshot(t *testing.T) {
	p := NewWithOptions(44, Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "celebs")

	release := wedge(t, p, "celebs", 1)
	defer release()

	// POST /v1/.../answers under saturation: 201, refresh deferred,
	// answer recorded.
	resp := postJSON(t, srv.URL+"/v1/projects/celebs/answers",
		`{"worker": "w7", "row": 2, "column": "price", "number": 12}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("saturated submit status %d", resp.StatusCode)
	}
	var submitBody api.SubmitAnswersResponse
	decodeBody(t, resp, &submitBody)
	if submitBody.Status != "recorded" || submitBody.Refresh != api.RefreshDeferred {
		t.Fatalf("saturated submit body %+v", submitBody)
	}
	proj, _ := p.Project("celebs")
	if !proj.Log.HasAnswered("w7", tabular.Cell{Row: 2, Col: 1}) {
		t.Fatal("backpressured submission lost the answer")
	}

	// The refresh-if-stale read needs the saturated shard: 429.
	resp, err := http.Get(srv.URL + "/v1/projects/celebs/estimates?min_generation=2000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated min_generation estimates status %d", resp.StatusCode)
	}

	// The default pinned read never touches the queue: 200, marked stale.
	resp, err = http.Get(srv.URL + "/v1/projects/celebs/estimates")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned read status %d", resp.StatusCode)
	}
	var snap estimatesResp
	decodeBody(t, resp, &snap)
	if snap.Fresh {
		t.Fatal("pinned read claims freshness while a submission is unabsorbed")
	}
	if len(snap.Estimates) == 0 || snap.Generation == 0 {
		t.Fatalf("pinned read empty: %+v", snap)
	}

	// The /snapshot alias serves the same merged endpoint.
	resp, err = http.Get(srv.URL + "/v1/projects/celebs/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var alias estimatesResp
	decodeBody(t, resp, &alias)
	if alias.Generation != snap.Generation || len(alias.Estimates) != len(snap.Estimates) {
		t.Fatalf("/snapshot alias diverged: %+v vs %+v", alias, snap)
	}

	// GET /v1/stats: shard metrics visible, rejections counted.
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats shardStatsResp
	decodeBody(t, resp, &stats)
	if stats.Workers != 1 || len(stats.Shards) != 1 {
		t.Fatalf("stats shape: %+v", stats)
	}
	if stats.Totals.Rejected == 0 {
		t.Fatal("stats missing rejected count")
	}
	if stats.Totals.Depth == 0 {
		t.Fatal("stats missing queued depth")
	}

	// Drain; the strongly consistent read recovers and absorbs the shed
	// answer.
	release()
	waitFor(t, func() bool {
		m := p.ShardMetrics()[0]
		return m.Depth == 0 && m.Completed == m.Enqueued
	})
	resp, err = http.Get(srv.URL + "/v1/projects/celebs/estimates?min_generation=2000000000")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release estimates status %d", resp.StatusCode)
	}
	var est estimatesResp
	decodeBody(t, resp, &est)
	if !est.Fresh {
		t.Fatal("post-release estimates not fresh")
	}
	if _, ok := est.WorkerQuality["w7"]; !ok {
		t.Fatal("post-release estimates missed the shed answer")
	}
}

// TestRefreshCadenceGatesEnqueue pins the anti-waste rule: once a snapshot
// exists, submissions below the project's RefreshEvery cadence do NOT
// enqueue refresh work — write-heavy projects cost one refresh per cadence
// window, not one per answer — while the cadence-crossing submission does.
func TestRefreshCadenceGatesEnqueue(t *testing.T) {
	p := New(47)
	defer p.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 5, RefreshEvery: 4}); err != nil {
		t.Fatal(err)
	}
	submit := func(w string, row int) {
		t.Helper()
		if err := p.Submit("a", tabular.WorkerID(w), row, "price", tabular.NumberValue(9)); err != nil {
			t.Fatal(err)
		}
	}
	enqueued := func() uint64 {
		var n uint64
		for _, m := range p.ShardMetrics() {
			n += m.Enqueued + m.Coalesced
		}
		return n
	}
	// Bootstrap: no snapshot yet, so the first submissions enqueue (and
	// coalesce) until one is published.
	submit("w1", 0)
	waitFor(t, func() bool { _, err := p.Snapshot("a"); return err == nil })
	base := enqueued()
	// Mid-cadence submissions (2nd and 3rd of 4) must not touch the queue.
	submit("w2", 0)
	submit("w3", 0)
	if got := enqueued(); got != base {
		t.Fatalf("mid-cadence submissions enqueued refreshes: %d -> %d", base, got)
	}
	// The 4th submission crosses the cadence and refreshes.
	submit("w4", 0)
	if got := enqueued(); got != base+1 {
		t.Fatalf("cadence-crossing submission enqueued %d refreshes, want 1", got-base)
	}
	st, _ := p.Stats("a")
	waitFor(t, func() bool {
		res, err := p.Snapshot("a")
		return err == nil && res.AnswersSeen == st.Answers
	})
}

// TestShedRefreshRetriesNextSubmission pins the cadence-rewind rule: when
// the cadence-crossing enqueue is shed by a saturated shard, the very next
// accepted submission retries instead of waiting out a fresh RefreshEvery
// window (which would double the staleness bound — or make it unbounded if
// traffic stopped).
func TestShedRefreshRetriesNextSubmission(t *testing.T) {
	p := NewWithOptions(49, Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3, RefreshEvery: 2}); err != nil {
		t.Fatal(err)
	}
	submit := func(w string, row int) error {
		return p.Submit("a", tabular.WorkerID(w), row, "price", tabular.NumberValue(9))
	}
	drained := func() bool {
		m := p.ShardMetrics()[0]
		return m.Depth == 0 && m.Completed == m.Enqueued
	}
	// Bootstrap a snapshot and drain (s1 bootstraps, s2 crosses cadence 2).
	if err := submit("w1", 0); err != nil {
		t.Fatal(err)
	}
	if err := submit("w2", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, err := p.Snapshot("a"); return err == nil })
	waitFor(t, drained)

	release := wedge(t, p, "a", 1)
	defer release()
	// s3 is mid-cadence: no enqueue attempted, so no error even wedged.
	if err := submit("w3", 0); err != nil {
		t.Fatal(err)
	}
	// s4 crosses the cadence; the enqueue is shed and the counter rewound.
	if err := submit("w1", 1); !errors.Is(err, shard.ErrShardSaturated) {
		t.Fatalf("cadence-crossing submit on wedged shard: %v", err)
	}
	release()
	waitFor(t, drained)
	// Because of the rewind, s5 retries immediately (without it, s5 would
	// be treated as mid-cadence and the shed answers would stay
	// unabsorbed until a full extra window).
	if err := submit("w2", 1); err != nil {
		t.Fatal(err)
	}
	st, _ := p.Stats("a")
	waitFor(t, func() bool {
		res, err := p.Snapshot("a")
		return err == nil && res.AnswersSeen == st.Answers
	})
}

// TestCreateProjectRefreshEveryOverHTTP pins the refresh_every passthrough
// of POST /projects.
func TestCreateProjectRefreshEveryOverHTTP(t *testing.T) {
	p := New(48)
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/v1/projects", `{
	  "id": "fast", "rows": 2, "refresh_every": 1,
	  "schema": {"key": "item", "columns": [
	    {"name": "category", "type": "categorical", "labels": ["a", "b"]}]}}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	proj, err := p.Project("fast")
	if err != nil {
		t.Fatal(err)
	}
	if proj.refreshEvery != 1 {
		t.Fatalf("refresh_every not applied: %d", proj.refreshEvery)
	}
}

// TestLoadClosesSchedulerOnError exercises LoadWithOptions' error path (a
// valid envelope with a corrupt answers blob): the partially built
// platform must be abandoned with an error, not returned.
func TestLoadClosesSchedulerOnError(t *testing.T) {
	corrupt := `{"projects": [{
	  "id": "a",
	  "schema": {"key": "item", "columns": [
	    {"name": "category", "type": "categorical", "labels": ["x", "y"]}]},
	  "entities": ["e1", "e2"],
	  "answers": "not an answers blob",
	  "tcrowd_assignment": false}]}`
	if _, err := Load(strings.NewReader(corrupt), 1); err == nil {
		t.Fatal("corrupt answers blob accepted")
	}
}

// TestSnapshotBeforeFirstRefresh pins the 404 path.
func TestSnapshotBeforeFirstRefresh(t *testing.T) {
	p := New(45)
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	if _, err := p.CreateProject("empty", demoSchema(), ProjectConfig{Rows: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Snapshot("empty"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
	resp, err := http.Get(srv.URL + "/v1/projects/empty/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-publish snapshot status %d", resp.StatusCode)
	}
	if _, err := p.Snapshot("ghost"); !errors.Is(err, ErrNoProject) {
		t.Fatal("phantom snapshot")
	}
}

// TestCloseDrainsPlatform pins shutdown: queued refreshes complete before
// Close returns, and post-Close operations fail with shard.ErrClosed while
// snapshot reads keep serving.
func TestCloseDrainsPlatform(t *testing.T) {
	p := New(46)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 2, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		if err := p.Submit("a", w, 0, "category", tabular.LabelValue(0)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close() // must drain the queued refresh, publishing a snapshot
	res, err := p.Snapshot("a")
	if err != nil {
		t.Fatalf("snapshot after drain: %v", err)
	}
	st, _ := p.Stats("a")
	if res.AnswersSeen != st.Answers {
		t.Fatalf("drained refresh absorbed %d/%d answers", res.AnswersSeen, st.Answers)
	}
	if _, err := p.RunInference("a"); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("RunInference after Close: %v", err)
	}
	if err := p.Submit("a", "w4", 1, "price", tabular.NumberValue(3)); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
}
