package core

import (
	"math"

	"tcrowd/internal/stats"
)

// Bounds keeping the effective variance s = alpha*beta*phi numerically
// sane. Quality q = erf(eps/sqrt(2s)) maps these to (~0, ~1) smoothly.
const (
	minS = 1e-8
	maxS = 1e8
)

// cellVariance returns s = alpha_i * beta_j * phi_k clamped to [minS, maxS].
func (m *Model) cellVariance(i, j, k int) float64 {
	return stats.Clamp(m.Alpha[i]*m.Beta[j]*m.Phi[k], minS, maxS)
}

// logQ returns (ln q, ln(1-q)) for quality q = erf(x), x = eps/sqrt(2s),
// computed stably for extreme x. This sits on the innermost loop of the
// M-step line search, so the common branch spends one erf/erfc plus two
// logs instead of deferring to the general LogErf/LogErfc pair.
func logQ(eps, s float64) (lnQ, lnNotQ float64) {
	x := eps / math.Sqrt(2*s)
	if x < 20 {
		if e := math.Erf(x); e < 0.5 {
			return math.Log(e), math.Log1p(-e)
		}
		ec := math.Erfc(x)
		return math.Log1p(-ec), math.Log(ec)
	}
	return stats.LogErf(x), stats.LogErfc(x)
}

// eStep recomputes every answered cell's posterior truth distribution
// (Eq. 4) given the current parameters. Posteriors are written in place
// (the categorical arena and the ContMu/ContVar fields), so the steady
// state allocates nothing.
func (m *Model) eStep() {
	if w := m.effectiveParallelism(); w > 1 {
		m.eStepParallel(w)
		return
	}
	m.eStepCells(0, m.Table.NumRows()*m.Table.NumCols())
}

// eStepCells updates the posteriors of cell keys [loKey, hiKey).
func (m *Model) eStepCells(loKey, hiKey int) {
	mm := m.Table.NumCols()
	for key := loKey; key < hiKey; key++ {
		lo, hi := int(m.ilog.CellOff[key]), int(m.ilog.CellOff[key+1])
		if lo == hi {
			continue
		}
		i, j := key/mm, key%mm
		if m.ilog.Ans[lo].IsCat {
			m.updateCatCell(i, j, lo, hi)
		} else {
			m.updateContCell(i, j, lo, hi)
		}
	}
}

// updateCatCell computes P(T_ij = z) as the normalised product over
// answers of q^{1[a=z]} * ((1-q)/(|L|-1))^{1[a!=z]} (uniform prior).
// Log-probabilities accumulate directly in the cell's posterior slice and
// are normalised in place; answers are sorted by worker, so repeated
// answers from one worker reuse the variance triple's erf/log work.
//
//tcrowd:noalloc
func (m *Model) updateCatCell(i, j, lo, hi int) {
	post := m.CatPost[i][j]
	for z := range post {
		post[z] = 0
	}
	lnL1 := m.lnL1[j]
	prevW := -1
	var lnQ, lnWrong float64
	for idx := lo; idx < hi; idx++ {
		a := &m.ilog.Ans[idx]
		if a.W != prevW {
			prevW = a.W
			s := m.cellVariance(i, j, a.W)
			var lnNotQ float64
			lnQ, lnNotQ = logQ(m.Opts.Eps, s)
			lnWrong = lnNotQ - lnL1
			// A worker's reputation weight tempers its evidence: the
			// log-likelihood contribution scales by w (w=1 is an exact
			// identity, so the unweighted path is bit-unchanged).
			w := m.weightOf(a.W)
			lnQ *= w
			lnWrong *= w
		}
		for z := range post {
			if z == a.Label {
				post[z] += lnQ
			} else {
				post[z] += lnWrong
			}
		}
	}
	stats.NormalizeLogProbs(post)
}

// updateContCell computes the Gaussian posterior of Eq. 4 in standardized
// units, with the N(0,1) column prior (mu0=0, phi0=1 after z-scoring).
//
//tcrowd:noalloc
func (m *Model) updateContCell(i, j, lo, hi int) {
	precision := 1.0 // prior 1/phi0
	weighted := 0.0  // prior mu0/phi0 = 0
	for idx := lo; idx < hi; idx++ {
		a := &m.ilog.Ans[idx]
		s := m.cellVariance(i, j, a.W)
		w := m.weightOf(a.W)
		precision += w / s
		weighted += w * a.Z / s
	}
	v := 1 / precision
	m.ContVar[i][j] = v
	m.ContMu[i][j] = weighted * v
}

// ELBO returns the MAP evidence lower bound
// E_T[ln P(A, T | params)] + ln P(params) + H(posterior), the quantity this
// MAP-EM ascends; it is the objective traced for Fig. 12a.
func (m *Model) ELBO() float64 {
	n, mm := m.Table.NumRows(), m.Table.NumCols()
	total := m.paramLogPrior(m.Alpha, m.Beta, m.Phi)
	for key := 0; key < n*mm; key++ {
		lo, hi := int(m.ilog.CellOff[key]), int(m.ilog.CellOff[key+1])
		if lo == hi {
			continue
		}
		i, j := key/mm, key%mm
		if m.ilog.Ans[lo].IsCat {
			total += m.elboCatCell(i, j, lo, hi)
		} else {
			total += m.elboContCell(i, j, lo, hi)
		}
	}
	return total
}

func (m *Model) elboCatCell(i, j, lo, hi int) float64 {
	post := m.CatPost[i][j]
	l := len(post)
	lnL1 := m.lnL1[j]
	q := 0.0
	// Expected log-likelihood of the answers.
	for idx := lo; idx < hi; idx++ {
		a := &m.ilog.Ans[idx]
		s := m.cellVariance(i, j, a.W)
		lnQ, lnNotQ := logQ(m.Opts.Eps, s)
		pCorrect := post[a.Label]
		q += m.weightOf(a.W) * (pCorrect*lnQ + (1-pCorrect)*(lnNotQ-lnL1))
	}
	// Uniform prior term.
	q += -math.Log(float64(l))
	// Posterior entropy.
	return q + stats.ShannonEntropy(post)
}

func (m *Model) elboContCell(i, j, lo, hi int) float64 {
	mu, v := m.ContMu[i][j], m.ContVar[i][j]
	q := 0.0
	for idx := lo; idx < hi; idx++ {
		a := &m.ilog.Ans[idx]
		s := m.cellVariance(i, j, a.W)
		d := a.Z - mu
		q += m.weightOf(a.W) * (-0.5*math.Log(2*math.Pi*s) - (d*d+v)/(2*s))
	}
	// Standard-normal prior: E[ln N(T; 0, 1)].
	q += -0.5*math.Log(2*math.Pi) - (mu*mu+v)/2
	// Differential entropy of the Gaussian posterior.
	return q + 0.5*math.Log(2*math.Pi*math.E*v)
}
