// Command tcrowd-bench regenerates the paper's evaluation tables and
// figures on the simulated stand-ins.
//
// Usage:
//
//	tcrowd-bench -exp table7           # one experiment
//	tcrowd-bench -exp fig2,fig5        # several
//	tcrowd-bench -exp all -trials 3    # everything, 3 trials per sweep
//	tcrowd-bench -list                 # show available experiment ids
//	tcrowd-bench -bench-json 0         # hot-path micro-benches -> BENCH_0.json
//	tcrowd-bench -bench-out out.json   # same benches, arbitrary output path
//	tcrowd-bench -compare BENCH_1.json out.json
//	                                   # perf-regression gate: fail on >25%
//	                                   # ns/op or >1 alloc + 0.1% allocs/op
//	                                   # growth in the gated (infer/,
//	                                   # refresh/, ingest/, shard/,
//	                                   # server/, wal/) series
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tcrowd/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed      = flag.Int64("seed", 1, "random seed")
		trials    = flag.Int("trials", 0, "trials per sweep point (0 = default)")
		quick     = flag.Bool("quick", false, "shrunken workloads (smoke mode)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		bench     = flag.Int("bench-json", -1, "run hot-path micro-benches and write BENCH_<n>.json")
		benchOut  = flag.String("bench-out", "", "run hot-path micro-benches and write the results to this path")
		benchOnly = flag.String("bench-only", "", "comma-separated series-name prefixes to run (empty = all); e.g. 'shard/' for the multi-core scheduler series")
		compare   = flag.Bool("compare", false, "compare two -bench-json files (args: baseline candidate); exit non-zero on gated regressions")
		gates     = flag.String("gate", "infer/,refresh/,ingest/,shard/,server/,wal/", "comma-separated series-name prefixes under the -compare regression gate")
		maxNs     = flag.Float64("max-ns-regress", 0.25, "allowed fractional ns/op growth for gated kernel series in -compare (concurrency/disk-bearing server/, shard/ and wal/ series never tighten below 25%; OS-paced wal/*-never series are ns-exempt)")
		maxAlloc  = flag.Float64("max-alloc-regress", 0.001, "allowed fractional allocs/op growth for gated kernel series in -compare, on top of a 1-alloc absolute slack (absorbs EM-iteration and benchmark-harness wobble; server/ series use a fixed 5%+4 slack because their timed windows race async shard refreshes)")
		waivers   = flag.String("waivers", "", "optional intended-regression declarations for -compare (perf-waivers.json): series prefixes whose gated failures report as WAIVED while the file's baseline_index matches the newest committed BENCH_N.json; stale files are ignored")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "tcrowd-bench: -compare needs exactly two args: baseline.json candidate.json")
			os.Exit(2)
		}
		cfg := compareConfig{maxNsRegress: *maxNs, maxAllocRegress: *maxAlloc}
		w, err := loadWaivers(*waivers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-bench: %v\n", err)
			os.Exit(2)
		}
		cfg.waivers = w
		for _, g := range strings.Split(*gates, ",") {
			if g = strings.TrimSpace(g); g != "" {
				cfg.gates = append(cfg.gates, g)
			}
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), cfg); err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var only []string
	for _, p := range strings.Split(*benchOnly, ",") {
		if p = strings.TrimSpace(p); p != "" {
			only = append(only, p)
		}
	}

	if *benchOut != "" {
		if err := runBenchFile(*benchOut, -1, only); err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bench >= 0 {
		if err := runBenchJSON(*bench, only); err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		if err := experiments.Run(id, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
