// Package assign implements T-Crowd's online task assignment (Sec. 5): the
// delta-entropy inherent information gain (Eq. 6) that makes categorical
// and continuous tasks comparable, the attribute-correlation error model
// behind structure-aware information gain (Eq. 7, Tables 4-5), batch top-K
// selection (Sec. 5.3), the heuristic policies of Fig. 5, the competitor
// systems of Fig. 2 (CDAS, AskIt!, CRH, CATD with random assignment), and
// a budgeted online simulator that replays the AMT protocol.
package assign

import (
	"math"
	"math/rand"

	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// State is everything a selection policy may consult: the fitted inference
// model, the answers so far, the (optional) attribute-correlation error
// model, and a random stream for tie-breaking.
type State struct {
	Model *core.Model
	Log   *tabular.AnswerLog
	// Est caches Model.Estimates() for the current refresh.
	Est metrics.Estimates
	// Err is the fitted attribute-correlation model; nil for policies that
	// do not use structure.
	Err *ErrorModel
	RNG *rand.Rand
}

// Policy selects which cells to hand to an arriving worker. All policies
// must avoid cells the worker already answered.
type Policy interface {
	// Name is the display name used in Fig. 5.
	Name() string
	// Select returns up to k cells for worker u, best first.
	Select(st *State, u tabular.WorkerID, k int) []tabular.Cell
}

// WorkerGate is an optional System extension: the platform installs a
// predicate deciding whether a worker may receive tasks at all (the
// reputation layer's quarantine hook). A gated-out worker gets no cells
// from Select, whatever the policy would have scored for them.
type WorkerGate interface {
	SetWorkerGate(allow func(tabular.WorkerID) bool)
}

// System is a complete crowdsourcing pipeline for the end-to-end comparison
// (Fig. 2): inference plus assignment plus any internal bookkeeping (e.g.
// CDAS task termination).
type System interface {
	// Name is the display name used in Fig. 2.
	Name() string
	// Refresh re-runs the system's inference over the current log.
	Refresh(tbl *tabular.Table, log *tabular.AnswerLog) error
	// Select returns up to k cells to assign to worker u.
	Select(u tabular.WorkerID, k int, log *tabular.AnswerLog) []tabular.Cell
	// Estimates returns the system's current truth estimates.
	Estimates() metrics.Estimates
}

// candidateCells lists cells worker u may still answer, in row-major order.
func candidateCells(tbl *tabular.Table, log *tabular.AnswerLog, u tabular.WorkerID) []tabular.Cell {
	// Collect u's answered cells once instead of calling HasAnswered per
	// cell (which scans the worker's history each time).
	answered := map[tabular.Cell]bool{}
	for _, a := range log.ByWorker(u) {
		answered[a.Cell] = true
	}
	var out []tabular.Cell
	for i := 0; i < tbl.NumRows(); i++ {
		for j := 0; j < tbl.NumCols(); j++ {
			c := tabular.Cell{Row: i, Col: j}
			if !answered[c] {
				out = append(out, c)
			}
		}
	}
	return out
}

// sFromQuality inverts q = erf(eps / sqrt(2 s)) to the effective variance
// that a worker of quality q carries. Quality is clamped away from {0, 1}.
func sFromQuality(eps, q float64) float64 {
	q = stats.Clamp(q, 1e-9, 1-1e-12)
	x := math.Erfinv(q)
	if x <= 0 {
		return maxEffectiveVariance
	}
	return stats.Clamp(eps*eps/(2*x*x), minEffectiveVariance, maxEffectiveVariance)
}

const (
	minEffectiveVariance = 1e-8
	maxEffectiveVariance = 1e8
)

// topK returns the k cells with the highest scores (greedy, Sec. 5.3),
// breaking ties by row-major order for determinism.
func topK(cells []tabular.Cell, scores []float64, k int) []tabular.Cell {
	type pair struct {
		c tabular.Cell
		s float64
	}
	ps := make([]pair, len(cells))
	for i := range cells {
		ps[i] = pair{cells[i], scores[i]}
	}
	// Partial selection sort: k is small (a HIT's worth of tasks).
	if k > len(ps) {
		k = len(ps)
	}
	for sel := 0; sel < k; sel++ {
		best := sel
		for i := sel + 1; i < len(ps); i++ {
			if ps[i].s > ps[best].s {
				best = i
			}
		}
		ps[sel], ps[best] = ps[best], ps[sel]
	}
	out := make([]tabular.Cell, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].c
	}
	return out
}
