package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/internal/platform"
)

// seedBooks creates the books project with one answered row and a
// published generation 1.
func seedBooks(t *testing.T, c *Client, p *platform.Platform) {
	t.Helper()
	ctx := context.Background()
	if err := c.CreateProject(ctx, api.CreateProjectRequest{
		ID: "books", Schema: schema(), Rows: 4, RefreshEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAnswers(ctx, "books", []api.Answer{
		api.LabelAnswer("s1", 0, "category", "movie"),
		api.LabelAnswer("s2", 0, "category", "movie"),
		api.NumberAnswer("s1", 0, "price", 99),
		api.NumberAnswer("s2", 0, "price", 101),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimates(ctx, "books", EstimatesQuery{MinGeneration: api.GenerationFresh}); err != nil {
		t.Fatal(err)
	}
	_ = p
}

// TestClientWatchLongPoll drives the long-poll flow through the SDK:
// catch-up, parked wake on publish, and the nil-nil timeout contract.
func TestClientWatchLongPoll(t *testing.T) {
	c, p := newTestServer(t)
	seedBooks(t, c, p)
	ctx := context.Background()

	// Catch-up: after=0 against a project at generation >= 1.
	ev, err := c.Watch(ctx, "books", 0, 5*time.Second)
	if err != nil || ev == nil || ev.Generation < 1 {
		t.Fatalf("catch-up watch: %+v %v", ev, err)
	}
	last := ev.Generation

	// Parked poll woken by a publish.
	got := make(chan *api.WatchEvent, 1)
	errc := make(chan error, 1)
	go func() {
		ev, err := c.Watch(ctx, "books", last, 30*time.Second)
		errc <- err
		got <- ev
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := c.SubmitAnswer(ctx, "books", api.NumberAnswer("w3", 1, "price", 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimates(ctx, "books", EstimatesQuery{MinGeneration: api.GenerationFresh}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if ev = <-got; err != nil || ev == nil || ev.Generation <= last {
			t.Fatalf("parked watch: %+v %v", ev, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked watch never woke")
	}

	// Timeout: nothing newer than a huge after -> (nil, nil).
	ev, err = c.Watch(ctx, "books", 1<<30, time.Second)
	if err != nil || ev != nil {
		t.Fatalf("timed-out watch: %+v %v", ev, err)
	}

	// Unknown project -> typed error.
	var ae *APIError
	if _, err := c.Watch(ctx, "ghost", 0, time.Second); !errors.As(err, &ae) || ae.Code != api.CodeNoProject {
		t.Fatalf("ghost watch: %v", err)
	}
}

// TestClientWatchSurvivesHTTPClientTimeout pins the streaming-path rule:
// a Timeout configured via WithHTTPClient (sane hardening for the short
// request/response calls) must NOT kill a long-poll parked longer than it
// at the server — Watch strips it and bounds itself by context instead.
func TestClientWatchSurvivesHTTPClientTimeout(t *testing.T) {
	c, p := newTestServer(t)
	seedBooks(t, c, p)
	short := New(c.base, WithHTTPClient(&http.Client{Timeout: 200 * time.Millisecond}))

	// Parked for ~1s (far past the http.Client timeout), then a clean
	// no-event timeout result rather than a transport error.
	start := time.Now()
	ev, err := short.Watch(context.Background(), "books", 1<<30, time.Second)
	if err != nil || ev != nil {
		t.Fatalf("watch through short-timeout client: %+v %v", ev, err)
	}
	if time.Since(start) < 900*time.Millisecond {
		t.Fatalf("poll returned after %v — killed by the client timeout?", time.Since(start))
	}

	// The short timeout still applies to plain calls.
	if _, err := short.Estimates(context.Background(), "books", EstimatesQuery{}); err != nil {
		t.Fatalf("plain call through short-timeout client: %v", err)
	}
}

// TestClientWatchStream pins the SSE flow end to end: the stream delivers
// the catch-up event and then every generation bump (in order, none
// missed) while answers land, and ends cleanly on context cancel.
func TestClientWatchStream(t *testing.T) {
	c, p := newTestServer(t)
	seedBooks(t, c, p)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	events, errc := c.WatchStream(ctx, "books", 0)
	next := func() api.WatchEvent {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream ended early: %v", <-errc)
			}
			return ev
		case <-time.After(10 * time.Second):
			t.Fatal("no stream event in time")
			return api.WatchEvent{}
		}
	}

	first := next() // catch-up
	if first.Generation < 1 {
		t.Fatalf("catch-up stream event: %+v", first)
	}
	last := first.Generation
	for i := 0; i < 3; i++ {
		w := fmt.Sprintf("stream-%d", i)
		if _, err := c.SubmitAnswer(context.Background(), "books", api.NumberAnswer(w, 2, "price", float64(40+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Estimates(context.Background(), "books", EstimatesQuery{MinGeneration: api.GenerationFresh}); err != nil {
			t.Fatal(err)
		}
		ev := next()
		if ev.Generation != last+1 || ev.Coalesced {
			t.Fatalf("stream event after publish %d: %+v (last %d)", i, ev, last)
		}
		last = ev.Generation
	}

	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stream end error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on cancel")
	}
}

// TestClientAllEstimatesCoherentUnderWrites is the SDK half of the
// read-coherence criterion: AllEstimates — which no longer has any drift
// detection or retry machinery — returns a single-generation body even
// with a publish interleaved between every page, because the cursor pins
// the walk server-side.
func TestClientAllEstimatesCoherentUnderWrites(t *testing.T) {
	c, p := newTestServer(t)
	seedBooks(t, c, p)
	ctx := context.Background()

	// Interleave publishes with the walk via a midstream hook: run the
	// walk page by page manually through the same query surface the
	// helper uses, forcing a new generation before each page.
	pinned, err := c.Estimates(ctx, "books", EstimatesQuery{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	pages := 1
	for pinned.NextCursor != "" {
		w := fmt.Sprintf("racer-%03d", pages)
		if _, err := c.SubmitAnswer(ctx, "books", api.NumberAnswer(w, 3, "price", 60)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Estimates(ctx, "books", EstimatesQuery{MinGeneration: api.GenerationFresh}); err != nil {
			t.Fatal(err)
		}
		page, err := c.Estimates(ctx, "books", EstimatesQuery{Cursor: pinned.NextCursor, Limit: 1})
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if page.Generation != pinned.Generation {
			t.Fatalf("page %d generation %d, pinned %d", pages, page.Generation, pinned.Generation)
		}
		pinned.Estimates = append(pinned.Estimates, page.Estimates...)
		pinned.NextCursor = page.NextCursor
	}
	if pages < 3 {
		t.Fatalf("walk took %d pages", pages)
	}

	// And the helper end to end: coherent merged body, newest state.
	merged, err := c.AllEstimates(ctx, "books", 1, EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Generation <= pinned.Generation {
		t.Fatalf("fresh walk generation %d not past pinned %d", merged.Generation, pinned.Generation)
	}
	if len(merged.Estimates) < len(pinned.Estimates) {
		t.Fatalf("fresh walk lost estimates: %d < %d", len(merged.Estimates), len(pinned.Estimates))
	}
}
