package platform

import (
	"log"
	"net/http"
	"sync"
)

// routeDef is one row of the server's route registration table. NewServer
// registers exactly this table and nothing else, and cmd/tcrowd-apiroutes
// renders it into docs/api-routes.txt — the CI docs job diffs the two, so
// the documented API surface cannot drift from the mux.
type routeDef struct {
	method  string
	pattern string
	// legacy marks a pre-v1 alias: kept for one release, logged as
	// deprecated on first use.
	legacy  bool
	handler func(*Server, http.ResponseWriter, *http.Request)
}

// routeTable is the full wire surface: the versioned /v1 API first, then
// the legacy unversioned aliases. Legacy GET routes share the v1 handlers
// (success bodies are unchanged and pagination is opt-in; error bodies DO
// change shape from the old {"error":"<string>"} to the typed envelope —
// an accepted break during the deprecation window, documented in the
// server README); the legacy answers route keeps its historical
// single-answer + label-precedence + 429 semantics via its own thin
// handler.
var routeTable = []routeDef{
	{"POST", "/v1/projects", false, (*Server).createProject},
	{"GET", "/v1/projects", false, (*Server).listProjects},
	{"GET", "/v1/projects/{id}/tasks", false, (*Server).tasks},
	{"POST", "/v1/projects/{id}/answers", false, (*Server).submitV1},
	{"GET", "/v1/projects/{id}/estimates", false, (*Server).estimates},
	{"GET", "/v1/projects/{id}/snapshot", false, (*Server).snapshot},
	{"GET", "/v1/projects/{id}/stats", false, (*Server).stats},
	{"GET", "/v1/stats", false, (*Server).shardStats},

	{"POST", "/projects", true, (*Server).createProject},
	{"GET", "/projects", true, (*Server).listProjects},
	{"GET", "/projects/{id}/tasks", true, (*Server).tasks},
	{"POST", "/projects/{id}/answers", true, (*Server).submitLegacy},
	{"GET", "/projects/{id}/estimates", true, (*Server).estimates},
	{"GET", "/projects/{id}/snapshot", true, (*Server).snapshot},
	{"GET", "/projects/{id}/stats", true, (*Server).stats},
	{"GET", "/stats", true, (*Server).shardStats},
}

// Route is one row of the public route listing, exposed for the API-drift
// check (cmd/tcrowd-apiroutes) and documentation tooling.
type Route struct {
	Method  string
	Pattern string
	// Legacy marks deprecated unversioned aliases.
	Legacy bool
}

// Routes returns the server's full route table in registration order.
func Routes() []Route {
	out := make([]Route, len(routeTable))
	for i, r := range routeTable {
		out[i] = Route{Method: r.method, Pattern: r.pattern, Legacy: r.legacy}
	}
	return out
}

// registerRoutes installs the route table on the server's mux. Legacy
// routes are wrapped to log a deprecation notice on their first use.
func (s *Server) registerRoutes() {
	s.deprecated = make([]sync.Once, len(routeTable))
	for i, r := range routeTable {
		h := func(w http.ResponseWriter, req *http.Request) { r.handler(s, w, req) }
		if r.legacy {
			once := &s.deprecated[i]
			inner := h
			h = func(w http.ResponseWriter, req *http.Request) {
				once.Do(func() {
					log.Printf("platform: deprecated route %s %s used; migrate to the /v1 API (this alias will be removed next release)",
						r.method, r.pattern)
				})
				inner(w, req)
			}
		}
		s.mux.HandleFunc(r.method+" "+r.pattern, h)
	}
}
