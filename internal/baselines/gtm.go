package baselines

import (
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// GTM is the Gaussian Truth Model of Zhao & Han (QDB'12) for continuous
// data: truth ~ N(mu0, sigma0^2), answers ~ N(truth, sigma_u^2) with one
// variance per worker. Columns are z-scored so sigma_u is shared across
// columns (GTM applied to the whole continuous sub-table); a weak
// inverse-gamma prior keeps sparse workers' variances finite, matching the
// stabilisation used by the core model.
type GTM struct {
	// MaxIter bounds EM iterations (default 50).
	MaxIter int
}

// Name implements Method.
func (GTM) Name() string { return "GTM" }

// Infer implements Method.
func (g GTM) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	maxIter := g.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	est := metrics.NewEstimates(tbl)

	cont := contColumns(tbl)
	if len(cont) == 0 {
		return est, nil
	}
	// Column standardisation constants from answers.
	colMean := make([]float64, tbl.NumCols())
	colStd := make([]float64, tbl.NumCols())
	perCol := make([][]float64, tbl.NumCols())
	for _, a := range log.All() {
		if a.Value.Kind == tabular.Number {
			perCol[a.Cell.Col] = append(perCol[a.Cell.Col], a.Value.X)
		}
	}
	for _, j := range cont {
		colStd[j] = 1
		if len(perCol[j]) > 0 {
			m, v := stats.MeanVariance(perCol[j])
			colMean[j] = m
			if v > 1e-12 {
				colStd[j] = stats.StdDev(perCol[j])
			}
		}
	}

	type obs struct {
		w, cell int
		z       float64
	}
	type cellKey struct{ i, j int }
	var observations []obs
	var cells []cellKey
	cellIdx := map[cellKey]int{}
	workerIdx := map[tabular.WorkerID]int{}
	for _, j := range cont {
		for i := 0; i < tbl.NumRows(); i++ {
			as := log.ByCell(tabular.Cell{Row: i, Col: j})
			if len(as) == 0 {
				continue
			}
			key := cellKey{i, j}
			c, ok := cellIdx[key]
			if !ok {
				c = len(cells)
				cellIdx[key] = c
				cells = append(cells, key)
			}
			for _, a := range as {
				w, ok := workerIdx[a.Worker]
				if !ok {
					w = len(workerIdx)
					workerIdx[a.Worker] = w
				}
				observations = append(observations, obs{w: w, cell: c, z: stats.Standardize(a.Value.X, colMean[j], colStd[j])})
			}
		}
	}
	if len(observations) == 0 {
		return est, nil
	}
	nw, nc := len(workerIdx), len(cells)

	sigma2 := make([]float64, nw)
	for w := range sigma2 {
		sigma2[w] = 0.2
	}
	mu := make([]float64, nc)
	v := make([]float64, nc)

	const (
		priorA = 1.0 // inverse-gamma shape
		priorB = 0.4 // inverse-gamma scale (mode 0.2)
	)
	for it := 0; it < maxIter; it++ {
		// E-step: Gaussian posterior per cell with N(0,1) prior.
		prec := make([]float64, nc)
		wsum := make([]float64, nc)
		for c := range prec {
			prec[c] = 1
		}
		for _, o := range observations {
			prec[o.cell] += 1 / sigma2[o.w]
			wsum[o.cell] += o.z / sigma2[o.w]
		}
		for c := 0; c < nc; c++ {
			v[c] = 1 / prec[c]
			mu[c] = wsum[c] * v[c]
		}

		// M-step: MAP update of worker variances.
		num := make([]float64, nw)
		den := make([]float64, nw)
		for _, o := range observations {
			d := o.z - mu[o.cell]
			num[o.w] += d*d + v[o.cell]
			den[o.w]++
		}
		delta := 0.0
		for w := 0; w < nw; w++ {
			s := (priorB + num[w]/2) / (priorA + 1 + den[w]/2)
			if d := absf(s - sigma2[w]); d > delta {
				delta = d
			}
			sigma2[w] = s
		}
		if delta < 1e-8 {
			break
		}
	}

	for c, key := range cells {
		est[key.i][key.j] = tabular.NumberValue(stats.Unstandardize(mu[c], colMean[key.j], colStd[key.j]))
	}
	return est, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
