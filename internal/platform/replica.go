package platform

import (
	"errors"
	"fmt"

	"tcrowd/api"
	"tcrowd/internal/metrics"
	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

// Cluster-facing replication surface. The platform itself knows nothing
// about peers, rings or HTTP: it exposes (a) a publish hook the cluster
// layer taps to stream generations out of a home node, (b) an apply path
// that installs replicated generations into follower-mode projects, and
// (c) WAL ship/adopt/demote primitives for cold catch-up and membership
// handoff. internal/cluster wires these to the wire.

// Replication sentinels.
var (
	// ErrNotHome rejects a write (or strongly consistent read) that
	// reached a node the cluster ring does not make responsible for the
	// project. The concrete error is a *NotHomeError carrying the home
	// node's base URL, surfaced on the wire as 421 not_home with an
	// envelope Home field the SDK follows automatically.
	ErrNotHome = errors.New("platform: not the project's home node")
	// ErrReplicaStale rejects a generation-pinned read on a replica that
	// has not received the requested generation yet. Retryable: the
	// replication stream delivers it shortly.
	ErrReplicaStale = errors.New("platform: generation not replicated to this node yet")
)

// NotHomeError is the concrete ErrNotHome: it names the project and the
// home node's base URL so the edge (and through it the SDK) can re-issue
// the request at the right node.
type NotHomeError struct {
	Project string
	// Home is the home node's base URL ("http://host:port"), empty when
	// the rejecting node does not know it (e.g. mid-membership-change).
	Home string
}

// Error implements the error interface.
func (e *NotHomeError) Error() string {
	if e.Home == "" {
		return fmt.Sprintf("platform: project %q is not homed on this node", e.Project)
	}
	return fmt.Sprintf("platform: project %q is homed at %s", e.Project, e.Home)
}

// Unwrap ties the concrete error to the ErrNotHome sentinel (and through
// it to the errtable row).
func (e *NotHomeError) Unwrap() error { return ErrNotHome }

// ProjectMeta is the immutable registration half of a project, handed to
// the publish hook so replication payloads are self-sufficient (a
// follower can create the project from the first generation it receives).
// Schema and Entities are immutable after creation, so sharing them with
// the hook is safe.
type ProjectMeta struct {
	ID       string
	Schema   tabular.Schema
	Entities []string
}

// PublishHook observes every snapshot publish on home (non-follower)
// projects. It runs synchronously on the publishing shard worker, so
// implementations must be fast — the cluster layer only enqueues the
// generation onto per-peer shippers and returns.
type PublishHook func(meta ProjectMeta, res *InferenceResult, ev api.WatchEvent)

// SetPublishHook installs (or, with nil, removes) the publish hook.
// Typically called once at boot before traffic; safe concurrently with
// publishes either way.
func (p *Platform) SetPublishHook(h PublishHook) {
	if h == nil {
		p.pubHook.Store(nil)
		return
	}
	p.pubHook.Store(&h)
}

// ReplicatedGeneration is one published generation in transit from a home
// node to its followers: the project's registration facts (so a follower
// can create the project on first contact) plus the full immutable result
// and the watch event the home fanned out. Applying the same payload on
// any node yields byte-identical estimate pages — the result fields are
// exactly what renderEstimates consumes.
type ReplicatedGeneration struct {
	Project  string         `json:"project"`
	Schema   tabular.Schema `json:"schema"`
	Entities []string       `json:"entities"`

	Generation    int                          `json:"generation"`
	AnswersSeen   int                          `json:"answers_seen"`
	Iterations    int                          `json:"iterations"`
	Converged     bool                         `json:"converged"`
	Estimates     metrics.Estimates            `json:"estimates"`
	WorkerQuality map[tabular.WorkerID]float64 `json:"worker_quality,omitempty"`

	// Event is the watch event the home node published for this
	// generation; followers fan it out to their own watchers verbatim.
	Event api.WatchEvent `json:"event"`
}

// BuildReplicatedGeneration packages one publish for the wire — the
// cluster layer calls this from its publish hook.
func BuildReplicatedGeneration(meta ProjectMeta, res *InferenceResult, ev api.WatchEvent) ReplicatedGeneration {
	return ReplicatedGeneration{
		Project:       meta.ID,
		Schema:        meta.Schema,
		Entities:      meta.Entities,
		Generation:    res.Generation,
		AnswersSeen:   res.AnswersSeen,
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		Estimates:     res.Estimates,
		WorkerQuality: res.WorkerQuality,
		Event:         ev,
	}
}

// result rehydrates the payload into the immutable form the serving path
// consumes. The payload is decoded fresh per request, so sharing its
// slices/maps with the result is safe.
func (g *ReplicatedGeneration) result() *InferenceResult {
	return &InferenceResult{
		Estimates:     g.Estimates,
		WorkerQuality: g.WorkerQuality,
		Iterations:    g.Iterations,
		Converged:     g.Converged,
		Generation:    g.Generation,
		AnswersSeen:   g.AnswersSeen,
	}
}

// validate checks the payload is internally consistent before any state
// is touched: a malformed grid must not reach the render path.
func (g *ReplicatedGeneration) validate() error {
	if g.Project == "" {
		return errors.New("platform: replicated generation without project id")
	}
	if g.Generation <= 0 {
		return fmt.Errorf("platform: replicated generation %d out of range", g.Generation)
	}
	if err := g.Schema.Validate(); err != nil {
		return err
	}
	if len(g.Entities) == 0 {
		return errors.New("platform: replicated generation without entities")
	}
	if len(g.Estimates) != len(g.Entities) {
		return fmt.Errorf("platform: %d estimate rows for %d entities", len(g.Estimates), len(g.Entities))
	}
	cols := len(g.Schema.Columns)
	for i, row := range g.Estimates {
		if len(row) != cols {
			return fmt.Errorf("platform: estimate row %d has %d cells for %d columns", i, len(row), cols)
		}
	}
	return nil
}

// ApplyReplicatedGeneration installs one generation shipped from the
// project's home node. On first contact the project is created in
// follower mode (writes reject with NotHomeError; the pinned-read surface
// serves the replicated generations). Stale or duplicate generations are
// dropped silently, so redelivery — stream retries racing cold catch-up —
// is idempotent. Applying to a project homed on THIS node is refused: two
// nodes believing they own a project must fail loudly, not interleave
// histories.
func (p *Platform) ApplyReplicatedGeneration(g *ReplicatedGeneration, home string) error {
	if err := g.validate(); err != nil {
		return err
	}
	p.mu.Lock()
	proj, ok := p.projects[g.Project]
	if !ok {
		var err error
		proj, err = p.createProjectLocked(g.Project, g.Schema, ProjectConfig{
			Rows:     len(g.Entities),
			Entities: g.Entities,
		})
		if err != nil {
			p.mu.Unlock()
			return err
		}
		proj.follower = true
	}
	if !proj.follower {
		p.mu.Unlock()
		return fmt.Errorf("platform: project %q is homed on this node; refusing replicated generation %d", g.Project, g.Generation)
	}
	proj.homeAddr = home
	p.mu.Unlock()

	// Serialise applies per project: the live stream and a cold catch-up
	// can deliver concurrently, and the stale-check plus install must be
	// atomic against each other. inferMu is otherwise unused on followers
	// (they never run inference), so it doubles as the apply mutex.
	proj.inferMu.Lock()
	defer proj.inferMu.Unlock()
	if cur := proj.snapshot.Load(); cur != nil && g.Generation <= cur.Generation {
		return nil
	}
	ev := g.Event
	if ev.Generation != g.Generation || ev.Project != g.Project {
		// Defensive: never fan out an event that disagrees with the result
		// it announces.
		ev = api.WatchEvent{Project: g.Project, Generation: g.Generation, AnswersSeen: g.AnswersSeen,
			Workers: len(g.WorkerQuality), Converged: g.Converged}
	}
	p.mu.Lock()
	proj.replicaAnswers = g.AnswersSeen
	proj.replicaWorkers = len(g.WorkerQuality)
	p.mu.Unlock()
	p.installResult(proj, g.result(), ev)
	return nil
}

// LatestReplicated packages the project's newest published generation for
// the wire (ok false before the first publish) — the payload behind the
// internal latest-generation endpoint, used by followers for cold
// catch-up and by handoff to seed generation continuity.
func (p *Platform) LatestReplicated(projectID string) (ReplicatedGeneration, bool, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	if !ok {
		p.mu.Unlock()
		return ReplicatedGeneration{}, false, ErrNoProject
	}
	meta := ProjectMeta{ID: proj.ID, Schema: proj.Table.Schema, Entities: proj.Table.Entities}
	p.mu.Unlock()
	res := proj.snapshot.Load()
	if res == nil {
		return ReplicatedGeneration{}, false, nil
	}
	proj.genMu.RLock()
	ev := proj.lastEvent
	proj.genMu.RUnlock()
	return BuildReplicatedGeneration(meta, res, ev), true, nil
}

// HasWAL reports whether the platform runs with durability enabled — the
// precondition for WAL mirroring, adoption and handoff.
func (p *Platform) HasWAL() bool { return p.walOpts != nil }

// IsFollower reports whether the project lives on this node in follower
// mode, and if so where its home is. The cluster edge uses it to decide
// between serving a read locally and routing it.
func (p *Platform) IsFollower(projectID string) (follower bool, home string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[projectID]
	if !ok {
		return false, "", ErrNoProject
	}
	return proj.follower, proj.homeAddr, nil
}

// ShipWAL snapshots the project's WAL segments with index >= from for
// shipping to a follower (cold catch-up) or a new home (handoff). Only
// the home node ships; followers redirect via NotHomeError.
func (p *Platform) ShipWAL(projectID string, from int) ([]wal.ShippedSegment, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	if !ok {
		p.mu.Unlock()
		return nil, ErrNoProject
	}
	if proj.follower {
		home := proj.homeAddr
		p.mu.Unlock()
		return nil, &NotHomeError{Project: projectID, Home: home}
	}
	l := proj.wal
	p.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("platform: project %q runs without a write-ahead log; nothing to ship", projectID)
	}
	return l.ShipSegments(from)
}

// ReplicateWAL lays a home node's shipped segments down as this node's
// durable mirror of the project, creating the project in follower mode
// (via the ordinary recovery path — torn-tail truncation and all) when it
// is not in memory yet. The mirror is what makes promotion cheap: a
// follower that becomes home on a membership change replays its own disk.
// It returns the highest segment index now mirrored, the shipper's next
// `from` watermark.
//
// A crash mid-write leaves a torn or missing tail; the next call rewrites
// the shipped set wholesale (WriteSegments replaces, then prunes), so
// convergence needs no per-byte bookkeeping.
func (p *Platform) ReplicateWAL(projectID string, segs []wal.ShippedSegment, home string) (int, error) {
	if p.walOpts == nil {
		return 0, errors.New("platform: WAL replication requires durability (Options.WAL)")
	}
	if len(segs) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	proj, exists := p.projects[projectID]
	if exists && !proj.follower {
		p.mu.Unlock()
		return 0, fmt.Errorf("platform: project %q is homed on this node; refusing WAL replication", projectID)
	}
	p.mu.Unlock()

	dir := p.walOpts.projDir(projectID)
	// A first contact is a full resync and adopts the sender's exact
	// segment set (prune); incremental tail refreshes must keep the
	// already-mirrored lower segments.
	if err := wal.WriteSegments(p.walOpts.fs(), dir, segs, !exists); err != nil {
		return 0, err
	}
	top := 0
	for _, s := range segs {
		if s.Index > top {
			top = s.Index
		}
	}
	if exists {
		// In-memory state is fed by the generation stream; this call only
		// refreshed the durable mirror.
		return top, nil
	}
	rec, _, err := p.recoverProject(dir)
	if err != nil {
		return 0, err
	}
	if rec == nil {
		return 0, fmt.Errorf("platform: shipped WAL for %q held no records", projectID)
	}
	p.mu.Lock()
	rec.follower = true
	rec.homeAddr = home
	// Floor the replica counters at the mirrored log until the first
	// generation push overwrites them.
	rec.replicaAnswers = rec.Log.Len()
	rec.replicaWorkers = rec.Log.NumWorkers()
	// Followers never append: the mirror lives on disk only, refreshed by
	// later ReplicateWAL rounds (which write through the FS directly).
	l := rec.wal
	rec.wal = nil
	p.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	return top, nil
}

// AdoptWAL promotes this node to the project's home from a handoff push:
// the previous home ships its full segment set plus its latest published
// generation, and the receiver rebuilds the project from the shipped WAL
// through the ordinary recovery path. The seed generation is installed
// first so generation numbering continues where the old home left off
// (pinned readers and watchers never see the counter restart).
//
// Returns adopted=false (and no error) when the project is already homed
// here — the idempotent answer to a duplicate push.
func (p *Platform) AdoptWAL(projectID string, segs []wal.ShippedSegment, seed *ReplicatedGeneration) (adopted bool, err error) {
	if p.walOpts == nil {
		return false, errors.New("platform: WAL adoption requires durability (Options.WAL)")
	}
	if len(segs) == 0 {
		return false, fmt.Errorf("platform: empty WAL push for %q", projectID)
	}
	p.mu.Lock()
	old, exists := p.projects[projectID]
	if exists && !old.follower {
		p.mu.Unlock()
		return false, nil
	}
	if exists {
		// Promoting an in-memory follower: drop it and rebuild from the
		// authoritative shipped WAL; its hub and retained generations are
		// carried over below so watchers and pinned readers survive.
		delete(p.projects, projectID)
	}
	p.mu.Unlock()

	dir := p.walOpts.projDir(projectID)
	if err := wal.WriteSegments(p.walOpts.fs(), dir, segs, true); err != nil {
		return false, err
	}
	proj, _, err := p.recoverProject(dir)
	if err != nil {
		return false, err
	}
	if proj == nil {
		return false, fmt.Errorf("platform: pushed WAL for %q held no records", projectID)
	}
	if exists {
		// Continuity for clients already attached to the replica: existing
		// watchers keep their subscription (the old hub replaces the fresh
		// one) and pinned reads against replicated generations keep
		// resolving (the old retained ring seeds the new one).
		p.mu.Lock()
		proj.hub = old.hub
		p.mu.Unlock()
		old.genMu.RLock()
		retained := append([]*InferenceResult(nil), old.retained...)
		lastEv := old.lastEvent
		old.genMu.RUnlock()
		proj.genMu.Lock()
		n := len(retained)
		if n > cap(proj.retained) {
			retained = retained[n-cap(proj.retained):]
		}
		proj.retained = append(proj.retained[:0], retained...)
		proj.lastEvent = lastEv
		proj.genMu.Unlock()
		if latest := old.snapshot.Load(); latest != nil {
			proj.snapshot.Store(latest)
		}
	}
	if seed != nil && seed.Generation > 0 {
		if cur := proj.snapshot.Load(); cur == nil || seed.Generation > cur.Generation {
			ev := seed.Event
			if ev.Generation != seed.Generation || ev.Project != projectID {
				ev = api.WatchEvent{Project: projectID, Generation: seed.Generation,
					AnswersSeen: seed.AnswersSeen, Workers: len(seed.WorkerQuality), Converged: seed.Converged}
			}
			p.installResult(proj, seed.result(), ev)
		}
	}
	if proj.Log.Len() > 0 {
		// Warm the model like boot recovery does: the first post-handoff
		// read should not pay the cold fit.
		_ = p.sched.Submit(proj.ID, func() error { return p.refreshProject(proj) })
	}
	return true, nil
}

// DemoteToReplica flips a home project into follower mode after its data
// moved to a new home (membership change): writes start rejecting with
// NotHomeError, the retained generations keep serving reads, and the
// project's WAL append handle closes. The WAL directory stays on disk as
// the follower's mirror — later ReplicateWAL rounds from the new home
// overwrite it with the authoritative copy. (A restart before that
// recovers the project as home; the cluster layer re-demotes at boot when
// the ring disagrees, so the loop self-heals.)
func (p *Platform) DemoteToReplica(projectID, home string) error {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	if !ok {
		p.mu.Unlock()
		return ErrNoProject
	}
	if proj.follower {
		proj.homeAddr = home
		p.mu.Unlock()
		return nil
	}
	proj.follower = true
	proj.homeAddr = home
	proj.replicaAnswers = proj.Log.Len()
	proj.replicaWorkers = proj.Log.NumWorkers()
	l := proj.wal
	proj.wal = nil
	p.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	return nil
}

// RemoveReplica drops a follower-mode project (the home node deleted it):
// watchers close, lookups start failing with ErrNoProject, and the WAL
// mirror is reaped tombstone-first like DeleteProject. Refuses home
// projects — deleting those is DeleteProject's job, with its own
// durability dance.
func (p *Platform) RemoveReplica(projectID string) error {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	if !ok {
		p.mu.Unlock()
		return ErrNoProject
	}
	if !proj.follower {
		p.mu.Unlock()
		return fmt.Errorf("platform: project %q is homed on this node; use DeleteProject", projectID)
	}
	delete(p.projects, projectID)
	p.mu.Unlock()
	proj.hub.close()
	if p.walOpts != nil {
		fs := p.walOpts.fs()
		dir := p.walOpts.projDir(projectID)
		tomb := dir + walTombstoneSuffix
		if err := fs.Rename(dir, tomb); err == nil {
			_ = fs.SyncDir(p.walOpts.Dir)
			_ = fs.RemoveAll(tomb)
		}
	}
	return nil
}
