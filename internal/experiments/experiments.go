// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6) on the simulated stand-ins. Each experiment has an
// id (table6, table7, fig2 ... fig12, ablation), prints the same rows or
// series the paper reports, and returns structured results for tests and
// benchmarks (run them via cmd/tcrowd-bench).
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Trials is the number of repetitions averaged in synthetic sweeps
	// (default 5; the paper used 100).
	Trials int
	// Quick shrinks workloads for tests and smoke benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trials <= 0 {
		c.Trials = 5
		if c.Quick {
			c.Trials = 2
		}
	}
	return c
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// All lists every experiment in the paper's order.
func All() []Experiment {
	return []Experiment{
		{"table6", "Dataset statistics", runTable6},
		{"table7", "Effectiveness of truth inference", runTable7},
		{"fig2", "End-to-end task assignment comparison", runFig2},
		{"fig3", "Uniform worker quality heat map", runFig3},
		{"fig4", "Estimated vs actual worker quality", runFig4},
		{"fig5", "Assignment heuristics", runFig5},
		{"fig6", "Correlation among attributes", runFig6},
		{"fig7", "Effect of the number of columns", runFig7},
		{"fig8", "Effect of the ratio of categorical columns", runFig8},
		{"fig9", "Effect of average difficulty", runFig9},
		{"fig10", "Noise in workers' answers", runFig10},
		{"fig11", "Efficiency of assignment", runFig11},
		{"fig12", "Efficiency of truth inference", runFig12},
		{"ablation", "Design-choice ablations", runAblations},
	}
}

// Run executes one experiment by id.
func Run(id string, w io.Writer, cfg Config) error {
	for _, e := range All() {
		if e.ID == id {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
			return e.Run(w, cfg)
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}

// fmtMetric renders a metric cell, using "/" for NaN exactly as the
// paper's tables do.
func fmtMetric(x float64) string {
	if x != x { // NaN
		return "/"
	}
	return fmt.Sprintf("%.4f", x)
}
