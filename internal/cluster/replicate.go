package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"tcrowd/api"
	"tcrowd/internal/platform"
	"tcrowd/internal/wal"
)

// contextWithTimeout derives the standard internal-request deadline from
// an outgoing request's context.
func contextWithTimeout(req *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(req.Context(), d)
}

// shipRetryDelay paces resends after a failed generation ship. Newer
// generations supersede queued ones, so a retry always sends the freshest
// state — the delay is just a breather, not a queue drain.
const shipRetryDelay = 250 * time.Millisecond

// onPublish is the platform publish hook: every generation published by a
// project homed here fans out to all peers. It only enqueues (the hook
// runs synchronously on the publishing shard worker); the per-peer
// shipper goroutines do the network work.
func (n *Node) onPublish(meta platform.ProjectMeta, res *platform.InferenceResult, ev api.WatchEvent) {
	if !n.set.IsHome(meta.ID) {
		// A publish racing a handoff: the new home will publish its own
		// generations, ours would only echo stale state around the ring.
		return
	}
	g := platform.BuildReplicatedGeneration(meta, res, ev)
	for _, s := range n.shippers {
		s.enqueue(&g)
	}
}

// peerShipper streams published generations to one peer with
// drop-to-latest semantics: per project only the newest unshipped
// generation is kept, so a slow or down peer costs bounded memory and
// recovers straight to the current state. Follower-side WAL catch-up
// (scheduled after each apply) backfills the answer history the skipped
// generations carried.
type peerShipper struct {
	self   string // this node's base URL, sent as X-Tcrowd-Home
	peer   string // peer base URL
	client *http.Client

	mu sync.Mutex
	// queue holds the latest unshipped generation per project.
	//tcrowd:guardedby mu
	queue map[string]*platform.ReplicatedGeneration
	// wake nudges the run loop; capacity 1, send never blocks.
	wake chan struct{}
}

func newPeerShipper(selfAddr, peerAddr string, client *http.Client) *peerShipper {
	return &peerShipper{
		self:   selfAddr,
		peer:   peerAddr,
		client: client,
		queue:  make(map[string]*platform.ReplicatedGeneration),
		wake:   make(chan struct{}, 1),
	}
}

// enqueue records g as the project's latest pending generation, replacing
// any older queued one.
func (s *peerShipper) enqueue(g *platform.ReplicatedGeneration) {
	s.mu.Lock()
	if cur, ok := s.queue[g.Project]; !ok || g.Generation > cur.Generation {
		s.queue[g.Project] = g
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// take pops the pending generation for the lexically smallest queued
// project (deterministic drain order), or nil when the queue is empty.
func (s *peerShipper) take() *platform.ReplicatedGeneration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.queue))
	for k := range s.queue {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	g := s.queue[keys[0]]
	delete(s.queue, keys[0])
	return g
}

// requeue puts a failed ship back unless a newer generation superseded it
// while the send was in flight.
func (s *peerShipper) requeue(g *platform.ReplicatedGeneration) {
	s.mu.Lock()
	if cur, ok := s.queue[g.Project]; !ok || g.Generation > cur.Generation {
		s.queue[g.Project] = g
	}
	s.mu.Unlock()
}

// run drains the queue until stop closes.
func (s *peerShipper) run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-s.wake:
		}
		for {
			g := s.take()
			if g == nil {
				break
			}
			if err := s.send(g); err != nil {
				s.requeue(g)
				select {
				case <-stop:
					return
				case <-time.After(shipRetryDelay):
				}
			}
		}
	}
}

// send POSTs one generation to the peer's internal apply endpoint. A 4xx
// is permanent for this payload (config mismatch, validation) and drops
// it; network errors and 5xx retry.
func (s *peerShipper) send(g *platform.ReplicatedGeneration) error {
	body, err := json.Marshal(g)
	if err != nil {
		return nil // unserialisable payloads cannot succeed later either
	}
	req, err := http.NewRequest(http.MethodPost,
		s.peer+"/v1/internal/projects/"+url.PathEscape(g.Project)+"/generations",
		bytes.NewReader(body))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(homeHeader, s.self)
	ctx, cancel := contextWithTimeout(req, internalTimeout)
	defer cancel()
	resp, err := s.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 500 {
		return errHTTPStatus(resp.StatusCode)
	}
	return nil
}

// errHTTPStatus wraps a retryable upstream status as an error.
type errHTTPStatus int

func (e errHTTPStatus) Error() string {
	return "cluster: peer answered HTTP " + http.StatusText(int(e))
}

// walShipEnvelope is the internal WAL endpoint's wire format, shared by
// the catch-up GET response and the handoff POST request. Latest rides
// along so one round trip both mirrors the log and seeds the serving
// state.
type walShipEnvelope struct {
	Segments []wal.ShippedSegment           `json:"segments"`
	Latest   *platform.ReplicatedGeneration `json:"latest,omitempty"`
}

// schedulePull kicks an async WAL catch-up pull for a follower project,
// deduplicating concurrent pulls per project. Called after every applied
// generation: the mirror trails the home's log by at most one publish.
func (n *Node) schedulePull(projectID, home string) {
	if home == "" {
		return
	}
	n.mu.Lock()
	if n.pulling[projectID] {
		n.mu.Unlock()
		return
	}
	n.pulling[projectID] = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.pullWAL(projectID, home)
		n.mu.Lock()
		n.pulling[projectID] = false
		n.mu.Unlock()
	}()
}

// pullWAL fetches the home's WAL tail from this node's watermark and lays
// it down as the local mirror. Best-effort: on any failure the next
// generation apply schedules another pull.
func (n *Node) pullWAL(projectID, home string) {
	n.mu.Lock()
	from := n.walTop[projectID]
	n.mu.Unlock()
	if from < 1 {
		from = 1
	}
	req, err := http.NewRequest(http.MethodGet,
		home+"/v1/internal/projects/"+url.PathEscape(projectID)+"/wal?from="+strconv.Itoa(from), nil)
	if err != nil {
		return
	}
	resp, err := n.doInternal(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var env walShipEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return
	}
	top, err := n.p.ReplicateWAL(projectID, env.Segments, home)
	if err != nil {
		return
	}
	if env.Latest != nil {
		// Cold catch-up: a follower created from the WAL mirror alone has
		// no serving state yet; the piggybacked latest generation seeds it.
		// Idempotent — stale generations drop.
		_ = n.p.ApplyReplicatedGeneration(env.Latest, home)
	}
	n.mu.Lock()
	// from == top refreshes the active segment each round; keep the
	// watermark at the highest mirrored index (the active segment keeps
	// growing, so it is re-fetched until the log rolls past it).
	if top > n.walTop[projectID] {
		n.walTop[projectID] = top
	}
	n.mu.Unlock()
}
