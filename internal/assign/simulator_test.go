package assign

import (
	"math"
	"testing"

	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func simDataset(seed int64) *simulate.Dataset {
	return simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows: 24, Cols: 5, CatRatio: 0.4,
		Population: simulate.PopulationConfig{N: 20, SpammerFrac: 0.1},
	})
}

func TestPoliciesSelectValidCells(t *testing.T) {
	ds := simDataset(81)
	log := simulate.NewCrowd(ds, 82).FixedAssignment(2)
	sys := NewTCrowdSystem(83)
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	st := sys.st
	st.Err = BuildErrorModel(st.Model)
	u := ds.Workers[0].ID
	for _, p := range Policies() {
		cells := p.Select(st, u, 5)
		if len(cells) == 0 {
			t.Fatalf("%s selected nothing", p.Name())
		}
		if len(cells) > 5 {
			t.Fatalf("%s overshot k", p.Name())
		}
		seen := map[tabular.Cell]bool{}
		for _, c := range cells {
			if c.Row < 0 || c.Row >= ds.Table.NumRows() || c.Col < 0 || c.Col >= ds.Table.NumCols() {
				t.Fatalf("%s selected out-of-table cell %v", p.Name(), c)
			}
			if seen[c] {
				t.Fatalf("%s selected %v twice", p.Name(), c)
			}
			seen[c] = true
			if log.HasAnswered(u, c) {
				t.Fatalf("%s re-assigned an answered cell", p.Name())
			}
		}
	}
}

func TestLoopingCursorAdvances(t *testing.T) {
	ds := simDataset(91)
	log := simulate.NewCrowd(ds, 92).FixedAssignment(1)
	sys := NewTCrowdSystem(93)
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	lp := &Looping{}
	a := lp.Select(sys.st, "u-x", 3)
	b := lp.Select(sys.st, "u-x", 3)
	if a[0] == b[0] {
		t.Fatal("looping cursor did not advance")
	}
}

func TestEntropyPolicyPrefersUncertainCells(t *testing.T) {
	ds := simDataset(101)
	crowd := simulate.NewCrowd(ds, 102)
	log := crowd.FixedAssignment(1)
	// Give one categorical cell a pile of unanimous extra answers: its
	// entropy collapses, so Entropy must not choose it.
	var catCell tabular.Cell
	for j, col := range ds.Table.Schema.Columns {
		if col.Type == tabular.Categorical {
			catCell = tabular.Cell{Row: 0, Col: j}
			break
		}
	}
	truth := ds.Table.TruthAt(catCell)
	for k := 0; k < 8; k++ {
		w := &ds.Workers[k%len(ds.Workers)]
		if !log.HasAnswered(w.ID, catCell) {
			log.Add(tabular.Answer{Worker: w.ID, Cell: catCell, Value: truth})
		}
	}
	sys := NewTCrowdSystem(103)
	sys.Policy = Entropy{}
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	picks := sys.Select("fresh-worker", 10, log)
	for _, c := range picks {
		if c == catCell {
			t.Fatal("entropy policy picked the most certain cell")
		}
	}
}

func TestRunOnlineCurveShape(t *testing.T) {
	ds := simDataset(111)
	cfg := SimConfig{EvalAt: []float64{1.5, 2, 2.5, 3}, Seed: 112, RefreshEvery: 4}
	res, err := RunOnline(ds, NewTCrowdSystem(113), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != len(cfg.EvalAt) {
		t.Fatalf("curve has %d points, want %d", len(res.Curve), len(cfg.EvalAt))
	}
	for i, pt := range res.Curve {
		if pt.AnswersPerTask != cfg.EvalAt[i] {
			t.Fatalf("checkpoint %d at %v", i, pt.AnswersPerTask)
		}
		if math.IsNaN(pt.Report.ErrorRate) || math.IsNaN(pt.Report.MNAD) {
			t.Fatalf("missing metrics at checkpoint %v", pt.AnswersPerTask)
		}
	}
	// More answers should not make things dramatically worse end-to-end.
	first, last := res.Curve[0].Report, res.Curve[len(res.Curve)-1].Report
	if last.ErrorRate > first.ErrorRate+0.15 {
		t.Fatalf("error rate rose sharply: %v -> %v", first.ErrorRate, last.ErrorRate)
	}
	if res.TotalAnswers < int(3*float64(ds.Table.NumCells()))-ds.Table.NumCols() {
		t.Fatalf("budget underused: %d answers", res.TotalAnswers)
	}
}

func TestRunOnlineAllSystems(t *testing.T) {
	ds := simDataset(121)
	cfg := SimConfig{EvalAt: []float64{1.5, 2}, Seed: 122, RefreshEvery: 6}
	for _, sys := range Fig2Systems(123) {
		res, err := RunOnline(ds, sys, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if len(res.Curve) != 2 {
			t.Fatalf("%s: curve %d points", sys.Name(), len(res.Curve))
		}
	}
}

func TestRunPolicyComparison(t *testing.T) {
	ds := simDataset(131)
	cfg := SimConfig{EvalAt: []float64{1.5, 2}, Seed: 132, RefreshEvery: 6}
	results, err := RunPolicyComparison(ds, []Policy{Random{}, InherentIG{}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].System != "Random" || results[1].System != "Inherent IG" {
		t.Fatalf("results: %+v", results)
	}
}

func TestCDASTerminatesConfidentTasks(t *testing.T) {
	ds := simDataset(141)
	crowd := simulate.NewCrowd(ds, 142)
	log := crowd.FixedAssignment(1)
	var catCell tabular.Cell
	for j, col := range ds.Table.Schema.Columns {
		if col.Type == tabular.Categorical {
			catCell = tabular.Cell{Row: 0, Col: j}
			break
		}
	}
	truth := ds.Table.TruthAt(catCell)
	for k := 0; k < 6; k++ {
		w := &ds.Workers[k%len(ds.Workers)]
		if !log.HasAnswered(w.ID, catCell) {
			log.Add(tabular.Answer{Worker: w.ID, Cell: catCell, Value: truth})
		}
	}
	sys := &CDAS{Seed: 143}
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	if !sys.terminated[catCell] {
		t.Fatal("unanimous cell not terminated")
	}
	for trial := 0; trial < 20; trial++ {
		for _, c := range sys.Select("someone-new", 4, log) {
			if c == catCell {
				t.Fatal("CDAS assigned a terminated task")
			}
		}
	}
}

func TestAskItPrefersContinuousFirst(t *testing.T) {
	// With natural-unit differential entropy, wide continuous domains
	// dominate the uncertainty ranking — the bias Fig. 2 shows.
	ds := simDataset(151)
	log := simulate.NewCrowd(ds, 152).FixedAssignment(1)
	sys := &AskIt{Seed: 153}
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	picks := sys.Select("fresh", 5, log)
	if len(picks) == 0 {
		t.Fatal("no picks")
	}
	for _, c := range picks {
		if ds.Table.Schema.Columns[c.Col].Type != tabular.Continuous {
			t.Fatalf("AskIt picked categorical cell %v first", c)
		}
	}
}

func TestSystemsHandleEmptyLog(t *testing.T) {
	ds := simDataset(161)
	empty := tabular.NewAnswerLog()
	for _, sys := range Fig2Systems(162) {
		if err := sys.Refresh(ds.Table, empty); err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		// Selection on an empty log must not panic; T-Crowd returns nil
		// (cold start handled by the simulator's seeding phase).
		_ = sys.Select("u", 3, empty)
	}
}
