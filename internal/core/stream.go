package core

// Streaming ingestion — the O(batch) refresh path of online serving.
//
// A fitted Model owns a mutable CSR answer store (internal/ingest). When an
// answer batch lands, Ingest decodes it against the model's worker table and
// standardisation constants, merges it into the store in place and marks the
// touched cells dirty; RefreshIncremental then re-runs the E-step on exactly
// the dirty posteriors before a short warm EM polish from the previous
// optimum. Unlike InferWarm — which re-decodes, re-sorts and re-indexes the
// whole log per refresh — decoding and merging are proportional to the
// batch, not the log.
//
// Column standardisation stays exact: the model keeps each continuous
// column's Welford accumulator (the same left fold stats.MeanVariance
// computes), so a batch extends the constants bit-identically to a cold
// recompute over the grown log; when a column's constants move, its stored
// answers are re-standardized in place from their retained raw values and
// the column's cells join the dirty set. Exactness has a cost: a batch
// that shifts a continuous column's constants adds one linear re-scale
// pass over the stored answers (a subtract and a divide per answer — no
// transcendentals, no re-sort; ~70µs per 10k answers, see the
// ingest/append-50 bench) and widens the dirty set to that column's
// cells. Purely categorical streams, and continuous batches that leave
// the constants bit-stable, keep strict O(batch) ingestion. Trading the
// bitwise rebuild-equivalence guarantee for thresholded re-standardisation
// would remove the sweep; the ROADMAP tracks that as part of the
// sufficient-statistics M-step item.

import (
	"errors"
	"fmt"
	"math"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// DefaultPolishIter is the EM iteration budget of RefreshIncremental when
// the caller does not specify one. A streamed batch perturbs a converged
// fit only slightly, so the online-EM-style single full iteration (M-step
// then E-step) re-tracks the optimum; across a stream of batches the
// polish iterations compound, exactly like online EM. Callers needing
// convergence-grade estimates (the platform's requester-facing inference)
// pass a full budget instead and let the tolerance stop early.
const DefaultPolishIter = 1

// Amortized polish cadence constants (see RefreshIncremental): a
// default-budget refresh defers the full EM polish until the unpolished
// ingest backlog reaches max(minPolishBacklog, PolishFrac * log size).
const (
	// minPolishBacklog keeps small logs responsive: below it a deferral
	// would save nothing, so every refresh polishes.
	minPolishBacklog = 32
	// DefaultPolishFrac is the default backlog fraction: a full polish
	// roughly every 5% log growth keeps amortized polish cost per answer
	// constant while the posteriors between polishes stay within the
	// dirty-cell E-step's reach.
	DefaultPolishFrac = 0.05
)

// ErrLogMismatch is returned by IngestFrom when the given log is not the
// model's source log: the model cannot know which suffix is new, so the
// caller must fall back to a (warm) rebuild.
var ErrLogMismatch = errors.New("core: log is not the model's source log")

// colAcc is a running Welford accumulator over a column's raw numeric
// answers. Extending it answer by answer performs exactly the fold
// stats.MeanVariance performs over the full slice, which is what keeps
// streaming standardisation constants bit-identical to a cold fit's.
type colAcc struct {
	n    int
	mean float64
	m2   float64
}

func (c *colAcc) add(x float64) {
	c.n++
	d := x - c.mean
	c.mean += d / float64(c.n)
	c.m2 += d * (x - c.mean)
}

func (c *colAcc) variance() float64 {
	if c.n == 0 {
		return 0
	}
	return c.m2 / float64(c.n)
}

// setColConstants derives ColMean/ColStd for column j from its accumulator,
// with the cold path's exact rules (std 1 for categorical, empty and
// near-constant columns).
func (m *Model) setColConstants(j int) {
	m.ColStd[j] = 1
	if m.Table.Schema.Columns[j].Type == tabular.Continuous && m.colAcc[j].n > 0 {
		m.ColMean[j] = m.colAcc[j].mean
		if v := m.colAcc[j].variance(); v > 1e-12 {
			m.ColStd[j] = math.Sqrt(v)
		}
	}
}

// CanIngestFrom reports whether the model can incrementally consume new
// answers from log: it must be the very log object the model was fitted on
// (tabular.AnswerLog is append-only, so pointer identity guarantees the
// model's consumed prefix is intact) over the same table, and must not have
// shrunk. When false, callers should rebuild via InferWarm instead.
func (m *Model) CanIngestFrom(tbl *tabular.Table, log *tabular.AnswerLog) bool {
	return m != nil && tbl == m.Table && log == m.Log && log.Len() >= m.decoded
}

// IngestFrom ingests every answer appended to the model's source log since
// the last sync (the cold fit or the previous IngestFrom) and returns how
// many raw answers were consumed. The caller still owns running
// RefreshIncremental afterwards.
func (m *Model) IngestFrom(log *tabular.AnswerLog) (int, error) {
	if log != m.Log {
		return 0, ErrLogMismatch
	}
	if log.Len() < m.decoded {
		return 0, fmt.Errorf("core: source log shrank to %d answers (model consumed %d)", log.Len(), m.decoded)
	}
	batch := log.All()[m.decoded:]
	if len(batch) == 0 {
		return 0, nil
	}
	if err := m.Ingest(batch); err != nil {
		return 0, err
	}
	// Only the source-log sync advances the cursor: Ingest may also be fed
	// external batches (the platform passes explicit deltas), which must
	// not make IngestFrom skip source answers it never saw.
	m.decoded += len(batch)
	return len(batch), nil
}

// Ingest decodes a raw answer batch and merges it into the model's CSR
// answer store in place, marking the touched cells dirty for the next
// RefreshIncremental. The work — validation, constant updates,
// re-standardisation bookkeeping, decode, merge — is O(batch) plus a linear
// shift of the store's tail; the clean prefix is never re-sorted or
// reallocated. First-seen workers are registered with the initial variance;
// cells answered for the first time get posteriors allocated.
//
// The batch is validated before any state changes, so an error leaves the
// model untouched. Posteriors and estimates are stale between Ingest and
// the following RefreshIncremental. Ingest does not advance the
// source-log cursor — callers feeding explicit external batches own their
// own bookkeeping; use IngestFrom to stay in sync with the model's source
// log.
func (m *Model) Ingest(batch []tabular.Answer) error {
	if len(batch) == 0 {
		return nil
	}
	for _, a := range batch {
		if err := m.checkAnswer(a); err != nil {
			return err
		}
	}

	// Fold the batch's numeric values into the column accumulators and
	// refresh the standardisation constants of the touched continuous
	// columns.
	scr := &m.scr
	mm := m.Table.NumCols()
	if scr.colChanged == nil {
		scr.colChanged = make([]bool, mm)
	}
	changed := false
	for _, a := range batch {
		if a.Value.Kind == tabular.Number {
			m.colAcc[a.Cell.Col].add(a.Value.X)
			scr.colChanged[a.Cell.Col] = true
		}
	}
	for j := 0; j < mm; j++ {
		if !scr.colChanged[j] {
			continue
		}
		oldMean, oldStd := m.ColMean[j], m.ColStd[j]
		m.setColConstants(j)
		if m.ColMean[j] == oldMean && m.ColStd[j] == oldStd {
			scr.colChanged[j] = false // constants stable: nothing to redo
		} else {
			changed = true
		}
	}
	if changed {
		// Re-standardize the stored answers of the shifted columns from
		// their retained raw values, and dirty those cells: their
		// continuous posteriors were computed under the old z-scale.
		// z is a strictly increasing map of x, so CSR order within every
		// run is preserved.
		for idx := range m.ilog.Ans {
			a := &m.ilog.Ans[idx]
			if !a.IsCat && scr.colChanged[a.J] {
				a.Z = stats.Standardize(a.X, m.ColMean[a.J], m.ColStd[a.J])
				m.ilog.MarkDirty(m.ilog.Key(a.I, a.J))
			}
		}
	}
	for j := 0; j < mm; j++ {
		scr.colChanged[j] = false
	}

	// Decode (mode filter, worker registration, standardisation) into the
	// reusable staging buffer and merge.
	scr.dec = scr.dec[:0]
	for _, a := range batch {
		oa, use, err := m.decodeAnswer(a)
		if err != nil {
			return err // unreachable: batch was pre-validated
		}
		if !use {
			continue
		}
		scr.dec = append(scr.dec, oa)
		i, j := a.Cell.Row, a.Cell.Col
		if !m.Answered[i][j] {
			m.Answered[i][j] = true
			if col := m.Table.Schema.Columns[j]; col.Type == tabular.Categorical {
				// A newly answered categorical cell gets its own small
				// posterior slice; the cold fit's arena prefix is shared
				// state and never reallocated.
				m.CatPost[i][j] = make([]float64, col.NumLabels())
			}
		}
	}
	if len(scr.dec) > 0 {
		m.ilog.Append(scr.dec)
		m.pendingPolish += len(scr.dec)
	} else if changed {
		// No answers survived the mode filter but a column's constants
		// shifted: the re-standardized cells' sufficient statistics must be
		// brought back in sync without an Append.
		m.ilog.RecomputeDirtyGroups()
	}
	// Worker medians may have shifted (new workers, at least): drop the
	// cache; RefreshIncremental refreezes it.
	m.medianPhi = 0
	return nil
}

// RefreshStats reports what one RefreshIncremental did, so callers can
// update downstream state (estimates caches, assignment error models)
// incrementally instead of rebuilding it.
type RefreshStats struct {
	// Cells are the cell keys (row*cols + col) whose posteriors were
	// recomputed this refresh — the ingest dirty set, captured before it
	// was cleared. The slice is model-owned scratch, valid until the next
	// RefreshIncremental.
	Cells []int
	// Polished reports whether the full EM polish ran. When false, only
	// the Cells posteriors (and therefore only those cells' estimates)
	// changed; the global parameters are untouched and the polish debt
	// carries over to a later refresh.
	Polished bool
	// Pending is the number of ingested answers still awaiting a polish.
	Pending int
}

// RefreshIncremental reconverges the model after one or more Ingest calls:
// the E-step runs on exactly the dirty cells' posteriors (new answers,
// newly answered cells, re-standardized columns), then a warm EM polish —
// at most maxIter iterations — re-runs full EM from the previous optimum
// until the model's parameter tolerance fires. Iterations and Converged
// report the polish.
//
// Amortized polish cadence: with maxIter <= 0 (the serving default) the
// full polish is deferred until enough new answers have accumulated —
// max(minPolishBacklog, PolishFrac·log size) — and then runs for
// DefaultPolishIter iterations. In between, a refresh is dirty-cell E-step
// only, so its cost is O(batch) regardless of log size while the amortized
// polish cost per answer stays constant (online EM with a batch schedule
// proportional to the data seen, cf. Liang & Klein's stepwise EM). An
// explicit maxIter > 0 always polishes now — callers needing
// convergence-grade estimates (the platform's requester-facing inference,
// the equivalence tests) keep their full budget semantics.
//
// Equivalence: run with a tight Options.Tol (and matching MStepGradTol),
// the polish converges to the same fixed point a cold Infer over the grown
// log reaches — the equivalence property test pins estimates to 1e-9.
func (m *Model) RefreshIncremental(maxIter int) RefreshStats {
	scr := &m.scr
	scr.refreshCells = append(scr.refreshCells[:0], m.ilog.DirtyKeys()...)
	st := RefreshStats{Cells: scr.refreshCells}
	for _, key := range st.Cells {
		m.eStepCells(key, key+1)
	}
	m.ilog.ClearDirty()
	if maxIter <= 0 {
		if m.pendingPolish < m.polishBacklog() {
			// Defer the O(log) polish: report zero EM iterations so the
			// deferral is observable, keep the debt.
			m.Iterations, m.Converged = 0, false
			st.Pending = m.pendingPolish
			m.medianPhi = 0
			m.medianPhi = m.MedianPhi()
			return st
		}
		maxIter = DefaultPolishIter
	}
	m.emLoop(maxIter)
	m.pendingPolish = 0
	st.Polished = true
	m.medianPhi = 0
	m.medianPhi = m.MedianPhi()
	return st
}

// polishBacklog is the deferred-polish trigger: the number of unpolished
// ingested answers at which a default-budget refresh pays the full EM
// sweep.
func (m *Model) polishBacklog() int {
	frac := m.Opts.PolishFrac
	if frac <= 0 {
		frac = DefaultPolishFrac
	}
	t := int(frac * float64(m.ilog.Len()))
	if t < minPolishBacklog {
		t = minPolishBacklog
	}
	return t
}
