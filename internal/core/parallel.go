package core

import (
	"runtime"

	"tcrowd/internal/pool"
)

// Parallel EM — the "acceleration of truth inference ... by parallel
// computation" the paper lists as future work (Sec. 7). Both EM halves
// decompose cleanly:
//
//   - the E-step treats cells independently given the parameters, so cell
//     ranges shard across workers;
//   - the M-step objective and gradient are sums over answers, so answer
//     ranges shard and per-shard partials reduce in shard order.
//
// Work runs on the persistent internal/pool goroutine pool (no per-call
// goroutine spawning) with deterministic pool.ChunkBounds sharding, so a
// given worker count always produces the same floating-point reduction
// order. Parallelism is opt-in (Options.Parallelism > 1): the sequential
// path stays allocation-free for the small online refreshes, while
// full-table inference on large logs gets near-linear speedup.

// eStepParallel is the sharded version of eStep: contiguous cell-key
// ranges per shard, posteriors written in place (disjoint cells, no
// synchronisation needed beyond the pool's completion barrier).
func (m *Model) eStepParallel(workers int) {
	total := m.Table.NumRows() * m.Table.NumCols()
	pool.Run(workers, func(shard int) {
		lo, hi := pool.ChunkBounds(total, workers, shard)
		m.eStepCells(lo, hi)
	})
}

// qValueParallel shards the M-step objective over answer ranges.
// (Reference path; the production M-step shards qFusedParallel.)
func (m *Model) qValueParallel(alpha, beta, phi []float64, workers int) float64 {
	partial := make([]float64, workers)
	pool.Run(workers, func(w int) {
		lo, hi := pool.ChunkBounds(len(m.ilog.Ans), workers, w)
		partial[w] = m.qValueRange(alpha, beta, phi, lo, hi)
	})
	sum := m.paramLogPrior(alpha, beta, phi)
	for _, p := range partial {
		sum += p
	}
	return sum
}

// qGradLogParallel shards the gradient over answer ranges with per-shard
// accumulators reduced at the end (no atomics on the hot path).
// (Reference path; the production M-step shards qFusedParallel.)
func (m *Model) qGradLogParallel(alpha, beta, phi []float64, workers int) (ga, gb, gp []float64) {
	type grads struct {
		a, b, p []float64
	}
	partial := make([]grads, workers)
	pool.Run(workers, func(w int) {
		lo, hi := pool.ChunkBounds(len(m.ilog.Ans), workers, w)
		g := grads{
			a: make([]float64, len(alpha)),
			b: make([]float64, len(beta)),
			p: make([]float64, len(phi)),
		}
		m.qGradLogRange(alpha, beta, phi, lo, hi, g.a, g.b, g.p)
		partial[w] = g
	})

	ga = make([]float64, len(alpha))
	gb = make([]float64, len(beta))
	gp = make([]float64, len(phi))
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	for _, g := range partial {
		if g.a == nil {
			continue
		}
		for i := range ga {
			ga[i] += g.a[i]
		}
		for j := range gb {
			gb[j] += g.b[j]
		}
		for k := range gp {
			gp[k] += g.p[k]
		}
	}
	return ga, gb, gp
}

// AutoParallelMinAnswers is the decoded-answer count above which inference
// parallelises automatically when Options.Parallelism is 0 (auto). Below
// it the sharding overhead outweighs the fan-out win and the serial path's
// zero-allocation property matters more; above it servers should not
// silently run serial (set Parallelism to 1 to opt out explicitly).
const AutoParallelMinAnswers = 16384

// effectiveParallelism resolves the Parallelism option: 0 auto-enables at
// GOMAXPROCS once the log is AutoParallelMinAnswers answers or larger,
// 1 (or negative) forces serial, larger values are capped at GOMAXPROCS.
func (m *Model) effectiveParallelism() int {
	p := m.Opts.Parallelism
	if p == 0 && len(m.ilog.Ans) >= AutoParallelMinAnswers {
		p = runtime.GOMAXPROCS(0)
	}
	if p <= 1 {
		return 1
	}
	if procs := runtime.GOMAXPROCS(0); p > procs {
		p = procs
	}
	return p
}
