package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Segment shipping: the transport-agnostic half of cluster WAL-tail
// replication. A home node serialises its segment files (ShipSegments),
// some transport moves them (the cluster layer uses
// GET/POST /v1/internal/projects/{id}/wal), and the receiver lays them
// down (WriteSegments) and replays them through the ordinary recovery
// path — shipping reuses the exact crash-recovery machinery (torn-tail
// truncation, checkpoint-led replay start) instead of inventing a second
// decoder.

// ShippedSegment is one WAL segment file in transit: its index and the
// raw frame bytes. Data is a whole-frame prefix of the segment (ships cut
// the active segment at the last acknowledged frame), so the receiver's
// replay never sees a tear the sender acknowledged past. JSON encoding
// base64s Data automatically.
type ShippedSegment struct {
	Index int    `json:"index"`
	Data  []byte `json:"data"`
}

// ShipSegments snapshots the log's segment files with index >= from, in
// index order. It holds the log lock for the duration so the shipped set
// is a point-in-time consistent prefix of the append stream (segments are
// small — bounded by Options.SegmentBytes — so the stall is short); the
// active segment is cut at the last acknowledged frame boundary.
func (l *Log) ShipSegments(from int) ([]ShippedSegment, error) {
	if from < 1 {
		from = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.sticky != nil {
		return nil, l.sticky
	}
	fs := l.opts.FS
	entries, err := fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: ship: list %s: %w", l.dir, err)
	}
	var indices []int
	for _, e := range entries {
		if m := segmentRE.FindStringSubmatch(e.Name()); m != nil {
			idx, _ := strconv.Atoi(m[1])
			if idx >= from {
				indices = append(indices, idx)
			}
		}
	}
	sort.Ints(indices)
	out := make([]ShippedSegment, 0, len(indices))
	for _, idx := range indices {
		data, err := readAll(fs, filepath.Join(l.dir, segmentName(idx)))
		if err != nil {
			return nil, fmt.Errorf("wal: ship segment %d: %w", idx, err)
		}
		if idx == l.index && int64(len(data)) > l.size {
			// The active segment's file may extend past the last
			// acknowledged frame (a write that failed mid-frame and has not
			// healed yet). Ship only the acknowledged prefix.
			data = data[:l.size]
		}
		out = append(out, ShippedSegment{Index: idx, Data: data})
	}
	return out, nil
}

// WriteSegments lays shipped segments down in dir: each one is written
// (replacing any previous copy) and fsynced. With prune set — a FULL ship
// adopting the sender's authoritative state — segment files outside the
// shipped set are removed too; an incremental tail ship (from > 1) must
// NOT prune, since the unshipped lower segments are still live history.
// Segment paths derive from the validated index — nothing on the wire is
// trusted as a path. The resulting directory is a valid wal.Open target;
// a crash mid-write leaves a torn or missing tail that Open's recovery
// truncates, after which the shipper refetches.
func WriteSegments(fsys FS, dir string, segs []ShippedSegment, prune bool) error {
	if fsys == nil {
		fsys = OSFS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: adopt: mkdir %s: %w", dir, err)
	}
	shipped := make(map[int]bool, len(segs))
	for _, seg := range segs {
		if seg.Index < 1 {
			return fmt.Errorf("wal: adopt: segment index %d out of range", seg.Index)
		}
		shipped[seg.Index] = true
		name := filepath.Join(dir, segmentName(seg.Index))
		f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("wal: adopt: create %s: %w", name, err)
		}
		if _, err := f.Write(seg.Data); err != nil {
			f.Close()
			return fmt.Errorf("wal: adopt: write %s: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: adopt: sync %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("wal: adopt: close %s: %w", name, err)
		}
	}
	if !prune {
		_ = fsys.SyncDir(dir)
		return nil
	}
	// Remove segments outside the shipped set: a compaction on the sender
	// may have deleted low indices, and leftovers here would change what
	// replay sees relative to the sender.
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: adopt: list %s: %w", dir, err)
	}
	for _, e := range entries {
		m := segmentRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		idx, _ := strconv.Atoi(m[1])
		if !shipped[idx] {
			_ = fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
	_ = fsys.SyncDir(dir)
	return nil
}
