package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Perf-regression gate: `tcrowd-bench -compare BASELINE.json CANDIDATE.json`
// compares two -bench-json result files and fails (non-zero exit) when a
// gated series regressed. Gated series are selected by name prefix
// (default infer/, refresh/, ingest/, shard/, server/ and wal/ — the
// serving and durability hot paths whose budgets the repo commits to); a
// series regresses when its
// ns/op grows by more than the allowed fraction (default 25%, absorbing
// CI-runner timing noise) or its allocs/op grows past the slack.
//
// Alloc slack is per-series-class. Kernel series (infer/, ingest/,
// refresh/) are near-deterministic: the allowed growth is one alloc plus
// 0.1%, absorbing two benign wobbles — the EM iteration count a refresh
// needs can shift by one between runs (observed as ±3 allocs on ~8.7k),
// and testing.Benchmark's small-N division lets a single stray runtime
// alloc move the per-op count by one (observed as 58 -> 59 on the infer
// series). Concurrency-bearing series get a wider slack (four allocs plus
// 5%): the server/ timed windows race the asynchronous shard refresh and
// the shard/ ops run 16 concurrent consistency reads, so a scheduling-
// dependent share of goroutine and EM allocations lands inside the
// memstats delta (observed as ±6..22 on ~400-900 across identical
// binaries). A real regression allocates at least once per work item
// (answers per op >> 1), far above both slacks; the
// steady-state-zero-alloc guarantee of the ingest path is pinned exactly
// by its unit test, not by this gate. Gated series present in the baseline
// must exist in the candidate; series new in the candidate are reported
// but never gate.

// compareConfig parameterises runCompare.
type compareConfig struct {
	// gates are the series-name prefixes under the regression gate.
	gates []string
	// maxNsRegress is the allowed fractional ns/op growth (0.25 = +25%).
	maxNsRegress float64
	// maxAllocRegress is the allowed fractional allocs/op growth.
	maxAllocRegress float64
}

// loadBenchFile reads a -bench-json result file.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &bf, nil
}

// gated reports whether a series name falls under any gate prefix.
func (c compareConfig) gated(name string) bool {
	for _, g := range c.gates {
		if strings.HasPrefix(name, g) {
			return true
		}
	}
	return false
}

// allocSlack returns the absolute and fractional allocs/op growth allowed
// for a series: tight for the deterministic kernel series, wider for the
// concurrency-bearing series — server/ (timed windows race asynchronous
// shard refreshes) and shard/ (16 concurrent consistency reads per op) —
// where a scheduling-dependent share of goroutine and EM allocations
// lands inside the memstats delta (see the package comment).
func (c compareConfig) allocSlack(name string) (abs float64, frac float64) {
	if strings.HasPrefix(name, "server/") || strings.HasPrefix(name, "shard/") {
		return 4, 0.05
	}
	return 1, c.maxAllocRegress
}

// runCompare prints a comparison table and returns an error when any gated
// series regressed.
func runCompare(basePath, candPath string, cfg compareConfig) error {
	base, err := loadBenchFile(basePath)
	if err != nil {
		return err
	}
	cand, err := loadBenchFile(candPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(cand.Benchmarks))
	for name := range cand.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("baseline %s (index %d, %s) vs candidate %s\n",
		basePath, base.Index, base.GoVersion, candPath)
	fmt.Printf("%-32s %14s %14s %8s %14s %8s\n",
		"benchmark", "base ns/op", "cand ns/op", "ns Δ", "allocs b/c", "gate")

	var failures []string
	for _, name := range names {
		c := cand.Benchmarks[name]
		b, inBase := base.Benchmarks[name]
		if !inBase {
			fmt.Printf("%-32s %14s %14.0f %8s %8s/%-5d %8s\n",
				name, "-", c.NsPerOp, "new", "-", c.AllocsPerOp, "-")
			continue
		}
		nsDelta := c.NsPerOp/b.NsPerOp - 1
		status := "ok"
		if cfg.gated(name) {
			if nsDelta > cfg.maxNsRegress {
				status = "FAIL ns"
				failures = append(failures,
					fmt.Sprintf("%s: ns/op regressed %.1f%% (limit %.0f%%)", name, 100*nsDelta, 100*cfg.maxNsRegress))
			}
			abs, frac := cfg.allocSlack(name)
			if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+frac)+abs {
				if status == "ok" {
					status = "FAIL allocs"
				} else {
					status += "+allocs"
				}
				failures = append(failures,
					fmt.Sprintf("%s: allocs/op regressed %d -> %d", name, b.AllocsPerOp, c.AllocsPerOp))
			}
		} else {
			status = "ungated"
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %8d/%-5d %8s\n",
			name, b.NsPerOp, c.NsPerOp, 100*nsDelta, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	for name := range base.Benchmarks {
		if _, ok := cand.Benchmarks[name]; !ok && cfg.gated(name) {
			failures = append(failures, fmt.Sprintf("%s: gated series missing from candidate", name))
		}
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d perf regression(s)", len(failures))
	}
	fmt.Println("\nno gated regressions")
	return nil
}
