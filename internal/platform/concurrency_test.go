package platform

import (
	"fmt"
	"sync"
	"testing"

	"tcrowd/internal/tabular"
)

// TestConcurrentWorkers hammers one project from many goroutines — the
// platform's advertised thread-safety. Run with -race to make it bite.
func TestConcurrentWorkers(t *testing.T) {
	p := New(55)
	if _, err := p.CreateProject("conc", demoSchema(), ProjectConfig{Rows: 30}); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*20)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := tabular.WorkerID(fmt.Sprintf("w%02d", w))
			for round := 0; round < 5; round++ {
				tasks, err := p.RequestTasks("conc", id, 2)
				if err != nil {
					errs <- err
					return
				}
				for _, task := range tasks {
					var v tabular.Value
					if task.Type == "categorical" {
						v = tabular.LabelValue(w % 3)
					} else {
						v = tabular.NumberValue(float64(10*w + round))
					}
					if err := p.Submit("conc", id, task.Row, task.Column, v); err != nil && err != ErrAlreadyAnswered {
						errs <- err
						return
					}
				}
				if _, err := p.Stats("conc"); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := p.Stats("conc")
	if err != nil {
		t.Fatal(err)
	}
	if st.Answers == 0 || st.Workers != workers {
		t.Fatalf("stats after concurrent load: %+v", st)
	}
	// Inference still works on the concurrently built log.
	if _, err := p.RunInference("conc"); err != nil {
		t.Fatal(err)
	}
}
