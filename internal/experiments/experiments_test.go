package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var quick = Config{Seed: 5, Quick: true, Trials: 1}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table6", "table7", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation"}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	var buf bytes.Buffer
	if err := Run("nope", &buf, quick); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable6Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table6", &buf, quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Celebrity", "Restaurant", "Emotion", "1218", "1015", "700"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table6 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable7QuickShape(t *testing.T) {
	results, err := Table7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 11 { // 11 methods x 1 dataset in quick mode
		t.Fatalf("got %d results", len(results))
	}
	var tcER, mvER float64 = math.NaN(), math.NaN()
	for _, r := range results {
		if r.Dataset != "Restaurant" {
			t.Fatalf("quick mode leaked dataset %s", r.Dataset)
		}
		switch r.Method {
		case "T-Crowd":
			tcER = r.Report.ErrorRate
		case "Majority Voting":
			mvER = r.Report.ErrorRate
		}
	}
	if math.IsNaN(tcER) || math.IsNaN(mvER) {
		t.Fatal("missing headline methods")
	}
	if tcER > mvER+0.03 {
		t.Fatalf("T-Crowd %.4f clearly worse than MV %.4f", tcER, mvER)
	}
}

func TestFig4Calibration(t *testing.T) {
	res, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports r = 0.844 / 0.841; on the stand-in we accept any
	// clearly positive calibration.
	if res.CatR < 0.3 {
		t.Fatalf("categorical calibration too weak: %v", res.CatR)
	}
	if res.ContR < 0.3 {
		t.Fatalf("continuous calibration too weak: %v", res.ContR)
	}
	if res.NCat < 20 || res.NCont < 20 {
		t.Fatalf("too few workers: %d/%d", res.NCat, res.NCont)
	}
}

func TestFig6Correlations(t *testing.T) {
	res, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Contingency[0][0] + res.Contingency[0][1] + res.Contingency[1][0] + res.Contingency[1][1]
	if total < 400 {
		t.Fatalf("too few contingency pairs: %d", total)
	}
	// The Fig. 6 claim: being right on Aspect predicts being right on
	// Sentiment.
	if res.PCorrGivenCorr <= res.PCorrGivenWrong {
		t.Fatalf("correlation inverted: %v vs %v", res.PCorrGivenCorr, res.PCorrGivenWrong)
	}
	if res.StartEnd.Rho() < 0.05 {
		t.Fatalf("start/end errors uncorrelated: rho=%v", res.StartEnd.Rho())
	}
}

func TestFig7QuickShape(t *testing.T) {
	pts, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*4 { // 2 params x 4 methods
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if pt.Method == "T-Crowd" && math.IsNaN(pt.ErrorRate) {
			t.Fatal("T-Crowd missing error rate")
		}
		if pt.Method == "GLAD" && !math.IsNaN(pt.MNAD) {
			t.Fatal("GLAD should have no MNAD")
		}
		if pt.Method == "GTM" && !math.IsNaN(pt.ErrorRate) {
			t.Fatal("GTM should have no error rate")
		}
	}
}

func TestFig10NoiseDegradesQuality(t *testing.T) {
	pts, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Error rate at gamma=0.4 should exceed gamma=0.1 for every
	// categorical method.
	er := map[string]map[float64]float64{}
	for _, pt := range pts {
		if math.IsNaN(pt.ErrorRate) {
			continue
		}
		if er[pt.Method] == nil {
			er[pt.Method] = map[float64]float64{}
		}
		er[pt.Method][pt.Gamma] = pt.ErrorRate
	}
	for m, byGamma := range er {
		if byGamma[0.4] <= byGamma[0.1] {
			t.Fatalf("%s: noise did not degrade error rate (%.4f -> %.4f)", m, byGamma[0.1], byGamma[0.4])
		}
	}
}

func TestFig12ObjectiveAndScaling(t *testing.T) {
	res, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objective) < 2 {
		t.Fatal("no objective trace")
	}
	for i := 1; i < len(res.Objective); i++ {
		if res.Objective[i] < res.Objective[i-1]-1e-6 {
			t.Fatalf("objective decreased at iter %d", i)
		}
	}
	if len(res.Runtime) != 2 {
		t.Fatalf("runtime points: %d", len(res.Runtime))
	}
	// Roughly linear scaling: 5x the answers should cost well under 25x
	// the time (quadratic would be ~25x).
	r0, r1 := res.Runtime[0], res.Runtime[1]
	ratioAnswers := float64(r1.Answers) / float64(r0.Answers)
	ratioTime := r1.Seconds / r0.Seconds
	if ratioTime > 5*ratioAnswers {
		t.Fatalf("superlinear scaling: answers x%.1f, time x%.1f", ratioAnswers, ratioTime)
	}
}

func TestRunAllQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow smoke test")
	}
	for _, e := range All() {
		var buf bytes.Buffer
		if err := Run(e.ID, &buf, quick); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
	}
}
