// Package core implements the paper's primary contribution (Sec. 4): the
// unified probabilistic worker-quality model for tabular data and the EM
// truth-inference algorithm built on it.
//
// Model recap. Worker u has one inherent variance phi_u; cell c_ij has
// difficulty alpha_i * beta_j; the effective answer variance on c_ij is
// s = alpha_i * beta_j * phi_u. A continuous answer is drawn N(T_ij, s)
// (Eq. 1); a categorical answer is correct with probability
// q = erf(eps / sqrt(2 s)) and otherwise uniform over the wrong labels
// (Eqs. 2-3). EM alternates the E-step (per-cell posterior truth
// distributions, Eq. 4) with an M-step that maximises the expected joint
// log-likelihood Q (Eq. 5) by gradient ascent over log-parameters.
//
// Implementation notes (documented deviations, see ARCHITECTURE.md):
//
//   - Continuous columns are z-scored by their answers' mean/std before
//     inference so one phi_u is commensurable across columns; estimates are
//     mapped back to natural units on output.
//   - alpha_i * beta_j * phi_u is scale-ambiguous, so after each M-step
//     alpha and beta are renormalised to geometric mean 1 (folding the
//     scale into phi). Likelihoods are invariant under this.
//   - Posteriors are warm-started from the empirical answer distribution
//     (the standard majority-vote/mean start for crowdsourcing EM) rather
//     than from the flat prior, which would make the first M-step
//     uninformative.
//
// # Performance architecture
//
// The EM hot path is engineered for zero steady-state allocations and
// minimal transcendental work:
//
//   - Fused objective+gradient M-step. The M-step line search evaluates
//     the MAP objective and its log-space gradient in ONE pass over the
//     answers (optimize.MinimizeFused + qFused*), sharing the erf/log work
//     of the quality model between the two; per-answer quantities that are
//     constant while the posteriors are frozen (posterior mass on the
//     answered label and its logs, squared residuals) are precomputed once
//     per M-step.
//   - Scratch arenas. Answers are stored sorted by cell in one flat slice
//     with CSR offsets (cellOff); categorical posteriors live in a single
//     backing arena written in place by the E-step; every per-iteration
//     buffer (E-step log-probs, theta packing, gradient shards, optimizer
//     workspace) is hoisted into a per-model scratch reused across
//     iterations. After the first EM iteration the engine performs no
//     allocations.
//   - Variance-triple memoisation. Answers are sorted so duplicates of the
//     same (row, column, worker) triple are adjacent; consecutive answers
//     sharing a triple reuse the clamped variance and its erf/log results
//     instead of recomputing identical transcendentals.
//   - Persistent goroutine pool. With Options.Parallelism > 1 the E-step
//     shards over cells and the M-step over answer ranges on the
//     internal/pool worker pool (no per-call goroutine spawning), with
//     deterministic chunking and shard-ordered reductions.
//
// # Warm-started incremental inference
//
// Online serving re-infers after every small answer batch, so cold-start
// cost dominates the refresh latency. InferWarm seeds a new fit from a
// previous Model: parameters start at the previous optimum (Options.Warm)
// and the posteriors are refreshed with a single E-step instead of the
// empirical vote seed, so EM typically converges in a handful of cheap
// iterations. Warm starts are safe whenever the table schema and row set
// are unchanged and the answer log only grew; after structural changes
// (rows added/removed, labels redefined) or bulk log rewrites, run a full
// cold Infer instead — InferWarm falls back to cold automatically when
// the dimensions no longer match.
//
// # Streaming ingestion
//
// InferWarm still rebuilds the decoded answer store (decode + sort + index)
// from the raw log on every call — O(log) work per refresh. The streaming
// path removes that too: a fitted Model can absorb answer batches in place
// via Ingest/IngestFrom (the internal/ingest CSR store merges the batch and
// tracks dirty cells) and then RefreshIncremental re-runs the E-step on the
// dirty posteriors only before a short warm EM polish. Ingestion cost is
// O(batch), not O(log); see stream.go.
//
// # Determinism contract
//
// Every fold in this package runs in canonical CSR order: streamed
// refreshes are pinned BITWISE equal to cold rebuilds across arbitrary
// batch splits, which is only possible because no accumulation ever
// depends on map iteration order, the wall clock, or the globally seeded
// rand source. The directive below makes tcrowd-lint (detfold) reject
// those constructs in this package.
//
//tcrowd:deterministic
package core

import (
	"errors"
	"fmt"
	"math"

	"tcrowd/internal/ingest"
	"tcrowd/internal/optimize"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Mode selects which datatypes participate in inference. The constrained
// modes are the paper's TC-onlyCate / TC-onlyCont baselines (Table 7).
type Mode int

const (
	// ModeFull uses every column (T-Crowd proper).
	ModeFull Mode = iota
	// ModeOnlyCategorical ignores continuous columns (TC-onlyCate).
	ModeOnlyCategorical
	// ModeOnlyContinuous ignores categorical columns (TC-onlyCont).
	ModeOnlyContinuous
)

// Options configures Infer. The zero value gives the paper's defaults.
type Options struct {
	// Eps is the quality window of Eq. 2, in standardized units
	// (default 0.5).
	Eps float64
	// MaxIter bounds EM iterations (default 50; the paper observes
	// convergence within ~20).
	MaxIter int
	// Tol is the convergence threshold on the maximum absolute parameter
	// change between iterations (default 1e-5, as in Sec. 4.3).
	Tol float64
	// MStepIter bounds gradient-ascent steps per M-step (default 20).
	MStepIter int
	// Mode restricts the datatypes used (default ModeFull).
	Mode Mode
	// FixDifficulty freezes alpha_i = beta_j = 1, reducing the model to
	// worker-only quality. Used by the difficulty ablation.
	FixDifficulty bool
	// TrackObjective records the ELBO after every EM iteration
	// (regenerates Fig. 12a).
	TrackObjective bool
	// InitPhi is the initial worker variance (default 0.2).
	InitPhi float64
	// PhiPriorA/PhiPriorB parameterise a weak inverse-gamma prior on each
	// phi_u (defaults 1.0 and 0.4, putting the prior mode at 0.2). The
	// paper's pure MLE degenerates on sparse workers (phi -> 0 for a
	// worker whose few answers all match the posterior); the weak prior is
	// the standard MAP-EM stabilisation and washes out once a worker has
	// tens of answers.
	PhiPriorA, PhiPriorB float64
	// DiffPriorSigma is the std of the N(0, sigma^2) shrinkage prior on
	// ln(alpha_i) and ln(beta_j) (default 0.5), keeping difficulties
	// modest multiplicative modulations around 1 and anchoring the scale
	// of the otherwise scale-ambiguous product alpha*beta*phi.
	DiffPriorSigma float64
	// Warm seeds the parameters from a previous fit, the standard trick
	// for online re-inference after a handful of new answers: the EM
	// restarts next to its previous optimum and converges in a few
	// iterations. When set, the posteriors are seeded by an E-step from
	// the warm parameters instead of the empirical vote distribution.
	// Most callers should use InferWarm, which builds this from a
	// previous Model and picks warm-appropriate iteration caps.
	Warm *Warm
	// Parallelism shards the E-step over cells and the M-step
	// objective/gradient over answers on a persistent goroutine pool. The
	// paper lists parallel truth inference as future work (Sec. 7);
	// results are identical up to floating-point summation order.
	//
	//	 0  auto: parallelise at GOMAXPROCS once the decoded answer count
	//	    reaches AutoParallelMinAnswers, run serial below it — servers
	//	    no longer run big logs serial by default;
	//	 1  explicitly serial (the opt-out);
	//	>1  explicit worker count, capped at GOMAXPROCS.
	Parallelism int

	// PolishFrac tunes RefreshIncremental's amortized polish cadence: with
	// a default (maxIter <= 0) budget, the full EM polish runs only once
	// the unpolished-ingest backlog reaches
	// max(minPolishBacklog, PolishFrac * log size), keeping per-refresh
	// cost O(batch) in steady state. <= 0 means DefaultPolishFrac.
	PolishFrac float64

	// WorkerWeights seeds per-worker likelihood multipliers at fit time:
	// every answer from worker u contributes weight[u] times its usual
	// E-step evidence, M-step objective/gradient mass and ELBO term
	// (1 = full weight, 0 = the worker's answers are ignored). Workers
	// absent from the map get weight 1. The reputation layer uses this to
	// down-weight suspected spammers without rewriting the answer log; a
	// fitted model adjusts weights between refreshes via SetWorkerWeights.
	WorkerWeights map[tabular.WorkerID]float64

	// MStepGradTol overrides the M-step gradient-norm stopping tolerance
	// (default 1e-7). Values below 1e-10 also tighten the optimizer's
	// relative objective-improvement cutoff to match (never the reverse:
	// loosening MStepGradTol keeps the default objective cutoff).
	// Equivalence tests tighten it together with Tol so two EM runs
	// converging to the same optimum agree to more digits than the
	// optimizer's default precision.
	MStepGradTol float64

	// refMStep switches the M-step to the unfused reference
	// implementation (separate objective and gradient passes, fresh
	// allocations). Used by the numerical-equivalence tests to prove the
	// fused engine computes the same fit.
	refMStep bool
	// refFixedStep additionally disables the line-search step memory in
	// the reference M-step, reproducing the seed engine's original
	// optimizer exactly. Used to test that the optimised engine reaches
	// the same EM fixed point as the pre-optimisation code path.
	refFixedStep bool
}

// Warm carries parameters from a previous fit for warm-started EM.
type Warm struct {
	// Alpha and Beta must match the table dimensions to be used.
	Alpha, Beta []float64
	// Phi maps workers to their previous variance; unknown workers keep
	// InitPhi.
	Phi map[tabular.WorkerID]float64
}

// WarmFromModel extracts warm-start parameters from a fitted model.
func WarmFromModel(prev *Model) *Warm {
	w := &Warm{
		Alpha: prev.Alpha,
		Beta:  prev.Beta,
		Phi:   make(map[tabular.WorkerID]float64, len(prev.WorkerIDs)),
	}
	for k, u := range prev.WorkerIDs {
		w.Phi[u] = prev.Phi[k]
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.MStepIter <= 0 {
		o.MStepIter = 20
	}
	if o.InitPhi <= 0 {
		o.InitPhi = 0.2
	}
	if o.PhiPriorA <= 0 {
		o.PhiPriorA = 1.0
	}
	if o.PhiPriorB <= 0 {
		o.PhiPriorB = 0.4
	}
	if o.DiffPriorSigma <= 0 {
		o.DiffPriorSigma = 0.5
	}
	return o
}

// Model is the fitted state of T-Crowd truth inference: per-cell posterior
// truth distributions plus the learned difficulties and worker variances.
// It also serves the task-assignment layer, which needs posteriors,
// per-cell worker qualities and cheap single-cell updates.
type Model struct {
	Table *tabular.Table
	Log   *tabular.AnswerLog
	Opts  Options

	// Alpha[i], Beta[j] are row/column difficulties; Phi[k] is the
	// variance of the k-th worker in WorkerIDs order.
	Alpha, Beta []float64
	Phi         []float64
	WorkerIDs   []tabular.WorkerID
	workerIdx   map[tabular.WorkerID]int

	// ColMean/ColStd are the per-column standardisation constants
	// (answer mean and std; std==1, mean==0 for categorical columns).
	ColMean, ColStd []float64

	// CatPost[i][j] is the posterior label distribution of a categorical
	// cell (nil when not applicable or unanswered). The distributions of
	// all cells share one backing arena and are updated in place by the
	// E-step.
	CatPost [][][]float64
	// ContMu/ContVar hold the standardized posterior N(mu, var) of
	// continuous cells (valid where Answered).
	ContMu, ContVar [][]float64
	// Answered marks cells with at least one usable answer.
	Answered [][]bool

	// ObjTrace is the ELBO per EM iteration when TrackObjective is set.
	ObjTrace []float64
	// Iterations is the number of EM iterations performed.
	Iterations int
	// Converged reports whether the parameter-change tolerance fired.
	Converged bool

	// ilog is the streaming CSR answer store: decoded answers sorted by
	// (cell, worker), so a cell's answers are contiguous and duplicate
	// (row, column, worker) variance triples are adjacent (enabling
	// transcendental memoisation). It grows in place via Ingest.
	ilog *ingest.Log
	// colAcc[j] is the running Welford accumulator of column j's raw
	// numeric answers — the same left fold stats.MeanVariance performs,
	// kept as state so streaming batches extend the standardisation
	// constants in O(batch), bit-identically to a cold recompute over the
	// grown log.
	colAcc []colAcc
	// decoded counts the source-log entries consumed so far (including
	// answers dropped by the mode filter); IngestFrom resumes there.
	decoded int
	// lnL1[j] caches ln(numLabels-1) for categorical columns.
	lnL1 []float64
	// wgt[k] is the likelihood multiplier of the k-th worker in WorkerIDs
	// order; nil means every worker has weight 1 (the common case keeps
	// the hot loops' memoised fast paths untouched). See SetWorkerWeights.
	wgt []float64
	// medianPhi caches MedianPhi across hot assignment loops.
	medianPhi float64
	// pendingPolish counts answers ingested since the last full EM polish;
	// RefreshIncremental defers the polish until it crosses polishBacklog.
	pendingPolish int
	// scr holds every reusable hot-path buffer; see scratch.
	scr scratch
}

// scratch is the per-model arena of hot-path buffers, sized on first use
// and reused across EM iterations so the steady-state engine allocates
// nothing.
type scratch struct {
	// Per-group M-step constants, refreshed once per mStep while the
	// posteriors are frozen: total posterior mass on the answered label
	// (categorical), total squared residual plus posterior variance
	// (continuous), and the group's answer count.
	p, dv, cnt []float64
	// theta packing and its (alpha, beta, phi) views.
	theta, alpha, beta, phi []float64
	// Reference-path gradient accumulators.
	ga, gb, gp []float64
	// EM convergence snapshots.
	prevParams, curParams []float64
	// Fused optimizer state.
	work optimize.Workspace
	fg   optimize.FuncGrad
	fv   optimize.Func
	// dec is the reusable decode buffer of Ingest (batch staging);
	// colChanged is its per-column changed-constants flag set.
	dec        []ingest.Answer
	colChanged []bool
	// refreshCells snapshots the dirty-cell set per RefreshIncremental and
	// backs the RefreshStats.Cells view handed to callers.
	refreshCells []int
	// Per-shard parallel state (index = shard id): M-step partial values
	// and partial gradients.
	shardVal []float64
	shardGA  [][]float64
	shardGB  [][]float64
	shardGP  [][]float64
}

// ensureShards sizes the per-shard scratch for w parallel workers. The phi
// dimension can grow between refreshes (streaming batches may introduce new
// workers), so existing shards are re-sized when stale.
func (m *Model) ensureShards(w int) {
	scr := &m.scr
	for len(scr.shardGA) < w {
		scr.shardGA = append(scr.shardGA, make([]float64, len(m.Alpha)))
		scr.shardGB = append(scr.shardGB, make([]float64, len(m.Beta)))
		scr.shardGP = append(scr.shardGP, make([]float64, len(m.Phi)))
	}
	for s := range scr.shardGP {
		if len(scr.shardGP[s]) != len(m.Phi) {
			scr.shardGP[s] = make([]float64, len(m.Phi))
		}
	}
	if cap(scr.shardVal) < w {
		scr.shardVal = make([]float64, w)
	}
	scr.shardVal = scr.shardVal[:w]
}

// ErrNoAnswers is returned when the log has no usable answers for the
// requested mode.
var ErrNoAnswers = errors.New("core: no usable answers")

// Infer runs T-Crowd truth inference (Algorithm 1) and returns the fitted
// model.
func Infer(tbl *tabular.Table, log *tabular.AnswerLog, opts Options) (*Model, error) {
	m, err := newModel(tbl, log, opts)
	if err != nil {
		return nil, err
	}
	m.run()
	return m, nil
}

// InferWarm runs truth inference seeded from a previously fitted model —
// the online-serving fast path: after a small answer batch lands, the EM
// restarts at the previous optimum (parameters and posteriors) and only
// re-runs to convergence from there, typically in a handful of iterations
// instead of a full cold start.
//
// Warm starts are valid while the table's dimensions and schema are
// unchanged and the log has only accumulated answers; when prev is nil or
// its dimensions no longer match, InferWarm transparently falls back to a
// cold Infer. Unless the caller overrides them, warm runs cap EM at
// WarmMaxIter iterations and keep the cold convergence tolerance, so the
// result matches a cold fit to within the EM tolerance.
func InferWarm(prev *Model, tbl *tabular.Table, log *tabular.AnswerLog, opts Options) (*Model, error) {
	if opts.Warm == nil && CanWarmStart(prev, tbl) {
		opts.Warm = WarmFromModel(prev)
		if opts.MaxIter <= 0 {
			opts.MaxIter = WarmMaxIter
		}
	}
	return Infer(tbl, log, opts)
}

// CanWarmStart reports whether prev is a usable warm seed for inference
// over tbl — the single warm-validity predicate shared by InferWarm and
// callers that adjust their iteration budgets based on it (so the two
// decisions cannot drift apart).
func CanWarmStart(prev *Model, tbl *tabular.Table) bool {
	return prev != nil &&
		len(prev.Alpha) == tbl.NumRows() && len(prev.Beta) == tbl.NumCols()
}

// WarmMaxIter is the default EM iteration cap of warm-started runs: a warm
// start lands next to the previous optimum, so a short run reconverges.
const WarmMaxIter = 8

func newModel(tbl *tabular.Table, log *tabular.AnswerLog, opts Options) (*Model, error) {
	if err := tbl.Schema.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	n, mm := tbl.NumRows(), tbl.NumCols()

	m := &Model{
		Table:     tbl,
		Log:       log,
		Opts:      o,
		Alpha:     ones(n),
		Beta:      ones(mm),
		ColMean:   make([]float64, mm),
		ColStd:    make([]float64, mm),
		CatPost:   make([][][]float64, n),
		ContMu:    make([][]float64, n),
		ContVar:   make([][]float64, n),
		Answered:  make([][]bool, n),
		lnL1:      make([]float64, mm),
		workerIdx: make(map[tabular.WorkerID]int),
	}
	// Row views share flat backing arrays: one allocation per field
	// instead of one per row.
	postRows := make([][]float64, n*mm)
	muFlat := make([]float64, n*mm)
	varFlat := make([]float64, n*mm)
	ansFlat := make([]bool, n*mm)
	for i := 0; i < n; i++ {
		m.CatPost[i] = postRows[i*mm : (i+1)*mm : (i+1)*mm]
		m.ContMu[i] = muFlat[i*mm : (i+1)*mm : (i+1)*mm]
		m.ContVar[i] = varFlat[i*mm : (i+1)*mm : (i+1)*mm]
		m.Answered[i] = ansFlat[i*mm : (i+1)*mm : (i+1)*mm]
	}
	for j := 0; j < mm; j++ {
		if col := tbl.Schema.Columns[j]; col.Type == tabular.Categorical {
			m.lnL1[j] = math.Log(float64(col.NumLabels() - 1))
		}
	}

	// Column standardisation constants from the answers, folded through
	// the per-column accumulators (kept on the model so streaming batches
	// extend the same fold).
	all := log.All()
	m.colAcc = make([]colAcc, mm)
	for _, a := range all {
		if a.Value.Kind == tabular.Number {
			m.colAcc[a.Cell.Col].add(a.Value.X)
		}
	}
	for j := 0; j < mm; j++ {
		m.setColConstants(j)
	}

	// Decode answers, applying the mode filter.
	dec := make([]ingest.Answer, 0, len(all))
	for _, a := range all {
		oa, use, err := m.decodeAnswer(a)
		if err != nil {
			return nil, err
		}
		if !use {
			continue
		}
		dec = append(dec, oa)
		m.Answered[a.Cell.Row][a.Cell.Col] = true
	}
	m.decoded = len(all)
	if len(dec) == 0 {
		return nil, ErrNoAnswers
	}

	// Bulk-load the CSR store: answers sorted by (cell, worker) so each
	// cell's answers are one contiguous run and duplicate (i, j, w)
	// variance triples sit adjacent for the memoised transcendental reuse.
	m.ilog = ingest.NewLog(n, mm)
	m.ilog.Rebuild(dec)

	// Categorical posteriors live in one arena, assigned per answered
	// cell and updated in place ever after. (Cells first answered by a
	// later streamed batch get their own small slices — the clean arena
	// prefix is never reallocated.)
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < mm; j++ {
			if m.Answered[i][j] && tbl.Schema.Columns[j].Type == tabular.Categorical {
				total += tbl.Schema.Columns[j].NumLabels()
			}
		}
	}
	arena := make([]float64, total)
	off := 0
	for i := 0; i < n; i++ {
		for j := 0; j < mm; j++ {
			if m.Answered[i][j] && tbl.Schema.Columns[j].Type == tabular.Categorical {
				l := tbl.Schema.Columns[j].NumLabels()
				m.CatPost[i][j] = arena[off : off+l : off+l]
				off += l
			}
		}
	}

	m.Phi = make([]float64, len(m.WorkerIDs))
	for k := range m.Phi {
		m.Phi[k] = o.InitPhi
	}
	if len(o.WorkerWeights) > 0 {
		m.SetWorkerWeights(o.WorkerWeights)
	}
	warmed := false
	if w := o.Warm; w != nil {
		if len(w.Alpha) == n && !o.FixDifficulty {
			copy(m.Alpha, w.Alpha)
		}
		if len(w.Beta) == mm && !o.FixDifficulty {
			copy(m.Beta, w.Beta)
		}
		for k, u := range m.WorkerIDs {
			if phi, ok := w.Phi[u]; ok && phi > 0 {
				m.Phi[k] = stats.Clamp(phi, minS, maxS)
			}
		}
		warmed = true
	}
	if !warmed {
		// Cold start: seed the posteriors from the empirical answer
		// distribution. Warm starts skip this — run() derives their
		// posteriors from the warm parameters with one E-step, which both
		// reflects the previous fit and folds in any new answers.
		m.warmStart()
	}
	return m, nil
}

// checkAnswer validates one raw answer against the table: cell bounds plus
// the schema's own value check (kind AND label range — an out-of-range
// label would otherwise index out of the posterior arena much later, after
// Ingest already merged it). Validation is separate from decoding so
// Ingest can reject a bad batch before mutating any model state.
func (m *Model) checkAnswer(a tabular.Answer) error {
	if a.Cell.Row < 0 || a.Cell.Row >= m.Table.NumRows() ||
		a.Cell.Col < 0 || a.Cell.Col >= m.Table.NumCols() {
		return fmt.Errorf("core: answer cell %v outside table", a.Cell)
	}
	if err := a.Value.CheckAgainst(m.Table.Schema.Columns[a.Cell.Col]); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// decodeAnswer resolves one checked raw answer: mode filter applied, worker
// index assigned (first-seen workers are appended, with the initial
// variance when the parameter vector already exists), continuous values
// standardized with the current column constants. use is false when the
// mode filter drops the answer.
func (m *Model) decodeAnswer(a tabular.Answer) (oa ingest.Answer, use bool, err error) {
	if err := m.checkAnswer(a); err != nil {
		return ingest.Answer{}, false, err
	}
	col := m.Table.Schema.Columns[a.Cell.Col]
	isCat := col.Type == tabular.Categorical
	if (isCat && m.Opts.Mode == ModeOnlyContinuous) ||
		(!isCat && m.Opts.Mode == ModeOnlyCategorical) {
		return ingest.Answer{}, false, nil
	}
	k, ok := m.workerIdx[a.Worker]
	if !ok {
		k = len(m.WorkerIDs)
		m.workerIdx[a.Worker] = k
		m.WorkerIDs = append(m.WorkerIDs, a.Worker)
		if m.Phi != nil {
			// Streaming arrival after the cold fit sized Phi: a fresh
			// worker starts at the initial variance, like a cold start.
			m.Phi = append(m.Phi, m.Opts.InitPhi)
		}
		if m.wgt != nil {
			// New workers enter at full weight until told otherwise.
			m.wgt = append(m.wgt, 1)
		}
	}
	oa = ingest.Answer{W: k, I: a.Cell.Row, J: a.Cell.Col, IsCat: isCat}
	if isCat {
		oa.Label = a.Value.L
	} else {
		oa.X = a.Value.X
		oa.Z = stats.Standardize(a.Value.X, m.ColMean[a.Cell.Col], m.ColStd[a.Cell.Col])
	}
	return oa, true, nil
}

// SetWorkerWeights installs per-worker likelihood multipliers on a fitted
// model: weight 1 is the unweighted default, 0 removes the worker's
// evidence entirely, values between scale it proportionally. Workers absent
// from the map (and workers that arrive in later batches) get weight 1;
// negative weights clamp to 0. Passing nil (or an all-ones map) restores
// the unweighted fast path. The weights take effect at the next E-/M-step,
// so callers should follow with a refresh (e.g. RefreshIncremental) before
// reading posteriors.
func (m *Model) SetWorkerWeights(w map[tabular.WorkerID]float64) {
	if len(w) == 0 {
		m.wgt = nil
		return
	}
	if cap(m.wgt) < len(m.WorkerIDs) {
		m.wgt = make([]float64, len(m.WorkerIDs))
	}
	m.wgt = m.wgt[:len(m.WorkerIDs)]
	allOne := true
	for k, u := range m.WorkerIDs {
		wt, ok := w[u]
		if !ok {
			wt = 1
		}
		if wt < 0 {
			wt = 0
		}
		if wt != 1 {
			allOne = false
		}
		m.wgt[k] = wt
	}
	if allOne {
		// Bitwise-identical to the nil fast path anyway; keep it nil so
		// the invariant "wgt == nil means unweighted" holds for tests.
		m.wgt = nil
	}
}

// WorkerWeight returns worker u's current likelihood multiplier (1 when
// unweighted or unknown).
func (m *Model) WorkerWeight(u tabular.WorkerID) float64 {
	if m.wgt == nil {
		return 1
	}
	if k, ok := m.workerIdx[u]; ok {
		return m.wgt[k]
	}
	return 1
}

// weightOf returns the likelihood multiplier of worker index k. The nil
// branch keeps the unweighted default alloc-free; multiplying by the
// returned 1.0 is an IEEE identity, so weighted code paths stay bitwise
// equal to their pre-weight forms when no weights are set.
func (m *Model) weightOf(k int) float64 {
	if m.wgt == nil {
		return 1
	}
	return m.wgt[k]
}

// warmStart seeds posteriors from the empirical answer distribution
// (equal-weight vote / mean), the conventional EM initialisation. Vote
// counts accumulate directly in the posterior arena (categorical) and the
// ContMu/ContVar fields (continuous) — no temporaries.
func (m *Model) warmStart() {
	n, mm := m.Table.NumRows(), m.Table.NumCols()
	for idx := range m.ilog.Ans {
		a := &m.ilog.Ans[idx]
		if a.IsCat {
			m.CatPost[a.I][a.J][a.Label]++
		} else {
			m.ContMu[a.I][a.J] += a.Z // sum of answers
			m.ContVar[a.I][a.J]++     // answer count
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < mm; j++ {
			if !m.Answered[i][j] {
				continue
			}
			if post := m.CatPost[i][j]; post != nil {
				// Add-one smoothing keeps every label alive for the first
				// M-step.
				total := 0.0
				for z := range post {
					post[z] += 0.5
					total += post[z]
				}
				for z := range post {
					post[z] /= total
				}
			} else if cnt := m.ContVar[i][j]; cnt > 0 {
				m.ContMu[i][j] /= cnt
				m.ContVar[i][j] = 1 / cnt
			}
		}
	}
}

// run executes the EM loop: M-step (worker quality + cell difficulty), then
// E-step (truth posteriors), until parameters stabilise (Algorithm 1).
func (m *Model) run() {
	if m.Opts.Warm != nil {
		// Warm parameters beat vote-share posteriors: derive the
		// posteriors from them before the first M-step.
		m.eStep()
	}
	m.emLoop(m.Opts.MaxIter)
	// Freeze the median-phi cache now so concurrent readers (parallel
	// assignment scoring) never write to the model.
	m.medianPhi = m.MedianPhi()
}

// emLoop alternates M- and E-steps for at most maxIter iterations or until
// the parameter-change tolerance fires — the shared engine of the cold run
// and the streaming polish (RefreshIncremental).
func (m *Model) emLoop(maxIter int) {
	d := len(m.Alpha) + len(m.Beta) + len(m.Phi)
	if cap(m.scr.prevParams) < d {
		m.scr.prevParams = make([]float64, d)
		m.scr.curParams = make([]float64, d)
	}
	prev := m.paramSnapshot(m.scr.prevParams[:d])
	cur := m.scr.curParams[:d]
	m.Converged = false
	for it := 0; it < maxIter; it++ {
		m.Iterations = it + 1
		m.mStep()
		m.eStep()
		if m.Opts.TrackObjective {
			m.ObjTrace = append(m.ObjTrace, m.ELBO())
		}
		cur = m.paramSnapshot(cur)
		if maxDelta(prev, cur) < m.Opts.Tol {
			m.Converged = true
			break
		}
		prev, cur = cur, prev
	}
}

// paramSnapshot writes the concatenated (alpha, beta, phi) vector into dst.
func (m *Model) paramSnapshot(dst []float64) []float64 {
	dst = dst[:0]
	dst = append(dst, m.Alpha...)
	dst = append(dst, m.Beta...)
	dst = append(dst, m.Phi...)
	return dst
}

func maxDelta(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
