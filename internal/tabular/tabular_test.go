package tabular

import (
	"strings"
	"testing"
)

// testSchema mirrors the paper's running Celebrity example (Table 1).
func testSchema() Schema {
	return Schema{
		Key: "Picture",
		Columns: []Column{
			{Name: "Name", Type: Categorical, Labels: []string{"Gwyneth Paltrow", "Jet Li", "James Purefoy", "Ciaran Hinds"}},
			{Name: "Nationality", Type: Categorical, Labels: []string{"United States", "China", "Great Britain", "Canada"}},
			{Name: "Age", Type: Continuous, Min: 0, Max: 120},
			{Name: "Height", Type: Continuous, Min: 120, Max: 220},
		},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{},
		{Key: "k"},
		{Key: "k", Columns: []Column{{Name: "", Type: Continuous}}},
		{Key: "k", Columns: []Column{{Name: "a", Type: Categorical, Labels: []string{"x"}}}},
		{Key: "k", Columns: []Column{{Name: "a", Type: Categorical, Labels: []string{"x", "x"}}}},
		{Key: "k", Columns: []Column{{Name: "a", Type: Continuous, Min: 5, Max: 1}}},
		{Key: "k", Columns: []Column{{Name: "a", Type: Continuous}, {Name: "a", Type: Continuous}}},
		{Key: "k", Columns: []Column{{Name: "a", Type: ColumnType(9)}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if s.NumColumns() != 4 {
		t.Fatal("NumColumns")
	}
	if s.ColumnIndex("Age") != 2 || s.ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex")
	}
	if got := s.CategoricalRatio(); got != 0.5 {
		t.Fatalf("CategoricalRatio=%v", got)
	}
	if (Schema{}).CategoricalRatio() != 0 {
		t.Fatal("empty ratio")
	}
	if s.Columns[0].NumLabels() != 4 || s.Columns[2].NumLabels() != 0 {
		t.Fatal("NumLabels")
	}
}

func TestColumnTypeString(t *testing.T) {
	if Categorical.String() != "categorical" || Continuous.String() != "continuous" {
		t.Fatal("stringer")
	}
	if !strings.Contains(ColumnType(7).String(), "7") {
		t.Fatal("unknown stringer")
	}
}

func TestValueSemantics(t *testing.T) {
	if !LabelValue(2).Equal(LabelValue(2)) || LabelValue(2).Equal(LabelValue(3)) {
		t.Fatal("label equality")
	}
	if !NumberValue(1.5).Equal(NumberValue(1.5)) || NumberValue(1.5).Equal(NumberValue(2)) {
		t.Fatal("number equality")
	}
	if LabelValue(1).Equal(NumberValue(1)) {
		t.Fatal("cross-kind equality")
	}
	var zero Value
	if !zero.IsNone() || !zero.Equal(Value{}) {
		t.Fatal("zero value should be None")
	}
	if zero.String() != "none" || LabelValue(3).String() != "label(3)" || NumberValue(2.5).String() != "2.5" {
		t.Fatal("stringer")
	}
}

func TestValueCheckAgainst(t *testing.T) {
	s := testSchema()
	cat, cont := s.Columns[0], s.Columns[2]
	if err := LabelValue(1).CheckAgainst(cat); err != nil {
		t.Fatal(err)
	}
	if err := LabelValue(99).CheckAgainst(cat); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := NumberValue(3).CheckAgainst(cat); err == nil {
		t.Fatal("number accepted for categorical")
	}
	if err := NumberValue(44).CheckAgainst(cont); err != nil {
		t.Fatal(err)
	}
	if err := LabelValue(0).CheckAgainst(cont); err == nil {
		t.Fatal("label accepted for continuous")
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable(testSchema(), 3)
	if tbl.NumRows() != 3 || tbl.NumCols() != 4 || tbl.NumCells() != 12 {
		t.Fatal("dimensions")
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := tbl.Cells()
	if len(cells) != 12 || cells[0] != (Cell{0, 0}) || cells[11] != (Cell{2, 3}) {
		t.Fatal("Cells enumeration")
	}
	if tbl.HasTruth() {
		t.Fatal("no truth expected")
	}

	tbl.Truth = [][]Value{
		{LabelValue(0), LabelValue(0), NumberValue(40), NumberValue(175)},
		{LabelValue(1), LabelValue(1), NumberValue(45), NumberValue(168)},
		{LabelValue(2), LabelValue(2), NumberValue(48), NumberValue(185)},
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.TruthAt(Cell{1, 2}); !got.Equal(NumberValue(45)) {
		t.Fatalf("TruthAt=%v", got)
	}

	// Corrupt truth: wrong arity and wrong kind.
	tbl.Truth[2] = tbl.Truth[2][:2]
	if err := tbl.Validate(); err == nil {
		t.Fatal("short truth row accepted")
	}
	tbl.Truth[2] = []Value{NumberValue(1), LabelValue(0), NumberValue(1), NumberValue(1)}
	if err := tbl.Validate(); err == nil {
		t.Fatal("mistyped truth accepted")
	}
	tbl.Truth = [][]Value{}
	if err := tbl.Validate(); err == nil {
		t.Fatal("truth/entity mismatch accepted")
	}
}

func TestCellString(t *testing.T) {
	if (Cell{1, 2}).String() != "c[1,2]" {
		t.Fatal("cell stringer")
	}
}
