module tcrowd

go 1.24
