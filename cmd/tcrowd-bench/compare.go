package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Perf-regression gate: `tcrowd-bench -compare BASELINE.json CANDIDATE.json`
// compares two -bench-json result files and fails (non-zero exit) when a
// gated series regressed. Gated series are selected by name prefix
// (default infer/, refresh/, ingest/, shard/, server/ and wal/ — the
// serving and durability hot paths whose budgets the repo commits to); a
// series regresses when its
// ns/op grows by more than the allowed fraction (default 25%, absorbing
// CI-runner timing noise) or its allocs/op grows past the slack.
//
// ns/op headroom is per-series-class, because run-to-run timing
// variance is. The deterministic kernel series (infer/, ingest/,
// refresh/) repeat within a few percent on one machine, so they take
// -max-ns-regress at face value — the self-calibrating CI gate runs
// them at a tight 8%. The concurrency-bearing series (server/, shard/)
// and the fsync-bearing wal/ series race goroutine scheduling and real
// disk barriers, so their effective headroom is never tightened below
// 25% regardless of the flag (observed: ±14% on server/estimates-paged
// across back-to-back identical binaries). The wal/*-never series are
// not ns-gated at all: an OS-paced buffered write measures page-cache
// and dirty-writeback state, not this repo's code (observed: +54%
// between two consecutive runs of one binary); their allocs/op — the
// signal that is ours — still gates.
//
// Alloc slack is per-series-class. Kernel series (infer/, ingest/,
// refresh/) are near-deterministic: the allowed growth is one alloc plus
// 0.1%, absorbing two benign wobbles — the EM iteration count a refresh
// needs can shift by one between runs (observed as ±3 allocs on ~8.7k),
// and testing.Benchmark's small-N division lets a single stray runtime
// alloc move the per-op count by one (observed as 58 -> 59 on the infer
// series). Concurrency-bearing series get a wider slack (four allocs plus
// 5%): the server/ timed windows race the asynchronous shard refresh and
// the shard/ ops run 16 concurrent consistency reads, so a scheduling-
// dependent share of goroutine and EM allocations lands inside the
// memstats delta (observed as ±6..22 on ~400-900 across identical
// binaries). A real regression allocates at least once per work item
// (answers per op >> 1), far above both slacks; the
// steady-state-zero-alloc guarantee of the ingest path is pinned exactly
// by its unit test, not by this gate. Gated series present in the baseline
// must exist in the candidate; series new in the candidate are reported
// but never gate.
//
// Intended regressions — a PR that deliberately trades one gated series
// for another (e.g. a cheaper refresh paid for by a pricier append) —
// are declared in a waivers file passed via -waivers. Each waiver names
// a series prefix and a reason; waived regressions are reported as
// WAIVED instead of failing. Waivers self-expire: the file pins the
// BENCH index it was written against (`baseline_index`), and when the
// newest committed BENCH_N.json in the working directory has a higher
// index the whole file is ignored with a notice. A waiver therefore
// lives exactly as long as the baseline generation whose PR declared
// it, and the next PR that commits a baseline retires it automatically.

// compareConfig parameterises runCompare.
type compareConfig struct {
	// gates are the series-name prefixes under the regression gate.
	gates []string
	// maxNsRegress is the allowed fractional ns/op growth (0.25 = +25%).
	maxNsRegress float64
	// maxAllocRegress is the allowed fractional allocs/op growth.
	maxAllocRegress float64
	// waivers holds the active intended-regression declarations
	// (already expiry-checked by loadWaivers).
	waivers []waiver
}

// waiver declares one intended regression: gated failures on series
// matching the prefix are downgraded to WAIVED while the waiver file's
// baseline generation is current.
type waiver struct {
	// Series is a series-name prefix, matched like a gate prefix.
	Series string `json:"series"`
	// Reason documents the trade — printed with every waived failure.
	Reason string `json:"reason"`
}

// waiverFile is the on-disk format of -waivers (perf-waivers.json).
type waiverFile struct {
	// BaselineIndex is the BENCH index the waivers were written
	// against. The file only applies while this equals the newest
	// committed BENCH_N.json index; afterwards it is stale and ignored.
	BaselineIndex int      `json:"baseline_index"`
	Waivers       []waiver `json:"waivers"`
}

// newestBenchIndex returns the highest N among BENCH_N.json files in the
// current directory, or -1 when none exist.
func newestBenchIndex() int {
	matches, _ := filepath.Glob("BENCH_*.json")
	newest := -1
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > newest {
			newest = n
		}
	}
	return newest
}

// loadWaivers reads a waivers file and returns the active waivers, or nil
// when the path is empty, the file is absent, or the declarations are
// stale (written against an older baseline generation than the newest
// committed BENCH_N.json).
func loadWaivers(path string) ([]waiver, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var wf waiverFile
	if err := json.Unmarshal(data, &wf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if newest := newestBenchIndex(); wf.BaselineIndex < newest {
		fmt.Printf("waivers %s are stale (baseline_index %d < newest committed BENCH_%d) — ignored\n",
			path, wf.BaselineIndex, newest)
		return nil, nil
	}
	return wf.Waivers, nil
}

// waived returns the declared reason when a series falls under an active
// waiver prefix.
func (c compareConfig) waived(name string) (string, bool) {
	for _, w := range c.waivers {
		if w.Series != "" && strings.HasPrefix(name, w.Series) {
			return w.Reason, true
		}
	}
	return "", false
}

// loadBenchFile reads a -bench-json result file.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &bf, nil
}

// gated reports whether a series name falls under any gate prefix.
func (c compareConfig) gated(name string) bool {
	for _, g := range c.gates {
		if strings.HasPrefix(name, g) {
			return true
		}
	}
	return false
}

// nsSlack returns the allowed fractional ns/op growth for a series and
// whether ns/op gates it at all (see the package comment: kernel series
// take the flag verbatim, concurrency/disk-bearing classes floor at 25%,
// OS-paced wal/*-never series are ns-exempt).
func (c compareConfig) nsSlack(name string) (frac float64, gated bool) {
	switch {
	case strings.HasSuffix(name, "-never"):
		return 0, false
	case strings.HasPrefix(name, "server/"), strings.HasPrefix(name, "shard/"), strings.HasPrefix(name, "wal/"):
		if c.maxNsRegress > 0.25 {
			return c.maxNsRegress, true
		}
		return 0.25, true
	}
	return c.maxNsRegress, true
}

// allocSlack returns the absolute and fractional allocs/op growth allowed
// for a series: tight for the deterministic kernel series, wider for the
// concurrency-bearing series — server/ (timed windows race asynchronous
// shard refreshes) and shard/ (16 concurrent consistency reads per op) —
// where a scheduling-dependent share of goroutine and EM allocations
// lands inside the memstats delta (see the package comment).
func (c compareConfig) allocSlack(name string) (abs float64, frac float64) {
	if strings.HasPrefix(name, "server/") || strings.HasPrefix(name, "shard/") {
		return 4, 0.05
	}
	return 1, c.maxAllocRegress
}

// runCompare prints a comparison table and returns an error when any gated
// series regressed.
func runCompare(basePath, candPath string, cfg compareConfig) error {
	base, err := loadBenchFile(basePath)
	if err != nil {
		return err
	}
	cand, err := loadBenchFile(candPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(cand.Benchmarks))
	for name := range cand.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("baseline %s (index %d, %s) vs candidate %s\n",
		basePath, base.Index, base.GoVersion, candPath)
	fmt.Printf("%-32s %14s %14s %8s %14s %8s\n",
		"benchmark", "base ns/op", "cand ns/op", "ns Δ", "allocs b/c", "gate")

	var failures []string
	var waivedLines []string
	for _, name := range names {
		c := cand.Benchmarks[name]
		b, inBase := base.Benchmarks[name]
		if !inBase {
			fmt.Printf("%-32s %14s %14.0f %8s %8s/%-5d %8s\n",
				name, "-", c.NsPerOp, "new", "-", c.AllocsPerOp, "-")
			continue
		}
		nsDelta := c.NsPerOp/b.NsPerOp - 1
		status := "ok"
		var seriesFailures []string
		if cfg.gated(name) {
			if nsLimit, nsGated := cfg.nsSlack(name); nsGated && nsDelta > nsLimit {
				status = "FAIL ns"
				seriesFailures = append(seriesFailures,
					fmt.Sprintf("%s: ns/op regressed %.1f%% (limit %.0f%%)", name, 100*nsDelta, 100*nsLimit))
			}
			abs, frac := cfg.allocSlack(name)
			if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+frac)+abs {
				if status == "ok" {
					status = "FAIL allocs"
				} else {
					status += "+allocs"
				}
				seriesFailures = append(seriesFailures,
					fmt.Sprintf("%s: allocs/op regressed %d -> %d", name, b.AllocsPerOp, c.AllocsPerOp))
			}
			if reason, ok := cfg.waived(name); ok && len(seriesFailures) > 0 {
				status = "waived"
				for _, f := range seriesFailures {
					waivedLines = append(waivedLines, fmt.Sprintf("%s (waiver: %s)", f, reason))
				}
				seriesFailures = nil
			}
			failures = append(failures, seriesFailures...)
		} else {
			status = "ungated"
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %8d/%-5d %8s\n",
			name, b.NsPerOp, c.NsPerOp, 100*nsDelta, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	for name := range base.Benchmarks {
		if _, ok := cand.Benchmarks[name]; !ok && cfg.gated(name) {
			failures = append(failures, fmt.Sprintf("%s: gated series missing from candidate", name))
		}
	}

	if len(waivedLines) > 0 {
		fmt.Println()
		for _, w := range waivedLines {
			fmt.Printf("WAIVED: %s\n", w)
		}
	}
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d perf regression(s)", len(failures))
	}
	fmt.Println("\nno gated regressions")
	return nil
}
