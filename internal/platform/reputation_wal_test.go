package platform

import (
	"errors"
	"fmt"
	"testing"

	"tcrowd/internal/reputation"
	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

// banPlatform builds a durable reputation-enabled project over fs and
// drives two spammers through the graduated responses: s1 spams every
// row (ends Banned), s2 stops after 20 rows (ends Quarantined). The
// table gets one spare row beyond the stream for post-recovery
// submission probes. Returns the platform and accepted-answer count.
func banPlatform(t *testing.T, fs wal.FS, rows int) (*Platform, int) {
	t.Helper()
	p := NewWithOptions(7, walTestOpts(fs, wal.SyncAlways))
	if _, err := p.CreateProject("guard", spamSchema(), ProjectConfig{
		Rows:         rows + 1,
		RefreshEvery: 1 << 30,
		Reputation:   true,
		PolishFrac:   0.25,
	}); err != nil {
		t.Fatal(err)
	}
	var answers []tabular.Answer
	var metas []AnswerMeta
	add := func(w string, r, label int, meta AnswerMeta) {
		answers = append(answers, tabular.Answer{
			Worker: tabular.WorkerID(w),
			Cell:   tabular.Cell{Row: r, Col: 0},
			Value:  tabular.LabelValue(label),
		})
		metas = append(metas, meta)
	}
	for r := 0; r < rows; r++ {
		for h := 1; h <= 3; h++ {
			add(fmt.Sprintf("h%d", h), r, r%3, honestMeta())
		}
		add("s1", r, (r+1)%3, spamMeta())
		if r < 20 {
			add("s2", r, (r+1)%3, spamMeta())
		}
	}
	accepted := 0
	sawBan := false
	for i := range answers {
		_, err := p.SubmitBatchMeta("guard", answers[i:i+1], metas[i:i+1])
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrWorkerBanned) && answers[i].Worker == "s1":
			sawBan = true
		default:
			t.Fatalf("answer %d: %v", i, err)
		}
	}
	if !sawBan {
		t.Fatal("spammer never banned — stream too short")
	}
	return p, accepted
}

// repInfo pulls one worker's reputation row from a platform.
func repInfo(t *testing.T, p *Platform, worker tabular.WorkerID) WorkerReputationInfo {
	t.Helper()
	infos, enabled, err := p.WorkerReputations("guard")
	if err != nil || !enabled {
		t.Fatalf("WorkerReputations: enabled=%v err=%v", enabled, err)
	}
	for _, in := range infos {
		if in.Worker == worker {
			return in
		}
	}
	t.Fatalf("worker %s not in reputation roster %+v", worker, infos)
	return WorkerReputationInfo{}
}

// TestWALBanSurvivesCleanRestart: graduated-response verdicts ride the
// WAL, so a restarted server keeps rejecting the banned worker and keeps
// the quarantined worker's counters — trust state is durable at
// state-change granularity, not re-earned from scratch. (Workers that
// never transitioned carry no verdict record and legitimately restart
// at the Active default until the next checkpoint persists the full
// roster.)
func TestWALBanSurvivesCleanRestart(t *testing.T) {
	fs := wal.NewMemFS()
	const rows = 40
	p, accepted := banPlatform(t, fs, rows)
	banBefore := repInfo(t, p, "s1")
	quarBefore := repInfo(t, p, "s2")
	if banBefore.State != reputation.Banned || quarBefore.State != reputation.Quarantined {
		t.Fatalf("pre-restart states: s1=%v s2=%v, want Banned/Quarantined", banBefore.State, quarBefore.State)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, rep, err := Recover(7, walTestOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer p2.Close()
	if rep.Projects != 1 || rep.Answers != accepted {
		t.Fatalf("report %+v, want 1 project / %d answers", rep, accepted)
	}

	// The ban is sticky; the quarantine (state AND its fold counters as
	// of the last verdict) survives too.
	banAfter := repInfo(t, p2, "s1")
	if banAfter.State != reputation.Banned {
		t.Fatalf("ban lost in recovery: %+v", banAfter)
	}
	quarAfter := repInfo(t, p2, "s2")
	if quarAfter.State != reputation.Quarantined {
		t.Fatalf("quarantine lost in recovery: %+v", quarAfter)
	}
	if quarAfter.Seen == 0 || quarAfter.Judged == 0 || quarAfter.DisagreeRate == 0 {
		t.Fatalf("quarantine counters lost in recovery: %+v", quarAfter.WorkerSnapshot)
	}

	// Wire-visible consequences hold after restart, on a fresh cell.
	bad := tabular.Answer{Worker: "s1", Cell: tabular.Cell{Row: rows, Col: 0}, Value: tabular.LabelValue(0)}
	if _, err := p2.SubmitBatchMeta("guard", []tabular.Answer{bad}, nil); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("banned submission after recovery: %v", err)
	}
	if _, err := p2.RequestTasks("guard", "s1", 1); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("banned task request after recovery: %v", err)
	}
	if tasks, err := p2.RequestTasks("guard", "s2", 1); err != nil || len(tasks) != 0 {
		t.Fatalf("quarantined tasks after recovery = %v, %v; want empty, nil", tasks, err)
	}
	// polish_frac rode the create record.
	proj, err := p2.Project("guard")
	if err != nil {
		t.Fatal(err)
	}
	if proj.polishFrac != 0.25 {
		t.Fatalf("polish_frac lost in recovery: %v", proj.polishFrac)
	}
}

// TestWALBanSurvivesHardCrash is the kill-mid-stream variant: the
// process dies with no Close and a torn tail injected. Every verdict was
// appended under fsync=always before the platform acted on it, so the
// ban must still hold in the restarted process.
func TestWALBanSurvivesHardCrash(t *testing.T) {
	fs := wal.NewMemFS()
	const rows = 40
	p, _ := banPlatform(t, fs, rows)
	fs.Crash(3)
	_ = p // the old platform is dead weight; recovery mounts the wreckage

	p2, rep, err := Recover(7, walTestOpts(fs.Recovered(), wal.SyncAlways))
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	defer p2.Close()
	if rep.Projects != 1 {
		t.Fatalf("report %+v", rep)
	}
	if got := repInfo(t, p2, "s1"); got.State != reputation.Banned {
		t.Fatalf("ban lost in crash recovery: %+v", got)
	}
	bad := tabular.Answer{Worker: "s1", Cell: tabular.Cell{Row: rows, Col: 0}, Value: tabular.LabelValue(0)}
	if _, err := p2.SubmitBatchMeta("guard", []tabular.Answer{bad}, nil); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("banned submission after crash recovery: %v", err)
	}
}

// TestWALCheckpointCarriesReputation: after compaction folds the log into
// a checkpoint record, the FULL reputation roster (honest counters
// included) must be rebuilt from the checkpoint alone — the per-verdict
// records it replaced are gone.
func TestWALCheckpointCarriesReputation(t *testing.T) {
	fs := wal.NewMemFS()
	const rows = 40
	p, _ := banPlatform(t, fs, rows)
	proj, err := p.Project("guard")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.compactProject(proj); err != nil {
		t.Fatalf("compact: %v", err)
	}
	before, _, _ := p.WorkerReputations("guard")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, _, err := Recover(7, walTestOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatalf("recover from checkpoint: %v", err)
	}
	defer p2.Close()
	after, _, err := p2.WorkerReputations("guard")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("recovered %d workers, want %d (honest counters live in the checkpoint)", len(after), len(before))
	}
	for i := range after {
		if after[i].WorkerSnapshot != before[i].WorkerSnapshot {
			t.Errorf("worker %s snapshot drifted across checkpointed recovery:\n got %+v\nwant %+v",
				after[i].Worker, after[i].WorkerSnapshot, before[i].WorkerSnapshot)
		}
	}
}
