// Restaurant: demonstrates the structural machinery of Sec. 5 — attribute
// error correlations (Fig. 6) and online task assignment with the
// structure-aware information-gain Assigner, tracking how fast the
// estimates converge as the budget grows (Fig. 5's best curve).
package main

import (
	"fmt"
	"log"

	"tcrowd"
)

func main() {
	sim, err := tcrowd.StandInDataset("Restaurant", 7)
	if err != nil {
		log.Fatal(err)
	}
	table := sim.Table()

	// Phase 1: seed every task with one answer (Algorithm 2, line 1).
	answers := sim.Collect(1)
	fmt.Printf("seeded %d answers across %d cells\n", answers.Len(), table.NumCells())

	// Phase 2: online assignment with the structure-aware engine.
	assigner := tcrowd.NewAssigner(table, tcrowd.AssignOptions{
		Policy: tcrowd.PolicyStructureAware,
		Seed:   8,
	})
	if err := assigner.Observe(answers); err != nil {
		log.Fatal(err)
	}

	workers := sim.Workers()
	batch := table.NumCols() // one row-sized HIT per arrival
	target := 3 * table.NumCells()
	arrival := 0
	fmt.Printf("\n%-10s %12s %12s\n", "Ans/Task", "Error Rate", "MNAD")
	for answers.Len() < target {
		u := workers[arrival%len(workers)]
		arrival++
		cells, err := assigner.Next(u, batch)
		if err != nil {
			log.Fatal(err)
		}
		if len(cells) == 0 {
			continue
		}
		for _, c := range cells {
			if a, ok := sim.Answer(u, c); ok {
				answers.Add(a)
			}
		}
		if arrival%10 == 0 {
			if err := assigner.Observe(answers); err != nil {
				log.Fatal(err)
			}
		}
		// Report at each half-answer-per-task milestone.
		apt := float64(answers.Len()) / float64(table.NumCells())
		if arrival%25 == 0 {
			if err := assigner.Observe(answers); err != nil {
				log.Fatal(err)
			}
			est := assigner.EstimatedTruth()
			fmt.Printf("%-10.2f %12.4f %12.4f\n",
				apt,
				tcrowd.ErrorRate(table, est, answers),
				tcrowd.MNAD(table, est, answers))
		}
	}

	// Phase 3: inspect the attribute correlations the assigner exploited.
	res, err := tcrowd.Infer(table, answers, tcrowd.InferOptions{})
	if err != nil {
		log.Fatal(err)
	}
	w := res.Correlations()
	fmt.Println("\nAttribute error correlations W_jk (Eq. 8):")
	fmt.Printf("%-12s", "")
	for _, c := range table.Schema.Columns {
		fmt.Printf(" %11s", c.Name)
	}
	fmt.Println()
	for j, cj := range table.Schema.Columns {
		fmt.Printf("%-12s", cj.Name)
		for k := range table.Schema.Columns {
			fmt.Printf(" %11.3f", w[j][k])
		}
		fmt.Println()
	}
	fmt.Println("\nStartTarget/EndTarget errors correlate because a worker who")
	fmt.Println("misreads the review span gets both endpoints wrong together —")
	fmt.Println("exactly the signal structure-aware assignment exploits.")
}
