package baselines

import (
	"math"

	"tcrowd/internal/metrics"
	"tcrowd/internal/optimize"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// GLAD (Whitehill et al., NIPS'09) models the probability that worker u
// answers task t correctly as sigma(g_u * d_t), with real-valued worker
// ability g_u shared across all categorical columns and per-task inverse
// difficulty d_t > 0; wrong answers spread uniformly over the remaining
// labels. EM with gradient ascent on (g, ln d).
type GLAD struct {
	// MaxIter bounds EM iterations (default 30).
	MaxIter int
	// MStepIter bounds gradient steps per M-step (default 20).
	MStepIter int
}

// Name implements Method.
func (GLAD) Name() string { return "GLAD" }

type gladObs struct {
	w, t, label, l int
}

// Infer implements Method.
func (g GLAD) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	maxIter := g.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	mStep := g.MStepIter
	if mStep <= 0 {
		mStep = 20
	}
	est := metrics.NewEstimates(tbl)

	// Tasks are categorical cells with answers.
	type cellKey struct{ i, j int }
	taskIdx := map[cellKey]int{}
	var taskCells []cellKey
	workerIdx := map[tabular.WorkerID]int{}
	var observations []gladObs
	for _, j := range catColumns(tbl) {
		l := tbl.Schema.Columns[j].NumLabels()
		for i := 0; i < tbl.NumRows(); i++ {
			as := log.ByCell(tabular.Cell{Row: i, Col: j})
			if len(as) == 0 {
				continue
			}
			key := cellKey{i, j}
			t, ok := taskIdx[key]
			if !ok {
				t = len(taskCells)
				taskIdx[key] = t
				taskCells = append(taskCells, key)
			}
			for _, a := range as {
				w, ok := workerIdx[a.Worker]
				if !ok {
					w = len(workerIdx)
					workerIdx[a.Worker] = w
				}
				observations = append(observations, gladObs{w: w, t: t, label: a.Value.L, l: l})
			}
		}
	}
	if len(observations) == 0 {
		return est, nil
	}
	nw, nt := len(workerIdx), len(taskCells)

	// Posteriors initialised from vote shares.
	post := make([][]float64, nt)
	for t, key := range taskCells {
		post[t] = make([]float64, tbl.Schema.Columns[key.j].NumLabels())
	}
	for _, o := range observations {
		post[o.t][o.label]++
	}
	for t := range post {
		for z := range post[t] {
			post[t][z] += 0.5
		}
		normalize(post[t])
	}

	// Parameters: theta = [g (nw, real) ; ln d (nt)].
	theta := make([]float64, nw+nt)
	for w := 0; w < nw; w++ {
		theta[w] = 1
	}

	// pCorrect[o] caches the posterior probability that observation o's
	// answer is correct; refreshed each E-step.
	pCorrect := make([]float64, len(observations))
	refresh := func() {
		for k, o := range observations {
			pCorrect[k] = post[o.t][o.label]
		}
	}
	refresh()

	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

	negQ := func(th []float64) float64 {
		q := 0.0
		for k, o := range observations {
			s := stats.Clamp(sigmoid(th[o.w]*math.Exp(th[nw+o.t])), 1e-12, 1-1e-12)
			p := pCorrect[k]
			q += p*math.Log(s) + (1-p)*(math.Log(1-s)-math.Log(float64(o.l-1)))
		}
		// Weak priors keep abilities/difficulties from running away.
		for w := 0; w < nw; w++ {
			q -= th[w] * th[w] / 50
		}
		for t := 0; t < nt; t++ {
			q -= th[nw+t] * th[nw+t] / 50
		}
		return -q
	}
	negGrad := func(th, grad []float64) {
		for i := range grad {
			grad[i] = 0
		}
		for k, o := range observations {
			d := math.Exp(th[nw+o.t])
			s := sigmoid(th[o.w] * d)
			diff := pCorrect[k] - s
			grad[o.w] -= diff * d
			grad[nw+o.t] -= diff * th[o.w] * d
		}
		for w := 0; w < nw; w++ {
			grad[w] += th[w] / 25
		}
		for t := 0; t < nt; t++ {
			grad[nw+t] += th[nw+t] / 25
		}
	}

	for it := 0; it < maxIter; it++ {
		// M-step.
		res := optimize.Minimize(negQ, negGrad, theta, optimize.Options{MaxIter: mStep, InitStep: 0.1})
		theta = res.X

		// E-step.
		next := make([][]float64, nt)
		for t := range next {
			next[t] = make([]float64, len(post[t]))
		}
		for _, o := range observations {
			s := stats.Clamp(sigmoid(theta[o.w]*math.Exp(theta[nw+o.t])), 1e-12, 1-1e-12)
			lnRight := math.Log(s)
			lnWrong := math.Log((1 - s) / float64(o.l-1))
			lp := next[o.t]
			for z := range lp {
				if z == o.label {
					lp[z] += lnRight
				} else {
					lp[z] += lnWrong
				}
			}
		}
		delta := 0.0
		for t := range next {
			p := stats.NormalizeLogProbs(next[t])
			for z := range p {
				if d := math.Abs(p[z] - post[t][z]); d > delta {
					delta = d
				}
			}
			post[t] = p
		}
		refresh()
		if delta < 1e-6 {
			break
		}
	}

	for t, key := range taskCells {
		est[key.i][key.j] = tabular.LabelValue(argMax(post[t]))
	}
	return est, nil
}
