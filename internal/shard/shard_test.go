package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// keysOnDistinctShards probes for two keys the ring places on different
// shards (always exists for >= 2 shards with any reasonable ring).
func keysOnDistinctShards(t *testing.T, s *Scheduler) (a, b string) {
	t.Helper()
	a = "probe-0"
	sa := s.ShardFor(a)
	for i := 1; i < 10000; i++ {
		b = fmt.Sprintf("probe-%d", i)
		if s.ShardFor(b) != sa {
			return a, b
		}
	}
	t.Fatal("could not find keys on distinct shards")
	return "", ""
}

// keysOnShard probes for n distinct keys the ring places on the given
// shard.
func keysOnShard(t *testing.T, s *Scheduler, shard, n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < 100000 && len(out) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s.ShardFor(k) == shard {
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d keys for shard %d", len(out), n, shard)
	}
	return out
}

func TestSubmitWaitRunsJobAndPropagatesError(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	var ran atomic.Int64
	if err := s.SubmitWait("p", func() error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatalf("job ran %d times", ran.Load())
	}
	boom := errors.New("boom")
	if err := s.SubmitWait("p", func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("job error not propagated: %v", err)
	}
	m := s.Metrics()
	var completed, failed uint64
	for _, sm := range m {
		completed += sm.Completed
		failed += sm.Failed
	}
	if completed != 2 || failed != 1 {
		t.Fatalf("metrics: completed=%d failed=%d", completed, failed)
	}
}

// TestCoalescing pins the core queue semantics: while a job for a key is
// queued (not yet running), further submits for the same key collapse into
// it — one execution serves them all, and every waiter is notified.
func TestCoalescing(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	defer s.Close()

	gate := make(chan struct{})
	// Occupy the single worker so the next submits stay queued.
	if err := s.Submit("blocker", func() error { <-gate; return nil }); err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker is running (its queue slot is released).
	waitUntil(t, func() bool { return s.Metrics()[0].Depth == 0 })

	var runs atomic.Int64
	refresh := func() error { runs.Add(1); return nil }
	if err := s.Submit("proj", refresh); err != nil {
		t.Fatal(err)
	}
	// 5 duplicate refreshes for the queued key: all coalesce.
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.SubmitWait("proj", refresh)
		}(i)
	}
	// Let the waiters attach before releasing the worker.
	waitUntil(t, func() bool { return s.Metrics()[0].Coalesced >= 5 })
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("coalesced job ran %d times, want 1", got)
	}
	m := s.Metrics()[0]
	if m.Coalesced != 5 {
		t.Fatalf("coalesced counter = %d, want 5", m.Coalesced)
	}
	if m.Enqueued != 2 { // blocker + proj
		t.Fatalf("enqueued counter = %d, want 2", m.Enqueued)
	}
}

// TestSaturationReturnsTypedError pins backpressure: a full shard queue
// rejects new keys with ErrShardSaturated (and counts the rejection), while
// already-queued keys still coalesce fine.
func TestSaturationReturnsTypedError(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2})
	defer s.Close()

	gate := make(chan struct{})
	defer close(gate)
	if err := s.Submit("blocker", func() error { <-gate; return nil }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return s.Metrics()[0].Depth == 0 })

	// Fill the queue with 2 distinct keys.
	for i := 0; i < 2; i++ {
		if err := s.Submit(fmt.Sprintf("fill-%d", i), func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	// A third distinct key must be rejected with the typed error.
	err := s.Submit("overflow", func() error { return nil })
	if !errors.Is(err, ErrShardSaturated) {
		t.Fatalf("want ErrShardSaturated, got %v", err)
	}
	// Coalescing into an already-queued key still works at saturation.
	if err := s.Submit("fill-0", func() error { return nil }); err != nil {
		t.Fatalf("coalesce at saturation rejected: %v", err)
	}
	m := s.Metrics()[0]
	if m.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", m.Rejected)
	}
}

// TestIsolationUnderSaturatedShard is the acceptance-criterion test: with
// one shard wedged (stuck job, full queue), keys on other shards keep
// being served at full speed.
func TestIsolationUnderSaturatedShard(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 1})
	defer s.Close()
	hot, cold := keysOnDistinctShards(t, s)

	// Wedge the hot shard: a job that never finishes during the test
	// window plus a full queue behind it.
	gate := make(chan struct{})
	defer close(gate)
	if err := s.Submit(hot, func() error { <-gate; return nil }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return s.Metrics()[s.ShardFor(hot)].Depth == 0 })
	hotKeys := keysOnShard(t, s, s.ShardFor(hot), 2)
	if err := s.Submit(hotKeys[0], func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	// The hot shard is now wedged AND full: a new key there is rejected.
	if err := s.Submit(hotKeys[1], func() error { return nil }); !errors.Is(err, ErrShardSaturated) {
		t.Fatalf("wedged shard accepted new work: %v", err)
	}

	// The cold shard's projects still refresh, promptly.
	for i := 0; i < 5; i++ {
		done := make(chan error, 1)
		go func() { done <- s.SubmitWait(cold, func() error { return nil }) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cold shard blocked behind saturated hot shard")
		}
	}
}

// TestCloseDrainsQueuedJobs pins shutdown semantics: Close waits for every
// accepted job to run; submits after Close fail with ErrClosed.
func TestCloseDrainsQueuedJobs(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 64})
	var ran atomic.Int64
	const jobs = 20
	for i := 0; i < jobs; i++ {
		key := fmt.Sprintf("p-%d", i)
		if err := s.Submit(key, func() error {
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if got := ran.Load(); got != jobs {
		t.Fatalf("Close drained %d/%d jobs", got, jobs)
	}
	if err := s.Submit("late", func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := s.SubmitWait("late", func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit-wait after close: %v", err)
	}
}

// TestJobPanicDoesNotKillWorker pins the worker's panic barrier: a
// panicking job surfaces as an error and the shard keeps serving.
func TestJobPanicDoesNotKillWorker(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	err := s.SubmitWait("p", func() error { panic("kaboom") })
	if err == nil {
		t.Fatal("panic swallowed")
	}
	if err := s.SubmitWait("p", func() error { return nil }); err != nil {
		t.Fatalf("worker dead after panic: %v", err)
	}
	if m := s.Metrics()[0]; m.Failed != 1 || m.Completed != 2 {
		t.Fatalf("metrics after panic: %+v", m)
	}
}

// TestConcurrentSubmitters hammers the scheduler from many goroutines
// (run under -race in CI): mixed Submit/SubmitWait across overlapping keys
// must neither race nor lose notifications.
func TestConcurrentSubmitters(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 256})
	defer s.Close()
	var executed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("proj-%d", (g*50+i)%7)
				fn := func() error { executed.Add(1); return nil }
				var err error
				if i%3 == 0 {
					err = s.SubmitWait(key, fn)
				} else {
					err = s.Submit(key, fn)
				}
				if err != nil && !errors.Is(err, ErrShardSaturated) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Drain whatever is still queued.
	s.Close()
	var enq, coal, rej, comp uint64
	for _, m := range s.Metrics() {
		enq += m.Enqueued
		coal += m.Coalesced
		rej += m.Rejected
		comp += m.Completed
	}
	if comp != enq {
		t.Fatalf("completed %d != enqueued %d", comp, enq)
	}
	if enq+coal+rej != 16*50 {
		t.Fatalf("accounting: enqueued %d + coalesced %d + rejected %d != %d submits", enq, coal, rej, 16*50)
	}
	if executed.Load() != int64(comp) {
		t.Fatalf("executed %d != completed %d", executed.Load(), comp)
	}
}

// TestRingDeterminismAndSpread sanity-checks the consistent-hash ring:
// placement is deterministic, every shard owns a reasonable share of keys,
// and growing the worker count moves only a minority of keys.
func TestRingDeterminismAndSpread(t *testing.T) {
	const n = 8
	a := New(Options{Workers: n, QueueDepth: 1})
	b := New(Options{Workers: n, QueueDepth: 1})
	defer a.Close()
	defer b.Close()

	counts := make([]int, n)
	const keys = 4096
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("project-%d", i)
		sa, sb := a.ShardFor(k), b.ShardFor(k)
		if sa != sb {
			t.Fatalf("placement not deterministic: %q -> %d vs %d", k, sa, sb)
		}
		counts[sa]++
	}
	for sh, c := range counts {
		// Perfectly uniform would be keys/n; allow a generous band (vnode
		// smoothing with 32 replicas keeps real spread well inside it).
		if c < keys/n/4 || c > keys/n*4 {
			t.Fatalf("shard %d owns %d of %d keys (n=%d): ring badly unbalanced", sh, c, keys, n)
		}
	}

	grown := New(Options{Workers: n + 1, QueueDepth: 1})
	defer grown.Close()
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("project-%d", i)
		if a.ShardFor(k) != grown.ShardFor(k) {
			moved++
		}
	}
	// Consistent hashing should move ~1/(n+1) of keys; mod-hashing would
	// move ~n/(n+1). Assert we are far from the mod-hash regime.
	if moved > keys/2 {
		t.Fatalf("growing %d->%d shards moved %d/%d keys — not consistent hashing", n, n+1, moved, keys)
	}
}

// TestHashKeyMatchesStdlibFNV pins the hand-rolled allocation-free FNV-1a
// loop to the stdlib implementation: placement must stay stable across
// refactors, since it decides which shard owns every persisted project.
func TestHashKeyMatchesStdlibFNV(t *testing.T) {
	for _, key := range []string{"", "p", "project-42", "Ω/unicode key", "a-much-longer-project-identifier"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		if want, got := mix64(h.Sum64()), hashKey(key); got != want {
			t.Fatalf("hashKey(%q) = %#x, stdlib fnv gives %#x", key, got, want)
		}
	}
}

// waitUntil polls cond to avoid sleeping fixed durations in tests.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitWaitKeyedRoutesByRouteKeyCoalescesByJobKey pins the split
// identity: keyed jobs run on the ROUTE key's shard (regardless of the
// job key), coalesce with queued jobs sharing their job key, and never
// coalesce across distinct job keys for the same route.
func TestSubmitWaitKeyedRoutesByRouteKeyCoalescesByJobKey(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 16})
	defer s.Close()

	// Routing: the job lands on routeKey's shard even when jobKey would
	// hash elsewhere.
	route, other := keysOnDistinctShards(t, s)
	sh := s.ShardFor(route)
	gate := make(chan struct{})
	if err := s.Submit(route, func() error { <-gate; return nil }); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- s.SubmitWaitKeyed(route, other /* jobKey hashing to the other shard */, func() error { return nil })
	}()
	// The keyed job must be behind the blocker on route's shard: the
	// other shard stays idle, so nothing completes until the gate opens.
	queued := time.Now().Add(5 * time.Second)
	for s.Metrics()[sh].Depth == 0 {
		if time.Now().After(queued) {
			t.Fatal("keyed job not queued on the route key's shard")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("keyed job ran before the route shard's blocker finished")
	default:
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Coalescing: with the worker blocked again, two keyed submits under
	// one job key collapse into one queued job; a submit under a second
	// job key does not.
	gate2 := make(chan struct{})
	if err := s.Submit(route, func() error { <-gate2; return nil }); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	results := make(chan error, 3)
	for _, jobKey := range []string{"kind-a", "kind-a", "kind-b"} {
		jk := jobKey
		go func() {
			results <- s.SubmitWaitKeyed(route, jk, func() error { ran.Add(1); return nil })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics()[sh].Coalesced == 0 || s.Metrics()[sh].Depth < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("keyed coalescing metrics: %+v", s.Metrics()[sh])
		}
		time.Sleep(time.Millisecond)
	}
	close(gate2)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("keyed jobs ran %d times, want 2 (kind-a coalesced, kind-b separate)", got)
	}
}
