// Command tcrowd-server runs the AMT-like crowdsourcing platform over HTTP
// (the system architecture of the paper's Fig. 1), serving many projects
// from one process through a sharded inference scheduler.
//
// Usage:
//
//	tcrowd-server -addr :8080
//	tcrowd-server -addr :8080 -state platform.json   # load + persist state
//	tcrowd-server -workers 8 -queue-depth 128        # explicit shard sizing
//
// Endpoints — the versioned /v1 wire API (full reference: README.md next
// to this file; wire types: package api; official Go SDK: package client;
// the same paths without /v1 are deprecated aliases kept for one release):
//
//	POST /v1/projects                  register a schema
//	GET  /v1/projects/{id}/tasks       dynamic task assignment (external-HIT)
//	POST /v1/projects/{id}/answers     submit one answer or an atomic batch
//	GET  /v1/projects/{id}/estimates   truth inference (consistent; ?cursor=&limit=)
//	GET  /v1/projects/{id}/snapshot    last published estimates (never blocks on EM)
//	GET  /v1/projects/{id}/stats       collection progress
//	GET  /v1/stats                     shard-scheduler metrics
//
// Every non-2xx body is a typed error envelope
// {"error":{"code","message","retryable"}} with stable machine codes
// (docs/api-routes.txt lists the full surface and is drift-checked in CI).
//
// # Serving architecture
//
// Projects are partitioned across -workers inference shards by consistent
// hashing on the project ID (internal/shard). Each shard is one worker
// goroutine with a bounded queue of coalescing jobs:
//
//   - POST /v1/.../answers validates the whole submission up front
//     (batches are atomic: any invalid row rejects everything with
//     per-item detail), appends to the project's append-only log, and
//     enqueues at most ONE coalescing refresh per request on the
//     project's refresh cadence — it never waits on inference. Recorded
//     answers are always acknowledged 201; a saturated shard surfaces as
//     refresh:"deferred" in-body (the legacy alias keeps its historical
//     per-answer 429).
//   - GET /v1/.../tasks routes any due assignment-engine refresh through
//     the project's shard worker (same coalescing and backpressure as
//     estimate refreshes) — never on the request goroutine under the
//     platform lock. Under backpressure tasks are served from the stale
//     assignment state instead of failing.
//   - GET /v1/.../estimates is the strongly consistent read: it routes a
//     refresh through the project's shard and waits, so the response
//     reflects every recorded answer; 429 + Retry-After under
//     saturation. The refresh itself is incremental — the model ingests
//     only the submission delta (O(batch), not O(log)). ?cursor=&limit=
//     pages the estimate list for very large tables.
//   - GET /v1/.../snapshot is the non-blocking read: one atomic pointer
//     load of the last published estimate snapshot (copy-on-publish),
//     immune to shard backlog. Its answers_seen/fresh fields report
//     staleness.
//
// One hot project can saturate only its own shard; other projects keep
// refreshing (isolation), and queue bounds turn overload into fast,
// typed backpressure instead of unbounded memory growth.
//
// On SIGINT/SIGTERM the server stops accepting HTTP, drains the shard
// queues, and (with -state) persists every project's log.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcrowd/internal/platform"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		state   = flag.String("state", "", "optional JSON state file (loaded at start, saved on SIGINT/SIGTERM)")
		seed    = flag.Int64("seed", 1, "assignment tie-breaking seed")
		workers = flag.Int("workers", 0, "inference shard workers (0 = GOMAXPROCS-derived)")
		depth   = flag.Int("queue-depth", 0, "per-shard refresh queue bound (0 = default 64)")
	)
	flag.Parse()

	opts := platform.Options{Workers: *workers, QueueDepth: *depth}
	var p *platform.Platform
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			loaded, err := platform.LoadWithOptions(f, *seed, opts)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("loading %s: %w", *state, err))
			}
			p = loaded
			fmt.Printf("loaded state from %s (%d projects)\n", *state, len(p.ProjectIDs()))
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if p == nil {
		p = platform.NewWithOptions(*seed, opts)
	}

	srv := &http.Server{Addr: *addr, Handler: platform.NewServer(p)}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		// Graceful stop: let in-flight requests finish (a recorded answer
		// must get its acknowledgment — an aborted connection would make
		// the client retry into a 409), with a bound so a wedged handler
		// can't stall shutdown forever.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}()

	fmt.Printf("tcrowd-server listening on %s (%d inference workers)\n", *addr, p.NumShardWorkers())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}

	// HTTP is stopped: drain queued refreshes, then persist.
	p.Close()
	if *state != "" {
		f, err := os.Create(*state)
		if err == nil {
			err = p.Save(f)
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcrowd-server: saving state: %v\n", err)
		} else {
			fmt.Printf("state saved to %s\n", *state)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcrowd-server: %v\n", err)
	os.Exit(1)
}
