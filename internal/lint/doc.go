// Package lint implements tcrowd's project-specific static analyzers:
// the comment-only invariants the system's correctness rests on, turned
// into machine-checked contracts that run on every PR.
//
// The suite contains four analyzers (see Analyzers):
//
//   - lockcheck: lock contracts. Struct fields annotated
//     "//tcrowd:guardedby <mu>" (or the legacy prose "guarded by <mu>")
//     may only be accessed on paths that hold that mutex; functions
//     annotated "//tcrowd:locked <mu>" (or "Caller holds <mu>") may only
//     be called with the mutex held, and themselves start with it held.
//     Package-level "//tcrowd:lockorder A.x < B.y" directives declare the
//     documented acquisition order; taking A.x while B.y is held is a
//     violation.
//
//   - detfold: accumulation-order determinism. In packages whose package
//     comment carries "//tcrowd:deterministic", ranging over a map while
//     accumulating floats or appending to a slice is flagged (map order
//     is randomized — the construct silently breaks the bitwise
//     batch-split invariants), as is any use of time.Now/Since/Until and
//     of math/rand's package-level (globally seeded) functions.
//
//   - noalloc: zero-allocation hot paths. Functions annotated
//     "//tcrowd:noalloc" are flagged for allocating constructs: append,
//     make, new, map/slice literals, variable-capturing closures,
//     fmt calls, and concrete-value-to-interface boxing. The AllocsPerRun
//     pins in the benchmarks stay, but they sample one code path; the
//     analyzer covers every branch.
//
//   - errtable: exhaustiveness. A composite-literal table annotated
//     "//tcrowd:errtable" must contain a row for every exported Err*
//     sentinel in its package; a const group annotated "//tcrowd:enum"
//     defines an enum whose switches (in that package) must list every
//     member, default clause or not; and any switch over a named
//     integer "enum-like" type that has no default clause must cover
//     every declared constant of that type.
//
// Findings are suppressed with a waiver comment on the flagged line or
// the line directly above:
//
//	//lint:allow <analyzer> <reason>
//
// Waived findings are not silent: the driver (cmd/tcrowd-lint) surfaces
// every waiver in its report, so intentional exceptions stay reviewable.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// only — go/parser + go/types with the source importer — so the lint
// gate needs nothing outside the repository and the Go toolchain.
package lint
