package shard

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring: every shard owns Replicas virtual points
// on a uint64 circle, and a key belongs to the shard owning the first point
// clockwise of the key's hash. Consistent hashing (rather than hash mod N)
// keeps the key→shard map stable under resizing: growing from N to N+1
// workers moves only ~1/(N+1) of the keys, so a restart with a different
// GOMAXPROCS does not reshuffle every project's home shard — warm models,
// logs and metrics stay put for the vast majority of projects.
type ring struct {
	points []uint64 // sorted virtual-node positions
	owner  []int    // owner[i] is the shard owning points[i]
}

// hashKey positions a key on the circle: FNV-1a (stable across processes
// and platforms) followed by a 64-bit finalizer mix. Raw FNV-1a has weak
// avalanche on short, similar keys ("project-1", "project-2", ...) and
// clusters them on the circle badly enough to skew shard ownership by >5x;
// the murmur3-style fmix64 finalizer restores uniformity while keeping the
// hash stable. The FNV loop is hand-rolled rather than hash/fnv because
// hashKey sits on the per-answer Submit hot path (under the platform
// mutex): ranging the string directly avoids the hash-object and []byte
// allocations of the stdlib interface.
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the murmur3 fmix64 finalizer (full avalanche on all 64 bits).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing places replicas virtual points per shard.
func buildRing(shards, replicas int) ring {
	r := ring{
		points: make([]uint64, 0, shards*replicas),
		owner:  make([]int, 0, shards*replicas),
	}
	type vnode struct {
		point uint64
		shard int
	}
	vs := make([]vnode, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			vs = append(vs, vnode{hashKey(fmt.Sprintf("shard-%d-vnode-%d", s, v)), s})
		}
	}
	// Ties (64-bit collisions are ~never, but determinism must not depend
	// on luck) break toward the lower shard index.
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].point != vs[j].point {
			return vs[i].point < vs[j].point
		}
		return vs[i].shard < vs[j].shard
	})
	for _, v := range vs {
		r.points = append(r.points, v.point)
		r.owner = append(r.owner, v.shard)
	}
	return r
}

// locate returns the shard owning key.
func (r ring) locate(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) { // wrap past the highest point
		i = 0
	}
	return r.owner[i]
}

// DefaultRingVnodes is the virtual-node count NewRing uses when vnodes
// is zero — the same density the in-process shard ring runs with, so
// cluster-level placement inherits the measured ownership uniformity.
const DefaultRingVnodes = 128

// Ring is the exported, string-keyed consistent-hash ring: the same
// FNV-1a+fmix64 circle the in-process shard scheduler places projects
// with, promoted to arbitrary node keys so a cluster layer can make
// every project's home NODE stable-by-key exactly like its home shard.
// Stability is the point: restarting a cluster with one peer added or
// removed moves only ~1/(N+1) of the projects, so handoff transfers the
// moved projects' state and nothing else.
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	points []uint64 // sorted virtual-node positions
	owner  []string // owner[i] is the node owning points[i]
	nodes  []string // distinct node keys, sorted
}

// NewRing builds a ring over the given node keys with vnodes virtual
// points per node (0 = DefaultRingVnodes). Duplicate node keys collapse
// to one; an empty node set yields a ring whose Locate returns "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultRingVnodes
	}
	distinct := append([]string(nil), nodes...)
	sort.Strings(distinct)
	distinct = slicesCompact(distinct)
	r := &Ring{
		points: make([]uint64, 0, len(distinct)*vnodes),
		owner:  make([]string, 0, len(distinct)*vnodes),
		nodes:  distinct,
	}
	type vnode struct {
		point uint64
		node  string
	}
	vs := make([]vnode, 0, len(distinct)*vnodes)
	for _, n := range distinct {
		for v := 0; v < vnodes; v++ {
			vs = append(vs, vnode{hashKey(fmt.Sprintf("node-%s-vnode-%d", n, v)), n})
		}
	}
	// Ties (64-bit collisions are ~never, but determinism must not depend
	// on luck) break toward the lexically lower node key, mirroring the
	// lower-shard-index rule of the in-process ring.
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].point != vs[j].point {
			return vs[i].point < vs[j].point
		}
		return vs[i].node < vs[j].node
	})
	for _, v := range vs {
		r.points = append(r.points, v.point)
		r.owner = append(r.owner, v.node)
	}
	return r
}

// slicesCompact deduplicates a sorted slice in place (stdlib
// slices.Compact spelled out to keep the package's import surface flat).
func slicesCompact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Locate returns the node owning key ("" on an empty ring): the node
// owning the first virtual point clockwise of the key's hash.
func (r *Ring) Locate(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) { // wrap past the highest point
		i = 0
	}
	return r.owner[i]
}

// Nodes returns the distinct node keys, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }
