package platform

import (
	"net/http"

	"tcrowd/api"
)

// routeDef is one row of the server's route registration table. NewServer
// registers exactly this table and nothing else, and cmd/tcrowd-apiroutes
// renders it into docs/api-routes.txt — the CI docs job diffs the two, so
// the documented API surface cannot drift from the mux.
type routeDef struct {
	method  string
	pattern string
	handler func(*Server, http.ResponseWriter, *http.Request)
}

// routeTable is the full wire surface: the versioned /v1 API and nothing
// else (the pre-v1 unversioned aliases, deprecated in the previous
// release, are gone — they now 404). /snapshot is served by the same
// generation-pinned handler as /estimates: the two endpoints merged when
// reads became snapshot-pinned, and the old path is kept as a stable
// alias of the merged read.
var routeTable = []routeDef{
	{"POST", "/v1/projects", (*Server).createProject},
	{"GET", "/v1/projects", (*Server).listProjects},
	{"DELETE", "/v1/projects/{id}", (*Server).deleteProject},
	{"GET", "/v1/projects/{id}/tasks", (*Server).tasks},
	{"POST", "/v1/projects/{id}/answers", (*Server).submitV1},
	{"GET", "/v1/projects/{id}/estimates", (*Server).estimates},
	{"GET", "/v1/projects/{id}/snapshot", (*Server).estimates},
	{"GET", "/v1/projects/{id}/watch", (*Server).watch},
	{"GET", "/v1/projects/{id}/stats", (*Server).stats},
	{"GET", "/v1/projects/{id}/workers", (*Server).workers},
	{"GET", "/v1/stats", (*Server).shardStats},
}

// Route is one row of the public route listing, exposed for the API-drift
// check (cmd/tcrowd-apiroutes) and documentation tooling.
type Route struct {
	Method  string
	Pattern string
}

// Routes returns the server's full route table in registration order.
func Routes() []Route {
	out := make([]Route, len(routeTable))
	for i, r := range routeTable {
		out[i] = Route{Method: r.method, Pattern: r.pattern}
	}
	return out
}

// WatchEventType is one row of the public watch-event listing: the SSE
// `event:` names GET /v1/projects/{id}/watch may emit, exposed for the
// API-drift check and documentation tooling (long-poll responses carry
// the same payloads as plain JSON bodies).
type WatchEventType struct {
	Event   string
	Payload string
	Doc     string
}

// WatchEventTypes returns the watch stream's event-type table.
func WatchEventTypes() []WatchEventType {
	return []WatchEventType{
		{
			Event:   api.WatchEventGeneration,
			Payload: "api.WatchEvent",
			Doc:     "one event per published snapshot generation; cells lists moved cells (capped at 64, cells_overflow marks truncation); coalesced=true marks dropped intermediate bumps",
		},
	}
}

// registerRoutes installs the route table on the server's mux.
func (s *Server) registerRoutes() {
	for _, r := range routeTable {
		h := r.handler
		s.mux.HandleFunc(r.method+" "+r.pattern, func(w http.ResponseWriter, req *http.Request) {
			h(s, w, req)
		})
	}
}
