package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic pseudo-random generator for the given
// seed. Every simulation in this repository takes an explicit RNG so
// experiments are reproducible run-to-run.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SampleLongTail draws a value from a log-normal-shaped long-tail
// distribution with the given median and tail heaviness sigma (>0), floored
// at lo. The paper observes that crowdsourced worker error follows a
// long-tail distribution (the motivation behind CATD); worker variance
// populations in the simulator are drawn with this helper.
func SampleLongTail(rng *rand.Rand, median, sigma, lo float64) float64 {
	v := median * math.Exp(sigma*rng.NormFloat64())
	if v < lo {
		return lo
	}
	return v
}

// SampleTruncatedNormal draws from N(mu, sd^2) truncated to [lo, hi] by
// rejection with a clamping fallback after a bounded number of attempts.
func SampleTruncatedNormal(rng *rand.Rand, mu, sd, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := mu + sd*rng.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return Clamp(mu, lo, hi)
}

// Shuffle permutes n indexed items in place via swap, a seeded wrapper
// around Fisher-Yates that keeps call sites terse.
func Shuffle(rng *rand.Rand, n int, swap func(i, j int)) {
	rng.Shuffle(n, swap)
}

// Perm returns a random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }
