package simulate

import (
	"math"
	"testing"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func TestNewPopulationShape(t *testing.T) {
	rng := stats.NewRNG(1)
	ws := NewPopulation(rng, PopulationConfig{N: 200, SpammerFrac: 0.1})
	if len(ws) != 200 {
		t.Fatal("size")
	}
	ids := make(map[tabular.WorkerID]bool)
	spammers := 0
	for _, w := range ws {
		if ids[w.ID] {
			t.Fatalf("duplicate id %s", w.ID)
		}
		ids[w.ID] = true
		if w.Phi <= 0 {
			t.Fatal("non-positive phi")
		}
		if w.Phi == 60 {
			spammers++
		}
		if w.ConfusionProneness < 0 || w.ConfusionProneness > 1 {
			t.Fatal("proneness out of range")
		}
	}
	if spammers != 20 {
		t.Fatalf("want 20 spammers, got %d", spammers)
	}
	// Long tail: max phi should be far above the median.
	phis := make([]float64, len(ws))
	for i, w := range ws {
		phis[i] = w.Phi
	}
	if med := stats.Median(phis); med <= 0 {
		t.Fatal("median phi")
	}
}

func TestWorkerQualityMonotone(t *testing.T) {
	good := Worker{Phi: 0.05}
	bad := Worker{Phi: 5}
	if good.Quality(0.5) <= bad.Quality(0.5) {
		t.Fatal("lower variance must mean higher quality")
	}
	if q := good.Quality(0.5); q <= 0 || q >= 1 {
		t.Fatalf("quality out of (0,1): %v", q)
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	rng := stats.NewRNG(2)
	ds := Generate(rng, TableConfig{Rows: 40, Cols: 8, CatRatio: 0.25})
	tbl := ds.Table
	if tbl.NumRows() != 40 || tbl.NumCols() != 8 {
		t.Fatal("dimensions")
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	nCat := 0
	for _, c := range tbl.Schema.Columns {
		if c.Type == tabular.Categorical {
			nCat++
			if len(c.Labels) < 2 || len(c.Labels) > 10 {
				t.Fatalf("label count %d outside U(2,10)", len(c.Labels))
			}
		}
	}
	if nCat != 2 {
		t.Fatalf("want 2 categorical columns, got %d", nCat)
	}
	if len(ds.Alpha) != 40 || len(ds.Beta) != 8 || len(ds.ContScale) != 8 {
		t.Fatal("difficulty/scale arity")
	}
	for j, c := range tbl.Schema.Columns {
		if c.Type == tabular.Continuous && ds.ContScale[j] <= 0 {
			t.Fatal("continuous column without scale")
		}
		if c.Type == tabular.Categorical && ds.ContScale[j] != 0 {
			t.Fatal("categorical column with scale")
		}
	}
}

func TestGenerateMeanDifficulty(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, mu := range []float64{0.5, 1, 2, 3} {
		ds := Generate(rng, TableConfig{Rows: 50, Cols: 10, MeanDifficulty: mu})
		got := ds.MeanDifficulty()
		// mean(alpha)*mean(beta) = mu * 1; cross-products average to the
		// product of means exactly because difficulty draws are rescaled.
		if math.Abs(got-mu)/mu > 0.01 {
			t.Fatalf("mean difficulty %v want %v", got, mu)
		}
	}
}

func TestGenerateExtremeRatios(t *testing.T) {
	rng := stats.NewRNG(4)
	all := Generate(rng, TableConfig{Rows: 10, Cols: 6, CatRatio: 1})
	none := Generate(rng, TableConfig{Rows: 10, Cols: 6, CatRatio: -1})
	if all.Table.Schema.CategoricalRatio() != 1 {
		t.Fatal("ratio 1")
	}
	if none.Table.Schema.CategoricalRatio() != 0 {
		t.Fatal("ratio 0")
	}
}

func TestCrowdAnswerTypes(t *testing.T) {
	ds := Generate(stats.NewRNG(5), TableConfig{Rows: 10, Cols: 6})
	cr := NewCrowd(ds, 6)
	w := &ds.Workers[0]
	for j, col := range ds.Table.Schema.Columns {
		v := cr.AnswerValue(w, tabular.Cell{Row: 0, Col: j})
		if err := v.CheckAgainst(col); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrowdQualityDrivesAccuracy(t *testing.T) {
	ds := Generate(stats.NewRNG(7), TableConfig{Rows: 60, Cols: 8, CatRatio: 0.5})
	// Disable row confusion so the comparison isolates phi.
	ds.RowConfusionBase = 0
	cr := NewCrowd(ds, 8)
	good := &Worker{ID: "good", Phi: 0.02}
	bad := &Worker{ID: "bad", Phi: 8}

	accuracy := func(w *Worker) (catAcc, contErr float64) {
		correct, total := 0, 0
		var errs []float64
		for i := 0; i < ds.Table.NumRows(); i++ {
			for j, col := range ds.Table.Schema.Columns {
				c := tabular.Cell{Row: i, Col: j}
				v := cr.AnswerValue(w, c)
				truth := ds.Table.TruthAt(c)
				if col.Type == tabular.Categorical {
					total++
					if v.Equal(truth) {
						correct++
					}
				} else {
					errs = append(errs, math.Abs(v.X-truth.X))
				}
			}
		}
		return float64(correct) / float64(total), stats.Mean(errs)
	}
	gAcc, gErr := accuracy(good)
	bAcc, bErr := accuracy(bad)
	if gAcc <= bAcc {
		t.Fatalf("good worker categorical accuracy %v <= bad %v", gAcc, bAcc)
	}
	if gErr >= bErr {
		t.Fatalf("good worker continuous error %v >= bad %v", gErr, bErr)
	}
}

func TestCrowdRowConfusionIsSticky(t *testing.T) {
	ds := Generate(stats.NewRNG(9), TableConfig{Rows: 5, Cols: 4})
	ds.RowConfusionBase = 0.5
	cr := NewCrowd(ds, 10)
	w := &ds.Workers[0]
	w.ConfusionProneness = 1
	// The coin is flipped once per (worker,row): the memo must hold a
	// stable value across repeated queries.
	first := cr.isConfused(w, 2)
	for k := 0; k < 20; k++ {
		if cr.isConfused(w, 2) != first {
			t.Fatal("confusion flip-flopped")
		}
	}
}

func TestFixedAssignmentMultiplicity(t *testing.T) {
	ds := Generate(stats.NewRNG(11), TableConfig{Rows: 12, Cols: 5})
	cr := NewCrowd(ds, 12)
	log := cr.FixedAssignment(4)
	if log.Len() != 12*5*4 {
		t.Fatalf("len=%d", log.Len())
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 5; j++ {
			c := tabular.Cell{Row: i, Col: j}
			got := log.ByCell(c)
			if len(got) != 4 {
				t.Fatalf("cell %v has %d answers", c, len(got))
			}
			seen := map[tabular.WorkerID]bool{}
			for _, a := range got {
				if seen[a.Worker] {
					t.Fatalf("worker %s answered %v twice", a.Worker, c)
				}
				seen[a.Worker] = true
			}
		}
	}
	if err := log.Validate(ds.Table); err != nil {
		t.Fatal(err)
	}
	// Row-HIT structure: a worker answering cell (i,0) answered all of row i.
	a0 := log.ByCell(tabular.Cell{Row: 3, Col: 0})
	for _, a := range a0 {
		if got := log.RowAnswersByWorker(a.Worker, 3); len(got) != 5 {
			t.Fatalf("worker %s answered %d cells of row 3", a.Worker, len(got))
		}
	}
}

func TestFixedAssignmentCapsAtPopulation(t *testing.T) {
	ds := Generate(stats.NewRNG(13), TableConfig{Rows: 3, Cols: 2, Population: PopulationConfig{N: 3}})
	cr := NewCrowd(ds, 14)
	log := cr.FixedAssignment(10)
	if log.Len() != 3*2*3 {
		t.Fatalf("len=%d want %d", log.Len(), 18)
	}
}

func TestPartialAssignmentBudget(t *testing.T) {
	ds := Generate(stats.NewRNG(15), TableConfig{Rows: 10, Cols: 4})
	cr := NewCrowd(ds, 16)
	log := cr.PartialAssignment(5, 57)
	// Budget is checked per HIT (a row of 4 answers), so overshoot is < M.
	if log.Len() < 57 || log.Len() >= 57+4 {
		t.Fatalf("len=%d", log.Len())
	}
}

func TestArrivalOrderCoversPopulation(t *testing.T) {
	ds := Generate(stats.NewRNG(17), TableConfig{Rows: 4, Cols: 2, Population: PopulationConfig{N: 7}})
	cr := NewCrowd(ds, 18)
	order := cr.ArrivalOrder(25)
	if len(order) != 25 {
		t.Fatal("length")
	}
	// First 7 arrivals are a permutation: every worker appears once.
	seen := map[int]bool{}
	for _, idx := range order[:7] {
		if idx < 0 || idx >= 7 || seen[idx] {
			t.Fatal("first block is not a permutation")
		}
		seen[idx] = true
	}
}

func TestDatasetHelpers(t *testing.T) {
	ds := Celebrity(1)
	if ds.WorkerByID(ds.Workers[3].ID) != &ds.Workers[3] {
		t.Fatal("WorkerByID")
	}
	if ds.WorkerByID("nope") != nil {
		t.Fatal("phantom worker")
	}
	empty := &Dataset{}
	if empty.MeanDifficulty() != 0 {
		t.Fatal("empty difficulty")
	}
}
