package platform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/internal/tabular"
)

// startWriter hammers the project with unique single-answer submissions
// (each on the every-answer refresh cadence, so snapshots publish
// constantly) until the returned stop func is called (idempotent). The
// writer is paced and capped: the point is a steady stream of generation
// bumps racing the reader, not a multi-million-answer log whose EM
// refresh would take minutes to drain at Close.
func startWriter(t *testing.T, p *Platform, id string) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	finished := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(finished)
		for i := 0; i < writerCap; i++ {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
			w := tabular.WorkerID(fmt.Sprintf("writer-%06d", i))
			// Saturation only sheds the refresh; the answer still lands.
			_ = p.Submit(id, w, i%3, "price", tabular.NumberValue(float64(5+i%9)))
		}
	}()
	return func() { once.Do(func() { close(done) }); <-finished }
}

// writerCap bounds the background writer's submissions. Every submission
// publishes at most one generation (RefreshEvery 1), so the coherence
// test's retention ring — sized comfortably above writerCap plus the
// explicit publishes — can never evict the pinned generation mid-walk
// however the goroutines schedule: the zero-retry claim is structural,
// not a timing accident.
const writerCap = 100

// TestPagedWalkGenerationCoherentUnderWrites is the acceptance-criterion
// read-coherence test: a small-page estimates walk racing a heavy writer
// stays pinned to one generation end to end — every page reports the
// generation the first page pinned, with zero retries (the walk never
// re-requests a page), while the model republishes underneath. A
// background writer publishes concurrently throughout AND an explicit
// write + strongly consistent refresh is interleaved before every page,
// so each later page is guaranteed to be served AFTER the latest
// generation moved past the pinned one.
func TestPagedWalkGenerationCoherentUnderWrites(t *testing.T) {
	p := NewWithOptions(71, Options{Workers: 2, QueueDepth: 256, RetainGenerations: 256})
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "hot") // RefreshEvery 1: every write is a refresh

	stop := startWriter(t, p, "hot")
	defer stop()

	getPage := func(cursor string) estimatesResp {
		t.Helper()
		q := "?limit=1"
		if cursor != "" {
			q = "?limit=1&cursor=" + cursor
		}
		resp, err := http.Get(srv.URL + "/v1/projects/hot/estimates" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %q status %d", cursor, resp.StatusCode)
		}
		var page estimatesResp
		decodeBody(t, resp, &page)
		return page
	}

	walked := getPage("") // pins the walk's generation
	requests := 1
	for i := 0; walked.NextCursor != ""; i++ {
		// Force the model past the pinned generation before every page.
		w := tabular.WorkerID(fmt.Sprintf("interleaved-%02d", i))
		if err := p.Submit("hot", w, i%3, "price", tabular.NumberValue(9)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunInference("hot"); err != nil {
			t.Fatal(err)
		}
		page := getPage(walked.NextCursor)
		requests++
		if page.Generation != walked.Generation || page.AnswersSeen != walked.AnswersSeen {
			t.Fatalf("walk spans model states: page %d at generation %d (answers %d), pinned %d (answers %d)",
				requests, page.Generation, page.AnswersSeen, walked.Generation, walked.AnswersSeen)
		}
		walked.Estimates = append(walked.Estimates, page.Estimates...)
		walked.NextCursor = page.NextCursor
	}
	stop()
	if requests < 3 {
		t.Fatalf("walk took only %d pages — not a paged walk", requests)
	}
	// The pinned generation kept serving even though the latest moved on.
	latest, err := p.Snapshot("hot")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Generation <= walked.Generation {
		t.Fatalf("latest generation %d did not move past the pinned %d", latest.Generation, walked.Generation)
	}
}

// TestConditionalGet pins the poller contract: a read conditioned on the
// generation the client already holds answers 304 with no body while the
// model is unchanged, and a fresh 200 with a new ETag after a refresh
// publishes a new generation.
func TestConditionalGet(t *testing.T) {
	p := New(72)
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "a")

	get := func(etag string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/projects/a/estimates", nil)
		if err != nil {
			t.Fatal(err)
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unconditional read status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	var est estimatesResp
	decodeBody(t, resp, &est)
	if etag != fmt.Sprintf("%q", fmt.Sprint(est.Generation)) {
		t.Fatalf("ETag %q does not quote generation %d", etag, est.Generation)
	}

	// Unchanged generation: 304, empty body.
	resp = get(etag)
	body, _ := func() ([]byte, error) {
		defer resp.Body.Close()
		b := new(bytes.Buffer)
		_, err := b.ReadFrom(resp.Body)
		return b.Bytes(), err
	}()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional read: status %d, %d body bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("304 lost the ETag: %q", resp.Header.Get("ETag"))
	}

	// A wildcard and a stale tag in a list also match correctly.
	if resp = get("*"); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard conditional status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if resp = get(`"999", ` + etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("list conditional status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// New answers + refresh publish a new generation: same conditional
	// read now returns a fresh 200 with a new ETag.
	if err := p.Submit("a", "w9", 1, "price", tabular.NumberValue(42)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunInference("a"); err != nil {
		t.Fatal(err)
	}
	resp = get(etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refresh conditional status %d", resp.StatusCode)
	}
	var fresh estimatesResp
	decodeBody(t, resp, &fresh)
	if fresh.Generation != est.Generation+1 || resp.Header.Get("ETag") == etag {
		t.Fatalf("post-refresh read: generation %d (was %d), ETag %q",
			fresh.Generation, est.Generation, resp.Header.Get("ETag"))
	}
}

// TestGenerationRetainedRing pins the retention contract: recent
// generations stay addressable (?generation= and SnapshotAt), evicted ones
// answer 410 generation_gone, and unpublished ones 404 no_snapshot.
func TestGenerationRetainedRing(t *testing.T) {
	p := NewWithOptions(73, Options{RetainGenerations: 2})
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "a") // publishes generation 1
	for gen := 2; gen <= 4; gen++ {
		w := tabular.WorkerID(fmt.Sprintf("g%d", gen))
		if err := p.Submit("a", w, 2, "price", tabular.NumberValue(float64(gen))); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunInference("a"); err != nil {
			t.Fatal(err)
		}
	}
	latest, err := p.Snapshot("a")
	if err != nil || latest.Generation != 4 {
		t.Fatalf("latest generation: %+v %v", latest, err)
	}
	// Ring holds 3 and 4; SnapshotAt serves both, with distinct contents.
	for gen := 3; gen <= 4; gen++ {
		res, err := p.SnapshotAt("a", gen)
		if err != nil || res.Generation != gen {
			t.Fatalf("SnapshotAt(%d): %+v %v", gen, res, err)
		}
	}
	g3, _ := p.SnapshotAt("a", 3)
	if g3 == latest || g3.AnswersSeen >= latest.AnswersSeen {
		t.Fatalf("retained generation is not a distinct older state: %+v vs %+v", g3, latest)
	}

	status := func(q string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/projects/a/estimates" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("?generation=3"); got != http.StatusOK {
		t.Fatalf("retained generation read status %d", got)
	}
	// Evicted: 410 generation_gone (same for a cursor pinning it).
	resp, err := http.Get(srv.URL + "/v1/projects/a/estimates?generation=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted generation status %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeGenerationGone {
		t.Fatalf("evicted generation code %q", e.Code)
	}
	if got := status("?cursor=1:2"); got != http.StatusGone {
		t.Fatalf("evicted cursor status %d", got)
	}
	// Not yet published: 404 no_snapshot (retryable).
	resp, err = http.Get(srv.URL + "/v1/projects/a/estimates?generation=99")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("future generation status %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeNoSnapshot || !e.Retryable {
		t.Fatalf("future generation envelope: %+v", e)
	}
}

// TestWatchLongPoll pins the long-poll contract: an immediate catch-up
// event when the project is already past ?after=, a parked request woken
// by the next publish, and 204 on timeout.
func TestWatchLongPoll(t *testing.T) {
	p := New(74)
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "a") // generation 1 published

	// after=0 < latest: immediate catch-up.
	resp, err := http.Get(srv.URL + "/v1/projects/a/watch?after=0&timeout=5")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catch-up poll status %d", resp.StatusCode)
	}
	var ev api.WatchEvent
	decodeBody(t, resp, &ev)
	if ev.Generation != 1 || ev.Project != "a" || ev.AnswersSeen == 0 || ev.ChangedCells == 0 {
		t.Fatalf("catch-up event: %+v", ev)
	}
	if ev.Coalesced {
		t.Fatalf("single-step catch-up flagged coalesced: %+v", ev)
	}

	// Parked poll: wakes on the next publish with its exact event.
	type pollResult struct {
		status int
		ev     api.WatchEvent
	}
	got := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/projects/a/watch?after=1&timeout=30")
		if err != nil {
			t.Error(err)
			return
		}
		var r pollResult
		r.status = resp.StatusCode
		if resp.StatusCode == http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&r.ev)
		}
		resp.Body.Close()
		got <- r
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	if err := p.Submit("a", "w9", 1, "price", tabular.NumberValue(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunInference("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.status != http.StatusOK || r.ev.Generation != 2 || r.ev.AnswersDelta != 1 {
			t.Fatalf("parked poll result: %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked poll never woke on the publish")
	}

	// Nothing newer + short timeout: 204, no body.
	resp, err = http.Get(srv.URL + "/v1/projects/a/watch?after=99&timeout=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("timeout poll status %d", resp.StatusCode)
	}

	// Catch-up across more than one missed generation flags the gap.
	resp, err = http.Get(srv.URL + "/v1/projects/a/watch?after=0&timeout=5")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &ev)
	if ev.Generation != 2 || !ev.Coalesced {
		t.Fatalf("multi-step catch-up event: %+v", ev)
	}
}

// TestWatchSSE streams generation bumps over Accept: text/event-stream
// and checks every published generation arrives, in order, as a
// `generation` event.
func TestWatchSSE(t *testing.T) {
	p := New(75)
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "a") // generation 1

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/projects/a/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("SSE handshake: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	events := make(chan api.WatchEvent, 16)
	var readerErr atomic.Value
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var name string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if name != api.WatchEventGeneration {
					readerErr.Store(fmt.Errorf("unexpected event type %q", name))
					return
				}
				var ev api.WatchEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					readerErr.Store(err)
					return
				}
				events <- ev
			}
		}
	}()

	next := func() api.WatchEvent {
		t.Helper()
		select {
		case ev := <-events:
			return ev
		case <-time.After(10 * time.Second):
			if err, _ := readerErr.Load().(error); err != nil {
				t.Fatal(err)
			}
			t.Fatal("no SSE event in time")
			return api.WatchEvent{}
		}
	}
	if ev := next(); ev.Generation != 1 {
		t.Fatalf("SSE catch-up event: %+v", ev)
	}
	for gen := 2; gen <= 4; gen++ {
		w := tabular.WorkerID(fmt.Sprintf("sse%d", gen))
		if err := p.Submit("a", w, 1, "price", tabular.NumberValue(float64(gen))); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunInference("a"); err != nil {
			t.Fatal(err)
		}
		if ev := next(); ev.Generation != gen || ev.Coalesced {
			t.Fatalf("SSE live event for generation %d: %+v", gen, ev)
		}
	}
}

// TestWatchCoalescesSlowConsumer pins the bounded-buffer rule at the
// notifier layer: a subscriber that never drains gets its oldest pending
// bumps dropped, keeps at most watchBuffer pending events, still ends on
// the latest generation, and the drop is observable as a gap in the
// strictly increasing Generation sequence — the publisher is never
// blocked and never buffers unboundedly.
func TestWatchCoalescesSlowConsumer(t *testing.T) {
	p := New(76)
	defer p.Close()
	seedProject(t, p, "a") // generation 1
	w, err := p.Watch("a")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const publishes = watchBuffer + 8
	for i := 0; i < publishes; i++ {
		wid := tabular.WorkerID(fmt.Sprintf("slow%03d", i))
		if err := p.Submit("a", wid, i%3, "price", tabular.NumberValue(float64(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunInference("a"); err != nil {
			t.Fatal(err)
		}
	}
	latest, _ := p.Snapshot("a")

	var got []api.WatchEvent
drain:
	for {
		select {
		case ev := <-w.Events():
			got = append(got, ev)
		default:
			break drain
		}
	}
	if len(got) > watchBuffer {
		t.Fatalf("slow watcher buffered %d events, cap %d", len(got), watchBuffer)
	}
	last := got[len(got)-1]
	if last.Generation != latest.Generation {
		t.Fatalf("slow watcher's newest event is generation %d, latest is %d", last.Generation, latest.Generation)
	}
	gap := got[0].Generation > 2 // subscribed at generation 1, so first delivery past 2 means drops
	for i := 1; i < len(got); i++ {
		if got[i].Generation <= got[i-1].Generation {
			t.Fatalf("events out of order: %d then %d", got[i-1].Generation, got[i].Generation)
		}
		if got[i].Generation > got[i-1].Generation+1 {
			gap = true
		}
	}
	if !gap {
		t.Fatalf("%d publishes into a %d-slot buffer left no generation gap: %+v", publishes, watchBuffer, got)
	}
}

// TestWatchClosesOnPlatformClose pins shutdown: watcher channels close
// after the drain, so consumers see every generation published by queued
// refreshes and then a clean end of stream.
func TestWatchClosesOnPlatformClose(t *testing.T) {
	p := New(77)
	seedProject(t, p, "a")
	w, err := p.Watch("a")
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, open := <-w.Events():
			if !open {
				return // clean close
			}
		case <-deadline:
			t.Fatal("watcher channel did not close on platform shutdown")
		}
	}
}

// TestLoadWarmupServesSnapshot pins the restart story: after a -state
// reload, every project with answers gets a warmup refresh enqueued at
// load, so the generation-pinned read path serves WITHOUT any post-restart
// write (it used to 404 until the first submission).
func TestLoadWarmupServesSnapshot(t *testing.T) {
	p := New(78)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		if err := p.Submit("a", w, 0, "category", tabular.LabelValue(1)); err != nil {
			t.Fatal(err)
		}
	}
	// An empty project rides along: it must not break the warmup sweep.
	if _, err := p.CreateProject("empty", demoSchema(), ProjectConfig{Rows: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p.Close()

	reloaded, err := Load(&buf, 78)
	if err != nil {
		t.Fatal(err)
	}
	defer reloaded.Close()
	srv := httptest.NewServer(NewServer(reloaded))
	defer srv.Close()

	// No writes after restart — the warmup refresh alone must publish.
	waitFor(t, func() bool { _, err := reloaded.Snapshot("a"); return err == nil })
	res, err := reloaded.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := reloaded.Stats("a")
	if res.Generation != 1 || res.AnswersSeen != st.Answers {
		t.Fatalf("warmup snapshot: %+v (answers %d)", res, st.Answers)
	}
	resp, err := http.Get(srv.URL + "/v1/projects/a/estimates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart pinned read status %d", resp.StatusCode)
	}
	// The empty project still has nothing to serve: 404 no_snapshot.
	resp, err = http.Get(srv.URL + "/v1/projects/empty/estimates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty project post-restart status %d", resp.StatusCode)
	}
}
