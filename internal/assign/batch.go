package assign

import (
	"math"

	"tcrowd/internal/core"
	"tcrowd/internal/tabular"
)

// Exact batch selection (Sec. 5.3). The greedy top-K used by the policies
// treats cells independently; the exact objective IG(D) of Eq. 9 couples
// cells of the same *column pair* only through the worker's quality, but
// cells sharing a posterior (the same cell twice) are excluded by
// construction, so the residual coupling is the budget constraint itself.
// ExactBatch searches all size-K subsets and exists (a) as ground truth for
// tests that bound the greedy approximation error, and (b) for callers with
// tiny task pools where exhaustive search is affordable.

// ExactBatch returns the size-k subset of cands maximising the summed
// information gain for worker u, by exhaustive search. The search space is
// C(len(cands), k); callers must keep len(cands) small (say <= 25).
func ExactBatch(m *core.Model, u tabular.WorkerID, cands []tabular.Cell, k int) ([]tabular.Cell, float64) {
	if k <= 0 || len(cands) == 0 {
		return nil, 0
	}
	if k > len(cands) {
		k = len(cands)
	}
	gains := make([]float64, len(cands))
	for i, c := range cands {
		gains[i] = InfoGain(m, u, c)
	}

	bestGain := math.Inf(-1)
	var best []int
	subset := make([]int, k)
	var rec func(start, depth int, acc float64)
	rec = func(start, depth int, acc float64) {
		if depth == k {
			if acc > bestGain {
				bestGain = acc
				best = append(best[:0], subset...)
			}
			return
		}
		// Prune: even taking the largest remaining gains cannot win.
		remaining := k - depth
		if len(cands)-start < remaining {
			return
		}
		for i := start; i <= len(cands)-remaining; i++ {
			subset[depth] = i
			rec(i+1, depth+1, acc+gains[i])
		}
	}
	rec(0, 0, 0)

	out := make([]tabular.Cell, len(best))
	for i, idx := range best {
		out[i] = cands[idx]
	}
	return out, bestGain
}

// GreedyBatch returns the greedy top-K cells by information gain along with
// the summed gain, for comparison against ExactBatch.
func GreedyBatch(m *core.Model, u tabular.WorkerID, cands []tabular.Cell, k int) ([]tabular.Cell, float64) {
	if k <= 0 || len(cands) == 0 {
		return nil, 0
	}
	scores := make([]float64, len(cands))
	for i, c := range cands {
		scores[i] = InfoGain(m, u, c)
	}
	picked := topK(cands, scores, k)
	total := 0.0
	for _, c := range picked {
		total += InfoGain(m, u, c)
	}
	return picked, total
}
