package baselines

import (
	"math"
	"testing"

	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func testWorkload(seed int64) (*simulate.Dataset, *tabular.AnswerLog) {
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows: 40, Cols: 6, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 30, SpammerFrac: 0.1},
	})
	cr := simulate.NewCrowd(ds, seed+1)
	return ds, cr.FixedAssignment(5)
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("Table 7 line-up has 11 methods, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("bad or duplicate name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	if _, ok := ByName("CRH"); !ok {
		t.Fatal("ByName CRH")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom method")
	}
}

func TestAllMethodsProduceValidEstimates(t *testing.T) {
	ds, log := testWorkload(10)
	for _, m := range All() {
		est, err := m.Infer(ds.Table, log)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := 0; i < ds.Table.NumRows(); i++ {
			for j, col := range ds.Table.Schema.Columns {
				v := est[i][j]
				if v.IsNone() {
					continue
				}
				if err := v.CheckAgainst(col); err != nil {
					t.Fatalf("%s: cell (%d,%d): %v", m.Name(), i, j, err)
				}
			}
		}
	}
}

func TestDatatypeCoverage(t *testing.T) {
	ds, log := testWorkload(20)
	catOnly := []Method{MajorityVote{}, DawidSkene{}, GLAD{}, ZenCrowd{}, TCOnlyCate{}}
	contOnly := []Method{Median{}, GTM{}, TCOnlyCont{}}
	both := []Method{TCrowd{}, CRH{}, CATD{}}

	check := func(m Method, wantCat, wantCont bool) {
		est, err := m.Infer(ds.Table, log)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		rep := metrics.Evaluate(ds.Table, est, log)
		if wantCat != (rep.CatCells > 0) {
			t.Fatalf("%s: cat coverage=%d want %v", m.Name(), rep.CatCells, wantCat)
		}
		if wantCont != (rep.ContCells > 0) {
			t.Fatalf("%s: cont coverage=%d want %v", m.Name(), rep.ContCells, wantCont)
		}
	}
	for _, m := range catOnly {
		check(m, true, false)
	}
	for _, m := range contOnly {
		check(m, false, true)
	}
	for _, m := range both {
		check(m, true, true)
	}
}

func TestMajorityVoteExact(t *testing.T) {
	s := tabular.Schema{
		Key:     "id",
		Columns: []tabular.Column{{Name: "c", Type: tabular.Categorical, Labels: []string{"x", "y", "z"}}},
	}
	tbl := tabular.NewTable(s, 1)
	log := tabular.NewAnswerLog()
	log.Add(tabular.Answer{Worker: "a", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(1)})
	log.Add(tabular.Answer{Worker: "b", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(1)})
	log.Add(tabular.Answer{Worker: "c", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(2)})
	est, err := MajorityVote{}.Infer(tbl, log)
	if err != nil {
		t.Fatal(err)
	}
	if !est[0][0].Equal(tabular.LabelValue(1)) {
		t.Fatalf("MV got %v", est[0][0])
	}
}

func TestMedianExact(t *testing.T) {
	s := tabular.Schema{
		Key:     "id",
		Columns: []tabular.Column{{Name: "n", Type: tabular.Continuous, Min: 0, Max: 10}},
	}
	tbl := tabular.NewTable(s, 1)
	log := tabular.NewAnswerLog()
	for i, x := range []float64{1, 9, 5} {
		log.Add(tabular.Answer{Worker: tabular.WorkerID(rune('a' + i)), Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.NumberValue(x)})
	}
	est, err := Median{}.Infer(tbl, log)
	if err != nil {
		t.Fatal(err)
	}
	if !est[0][0].Equal(tabular.NumberValue(5)) {
		t.Fatalf("Median got %v", est[0][0])
	}
}

// TestWeightedMethodsBeatUnweighted verifies the core premise the paper's
// Table 7 relies on: worker-quality-aware methods outperform the
// equal-weight baselines on a crowd with spammers.
func TestWeightedMethodsBeatUnweighted(t *testing.T) {
	ds, log := testWorkload(30)
	mv, _ := MajorityVote{}.Infer(ds.Table, log)
	med, _ := Median{}.Infer(ds.Table, log)
	mvRep := metrics.Evaluate(ds.Table, mv, log)
	medRep := metrics.Evaluate(ds.Table, med, log)

	// D&S is deliberately absent: Table 7 itself reports it below Majority
	// Voting (confusion matrices overfit sparse per-column data).
	for _, m := range []Method{ZenCrowd{}, TCrowd{}} {
		est, err := m.Infer(ds.Table, log)
		if err != nil {
			t.Fatal(err)
		}
		rep := metrics.Evaluate(ds.Table, est, log)
		if rep.ErrorRate > mvRep.ErrorRate+0.02 {
			t.Fatalf("%s error rate %.4f clearly worse than MV %.4f", m.Name(), rep.ErrorRate, mvRep.ErrorRate)
		}
	}
	for _, m := range []Method{GTM{}, TCrowd{}} {
		est, err := m.Infer(ds.Table, log)
		if err != nil {
			t.Fatal(err)
		}
		rep := metrics.Evaluate(ds.Table, est, log)
		if rep.MNAD > medRep.MNAD+0.02 {
			t.Fatalf("%s MNAD %.4f clearly worse than Median %.4f", m.Name(), rep.MNAD, medRep.MNAD)
		}
	}
}

func TestTCrowdWinsTable7Ordering(t *testing.T) {
	// The headline claim: unified T-Crowd is at least as good as every
	// baseline on both metrics (up to small simulation tolerance).
	ds, log := testWorkload(40)
	tc, err := TCrowd{}.Infer(ds.Table, log)
	if err != nil {
		t.Fatal(err)
	}
	tcRep := metrics.Evaluate(ds.Table, tc, log)
	for _, m := range All() {
		if m.Name() == "T-Crowd" {
			continue
		}
		est, err := m.Infer(ds.Table, log)
		if err != nil {
			t.Fatal(err)
		}
		rep := metrics.Evaluate(ds.Table, est, log)
		if !math.IsNaN(rep.ErrorRate) && tcRep.ErrorRate > rep.ErrorRate+0.03 {
			t.Fatalf("T-Crowd error rate %.4f clearly worse than %s %.4f", tcRep.ErrorRate, m.Name(), rep.ErrorRate)
		}
		if !math.IsNaN(rep.MNAD) && tcRep.MNAD > rep.MNAD+0.05 {
			t.Fatalf("T-Crowd MNAD %.4f clearly worse than %s %.4f", tcRep.MNAD, m.Name(), rep.MNAD)
		}
	}
}

func TestMethodsHandleEmptyLog(t *testing.T) {
	ds, _ := testWorkload(50)
	empty := tabular.NewAnswerLog()
	for _, m := range All() {
		est, err := m.Infer(ds.Table, empty)
		if err != nil {
			t.Fatalf("%s on empty log: %v", m.Name(), err)
		}
		for i := range est {
			for j := range est[i] {
				if !est[i][j].IsNone() {
					t.Fatalf("%s invented an estimate from no answers", m.Name())
				}
			}
		}
	}
}

func TestMethodsHandleSingleTypeTables(t *testing.T) {
	catOnly := simulate.Generate(stats.NewRNG(60), simulate.TableConfig{Rows: 10, Cols: 4, CatRatio: 1})
	contOnly := simulate.Generate(stats.NewRNG(61), simulate.TableConfig{Rows: 10, Cols: 4, CatRatio: 0})
	for _, ds := range []*simulate.Dataset{catOnly, contOnly} {
		log := simulate.NewCrowd(ds, 62).FixedAssignment(3)
		for _, m := range All() {
			if _, err := m.Infer(ds.Table, log); err != nil {
				t.Fatalf("%s on %s: %v", m.Name(), ds.Name, err)
			}
		}
	}
}

func TestCATDDiscountsSparseWorkers(t *testing.T) {
	// A worker with one answer must get a weight bounded by the chi-square
	// quantile, not an effectively infinite weight from a near-zero loss.
	s := tabular.Schema{
		Key:     "id",
		Columns: []tabular.Column{{Name: "n", Type: tabular.Continuous, Min: 0, Max: 100}},
	}
	tbl := tabular.NewTable(s, 3)
	log := tabular.NewAnswerLog()
	// Three dense workers roughly agree; one sparse worker gives one wild
	// answer on row 2.
	for i := 0; i < 3; i++ {
		log.Add(tabular.Answer{Worker: "a", Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.NumberValue(50 + float64(i))})
		log.Add(tabular.Answer{Worker: "b", Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.NumberValue(51 + float64(i))})
		log.Add(tabular.Answer{Worker: "c", Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.NumberValue(49 + float64(i))})
	}
	log.Add(tabular.Answer{Worker: "sparse", Cell: tabular.Cell{Row: 2, Col: 0}, Value: tabular.NumberValue(95)})
	est, err := CATD{}.Infer(tbl, log)
	if err != nil {
		t.Fatal(err)
	}
	// The consensus near 51-53 must not be dragged to the outlier.
	got := est[2][0].X
	if math.Abs(got-52) > 6 {
		t.Fatalf("CATD estimate %v dragged toward outlier 95", got)
	}
}

func TestGLADHandlesUniformDisagreement(t *testing.T) {
	// All three workers disagree; GLAD must still return a valid label.
	s := tabular.Schema{
		Key:     "id",
		Columns: []tabular.Column{{Name: "c", Type: tabular.Categorical, Labels: []string{"x", "y", "z"}}},
	}
	tbl := tabular.NewTable(s, 1)
	log := tabular.NewAnswerLog()
	for i := 0; i < 3; i++ {
		log.Add(tabular.Answer{Worker: tabular.WorkerID(rune('a' + i)), Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(i)})
	}
	est, err := GLAD{}.Infer(tbl, log)
	if err != nil {
		t.Fatal(err)
	}
	if est[0][0].IsNone() {
		t.Fatal("GLAD produced no estimate")
	}
}
