package platform

import (
	"sync"

	"tcrowd/api"
)

// watchBuffer bounds each watcher's pending-event buffer. A consumer that
// falls further behind than this gets intermediate generation bumps
// dropped and the newest event redelivered with Coalesced set — publishers
// never block on a slow watcher, and per-watcher memory is O(watchBuffer).
const watchBuffer = 16

// Watcher is one subscription to a project's snapshot publications,
// created by Platform.Watch.
type Watcher struct {
	ch  chan api.WatchEvent
	hub *watchHub
}

// Events returns the subscription channel: one api.WatchEvent per
// published generation. Buffers are bounded, so a consumer that lags more
// than watchBuffer events behind has intermediate bumps dropped — it
// observes that as a GAP in the strictly increasing Generation sequence
// (the HTTP layer translates such gaps into the wire-level Coalesced
// flag). The channel closes on Watcher.Close and on platform shutdown.
func (w *Watcher) Events() <-chan api.WatchEvent { return w.ch }

// Close unsubscribes and closes the event channel. Safe to call once;
// idempotent against a concurrent platform shutdown.
func (w *Watcher) Close() { w.hub.unsubscribe(w) }

// watchHub fans one project's publish events out to its watchers. The
// publisher side runs on the project's shard worker (publishSnapshot);
// subscribe/unsubscribe run on request goroutines.
type watchHub struct {
	mu     sync.Mutex
	subs   map[*Watcher]struct{}
	closed bool
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[*Watcher]struct{})}
}

func (h *watchHub) subscribe() *Watcher {
	w := &Watcher{ch: make(chan api.WatchEvent, watchBuffer), hub: h}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(w.ch)
		return w
	}
	h.subs[w] = struct{}{}
	return w
}

func (h *watchHub) unsubscribe(w *Watcher) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[w]; !ok {
		return // already removed (double Close, or hub close won the race)
	}
	delete(h.subs, w)
	close(w.ch)
}

// publish delivers ev to every watcher without ever blocking: a full
// buffer drops its oldest pending event to make room for the newest.
// Generations are strictly increasing, so a consumer (or the HTTP layer
// on its behalf) detects the drop exactly as a gap — the next event's
// Generation exceeds the previous delivery's by more than one. The flag
// is NOT set here: only the receiver knows which delivery follows its
// gap.
func (h *watchHub) publish(ev api.WatchEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for w := range h.subs {
		select {
		case w.ch <- ev:
			continue
		default:
		}
		// Slow watcher: drop the oldest pending bump. The receiver may
		// drain between these selects; losing that race just means the
		// send succeeds.
		select {
		case <-w.ch:
		default:
		}
		select {
		case w.ch <- ev:
		default:
		}
	}
}

// close ends every subscription; later subscribes get an already-closed
// channel. Called by Platform.Close after the shard drain, so all
// published generations precede the channel close.
func (h *watchHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for w := range h.subs {
		delete(h.subs, w)
		close(w.ch)
	}
}
