// Package tcrowd is a Go implementation of T-Crowd ("T-Crowd: Effective
// Crowdsourcing for Tabular Data", Shan et al., ICDE 2018): truth
// inference and online task assignment for crowdsourced tables whose
// columns mix categorical and continuous attributes.
//
// The package unifies worker quality across datatypes with a single
// per-worker parameter (one inherent variance phi_u, scaled by per-row and
// per-column task difficulty), infers cell truths and worker qualities
// jointly by EM, and assigns tasks to incoming workers by structure-aware
// information gain that exploits correlations between a worker's errors on
// attributes of the same entity.
//
// # Quick start
//
// Define a schema, log answers, infer (see ExampleInfer for a runnable
// version of exactly this flow):
//
//	schema := tcrowd.Schema{
//	    Key: "Picture",
//	    Columns: []tcrowd.Column{
//	        {Name: "Nationality", Type: tcrowd.Categorical, Labels: []string{"US", "CN", "GB"}},
//	        {Name: "Age", Type: tcrowd.Continuous, Min: 0, Max: 120},
//	    },
//	}
//	table := tcrowd.NewTable(schema, 3)
//	log := tcrowd.NewAnswerLog()
//	log.Add(tcrowd.Answer{Worker: "w1", Cell: tcrowd.Cell{Row: 0, Col: 0}, Value: tcrowd.LabelValue(1)})
//	// ... more answers ...
//	res, err := tcrowd.Infer(table, log, tcrowd.InferOptions{})
//
// res.Estimates holds one estimated Value per cell and res.WorkerQuality
// the unified per-worker quality in (0, 1].
//
// # What lives where
//
// This root package is a façade re-exporting the stable surface of the
// internal packages:
//
//   - Data model (Schema, Table, AnswerLog, Value, ...): internal/tabular.
//   - Truth inference (Infer, InferOptions): the EM engine of the paper's
//     Sec. 4, internal/core. Streaming ingestion and warm refreshes are
//     engine features used by the serving layers; library callers just
//     call Infer per log state.
//   - Task assignment (Assigner, sim helpers in sim.go/assigner.go): the
//     Sec. 5 information-gain policies, internal/assign.
//
// Beyond the library there are three binaries: cmd/tcrowd-infer (offline
// inference over a JSON answer log), cmd/tcrowd-server (the AMT-like
// crowdsourcing platform over HTTP, serving many projects through a
// sharded inference scheduler — see cmd/tcrowd-server/README.md) and
// cmd/tcrowd-bench (the paper's evaluation harness plus the tracked
// hot-path micro-benchmarks).
//
// See README.md for a tour, ARCHITECTURE.md for the layer-by-layer design
// (EM engine internals, streaming refresh tiers, shard scheduler), and the
// examples directory for complete programs.
package tcrowd
