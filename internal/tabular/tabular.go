// Package tabular defines the data model of T-Crowd (Sec. 3 of the paper):
// a two-dimensional table C = {c_ij} with an entity (key) attribute, whose
// columns are either categorical or continuous; tasks are cells, and workers
// submit answers to cells.
package tabular

import (
	"errors"
	"fmt"
)

// ColumnType distinguishes the two datatypes the paper unifies.
type ColumnType int

const (
	// Categorical columns draw values from a finite unordered label set.
	Categorical ColumnType = iota
	// Continuous columns hold real-valued answers.
	Continuous
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column describes one attribute of the table.
type Column struct {
	// Name is the attribute name, unique within a schema.
	Name string
	// Type is the attribute datatype.
	Type ColumnType
	// Labels is the answer domain of a categorical column (|L_j| >= 2).
	// Unused for continuous columns.
	Labels []string
	// Min and Max bound the domain of a continuous column. They are
	// advisory (used by generators and input validation), not enforced on
	// ingest. Unused for categorical columns.
	Min, Max float64
}

// NumLabels returns |L_j| for categorical columns and 0 otherwise.
func (c Column) NumLabels() int {
	if c.Type != Categorical {
		return 0
	}
	return len(c.Labels)
}

// Validate reports whether the column definition is internally consistent.
func (c Column) Validate() error {
	if c.Name == "" {
		return errors.New("tabular: column with empty name")
	}
	switch c.Type {
	case Categorical:
		if len(c.Labels) < 2 {
			return fmt.Errorf("tabular: categorical column %q needs >= 2 labels, has %d", c.Name, len(c.Labels))
		}
		seen := make(map[string]bool, len(c.Labels))
		for _, l := range c.Labels {
			if seen[l] {
				return fmt.Errorf("tabular: column %q has duplicate label %q", c.Name, l)
			}
			seen[l] = true
		}
	case Continuous:
		if c.Max < c.Min {
			return fmt.Errorf("tabular: column %q has inverted domain [%v, %v]", c.Name, c.Min, c.Max)
		}
	default:
		return fmt.Errorf("tabular: column %q has unknown type %d", c.Name, int(c.Type))
	}
	return nil
}

// Schema is the structure a requester registers before publishing tasks
// (step 1 in Fig. 1 of the paper).
type Schema struct {
	// Key names the entity attribute (e.g. "Picture"). It is metadata: key
	// values identify rows and are not crowdsourced.
	Key string
	// Columns are the crowdsourced attributes, in order.
	Columns []Column
}

// Validate checks the schema.
func (s Schema) Validate() error {
	if s.Key == "" {
		return errors.New("tabular: schema needs a key attribute")
	}
	if len(s.Columns) == 0 {
		return errors.New("tabular: schema needs at least one column")
	}
	seen := make(map[string]bool, len(s.Columns)+1)
	seen[s.Key] = true
	for _, c := range s.Columns {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("tabular: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// NumColumns returns M.
func (s Schema) NumColumns() int { return len(s.Columns) }

// ColumnIndex returns the index of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for j, c := range s.Columns {
		if c.Name == name {
			return j
		}
	}
	return -1
}

// CategoricalRatio returns the fraction of categorical columns (the
// parameter R of the synthetic experiments, Sec. 6.5).
func (s Schema) CategoricalRatio() float64 {
	if len(s.Columns) == 0 {
		return 0
	}
	n := 0
	for _, c := range s.Columns {
		if c.Type == Categorical {
			n++
		}
	}
	return float64(n) / float64(len(s.Columns))
}

// Cell addresses one task c_ij: the value of entity (row) i on attribute
// (column) j.
type Cell struct {
	Row int
	Col int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("c[%d,%d]", c.Row, c.Col) }

// ValueKind tags the variant held by a Value.
type ValueKind int

const (
	// None marks an absent value (cell not yet answered / no truth).
	None ValueKind = iota
	// Label marks a categorical value (index into Column.Labels).
	Label
	// Number marks a continuous value.
	Number
)

// Value is a tagged union holding either a categorical label index or a
// continuous number. The zero Value is None.
type Value struct {
	Kind ValueKind
	// L is the label index for Kind == Label.
	L int
	// X is the number for Kind == Number.
	X float64
}

// LabelValue returns a categorical Value.
func LabelValue(idx int) Value { return Value{Kind: Label, L: idx} }

// NumberValue returns a continuous Value.
func NumberValue(x float64) Value { return Value{Kind: Number, X: x} }

// IsNone reports whether the value is absent.
func (v Value) IsNone() bool { return v.Kind == None }

// Equal reports exact equality of kind and payload.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case Label:
		return v.L == o.L
	case Number:
		return v.X == o.X
	default:
		return true
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case Label:
		return fmt.Sprintf("label(%d)", v.L)
	case Number:
		return fmt.Sprintf("%g", v.X)
	default:
		return "none"
	}
}

// CheckAgainst validates a value against a column definition: labels must be
// in range, numbers must be used for continuous columns.
func (v Value) CheckAgainst(c Column) error {
	switch c.Type {
	case Categorical:
		if v.Kind != Label {
			return fmt.Errorf("tabular: column %q expects a label, got %s", c.Name, v)
		}
		if v.L < 0 || v.L >= len(c.Labels) {
			return fmt.Errorf("tabular: label %d out of range for column %q (|L|=%d)", v.L, c.Name, len(c.Labels))
		}
	case Continuous:
		if v.Kind != Number {
			return fmt.Errorf("tabular: column %q expects a number, got %s", c.Name, v)
		}
	}
	return nil
}

// Table couples a schema with its row count and (optionally) the ground
// truth used by simulations and evaluation. Truth is nil in production use,
// where the whole point is that T* is unknown.
type Table struct {
	Schema Schema
	// Entities holds the key value of each row (e.g. picture ids).
	Entities []string
	// Truth, when present, holds T*_ij (row-major: Truth[i][j]).
	Truth [][]Value
}

// NewTable builds a table with n auto-named entities and no truth.
func NewTable(s Schema, n int) *Table {
	ents := make([]string, n)
	for i := range ents {
		ents[i] = fmt.Sprintf("%s-%d", s.Key, i+1)
	}
	return &Table{Schema: s, Entities: ents}
}

// NumRows returns N.
func (t *Table) NumRows() int { return len(t.Entities) }

// NumCols returns M.
func (t *Table) NumCols() int { return t.Schema.NumColumns() }

// NumCells returns N*M, the number of tasks.
func (t *Table) NumCells() int { return t.NumRows() * t.NumCols() }

// Cells returns every cell address in row-major order.
func (t *Table) Cells() []Cell {
	out := make([]Cell, 0, t.NumCells())
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumCols(); j++ {
			out = append(out, Cell{Row: i, Col: j})
		}
	}
	return out
}

// HasTruth reports whether ground truth is attached.
func (t *Table) HasTruth() bool { return t.Truth != nil }

// TruthAt returns T*_ij; it panics when truth is absent, mirroring how
// evaluation code must never run without ground truth.
func (t *Table) TruthAt(c Cell) Value { return t.Truth[c.Row][c.Col] }

// Validate checks schema, entity count and, when present, every truth value
// against its column.
func (t *Table) Validate() error {
	if err := t.Schema.Validate(); err != nil {
		return err
	}
	if len(t.Entities) == 0 {
		return errors.New("tabular: table has no rows")
	}
	if t.Truth == nil {
		return nil
	}
	if len(t.Truth) != len(t.Entities) {
		return fmt.Errorf("tabular: truth has %d rows, table has %d", len(t.Truth), len(t.Entities))
	}
	for i, row := range t.Truth {
		if len(row) != t.NumCols() {
			return fmt.Errorf("tabular: truth row %d has %d cols, want %d", i, len(row), t.NumCols())
		}
		for j, v := range row {
			if v.IsNone() {
				continue
			}
			if err := v.CheckAgainst(t.Schema.Columns[j]); err != nil {
				return fmt.Errorf("tabular: truth[%d][%d]: %w", i, j, err)
			}
		}
	}
	return nil
}
