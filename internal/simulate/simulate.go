// Package simulate builds the crowdsourcing workloads of the paper's
// evaluation: synthetic tables with planted difficulties (Sec. 6.5),
// worker populations with long-tailed quality, answer synthesis following
// the generative model of Sec. 4 (Eqs. 1 and 3), statistical stand-ins for
// the three real datasets of Table 6, and the noise-injection protocol of
// Sec. 6.5.2.
//
// The real AMT answer sets (Celebrity, Restaurant, Emotion) are not
// redistributable, so the stand-ins replay their published statistics —
// table dimensions, datatype mix, answers per task — with worker behaviour
// drawn from the same model the paper assumes and validates (consistent
// per-worker quality across attributes, long-tail quality distribution,
// correlated within-row errors). See ARCHITECTURE.md for the substitution notes.
package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Worker is a simulated crowd worker with inherent answer variance Phi
// (the phi_u of the paper; smaller is better) and a proneness to "not
// recognising" an entire row, which induces the within-row error
// correlation that motivates structure-aware assignment (Sec. 5.2).
type Worker struct {
	ID tabular.WorkerID
	// Phi is the worker's inherent variance phi_u in standardized units.
	Phi float64
	// ConfusionProneness in [0,1] scales the probability that the worker
	// is confused by a given row (0 = never).
	ConfusionProneness float64
	// Persona is the worker's behavioural archetype (default Honest).
	// Adversarial personas ignore the generative model: their answers are
	// synthesised by behaviour, not drawn from Eq. 1/3.
	Persona Persona
	// TurnAfter is the answer count at which a Sleeper turns malicious.
	TurnAfter int
}

// Persona classifies a simulated worker's behaviour for the adversarial
// (spam-defense) scenarios. The zero value is Honest, so existing
// workloads are unchanged.
type Persona int

const (
	// Honest workers follow the paper's generative model (Eqs. 1 and 3).
	Honest Persona = iota
	// RandomJunk workers ignore the truth entirely: uniform random labels
	// and uniform random numbers over the column domain, submitted
	// implausibly fast.
	RandomJunk
	// FastDeceiver workers coordinate: every deceiver gives the SAME
	// deterministic wrong answer per cell (truth shifted by one label /
	// a fixed offset), so to the model they look like a consistent,
	// mutually-agreeing bloc — the attack that actually flips estimates
	// when their coverage is thick enough. They also answer fast.
	FastDeceiver
	// Sleeper workers behave honestly for their first TurnAfter answers,
	// then switch to FastDeceiver behaviour — the persona that defeats
	// any reputation scheme without recency weighting.
	Sleeper
)

// Quality returns the unified worker quality q_u = erf(eps/sqrt(2 phi_u))
// of Eq. 2.
func (w Worker) Quality(eps float64) float64 {
	return math.Erf(eps / math.Sqrt(2*w.Phi))
}

// PopulationConfig controls worker population synthesis.
type PopulationConfig struct {
	// N is the number of workers.
	N int
	// MedianPhi is the median inherent variance (default 0.15).
	MedianPhi float64
	// Sigma is the log-normal spread producing the long tail (default 0.8).
	Sigma float64
	// SpammerFrac is the fraction of near-random workers (default 0.05).
	SpammerFrac float64
	// SpammerPhi is the variance assigned to spammers (default 60).
	SpammerPhi float64
	// ConfusionProneness is the mean row-confusion proneness (default 0.5).
	ConfusionProneness float64
	// JunkFrac/DeceiverFrac/SleeperFrac assign adversarial personas to
	// disjoint fractions of the population (defaults 0). Unlike
	// SpammerFrac's honest-but-hopeless workers, persona workers actively
	// misbehave; see Persona.
	JunkFrac, DeceiverFrac, SleeperFrac float64
	// SleeperTurnAfter is the per-sleeper answer count before turning
	// (default 30).
	SleeperTurnAfter int
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.N <= 0 {
		c.N = 50
	}
	if c.MedianPhi <= 0 {
		c.MedianPhi = 0.15
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.8
	}
	if c.SpammerFrac < 0 {
		c.SpammerFrac = 0
	}
	if c.SpammerPhi <= 0 {
		c.SpammerPhi = 60
	}
	if c.ConfusionProneness <= 0 {
		c.ConfusionProneness = 0.5
	}
	if c.SleeperTurnAfter <= 0 {
		c.SleeperTurnAfter = 30
	}
	return c
}

// NewPopulation draws a worker population with a long-tailed quality
// distribution (crowd answer quality is long-tailed — the observation CATD
// is built on, which our simulator must reproduce for fair comparison).
func NewPopulation(rng *rand.Rand, cfg PopulationConfig) []Worker {
	c := cfg.withDefaults()
	ws := make([]Worker, c.N)
	nSpam := int(math.Round(c.SpammerFrac * float64(c.N)))
	for i := range ws {
		phi := stats.SampleLongTail(rng, c.MedianPhi, c.Sigma, 0.005)
		if i < nSpam {
			phi = c.SpammerPhi
		}
		ws[i] = Worker{
			ID:                 tabular.WorkerID(fmt.Sprintf("w%03d", i+1)),
			Phi:                phi,
			ConfusionProneness: stats.Clamp(c.ConfusionProneness+0.3*rng.NormFloat64(), 0, 1),
		}
	}
	// Adversarial personas claim disjoint segments after the statistical
	// spammers; the shuffle below mixes everyone into arrival order.
	at := nSpam
	assign := func(frac float64, p Persona) {
		n := int(math.Round(frac * float64(c.N)))
		for i := 0; i < n && at < len(ws); i++ {
			ws[at].Persona = p
			if p == Sleeper {
				ws[at].TurnAfter = c.SleeperTurnAfter
			}
			at++
		}
	}
	assign(c.JunkFrac, RandomJunk)
	assign(c.DeceiverFrac, FastDeceiver)
	assign(c.SleeperFrac, Sleeper)
	// Spammers should not cluster at the head of arrival order.
	rng.Shuffle(len(ws), func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	return ws
}

// Dataset bundles a table (with planted ground truth), its planted
// difficulties, the worker population and the generative-model constants.
// It is everything needed to synthesise answers and to score methods
// against the truth afterwards.
type Dataset struct {
	Name  string
	Table *tabular.Table
	// Alpha[i] is the planted difficulty of row i; Beta[j] of column j
	// (Sec. 4.2: answer variance for cell ij is Alpha[i]*Beta[j]*Phi_u).
	Alpha []float64
	Beta  []float64
	// Workers is the population, in arrival order.
	Workers []Worker
	// Eps is the quality window of Eq. 2 in standardized units.
	Eps float64
	// ContScale[j] converts standardized noise to column j's natural units
	// (0 for categorical columns).
	ContScale []float64
	// AnswersPerTask is the dataset's nominal answer multiplicity
	// (Table 6), used by fixed-assignment replay.
	AnswersPerTask int
	// RowConfusionBase scales the probability that a worker is confused by
	// a row: p = clamp(base * proneness * alpha_i, 0, 0.6).
	RowConfusionBase float64
	// ConfusionFactor multiplies a confused worker's variance.
	ConfusionFactor float64
	// RowBiasStd is the std (standardized units) of a per-(worker,row)
	// offset shared by all continuous answers the worker gives in that
	// row. It models directional misreadings — e.g. locating a review
	// span too far right shifts start AND end the same way — and produces
	// the signed error correlation of Fig. 6 (right). Confusion scales
	// the bias along with the variance.
	RowBiasStd float64
}

// WorkerByID returns the worker with the given id, or nil.
func (d *Dataset) WorkerByID(id tabular.WorkerID) *Worker {
	for i := range d.Workers {
		if d.Workers[i].ID == id {
			return &d.Workers[i]
		}
	}
	return nil
}

// MeanDifficulty returns the average of Alpha[i]*Beta[j] over all cells
// (the mu_{alpha beta} knob of Sec. 6.5).
func (d *Dataset) MeanDifficulty() float64 {
	if len(d.Alpha) == 0 || len(d.Beta) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range d.Alpha {
		for _, b := range d.Beta {
			s += a * b
		}
	}
	return s / float64(len(d.Alpha)*len(d.Beta))
}
