package stats

import (
	"math"
	"testing"
)

func almostEqual(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: got %v want %v", msg, got, want)
	}
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		almostEqual(t, Mean(tt.xs), tt.want, 1e-12, "Mean")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almostEqual(t, Variance(xs), 4, 1e-12, "Variance") // classic textbook sample
	almostEqual(t, SampleVariance(xs), 32.0/7.0, 1e-12, "SampleVariance")
	almostEqual(t, StdDev(xs), 2, 1e-12, "StdDev")
	if Variance(nil) != 0 || SampleVariance([]float64{1}) != 0 {
		t.Fatal("degenerate variance should be 0")
	}
}

func TestMeanVarianceWelford(t *testing.T) {
	xs := []float64{1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}
	m, v := MeanVariance(xs)
	almostEqual(t, m, 1e9+10, 1e-3, "Welford mean")
	almostEqual(t, v, 22.5, 1e-6, "Welford variance") // population variance
}

func TestMedian(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5}, 5},
	}
	for _, tt := range tests {
		orig := append([]float64(nil), tt.xs...)
		almostEqual(t, Median(tt.xs), tt.want, 1e-12, "Median")
		for i := range orig {
			if orig[i] != tt.xs[i] {
				t.Fatal("Median must not mutate its input")
			}
		}
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be 0,0")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	almostEqual(t, Pearson(xs, ys), 1, 1e-12, "perfect positive")
	neg := []float64{10, 8, 6, 4, 2}
	almostEqual(t, Pearson(xs, neg), -1, 1e-12, "perfect negative")
	flat := []float64{3, 3, 3, 3, 3}
	almostEqual(t, Pearson(xs, flat), 0, 1e-12, "zero variance")
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 3, 2, 4}
	// Hand-computed population covariance.
	almostEqual(t, Covariance(xs, ys), 1.0, 1e-12, "Covariance")
	if Covariance(xs, []float64{1}) != 0 {
		t.Fatal("mismatched lengths should return 0")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	a, b, r := LinearFit(xs, ys)
	almostEqual(t, a, 3, 1e-12, "intercept")
	almostEqual(t, b, 2, 1e-12, "slope")
	almostEqual(t, r, 1, 1e-12, "r")

	// Degenerate x: fall back to intercept = mean(y).
	a, b, r = LinearFit([]float64{2, 2}, []float64{1, 3})
	almostEqual(t, a, 2, 1e-12, "degenerate intercept")
	almostEqual(t, b, 0, 1e-12, "degenerate slope")
	almostEqual(t, r, 0, 1e-12, "degenerate r")
}

func TestStandardizeRoundTrip(t *testing.T) {
	z := Standardize(17, 10, 2)
	almostEqual(t, z, 3.5, 1e-12, "Standardize")
	almostEqual(t, Unstandardize(z, 10, 2), 17, 1e-12, "Unstandardize")
	if Standardize(5, 5, 0) != 0 {
		t.Fatal("zero std must standardize to 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestLogSumExp(t *testing.T) {
	almostEqual(t, LogSumExp([]float64{0, 0}), math.Ln2, 1e-12, "ln 2")
	// Huge magnitudes must not overflow.
	got := LogSumExp([]float64{-1000, -1000, -1000})
	almostEqual(t, got, -1000+math.Log(3), 1e-9, "stable lse")
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("empty LogSumExp should be -Inf")
	}
}

func TestNormalizeLogProbs(t *testing.T) {
	p := NormalizeLogProbs([]float64{math.Log(1), math.Log(3)})
	almostEqual(t, p[0], 0.25, 1e-12, "p0")
	almostEqual(t, p[1], 0.75, 1e-12, "p1")

	u := NormalizeLogProbs([]float64{math.Inf(-1), math.Inf(-1)})
	almostEqual(t, u[0], 0.5, 1e-12, "uniform fallback")
}

func TestSum(t *testing.T) {
	almostEqual(t, Sum([]float64{1, 2, 3}), 6, 1e-12, "Sum")
	almostEqual(t, Sum(nil), 0, 1e-12, "empty Sum")
}
