package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetFold enforces accumulation-order determinism in packages whose
// package comment carries the //tcrowd:deterministic directive.
//
// The EM inference is reproducible only because every float fold runs in
// canonical (CSR) order: the sufficient-statistics refresh is pinned
// bitwise batch-split invariant, and the reputation verdict fold is a
// pure left-fold over arrival order. Three construct classes silently
// break that:
//
//   - ranging over a map while accumulating floats or appending to a
//     slice (map iteration order is randomized per run);
//   - time.Now / time.Since / time.Until (wall-clock input into state);
//   - math/rand's package-level functions (globally, nondeterministically
//     seeded — per-instance *rand.Rand with an explicit seed is fine and
//     is not flagged).
var DetFold = &Analyzer{
	Name: "detfold",
	Doc:  "reports order- and clock-dependent constructs in //tcrowd:deterministic packages",
	Run:  runDetFold,
}

func runDetFold(pass *Pass) error {
	if !pass.hasPackageDirective("deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.SelectorExpr:
				checkClockAndRand(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags float accumulation and slice appends inside a
// range over a map.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !isCompoundArith(n) {
				return true
			}
			for _, lhs := range n.Lhs {
				if isFloat(pass.TypesInfo.TypeOf(lhs)) {
					pass.Reportf(n.Pos(), "float accumulation inside map range: iteration order is randomized, breaking the bitwise batch-split invariant")
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass.TypesInfo, n.Fun, "append") {
				pass.Reportf(n.Pos(), "append inside map range: element order is randomized, breaking replay determinism")
			}
		}
		return true
	})
}

func isCompoundArith(a *ast.AssignStmt) bool {
	switch a.Tok.String() {
	case "+=", "-=", "*=", "/=":
		return true
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if u, uok := t.Underlying().(*types.Basic); uok {
			b = u
		} else {
			return false
		}
	}
	return b.Info()&types.IsFloat != 0
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// checkClockAndRand flags wall-clock reads and globally seeded random
// draws.
func checkClockAndRand(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "time.%s in a deterministic package: wall-clock input makes replay nondeterministic (thread timestamps in as data)", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		// Constructors build explicitly seeded instances — fine. Every
		// other package-level function draws from the global source.
		if strings.HasPrefix(sel.Sel.Name, "New") {
			return
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			pass.Reportf(sel.Pos(), "%s.%s uses the globally seeded source: draw from an explicitly seeded *rand.Rand instead", pkgName.Imported().Name(), fn.Name())
		}
	}
}
