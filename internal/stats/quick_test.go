package stats

// Property-based tests (testing/quick) on the numeric substrate. These pin
// down invariants the rest of the system silently relies on.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var quickCfg = &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}

// boundedFloat maps an arbitrary float into (lo, hi) deterministically.
func boundedFloat(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		x = 0.5
	}
	frac := math.Abs(x) - math.Floor(math.Abs(x))
	return lo + frac*(hi-lo)
}

func TestQuickLogSumExpInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		max := math.Inf(-1)
		for i, r := range raw {
			xs[i] = boundedFloat(r, -50, 50)
			if xs[i] > max {
				max = xs[i]
			}
		}
		lse := LogSumExp(xs)
		// max <= lse <= max + ln(n)
		return lse >= max-1e-9 && lse <= max+math.Log(float64(len(xs)))+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeLogProbsSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = boundedFloat(r, -100, 10)
		}
		ps := NormalizeLogProbs(xs)
		s := 0.0
		for _, p := range ps {
			if p < 0 || p > 1+1e-12 {
				return false
			}
			s += p
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShannonEntropyBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		ps := make([]float64, len(raw))
		for i, r := range raw {
			ps[i] = boundedFloat(r, 0.001, 1)
		}
		c := Categorical{P: ps}.Normalize()
		h := c.Entropy()
		return h >= -1e-12 && h <= math.Log(float64(len(ps)))+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPearsonRange(t *testing.T) {
	f := func(rawX, rawY []float64) bool {
		n := len(rawX)
		if len(rawY) < n {
			n = len(rawY)
		}
		if n < 2 {
			return true
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = boundedFloat(rawX[i], -100, 100)
			ys[i] = boundedFloat(rawY[i], -100, 100)
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = boundedFloat(r, -1e6, 1e6)
		}
		return Variance(xs) >= 0 && SampleVariance(xs) >= 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMedianBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = boundedFloat(r, -1e3, 1e3)
		}
		lo, hi := MinMax(xs)
		m := Median(xs)
		return m >= lo-1e-12 && m <= hi+1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGammaIncMonotoneInX(t *testing.T) {
	f := func(rawA, rawX1, rawX2 float64) bool {
		a := boundedFloat(rawA, 0.1, 20)
		x1 := boundedFloat(rawX1, 0, 40)
		x2 := boundedFloat(rawX2, 0, 40)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1 := GammaIncLower(a, x1)
		p2 := GammaIncLower(a, x2)
		if p1 < -1e-12 || p2 > 1+1e-12 {
			return false
		}
		return p1 <= p2+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChiSquareQuantileMonotone(t *testing.T) {
	f := func(rawK, rawP1, rawP2 float64) bool {
		k := boundedFloat(rawK, 0.5, 60)
		p1 := boundedFloat(rawP1, 0.01, 0.99)
		p2 := boundedFloat(rawP2, 0.01, 0.99)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return ChiSquareQuantile(p1, k) <= ChiSquareQuantile(p2, k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalCDFMonotone(t *testing.T) {
	f := func(rawMu, rawVar, rawX1, rawX2 float64) bool {
		n := Normal{
			Mu:  boundedFloat(rawMu, -10, 10),
			Var: boundedFloat(rawVar, 0.01, 100),
		}
		x1 := boundedFloat(rawX1, -50, 50)
		x2 := boundedFloat(rawX2, -50, 50)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return n.CDF(x1) <= n.CDF(x2)+1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBivariateConditionalVarianceShrinks(t *testing.T) {
	// Conditioning can only reduce (or keep) variance for a bivariate normal.
	f := func(rawVX, rawVY, rawCov, rawX float64) bool {
		vx := boundedFloat(rawVX, 0.05, 10)
		vy := boundedFloat(rawVY, 0.05, 10)
		maxCov := math.Sqrt(vx*vy) * 0.999
		cov := boundedFloat(rawCov, -maxCov, maxCov)
		b := BivariateNormal{VarX: vx, VarY: vy, Cov: cov}
		c := b.ConditionalY(boundedFloat(rawX, -5, 5))
		return c.Var <= vy+1e-9 && c.Var > 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStandardizeRoundTrip(t *testing.T) {
	f := func(rawX, rawMu, rawStd float64) bool {
		x := boundedFloat(rawX, -1e4, 1e4)
		mu := boundedFloat(rawMu, -1e3, 1e3)
		std := boundedFloat(rawStd, 0.01, 1e3)
		back := Unstandardize(Standardize(x, mu, std), mu, std)
		return math.Abs(back-x) < 1e-6*math.Max(1, math.Abs(x))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
