package simulate

import (
	"fmt"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Statistical stand-ins for the three real-world datasets of Table 6.
//
//	Dataset     #Rows  #Columns  #Cells  #Ans. per task
//	Celebrity   174    7         1218    5
//	Restaurant  203    5         1015    4
//	Emotion     100    7         700     10
//
// The original AMT answer logs are not redistributable; each builder below
// reproduces the published shape (dimensions, datatype mix, multiplicity)
// and plants ground truth from the same domains, so every code path the
// real data exercised — mixed datatypes, sparse worker overlap, long-tail
// quality, within-row error correlation — is exercised here too.

// Celebrity builds the Celebrity stand-in: 174 pictures, categorical
// name/nationality/ethnicity and continuous age/height/notability/facial.
func Celebrity(seed int64) *Dataset {
	rng := stats.NewRNG(seed)
	names := makeLabels("name", 180)
	nationalities := []string{
		"United States", "China", "Great Britain", "Canada", "France",
		"Germany", "India", "Japan", "Australia", "Brazil", "Italy",
		"Spain", "South Korea", "Mexico", "Russia", "Sweden", "Ireland",
		"Nigeria", "Argentina", "Greece",
	}
	ethnicities := []string{
		"Caucasian", "East Asian", "South Asian", "Black", "Hispanic",
		"Middle Eastern", "Mixed", "Pacific Islander",
	}
	schema := tabular.Schema{
		Key: "Picture",
		Columns: []tabular.Column{
			{Name: "Name", Type: tabular.Categorical, Labels: names},
			{Name: "Nationality", Type: tabular.Categorical, Labels: nationalities},
			{Name: "Ethnicity", Type: tabular.Categorical, Labels: ethnicities},
			{Name: "Age", Type: tabular.Continuous, Min: 18, Max: 90},
			{Name: "Height", Type: tabular.Continuous, Min: 150, Max: 205},
			{Name: "Notability", Type: tabular.Continuous, Min: 0, Max: 10},
			{Name: "Facial", Type: tabular.Continuous, Min: 0, Max: 10},
		},
	}
	tbl := tabular.NewTable(schema, 174)
	tbl.Truth = make([][]tabular.Value, 174)
	for i := range tbl.Truth {
		tbl.Truth[i] = []tabular.Value{
			tabular.LabelValue(rng.Intn(len(names))),
			tabular.LabelValue(rng.Intn(len(nationalities))),
			tabular.LabelValue(rng.Intn(len(ethnicities))),
			tabular.NumberValue(stats.SampleTruncatedNormal(rng, 45, 15, 18, 90)),
			tabular.NumberValue(stats.SampleTruncatedNormal(rng, 175, 10, 150, 205)),
			tabular.NumberValue(rng.Float64() * 10),
			tabular.NumberValue(rng.Float64() * 10),
		}
	}
	ds := &Dataset{
		Name:  "Celebrity",
		Table: tbl,
		Alpha: plantDifficulties(rng, 174, 1, 0.3),
		Beta:  []float64{1.3, 1.0, 1.1, 0.9, 0.8, 1.2, 1.1},
		Workers: NewPopulation(rng, PopulationConfig{
			N: 60, MedianPhi: 0.15, Sigma: 0.8, SpammerFrac: 0.05,
		}),
		Eps:              0.5,
		ContScale:        []float64{0, 0, 0, 6, 4.5, 1.2, 1.2},
		AnswersPerTask:   5,
		RowConfusionBase: 0.10,
		ConfusionFactor:  25,
		RowBiasStd:       0.2,
	}
	return ds
}

// Restaurant builds the Restaurant stand-in: 203 reviews, categorical
// aspect/attribute/sentiment and continuous start/end target positions.
// Start and end positions share row difficulty, so their errors correlate —
// the effect Fig. 6 (right) demonstrates.
func Restaurant(seed int64) *Dataset {
	rng := stats.NewRNG(seed)
	aspects := []string{"food", "service", "ambience", "price", "location", "general"}
	attributes := []string{"quality", "style", "price", "portion", "cleanliness"}
	sentiments := []string{"positive", "negative", "neutral"}
	schema := tabular.Schema{
		Key: "Review",
		Columns: []tabular.Column{
			{Name: "Aspect", Type: tabular.Categorical, Labels: aspects},
			{Name: "Attribute", Type: tabular.Categorical, Labels: attributes},
			{Name: "Sentiment", Type: tabular.Categorical, Labels: sentiments},
			{Name: "StartTarget", Type: tabular.Continuous, Min: 0, Max: 240},
			{Name: "EndTarget", Type: tabular.Continuous, Min: 0, Max: 260},
		},
	}
	tbl := tabular.NewTable(schema, 203)
	tbl.Truth = make([][]tabular.Value, 203)
	for i := range tbl.Truth {
		start := rng.Float64() * 220
		end := start + 5 + rng.Float64()*30
		tbl.Truth[i] = []tabular.Value{
			tabular.LabelValue(rng.Intn(len(aspects))),
			tabular.LabelValue(rng.Intn(len(attributes))),
			tabular.LabelValue(rng.Intn(len(sentiments))),
			tabular.NumberValue(start),
			tabular.NumberValue(end),
		}
	}
	return &Dataset{
		Name:  "Restaurant",
		Table: tbl,
		Alpha: plantDifficulties(rng, 203, 1, 0.35),
		Beta:  []float64{1.0, 1.2, 0.9, 1.1, 1.1},
		Workers: NewPopulation(rng, PopulationConfig{
			N: 50, MedianPhi: 0.22, Sigma: 0.9, SpammerFrac: 0.06,
		}),
		Eps:              0.5,
		ContScale:        []float64{0, 0, 0, 2.5, 2.5},
		AnswersPerTask:   4,
		RowConfusionBase: 0.12,
		ConfusionFactor:  20,
		// Strong shared bias: misreading the review span shifts start and
		// end together (Fig. 6 right).
		RowBiasStd: 0.45,
	}
}

// Emotion builds the Emotion stand-in (Snow et al.): 100 headlines scored
// on six emotions in [0,100] plus an overall valence in [-100,100]; all
// seven attributes are continuous and each task has 10 answers.
func Emotion(seed int64) *Dataset {
	rng := stats.NewRNG(seed)
	emotions := []string{"Anger", "Disgust", "Fear", "Joy", "Sadness", "Surprise"}
	cols := make([]tabular.Column, 0, 7)
	for _, e := range emotions {
		cols = append(cols, tabular.Column{Name: e, Type: tabular.Continuous, Min: 0, Max: 100})
	}
	cols = append(cols, tabular.Column{Name: "Valence", Type: tabular.Continuous, Min: -100, Max: 100})
	schema := tabular.Schema{Key: "Headline", Columns: cols}
	tbl := tabular.NewTable(schema, 100)
	tbl.Truth = make([][]tabular.Value, 100)
	for i := range tbl.Truth {
		row := make([]tabular.Value, 7)
		// Emotion scores are bursty: mostly low with an occasional dominant
		// emotion, like the SemEval-style ground truth.
		dominant := rng.Intn(6)
		for j := 0; j < 6; j++ {
			base := rng.Float64() * 25
			if j == dominant {
				base = 40 + rng.Float64()*60
			}
			row[j] = tabular.NumberValue(base)
		}
		row[6] = tabular.NumberValue(-100 + rng.Float64()*200)
		tbl.Truth[i] = row
	}
	return &Dataset{
		Name:  "Emotion",
		Table: tbl,
		Alpha: plantDifficulties(rng, 100, 1, 0.3),
		Beta:  []float64{1.1, 1.2, 1.0, 0.9, 1.0, 1.3, 1.1},
		Workers: NewPopulation(rng, PopulationConfig{
			N: 38, MedianPhi: 0.3, Sigma: 1.0, SpammerFrac: 0.08,
		}),
		Eps:              0.5,
		ContScale:        []float64{14, 14, 14, 14, 14, 14, 28},
		AnswersPerTask:   10,
		RowConfusionBase: 0.08,
		ConfusionFactor:  12,
		RowBiasStd:       0.25,
	}
}

// StandIn builds a stand-in by (case-sensitive) dataset name.
func StandIn(name string, seed int64) (*Dataset, error) {
	switch name {
	case "Celebrity":
		return Celebrity(seed), nil
	case "Restaurant":
		return Restaurant(seed), nil
	case "Emotion":
		return Emotion(seed), nil
	default:
		return nil, fmt.Errorf("simulate: unknown dataset %q (want Celebrity, Restaurant or Emotion)", name)
	}
}

// StandInNames lists the available stand-ins in the order Table 6 uses.
func StandInNames() []string { return []string{"Celebrity", "Restaurant", "Emotion"} }

func makeLabels(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%03d", prefix, i+1)
	}
	return out
}
