package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"tcrowd/api"
	"tcrowd/internal/shard"
	"tcrowd/internal/tabular"
)

// Server exposes the platform over HTTP — the interface a crowdsourcing
// frontend (or AMT external-HIT iframe) would talk to. See
// cmd/tcrowd-server/README.md for the full API reference and package api
// for the wire types.
//
// The versioned surface (stable within /v1):
//
//	POST /v1/projects                     {"id", "schema", "rows"}
//	GET  /v1/projects                     -> ["id", ...]
//	GET  /v1/projects/{id}/tasks?worker=u&count=k
//	POST /v1/projects/{id}/answers        one answer or {"answers": [...]} batch
//	GET  /v1/projects/{id}/estimates      consistent read; ?cursor=&limit= pagination
//	GET  /v1/projects/{id}/snapshot       last published estimates (never blocks on EM)
//	GET  /v1/projects/{id}/stats          collection progress
//	GET  /v1/stats                        shard-scheduler metrics
//
// The same paths without the /v1 prefix are deprecated aliases, kept for
// one release (the legacy POST .../answers keeps its historical
// single-answer + 429-on-backpressure semantics; everything else shares
// the v1 handlers).
//
// Errors are typed: every non-2xx body is an api.ErrorEnvelope with a
// stable machine-readable code (see internal/platform/errors.go for the
// exhaustive sentinel → (status, code, retryable) table). Backpressure:
// GET .../estimates answers 429 when the project's shard is saturated;
// POST /v1/.../answers records the answers and reports a shed refresh
// in-body instead of failing.
type Server struct {
	p   *Platform
	mux *http.ServeMux
	// deprecated holds one Once per route for legacy-use logging.
	deprecated []sync.Once
}

// NewServer wraps a platform with HTTP handlers.
func NewServer(p *Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.registerRoutes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders any error as the typed envelope, resolving status, code
// and retryability through the exhaustive sentinel table (errors.go). A
// *BatchError renders as CodeBatchRejected with per-item detail.
func writeErr(w http.ResponseWriter, err error) {
	var be *BatchError
	if errors.As(err, &be) {
		writeBatchErr(w, be)
		return
	}
	spec := classifyErr(err)
	if spec.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, spec.status, api.ErrorEnvelope{Err: api.Error{
		Code:      spec.code,
		Message:   err.Error(),
		Retryable: spec.retryable,
	}})
}

// writeBatchErr renders an atomic batch rejection: 400, CodeBatchRejected,
// one item per offending answer (each with its own code).
func writeBatchErr(w http.ResponseWriter, be *BatchError) {
	items := make([]api.ItemError, len(be.Items))
	for i, it := range be.Items {
		items[i] = api.ItemError{
			Index:   it.Index,
			Code:    classifyErr(it.Err).code,
			Message: it.Err.Error(),
		}
	}
	writeJSON(w, http.StatusBadRequest, api.ErrorEnvelope{Err: api.Error{
		Code:    api.CodeBatchRejected,
		Message: fmt.Sprintf("%d invalid answer(s); nothing recorded", len(items)),
		Items:   items,
	}})
}

type createProjectReq struct {
	ID     string         `json:"id"`
	Schema tabular.Schema `json:"schema"`
	Rows   int            `json:"rows"`
	TCrowd bool           `json:"tcrowd_assignment"`
	// RefreshEvery bounds submissions between inference refreshes
	// (0 = default 25, 1 = refresh per answer).
	RefreshEvery int `json:"refresh_every"`
}

func (s *Server) createProject(w http.ResponseWriter, r *http.Request) {
	var req createProjectReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	if req.ID == "" {
		writeErr(w, errors.New("platform: project id required"))
		return
	}
	_, err := s.p.CreateProject(req.ID, req.Schema, ProjectConfig{
		Rows:                req.Rows,
		UseTCrowdAssignment: req.TCrowd,
		RefreshEvery:        req.RefreshEvery,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.CreateProjectResponse{ID: req.ID})
}

func (s *Server) listProjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.ProjectIDs())
}

func (s *Server) tasks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, errors.New("platform: worker query parameter required"))
		return
	}
	count, err := queryInt(r, "count", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	tasks, err := s.p.RequestTasks(id, tabular.WorkerID(worker), count)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tasks)
}

// queryInt parses an optional non-negative integer query parameter,
// rejecting trailing garbage ("5x") and negatives with a typed
// bad_request.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("platform: bad %s %q: %w", name, raw, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("platform: %s must be non-negative, got %d", name, n)
	}
	return n, nil
}

// resolveAnswer converts one wire answer (column by name, label by string)
// into a platform answer, using the project's precomputed label index.
// Only immutable project state (schema, label maps) is touched, so it runs
// without the platform lock.
func resolveAnswer(proj *Project, a api.Answer) (tabular.Answer, error) {
	j := proj.Table.Schema.ColumnIndex(a.Column)
	if j < 0 {
		return tabular.Answer{}, fmt.Errorf("platform: unknown column %q", a.Column)
	}
	if a.Row < 0 || a.Row >= proj.Table.NumRows() {
		return tabular.Answer{}, fmt.Errorf("platform: row %d outside project (%d rows)", a.Row, proj.Table.NumRows())
	}
	var v tabular.Value
	switch {
	case a.Label != nil && a.Number != nil:
		return tabular.Answer{}, errors.New("platform: answer sets both label and number")
	case a.Label != nil:
		idx, ok := proj.LabelIndex(j, *a.Label)
		if !ok {
			return tabular.Answer{}, fmt.Errorf("platform: unknown label %q", *a.Label)
		}
		v = tabular.LabelValue(idx)
	case a.Number != nil:
		v = tabular.NumberValue(*a.Number)
	default:
		return tabular.Answer{}, errors.New("platform: answer needs label or number")
	}
	return tabular.Answer{
		Worker: tabular.WorkerID(a.Worker),
		Cell:   tabular.Cell{Row: a.Row, Col: j},
		Value:  v,
	}, nil
}

// resolveBatch resolves a slice of wire answers, collecting per-item
// errors instead of stopping at the first (batch rejections report every
// offending row at once).
func resolveBatch(proj *Project, answers []api.Answer) ([]tabular.Answer, []BatchItemError) {
	resolved := make([]tabular.Answer, 0, len(answers))
	var bad []BatchItemError
	for i, a := range answers {
		ta, err := resolveAnswer(proj, a)
		if err != nil {
			bad = append(bad, BatchItemError{Index: i, Err: err})
			continue
		}
		resolved = append(resolved, ta)
	}
	return resolved, bad
}

// submitV1 handles POST /v1/projects/{id}/answers: one answer or an
// "answers" batch. Batches are atomic — validated in full (every failure
// reported, nothing recorded on any failure) and recorded with at most one
// coalesced refresh enqueue. Recorded answers are always acknowledged 201;
// shard backpressure surfaces as refresh:"deferred" plus a Retry-After
// hint, never as a per-answer 429 (that legacy behaviour lives only on the
// unversioned route).
func (s *Server) submitV1(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req api.SubmitAnswersRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	batch := req.Answers != nil
	if batch && (req.Worker != "" || req.Column != "" || req.Label != nil || req.Number != nil) {
		writeErr(w, errors.New("platform: set either the single-answer fields or \"answers\", not both"))
		return
	}
	answers := req.Answers
	if !batch {
		answers = []api.Answer{req.Answer}
	}
	if len(answers) == 0 {
		writeErr(w, errors.New("platform: empty answer batch"))
		return
	}
	resolved, bad := resolveBatch(proj, answers)
	if len(bad) == 0 {
		var res BatchResult
		res, err = s.p.SubmitBatch(id, resolved)
		if err == nil {
			if res.Refresh == RefreshDeferred {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, http.StatusCreated, api.SubmitAnswersResponse{
				Status:   "recorded",
				Recorded: res.Recorded,
				Refresh:  string(res.Refresh),
			})
			return
		}
	} else {
		err = &BatchError{Items: bad}
	}
	// Single-answer requests report the answer's own error (and code)
	// directly; batches report the composite batch_rejected envelope.
	var be *BatchError
	if !batch && errors.As(err, &be) {
		err = be.Items[0].Err
	}
	writeErr(w, err)
}

// submitLegacy handles the deprecated POST /projects/{id}/answers: single
// answers only, with the historical backpressure contract — 429/503 with a
// status:"recorded" body when the answer landed but its refresh was shed.
func (s *Server) submitLegacy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var a api.Answer
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if a.Label != nil && a.Number != nil {
		// Historical behaviour of this route: label takes precedence (the
		// old handler's switch checked label first). /v1 rejects this.
		a.Number = nil
	}
	ta, err := resolveAnswer(proj, a)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.p.SubmitBatch(id, []tabular.Answer{ta})
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			err = be.Items[0].Err
		}
		writeErr(w, err)
		return
	}
	if res.RefreshErr != nil {
		// On both backpressure (429) and shutdown (503) the answer WAS
		// recorded; only its estimate refresh was shed. The body keeps
		// the status:"recorded" marker so clients don't resubmit (that
		// would 409) — slow down before the NEXT submission instead.
		if errors.Is(res.RefreshErr, shard.ErrShardSaturated) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"status":  "recorded",
				"refresh": "deferred",
				"error":   res.RefreshErr.Error(),
			})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status":  "recorded",
			"refresh": "shutdown",
			"error":   res.RefreshErr.Error(),
		})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
}

// estimatesResp / estimateJSON are the wire shapes, defined in package api
// and aliased here for the server-side tests.
type (
	estimatesResp = api.EstimatesResponse
	estimateJSON  = api.Estimate
)

// renderEstimates converts an InferenceResult into the wire shape shared
// by the /estimates (consistent) and /snapshot (non-blocking) endpoints.
// cursor/limit select one page of the row-major cell walk: cursor is the
// cell ordinal to start from, limit caps the estimates returned (0 = all),
// and NextCursor is set when cells remain — so million-row tables stream
// page by page instead of serializing one giant body.
func renderEstimates(proj *Project, res *InferenceResult, answersNow, cursor, limit int) estimatesResp {
	resp := estimatesResp{
		WorkerQuality: make(map[string]float64, len(res.WorkerQuality)),
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		AnswersSeen:   res.AnswersSeen,
		Fresh:         res.AnswersSeen == answersNow,
	}
	for u, q := range res.WorkerQuality {
		resp.WorkerQuality[string(u)] = q
	}
	cols := proj.Table.Schema.Columns
	m := len(cols)
	total := proj.Table.NumRows() * m
	for ord := cursor; ord < total; ord++ {
		if limit > 0 && len(resp.Estimates) >= limit {
			resp.NextCursor = ord
			break
		}
		i, j := ord/m, ord%m
		v := res.Estimates[i][j]
		if v.IsNone() {
			continue
		}
		ej := estimateJSON{Entity: proj.Table.Entities[i], Column: cols[j].Name}
		if v.Kind == tabular.Label {
			lbl := cols[j].Labels[v.L]
			ej.Label = &lbl
		} else {
			x := v.X
			ej.Number = &x
		}
		resp.Estimates = append(resp.Estimates, ej)
	}
	return resp
}

// pageParams parses the shared ?cursor=&limit= pagination parameters.
func pageParams(r *http.Request) (cursor, limit int, err error) {
	if cursor, err = queryInt(r, "cursor", 0); err != nil {
		return 0, 0, err
	}
	if limit, err = queryInt(r, "limit", 0); err != nil {
		return 0, 0, err
	}
	return cursor, limit, nil
}

func (s *Server) estimates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	cursor, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.p.RunInference(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, _ := s.p.Stats(id)
	writeJSON(w, http.StatusOK, renderEstimates(proj, res, st.Answers, cursor, limit))
}

// snapshot serves the last published estimates without ever waiting on
// inference — the read path that stays fast no matter how backlogged the
// project's shard is. 404 until the first refresh publishes.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	cursor, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.p.Snapshot(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, _ := s.p.Stats(id)
	writeJSON(w, http.StatusOK, renderEstimates(proj, res, st.Answers, cursor, limit))
}

// shardStatsResp is the GET /v1/stats payload, defined in package api and
// aliased for the server-side tests.
type shardStatsResp = api.ShardStatsResponse

func (s *Server) shardStats(w http.ResponseWriter, r *http.Request) {
	ms := s.p.ShardMetrics()
	resp := shardStatsResp{Workers: s.p.NumShardWorkers(), Shards: make([]api.ShardMetrics, len(ms))}
	for i, m := range ms {
		resp.Shards[i] = api.ShardMetrics{
			Shard:     m.Shard,
			Depth:     m.Depth,
			Enqueued:  m.Enqueued,
			Coalesced: m.Coalesced,
			Rejected:  m.Rejected,
			Completed: m.Completed,
			Failed:    m.Failed,
			BusyNs:    m.BusyNs,
			LastJobNs: m.LastJobNs,
		}
		resp.Totals.Depth += m.Depth
		resp.Totals.Enqueued += m.Enqueued
		resp.Totals.Coalesced += m.Coalesced
		resp.Totals.Rejected += m.Rejected
		resp.Totals.Completed += m.Completed
		resp.Totals.Failed += m.Failed
		resp.Totals.BusyNs += m.BusyNs
	}
	if resp.Totals.Completed > 0 {
		resp.Totals.AvgJobMs = float64(resp.Totals.BusyNs) / float64(resp.Totals.Completed) / 1e6
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	st, err := s.p.Stats(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
