package tcrowd

import (
	"math"
	"testing"
)

func publicWorkload(t *testing.T) (*SimulatedCrowd, *AnswerLog) {
	t.Helper()
	sim := SyntheticDataset(SyntheticConfig{Rows: 30, Cols: 6, CatRatio: 0.5, Workers: 25}, 77)
	return sim, sim.Collect(4)
}

func TestPublicInfer(t *testing.T) {
	sim, log := publicWorkload(t)
	res, err := Infer(sim.Table(), log, InferOptions{TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 30 || len(res.Estimates[0]) != 6 {
		t.Fatal("estimate shape")
	}
	if len(res.WorkerQuality) == 0 || len(res.WorkerVariance) == 0 {
		t.Fatal("worker maps empty")
	}
	for u, q := range res.WorkerQuality {
		if q <= 0 || q >= 1 {
			t.Fatalf("quality %v for %s", q, u)
		}
		if res.WorkerVariance[u] <= 0 {
			t.Fatal("variance non-positive")
		}
	}
	if len(res.RowDifficulty) != 30 || len(res.ColumnDifficulty) != 6 {
		t.Fatal("difficulty arity")
	}
	if res.Iterations == 0 || len(res.Objective) != res.Iterations {
		t.Fatalf("iterations=%d objective=%d", res.Iterations, len(res.Objective))
	}

	er := ErrorRate(sim.Table(), res.Estimates, log)
	mn := MNAD(sim.Table(), res.Estimates, log)
	if math.IsNaN(er) || math.IsNaN(mn) {
		t.Fatal("metrics NaN")
	}
	if er > 0.5 {
		t.Fatalf("error rate %v implausibly high", er)
	}
	c := Cell{Row: 2, Col: 3}
	if !res.EstimateAt(c).Equal(res.Estimates[2][3]) {
		t.Fatal("EstimateAt")
	}
}

func TestPublicCorrelations(t *testing.T) {
	sim, log := publicWorkload(t)
	res, err := Infer(sim.Table(), log, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Correlations()
	n := sim.Table().NumCols()
	if len(w) != n {
		t.Fatal("correlation shape")
	}
	for j := 0; j < n; j++ {
		if w[j][j] != 1 {
			t.Fatal("diagonal must be 1")
		}
		for k := 0; k < n; k++ {
			if w[j][k] < -1-1e-9 || w[j][k] > 1+1e-9 {
				t.Fatalf("W[%d][%d]=%v", j, k, w[j][k])
			}
		}
	}
}

func TestPublicAssignerLoop(t *testing.T) {
	sim, log := publicWorkload(t)
	a := NewAssigner(sim.Table(), AssignOptions{Seed: 9})
	if _, err := a.Next("w", 3); err != ErrNotObserved {
		t.Fatal("Next before Observe must fail")
	}
	if err := a.Observe(log); err != nil {
		t.Fatal(err)
	}
	workers := sim.Workers()
	for round := 0; round < 3; round++ {
		for _, u := range workers[:5] {
			cells, err := a.Next(u, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range cells {
				ans, ok := sim.Answer(u, c)
				if !ok {
					t.Fatalf("simulator rejected %s %v", u, c)
				}
				log.Add(ans)
			}
		}
		if err := a.Observe(log); err != nil {
			t.Fatal(err)
		}
	}
	est := a.EstimatedTruth()
	if est == nil {
		t.Fatal("no estimates after observation")
	}
	if ig := a.InformationGain(workers[0], Cell{Row: 0, Col: 0}); ig < 0 {
		t.Fatalf("negative information gain %v", ig)
	}
}

func TestPublicAssignerPolicies(t *testing.T) {
	sim, log := publicWorkload(t)
	for _, p := range []AssignPolicy{PolicyStructureAware, PolicyInherent, PolicyEntropy, PolicyRandom, PolicyLooping} {
		a := NewAssigner(sim.Table(), AssignOptions{Policy: p, Seed: 10})
		if err := a.Observe(log); err != nil {
			t.Fatal(err)
		}
		cells, err := a.Next("new-worker", 2)
		if err != nil || len(cells) == 0 {
			t.Fatalf("policy %d: %v %v", p, cells, err)
		}
	}
}

func TestStandInDatasets(t *testing.T) {
	for _, name := range []string{"Celebrity", "Restaurant", "Emotion"} {
		sim, err := StandInDataset(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Table().NumRows() == 0 || sim.AnswersPerTask() == 0 {
			t.Fatalf("%s stand-in empty", name)
		}
		u := sim.Workers()[0]
		if q, ok := sim.TrueQuality(u); !ok || q <= 0 || q >= 1 {
			t.Fatalf("%s TrueQuality: %v %v", name, q, ok)
		}
		if _, ok := sim.TrueQuality("ghost"); ok {
			t.Fatal("phantom quality")
		}
		if _, ok := sim.Answer("ghost", Cell{}); ok {
			t.Fatal("phantom answer")
		}
		if _, ok := sim.Answer(u, Cell{Row: -1}); ok {
			t.Fatal("out-of-range answer")
		}
	}
	if _, err := StandInDataset("Nope", 1); err == nil {
		t.Fatal("unknown stand-in accepted")
	}
}

func TestInferFlagsRoundTrip(t *testing.T) {
	sim, log := publicWorkload(t)
	res, err := Infer(sim.Table(), log, InferOptions{FixDifficulty: true, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.RowDifficulty {
		if a != 1 {
			t.Fatal("FixDifficulty ignored")
		}
	}
	if res.Iterations > 5 {
		t.Fatal("MaxIter ignored")
	}
}
