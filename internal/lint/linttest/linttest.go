// Package linttest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest for the tcrowd lint suite:
// it loads a golden-file package from a testdata directory, runs one or
// more analyzers over it, and checks the reported diagnostics against
// "// want `regexp`" comments in the sources.
//
// Layout mirrors analysistest: testdata/src/<pkg>/ holds one package of
// ordinary Go files (stdlib imports only). A line that should be flagged
// carries a trailing comment:
//
//	p.count++ // want `guarded by`
//
// Every want must be matched by a diagnostic of the analyzer under test
// on that line, and every diagnostic must be matched by a want; waived
// diagnostics (covered by //lint:allow) are checked with "// waived
// `regexp`" wants instead, so waiver behaviour itself is golden-tested.
package linttest

import (
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tcrowd/internal/lint"
)

// wantRe matches one expectation comment: // want `re` or // waived `re`.
var wantRe = regexp.MustCompile("//\\s*(want|waived)\\s+`([^`]+)`")

type expectation struct {
	file   string
	line   int
	re     *regexp.Regexp
	waived bool
	hit    bool
}

// Run loads testdata/src/<pkgname> relative to dir, applies the
// analyzers, and reports any mismatch between diagnostics and the
// sources' want comments.
func Run(t *testing.T, dir, pkgname string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgdir := filepath.Join(dir, "testdata", "src", pkgname)
	pkg, err := loadDir(pkgdir, pkgname)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgdir, err)
	}
	res, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	expects := collectExpectations(t, pkgdir)
	for _, d := range res.Findings {
		matched := false
		for _, e := range expects {
			if e.hit || e.file != filepath.Base(d.Pos.Filename) || e.line != d.Pos.Line {
				continue
			}
			if e.waived != d.Waived || !e.re.MatchString(d.Message) {
				continue
			}
			e.hit = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected diagnostic (waived=%v): %s", d.Waived, d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			kind := "want"
			if e.waived {
				kind = "waived"
			}
			t.Errorf("%s:%d: no diagnostic matched // %s `%s`", e.file, e.line, kind, e.re)
		}
	}
}

// loadDir parses and type-checks one testdata package with the source
// importer (stdlib imports only).
func loadDir(dir, name string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	return lint.CheckDir(fset, importer.ForCompiler(fset, "source", nil), name, dir, files)
}

func collectExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[2], err)
				}
				out = append(out, &expectation{
					file:   e.Name(),
					line:   i + 1,
					re:     re,
					waived: m[1] == "waived",
				})
			}
		}
	}
	return out
}
