package stats

import (
	"math"
	"math/rand"
)

// Normal is a univariate normal distribution parameterised by mean and
// variance (the paper works in variances throughout, e.g. phi_u is the
// variance of worker u's answers).
type Normal struct {
	Mu  float64 // mean
	Var float64 // variance, must be > 0 for PDF/Sample
}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	return math.Exp(n.LogPDF(x))
}

// LogPDF returns the log-density at x.
func (n Normal) LogPDF(x float64) float64 {
	if n.Var <= 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	d := x - n.Mu
	return -0.5*math.Log(2*math.Pi*n.Var) - d*d/(2*n.Var)
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Var <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/math.Sqrt(2*n.Var))
}

// Quantile returns the p-quantile.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + math.Sqrt(n.Var)*NormalQuantile(p)
}

// Sample draws one value using rng.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + math.Sqrt(n.Var)*rng.NormFloat64()
}

// Entropy returns the differential entropy 0.5*ln(2*pi*e*Var) (Sec. 5.1 of
// the paper, H_d). It is -Inf for degenerate distributions.
func (n Normal) Entropy() float64 {
	if n.Var <= 0 {
		return math.Inf(-1)
	}
	return 0.5 * math.Log(2*math.Pi*math.E*n.Var)
}

// Mean returns the mean.
func (n Normal) Mean() float64 { return n.Mu }

// Std returns the standard deviation.
func (n Normal) Std() float64 { return math.Sqrt(n.Var) }

// FitNormal estimates a Normal by maximum likelihood (mean, population
// variance) from xs. The variance is floored at minVar to keep downstream
// densities finite on degenerate data.
func FitNormal(xs []float64, minVar float64) Normal {
	m, v := MeanVariance(xs)
	if v < minVar {
		v = minVar
	}
	return Normal{Mu: m, Var: v}
}

// Bernoulli is a {0,1} distribution with success probability P. The paper
// uses it for categorical error indicators (e = 1 means the answer was
// wrong).
type Bernoulli struct {
	P float64
}

// PMF returns the probability of x (x != 0 is treated as 1).
func (b Bernoulli) PMF(x int) float64 {
	if x != 0 {
		return b.P
	}
	return 1 - b.P
}

// Sample draws a value in {0,1}.
func (b Bernoulli) Sample(rng *rand.Rand) int {
	if rng.Float64() < b.P {
		return 1
	}
	return 0
}

// Entropy returns the Shannon entropy in nats.
func (b Bernoulli) Entropy() float64 {
	return ShannonEntropy([]float64{1 - b.P, b.P})
}

// Mean returns P.
func (b Bernoulli) Mean() float64 { return b.P }

// FitBernoulli estimates P as the fraction of non-zero entries, with
// add-one-half smoothing so downstream conditionals never hit exact 0 or 1.
func FitBernoulli(xs []float64) Bernoulli {
	if len(xs) == 0 {
		return Bernoulli{P: 0.5}
	}
	ones := 0.0
	for _, x := range xs {
		if x != 0 {
			ones++
		}
	}
	return Bernoulli{P: (ones + 0.5) / (float64(len(xs)) + 1)}
}

// Categorical is a distribution over {0, .., len(P)-1}.
type Categorical struct {
	P []float64
}

// NewCategoricalUniform returns the uniform distribution over k labels.
func NewCategoricalUniform(k int) Categorical {
	p := make([]float64, k)
	for i := range p {
		p[i] = 1 / float64(k)
	}
	return Categorical{P: p}
}

// Normalize scales P to sum to one (uniform if the sum is not positive).
func (c Categorical) Normalize() Categorical {
	s := Sum(c.P)
	if s <= 0 {
		return NewCategoricalUniform(len(c.P))
	}
	q := make([]float64, len(c.P))
	for i, p := range c.P {
		q[i] = p / s
	}
	return Categorical{P: q}
}

// Sample draws a label index.
func (c Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range c.P {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(c.P) - 1
}

// ArgMax returns the index of the most probable label (lowest index wins
// ties, keeping results deterministic).
func (c Categorical) ArgMax() int {
	best := 0
	for i := 1; i < len(c.P); i++ {
		if c.P[i] > c.P[best] {
			best = i
		}
	}
	return best
}

// Entropy returns the Shannon entropy in nats (H_s in Sec. 5.1).
func (c Categorical) Entropy() float64 { return ShannonEntropy(c.P) }

// ShannonEntropy returns -sum p*ln(p) over the probability vector ps,
// treating 0*ln(0) as 0. Values are not re-normalised.
func ShannonEntropy(ps []float64) float64 {
	h := 0.0
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// DifferentialEntropyNormal returns 0.5*ln(2*pi*e*variance).
func DifferentialEntropyNormal(variance float64) float64 {
	return Normal{Var: variance}.Entropy()
}

// BivariateNormal models a pair (X, Y) of jointly normal errors; the
// attribute correlation model (Table 5, case continuous-continuous) fits one
// per column pair and uses the conditional Y | X = x.
type BivariateNormal struct {
	MuX, MuY   float64
	VarX, VarY float64
	Cov        float64
}

// FitBivariateNormal estimates the joint by maximum likelihood from paired
// samples. Variances are floored at minVar.
func FitBivariateNormal(xs, ys []float64, minVar float64) BivariateNormal {
	mx, vx := MeanVariance(xs)
	my, vy := MeanVariance(ys)
	if vx < minVar {
		vx = minVar
	}
	if vy < minVar {
		vy = minVar
	}
	return BivariateNormal{MuX: mx, MuY: my, VarX: vx, VarY: vy, Cov: Covariance(xs, ys)}
}

// Rho returns the correlation coefficient, clamped to [-1, 1].
func (b BivariateNormal) Rho() float64 {
	d := math.Sqrt(b.VarX * b.VarY)
	if d == 0 {
		return 0
	}
	return Clamp(b.Cov/d, -1, 1)
}

// ConditionalY returns the distribution of Y given X = x:
// N(muY + rho*sY/sX*(x-muX), (1-rho^2)*VarY).
func (b BivariateNormal) ConditionalY(x float64) Normal {
	rho := b.Rho()
	var mu float64
	if b.VarX > 0 {
		mu = b.MuY + rho*math.Sqrt(b.VarY/b.VarX)*(x-b.MuX)
	} else {
		mu = b.MuY
	}
	v := (1 - rho*rho) * b.VarY
	if v <= 0 {
		v = 1e-12
	}
	return Normal{Mu: mu, Var: v}
}

// Sample draws a correlated pair.
func (b BivariateNormal) Sample(rng *rand.Rand) (x, y float64) {
	x = Normal{Mu: b.MuX, Var: b.VarX}.Sample(rng)
	return x, b.ConditionalY(x).Sample(rng)
}
