// Command tcrowd-infer runs T-Crowd truth inference over a collected
// answer log and prints the estimated table plus worker qualities.
//
// Usage:
//
//	tcrowd-infer -schema schema.json -answers answers.json
//	tcrowd-infer -schema schema.json -answers answers.csv -rows 174
//
// The schema file holds a JSON schema object ({"key": ..., "columns":
// [...]}); the answer log is either the JSON array or the CSV format
// produced by this repository (worker,row,column,value).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tcrowd/internal/core"
	"tcrowd/internal/tabular"
)

func main() {
	var (
		schemaPath  = flag.String("schema", "", "path to schema JSON (required)")
		answersPath = flag.String("answers", "", "path to answers JSON or CSV (required)")
		rows        = flag.Int("rows", 0, "number of rows (0 = infer from max answered row)")
		eps         = flag.Float64("eps", 0, "quality window eps (0 = default 0.5)")
		showQuality = flag.Bool("quality", true, "print per-worker quality")
	)
	flag.Parse()
	if *schemaPath == "" || *answersPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	schema, err := readSchema(*schemaPath)
	if err != nil {
		fatal(err)
	}
	log, err := readAnswers(*answersPath, schema)
	if err != nil {
		fatal(err)
	}
	if log.Len() == 0 {
		fatal(fmt.Errorf("no answers in %s", *answersPath))
	}

	n := *rows
	if n <= 0 {
		for _, a := range log.All() {
			if a.Cell.Row+1 > n {
				n = a.Cell.Row + 1
			}
		}
	}
	tbl := tabular.NewTable(schema, n)
	if err := log.Validate(tbl); err != nil {
		fatal(err)
	}

	m, err := core.Infer(tbl, log, core.Options{Eps: *eps})
	if err != nil {
		fatal(err)
	}
	est := m.Estimates()

	fmt.Printf("# %d answers from %d workers over %d cells; EM: %d iterations (converged=%v)\n",
		log.Len(), log.NumWorkers(), tbl.NumCells(), m.Iterations, m.Converged)

	// Estimated table as CSV.
	header := []string{schema.Key}
	for _, c := range schema.Columns {
		header = append(header, c.Name)
	}
	fmt.Println(strings.Join(header, ","))
	for i := 0; i < n; i++ {
		rec := []string{tbl.Entities[i]}
		for j, col := range schema.Columns {
			v := est[i][j]
			switch {
			case v.IsNone():
				rec = append(rec, "")
			case v.Kind == tabular.Label:
				rec = append(rec, col.Labels[v.L])
			default:
				rec = append(rec, fmt.Sprintf("%g", v.X))
			}
		}
		fmt.Println(strings.Join(rec, ","))
	}

	if *showQuality {
		fmt.Println("\n# worker quality (q_u, higher is better)")
		type wq struct {
			u tabular.WorkerID
			q float64
		}
		var ws []wq
		for _, u := range m.WorkerIDs {
			ws = append(ws, wq{u, m.WorkerQuality(u)})
		}
		sort.Slice(ws, func(a, b int) bool { return ws[a].q > ws[b].q })
		for _, w := range ws {
			fmt.Printf("%s,%.4f\n", w.u, w.q)
		}
	}
}

func readSchema(path string) (tabular.Schema, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return tabular.Schema{}, err
	}
	var s tabular.Schema
	if err := json.Unmarshal(b, &s); err != nil {
		return tabular.Schema{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return s, s.Validate()
}

func readAnswers(path string, s tabular.Schema) (*tabular.AnswerLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return tabular.ReadAnswersCSV(f, s)
	}
	return tabular.DecodeAnswers(f, s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcrowd-infer: %v\n", err)
	os.Exit(1)
}
