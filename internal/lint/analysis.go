package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to the
// official framework if the dependency ever lands; Run reports findings
// through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position. Waived is set
// by the runner when a //lint:allow comment covers the finding; waived
// findings don't fail the build but are surfaced in the report.
type Diagnostic struct {
	Analyzer    string
	Pos         token.Position
	Message     string
	Waived      bool
	WaiveReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full tcrowd-lint suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, DetFold, NoAlloc, ErrTable}
}

// ---- directives ----

// Directive is one machine-readable "//tcrowd:NAME args..." comment.
type Directive struct {
	Name string
	Args []string
	Pos  token.Pos
}

const directivePrefix = "//tcrowd:"

// parseDirectives extracts //tcrowd: directives from comment groups (nil
// groups are fine). The directive form is "//tcrowd:name arg arg..." with
// no space before the name, matching the Go toolchain's directive
// convention so godoc hides it.
func parseDirectives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			out = append(out, Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()})
		}
	}
	return out
}

// packageDirectives returns directives attached to any file's package
// comment (the doc comment above the package clause).
func (p *Pass) packageDirectives() []Directive {
	var out []Directive
	for _, f := range p.Files {
		out = append(out, parseDirectives(f.Doc)...)
	}
	return out
}

// hasPackageDirective reports whether any file's package comment carries
// the named directive.
func (p *Pass) hasPackageDirective(name string) bool {
	for _, d := range p.packageDirectives() {
		if d.Name == name {
			return true
		}
	}
	return false
}

// ---- waivers ----

// waiver is one parsed "//lint:allow <analyzer> <reason>" comment.
type waiver struct {
	analyzer string
	reason   string
	file     string
	line     int
	used     bool
}

const waiverPrefix = "//lint:allow "

// collectWaivers finds every //lint:allow comment in the files. A waiver
// covers findings of the named analyzer on its own line (trailing
// comment) and on the line directly below (standalone comment above the
// flagged statement).
func collectWaivers(fset *token.FileSet, files []*ast.File) []*waiver {
	var out []*waiver
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				fields := strings.SplitN(strings.TrimSpace(rest), " ", 2)
				if len(fields) == 0 || fields[0] == "" {
					continue
				}
				w := &waiver{analyzer: fields[0]}
				if len(fields) == 2 {
					w.reason = strings.TrimSpace(fields[1])
				}
				pos := fset.Position(c.Pos())
				w.file, w.line = pos.Filename, pos.Line
				out = append(out, w)
			}
		}
	}
	return out
}

// applyWaivers marks diagnostics covered by a waiver. It returns the
// waivers that matched nothing (so the driver can flag stale waivers).
func applyWaivers(diags []Diagnostic, waivers []*waiver) (unused []*waiver) {
	for i := range diags {
		d := &diags[i]
		for _, w := range waivers {
			if w.analyzer != d.Analyzer || w.file != d.Pos.Filename {
				continue
			}
			if w.line == d.Pos.Line || w.line == d.Pos.Line-1 {
				d.Waived = true
				d.WaiveReason = w.reason
				w.used = true
				break
			}
		}
	}
	for _, w := range waivers {
		if !w.used {
			unused = append(unused, w)
		}
	}
	return unused
}

// sortDiags orders findings by file, line, column, analyzer for stable
// output.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---- shared helpers ----

// exprString renders an expression compactly ("p.mu", "proj.assignMu").
// It handles the selector/ident/paren/star shapes lock expressions take;
// anything else renders as a placeholder that will simply never match.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}

// namedTypeName resolves the bare name of an expression's (possibly
// pointer-wrapped) named type, or "" when it has none.
func namedTypeName(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	return typeBareName(t)
}

func typeBareName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Pointer); ok {
		t = n.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// proseGuard matches the legacy "guarded by <mu>" comment form.
var proseGuard = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_][\w.]*)`)

// proseHolds matches the legacy "Caller holds <mu>" comment form.
var proseHolds = regexp.MustCompile(`(?i)\bcaller(?:s)? (?:must hold|holds?) ([A-Za-z_][\w.]*)`)

// trimProseRef strips trailing sentence punctuation from a prose mutex
// reference ("p.mu." -> "p.mu").
func trimProseRef(s string) string {
	return strings.TrimRight(s, ".,;:")
}
