package platform

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic bucket refill.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func newTestLimiter(rate, burst float64) (*RateLimiter, *fakeClock) {
	clk := &fakeClock{at: time.Unix(1000, 0)}
	return NewRateLimiter(RateLimiterConfig{Rate: rate, Burst: burst, Now: clk.now}), clk
}

func TestRateLimiterDisabled(t *testing.T) {
	if l := NewRateLimiter(RateLimiterConfig{Rate: 0}); l != nil {
		t.Fatalf("rate 0 should disable the limiter, got %+v", l)
	}
	var nilLimiter *RateLimiter
	if ok, wait := nilLimiter.Allow("w"); !ok || wait != 0 {
		t.Fatalf("nil limiter must allow everything: %v %v", ok, wait)
	}
	if ok, _ := nilLimiter.TakeAll(map[string]float64{"a": 1e9}); !ok {
		t.Fatal("nil limiter must allow any demand")
	}
}

func TestRateLimiterBurstThenRefuse(t *testing.T) {
	l, _ := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("w"); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, wait := l.Allow("w")
	if ok {
		t.Fatal("4th token within burst window allowed")
	}
	if wait != time.Second {
		t.Fatalf("wait = %v, want 1s (1 token at 1 token/sec)", wait)
	}
	// An unrelated worker has its own bucket.
	if ok, _ := l.Allow("other"); !ok {
		t.Fatal("independent worker throttled by someone else's spend")
	}
}

func TestRateLimiterRefill(t *testing.T) {
	l, clk := newTestLimiter(2, 2) // 2 tokens/sec, capacity 2
	if ok, _ := l.TakeAll(map[string]float64{"w": 2}); !ok {
		t.Fatal("full burst refused")
	}
	if ok, _ := l.Allow("w"); ok {
		t.Fatal("empty bucket allowed")
	}
	clk.advance(500 * time.Millisecond) // +1 token
	if ok, _ := l.Allow("w"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := l.Allow("w"); ok {
		t.Fatal("bucket drained again but allowed")
	}
	// Idling far past capacity caps at Burst, not rate*elapsed.
	clk.advance(time.Hour)
	if ok, _ := l.TakeAll(map[string]float64{"w": 2}); !ok {
		t.Fatal("capacity after long idle refused")
	}
	if ok, _ := l.Allow("w"); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

// TestRateLimiterTakeAllAtomic pins the all-or-nothing contract that
// matches atomic batch submission: when ANY worker in the demand map is
// short, NO bucket is charged — a rejected batch records nothing, so it
// must cost nothing.
func TestRateLimiterTakeAllAtomic(t *testing.T) {
	l, _ := newTestLimiter(1, 5)
	// Drain "poor" down to 1 token; "rich" stays at 5.
	if ok, _ := l.TakeAll(map[string]float64{"poor": 4}); !ok {
		t.Fatal("setup drain refused")
	}
	ok, wait := l.TakeAll(map[string]float64{"rich": 3, "poor": 2})
	if ok {
		t.Fatal("mixed demand with a short bucket allowed")
	}
	if wait != time.Second {
		t.Fatalf("wait = %v, want 1s (poor needs 1 more token at 1/sec)", wait)
	}
	// The failed call must not have charged the rich bucket: its full
	// burst is still spendable.
	if ok, _ := l.TakeAll(map[string]float64{"rich": 5}); !ok {
		t.Fatal("failed TakeAll charged an uninvolved-at-fault bucket")
	}
	// And poor still has its 1 remaining token.
	if ok, _ := l.Allow("poor"); !ok {
		t.Fatal("failed TakeAll charged the short bucket")
	}
}

func TestRateLimiterWaitIsScarcestBucket(t *testing.T) {
	l, _ := newTestLimiter(1, 4)
	if ok, _ := l.TakeAll(map[string]float64{"a": 4, "b": 2}); !ok {
		t.Fatal("setup refused")
	}
	// a needs 3 more (3s wait), b needs 1 more (1s wait) → report 3s.
	_, wait := l.TakeAll(map[string]float64{"a": 3, "b": 3})
	if wait != 3*time.Second {
		t.Fatalf("wait = %v, want 3s (scarcest bucket governs)", wait)
	}
}

// Demand above Burst can never be satisfied by waiting; the reported
// wait is the time to a FULL bucket, not a nonsense duration.
func TestRateLimiterOversizeDemandWait(t *testing.T) {
	l, _ := newTestLimiter(1, 2)
	if ok, _ := l.TakeAll(map[string]float64{"w": 2}); !ok {
		t.Fatal("setup refused")
	}
	ok, wait := l.TakeAll(map[string]float64{"w": 10})
	if ok {
		t.Fatal("demand above burst allowed from an empty bucket")
	}
	if wait != 2*time.Second {
		t.Fatalf("wait = %v, want 2s (time to full bucket)", wait)
	}
	// Even a FULL bucket refuses a demand above its capacity — waiting
	// can never help, so the batch must be split, and no debt is booked.
	if ok, _ := l.TakeAll(map[string]float64{"fresh": 10}); ok {
		t.Fatal("demand above burst allowed from a full bucket")
	}
	if ok, _ := l.TakeAll(map[string]float64{"fresh": 2}); !ok {
		t.Fatal("refused oversize demand charged the bucket")
	}
}

func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.d); got != c.want {
			t.Errorf("retryAfterSecs(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
