// Package api defines the versioned (/v1) wire contract of tcrowd-server:
// request and response bodies, the typed error envelope, and the stable
// machine-readable error codes. It depends only on the standard library so
// that clients (package client, external SDKs) can share the exact types
// the server serializes.
//
// Every error response has the shape
//
//	{"error": {"code": "...", "message": "...", "retryable": true|false}}
//
// where code is one of the Code* constants below — clients dispatch on the
// code, never on the human-readable message. The full (HTTP status, code,
// retryable) table is committed at docs/api-routes.txt and drift-checked
// in CI.
package api

import "fmt"

// Stable machine-readable error codes. Codes are append-only: a published
// code never changes meaning or disappears within /v1.
const (
	// CodeBadRequest covers malformed bodies, unknown columns/labels,
	// out-of-range rows, mistyped values and unparseable query parameters.
	CodeBadRequest = "bad_request"
	// CodeNoProject: the {id} path element names no registered project.
	CodeNoProject = "no_project"
	// CodeNoSnapshot: a generation-pinned read before the project's first
	// refresh has published estimates (or naming a generation newer than
	// anything published). Retryable — a snapshot appears once a refresh
	// completes.
	CodeNoSnapshot = "no_snapshot"
	// CodeGenerationGone: the ?generation= (or cursor-pinned) model state
	// was evicted from the server's retained-generation ring. Not
	// retryable as issued — restart the read from the latest generation.
	CodeGenerationGone = "generation_gone"
	// CodeDuplicateProject: POST /v1/projects with an id already in use.
	CodeDuplicateProject = "duplicate_project"
	// CodeAlreadyAnswered: this worker already answered this cell.
	CodeAlreadyAnswered = "already_answered"
	// CodeShardSaturated: the project's inference shard queue is full.
	// Retryable — back off per the Retry-After header. For answer
	// submission this code never surfaces on /v1 (answers are recorded
	// and only the refresh is shed; see SubmitAnswersResponse.Refresh).
	CodeShardSaturated = "shard_saturated"
	// CodeShuttingDown: the server is draining for shutdown. Retryable
	// against a restarted or different replica.
	CodeShuttingDown = "shutting_down"
	// CodeBatchRejected: a batch POST .../answers failed validation and
	// nothing was recorded; Error.Items pinpoints the offending rows.
	CodeBatchRejected = "batch_rejected"
	// CodeInternal: a server-side fault (e.g. a panicking inference job)
	// — not a request mistake. Not retryable: the same request will very
	// likely hit the same fault.
	CodeInternal = "internal"
	// CodeDurabilityFailure: the server could not persist the mutation to
	// its write-ahead log, so NOTHING was recorded — acknowledgement
	// means durable. Retryable: the fault may be transient and the log
	// self-heals torn appends.
	CodeDurabilityFailure = "durability_failure"
	// CodeWorkerBanned: the submitting worker was auto-banned by the
	// project's reputation engine. Not retryable — bans are sticky, and
	// resubmitting the same answers under the same worker id will keep
	// failing. In a batch rejection each offending answer's item carries
	// this code.
	CodeWorkerBanned = "worker_banned"
	// CodeRateLimited: the per-worker token-bucket rate limit was
	// exceeded. Retryable — back off per the Retry-After header (the SDK
	// does this automatically).
	CodeRateLimited = "rate_limited"
	// CodeNotHome: in a multi-node cluster, this node is not the
	// addressed project's home and will not accept the request (writes
	// always land on the home node). Error.Home carries the home node's
	// base URL; the SDK re-issues the request against it automatically.
	// Not retryable AS ISSUED — the identical request to the same node
	// keeps failing; the retry must go to Home.
	CodeNotHome = "not_home"
	// CodeReplicaStale: a generation-pinned read addressed a replica
	// that has not received the requested generation yet. Retryable —
	// replication delivers it shortly (or read the home node).
	CodeReplicaStale = "replica_stale"
)

// Error is the typed error payload carried by every non-2xx response.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail. Not machine-stable.
	Message string `json:"message"`
	// Retryable reports whether an identical request may succeed later
	// without modification.
	Retryable bool `json:"retryable"`
	// Items carries per-answer failures for CodeBatchRejected.
	Items []ItemError `json:"items,omitempty"`
	// Home is the base URL of the project's home node, set on
	// CodeNotHome responses so clients re-issue the request there.
	Home string `json:"home,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// ItemError locates one invalid answer inside a rejected batch.
type ItemError struct {
	// Index is the answer's position in the submitted answers array.
	Index int `json:"index"`
	// Code is the item's own error code (e.g. CodeAlreadyAnswered).
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-2xx response.
type ErrorEnvelope struct {
	Err Error `json:"error"`
}

// Column describes one attribute in a project schema.
type Column struct {
	Name string `json:"name"`
	// Type is "categorical" or "continuous".
	Type string `json:"type"`
	// Labels is the answer domain of a categorical column.
	Labels []string `json:"labels,omitempty"`
	// Min and Max bound a continuous column's domain (advisory).
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// Schema is the table structure a requester registers.
type Schema struct {
	// Key names the entity attribute; key values identify rows and are
	// not crowdsourced.
	Key     string   `json:"key"`
	Columns []Column `json:"columns"`
}

// CreateProjectRequest is the body of POST /v1/projects.
type CreateProjectRequest struct {
	ID     string `json:"id"`
	Schema Schema `json:"schema"`
	Rows   int    `json:"rows"`
	// TCrowdAssignment enables the structure-aware assignment engine;
	// default is fewest-answers-first.
	TCrowdAssignment bool `json:"tcrowd_assignment,omitempty"`
	// RefreshEvery bounds submissions between inference refreshes
	// (0 = server default 25, 1 = refresh per answer).
	RefreshEvery int `json:"refresh_every,omitempty"`
	// FsyncPolicy overrides the server-wide WAL fsync policy for this
	// project: "always" (fsync per accepted batch — hot campaigns whose
	// answers are paid work), "interval" (background cadence) or "never"
	// (OS page cache only — bulk-import scratch projects). Empty means
	// the server default. Rejected with 400 on any other value; ignored
	// when the server runs without durability.
	FsyncPolicy string `json:"fsync_policy,omitempty"`
	// PolishFrac is the polish-cadence knob: the fraction of streaming
	// inference refreshes that re-converge the model with a full EM
	// polish (the rest run the cheap dirty-cell pass only). 0 (or 1)
	// polishes every refresh; values outside [0,1] are rejected with 400.
	PolishFrac float64 `json:"polish_frac,omitempty"`
	// Reputation enables the online worker-reputation engine: per-worker
	// trust scores from agreement/work-time/model-quality signals, with
	// graduated responses (down-weighting, assignment quarantine, and an
	// auto-ban rejecting further answers with CodeWorkerBanned).
	Reputation bool `json:"reputation,omitempty"`
}

// CreateProjectResponse is the 201 body of POST /v1/projects.
type CreateProjectResponse struct {
	ID string `json:"id"`
}

// Task is one assigned cell: everything needed to render the question.
type Task struct {
	Row    int      `json:"row"`
	Entity string   `json:"entity"`
	Column string   `json:"column"`
	Type   string   `json:"type"`
	Labels []string `json:"labels,omitempty"`
}

// Answer is one worker answer. Exactly one of Label or Number must be set
// (Label for categorical columns, Number for continuous ones).
type Answer struct {
	Worker string   `json:"worker"`
	Row    int      `json:"row"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
	// WorkTimeMs is the client-reported time the worker spent on the task
	// in milliseconds (0 = not reported). Negative values are rejected
	// with 400. Feeds the reputation engine's response-time signal when
	// the project runs with reputation enabled.
	WorkTimeMs int64 `json:"work_time_ms,omitempty"`
	// Client optionally identifies the submitting client software
	// (free-form, e.g. "webform/2.1"); recorded for diagnostics only.
	Client string `json:"client,omitempty"`
}

// LabelAnswer builds a categorical Answer.
func LabelAnswer(worker string, row int, column, label string) Answer {
	return Answer{Worker: worker, Row: row, Column: column, Label: &label}
}

// NumberAnswer builds a continuous Answer.
func NumberAnswer(worker string, row int, column string, number float64) Answer {
	return Answer{Worker: worker, Row: row, Column: column, Number: &number}
}

// SubmitAnswersRequest is the body of POST /v1/projects/{id}/answers.
// Either the single-answer fields (Worker/Row/Column/Label/Number) or the
// Answers batch must be set, not both. A batch is validated in full before
// anything is recorded: on any invalid row the whole batch is rejected
// (CodeBatchRejected, per-item detail) and nothing is recorded.
type SubmitAnswersRequest struct {
	Answer
	Answers []Answer `json:"answers,omitempty"`
}

// Refresh states reported by SubmitAnswersResponse.Refresh.
const (
	// RefreshEnqueued: an inference refresh was enqueued (or coalesced
	// into one already queued) on the project's shard.
	RefreshEnqueued = "enqueued"
	// RefreshNone: the submission is mid-cadence; no refresh was due.
	RefreshNone = "none"
	// RefreshDeferred: the shard queue was saturated, so the due refresh
	// was shed. The answers ARE recorded; published snapshots lag until
	// the next refresh lands. Treat as a backpressure hint.
	RefreshDeferred = "deferred"
	// RefreshShutdown: the server is draining; answers are recorded and
	// will be persisted, but no refresh will run.
	RefreshShutdown = "shutdown"
)

// SubmitAnswersResponse is the 201 body of POST /v1/projects/{id}/answers.
// Unlike the legacy route, /v1 never answers 429 for submissions: recorded
// answers are acknowledged 201 and shard backpressure surfaces as
// Refresh == RefreshDeferred (plus a Retry-After header).
type SubmitAnswersResponse struct {
	Status string `json:"status"`
	// Recorded is the number of answers appended to the log.
	Recorded int `json:"recorded"`
	// Refresh is one of the Refresh* states above.
	Refresh string `json:"refresh"`
}

// Estimate is one inferred cell value.
type Estimate struct {
	Entity string   `json:"entity"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
}

// GenerationFresh is a ?min_generation= value guaranteed to exceed every
// published generation: it always triggers one refresh-if-stale round
// through the project's shard, so the response reflects every answer
// recorded before the call — the strongly consistent read spelled in
// generation terms.
const GenerationFresh = 1<<31 - 1

// EstimatesResponse is the body of GET /v1/projects/{id}/estimates (and
// its /snapshot alias). Every response is pinned to one published model
// generation: Generation identifies it, the ETag response header quotes
// it, and with ?cursor=&limit= the estimates list is one page of the
// row-major cell walk over that immutable snapshot — NextCursor re-encodes
// the generation, so the whole paged walk is generation-coherent however
// many writes land mid-walk. Worker-level fields repeat on every page.
type EstimatesResponse struct {
	Estimates     []Estimate         `json:"estimates"`
	WorkerQuality map[string]float64 `json:"worker_quality"`
	Iterations    int                `json:"iterations"`
	Converged     bool               `json:"converged"`
	// Generation is the published model state this response serves
	// (monotonically increasing per project; 1 is the first publish).
	Generation int `json:"generation"`
	// AnswersSeen is the log length the estimates reflect; Fresh reports
	// whether that equals the current log length (pinned reads may lag).
	AnswersSeen int  `json:"answers_seen"`
	Fresh       bool `json:"fresh"`
	// NextCursor, when non-empty, is the ?cursor= value of the next page
	// ("<generation>:<ordinal>" — the pinned generation rides along).
	NextCursor string `json:"next_cursor,omitempty"`
}

// WatchEventGeneration is the SSE `event:` name of a generation-bump
// event on GET /v1/projects/{id}/watch; its `data:` payload is one
// WatchEvent. Long-poll responses carry the same WatchEvent as a plain
// JSON body.
const WatchEventGeneration = "generation"

// MaxChangedCells caps WatchEvent.Cells: a publish that moves more cells
// than this ships the first MaxChangedCells (row-major) with
// CellsOverflow set, and the consumer re-fetches instead of patching.
const MaxChangedCells = 64

// ChangedCell addresses one estimate cell whose value moved in a publish.
type ChangedCell struct {
	Row    int    `json:"row"`
	Entity string `json:"entity"`
	Column string `json:"column"`
}

// WatchEvent is one generation bump published by a project, delivered by
// GET /v1/projects/{id}/watch (long-poll JSON body or SSE data payload).
type WatchEvent struct {
	Project string `json:"project"`
	// Generation is the newly published model state.
	Generation int `json:"generation"`
	// AnswersSeen is the log length the new state reflects; AnswersDelta
	// is how many answers this publish absorbed over the previous one.
	AnswersSeen  int `json:"answers_seen"`
	AnswersDelta int `json:"answers_delta"`
	// ChangedCells counts estimate cells whose value moved in this
	// publish.
	ChangedCells int  `json:"changed_cells"`
	Workers      int  `json:"workers"`
	Converged    bool `json:"converged"`
	// Cells lists the moved cells (row-major, at most MaxChangedCells) so
	// consumers can patch incrementally; when CellsOverflow is true the
	// list is truncated and a re-fetch of the estimates is cheaper than
	// patching.
	Cells         []ChangedCell `json:"cells,omitempty"`
	CellsOverflow bool          `json:"cells_overflow,omitempty"`
	// Coalesced marks the delivery that follows a gap: at least one
	// generation between the consumer's previous event (or its ?after=)
	// and this one was skipped — a slow consumer's buffer dropped bumps,
	// or the consumer connected behind the latest state. AnswersDelta/
	// ChangedCells cover only this event's own publish, not everything
	// missed.
	Coalesced bool `json:"coalesced,omitempty"`
}

// StatsResponse is the body of GET /v1/projects/{id}/stats.
type StatsResponse struct {
	Rows           int     `json:"rows"`
	Columns        int     `json:"columns"`
	Cells          int     `json:"cells"`
	Answers        int     `json:"answers"`
	Workers        int     `json:"workers"`
	AnswersPerTask float64 `json:"answers_per_task"`
}

// WorkerReputation is one worker's reputation record in GET
// /v1/projects/{id}/workers.
type WorkerReputation struct {
	Worker string `json:"worker"`
	// State is the graduated-response state: "active", "watched",
	// "quarantined" or "banned".
	State string `json:"state"`
	// Score is the current suspicion score in [0,1] (higher = worse).
	Score float64 `json:"score"`
	// Seen counts every observed answer; Judged counts the ones that had
	// enough peer context to be scored.
	Seen   int `json:"seen"`
	Judged int `json:"judged"`
	// Weight is the multiplier the inference E-step applies to this
	// worker's answers (1 = full trust, 0 = excluded).
	Weight float64 `json:"weight"`
	// ModelQ is the model's posterior quality q_u for the worker from the
	// last refresh (0 when the model has not seen the worker yet).
	ModelQ float64 `json:"model_q,omitempty"`
}

// WorkersResponse is the body of GET /v1/projects/{id}/workers.
type WorkersResponse struct {
	// Defense reports whether the project runs the reputation engine; when
	// false Workers is empty.
	Defense bool               `json:"defense"`
	Workers []WorkerReputation `json:"workers"`
}

// ShardMetrics is one inference shard's counters in GET /v1/stats.
type ShardMetrics struct {
	Shard     int    `json:"shard"`
	Depth     int    `json:"depth"`
	Enqueued  uint64 `json:"enqueued"`
	Coalesced uint64 `json:"coalesced"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	BusyNs    int64  `json:"busy_ns"`
	LastJobNs int64  `json:"last_job_ns"`
}

// ShardTotals aggregates the per-shard counters.
type ShardTotals struct {
	Depth     int     `json:"depth"`
	Enqueued  uint64  `json:"enqueued"`
	Coalesced uint64  `json:"coalesced"`
	Rejected  uint64  `json:"rejected"`
	Completed uint64  `json:"completed"`
	Failed    uint64  `json:"failed"`
	BusyNs    int64   `json:"busy_ns"`
	AvgJobMs  float64 `json:"avg_job_ms"`
}

// ShardStatsResponse is the body of GET /v1/stats.
type ShardStatsResponse struct {
	Workers int            `json:"workers"`
	Shards  []ShardMetrics `json:"shards"`
	Totals  ShardTotals    `json:"totals"`
}
