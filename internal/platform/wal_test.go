package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"tcrowd/api"
	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

// walTestOpts builds durable platform options over the given fault-
// injectable filesystem.
func walTestOpts(fs wal.FS, policy wal.SyncPolicy) Options {
	return Options{WAL: &WALOptions{Dir: "walroot", FS: fs, Policy: policy}}
}

// catAnswer is one categorical answer for row r by worker w (value r%3),
// distinct per (worker,row) so batches always pass validation.
func catAnswer(w string, r int) tabular.Answer {
	return tabular.Answer{
		Worker: tabular.WorkerID(w),
		Cell:   tabular.Cell{Row: r, Col: 0},
		Value:  tabular.LabelValue(r % 3),
	}
}

// TestWALRecoverRoundTrip is the basic durability contract: everything
// acknowledged before a clean shutdown is rebuilt by Recover — projects,
// their registration config, and every answer in submission order.
func TestWALRecoverRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(7, walTestOpts(fs, wal.SyncAlways))
	if _, err := p.CreateProject("alpha", demoSchema(), ProjectConfig{Rows: 4, RefreshEvery: 5, Entities: []string{"a", "b", "c", "d"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateProject("beta", demoSchema(), ProjectConfig{Rows: 2}); err != nil {
		t.Fatal(err)
	}
	var want []tabular.Answer
	for r := 0; r < 4; r++ {
		want = append(want, catAnswer("w1", r))
	}
	if _, err := p.SubmitBatch("alpha", want); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("alpha", "w2", 1, "price", tabular.NumberValue(99)); err != nil {
		t.Fatal(err)
	}
	want = append(want, tabular.Answer{Worker: "w2", Cell: tabular.Cell{Row: 1, Col: 1}, Value: tabular.NumberValue(99)})
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	p2, rep, err := Recover(7, walTestOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer p2.Close()
	if rep.Projects != 2 || rep.Answers != len(want) || len(rep.TornProjects) != 0 {
		t.Fatalf("report = %+v, want 2 projects / %d answers / no torn", rep, len(want))
	}
	proj, err := p2.Project("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := proj.Log.All(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed log = %v, want %v", got, want)
	}
	if proj.refreshEvery != 5 || proj.Table.Entities[2] != "c" {
		t.Fatalf("registration config lost: refreshEvery=%d entities=%v", proj.refreshEvery, proj.Table.Entities)
	}
	if _, err := p2.RunInference("alpha"); err != nil {
		t.Fatalf("inference after recovery: %v", err)
	}
}

// TestCrashRecoveryLosesNoAcknowledgedAnswers is the kill-and-restart
// torture test: concurrent submitters race a hard crash injected mid-
// storm (a torn prefix of any in-flight frame survives, everything else
// unsynced is gone), and recovery must surface every answer whose
// SubmitBatch was acknowledged. Run under -race this also exercises the
// WAL append path's locking.
func TestCrashRecoveryLosesNoAcknowledgedAnswers(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(1, walTestOpts(fs, wal.SyncAlways))
	const rows = 60
	if _, err := p.CreateProject("crash", demoSchema(), ProjectConfig{Rows: rows, RefreshEvery: 1000}); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var mu sync.Mutex
	var acked []tabular.Answer
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for row := 0; row < rows; row += 3 {
				var batch []tabular.Answer
				for r := row; r < row+3 && r < rows; r++ {
					batch = append(batch, catAnswer(name, r))
				}
				if _, err := p.SubmitBatch("crash", batch); err != nil {
					if !errors.Is(err, ErrDurability) {
						t.Errorf("worker %s: unexpected error %v", name, err)
					}
					return // the disk died under us; nothing was acked
				}
				mu.Lock()
				acked = append(acked, batch...)
				mu.Unlock()
			}
		}(w)
	}
	// Pull the plug mid-storm: once a few dozen appends have hit the
	// filesystem, crash with an 11-byte torn prefix of whatever frame is
	// in flight.
	for fs.Writes() < 40 {
		runtime.Gosched()
	}
	fs.Crash(11)
	wg.Wait()
	_ = p.Close() // the wedged WAL may surface its sticky error; irrelevant here

	p2, rep, err := Recover(1, walTestOpts(fs.Recovered(), wal.SyncAlways))
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer p2.Close()
	if rep.Projects != 1 {
		t.Fatalf("recovered %d projects, want 1", rep.Projects)
	}
	proj, err := p2.Project("crash")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range acked {
		got, ok := proj.Log.WorkerAnswerIn(a.Worker, a.Cell)
		if !ok {
			t.Fatalf("acknowledged answer lost: %+v (recovered %d of %d acked)", a, proj.Log.Len(), len(acked))
		}
		if got.Value != a.Value {
			t.Fatalf("answer %v/%v corrupted: got %v want %v", a.Worker, a.Cell, got.Value, a.Value)
		}
	}
	t.Logf("acked %d answers before crash; recovered log holds %d", len(acked), proj.Log.Len())
}

// TestReplayEquivalence pins that recovery is a bitwise no-op for the
// model: the same answer stream run through a crash+replay produces
// estimates and worker qualities exactly equal to the never-crashed run.
// The WAL appends under the same lock and in the same order as the
// in-memory log, so replay reconstructs an identical log and the cold
// fit is deterministic.
func TestReplayEquivalence(t *testing.T) {
	submitAll := func(p *Platform) {
		t.Helper()
		if _, err := p.CreateProject("eq", demoSchema(), ProjectConfig{Rows: 10, RefreshEvery: 1000}); err != nil {
			t.Fatal(err)
		}
		var batch []tabular.Answer
		for w := 0; w < 4; w++ {
			for r := 0; r < 10; r++ {
				batch = append(batch, catAnswer(fmt.Sprintf("w%d", w), r))
				batch = append(batch, tabular.Answer{
					Worker: tabular.WorkerID(fmt.Sprintf("w%d", w)),
					Cell:   tabular.Cell{Row: r, Col: 1},
					Value:  tabular.NumberValue(float64(10*r + w)),
				})
			}
		}
		if _, err := p.SubmitBatch("eq", batch); err != nil {
			t.Fatal(err)
		}
	}

	// Never-crashed run.
	base := New(42)
	defer base.Close()
	submitAll(base)
	wantRes, err := base.RunInference("eq")
	if err != nil {
		t.Fatal(err)
	}

	// Crashed run: same stream into a durable platform, hard crash (no
	// Close), recover, infer.
	fs := wal.NewMemFS()
	p := NewWithOptions(42, walTestOpts(fs, wal.SyncAlways))
	submitAll(p)
	fs.Crash(0)
	_ = p.Close()
	p2, _, err := Recover(42, walTestOpts(fs.Recovered(), wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	gotRes, err := p2.RunInference("eq")
	if err != nil {
		t.Fatal(err)
	}

	baseProj, _ := base.Project("eq")
	recProj, _ := p2.Project("eq")
	if !reflect.DeepEqual(recProj.Log.All(), baseProj.Log.All()) {
		t.Fatal("replayed answer log differs from never-crashed log")
	}
	if !reflect.DeepEqual(gotRes.Estimates, wantRes.Estimates) {
		t.Fatal("post-recovery estimates not bitwise-equal to never-crashed run")
	}
	if !reflect.DeepEqual(gotRes.WorkerQuality, wantRes.WorkerQuality) {
		t.Fatalf("post-recovery worker qualities differ: %v vs %v", gotRes.WorkerQuality, wantRes.WorkerQuality)
	}
}

// TestCloseFlushesWALAndIsIdempotent pins the Close-order bugfix: under
// fsync=never nothing is durable until Close, which must drain the
// shards and then flush+fsync every project's WAL — and a second Close
// must be a harmless no-op returning the same result.
func TestCloseFlushesWALAndIsIdempotent(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(3, walTestOpts(fs, wal.SyncNever))
	if _, err := p.CreateProject("flush", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	batch := []tabular.Answer{catAnswer("w1", 0), catAnswer("w1", 1), catAnswer("w1", 2)}
	if _, err := p.SubmitBatch("flush", batch); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}

	p2, rep, err := Recover(3, walTestOpts(fs.Recovered(), wal.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rep.Answers != len(batch) || len(rep.TornProjects) != 0 {
		t.Fatalf("after close-flush, report = %+v, want %d answers", rep, len(batch))
	}
}

// TestDurabilityFailureLeavesNoTrace: a failed WAL append rejects the
// batch with ErrDurability, records nothing in the in-memory log, and —
// because the log self-heals the torn tail — the retry succeeds and is
// the only thing a crash+recovery sees.
func TestDurabilityFailureLeavesNoTrace(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(5, walTestOpts(fs, wal.SyncAlways))
	if _, err := p.CreateProject("faulty", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	proj, _ := p.Project("faulty")

	fs.FailWrite(1)
	batch := []tabular.Answer{catAnswer("w1", 0)}
	if _, err := p.SubmitBatch("faulty", batch); !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	if proj.Log.Len() != 0 {
		t.Fatalf("rejected batch leaked into log: %d answers", proj.Log.Len())
	}
	if _, err := p.SubmitBatch("faulty", batch); err != nil {
		t.Fatalf("retry after healed append: %v", err)
	}
	fs.Crash(0)
	_ = p.Close()

	p2, rep, err := Recover(5, walTestOpts(fs.Recovered(), wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rep.Answers != 1 {
		t.Fatalf("recovered %d answers, want exactly the retried one", rep.Answers)
	}
}

// TestPlatformTornTailRecovery drives the torn-tail path end to end: a
// durable prefix from one serving session, an unsynced batch torn
// mid-frame by a crash, and a recovery that boots with the prefix and
// reports the project as torn instead of refusing or inventing answers.
func TestPlatformTornTailRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(9, walTestOpts(fs, wal.SyncAlways))
	if _, err := p.CreateProject("torn", demoSchema(), ProjectConfig{Rows: 4}); err != nil {
		t.Fatal(err)
	}
	durable := []tabular.Answer{catAnswer("w1", 0), catAnswer("w1", 1)}
	if _, err := p.SubmitBatch("torn", durable); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session, fsync=never: the new batch sits in the page cache
	// when the power goes out mid-write.
	p2, _, err := Recover(9, walTestOpts(fs, wal.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.SubmitBatch("torn", []tabular.Answer{catAnswer("w2", 2)}); err != nil {
		t.Fatal(err)
	}
	fs.Crash(5) // 5 bytes of the unsynced frame reach the platter
	_ = p2.Close()

	p3, rep, err := Recover(9, walTestOpts(fs.Recovered(), wal.SyncNever))
	if err != nil {
		t.Fatalf("torn tail must boot, got %v", err)
	}
	defer p3.Close()
	if len(rep.TornProjects) != 1 || rep.TornProjects[0] != "torn" {
		t.Fatalf("TornProjects = %v, want [torn]", rep.TornProjects)
	}
	proj, err := p3.Project("torn")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(proj.Log.All(), durable) {
		t.Fatalf("recovered log = %v, want the durable prefix %v", proj.Log.All(), durable)
	}
}

// TestRecoverRefusesMidLogCorruption: a bad frame before the tail is
// unattributable damage, not a torn write — boot must fail loudly with
// wal.ErrWALCorrupt instead of silently dropping history. The multi-
// segment log is built through the wal package directly (tiny segments,
// no compaction) so the corrupted segment is provably not the last.
func TestRecoverRefusesMidLogCorruption(t *testing.T) {
	fs := wal.NewMemFS()
	dir := "walroot/corrupt"
	l, _, err := wal.Open(dir, wal.Options{FS: fs, SegmentBytes: 64, CheckpointType: walRecCheckpoint})
	if err != nil {
		t.Fatal(err)
	}
	create, err := json.Marshal(walCreateJSON{ID: "corrupt", Schema: demoSchema(), Entities: nil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(wal.Record{Type: walRecCreate, Data: create}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		blob, err := tabular.MarshalAnswers(demoSchema(), []tabular.Answer{catAnswer("w1", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(wal.Record{Type: walRecBatch, Data: blob}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments to corrupt a middle one, got %d", len(segs))
	}
	victim := filepath.Join(dir, segs[1])
	info, err := fs.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(victim, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	_, _, err = Recover(1, walTestOpts(fs, wal.SyncAlways))
	if !errors.Is(err, wal.ErrWALCorrupt) {
		t.Fatalf("mid-log corruption booted anyway: %v", err)
	}
}

// TestDeleteProjectDurable: deletion survives restart (the directory is
// tombstone-renamed then removed), and a tombstone left by a crash
// mid-delete is finished — reaped, never resurrected — at the next boot.
func TestDeleteProjectDurable(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(11, walTestOpts(fs, wal.SyncAlways))
	for _, id := range []string{"keep", "drop"} {
		if _, err := p.CreateProject(id, demoSchema(), ProjectConfig{Rows: 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.SubmitBatch(id, []tabular.Answer{catAnswer("w1", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DeleteProject("drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Project("drop"); !errors.Is(err, ErrNoProject) {
		t.Fatalf("deleted project still served: %v", err)
	}
	if err := p.DeleteProject("drop"); !errors.Is(err, ErrNoProject) {
		t.Fatalf("double delete: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, rep, err := Recover(11, walTestOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Projects != 1 {
		t.Fatalf("deleted project resurrected: report %+v", rep)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed delete: the rename committed but the removal never ran.
	if err := fs.Rename("walroot/keep", "walroot/keep"+walTombstoneSuffix); err != nil {
		t.Fatal(err)
	}
	p3, rep, err := Recover(11, walTestOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if rep.Projects != 0 {
		t.Fatalf("tombstoned project replayed: report %+v", rep)
	}
	entries, err := fs.ReadDir("walroot")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("tombstone not reaped: %s left in wal root", e.Name())
	}
}

// TestCreateProjectOverExistingLogRefused: a fresh platform (not
// Recover) pointed at a WAL root that already holds records for an ID
// must refuse the create as a duplicate — silently appending to another
// incarnation's log would interleave two histories.
func TestCreateProjectOverExistingLogRefused(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(13, walTestOpts(fs, wal.SyncAlways))
	if _, err := p.CreateProject("dup", demoSchema(), ProjectConfig{Rows: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := NewWithOptions(13, walTestOpts(fs, wal.SyncAlways))
	defer p2.Close()
	if _, err := p2.CreateProject("dup", demoSchema(), ProjectConfig{Rows: 2}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("create over live log: %v", err)
	}
}

// TestWatchEventChangedCells pins the bounded changed-cell payload: a
// small publish ships every moved cell with entity/column coordinates;
// a publish moving more than api.MaxChangedCells ships exactly the cap
// with the overflow marker set (the count still reports the true total).
func TestWatchEventChangedCells(t *testing.T) {
	p := New(17)
	defer p.Close()
	if _, err := p.CreateProject("small", demoSchema(), ProjectConfig{Rows: 4, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitBatch("small", []tabular.Answer{catAnswer("w1", 0), catAnswer("w1", 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunInference("small"); err != nil {
		t.Fatal(err)
	}
	ev, ok, err := p.LatestEvent("small")
	if err != nil || !ok {
		t.Fatalf("no watch event: ok=%v err=%v", ok, err)
	}
	if ev.ChangedCells == 0 || ev.CellsOverflow {
		t.Fatalf("small publish: changed=%d overflow=%v", ev.ChangedCells, ev.CellsOverflow)
	}
	if len(ev.Cells) != ev.ChangedCells {
		t.Fatalf("cells list (%d) != changed count (%d) under the cap", len(ev.Cells), ev.ChangedCells)
	}
	for _, c := range ev.Cells {
		if c.Entity == "" || (c.Column != "category" && c.Column != "price") {
			t.Fatalf("malformed cell coordinate: %+v", c)
		}
	}

	const rows = 80 // one answered column => >MaxChangedCells moved cells
	if _, err := p.CreateProject("big", demoSchema(), ProjectConfig{Rows: rows, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	var batch []tabular.Answer
	for r := 0; r < rows; r++ {
		batch = append(batch, catAnswer("w1", r))
	}
	if _, err := p.SubmitBatch("big", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunInference("big"); err != nil {
		t.Fatal(err)
	}
	ev, ok, err = p.LatestEvent("big")
	if err != nil || !ok {
		t.Fatalf("no watch event: ok=%v err=%v", ok, err)
	}
	if ev.ChangedCells <= api.MaxChangedCells {
		t.Fatalf("publish moved only %d cells; test needs > %d", ev.ChangedCells, api.MaxChangedCells)
	}
	if !ev.CellsOverflow || len(ev.Cells) != api.MaxChangedCells {
		t.Fatalf("overflow publish: overflow=%v len(cells)=%d want capped at %d",
			ev.CellsOverflow, len(ev.Cells), api.MaxChangedCells)
	}
}

// TestSaveToFileAtomicExport pins the -state save fix: the export is
// written via a same-directory temp file and rename, leaves no temp
// droppings behind, and round-trips through ImportProjects.
func TestSaveToFileAtomicExport(t *testing.T) {
	dir := t.TempDir()
	p := New(19)
	defer p.Close()
	if _, err := p.CreateProject("exp", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitBatch("exp", []tabular.Answer{catAnswer("w1", 0), catAnswer("w1", 2)}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "state.json")
	if err := p.SaveToFile(path); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveToFile(path); err != nil { // overwrite is atomic too
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.json" {
		t.Fatalf("export left droppings: %v", entries)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p2 := New(19)
	defer p2.Close()
	n, err := p2.ImportProjects(f)
	if err != nil || n != 1 {
		t.Fatalf("import: n=%d err=%v", n, err)
	}
	src, _ := p.Project("exp")
	dst, _ := p2.Project("exp")
	if !reflect.DeepEqual(dst.Log.All(), src.Log.All()) {
		t.Fatal("exported answers did not round-trip")
	}
}

// TestImportIntoDurablePlatform: ImportProjects into a WAL-backed
// platform must write the imported answers through the log — a crash
// right after import loses nothing.
func TestImportIntoDurablePlatform(t *testing.T) {
	src := New(23)
	defer src.Close()
	if _, err := src.CreateProject("mig", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.SubmitBatch("mig", []tabular.Answer{catAnswer("w1", 0), catAnswer("w2", 1)}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := src.SaveToFile(path); err != nil {
		t.Fatal(err)
	}

	fs := wal.NewMemFS()
	p := NewWithOptions(23, walTestOpts(fs, wal.SyncAlways))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.ImportProjects(f)
	f.Close()
	if err != nil || n != 1 {
		t.Fatalf("import: n=%d err=%v", n, err)
	}
	fs.Crash(0)
	_ = p.Close()

	p2, rep, err := Recover(23, walTestOpts(fs.Recovered(), wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rep.Projects != 1 || rep.Answers != 2 {
		t.Fatalf("imported state lost in crash: report %+v", rep)
	}
	srcProj, _ := src.Project("mig")
	recProj, _ := p2.Project("mig")
	if !reflect.DeepEqual(recProj.Log.All(), srcProj.Log.All()) {
		t.Fatal("recovered imported answers differ from source")
	}
}

// TestPerProjectFsyncPolicy pins the per-project durability override: a
// "hot" project created with fsync=always on a platform whose default is
// fsync=never keeps every acknowledged batch across a hard crash, while
// a sibling project on the lazy default loses its unsynced batches (the
// create record itself is force-synced regardless of policy, so the
// project survives empty). Recovery must re-apply the override from the
// create record: batches written after a restart are crash-durable too.
func TestPerProjectFsyncPolicy(t *testing.T) {
	fs := wal.NewMemFS()
	p := NewWithOptions(3, walTestOpts(fs, wal.SyncNever))
	if _, err := p.CreateProject("hot", demoSchema(), ProjectConfig{Rows: 4, FsyncPolicy: "always"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateProject("lazy", demoSchema(), ProjectConfig{Rows: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateProject("bad", demoSchema(), ProjectConfig{Rows: 4, FsyncPolicy: "sometimes"}); err == nil {
		t.Fatal("invalid fsync policy accepted")
	}
	hotBatch := []tabular.Answer{catAnswer("w1", 0), catAnswer("w1", 1)}
	if _, err := p.SubmitBatch("hot", hotBatch); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitBatch("lazy", []tabular.Answer{catAnswer("w1", 0)}); err != nil {
		t.Fatal(err)
	}
	fs.Crash(0) // hard kill: unsynced bytes are gone

	fs2 := fs.Recovered()
	p2, rep, err := Recover(3, walTestOpts(fs2, wal.SyncNever))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Projects != 2 {
		t.Fatalf("report = %+v, want both projects back", rep)
	}
	hot, err := p2.Project("hot")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hot.Log.All(), hotBatch) {
		t.Fatalf("fsync=always project lost acknowledged answers: %v", hot.Log.All())
	}
	if hot.fsyncPolicy != "always" {
		t.Fatalf("recovered override = %q, want always", hot.fsyncPolicy)
	}
	lazy, err := p2.Project("lazy")
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Log.Len() != 0 {
		t.Fatalf("fsync=never project kept %d unsynced answers past a crash", lazy.Log.Len())
	}

	// The override must survive the restart, not just the record: a batch
	// accepted by the recovered platform is durable across a second crash.
	if _, err := p2.SubmitBatch("hot", []tabular.Answer{catAnswer("w2", 2)}); err != nil {
		t.Fatal(err)
	}
	fs2.Crash(0)
	_ = p2.Close()
	p3, _, err := Recover(3, walTestOpts(fs2.Recovered(), wal.SyncNever))
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	defer p3.Close()
	hot3, err := p3.Project("hot")
	if err != nil {
		t.Fatal(err)
	}
	if hot3.Log.Len() != 3 {
		t.Fatalf("post-recovery batch on fsync=always project not durable: %d answers", hot3.Log.Len())
	}
}

// TestFsyncPolicySurvivesSaveImport pins the export round-trip: Save
// carries the override and ImportProjects re-applies it.
func TestFsyncPolicySurvivesSaveImport(t *testing.T) {
	src := New(11)
	if _, err := src.CreateProject("hot", demoSchema(), ProjectConfig{Rows: 2, FsyncPolicy: "interval"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	src.Close()
	dst := New(11)
	defer dst.Close()
	if n, err := dst.ImportProjects(strings.NewReader(buf.String())); err != nil || n != 1 {
		t.Fatalf("import: n=%d err=%v", n, err)
	}
	proj, err := dst.Project("hot")
	if err != nil {
		t.Fatal(err)
	}
	if proj.fsyncPolicy != "interval" {
		t.Fatalf("imported override = %q, want interval", proj.fsyncPolicy)
	}
}
