package assign

import (
	"fmt"

	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
)

// SimConfig parameterises the budgeted online simulation that regenerates
// Figs. 2 and 5: workers arrive in a random stream, the system under test
// picks a HIT's worth of cells for each arrival, the simulated crowd
// answers them, and effectiveness is recorded at answers-per-task
// checkpoints.
type SimConfig struct {
	// Budget is the total number of answers to collect, including the
	// seeding phase (default: EvalAt's last checkpoint times #cells).
	Budget int
	// Batch is the number of tasks per arriving worker (default: the
	// table's column count — one row-sized HIT, matching the AMT setup).
	Batch int
	// InitPerTask seeds every task with this many answers before the
	// online phase (Algorithm 2 line 1; default 1).
	InitPerTask int
	// RefreshEvery re-runs the system's inference every this many
	// arrivals (default 8; checkpoints always refresh first).
	RefreshEvery int
	// EvalAt lists the answers-per-task checkpoints to record, e.g.
	// {2, 2.5, 3, 3.5, 4, 4.5, 5} for Celebrity.
	EvalAt []float64
	// Seed drives the crowd and arrival randomness.
	Seed int64
}

func (c SimConfig) withDefaults(ds *simulate.Dataset) SimConfig {
	if c.Batch <= 0 {
		c.Batch = ds.Table.NumCols()
	}
	if c.InitPerTask <= 0 {
		c.InitPerTask = 1
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 8
	}
	if len(c.EvalAt) == 0 {
		c.EvalAt = []float64{2, 3, 4, 5}
	}
	if c.Budget <= 0 {
		last := c.EvalAt[len(c.EvalAt)-1]
		c.Budget = int(last*float64(ds.Table.NumCells()) + 0.5)
	}
	return c
}

// SimResult is one system's convergence curve.
type SimResult struct {
	System string
	Curve  []metrics.CurvePoint
	// TotalAnswers is the number of answers actually collected.
	TotalAnswers int
}

// RunOnline replays the online crowdsourcing protocol for one system and
// returns its Error Rate / MNAD curve over answers-per-task.
func RunOnline(ds *simulate.Dataset, sys System, cfg SimConfig) (SimResult, error) {
	c := cfg.withDefaults(ds)
	crowd := simulate.NewCrowd(ds, c.Seed)
	tbl := ds.Table
	numCells := float64(tbl.NumCells())

	// Seeding phase: every task gets InitPerTask answers, via the same
	// row-HIT structure the AMT collection used.
	log := crowd.FixedAssignment(c.InitPerTask)
	if err := sys.Refresh(tbl, log); err != nil {
		return SimResult{}, fmt.Errorf("assign: initial refresh: %w", err)
	}

	res := SimResult{System: sys.Name()}
	evalIdx := 0
	record := func() error {
		apt := float64(log.Len()) / numCells
		for evalIdx < len(c.EvalAt) && apt >= c.EvalAt[evalIdx]-1e-9 {
			if err := sys.Refresh(tbl, log); err != nil {
				return err
			}
			est := sys.Estimates()
			rep := metrics.Evaluate(tbl, est, log)
			res.Curve = append(res.Curve, metrics.CurvePoint{
				AnswersPerTask: c.EvalAt[evalIdx],
				Report:         rep,
			})
			evalIdx++
		}
		return nil
	}
	if err := record(); err != nil {
		return SimResult{}, err
	}

	// Worst case every arrival answers one cell.
	arrivals := crowd.ArrivalOrder(c.Budget + 1)
	sinceRefresh := 0
	for _, widx := range arrivals {
		if log.Len() >= c.Budget || evalIdx >= len(c.EvalAt) {
			break
		}
		w := &ds.Workers[widx]
		cells := sys.Select(w.ID, c.Batch, log)
		if len(cells) == 0 {
			// This worker has nothing left to answer; move on.
			continue
		}
		for _, cell := range cells {
			if log.Len() >= c.Budget {
				break
			}
			log.Add(crowd.Answer(w, cell))
		}
		sinceRefresh++
		if sinceRefresh >= c.RefreshEvery {
			if err := sys.Refresh(tbl, log); err != nil {
				return SimResult{}, err
			}
			sinceRefresh = 0
		}
		if err := record(); err != nil {
			return SimResult{}, err
		}
	}
	res.TotalAnswers = log.Len()
	return res, nil
}

// RunPolicyComparison runs the Fig. 5 heuristics (all with T-Crowd
// inference) on one dataset and returns one curve per policy.
func RunPolicyComparison(ds *simulate.Dataset, policies []Policy, cfg SimConfig) ([]SimResult, error) {
	out := make([]SimResult, 0, len(policies))
	for _, p := range policies {
		sys := NewTCrowdSystem(cfg.Seed)
		sys.Policy = p
		r, err := RunOnline(ds, sys, cfg)
		if err != nil {
			return nil, fmt.Errorf("assign: policy %s: %w", p.Name(), err)
		}
		r.System = p.Name()
		out = append(out, r)
	}
	return out, nil
}
