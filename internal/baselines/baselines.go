// Package baselines implements the competitor truth-inference methods of
// the paper's evaluation (Sec. 6.2, Table 7):
//
//   - Majority Voting and Median — the equal-worker-weight baselines;
//   - D&S (Dawid & Skene) — per-worker confusion matrices, EM;
//   - ZenCrowd — single per-worker reliability, EM;
//   - GLAD — worker ability x task difficulty in a logistic model, EM;
//   - GTM — a Gaussian truth model for continuous data;
//   - CRH — loss-minimising truth discovery for heterogeneous data;
//   - CATD — confidence-aware (chi-square) source weighting;
//
// plus adapters exposing T-Crowd and its constrained variants
// (TC-onlyCate / TC-onlyCont) under the same interface so harnesses can
// sweep the full Table 7 method list.
package baselines

import (
	"tcrowd/internal/metrics"
	"tcrowd/internal/tabular"
)

// Method is a truth-inference algorithm: it reads a table's schema and an
// answer log and produces per-cell truth estimates. Cells of datatypes the
// method does not handle stay None ("/" in Table 7).
type Method interface {
	// Name is the display name used in experiment tables.
	Name() string
	// Infer estimates the truth of every answerable cell.
	Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error)
}

// All returns the full Table 7 line-up in the paper's row order.
func All() []Method {
	return []Method{
		TCrowd{},
		CRH{},
		CATD{},
		MajorityVote{},
		DawidSkene{},
		GLAD{},
		ZenCrowd{},
		TCOnlyCate{},
		Median{},
		GTM{},
		TCOnlyCont{},
	}
}

// ByName resolves a method by its display name; ok is false when unknown.
func ByName(name string) (Method, bool) {
	for _, m := range All() {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// catColumns returns the indices of categorical columns.
func catColumns(tbl *tabular.Table) []int {
	var out []int
	for j, c := range tbl.Schema.Columns {
		if c.Type == tabular.Categorical {
			out = append(out, j)
		}
	}
	return out
}

// contColumns returns the indices of continuous columns.
func contColumns(tbl *tabular.Table) []int {
	var out []int
	for j, c := range tbl.Schema.Columns {
		if c.Type == tabular.Continuous {
			out = append(out, j)
		}
	}
	return out
}
