package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrTable enforces the exhaustiveness contracts:
//
//  1. A package-level composite-literal table annotated //tcrowd:errtable
//     must reference every exported Err* sentinel declared in the same
//     package — the sentinel→(status,code,retryable) wire table cannot
//     silently miss a sentinel (PR 4's contract).
//
//  2. A const group annotated "//tcrowd:enum <name>" defines an enum.
//     Any switch in the package whose tag has the enum's named type, or
//     whose cases mention one of its members, must list every member —
//     a default clause does not excuse a missing member, because the
//     contract is that every WAL record type and reputation state is
//     handled explicitly (defaults exist for corruption, not coverage).
//
//  3. Generically: a switch with no default clause over a named integer
//     type that has declared constants (in the type's own package, which
//     may be an import) must cover all of them — the shape that rots
//     when CrowdER-style pluggable task types multiply the enums.
var ErrTable = &Analyzer{
	Name: "errtable",
	Doc:  "reports sentinel errors missing from the wire table and non-exhaustive switches over enums",
	Run:  runErrTable,
}

func runErrTable(pass *Pass) error {
	checkSentinelTable(pass)
	enums := collectEnums(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, sw, enums)
			return true
		})
	}
	return nil
}

// ---- sentinel table ----

// checkSentinelTable finds the //tcrowd:errtable-annotated var and
// verifies every exported same-package Err* sentinel appears inside its
// composite literal.
func checkSentinelTable(pass *Pass) {
	var tableLit *ast.CompositeLit
	var tablePos token.Pos
	var tableName string
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if !hasDirective(gd.Doc, "errtable") && !hasDirective(vs.Doc, "errtable") {
					continue
				}
				if len(vs.Values) == 1 {
					if cl, ok := vs.Values[0].(*ast.CompositeLit); ok {
						tableLit, tablePos, tableName = cl, vs.Pos(), vs.Names[0].Name
					}
				}
			}
		}
	}
	if tableLit == nil {
		return
	}

	referenced := map[types.Object]bool{}
	ast.Inspect(tableLit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				referenced[obj] = true
			}
		}
		return true
	})

	errType := types.Universe.Lookup("error").Type()
	scope := pass.Pkg.Scope()
	var missing []string
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") || !token.IsExported(name) {
			continue
		}
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !types.Implements(v.Type(), errType.Underlying().(*types.Interface)) {
			continue
		}
		if !referenced[v] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(tablePos, "exported sentinel %s has no row in %s: every sentinel must map to a wire (status, code, retryable) spec", name, tableName)
	}
}

// ---- enums and switch exhaustiveness ----

// enumSet is one //tcrowd:enum const group: its display name, member
// constant objects, and (when the constants share one) the named type.
type enumSet struct {
	name    string
	typ     *types.Named
	members []types.Object
}

func collectEnums(pass *Pass) []*enumSet {
	var out []*enumSet
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			var dirName string
			found := false
			for _, d := range parseDirectives(gd.Doc) {
				if d.Name == "enum" {
					found = true
					if len(d.Args) > 0 {
						dirName = d.Args[0]
					}
				}
			}
			if !found {
				continue
			}
			e := &enumSet{name: dirName}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					e.members = append(e.members, obj)
					if n, ok := obj.Type().(*types.Named); ok {
						e.typ = n
					}
				}
			}
			if e.name == "" && e.typ != nil {
				e.name = e.typ.Obj().Name()
			}
			if e.name == "" {
				e.name = "enum"
			}
			if len(e.members) > 0 {
				out = append(out, e)
			}
		}
	}
	return out
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt, enums []*enumSet) {
	if sw.Tag == nil {
		return
	}
	covered := map[types.Object]bool{}
	hasDefault := false
	for _, cc := range sw.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			if obj := caseObject(pass, e); obj != nil {
				covered[obj] = true
			}
		}
	}

	tagType := pass.TypesInfo.TypeOf(sw.Tag)

	// Rule 2: directive-declared enums, strict (default does not excuse).
	for _, e := range enums {
		if !switchTargetsEnum(tagType, covered, e) {
			continue
		}
		reportMissing(pass, sw.Pos(), e.name, e.members, covered)
		return
	}

	// Rule 3: generic named-integer enum types, lenient (a default
	// clause marks the open-ended switches as intentional).
	if hasDefault {
		return
	}
	named, ok := tagType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	members := constantsOfType(named)
	if len(members) < 2 {
		return
	}
	reportMissing(pass, sw.Pos(), named.Obj().Name(), members, covered)
}

func switchTargetsEnum(tagType types.Type, covered map[types.Object]bool, e *enumSet) bool {
	if e.typ != nil && tagType != nil {
		if named, ok := tagType.(*types.Named); ok && named.Obj() == e.typ.Obj() {
			return true
		}
	}
	for _, m := range e.members {
		if covered[m] {
			return true
		}
	}
	return false
}

func caseObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// constantsOfType returns the package-level constants of the named type,
// looked up in the type's defining package (works across imports).
func constantsOfType(named *types.Named) []types.Object {
	scope := named.Obj().Pkg().Scope()
	var out []types.Object
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if cn, ok := c.Type().(*types.Named); ok && cn.Obj() == named.Obj() {
			out = append(out, c)
		}
	}
	return out
}

func reportMissing(pass *Pass, pos token.Pos, enumName string, members []types.Object, covered map[types.Object]bool) {
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(pos, "switch over %s is not exhaustive: missing %s", enumName, strings.Join(missing, ", "))
}
