// Package errtable exercises the errtable analyzer: sentinel-table
// completeness, directive-declared enum switches (strict: default does
// not excuse), and the generic no-default named-integer rule.
package errtable

import (
	"errors"
	"net/http"
)

var (
	ErrMissing = errors.New("missing")
	ErrBroken  = errors.New("broken")
	ErrSkipped = errors.New("skipped")
)

type spec struct {
	err    error
	status int
}

//tcrowd:errtable
var wireTable = []spec{ // want `ErrSkipped has no row`
	{ErrMissing, http.StatusNotFound},
	{ErrBroken, http.StatusInternalServerError},
}

type recKind byte

//tcrowd:enum walrec
const (
	recCheckpoint recKind = 1
	recCreate     recKind = 2
	recBatch      recKind = 3
)

func handle(k recKind) int {
	switch k { // want `switch over walrec is not exhaustive: missing recBatch`
	case recCheckpoint:
		return 1
	case recCreate:
		return 2
	default:
		return 0
	}
}

func handleAll(k recKind) int {
	switch k {
	case recCheckpoint, recCreate, recBatch:
		return 1
	}
	return 0
}

type state int

const (
	active state = iota
	banned
)

func lenient(s state) bool {
	switch s { // want `switch over state is not exhaustive: missing banned`
	case active:
		return true
	}
	return false
}

func lenientDefault(s state) bool {
	switch s { // default clause marks the open-ended switch intentional
	case active:
		return true
	default:
		return false
	}
}

func waivedSwitch(s state) bool {
	//lint:allow errtable boolean projection, banned handled upstream
	switch s { // waived `not exhaustive`
	case active:
		return true
	}
	return false
}
