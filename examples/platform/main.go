// Platform: drives the AMT-like HTTP platform end-to-end (the system
// architecture of the paper's Fig. 1) through the official Go client SDK
// (package client): a requester registers a schema, simulated workers pull
// dynamically assigned tasks and submit their answers as one atomic batch
// per round over the /v1 wire API, a watcher streams generation bumps as
// the model refreshes, and the requester fetches inferred truth plus
// worker qualities with a generation-pinned paginated read.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"tcrowd/api"
	"tcrowd/client"
	"tcrowd/internal/platform"
)

func main() {
	ctx := context.Background()

	// Start the platform on an ephemeral local port.
	p := platform.New(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, platform.NewServer(p)) }()
	base := "http://" + ln.Addr().String()
	c := client.New(base)
	fmt.Println("platform listening on", base)

	// The requester registers a project.
	err = c.CreateProject(ctx, api.CreateProjectRequest{
		ID:   "books",
		Rows: 5,
		Schema: api.Schema{
			Key: "ISBN",
			Columns: []api.Column{
				{Name: "Genre", Type: "categorical", Labels: []string{"fiction", "nonfiction", "poetry"}},
				{Name: "Pages", Type: "continuous", Min: 20, Max: 2000},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered project 'books' (5 rows x 2 attributes)")

	// Watch the model improve: SSE-stream generation bumps while the
	// workers answer (dashboards would render these instead of polling).
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	events, watchErr := c.WatchStream(watchCtx, "books", 0)
	bumps := make(chan int, 1)
	go func() {
		n := 0
		for ev := range events {
			fmt.Printf("  watch: generation %d (answers %d, %d cells changed)\n",
				ev.Generation, ev.AnswersSeen, ev.ChangedCells)
			n++
		}
		bumps <- n
	}()

	// Ground truth known only to this simulation.
	genres := []int{0, 1, 0, 2, 1}
	pages := []float64{320, 540, 210, 96, 780}
	labels := []string{"fiction", "nonfiction", "poetry"}

	// Simulated workers pull tasks and answer: w1/w2 are reliable, w3 is
	// sloppy. Each worker's round is submitted as ONE batch — one HTTP
	// round trip and at most one coalesced inference refresh, however many
	// answers it carries.
	noise := map[string]float64{"w1": 10, "w2": 15, "w3": 150}
	wrong := map[string]int{"w1": 0, "w2": 0, "w3": 2}
	for round := 0; round < 3; round++ {
		for _, w := range []string{"w1", "w2", "w3"} {
			tasks, err := c.Tasks(ctx, "books", w, 4)
			if err != nil {
				log.Fatal(err)
			}
			batch := make([]api.Answer, 0, len(tasks))
			for _, task := range tasks {
				if task.Column == "Genre" {
					g := genres[task.Row]
					if wrong[w] > 0 {
						wrong[w]--
						g = (g + 1) % 3
					}
					batch = append(batch, api.LabelAnswer(w, task.Row, task.Column, labels[g]))
				} else {
					x := pages[task.Row] + noise[w]*float64(task.Row%3-1)
					batch = append(batch, api.NumberAnswer(w, task.Row, task.Column, x))
				}
			}
			res, err := c.SubmitAnswers(ctx, "books", batch)
			if err != nil {
				log.Fatal(err)
			}
			if res.Recorded != len(batch) {
				log.Fatalf("batch recorded %d/%d", res.Recorded, len(batch))
			}
		}
	}

	st, err := c.Stats(ctx, "books")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d answers from %d workers (%.1f per task)\n",
		st.Answers, st.Workers, st.AnswersPerTask)

	// The requester fetches the inferred truth, walking the pagination
	// (page size 3 here just to exercise it; pass 0 for one read). The
	// whole walk is pinned to one model generation by the cursor, and
	// MinGeneration: api.GenerationFresh forces a refresh first, so the
	// body reflects every answer above.
	est, err := c.AllEstimates(ctx, "books", 3,
		client.EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread pinned to generation %d (answers_seen %d, fresh=%v)\n",
		est.Generation, est.AnswersSeen, est.Fresh)

	stopWatch()
	if err := <-watchErr; err != nil && err != context.Canceled {
		log.Fatal(err)
	}
	fmt.Printf("watch stream observed %d generation bumps\n", <-bumps)

	fmt.Println("\ninferred values:")
	for _, e := range est.Estimates {
		if e.Label != nil {
			fmt.Printf("  %-8s %-7s = %s\n", e.Entity, e.Column, *e.Label)
		} else {
			fmt.Printf("  %-8s %-7s = %.0f\n", e.Entity, e.Column, *e.Number)
		}
	}
	fmt.Println("\nworker quality:")
	for _, w := range []string{"w1", "w2", "w3"} {
		fmt.Printf("  %s: %.3f\n", w, est.WorkerQuality[w])
	}
	fmt.Println("\n(the wire types are package tcrowd/api, the SDK is package")
	fmt.Printf(" tcrowd/client; the public inference API is package %q)\n", "tcrowd")
}
