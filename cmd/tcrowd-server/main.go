// Command tcrowd-server runs the AMT-like crowdsourcing platform over HTTP
// (the system architecture of the paper's Fig. 1).
//
// Usage:
//
//	tcrowd-server -addr :8080
//	tcrowd-server -addr :8080 -state platform.json   # load + persist state
//
// Endpoints:
//
//	POST /projects                  register a schema
//	GET  /projects/{id}/tasks       dynamic task assignment (external-HIT)
//	POST /projects/{id}/answers     submit a worker answer
//	GET  /projects/{id}/estimates   run truth inference
//	GET  /projects/{id}/stats       collection progress
//
// # Streaming semantics
//
// The answer path is built for continuous collection. POST /answers is an
// O(1) validated append to the project's append-only log — it never waits
// on inference. The expensive model work happens on read, incrementally:
//
//   - GET /estimates pays one cold EM fit on the project's first call;
//     every later call streams only the answers submitted since the
//     previous call into the cached model (core.Ingest merges them into
//     the fitted CSR store in place) and re-converges it with a warm
//     incremental polish. Refresh latency therefore scales with the
//     submission delta, not with the accumulated log. With no new answers
//     the cached estimates are served directly.
//   - GET /tasks refreshes the assignment engine the same way: the
//     T-Crowd system ingests the log's new suffix into its fitted model
//     (O(batch)) instead of re-decoding the full log per refresh. Unlike
//     /estimates, this refresh runs under the platform lock, so the
//     incremental path's speed directly bounds how long concurrent
//     submissions can stall behind a task request.
//
// Estimate runs are serialised per project and run off the platform lock:
// workers can keep answering while a /estimates refresh is in flight.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"tcrowd/internal/platform"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		state = flag.String("state", "", "optional JSON state file (loaded at start, saved on SIGINT/SIGTERM)")
		seed  = flag.Int64("seed", 1, "assignment tie-breaking seed")
	)
	flag.Parse()

	p := platform.New(*seed)
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			loaded, err := platform.Load(f, *seed)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("loading %s: %w", *state, err))
			}
			p = loaded
			fmt.Printf("loaded state from %s (%d projects)\n", *state, len(p.ProjectIDs()))
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: platform.NewServer(p)}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		if *state != "" {
			f, err := os.Create(*state)
			if err == nil {
				err = p.Save(f)
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcrowd-server: saving state: %v\n", err)
			} else {
				fmt.Printf("state saved to %s\n", *state)
			}
		}
		srv.Close()
	}()

	fmt.Printf("tcrowd-server listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcrowd-server: %v\n", err)
	os.Exit(1)
}
