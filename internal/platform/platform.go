// Package platform implements the crowdsourcing-platform substrate of the
// paper's system architecture (Fig. 1): a requester registers the schema of
// the tabular data to collect, tasks are published, incoming workers are
// dynamically assigned cells (the AMT "external-HIT" pattern, Sec. 3), their
// answers are logged durably, and truth inference runs over the collected
// answers on demand.
package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"tcrowd/internal/assign"
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Common errors.
var (
	ErrNoProject       = errors.New("platform: no such project")
	ErrDuplicateID     = errors.New("platform: project id already exists")
	ErrAlreadyAnswered = errors.New("platform: worker already answered this cell")
)

// Project is one crowdsourcing campaign: a table to fill plus its answers.
type Project struct {
	ID    string
	Table *tabular.Table
	Log   *tabular.AnswerLog

	// sys is the assignment engine; nil means fewest-answers-first with
	// random tie-breaking (the CrowdDB/Deco-style default).
	sys assign.System
	// refreshEvery controls how many submissions may elapse between
	// inference refreshes of sys.
	refreshEvery int
	sinceRefresh int
	rng          *rand.Rand
	// inferMu serialises truth inference per project: the cached model is
	// refreshed incrementally in place, so exactly one RunInference may
	// touch it at a time (the platform lock stays free meanwhile, so
	// submissions never wait on EM).
	inferMu sync.Mutex
	// lastModel caches the latest truth-inference fit; after the first
	// cold fit, RunInference streams the answer delta into it
	// (core.Ingest + RefreshIncremental) instead of re-decoding the log.
	// logAtModel is the log length the model has absorbed.
	lastModel  *core.Model
	logAtModel int
}

// Platform hosts projects and is safe for concurrent use.
type Platform struct {
	mu       sync.Mutex
	projects map[string]*Project
	seed     int64
}

// New returns an empty platform; seed drives assignment tie-breaking.
func New(seed int64) *Platform {
	return &Platform{projects: make(map[string]*Project), seed: seed}
}

// ProjectConfig configures CreateProject.
type ProjectConfig struct {
	// Rows is the number of entities to collect.
	Rows int
	// Entities optionally names the rows (len must equal Rows if set).
	Entities []string
	// UseTCrowdAssignment enables the structure-aware T-Crowd assignment
	// engine; otherwise tasks are served fewest-answers-first.
	UseTCrowdAssignment bool
	// RefreshEvery bounds submissions between inference refreshes of the
	// assignment engine (default 25).
	RefreshEvery int
}

// CreateProject registers a new campaign.
func (p *Platform) CreateProject(id string, schema tabular.Schema, cfg ProjectConfig) (*Project, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("platform: project %q needs at least one row", id)
	}
	if cfg.Entities != nil && len(cfg.Entities) != cfg.Rows {
		return nil, fmt.Errorf("platform: %d entities for %d rows", len(cfg.Entities), cfg.Rows)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.projects[id]; dup {
		return nil, ErrDuplicateID
	}
	tbl := tabular.NewTable(schema, cfg.Rows)
	if cfg.Entities != nil {
		tbl.Entities = append([]string(nil), cfg.Entities...)
	}
	proj := &Project{
		ID:           id,
		Table:        tbl,
		Log:          tabular.NewAnswerLog(),
		refreshEvery: cfg.RefreshEvery,
		rng:          stats.NewRNG(p.seed + int64(len(p.projects))),
	}
	if proj.refreshEvery <= 0 {
		proj.refreshEvery = 25
	}
	if cfg.UseTCrowdAssignment {
		proj.sys = assign.NewTCrowdSystem(p.seed)
	}
	p.projects[id] = proj
	return proj, nil
}

// Project returns a registered project.
func (p *Platform) Project(id string) (*Project, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[id]
	if !ok {
		return nil, ErrNoProject
	}
	return proj, nil
}

// ProjectIDs lists projects sorted by id.
func (p *Platform) ProjectIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.projects))
	for id := range p.projects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Task is what a worker receives: the cell plus everything needed to
// render the question.
type Task struct {
	Row    int      `json:"row"`
	Entity string   `json:"entity"`
	Column string   `json:"column"`
	Type   string   `json:"type"`
	Labels []string `json:"labels,omitempty"`
}

// RequestTasks assigns up to k cells to worker u (the external-HIT hook):
// via the project's T-Crowd engine when enabled, otherwise
// fewest-answers-first with random tie-breaking.
func (p *Platform) RequestTasks(projectID string, u tabular.WorkerID, k int) ([]Task, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[projectID]
	if !ok {
		return nil, ErrNoProject
	}
	if k <= 0 {
		k = proj.Table.NumCols()
	}
	var cells []tabular.Cell
	if proj.sys != nil {
		if proj.sinceRefresh == 0 { // also covers the very first request
			if err := proj.sys.Refresh(proj.Table, proj.Log); err != nil {
				return nil, err
			}
		}
		cells = proj.sys.Select(u, k, proj.Log)
	}
	if len(cells) == 0 {
		cells = proj.fewestAnswersFirst(u, k)
	}
	out := make([]Task, len(cells))
	for i, c := range cells {
		col := proj.Table.Schema.Columns[c.Col]
		out[i] = Task{
			Row:    c.Row,
			Entity: proj.Table.Entities[c.Row],
			Column: col.Name,
			Type:   col.Type.String(),
			Labels: col.Labels,
		}
	}
	return out, nil
}

// fewestAnswersFirst returns up to k cells unanswered by u, preferring
// cells with the fewest collected answers.
func (proj *Project) fewestAnswersFirst(u tabular.WorkerID, k int) []tabular.Cell {
	type cand struct {
		c tabular.Cell
		n int
		r float64
	}
	var cands []cand
	answered := map[tabular.Cell]bool{}
	for _, a := range proj.Log.ByWorker(u) {
		answered[a.Cell] = true
	}
	for i := 0; i < proj.Table.NumRows(); i++ {
		for j := 0; j < proj.Table.NumCols(); j++ {
			c := tabular.Cell{Row: i, Col: j}
			if answered[c] {
				continue
			}
			cands = append(cands, cand{c: c, n: proj.Log.CountByCell(c), r: proj.rng.Float64()})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].n != cands[b].n {
			return cands[a].n < cands[b].n
		}
		return cands[a].r < cands[b].r
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]tabular.Cell, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].c
	}
	return out
}

// Submit records worker u's answer for (row, column). Values are validated
// against the schema, and double answers by the same worker are rejected.
func (p *Platform) Submit(projectID string, u tabular.WorkerID, row int, column string, value tabular.Value) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[projectID]
	if !ok {
		return ErrNoProject
	}
	j := proj.Table.Schema.ColumnIndex(column)
	if j < 0 {
		return fmt.Errorf("platform: unknown column %q", column)
	}
	if row < 0 || row >= proj.Table.NumRows() {
		return fmt.Errorf("platform: row %d outside project (%d rows)", row, proj.Table.NumRows())
	}
	if err := value.CheckAgainst(proj.Table.Schema.Columns[j]); err != nil {
		return err
	}
	if u == "" {
		return errors.New("platform: empty worker id")
	}
	cell := tabular.Cell{Row: row, Col: j}
	if proj.Log.HasAnswered(u, cell) {
		return ErrAlreadyAnswered
	}
	proj.Log.Add(tabular.Answer{Worker: u, Cell: cell, Value: value})
	proj.sinceRefresh++
	if proj.sinceRefresh >= proj.refreshEvery {
		proj.sinceRefresh = 0
	}
	return nil
}

// InferenceResult is the requester-facing output: estimates plus worker
// qualities.
type InferenceResult struct {
	Estimates metrics.Estimates
	// WorkerQuality maps workers to their unified quality q_u.
	WorkerQuality map[tabular.WorkerID]float64
	// Iterations and Converged report EM behaviour.
	Iterations int
	Converged  bool
}

// RunInference runs T-Crowd truth inference over the project's answers.
// The first call pays a cold fit (on a snapshot, so submissions continue
// meanwhile); every later call streams only the answers submitted since
// the previous call into the cached model (core.Ingest) and re-converges
// it with an incremental polish — refresh cost scales with the submission
// delta, not the log. With no new answers the cached fit is served as is.
func (p *Platform) RunInference(projectID string) (*InferenceResult, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	p.mu.Unlock()
	if !ok {
		return nil, ErrNoProject
	}

	// One inference at a time per project: the incremental path mutates
	// the cached model in place.
	proj.inferMu.Lock()
	defer proj.inferMu.Unlock()

	// Snapshot the submission delta under the platform lock. Project logs
	// are append-only and reloads build fresh projects, so the cached fit
	// is always for a prefix of the current log.
	p.mu.Lock()
	tbl := proj.Table
	total := proj.Log.Len()
	m := proj.lastModel
	var batch []tabular.Answer
	if m != nil && total > proj.logAtModel {
		batch = append([]tabular.Answer(nil), proj.Log.All()[proj.logAtModel:total]...)
	}
	p.mu.Unlock()

	if m == nil {
		// Cold start on a snapshot clone: EM may run long, and Submit
		// must not block behind it.
		p.mu.Lock()
		snap := proj.Log.Clone()
		p.mu.Unlock()
		fit, err := core.Infer(tbl, snap, core.Options{MaxIter: 50})
		if err != nil {
			return nil, err
		}
		m = fit
		p.mu.Lock()
		proj.lastModel, proj.logAtModel = m, snap.Len()
		p.mu.Unlock()
	} else if len(batch) > 0 {
		// Streaming refresh: absorb the delta in place. The polish keeps
		// the full iteration budget — seeding at the previous optimum
		// shortens the path to convergence, it must not lower the
		// convergence guarantee of requester-facing estimates; runs that
		// start near the optimum still stop after a couple of iterations
		// via the tolerance.
		if err := m.Ingest(batch); err != nil {
			return nil, err
		}
		m.RefreshIncremental(50)
		p.mu.Lock()
		proj.logAtModel = total
		p.mu.Unlock()
	}

	res := &InferenceResult{
		Estimates:     m.Estimates(),
		WorkerQuality: make(map[tabular.WorkerID]float64, len(m.WorkerIDs)),
		Iterations:    m.Iterations,
		Converged:     m.Converged,
	}
	for _, u := range m.WorkerIDs {
		res.WorkerQuality[u] = m.WorkerQuality(u)
	}
	return res, nil
}

// Stats summarises collection progress.
type Stats struct {
	Rows           int     `json:"rows"`
	Columns        int     `json:"columns"`
	Cells          int     `json:"cells"`
	Answers        int     `json:"answers"`
	Workers        int     `json:"workers"`
	AnswersPerTask float64 `json:"answers_per_task"`
}

// Stats returns collection progress for a project.
func (p *Platform) Stats(projectID string) (Stats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[projectID]
	if !ok {
		return Stats{}, ErrNoProject
	}
	return Stats{
		Rows:           proj.Table.NumRows(),
		Columns:        proj.Table.NumCols(),
		Cells:          proj.Table.NumCells(),
		Answers:        proj.Log.Len(),
		Workers:        proj.Log.NumWorkers(),
		AnswersPerTask: float64(proj.Log.Len()) / float64(proj.Table.NumCells()),
	}, nil
}

// persisted wire format.
type projectJSON struct {
	ID       string          `json:"id"`
	Schema   tabular.Schema  `json:"schema"`
	Entities []string        `json:"entities"`
	Answers  json.RawMessage `json:"answers"`
	TCrowd   bool            `json:"tcrowd_assignment"`
}

type platformJSON struct {
	Projects []projectJSON `json:"projects"`
}

// Save serialises every project (schema, entities, answer log) as JSON.
func (p *Platform) Save(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out platformJSON
	for _, id := range p.projectIDsLocked() {
		proj := p.projects[id]
		var buf bytes.Buffer
		if err := tabular.EncodeAnswers(&buf, proj.Table.Schema, proj.Log); err != nil {
			return err
		}
		out.Projects = append(out.Projects, projectJSON{
			ID:       proj.ID,
			Schema:   proj.Table.Schema,
			Entities: proj.Table.Entities,
			Answers:  json.RawMessage(buf.Bytes()),
			TCrowd:   proj.sys != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func (p *Platform) projectIDsLocked() []string {
	out := make([]string, 0, len(p.projects))
	for id := range p.projects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load restores a platform previously written by Save.
func Load(r io.Reader, seed int64) (*Platform, error) {
	var in platformJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	p := New(seed)
	for _, pj := range in.Projects {
		proj, err := p.CreateProject(pj.ID, pj.Schema, ProjectConfig{
			Rows:                len(pj.Entities),
			Entities:            pj.Entities,
			UseTCrowdAssignment: pj.TCrowd,
		})
		if err != nil {
			return nil, err
		}
		log, err := tabular.DecodeAnswers(bytes.NewReader(pj.Answers), pj.Schema)
		if err != nil {
			return nil, err
		}
		proj.Log = log
	}
	return p, nil
}
