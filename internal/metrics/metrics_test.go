package metrics

import (
	"math"
	"strings"
	"testing"

	"tcrowd/internal/tabular"
)

func fixtureTable() *tabular.Table {
	s := tabular.Schema{
		Key: "id",
		Columns: []tabular.Column{
			{Name: "color", Type: tabular.Categorical, Labels: []string{"r", "g", "b"}},
			{Name: "size", Type: tabular.Continuous, Min: 0, Max: 100},
		},
	}
	t := tabular.NewTable(s, 4)
	t.Truth = [][]tabular.Value{
		{tabular.LabelValue(0), tabular.NumberValue(10)},
		{tabular.LabelValue(1), tabular.NumberValue(20)},
		{tabular.LabelValue(2), tabular.NumberValue(30)},
		{tabular.LabelValue(0), tabular.NumberValue(40)},
	}
	return t
}

func TestEvaluatePerfect(t *testing.T) {
	tbl := fixtureTable()
	est := NewEstimates(tbl)
	for i := 0; i < tbl.NumRows(); i++ {
		for j := 0; j < tbl.NumCols(); j++ {
			est[i][j] = tbl.Truth[i][j]
		}
	}
	rep := Evaluate(tbl, est, nil)
	if rep.ErrorRate != 0 {
		t.Fatalf("ErrorRate=%v", rep.ErrorRate)
	}
	if rep.MNAD != 0 {
		t.Fatalf("MNAD=%v", rep.MNAD)
	}
	if rep.CatCells != 4 || rep.ContCells != 4 {
		t.Fatal("cell counts")
	}
}

func TestEvaluateErrorRate(t *testing.T) {
	tbl := fixtureTable()
	est := NewEstimates(tbl)
	for i := 0; i < tbl.NumRows(); i++ {
		est[i][0] = tabular.LabelValue(1) // correct only for row 1
		est[i][1] = tbl.Truth[i][1]
	}
	rep := Evaluate(tbl, est, nil)
	if math.Abs(rep.ErrorRate-0.75) > 1e-12 {
		t.Fatalf("ErrorRate=%v want 0.75", rep.ErrorRate)
	}
}

func TestEvaluateMNADNormalisation(t *testing.T) {
	tbl := fixtureTable()
	est := NewEstimates(tbl)
	for i := 0; i < tbl.NumRows(); i++ {
		est[i][0] = tbl.Truth[i][0]
		// Constant offset of +5 in the continuous column.
		est[i][1] = tabular.NumberValue(tbl.Truth[i][1].X + 5)
	}
	// Truth std of {10,20,30,40} (population) = sqrt(125).
	rep := Evaluate(tbl, est, nil)
	want := 5 / math.Sqrt(125)
	if math.Abs(rep.MNAD-want) > 1e-12 {
		t.Fatalf("MNAD=%v want %v", rep.MNAD, want)
	}

	// With an answer log, the denominator switches to the answers' std.
	log := tabular.NewAnswerLog()
	for _, x := range []float64{0, 10, 20, 70} { // std = sqrt(725)
		log.Add(tabular.Answer{Worker: "u", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(x)})
	}
	rep2 := Evaluate(tbl, est, log)
	want2 := 5 / math.Sqrt(725)
	if math.Abs(rep2.MNAD-want2) > 1e-12 {
		t.Fatalf("MNAD(log)=%v want %v", rep2.MNAD, want2)
	}
}

func TestEvaluateSkipsNones(t *testing.T) {
	tbl := fixtureTable()
	est := NewEstimates(tbl)
	est[0][0] = tabular.LabelValue(0) // only one estimated cell
	rep := Evaluate(tbl, est, nil)
	if rep.CatCells != 1 || rep.ErrorRate != 0 {
		t.Fatal("None cells must be skipped")
	}
	if !math.IsNaN(rep.MNAD) {
		t.Fatal("MNAD must be NaN with no continuous estimates")
	}
	// No truth at all.
	noTruth := tabular.NewTable(tbl.Schema, 2)
	rep2 := Evaluate(noTruth, NewEstimates(noTruth), nil)
	if !math.IsNaN(rep2.ErrorRate) || !math.IsNaN(rep2.MNAD) {
		t.Fatal("truthless evaluation must be NaN")
	}
}

func TestReportString(t *testing.T) {
	r := Report{ErrorRate: 0.0441, MNAD: math.NaN()}
	s := r.String()
	if !strings.Contains(s, "0.0441") || !strings.Contains(s, "MNAD=/") {
		t.Fatalf("String()=%q", s)
	}
}

func TestEstimatesAccessors(t *testing.T) {
	tbl := fixtureTable()
	est := NewEstimates(tbl)
	c := tabular.Cell{Row: 2, Col: 1}
	est.Set(c, tabular.NumberValue(7))
	if !est.At(c).Equal(tabular.NumberValue(7)) {
		t.Fatal("Set/At")
	}
}

func TestColumnDenominatorsDegenerate(t *testing.T) {
	tbl := fixtureTable()
	// Constant truth column -> zero std, Evaluate must not divide by 0.
	for i := range tbl.Truth {
		tbl.Truth[i][1] = tabular.NumberValue(5)
	}
	est := NewEstimates(tbl)
	for i := 0; i < tbl.NumRows(); i++ {
		est[i][0] = tbl.Truth[i][0]
		est[i][1] = tabular.NumberValue(5)
	}
	rep := Evaluate(tbl, est, nil)
	if rep.MNAD != 0 {
		t.Fatalf("degenerate column should give MNAD 0, got %v", rep.MNAD)
	}
}

func TestWorkerAttributeError(t *testing.T) {
	tbl := fixtureTable()
	log := tabular.NewAnswerLog()
	// u1: 1 right, 1 wrong on categorical; two continuous answers off by
	// +1 and -1 (std of diffs = 1).
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(0)})
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 1, Col: 0}, Value: tabular.LabelValue(0)})
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(11)})
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 1, Col: 1}, Value: tabular.NumberValue(19)})
	m := WorkerAttributeError(tbl, log)
	row := m["u1"]
	if math.Abs(row[0]-0.5) > 1e-12 {
		t.Fatalf("cat error = %v", row[0])
	}
	if math.Abs(row[1]-1) > 1e-12 {
		t.Fatalf("cont std = %v", row[1])
	}
	// Worker with no continuous answers gets NaN there.
	log.Add(tabular.Answer{Worker: "u2", Cell: tabular.Cell{Row: 2, Col: 0}, Value: tabular.LabelValue(2)})
	m = WorkerAttributeError(tbl, log)
	if !math.IsNaN(m["u2"][1]) || m["u2"][0] != 0 {
		t.Fatalf("u2 row = %v", m["u2"])
	}
}

func TestActualWorkerQuality(t *testing.T) {
	tbl := fixtureTable()
	log := tabular.NewAnswerLog()
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(1)}) // wrong
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 1, Col: 0}, Value: tabular.LabelValue(1)}) // right
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(12)})
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 1, Col: 1}, Value: tabular.NumberValue(18)})
	cat, cont := ActualWorkerQuality(tbl, log)
	if math.Abs(cat["u1"]-0.5) > 1e-12 {
		t.Fatalf("cat quality = %v", cat["u1"])
	}
	if cont["u1"] <= 0 {
		t.Fatalf("cont quality = %v", cont["u1"])
	}
	if _, ok := cat["ghost"]; ok {
		t.Fatal("phantom worker")
	}
}
