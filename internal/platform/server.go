package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tcrowd/api"
	"tcrowd/internal/shard"
	"tcrowd/internal/tabular"
)

// Server exposes the platform over HTTP — the interface a crowdsourcing
// frontend (or AMT external-HIT iframe) would talk to. See
// cmd/tcrowd-server/README.md for the full API reference and package api
// for the wire types.
//
// The versioned surface (stable within /v1):
//
//	POST /v1/projects                     {"id", "schema", "rows"}
//	GET  /v1/projects                     -> ["id", ...]
//	GET  /v1/projects/{id}/tasks?worker=u&count=k
//	POST /v1/projects/{id}/answers        one answer or {"answers": [...]} batch
//	GET  /v1/projects/{id}/estimates      generation-pinned read (see below)
//	GET  /v1/projects/{id}/snapshot       alias of /estimates (the endpoints merged)
//	GET  /v1/projects/{id}/watch          generation-bump stream (long-poll or SSE)
//	GET  /v1/projects/{id}/stats          collection progress
//	GET  /v1/stats                        shard-scheduler metrics
//
// All reads of model state are generation-pinned: every response serves
// one immutable published InferenceResult, identified by its generation,
// quoted in the ETag header (If-None-Match yields 304), and encoded into
// the pagination cursor so a paged walk never spans model states.
// ?generation= re-reads a retained past state; ?min_generation= is the
// refresh-if-stale knob (a value above the latest generation routes one
// coalescing refresh through the project's shard and waits — the strongly
// consistent read). The pre-v1 unversioned aliases were removed this
// release and now 404.
//
// Errors are typed: every non-2xx body is an api.ErrorEnvelope with a
// stable machine-readable code (see internal/platform/errors.go for the
// exhaustive sentinel → (status, code, retryable) table). Backpressure:
// only the ?min_generation= refresh path can answer 429 (saturated
// shard); default reads never touch the queue. POST /v1/.../answers
// records the answers and reports a shed refresh in-body instead of
// failing.
type Server struct {
	p       *Platform
	mux     *http.ServeMux
	limiter *RateLimiter
}

// NewServer wraps a platform with HTTP handlers.
func NewServer(p *Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.registerRoutes()
	return s
}

// SetRateLimiter installs a per-worker token-bucket limiter on the
// answer-submission and task-request paths (nil = unlimited, the
// default). Call before serving traffic; the limiter itself is
// goroutine-safe.
func (s *Server) SetRateLimiter(l *RateLimiter) { s.limiter = l }

// writeRateLimited renders the 429 rate_limited envelope with a computed
// Retry-After (writeErr's blanket hint is a fixed 1s; the limiter knows
// the actual refill time).
func writeRateLimited(w http.ResponseWriter, wait time.Duration) {
	spec := classifyErr(ErrRateLimited)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(wait)))
	writeJSON(w, spec.status, api.ErrorEnvelope{Err: api.Error{
		Code:      spec.code,
		Message:   ErrRateLimited.Error(),
		Retryable: spec.retryable,
	}})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// WriteError renders any error as the typed wire envelope through the
// exhaustive sentinel table — the renderer the cluster edge shares with
// the in-process handlers, so a routing rejection (421 not_home with the
// envelope Home field) is byte-compatible with every other error the
// server emits.
func WriteError(w http.ResponseWriter, err error) { writeErr(w, err) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders any error as the typed envelope, resolving status, code
// and retryability through the exhaustive sentinel table (errors.go). A
// *BatchError renders as CodeBatchRejected with per-item detail.
func writeErr(w http.ResponseWriter, err error) {
	var be *BatchError
	if errors.As(err, &be) {
		writeBatchErr(w, be)
		return
	}
	spec := classifyErr(err)
	if spec.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	env := api.ErrorEnvelope{Err: api.Error{
		Code:      spec.code,
		Message:   err.Error(),
		Retryable: spec.retryable,
	}}
	// A not_home rejection carries the home node's base URL so clients
	// (and the SDK automatically) re-issue the request there.
	var nh *NotHomeError
	if errors.As(err, &nh) {
		env.Err.Home = nh.Home
	}
	writeJSON(w, spec.status, env)
}

// writeBatchErr renders an atomic batch rejection: 400, CodeBatchRejected,
// one item per offending answer (each with its own code).
func writeBatchErr(w http.ResponseWriter, be *BatchError) {
	items := make([]api.ItemError, len(be.Items))
	for i, it := range be.Items {
		items[i] = api.ItemError{
			Index:   it.Index,
			Code:    classifyErr(it.Err).code,
			Message: it.Err.Error(),
		}
	}
	writeJSON(w, http.StatusBadRequest, api.ErrorEnvelope{Err: api.Error{
		Code:    api.CodeBatchRejected,
		Message: fmt.Sprintf("%d invalid answer(s); nothing recorded", len(items)),
		Items:   items,
	}})
}

type createProjectReq struct {
	ID     string         `json:"id"`
	Schema tabular.Schema `json:"schema"`
	Rows   int            `json:"rows"`
	TCrowd bool           `json:"tcrowd_assignment"`
	// RefreshEvery bounds submissions between inference refreshes
	// (0 = default 25, 1 = refresh per answer).
	RefreshEvery int `json:"refresh_every"`
	// FsyncPolicy overrides the server-wide WAL fsync policy for this
	// project ("always", "interval", "never"; empty = server default).
	FsyncPolicy string `json:"fsync_policy"`
	// PolishFrac is the fraction of streaming refreshes that run a full
	// EM polish instead of the O(batch) incremental pass ([0,1]; 0 and 1
	// both mean every refresh polishes — the pre-knob behaviour).
	PolishFrac float64 `json:"polish_frac"`
	// Reputation enables the streaming worker-reputation engine (spam
	// defense: down-weighting, quarantine, auto-ban).
	Reputation bool `json:"reputation"`
}

func (s *Server) createProject(w http.ResponseWriter, r *http.Request) {
	var req createProjectReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	if req.ID == "" {
		writeErr(w, errors.New("platform: project id required"))
		return
	}
	_, err := s.p.CreateProject(req.ID, req.Schema, ProjectConfig{
		Rows:                req.Rows,
		UseTCrowdAssignment: req.TCrowd,
		RefreshEvery:        req.RefreshEvery,
		FsyncPolicy:         req.FsyncPolicy,
		PolishFrac:          req.PolishFrac,
		Reputation:          req.Reputation,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.CreateProjectResponse{ID: req.ID})
}

func (s *Server) listProjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.ProjectIDs())
}

// deleteProject removes a project and destroys its durable log (204 on
// success). Deletion is permanent: the answers are paid human work, so
// export them first if they matter (GET estimates / the -state export).
func (s *Server) deleteProject(w http.ResponseWriter, r *http.Request) {
	if err := s.p.DeleteProject(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) tasks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, errors.New("platform: worker query parameter required"))
		return
	}
	count, err := queryInt(r, "count", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	if ok, wait := s.limiter.Allow(worker); !ok {
		writeRateLimited(w, wait)
		return
	}
	tasks, err := s.p.RequestTasks(id, tabular.WorkerID(worker), count)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tasks)
}

// queryInt parses an optional non-negative integer query parameter,
// rejecting trailing garbage ("5x") and negatives with a typed
// bad_request.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("platform: bad %s %q: %w", name, raw, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("platform: %s must be non-negative, got %d", name, n)
	}
	return n, nil
}

// resolveAnswer converts one wire answer (column by name, label by string)
// into a platform answer plus its submission metadata, using the
// project's precomputed label index. Only immutable project state
// (schema, label maps) is touched, so it runs without the platform lock.
func resolveAnswer(proj *Project, a api.Answer) (tabular.Answer, AnswerMeta, error) {
	meta := AnswerMeta{WorkTimeMs: a.WorkTimeMs, Client: a.Client}
	if a.WorkTimeMs < 0 {
		return tabular.Answer{}, meta, fmt.Errorf("platform: negative work_time_ms %d", a.WorkTimeMs)
	}
	j := proj.Table.Schema.ColumnIndex(a.Column)
	if j < 0 {
		return tabular.Answer{}, meta, fmt.Errorf("platform: unknown column %q", a.Column)
	}
	if a.Row < 0 || a.Row >= proj.Table.NumRows() {
		return tabular.Answer{}, meta, fmt.Errorf("platform: row %d outside project (%d rows)", a.Row, proj.Table.NumRows())
	}
	var v tabular.Value
	switch {
	case a.Label != nil && a.Number != nil:
		return tabular.Answer{}, meta, errors.New("platform: answer sets both label and number")
	case a.Label != nil:
		idx, ok := proj.LabelIndex(j, *a.Label)
		if !ok {
			return tabular.Answer{}, meta, fmt.Errorf("platform: unknown label %q", *a.Label)
		}
		v = tabular.LabelValue(idx)
	case a.Number != nil:
		v = tabular.NumberValue(*a.Number)
	default:
		return tabular.Answer{}, meta, errors.New("platform: answer needs label or number")
	}
	return tabular.Answer{
		Worker: tabular.WorkerID(a.Worker),
		Cell:   tabular.Cell{Row: a.Row, Col: j},
		Value:  v,
	}, meta, nil
}

// resolveBatch resolves a slice of wire answers, collecting per-item
// errors instead of stopping at the first (batch rejections report every
// offending row at once). metas stays index-aligned with resolved.
func resolveBatch(proj *Project, answers []api.Answer) ([]tabular.Answer, []AnswerMeta, []BatchItemError) {
	resolved := make([]tabular.Answer, 0, len(answers))
	metas := make([]AnswerMeta, 0, len(answers))
	var bad []BatchItemError
	for i, a := range answers {
		ta, meta, err := resolveAnswer(proj, a)
		if err != nil {
			bad = append(bad, BatchItemError{Index: i, Err: err})
			continue
		}
		resolved = append(resolved, ta)
		metas = append(metas, meta)
	}
	return resolved, metas, bad
}

// submitV1 handles POST /v1/projects/{id}/answers: one answer or an
// "answers" batch. Batches are atomic — validated in full (every failure
// reported, nothing recorded on any failure) and recorded with at most one
// coalesced refresh enqueue. Recorded answers are always acknowledged 201;
// shard backpressure surfaces as refresh:"deferred" plus a Retry-After
// hint, never as a per-answer 429 (that legacy behaviour lives only on the
// unversioned route).
func (s *Server) submitV1(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req api.SubmitAnswersRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	batch := req.Answers != nil
	if batch && (req.Worker != "" || req.Column != "" || req.Label != nil || req.Number != nil) {
		writeErr(w, errors.New("platform: set either the single-answer fields or \"answers\", not both"))
		return
	}
	answers := req.Answers
	if !batch {
		answers = []api.Answer{req.Answer}
	}
	if len(answers) == 0 {
		writeErr(w, errors.New("platform: empty answer batch"))
		return
	}
	if s.limiter != nil {
		demand := make(map[string]float64, 1)
		for _, a := range answers {
			demand[a.Worker]++
		}
		if ok, wait := s.limiter.TakeAll(demand); !ok {
			writeRateLimited(w, wait)
			return
		}
	}
	resolved, metas, bad := resolveBatch(proj, answers)
	if len(bad) == 0 {
		var res BatchResult
		res, err = s.p.SubmitBatchMeta(id, resolved, metas)
		if err == nil {
			if res.Refresh == RefreshDeferred {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, http.StatusCreated, api.SubmitAnswersResponse{
				Status:   "recorded",
				Recorded: res.Recorded,
				Refresh:  string(res.Refresh),
			})
			return
		}
	} else {
		err = &BatchError{Items: bad}
	}
	// Single-answer requests report the answer's own error (and code)
	// directly; batches report the composite batch_rejected envelope.
	var be *BatchError
	if !batch && errors.As(err, &be) {
		err = be.Items[0].Err
	}
	writeErr(w, err)
}

// estimatesResp / estimateJSON are the wire shapes, defined in package api
// and aliased here for the server-side tests.
type (
	estimatesResp = api.EstimatesResponse
	estimateJSON  = api.Estimate
)

// renderEstimates converts one immutable published InferenceResult into
// the wire shape of the merged /estimates (= /snapshot) endpoint. start
// and limit select one page of the row-major cell walk over that pinned
// snapshot: start is the cell ordinal to begin at, limit caps the
// estimates returned (0 = all), and NextCursor — re-encoding the pinned
// generation — is set when cells remain, so million-row tables stream
// page by page and every page reflects the same model state.
func renderEstimates(proj *Project, res *InferenceResult, answersNow, start, limit int) estimatesResp {
	resp := estimatesResp{
		WorkerQuality: make(map[string]float64, len(res.WorkerQuality)),
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		Generation:    res.Generation,
		AnswersSeen:   res.AnswersSeen,
		Fresh:         res.AnswersSeen == answersNow,
	}
	for u, q := range res.WorkerQuality {
		resp.WorkerQuality[string(u)] = q
	}
	cols := proj.Table.Schema.Columns
	m := len(cols)
	total := proj.Table.NumRows() * m
	for ord := start; ord < total; ord++ {
		if limit > 0 && len(resp.Estimates) >= limit {
			resp.NextCursor = encodeCursor(res.Generation, ord)
			break
		}
		i, j := ord/m, ord%m
		v := res.Estimates[i][j]
		if v.IsNone() {
			continue
		}
		ej := estimateJSON{Entity: proj.Table.Entities[i], Column: cols[j].Name}
		if v.Kind == tabular.Label {
			lbl := cols[j].Labels[v.L]
			ej.Label = &lbl
		} else {
			x := v.X
			ej.Number = &x
		}
		resp.Estimates = append(resp.Estimates, ej)
	}
	return resp
}

// encodeCursor builds the opaque-but-readable pagination cursor: the
// pinned generation and the next cell ordinal.
func encodeCursor(generation, ord int) string {
	return strconv.Itoa(generation) + ":" + strconv.Itoa(ord)
}

// decodeCursor parses a ?cursor= value.
func decodeCursor(raw string) (generation, ord int, err error) {
	g, o, ok := strings.Cut(raw, ":")
	if ok {
		if generation, err = strconv.Atoi(g); err == nil {
			ord, err = strconv.Atoi(o)
		}
	}
	if !ok || err != nil || generation <= 0 || ord < 0 {
		return 0, 0, fmt.Errorf("platform: bad cursor %q (want \"<generation>:<ordinal>\")", raw)
	}
	return generation, ord, nil
}

// etagFor quotes a generation as the strong ETag every pinned read
// carries.
func etagFor(generation int) string { return `"` + strconv.Itoa(generation) + `"` }

// etagMatches reports whether an If-None-Match header value matches the
// generation's ETag (either the exact quoted tag or the * wildcard).
func etagMatches(header string, generation int) bool {
	if header == "" {
		return false
	}
	tag := etagFor(generation)
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/") // weak compare: generations are whole-body
		if part == tag || part == "*" {
			return true
		}
	}
	return false
}

// estimates serves the merged generation-pinned read (GET .../estimates
// and its .../snapshot alias). Resolution order:
//
//   - ?cursor=<gen>:<ord> — continue a paged walk over the generation the
//     cursor pins (the retained ring keeps it addressable; 410
//     generation_gone once evicted).
//   - ?generation=N — re-read a specific retained generation from the top.
//   - ?min_generation=N — refresh-if-stale: serve the latest snapshot if
//     its generation is already >= N, otherwise route one coalescing
//     refresh through the project's shard and wait for it (the only read
//     path that can 429); a refresh absorbs the whole log, so N above any
//     published generation gives the strongly consistent read.
//   - no parameters — the latest published snapshot, one atomic pointer
//     load, never blocking on inference (404 no_snapshot before the first
//     publish).
//
// Every 200 carries ETag:"<generation>"; If-None-Match on an unchanged
// generation short-circuits to 304 with no body.
func (s *Server) estimates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	generation, err := queryInt(r, "generation", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	minGen, err := queryInt(r, "min_generation", 0)
	if err != nil {
		writeErr(w, err)
		return
	}

	var (
		res   *InferenceResult
		start int
	)
	switch {
	case r.URL.Query().Get("cursor") != "":
		var gen int
		if gen, start, err = decodeCursor(r.URL.Query().Get("cursor")); err != nil {
			break
		}
		if generation != 0 && generation != gen {
			err = fmt.Errorf("platform: cursor pins generation %d but ?generation=%d", gen, generation)
			break
		}
		res, err = s.p.SnapshotAt(id, gen)
	case generation != 0:
		res, err = s.p.SnapshotAt(id, generation)
	case minGen != 0:
		res, err = s.p.Snapshot(id)
		if err != nil || res.Generation < minGen {
			// Stale (or nothing published yet): one coalescing refresh on
			// the project's shard brings the snapshot up to the full log.
			res, err = s.p.RunInference(id)
		}
	default:
		res, err = s.p.Snapshot(id)
	}
	if err != nil {
		writeErr(w, err)
		return
	}

	w.Header().Set("ETag", etagFor(res.Generation))
	if etagMatches(r.Header.Get("If-None-Match"), res.Generation) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	st, _ := s.p.Stats(id)
	writeJSON(w, http.StatusOK, renderEstimates(proj, res, st.Answers, start, limit))
}

// Long-poll bounds: the default and maximum ?timeout= of a watch
// long-poll. A 0 timeout degrades to an instant poll (current event or
// 204).
const (
	watchDefaultTimeout = 30 * time.Second
	watchMaxTimeout     = 120 * time.Second
)

// watch serves GET /v1/projects/{id}/watch — push-based delivery of
// generation bumps, fed by the snapshot-publication notifier on the shard
// worker's copy-on-publish path.
//
// Long-poll (default): ?after=<generation> answers immediately with the
// latest event once the project has published past `after` (Coalesced set
// when more than one bump was missed), otherwise parks the request until
// the next publish or ?timeout= seconds (204 No Content on timeout —
// re-poll with the same after). Pollers chain after=<last generation
// seen>.
//
// SSE (Accept: text/event-stream): streams one `event: generation` frame
// per publish until the client disconnects or the platform shuts down,
// with the same catch-up event on connect and the same drop-to-latest
// coalescing for slow consumers.
func (s *Server) watch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after, err := queryInt(r, "after", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	timeoutSec, err := queryInt(r, "timeout", int(watchDefaultTimeout/time.Second))
	if err != nil {
		writeErr(w, err)
		return
	}
	timeout := min(time.Duration(timeoutSec)*time.Second, watchMaxTimeout)

	// Subscribe BEFORE the catch-up check: a publish landing between the
	// two is then either caught up or delivered on the channel, never
	// lost.
	watcher, err := s.p.Watch(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer watcher.Close()
	catchup, ok, err := s.p.LatestEvent(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if ok && catchup.Generation > after {
		catchup.Coalesced = catchup.Generation > after+1
	} else {
		ok = false
	}

	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.watchSSE(w, r, watcher, catchup, ok, after)
		return
	}

	if ok {
		w.Header().Set("ETag", etagFor(catchup.Generation))
		writeJSON(w, http.StatusOK, catchup)
		return
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		select {
		case ev, open := <-watcher.Events():
			if !open {
				writeErr(w, fmt.Errorf("platform: watch ended: %w", shard.ErrClosed))
				return
			}
			if ev.Generation <= after {
				continue // stale buffered bump from before this poll's after
			}
			// A generation jump means this watcher's buffer dropped
			// intermediate bumps (or the poll raced multiple publishes):
			// mark the delivery that follows the gap.
			ev.Coalesced = ev.Generation > after+1
			w.Header().Set("ETag", etagFor(ev.Generation))
			writeJSON(w, http.StatusOK, ev)
			return
		case <-t.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// watchSSE streams generation events until the client goes away or the
// platform closes. Heartbeat comments keep idle connections alive through
// proxies.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, watcher *Watcher, catchup api.WatchEvent, haveCatchup bool, after int) {
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev api.WatchEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", api.WatchEventGeneration, data); err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}
	last := after
	if haveCatchup {
		if !writeEvent(catchup) {
			return
		}
		last = catchup.Generation
	} else if canFlush {
		flusher.Flush() // commit the headers so the client sees the stream open
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-watcher.Events():
			if !open {
				return // platform shutting down: end the stream cleanly
			}
			if ev.Generation <= last {
				continue // buffered duplicate of the catch-up event
			}
			// Gap after a buffer overflow: flag the event that follows it.
			ev.Coalesced = ev.Generation > last+1
			if !writeEvent(ev) {
				return
			}
			last = ev.Generation
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// shardStatsResp is the GET /v1/stats payload, defined in package api and
// aliased for the server-side tests.
type shardStatsResp = api.ShardStatsResponse

func (s *Server) shardStats(w http.ResponseWriter, r *http.Request) {
	ms := s.p.ShardMetrics()
	resp := shardStatsResp{Workers: s.p.NumShardWorkers(), Shards: make([]api.ShardMetrics, len(ms))}
	for i, m := range ms {
		resp.Shards[i] = api.ShardMetrics{
			Shard:     m.Shard,
			Depth:     m.Depth,
			Enqueued:  m.Enqueued,
			Coalesced: m.Coalesced,
			Rejected:  m.Rejected,
			Completed: m.Completed,
			Failed:    m.Failed,
			BusyNs:    m.BusyNs,
			LastJobNs: m.LastJobNs,
		}
		resp.Totals.Depth += m.Depth
		resp.Totals.Enqueued += m.Enqueued
		resp.Totals.Coalesced += m.Coalesced
		resp.Totals.Rejected += m.Rejected
		resp.Totals.Completed += m.Completed
		resp.Totals.Failed += m.Failed
		resp.Totals.BusyNs += m.BusyNs
	}
	if resp.Totals.Completed > 0 {
		resp.Totals.AvgJobMs = float64(resp.Totals.BusyNs) / float64(resp.Totals.Completed) / 1e6
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	st, err := s.p.Stats(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// workers serves GET /v1/projects/{id}/workers — the reputation roster.
// With the defense off the response is {"defense": false} and an empty
// list; with it on, one row per observed worker (state, score, counters,
// current inference weight), sorted by worker ID.
func (s *Server) workers(w http.ResponseWriter, r *http.Request) {
	infos, enabled, err := s.p.WorkerReputations(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := api.WorkersResponse{Defense: enabled, Workers: []api.WorkerReputation{}}
	for _, in := range infos {
		resp.Workers = append(resp.Workers, api.WorkerReputation{
			Worker: string(in.Worker),
			State:  in.State.String(),
			Score:  in.Score,
			Seen:   in.Seen,
			Judged: in.Judged,
			Weight: in.Weight,
			ModelQ: in.ModelQ,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
