package assign

import (
	"math"
	"slices"

	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// ErrorModel is the attribute-correlation model of Sec. 5.2: marginal error
// distributions per column (Table 4), conditional error distributions per
// ordered column pair (Table 5, four datatype cases), and the correlation
// coefficients W_jk (Eq. 8) that weight the per-attribute conditionals in
// the linear combination of Eq. 7.
//
// An "error" is defined against the current estimated truth: for a
// categorical answer e = 1{a != T-hat}; for a continuous answer
// e = z(a) - z(T-hat) in standardized units. The model keeps one error per
// (worker, cell) — a worker's latest answer on a cell defines their error
// there — so an error is a removable unit and the whole model can be
// maintained from sufficient statistics.
//
// # Sufficient-statistics maintenance
//
// Every fitted distribution here is a closed-form function of low-order
// moment sums: Bernoulli and Normal fits need (n, Σe, Σe²); the four
// Table 5 conditionals and the Pearson W_jk need, per unordered column
// pair, (n, Σx, Σy, Σx², Σy², Σxy, Σx²y, Σy²x) over the co-observed
// (e_j, e_k) pairs of each (worker, row) error vector — the third-order
// cross moments are what lets a pair's class-conditional Normal fits
// (cases b-d, where one side is a 0/1 indicator) be recovered from sums.
// The model therefore maintains those accumulators incrementally:
//
//   - Rebuild recomputes everything from scratch against fresh estimates —
//     the polish-anchor path, with every buffer arena-reused so a steady
//     rebuild allocates nothing.
//   - UpdateCells adjusts only the accumulator contributions of the given
//     cells' errors (remove old value, add new) and refits the
//     closed-forms — O(answers in the touched cells × row width), the
//     streaming-refresh path.
//
// Continuous errors are winsorized at 3 robust sigmas per column; the
// bounds are frozen at Rebuild time and reused verbatim by UpdateCells and
// the query paths, so incremental updates never reshuffle every stored
// error. Incremental add/remove accumulates float rounding relative to a
// from-scratch pass; the periodic Rebuild at polish anchors resets it.
type ErrorModel struct {
	m *core.Model
	// nCols/rows mirror the table dimensions.
	nCols, rows int
	// isCat[j] marks categorical columns.
	isCat []bool
	// minPairs is the sample-size floor below which a pair falls back to
	// the marginal.
	minPairs int

	// Worker registry: widx maps a worker to its slot; rowVec[w*rows+i]
	// holds the errArena offset of (worker w, row i)'s dense error vector
	// (nCols wide, NaN marking columns without an observed error), or -1.
	widx    map[tabular.WorkerID]int
	workers []tabular.WorkerID
	rowVec  []int32
	// vecSlots lists the rowVec slots with live vectors, for full passes.
	vecSlots []int32
	errArena []float64

	// marg[j] are the per-column marginal moment sums; pairs[j*nCols+k]
	// (j < k only) the per-pair sums with x = e_j, y = e_k.
	marg  []margAcc
	pairs []pairAcc

	// Fitted closed-forms, refreshed by fitAll after every accumulator
	// change. pairFit/pairOK/w are flat [nCols*nCols] ordered-pair tables.
	margCat  []stats.Bernoulli
	margCont []stats.Normal
	pairFit  []pairModel
	pairOK   []bool
	w        []float64

	// boundLo/boundHi winsorize continuous errors per column at 3 robust
	// sigmas: crowd error is long-tailed (a spammer's wild answers would
	// otherwise dominate every second-moment estimate). Frozen at Rebuild.
	boundLo, boundHi []float64

	// Rebuild scratch: per-column continuous error samples (for the robust
	// bounds) and the |x - med| deviations buffer.
	colScratch [][]float64
	devScratch []float64
}

// margAcc holds one column's marginal moment sums over its current errors.
type margAcc struct {
	n, sum, sumsq float64
}

func (a *margAcc) add(x float64)    { a.n++; a.sum += x; a.sumsq += x * x }
func (a *margAcc) remove(x float64) { a.n--; a.sum -= x; a.sumsq -= x * x }

// pairAcc holds one unordered column pair's moment sums over the
// co-observed error pairs (x = e_j, y = e_k with j < k).
type pairAcc struct {
	n             float64
	sx, sy        float64
	sxx, syy, sxy float64
	sxxy, syyx    float64 // Σx²y and Σy²x — the cat-split cross moments
}

func (a *pairAcc) add(x, y float64) {
	a.n++
	a.sx += x
	a.sy += y
	a.sxx += x * x
	a.syy += y * y
	a.sxy += x * y
	a.sxxy += x * x * y
	a.syyx += y * y * x
}

func (a *pairAcc) remove(x, y float64) {
	a.n--
	a.sx -= x
	a.sy -= y
	a.sxx -= x * x
	a.syy -= y * y
	a.sxy -= x * y
	a.sxxy -= x * x * y
	a.syyx -= y * y * x
}

// pairModel holds the conditional distribution P(e_j | e_k) in the four
// datatype cases of Table 5.
type pairModel struct {
	jCat, kCat bool
	// catCat: P(e_j = 1 | e_k = 0) and P(e_j = 1 | e_k = 1).
	pGivenRight, pGivenWrong float64
	// contCont: joint bivariate normal of (e_j, e_k); conditional comes
	// from ConditionalY with the roles swapped accordingly.
	joint stats.BivariateNormal
	// contGivenCat (j continuous, k categorical): N when e_k = 0 / 1.
	contRight, contWrong stats.Normal
	// catGivenCont (j categorical, k continuous): per-class normals of e_k
	// given e_j plus the marginal P(e_j = 1), combined by Bayes.
	ekGivenRight, ekGivenWrong stats.Normal
	pj                         float64
}

// NewErrorModel returns an empty model bound to m; Rebuild fits it.
func NewErrorModel(m *core.Model) *ErrorModel {
	tbl := m.Table
	nCols := tbl.NumCols()
	em := &ErrorModel{
		m:          m,
		nCols:      nCols,
		rows:       tbl.NumRows(),
		isCat:      make([]bool, nCols),
		minPairs:   8,
		widx:       make(map[tabular.WorkerID]int),
		marg:       make([]margAcc, nCols),
		pairs:      make([]pairAcc, nCols*nCols),
		margCat:    make([]stats.Bernoulli, nCols),
		margCont:   make([]stats.Normal, nCols),
		pairFit:    make([]pairModel, nCols*nCols),
		pairOK:     make([]bool, nCols*nCols),
		w:          make([]float64, nCols*nCols),
		boundLo:    make([]float64, nCols),
		boundHi:    make([]float64, nCols),
		colScratch: make([][]float64, nCols),
	}
	for j := 0; j < nCols; j++ {
		em.isCat[j] = tbl.Schema.Columns[j].Type == tabular.Categorical
	}
	return em
}

// BuildErrorModel fits the marginal and pairwise error distributions from
// the model's answers and current estimates.
func BuildErrorModel(m *core.Model) *ErrorModel {
	em := NewErrorModel(m)
	em.Rebuild(m.Estimates())
	return em
}

// workerOf returns worker u's slot, registering a first-seen worker (and
// growing the row-vector table) on the way.
func (em *ErrorModel) workerOf(u tabular.WorkerID) int {
	k, ok := em.widx[u]
	if !ok {
		k = len(em.workers)
		em.widx[u] = k
		em.workers = append(em.workers, u)
		for r := 0; r < em.rows; r++ {
			em.rowVec = append(em.rowVec, -1)
		}
	}
	return k
}

// vecFor returns (allocating on first touch) the dense error vector of
// (worker slot w, row i). Vectors live in one arena addressed by offset, so
// arena growth never invalidates existing vectors.
func (em *ErrorModel) vecFor(w, i int) []float64 {
	slot := int32(w*em.rows + i)
	if off := em.rowVec[slot]; off >= 0 {
		return em.errArena[off : off+int32(em.nCols)]
	}
	off := len(em.errArena)
	for j := 0; j < em.nCols; j++ {
		em.errArena = append(em.errArena, math.NaN())
	}
	em.rowVec[slot] = int32(off)
	em.vecSlots = append(em.vecSlots, slot)
	return em.errArena[off : off+em.nCols]
}

// answerError computes one answer's error against guess, clamping
// continuous errors into the frozen winsorization bounds (when clamp is
// set and the column has non-degenerate bounds).
func (em *ErrorModel) answerError(a tabular.Answer, guess tabular.Value, clamp bool) float64 {
	j := a.Cell.Col
	if a.Value.Kind == tabular.Label {
		if a.Value.Equal(guess) {
			return 0
		}
		return 1
	}
	e := em.m.ToZ(j, a.Value.X) - em.m.ToZ(j, guess.X)
	if clamp && em.boundHi[j] > em.boundLo[j] {
		e = stats.Clamp(e, em.boundLo[j], em.boundHi[j])
	}
	return e
}

// Rebuild refits the whole model from scratch against est: per-(worker,
// cell) errors, fresh winsorization bounds, accumulators and closed-form
// fits. Every buffer is arena-reused, so a steady-state rebuild performs no
// allocations. This is the polish-anchor path; between polishes use
// UpdateCells.
//
//tcrowd:noalloc
func (em *ErrorModel) Rebuild(est metrics.Estimates) {
	// Reset the per-(worker, row) vectors and accumulators.
	for i := range em.rowVec {
		em.rowVec[i] = -1
	}
	em.vecSlots = em.vecSlots[:0]
	em.errArena = em.errArena[:0]
	for j := range em.marg {
		em.marg[j] = margAcc{}
	}
	for idx := range em.pairs {
		em.pairs[idx] = pairAcc{}
	}

	// Pass 1: raw (unclamped) last-answer-wins errors into the vectors.
	for _, a := range em.m.Log.All() {
		i, j := a.Cell.Row, a.Cell.Col
		guess := est[i][j]
		if guess.IsNone() {
			continue
		}
		v := em.vecFor(em.workerOf(a.Worker), i)
		v[j] = em.answerError(a, guess, false)
	}

	// Pass 2: fresh robust winsorization bounds per continuous column.
	for j := 0; j < em.nCols; j++ {
		if em.isCat[j] {
			continue
		}
		em.colScratch[j] = em.colScratch[j][:0]
	}
	for _, slot := range em.vecSlots {
		off := em.rowVec[slot]
		v := em.errArena[off : off+int32(em.nCols)]
		for j := 0; j < em.nCols; j++ {
			if !em.isCat[j] && !math.IsNaN(v[j]) {
				//lint:allow noalloc colScratch is truncated to :0 above and regrows inside the capacity the first Rebuild sized; the AllocsPerRun pin proves steady-state appends stay in-arena
				em.colScratch[j] = append(em.colScratch[j], v[j])
			}
		}
	}
	for j := 0; j < em.nCols; j++ {
		em.boundLo[j], em.boundHi[j] = 0, 0
		if !em.isCat[j] && len(em.colScratch[j]) > 0 {
			em.boundLo[j], em.boundHi[j] = em.robustBounds(em.colScratch[j], 3)
		}
	}

	// Pass 3: clamp the stored continuous errors into the new bounds and
	// fold every vector into the marginal and pairwise accumulators.
	for _, slot := range em.vecSlots {
		off := em.rowVec[slot]
		v := em.errArena[off : off+int32(em.nCols)]
		for j := 0; j < em.nCols; j++ {
			if math.IsNaN(v[j]) {
				continue
			}
			if !em.isCat[j] && em.boundHi[j] > em.boundLo[j] {
				v[j] = stats.Clamp(v[j], em.boundLo[j], em.boundHi[j])
			}
		}
		for j := 0; j < em.nCols; j++ {
			if math.IsNaN(v[j]) {
				continue
			}
			em.marg[j].add(v[j])
			for k := j + 1; k < em.nCols; k++ {
				if !math.IsNaN(v[k]) {
					em.pairs[j*em.nCols+k].add(v[j], v[k])
				}
			}
		}
	}

	em.fitAll()
}

// UpdateCells re-derives the errors of the given cells (core cell keys,
// row*nCols + col) against est and folds the deltas into the accumulators —
// the O(batch) maintenance path of a streaming refresh whose polish was
// deferred (cells come from core.RefreshStats.Cells). Winsorization bounds
// stay frozen at their last Rebuild values.
//
//tcrowd:noalloc
func (em *ErrorModel) UpdateCells(est metrics.Estimates, cells []int) {
	log := em.m.Log
	for _, key := range cells {
		i, j := key/em.nCols, key%em.nCols
		guess := est[i][j]
		if guess.IsNone() {
			continue
		}
		for _, ai := range log.CellIndices(tabular.Cell{Row: i, Col: j}) {
			a := log.At(ai)
			e := em.answerError(a, guess, true)
			v := em.vecFor(em.workerOf(a.Worker), i)
			old := v[j]
			if old == e {
				continue
			}
			if !math.IsNaN(old) {
				em.marg[j].remove(old)
				for k := 0; k < em.nCols; k++ {
					if k != j && !math.IsNaN(v[k]) {
						em.pairAcc(j, k).remove(em.orient(j, k, old, v[k]))
					}
				}
			}
			em.marg[j].add(e)
			for k := 0; k < em.nCols; k++ {
				if k != j && !math.IsNaN(v[k]) {
					em.pairAcc(j, k).add(em.orient(j, k, e, v[k]))
				}
			}
			v[j] = e
		}
	}
	em.fitAll()
}

// pairAcc returns the unordered accumulator of columns (j, k).
func (em *ErrorModel) pairAcc(j, k int) *pairAcc {
	if j < k {
		return &em.pairs[j*em.nCols+k]
	}
	return &em.pairs[k*em.nCols+j]
}

// orient maps (e_j, e_k) onto the accumulator's canonical (x, y) = (lower
// column, higher column) order.
func (em *ErrorModel) orient(j, k int, ej, ek float64) (x, y float64) {
	if j < k {
		return ej, ek
	}
	return ek, ej
}

// robustBounds is stats.RobustBounds (median ± k robust sigmas, MAD scale
// with std fallback) on sort-based medians: error populations here scale
// with the whole log, far past the insertion-sort regime stats.Median is
// tuned for. Mutates xs (sorts it) — callers pass scratch.
func (em *ErrorModel) robustBounds(xs []float64, k float64) (lo, hi float64) {
	slices.Sort(xs)
	med := sortedMedian(xs)
	devs := em.devScratch[:0]
	for _, x := range xs {
		devs = append(devs, math.Abs(x-med))
	}
	slices.Sort(devs)
	sigma := sortedMedian(devs) * stats.MADScale
	em.devScratch = devs
	if sigma == 0 {
		sigma = stats.StdDev(xs)
	}
	if sigma == 0 {
		return med, med
	}
	return med - k*sigma, med + k*sigma
}

func sortedMedian(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return 0.5 * (xs[n/2-1] + xs[n/2])
}

// fitAll refreshes every closed-form fit from the accumulators: marginals
// (Table 4), the four-case pair conditionals (Table 5) in both directions
// of each unordered pair, and the Pearson weights W_jk (Eq. 8, bitwise
// symmetric since both directions read the same sums). O(nCols²) with
// constant work per pair.
func (em *ErrorModel) fitAll() {
	for j := 0; j < em.nCols; j++ {
		a := em.marg[j]
		if em.isCat[j] {
			em.margCat[j] = bernoulliFromSums(a.n, a.sum)
		} else {
			em.margCont[j] = normalFromSums(a.n, a.sum, a.sumsq, 1e-6)
		}
	}
	for j := 0; j < em.nCols; j++ {
		for k := j + 1; k < em.nCols; k++ {
			acc := &em.pairs[j*em.nCols+k]
			jk, kj := j*em.nCols+k, k*em.nCols+j
			ok := acc.n >= float64(em.minPairs)
			em.pairOK[jk], em.pairOK[kj] = ok, ok
			if !ok {
				em.w[jk], em.w[kj] = 0, 0
				continue
			}
			wv := pearsonFromSums(acc)
			em.w[jk], em.w[kj] = wv, wv
			em.pairFit[jk] = fitPairFromSums(em.isCat[j], em.isCat[k],
				acc.n, acc.sx, acc.sy, acc.sxx, acc.syy, acc.sxy, acc.sxxy, acc.syyx,
				em.margCat[j].P)
			em.pairFit[kj] = fitPairFromSums(em.isCat[k], em.isCat[j],
				acc.n, acc.sy, acc.sx, acc.syy, acc.sxx, acc.sxy, acc.syyx, acc.sxxy,
				em.margCat[k].P)
		}
	}
}

// bernoulliFromSums is stats.FitBernoulli from (n, Σe): errors of a
// categorical column are exactly 0/1, so the sum is the ones count.
func bernoulliFromSums(n, ones float64) stats.Bernoulli {
	if n <= 0 {
		return stats.Bernoulli{P: 0.5}
	}
	return stats.Bernoulli{P: (ones + 0.5) / (n + 1)}
}

// normalFromSums is stats.FitNormal from moment sums (population variance,
// floored at minVar).
func normalFromSums(n, sum, sumsq, minVar float64) stats.Normal {
	if n <= 0 {
		return stats.Normal{Mu: 0, Var: minVar}
	}
	mu := sum / n
	v := sumsq/n - mu*mu
	if v < minVar {
		v = minVar
	}
	return stats.Normal{Mu: mu, Var: v}
}

// normalOrDefaultFromSums mirrors the sample-space fitNormalOrDefault:
// below two samples the N(0, 1) default.
func normalOrDefaultFromSums(n, sum, sumsq float64) stats.Normal {
	if n < 2 {
		return stats.Normal{Mu: 0, Var: 1}
	}
	return normalFromSums(n, sum, sumsq, 1e-6)
}

// pearsonFromSums is stats.Pearson (population moments) from the pair sums;
// 0 when either side is degenerate.
func pearsonFromSums(a *pairAcc) float64 {
	mx, my := a.sx/a.n, a.sy/a.n
	vx := a.sxx/a.n - mx*mx
	vy := a.syy/a.n - my*my
	if vx <= 0 || vy <= 0 {
		return 0
	}
	cov := a.sxy/a.n - mx*my
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}

// fitPairFromSums fits one Table 5 conditional — e_j given e_k — from the
// pair's moment sums oriented as x = e_j, y = e_k. The class splits of the
// mixed cases fall out of the sums because the categorical side is a 0/1
// indicator: e.g. the e_k = 1 subgroup of x has count Σy, sum Σxy and
// square-sum Σx²y.
func fitPairFromSums(jCat, kCat bool, n, sx, sy, sxx, syy, sxy, sxxy, syyx, pj float64) pairModel {
	pm := pairModel{jCat: jCat, kCat: kCat}
	switch {
	case jCat && kCat:
		pm.pGivenWrong = bernoulliFromSums(sy, sxy).P
		pm.pGivenRight = bernoulliFromSums(n-sy, sx-sxy).P
	case !jCat && !kCat:
		mx, my := sx/n, sy/n
		pm.joint = stats.BivariateNormal{
			MuX: mx, MuY: my,
			VarX: math.Max(1e-6, sxx/n-mx*mx),
			VarY: math.Max(1e-6, syy/n-my*my),
			Cov:  sxy/n - mx*my,
		}
	case !jCat && kCat:
		pm.contWrong = normalOrDefaultFromSums(sy, sxy, sxxy)
		pm.contRight = normalOrDefaultFromSums(n-sy, sx-sxy, sxx-sxxy)
	default: // jCat && !kCat
		pm.ekGivenWrong = normalOrDefaultFromSums(sx, sxy, syyx)
		pm.ekGivenRight = normalOrDefaultFromSums(n-sx, sy-sxy, syy-syyx)
		pm.pj = pj
	}
	return pm
}

// condCatWrong returns P(e_j = 1 | e_k = ek) for a categorical target j.
func (pm *pairModel) condCatWrong(ek float64) float64 {
	if pm.kCat {
		if ek != 0 {
			return pm.pGivenWrong
		}
		return pm.pGivenRight
	}
	// Bayes over the continuous conditioner (case d of Sec. 5.2).
	pw := pm.pj
	likWrong := pm.ekGivenWrong.PDF(ek) * pw
	likRight := pm.ekGivenRight.PDF(ek) * (1 - pw)
	den := likWrong + likRight
	if den <= 0 {
		return pw
	}
	return likWrong / den
}

// condContNormal returns the conditional N(mu, var) of a continuous target
// e_j given e_k = ek.
func (pm *pairModel) condContNormal(ek float64) stats.Normal {
	if pm.kCat {
		if ek != 0 {
			return pm.contWrong
		}
		return pm.contRight
	}
	// contCont: joint holds (e_j, e_k) as (X, Y); we need X | Y = ek, which
	// is ConditionalY on the swapped joint.
	swapped := stats.BivariateNormal{
		MuX: pm.joint.MuY, MuY: pm.joint.MuX,
		VarX: pm.joint.VarY, VarY: pm.joint.VarX,
		Cov: pm.joint.Cov,
	}
	return swapped.ConditionalY(ek)
}

// RowErrors computes worker u's observed errors E^u_i on row i against the
// current estimates: the inputs to Eq. 7. Columns without an estimate or
// without an answer by u are absent.
func (em *ErrorModel) RowErrors(u tabular.WorkerID, row int, est metrics.Estimates) map[int]float64 {
	out := map[int]float64{}
	for _, a := range em.m.Log.RowAnswersByWorker(u, row) {
		em.addError(out, a, est)
	}
	return out
}

// WorkerRowErrors computes the errors of every answer worker u has given,
// grouped by row, in one pass over u's history. Policies scoring thousands
// of candidate cells per arrival must use this instead of calling RowErrors
// per cell (which would rescan the history every time).
func (em *ErrorModel) WorkerRowErrors(u tabular.WorkerID, est metrics.Estimates) map[int]map[int]float64 {
	out := map[int]map[int]float64{}
	for _, a := range em.m.Log.ByWorker(u) {
		row := out[a.Cell.Row]
		if row == nil {
			row = map[int]float64{}
			out[a.Cell.Row] = row
		}
		em.addError(row, a, est)
	}
	return out
}

// addError records one answer's error against the estimates into dst.
func (em *ErrorModel) addError(dst map[int]float64, a tabular.Answer, est metrics.Estimates) {
	guess := est[a.Cell.Row][a.Cell.Col]
	if guess.IsNone() {
		return
	}
	dst[a.Cell.Col] = em.answerError(a, guess, true)
}

// CondWrongProb predicts P(worker's answer on categorical column j is
// wrong | row errors E) by the W-weighted linear combination of pairwise
// conditionals (Eq. 7). With no usable pair it returns the marginal; with
// no marginal signal it returns 1 - q for quality fallback by the caller
// (signalled by ok = false).
func (em *ErrorModel) CondWrongProb(j int, rowErrs map[int]float64) (p float64, ok bool) {
	num, den := 0.0, 0.0
	for k, ek := range rowErrs {
		idx := j*em.nCols + k
		if !em.pairOK[idx] {
			continue
		}
		w := math.Abs(em.w[idx])
		if w <= 1e-9 {
			continue
		}
		num += w * em.pairFit[idx].condCatWrong(ek)
		den += w
	}
	if den > 0 {
		return stats.Clamp(num/den, 1e-6, 1-1e-6), true
	}
	if len(em.margCat) > j {
		mp := em.margCat[j].P
		if mp > 0 && mp < 1 {
			return mp, true
		}
	}
	return 0, false
}

// CondErrorNormal predicts the continuous error distribution of column j
// given the row errors, as the W-weighted mixture of pairwise conditionals
// moment-matched to a single normal. ok is false when no pair is usable.
func (em *ErrorModel) CondErrorNormal(j int, rowErrs map[int]float64) (stats.Normal, bool) {
	var comps []stats.Normal
	var weights []float64
	for k, ek := range rowErrs {
		idx := j*em.nCols + k
		if !em.pairOK[idx] {
			continue
		}
		w := math.Abs(em.w[idx])
		if w <= 1e-9 {
			continue
		}
		comps = append(comps, em.pairFit[idx].condContNormal(ek))
		weights = append(weights, w)
	}
	if len(comps) == 0 {
		return stats.Normal{}, false
	}
	// Moment matching: mixture mean and variance.
	wsum := stats.Sum(weights)
	mu := 0.0
	for i, c := range comps {
		mu += weights[i] / wsum * c.Mu
	}
	v := 0.0
	for i, c := range comps {
		d := c.Mu - mu
		v += weights[i] / wsum * (c.Var + d*d)
	}
	if v <= 0 {
		v = 1e-6
	}
	return stats.Normal{Mu: mu, Var: v}, true
}

// W returns the correlation coefficient W_jk (Eq. 8); 0 when unestimated.
func (em *ErrorModel) W(j, k int) float64 { return em.w[j*em.nCols+k] }

// MarginalCat returns the marginal wrong-probability of categorical column
// j (Table 4).
func (em *ErrorModel) MarginalCat(j int) stats.Bernoulli { return em.margCat[j] }

// MarginalCont returns the marginal error normal of continuous column j
// (Table 4).
func (em *ErrorModel) MarginalCont(j int) stats.Normal { return em.margCont[j] }
