package platform

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, *Platform) {
	t.Helper()
	p := New(9)
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(srv.Close)
	return srv, p
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

const projectBody = `{
  "id": "celebs",
  "rows": 3,
  "schema": {
    "key": "Picture",
    "columns": [
      {"name": "Nationality", "type": "categorical", "labels": ["US", "CN", "GB"]},
      {"name": "Age", "type": "continuous", "min": 0, "max": 120}
    ]
  }
}`

func TestServerProjectLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/projects", projectBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Duplicate -> 409.
	resp = postJSON(t, srv.URL+"/v1/projects", projectBody)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Listing.
	resp, err := http.Get(srv.URL + "/v1/projects")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	decodeBody(t, resp, &ids)
	if len(ids) != 1 || ids[0] != "celebs" {
		t.Fatalf("ids: %v", ids)
	}

	// Bad body -> 400.
	resp = postJSON(t, srv.URL+"/v1/projects", "{nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestServerTaskAnswerFlow(t *testing.T) {
	srv, _ := newTestServer(t)
	postJSON(t, srv.URL+"/v1/projects", projectBody).Body.Close()

	// Request tasks.
	resp, err := http.Get(srv.URL + "/v1/projects/celebs/tasks?worker=w1&count=2")
	if err != nil {
		t.Fatal(err)
	}
	var tasks []Task
	decodeBody(t, resp, &tasks)
	if len(tasks) != 2 {
		t.Fatalf("tasks: %+v", tasks)
	}

	// Missing worker -> 400.
	resp, _ = http.Get(srv.URL + "/v1/projects/celebs/tasks")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing worker status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown project -> 404.
	resp, _ = http.Get(srv.URL + "/v1/projects/none/tasks?worker=w")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown project status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Submit answers from three workers for row 0.
	for i, w := range []string{"w1", "w2", "w3"} {
		body := fmt.Sprintf(`{"worker":%q,"row":0,"column":"Nationality","label":"CN"}`, w)
		resp = postJSON(t, srv.URL+"/v1/projects/celebs/answers", body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
		body = fmt.Sprintf(`{"worker":%q,"row":0,"column":"Age","number":%d}`, w, 44+i)
		resp = postJSON(t, srv.URL+"/v1/projects/celebs/answers", body)
		resp.Body.Close()
	}

	// Double answer -> 409.
	resp = postJSON(t, srv.URL+"/v1/projects/celebs/answers", `{"worker":"w1","row":0,"column":"Nationality","label":"US"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double answer status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown label -> 400.
	resp = postJSON(t, srv.URL+"/v1/projects/celebs/answers", `{"worker":"w9","row":0,"column":"Nationality","label":"XX"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown label status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Valueless answer -> 400.
	resp = postJSON(t, srv.URL+"/v1/projects/celebs/answers", `{"worker":"w9","row":0,"column":"Age"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("valueless status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stats.
	resp, _ = http.Get(srv.URL + "/v1/projects/celebs/stats")
	var st Stats
	decodeBody(t, resp, &st)
	if st.Answers != 6 || st.Workers != 3 {
		t.Fatalf("stats: %+v", st)
	}

	// Estimates: unanimous CN, age around 45. min_generation far above
	// anything published forces a refresh-if-stale round, so the read
	// reflects every answer submitted above.
	resp, _ = http.Get(srv.URL + "/v1/projects/celebs/estimates?min_generation=2000000000")
	var est estimatesResp
	decodeBody(t, resp, &est)
	foundNat, foundAge := false, false
	for _, e := range est.Estimates {
		if e.Column == "Nationality" {
			foundNat = true
			if e.Label == nil || *e.Label != "CN" {
				t.Fatalf("nationality estimate: %+v", e)
			}
		}
		if e.Column == "Age" {
			foundAge = true
			if e.Number == nil || *e.Number < 43 || *e.Number > 47 {
				t.Fatalf("age estimate: %+v", e)
			}
		}
	}
	if !foundNat || !foundAge {
		t.Fatalf("estimates incomplete: %+v", est.Estimates)
	}
	if len(est.WorkerQuality) != 3 {
		t.Fatalf("worker quality: %+v", est.WorkerQuality)
	}
}

func TestServerEstimatesWithoutAnswers(t *testing.T) {
	srv, _ := newTestServer(t)
	postJSON(t, srv.URL+"/v1/projects", projectBody).Body.Close()
	// Nothing published yet: the pinned read 404s (no_snapshot).
	resp, _ := http.Get(srv.URL + "/v1/projects/celebs/estimates")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-publish estimates status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Forcing a refresh on an answerless project fails cleanly too.
	resp, _ = http.Get(srv.URL + "/v1/projects/celebs/estimates?min_generation=1")
	if resp.StatusCode == http.StatusOK {
		t.Fatal("estimates from nothing")
	}
	resp.Body.Close()
}
