// Package optimize implements the first-order optimisation routines used by
// T-Crowd's M-step ("we apply gradient descent to find the values of alpha,
// beta and phi that locally maximize Q", Sec. 4.3 of the paper) and by the
// GLAD baseline.
//
// The package provides plain gradient descent with Armijo backtracking line
// search, a numerical differentiator used to cross-check analytic gradients
// in tests, and a log-space reparameterisation helper that keeps positive
// parameters (variances, difficulties) positive without projection.
package optimize

import (
	"errors"
	"math"
)

// ErrDimension is returned when a gradient or start vector has the wrong
// length.
var ErrDimension = errors.New("optimize: dimension mismatch")

// Func is an objective to be minimised.
type Func func(x []float64) float64

// GradFunc writes the gradient of the objective at x into grad.
type GradFunc func(x, grad []float64)

// Options controls Minimize.
type Options struct {
	// MaxIter bounds the number of outer gradient steps. Default 200.
	MaxIter int
	// GradTol stops when the max-norm of the gradient falls below it.
	// Default 1e-6.
	GradTol float64
	// FuncTol stops when the relative objective improvement falls below
	// it. Default 1e-10.
	FuncTol float64
	// InitStep is the first trial step of each backtracking search.
	// Default 1.0.
	InitStep float64
	// Backtrack is the multiplicative step decay in (0,1). Default 0.5.
	Backtrack float64
	// Armijo is the sufficient-decrease coefficient in (0,1). Default 1e-4.
	Armijo float64
	// MaxBacktracks bounds the inner line search. Default 40.
	MaxBacktracks int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.FuncTol <= 0 {
		o.FuncTol = 1e-10
	}
	if o.InitStep <= 0 {
		o.InitStep = 1.0
	}
	if o.Backtrack <= 0 || o.Backtrack >= 1 {
		o.Backtrack = 0.5
	}
	if o.Armijo <= 0 || o.Armijo >= 1 {
		o.Armijo = 1e-4
	}
	if o.MaxBacktracks <= 0 {
		o.MaxBacktracks = 40
	}
	return o
}

// Result reports the outcome of a minimisation.
type Result struct {
	X         []float64 // minimiser found
	F         float64   // objective at X
	Iters     int       // outer iterations performed
	Converged bool      // true if a tolerance fired before MaxIter
}

// Minimize runs gradient descent with Armijo backtracking from x0 and
// returns the best point found. f must be finite at x0. The input slice is
// not modified.
func Minimize(f Func, grad GradFunc, x0 []float64, opts Options) Result {
	o := opts.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	g := make([]float64, n)
	trial := make([]float64, n)

	fx := f(x)
	res := Result{X: x, F: fx}
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		return res
	}

	for it := 0; it < o.MaxIter; it++ {
		res.Iters = it + 1
		grad(x, g)
		gnorm := maxNorm(g)
		if gnorm < o.GradTol {
			res.Converged = true
			break
		}
		g2 := dot(g, g)

		step := o.InitStep
		improved := false
		for bt := 0; bt < o.MaxBacktracks; bt++ {
			for i := range x {
				trial[i] = x[i] - step*g[i]
			}
			ft := f(trial)
			if !math.IsNaN(ft) && !math.IsInf(ft, 0) && ft <= fx-o.Armijo*step*g2 {
				copy(x, trial)
				if relImprovement(fx, ft) < o.FuncTol {
					fx = ft
					res.Converged = true
					improved = true
					break
				}
				fx = ft
				improved = true
				break
			}
			step *= o.Backtrack
		}
		if !improved || res.Converged {
			if !improved {
				// Line search stalled: we are at numerical precision.
				res.Converged = true
			}
			break
		}
	}
	res.F = fx
	res.X = x
	return res
}

// Maximize runs Minimize on the negated objective. The gradient callback
// must still produce the gradient of f (not -f).
func Maximize(f Func, grad GradFunc, x0 []float64, opts Options) Result {
	neg := func(x []float64) float64 { return -f(x) }
	negGrad := func(x, g []float64) {
		grad(x, g)
		for i := range g {
			g[i] = -g[i]
		}
	}
	res := Minimize(neg, negGrad, x0, opts)
	res.F = -res.F
	return res
}

// NumericalGradient writes the central-difference gradient of f at x into
// grad, using per-coordinate step h*(1+|x_i|). It is the reference
// implementation the analytic gradients are verified against.
func NumericalGradient(f Func, x []float64, h float64, grad []float64) error {
	if len(grad) != len(x) {
		return ErrDimension
	}
	if h <= 0 {
		h = 1e-6
	}
	xx := append([]float64(nil), x...)
	for i := range x {
		hi := h * (1 + math.Abs(x[i]))
		xx[i] = x[i] + hi
		fp := f(xx)
		xx[i] = x[i] - hi
		fm := f(xx)
		xx[i] = x[i]
		grad[i] = (fp - fm) / (2 * hi)
	}
	return nil
}

// PositiveVec maps between a positive parameter vector and its log-space
// representation, so unconstrained descent keeps variances/difficulties
// strictly positive. Bounds guard against numerical blow-up.
type PositiveVec struct {
	// MinLog and MaxLog clamp the log-space coordinates. Defaults span
	// roughly [3e-9, 3e8].
	MinLog, MaxLog float64
}

// DefaultPositiveVec uses log-bounds [-19.5, 19.5].
func DefaultPositiveVec() PositiveVec { return PositiveVec{MinLog: -19.5, MaxLog: 19.5} }

// ToLog writes ln(p) (clamped) into dst and returns it; dst may be nil.
func (pv PositiveVec) ToLog(p, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(p))
	}
	for i, v := range p {
		if v <= 0 {
			dst[i] = pv.MinLog
			continue
		}
		l := math.Log(v)
		if l < pv.MinLog {
			l = pv.MinLog
		} else if l > pv.MaxLog {
			l = pv.MaxLog
		}
		dst[i] = l
	}
	return dst
}

// FromLog writes exp(l) into dst and returns it; dst may be nil.
func (pv PositiveVec) FromLog(l, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(l))
	}
	for i, v := range l {
		if v < pv.MinLog {
			v = pv.MinLog
		} else if v > pv.MaxLog {
			v = pv.MaxLog
		}
		dst[i] = math.Exp(v)
	}
	return dst
}

// ChainRuleLog converts a gradient w.r.t. a positive parameter p into the
// gradient w.r.t. its log-space coordinate: d/d(log p) = p * d/dp.
func ChainRuleLog(p, gradP, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(p))
	}
	for i := range p {
		dst[i] = p[i] * gradP[i]
	}
	return dst
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func maxNorm(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

func relImprovement(old, new float64) float64 {
	return math.Abs(old-new) / (math.Abs(old) + 1)
}
