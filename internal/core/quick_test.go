package core

// Property-based tests (testing/quick) on the inference invariants.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcrowd/internal/tabular"
)

// randomWorkload builds a random small table + answer log from a seed.
func randomWorkload(rng *rand.Rand) (*tabular.Table, *tabular.AnswerLog) {
	nRows := 2 + rng.Intn(5)
	nLabels := 2 + rng.Intn(5)
	labels := make([]string, nLabels)
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	s := tabular.Schema{
		Key: "id",
		Columns: []tabular.Column{
			{Name: "cat", Type: tabular.Categorical, Labels: labels},
			{Name: "num", Type: tabular.Continuous, Min: 0, Max: 100},
		},
	}
	tbl := tabular.NewTable(s, nRows)
	log := tabular.NewAnswerLog()
	nWorkers := 2 + rng.Intn(5)
	for w := 0; w < nWorkers; w++ {
		u := tabular.WorkerID(rune('A' + w))
		for i := 0; i < nRows; i++ {
			if rng.Float64() < 0.3 {
				continue // sparse coverage
			}
			log.Add(tabular.Answer{Worker: u, Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.LabelValue(rng.Intn(nLabels))})
			log.Add(tabular.Answer{Worker: u, Cell: tabular.Cell{Row: i, Col: 1}, Value: tabular.NumberValue(rng.Float64() * 100)})
		}
	}
	return tbl, log
}

func TestQuickInferInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, log := randomWorkload(rng)
		m, err := Infer(tbl, log, Options{MaxIter: 8})
		if err == ErrNoAnswers {
			return true
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Invariant 1: every categorical posterior is a distribution.
		for i := 0; i < tbl.NumRows(); i++ {
			if post := m.CatPost[i][0]; post != nil {
				sum := 0.0
				for _, p := range post {
					if p < -1e-12 || math.IsNaN(p) {
						return false
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
			// Invariant 2: continuous posterior variance is in (0, prior].
			if m.Answered[i][1] {
				v := m.ContVar[i][1]
				if !(v > 0) || v > 1+1e-9 {
					return false
				}
			}
		}
		// Invariant 3: parameters positive and finite.
		for _, p := range m.Phi {
			if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
				return false
			}
		}
		for _, a := range append(append([]float64(nil), m.Alpha...), m.Beta...) {
			if !(a > 0) || math.IsInf(a, 0) {
				return false
			}
		}
		// Invariant 4: estimates exist iff the cell was answered.
		est := m.Estimates()
		for i := 0; i < tbl.NumRows(); i++ {
			for j := 0; j < tbl.NumCols(); j++ {
				if m.Answered[i][j] == est[i][j].IsNone() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterminism(t *testing.T) {
	// Same input -> byte-identical output: EM has no hidden randomness.
	rng := rand.New(rand.NewSource(77))
	tbl, log := randomWorkload(rng)
	a, err := Infer(tbl, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(tbl, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Phi {
		if a.Phi[k] != b.Phi[k] {
			t.Fatal("phi differs across identical runs")
		}
	}
	ae, be := a.Estimates(), b.Estimates()
	for i := range ae {
		for j := range ae[i] {
			if !ae[i][j].Equal(be[i][j]) {
				t.Fatal("estimates differ across identical runs")
			}
		}
	}
}
