package tcrowd

// Benchmarks regenerating each of the paper's evaluation artifacts (one
// bench per table/figure — see internal/experiments for the index) plus the
// ablation benches for the documented design choices and
// micro-benchmarks of the hot paths.
//
// Run with: go test -bench=. -benchmem
// The experiment benches execute shrunken (Quick) workloads so a full
// -bench=. sweep stays in minutes; use cmd/tcrowd-bench for paper-scale
// runs.

import (
	"testing"

	"tcrowd/internal/assign"
	"tcrowd/internal/baselines"
	"tcrowd/internal/core"
	"tcrowd/internal/experiments"
	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

var benchCfg = experiments.Config{Seed: 17, Quick: true, Trials: 1}

func BenchmarkTable6_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range simulate.StandInNames() {
			if _, err := simulate.StandIn(name, 17); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable7_TruthInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2("Restaurant", benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_QualityHeatmap(b *testing.B) {
	ds, _ := simulate.StandIn("Restaurant", 17)
	log := simulate.NewCrowd(ds, 18).FixedAssignment(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.WorkerAttributeError(ds.Table, log)
	}
}

func BenchmarkFigure4_Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_Heuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7_Columns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8_Ratio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_Difficulty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10_Noise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11_AssignTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12_InferTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (documented design choices) ---

// benchWorkload builds a mid-size mixed table shared by the ablations.
func benchWorkload(b *testing.B) (*simulate.Dataset, *tabular.AnswerLog) {
	b.Helper()
	ds := simulate.Generate(stats.NewRNG(19), simulate.TableConfig{
		Rows: 60, Cols: 8, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 40},
	})
	return ds, simulate.NewCrowd(ds, 20).FixedAssignment(5)
}

func BenchmarkAblation_Unified(b *testing.B) {
	ds, log := benchWorkload(b)
	for _, m := range []baselines.Method{baselines.TCrowd{}, baselines.TCOnlyCate{}, baselines.TCOnlyCont{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Infer(ds.Table, log); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_Difficulty(b *testing.B) {
	ds, log := benchWorkload(b)
	for _, fix := range []struct {
		name string
		v    bool
	}{{"learned", false}, {"frozen", true}} {
		b.Run(fix.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Infer(ds.Table, log, core.Options{FixDifficulty: fix.v}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_StructureAware(b *testing.B) {
	ds, log := benchWorkload(b)
	m, err := core.Infer(ds.Table, log, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	em := assign.BuildErrorModel(m)
	est := m.Estimates()
	st := &assign.State{Model: m, Log: log, Est: est, Err: em, RNG: stats.NewRNG(21)}
	u := m.WorkerIDs[0]
	b.Run("inherent", func(b *testing.B) {
		p := assign.InherentIG{Parallelism: 1}
		for i := 0; i < b.N; i++ {
			p.Select(st, u, 8)
		}
	})
	b.Run("structure-aware", func(b *testing.B) {
		p := assign.StructureIG{Parallelism: 1}
		for i := 0; i < b.N; i++ {
			p.Select(st, u, 8)
		}
	})
}

func BenchmarkAblation_Gradients(b *testing.B) {
	ds, log := benchWorkload(b)
	for _, iters := range []int{2, 10, 40} {
		b.Run(map[int]string{2: "mstep-2", 10: "mstep-10", 40: "mstep-40"}[iters], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Infer(ds.Table, log, core.Options{MStepIter: iters}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_Batch(b *testing.B) {
	ds, log := benchWorkload(b)
	sys := assign.NewTCrowdSystem(22)
	if err := sys.Refresh(ds.Table, log); err != nil {
		b.Fatal(err)
	}
	u := ds.Workers[0].ID
	for _, k := range []int{1, 8} {
		b.Run(map[int]string{1: "K-1", 8: "K-8"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys.Select(u, k, log)
			}
		})
	}
}

// --- Micro benches on the hot paths ---

func BenchmarkInfer(b *testing.B) {
	for _, size := range []struct {
		name string
		rows int
	}{{"1k-answers", 20}, {"10k-answers", 200}} {
		ds := simulate.Generate(stats.NewRNG(23), simulate.TableConfig{
			Rows: size.rows, Cols: 10, CatRatio: 0.5,
			Population: simulate.PopulationConfig{N: 50},
		})
		log := simulate.NewCrowd(ds, 24).FixedAssignment(5)
		b.Run(size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Infer(ds.Table, log, core.Options{MaxIter: 10, Tol: 1e-12}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefreshWarmVsCold measures the online loop's refresh cost after
// an answer batch lands on an already-fitted system: "cold" re-runs full
// EM from scratch on the grown log (what serving pays without warm
// starts), "warm" is the TCrowdSystem default (core.InferWarm seeded from
// the previous model, which is why it converges within its short
// iteration budget). Every timed iteration sees a fresh 50-answer batch
// on top of the base log — cloned with the timer stopped — so neither arm
// degenerates into refreshing an unchanged log.
func BenchmarkRefreshWarmVsCold(b *testing.B) {
	ds := simulate.Generate(stats.NewRNG(23), simulate.TableConfig{
		Rows: 100, Cols: 10, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 50},
	})
	base := simulate.NewCrowd(ds, 24).FixedAssignment(5)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			log := base.Clone()
			simulate.NewCrowd(ds, 26+int64(i)).AppendBatch(log, 50)
			b.StartTimer()
			if _, err := core.Infer(ds.Table, log, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sys := assign.NewTCrowdSystem(25)
		if err := sys.Refresh(ds.Table, base); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			log := base.Clone()
			simulate.NewCrowd(ds, 26+int64(i)).AppendBatch(log, 50)
			b.StartTimer()
			if err := sys.Refresh(ds.Table, log); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRefreshIncremental measures the streaming refresh path (the
// cmd/tcrowd-bench ingest/* series): batches append to the SAME log object
// (untimed) and Refresh takes the incremental route — suffix ingestion into
// the fitted model's CSR store plus a short warm polish — so the timed cost
// scales with the batch, not with re-decoding the log. Compare against
// BenchmarkRefreshWarmVsCold/warm, which rebuilds the model per refresh.
func BenchmarkRefreshIncremental(b *testing.B) {
	ds := simulate.Generate(stats.NewRNG(23), simulate.TableConfig{
		Rows: 100, Cols: 10, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 50},
	})
	base := simulate.NewCrowd(ds, 24).FixedAssignment(5)
	for _, batch := range []int{10, 50, 200} {
		b.Run(map[int]string{10: "batch-10", 50: "batch-50", 200: "batch-200"}[batch], func(b *testing.B) {
			crowd := simulate.NewCrowd(ds, 27)
			log := base.Clone()
			sys := assign.NewTCrowdSystem(25)
			if err := sys.Refresh(ds.Table, log); err != nil {
				b.Fatal(err)
			}
			grown := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if grown > 2000 {
					log = base.Clone()
					sys = assign.NewTCrowdSystem(25)
					if err := sys.Refresh(ds.Table, log); err != nil {
						b.Fatal(err)
					}
					grown = 0
				}
				crowd.AppendBatch(log, batch)
				grown += batch
				b.StartTimer()
				if err := sys.Refresh(ds.Table, log); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInfoGainScoring(b *testing.B) {
	ds, log := benchWorkload(b)
	m, err := core.Infer(ds.Table, log, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	u := m.WorkerIDs[0]
	cells := ds.Table.Cells()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			assign.InfoGain(m, u, c)
		}
	}
}

func BenchmarkAnswerLogAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log := tabular.NewAnswerLog()
		for k := 0; k < 1000; k++ {
			log.Add(tabular.Answer{
				Worker: tabular.WorkerID(rune('a' + k%26)),
				Cell:   tabular.Cell{Row: k % 50, Col: k % 7},
				Value:  tabular.NumberValue(float64(k)),
			})
		}
	}
}
