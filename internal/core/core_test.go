package core

import (
	"math"
	"testing"

	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func smallDataset(seed int64) (*simulate.Dataset, *tabular.AnswerLog) {
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows: 30, Cols: 6, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 25},
	})
	cr := simulate.NewCrowd(ds, seed+1)
	return ds, cr.FixedAssignment(5)
}

func TestInferRunsAndConverges(t *testing.T) {
	ds, log := smallDataset(100)
	m, err := Infer(ds.Table, log, Options{TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations == 0 {
		t.Fatal("no iterations")
	}
	if len(m.Phi) != log.NumWorkers() {
		t.Fatalf("phi arity %d want %d", len(m.Phi), log.NumWorkers())
	}
	for _, phi := range m.Phi {
		if !(phi > 0) || math.IsInf(phi, 0) {
			t.Fatalf("bad phi %v", phi)
		}
	}
	for _, a := range m.Alpha {
		if !(a > 0) {
			t.Fatal("bad alpha")
		}
	}
}

func TestInferBeatsMajorityVoteAndMean(t *testing.T) {
	// Averaged over seeds: per-seed tables have only ~90 categorical
	// cells, where one or two flipped cells would dominate a strict
	// comparison.
	var tcER, tcMN, mvER, mvMN float64
	for _, seed := range []int64{200, 210, 220} {
		ds, log := smallDataset(seed)
		m, err := Infer(ds.Table, log, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := metrics.Evaluate(ds.Table, m.Estimates(), log)

		// Equal-weight baseline: majority vote / plain mean.
		naive := metrics.NewEstimates(ds.Table)
		for i := 0; i < ds.Table.NumRows(); i++ {
			for j, col := range ds.Table.Schema.Columns {
				c := tabular.Cell{Row: i, Col: j}
				as := log.ByCell(c)
				if len(as) == 0 {
					continue
				}
				if col.Type == tabular.Categorical {
					counts := make([]float64, col.NumLabels())
					for _, a := range as {
						counts[a.Value.L]++
					}
					naive[i][j] = tabular.LabelValue(argMax(counts))
				} else {
					var xs []float64
					for _, a := range as {
						xs = append(xs, a.Value.X)
					}
					naive[i][j] = tabular.NumberValue(stats.Mean(xs))
				}
			}
		}
		base := metrics.Evaluate(ds.Table, naive, log)
		tcER += got.ErrorRate
		tcMN += got.MNAD
		mvER += base.ErrorRate
		mvMN += base.MNAD
	}
	if tcER > mvER+1e-9 {
		t.Fatalf("T-Crowd mean error rate %.4f worse than majority vote %.4f", tcER/3, mvER/3)
	}
	if tcMN > mvMN+1e-9 {
		t.Fatalf("T-Crowd mean MNAD %.4f worse than mean aggregation %.4f", tcMN/3, mvMN/3)
	}
}

func TestInferRecoversWorkerQualityOrdering(t *testing.T) {
	ds, log := smallDataset(300)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Planted phi vs inferred phi should correlate strongly.
	var planted, inferred []float64
	for k, u := range m.WorkerIDs {
		w := ds.WorkerByID(u)
		if w == nil {
			t.Fatalf("unknown worker %s", u)
		}
		planted = append(planted, math.Log(w.Phi))
		inferred = append(inferred, math.Log(m.Phi[k]))
	}
	r := stats.Pearson(planted, inferred)
	if r < 0.6 {
		t.Fatalf("planted/inferred phi correlation too weak: r=%.3f", r)
	}
}

func TestELBOMonotone(t *testing.T) {
	ds, log := smallDataset(400)
	m, err := Infer(ds.Table, log, Options{TrackObjective: true, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ObjTrace) < 2 {
		t.Fatal("no trace")
	}
	for k := 1; k < len(m.ObjTrace); k++ {
		if m.ObjTrace[k] < m.ObjTrace[k-1]-1e-6 {
			t.Fatalf("ELBO decreased at %d: %v -> %v", k, m.ObjTrace[k-1], m.ObjTrace[k])
		}
	}
}

func TestAnalyticGradientMatchesNumeric(t *testing.T) {
	ds, log := smallDataset(500)
	m, err := newModel(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.eStep() // fix posteriors at a non-trivial point

	n, mm, u := len(m.Alpha), len(m.Beta), len(m.Phi)
	dim := n + mm + u
	theta := make([]float64, dim)
	// Probe at a slightly perturbed point so no gradient is trivially 0.
	rng := stats.NewRNG(501)
	for i := range theta {
		theta[i] = 0.3 * rng.NormFloat64()
	}
	split := func(th []float64) (a, b, p []float64) {
		a = make([]float64, n)
		b = make([]float64, mm)
		p = make([]float64, u)
		for i := range a {
			a[i] = math.Exp(th[i])
		}
		for j := range b {
			b[j] = math.Exp(th[n+j])
		}
		for k := range p {
			p[k] = math.Exp(th[n+mm+k])
		}
		return
	}
	f := func(th []float64) float64 {
		a, b, p := split(th)
		return m.qValue(a, b, p)
	}
	a, b, p := split(theta)
	ga, gb, gp := m.qGradLog(a, b, p)
	analytic := append(append(append([]float64(nil), ga...), gb...), gp...)

	numeric := make([]float64, dim)
	// Central differences on the log-space objective.
	h := 1e-6
	for i := range theta {
		old := theta[i]
		theta[i] = old + h
		fp := f(theta)
		theta[i] = old - h
		fm := f(theta)
		theta[i] = old
		numeric[i] = (fp - fm) / (2 * h)
	}
	for i := range analytic {
		scale := math.Max(1, math.Abs(numeric[i]))
		if math.Abs(analytic[i]-numeric[i])/scale > 1e-4 {
			t.Fatalf("gradient %d: analytic %v numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestInferModes(t *testing.T) {
	ds, log := smallDataset(600)
	full, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cate, err := Infer(ds.Table, log, Options{Mode: ModeOnlyCategorical})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Infer(ds.Table, log, Options{Mode: ModeOnlyContinuous})
	if err != nil {
		t.Fatal(err)
	}
	estCat := cate.Estimates()
	estCont := cont.Estimates()
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j, col := range ds.Table.Schema.Columns {
			if col.Type == tabular.Continuous && !estCat[i][j].IsNone() {
				t.Fatal("TC-onlyCate must not estimate continuous cells")
			}
			if col.Type == tabular.Categorical && !estCont[i][j].IsNone() {
				t.Fatal("TC-onlyCont must not estimate categorical cells")
			}
		}
	}
	// The full model should use strictly more answers than either mode.
	if full.NumAnswersUsed() <= cate.NumAnswersUsed() || full.NumAnswersUsed() <= cont.NumAnswersUsed() {
		t.Fatal("mode filters did not reduce the answer set")
	}
	// Unified inference should be at least as good as the constrained
	// variants on their own turf (Table 7's TC-onlyX comparison).
	fullRep := metrics.Evaluate(ds.Table, full.Estimates(), log)
	cateRep := metrics.Evaluate(ds.Table, estCat, log)
	contRep := metrics.Evaluate(ds.Table, estCont, log)
	if fullRep.ErrorRate > cateRep.ErrorRate+0.02 {
		t.Fatalf("full %.4f much worse than onlyCate %.4f", fullRep.ErrorRate, cateRep.ErrorRate)
	}
	if fullRep.MNAD > contRep.MNAD+0.05 {
		t.Fatalf("full %.4f much worse than onlyCont %.4f", fullRep.MNAD, contRep.MNAD)
	}
}

func TestInferFixDifficulty(t *testing.T) {
	ds, log := smallDataset(700)
	m, err := Infer(ds.Table, log, Options{FixDifficulty: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Alpha {
		if a != 1 {
			t.Fatal("alpha moved despite FixDifficulty")
		}
	}
	for _, b := range m.Beta {
		if b != 1 {
			t.Fatal("beta moved despite FixDifficulty")
		}
	}
}

func TestInferErrors(t *testing.T) {
	ds, _ := smallDataset(800)
	if _, err := Infer(ds.Table, tabular.NewAnswerLog(), Options{}); err != ErrNoAnswers {
		t.Fatalf("want ErrNoAnswers, got %v", err)
	}
	bad := tabular.NewAnswerLog()
	bad.Add(tabular.Answer{Worker: "u", Cell: tabular.Cell{Row: 999, Col: 0}, Value: tabular.LabelValue(0)})
	if _, err := Infer(ds.Table, bad, Options{}); err == nil {
		t.Fatal("out-of-table answer accepted")
	}
	badSchema := &tabular.Table{}
	if _, err := Infer(badSchema, tabular.NewAnswerLog(), Options{}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestDifficultyScaleAnchored(t *testing.T) {
	// The shrinkage priors on ln(alpha), ln(beta) anchor the scale of the
	// otherwise scale-ambiguous product alpha*beta*phi: geometric means
	// must hover near 1 instead of drifting.
	ds, log := smallDataset(900)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := geoMean(m.Alpha); g < 0.4 || g > 2.5 {
		t.Fatalf("alpha geomean drifted: %v", g)
	}
	if g := geoMean(m.Beta); g < 0.4 || g > 2.5 {
		t.Fatalf("beta geomean drifted: %v", g)
	}
}
