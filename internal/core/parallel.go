package core

import (
	"runtime"
	"sync"
)

// Parallel EM — the "acceleration of truth inference ... by parallel
// computation" the paper lists as future work (Sec. 7). Both EM halves
// decompose cleanly:
//
//   - the E-step treats cells independently given the parameters, so cells
//     shard across goroutines;
//   - the M-step objective and gradient are sums over answers, so answer
//     ranges shard and per-shard partial gradients reduce at the end.
//
// Parallelism is opt-in (Options.Parallelism > 1): the sequential path
// stays allocation-light for the small online refreshes, while full-table
// inference on large logs gets near-linear speedup.

// eStepParallel is the sharded version of eStep.
func (m *Model) eStepParallel(workers int) {
	n, mm := m.Table.NumRows(), m.Table.NumCols()
	total := n * mm
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for key := lo; key < hi; key++ {
				idxs := m.byCell[key]
				if len(idxs) == 0 {
					continue
				}
				i, j := key/mm, key%mm
				if m.ans[idxs[0]].isCat {
					m.updateCatCell(i, j, idxs)
				} else {
					m.updateContCell(i, j, idxs)
				}
			}
		}(start, end)
	}
	wg.Wait()
}

// qValueParallel shards the M-step objective over answer ranges.
func (m *Model) qValueParallel(alpha, beta, phi []float64, workers int) float64 {
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(m.ans) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(m.ans) {
			break
		}
		if hi > len(m.ans) {
			hi = len(m.ans)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = m.qValueRange(alpha, beta, phi, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	sum := m.paramLogPrior(alpha, beta, phi)
	for _, p := range partial {
		sum += p
	}
	return sum
}

// qGradLogParallel shards the gradient over answer ranges with per-shard
// accumulators reduced at the end (no atomics on the hot path).
func (m *Model) qGradLogParallel(alpha, beta, phi []float64, workers int) (ga, gb, gp []float64) {
	type grads struct {
		a, b, p []float64
	}
	partial := make([]grads, workers)
	var wg sync.WaitGroup
	chunk := (len(m.ans) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(m.ans) {
			break
		}
		if hi > len(m.ans) {
			hi = len(m.ans)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := grads{
				a: make([]float64, len(alpha)),
				b: make([]float64, len(beta)),
				p: make([]float64, len(phi)),
			}
			m.qGradLogRange(alpha, beta, phi, lo, hi, g.a, g.b, g.p)
			partial[w] = g
		}(w, lo, hi)
	}
	wg.Wait()

	ga = make([]float64, len(alpha))
	gb = make([]float64, len(beta))
	gp = make([]float64, len(phi))
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	for _, g := range partial {
		if g.a == nil {
			continue
		}
		for i := range ga {
			ga[i] += g.a[i]
		}
		for j := range gb {
			gb[j] += g.b[j]
		}
		for k := range gp {
			gp[k] += g.p[k]
		}
	}
	return ga, gb, gp
}

// effectiveParallelism resolves the Parallelism option.
func (m *Model) effectiveParallelism() int {
	p := m.Opts.Parallelism
	if p <= 1 {
		return 1
	}
	if max := runtime.GOMAXPROCS(0); p > max {
		p = max
	}
	if p < 1 {
		p = 1
	}
	return p
}
