// Platform: drives the AMT-like HTTP platform end-to-end (the system
// architecture of the paper's Fig. 1): a requester registers a schema,
// simulated workers pull dynamically assigned tasks and submit answers
// over HTTP, and the requester fetches inferred truth plus worker
// qualities.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"tcrowd/internal/platform"
)

func main() {
	// Start the platform on an ephemeral local port.
	p := platform.New(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, platform.NewServer(p)) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("platform listening on", base)

	// The requester registers a project.
	projectReq := map[string]any{
		"id":   "books",
		"rows": 5,
		"schema": map[string]any{
			"key": "ISBN",
			"columns": []map[string]any{
				{"name": "Genre", "type": "categorical", "labels": []string{"fiction", "nonfiction", "poetry"}},
				{"name": "Pages", "type": "continuous", "min": 20, "max": 2000},
			},
		},
	}
	mustPost(base+"/projects", projectReq)
	fmt.Println("registered project 'books' (5 rows x 2 attributes)")

	// Ground truth known only to this simulation.
	genres := []int{0, 1, 0, 2, 1}
	pages := []float64{320, 540, 210, 96, 780}
	labels := []string{"fiction", "nonfiction", "poetry"}

	// Simulated workers pull tasks and answer: w1/w2 are reliable, w3 is
	// sloppy.
	noise := map[string]float64{"w1": 10, "w2": 15, "w3": 150}
	wrong := map[string]int{"w1": 0, "w2": 0, "w3": 2}
	for round := 0; round < 3; round++ {
		for _, w := range []string{"w1", "w2", "w3"} {
			var tasks []platform.Task
			mustGet(fmt.Sprintf("%s/projects/books/tasks?worker=%s&count=4", base, w), &tasks)
			for _, task := range tasks {
				ans := map[string]any{"worker": w, "row": task.Row, "column": task.Column}
				if task.Column == "Genre" {
					g := genres[task.Row]
					if wrong[w] > 0 {
						wrong[w]--
						g = (g + 1) % 3
					}
					ans["label"] = labels[g]
				} else {
					ans["number"] = pages[task.Row] + noise[w]*float64(task.Row%3-1)
				}
				mustPost(base+"/projects/books/answers", ans)
			}
		}
	}

	var st struct {
		Answers        int     `json:"answers"`
		Workers        int     `json:"workers"`
		AnswersPerTask float64 `json:"answers_per_task"`
	}
	mustGet(base+"/projects/books/stats", &st)
	fmt.Printf("collected %d answers from %d workers (%.1f per task)\n",
		st.Answers, st.Workers, st.AnswersPerTask)

	// The requester fetches the inferred truth.
	var est struct {
		Estimates []struct {
			Entity string   `json:"entity"`
			Column string   `json:"column"`
			Label  *string  `json:"label"`
			Number *float64 `json:"number"`
		} `json:"estimates"`
		WorkerQuality map[string]float64 `json:"worker_quality"`
	}
	mustGet(base+"/projects/books/estimates", &est)

	fmt.Println("\ninferred values:")
	for _, e := range est.Estimates {
		if e.Label != nil {
			fmt.Printf("  %-8s %-7s = %s\n", e.Entity, e.Column, *e.Label)
		} else {
			fmt.Printf("  %-8s %-7s = %.0f\n", e.Entity, e.Column, *e.Number)
		}
	}
	fmt.Println("\nworker quality:")
	for _, w := range []string{"w1", "w2", "w3"} {
		fmt.Printf("  %s: %.3f\n", w, est.WorkerQuality[w])
	}
	fmt.Println("\n(the platform and its API are importable as tcrowd/internal/platform;")
	fmt.Printf(" the public inference API is package %q)\n", "tcrowd")
}

func mustPost(url string, body any) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %v", url, resp.StatusCode, e)
	}
}

func mustGet(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
