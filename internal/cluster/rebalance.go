package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"tcrowd/internal/cluster/member"
)

// Membership-change handoff. With static membership the ring only moves
// when the operator edits -peers and restarts, so rebalancing is a boot
// activity: each node walks its local projects, and any project whose
// ring home is now a peer is handed off — full WAL plus latest published
// generation pushed to the new home over the internal API, then the local
// copy demotes to a read replica. Only moved projects transfer; the ring
// keeps everything else exactly where it was.

// rebalanceRetryDelay paces retries while the new home is unreachable
// (e.g. the whole cluster is restarting into the new spec and the peer is
// not up yet).
const rebalanceRetryDelay = 2 * time.Second

// StartRebalance runs Rebalance in the background, retrying until a pass
// completes without errors or the node closes. Meant for boot: serving
// starts immediately, misplaced projects keep answering writes as before
// until their handoff lands.
func (n *Node) StartRebalance() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			if err := n.Rebalance(); err == nil {
				return
			}
			select {
			case <-n.stop:
				return
			case <-time.After(rebalanceRetryDelay):
			}
		}
	}()
}

// Rebalance performs one reconciliation pass over the local projects:
// projects homed here stay; home-mode projects the ring now places on a
// peer are handed off and demoted; follower-mode projects pointing at a
// stale home address are re-pointed. Returns the joined errors of the
// failed handoffs (nil when the node is fully reconciled).
func (n *Node) Rebalance() error {
	ids := n.p.ProjectIDs()
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if n.set.IsHome(id) {
			continue
		}
		home := n.set.HomeOf(id)
		follower, curHome, err := n.p.IsFollower(id)
		if err != nil {
			continue // deleted mid-walk
		}
		if follower {
			if curHome != home.Addr {
				_ = n.p.DemoteToReplica(id, home.Addr)
			}
			continue
		}
		if err := n.handoff(id, home); err != nil {
			errs = append(errs, fmt.Errorf("handoff %q to %s: %w", id, home.ID, err))
		}
	}
	return errors.Join(errs...)
}

// handoff pushes one project's WAL and latest generation to its new home,
// then demotes the local copy. Any 2xx from the adopt endpoint — adopted
// or already-home duplicate — clears this node to demote: either way the
// receiver owns the project now.
func (n *Node) handoff(id string, home member.Member) error {
	segs, err := n.p.ShipWAL(id, 1)
	if err != nil {
		// Without a WAL there is no durable history to move, and demoting
		// would orphan the in-memory answers. Refuse: cluster mode expects
		// -wal-dir (cmd enforces it).
		return err
	}
	env := walShipEnvelope{Segments: segs}
	if g, ok, err := n.p.LatestReplicated(id); err == nil && ok {
		env.Latest = &g
	}
	body, err := json.Marshal(&env)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost,
		home.Addr+"/v1/internal/projects/"+url.PathEscape(id)+"/wal",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(homeHeader, n.set.Self().Addr)
	resp, err := n.doInternal(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("adopt endpoint answered %s", resp.Status)
	}
	return n.p.DemoteToReplica(id, home.Addr)
}
