package member

import (
	"fmt"
	"strings"
	"testing"
)

const threeNodes = "n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082,n3=http://127.0.0.1:8083"

// TestParseRoundTrip pins the flag grammar: whitespace tolerated,
// trailing slash trimmed, self resolved from the spec.
func TestParseRoundTrip(t *testing.T) {
	s, err := Parse("n2", " n1 = http://a:1 , n2=http://b:2/ ,n3=https://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Self() != (Member{ID: "n2", Addr: "http://b:2"}) {
		t.Fatalf("self = %+v", s.Self())
	}
	if s.Size() != 3 {
		t.Fatalf("size %d", s.Size())
	}
	if got := s.Members(); got[0].ID != "n1" || got[2].Addr != "https://c:3" {
		t.Fatalf("members %+v", got)
	}
	if peers := s.Peers(); len(peers) != 2 || peers[0].ID != "n1" || peers[1].ID != "n3" {
		t.Fatalf("peers %+v", peers)
	}
}

// TestParseOff pins the cluster-off configuration: both flags empty.
func TestParseOff(t *testing.T) {
	s, err := Parse("", "")
	if err != nil || s != nil {
		t.Fatalf("Parse(\"\", \"\") = %v, %v; want nil, nil", s, err)
	}
}

// TestParseRejects pins the validation table.
func TestParseRejects(t *testing.T) {
	cases := []struct{ self, spec, want string }{
		{"n1", "", "without -peers"},
		{"", threeNodes, "without -node-id"},
		{"nx", threeNodes, "does not appear"},
		{"n1", "n1=http://a:1,n1=http://b:2", "duplicate"},
		{"n1", "n1-http://a:1", "not id=url"},
		{"n1", "=http://a:1", "empty node id"},
		{"n1", "n1=ftp://a:1", "http(s)"},
		{"n1", "n1=http://", "http(s)"},
		{"n1", "n1=http://a:1/v1", "only"},
		{"n1", "n1=http://a:1?x=1", "only"},
		{"n1", " , ,", "no nodes"},
	}
	for _, c := range cases {
		if _, err := Parse(c.self, c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q, %q) err = %v, want mention of %q", c.self, c.spec, err, c.want)
		}
	}
}

// TestHomeOfAgreement pins the zero-coordination placement contract:
// every node parsing the same spec (whatever its own identity) computes
// the same home for every project, and each home is a real member.
func TestHomeOfAgreement(t *testing.T) {
	views := make([]*Set, 0, 3)
	for _, self := range []string{"n1", "n2", "n3"} {
		s, err := Parse(self, threeNodes)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, s)
	}
	owned := map[string]int{}
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("project-%d", i)
		home := views[0].HomeOf(id)
		if _, ok := views[0].Lookup(home.ID); !ok {
			t.Fatalf("HomeOf(%q) = %+v, not a member", id, home)
		}
		owned[home.ID]++
		for _, v := range views[1:] {
			if got := v.HomeOf(id); got != home {
				t.Fatalf("views disagree on %q: %+v vs %+v", id, got, home)
			}
		}
		if views[0].IsHome(id) != (home.ID == "n1") {
			t.Fatalf("IsHome(%q) disagrees with HomeOf", id)
		}
	}
	for _, n := range []string{"n1", "n2", "n3"} {
		if owned[n] == 0 {
			t.Fatalf("node %s homes no projects out of 300", n)
		}
	}
}
