package assign

import (
	"math"
	"runtime"

	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/pool"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// InfoGain computes the inherent information gain of Eq. 6: the expected
// drop in the cell's (uniform) entropy if worker u answers it, under the
// worker model with effective variance s = alpha_i beta_j phi_u. Delta
// entropies are comparable across datatypes even though raw Shannon and
// differential entropies are not (Sec. 5.1).
func InfoGain(m *core.Model, u tabular.WorkerID, c tabular.Cell) float64 {
	s := m.CellVarianceFor(u, c)
	return infoGainWithVariance(m, c, s)
}

// infoGainWithVariance scores a cell for a hypothetical answer of effective
// variance s (shared by inherent and structure-aware gain).
func infoGainWithVariance(m *core.Model, c tabular.Cell, s float64) float64 {
	if post, ok := m.PosteriorCat(c); ok {
		q := math.Erf(m.Opts.Eps / math.Sqrt(2*s))
		return catInfoGain(post, q)
	}
	_, v0, _ := m.PosteriorCont(c)
	v1 := core.ContVarWithAnswer(v0, s)
	// H_d(v0) - H_d(v1) = 0.5 ln(v0/v1); independent of the answer value
	// because Gaussian posterior variance is data-independent.
	return 0.5 * math.Log(v0/v1)
}

// catInfoGain computes H(post) - E_answer[H(post | answer)] for the
// symmetric-error worker model with correctness probability q.
//
// The naive preposterior costs O(|L|^2); exploiting the model's symmetry
// (all wrong labels share the likelihood r = (1-q)/(|L|-1)) brings it to
// O(|L|): with p = post[z'] and G = sum_z post_z ln post_z, the
// unnormalised posterior after observing answer z' has
// sum_z w_z ln w_z = p*q*ln(p*q) + r*(G - p ln p) + r*(1-p)*ln(r) and
// normaliser C = p*q + (1-p)*r, giving H = ln C - (sum w ln w)/C.
func catInfoGain(post []float64, q float64) float64 {
	l := len(post)
	if l < 2 {
		return 0
	}
	q = stats.Clamp(q, 1e-9, 1-1e-9)
	r := (1 - q) / float64(l-1)
	lnq, lnr := math.Log(q), math.Log(r)

	h0 := 0.0
	g := 0.0
	for _, p := range post {
		if p > 0 {
			plnp := p * math.Log(p)
			g += plnp
			h0 -= plnp
		}
	}

	expH := 0.0
	for _, p := range post {
		cNorm := p*q + (1-p)*r
		if cNorm <= 0 {
			continue
		}
		var t1, plnp float64
		if p > 0 {
			plnp = p * math.Log(p)
			t1 = p * q * (math.Log(p) + lnq)
		}
		t2 := r*(g-plnp) + r*(1-p)*lnr
		h := math.Log(cNorm) - (t1+t2)/cNorm
		expH += cNorm * h
	}
	return h0 - expH
}

// StructInfoGain computes the structure-aware information gain (Sec. 5.2):
// like InfoGain, but the worker's expected error on cell c is conditioned
// on the errors they already exhibited on other cells of row c.Row (Eq. 7).
// With no usable row history or correlations it reduces to InfoGain.
func StructInfoGain(m *core.Model, em *ErrorModel, est metrics.Estimates, u tabular.WorkerID, c tabular.Cell) float64 {
	if em == nil {
		return InfoGain(m, u, c)
	}
	rowErrs := em.RowErrors(u, c.Row, est)
	return structInfoGainWithErrors(m, em, u, c, rowErrs)
}

// structInfoGainWithErrors scores one cell given the worker's already
// computed errors on the target row (see ErrorModel.WorkerRowErrors).
func structInfoGainWithErrors(m *core.Model, em *ErrorModel, u tabular.WorkerID, c tabular.Cell, rowErrsIn map[int]float64) float64 {
	rowErrs := rowErrsIn
	if _, selfObserved := rowErrs[c.Col]; selfObserved {
		// Never condition on the target itself; copy-on-write since the
		// caller reuses the map across cells of the row.
		rowErrs = make(map[int]float64, len(rowErrsIn))
		for k, v := range rowErrsIn {
			if k != c.Col {
				rowErrs[k] = v
			}
		}
	}
	if len(rowErrs) == 0 {
		return InfoGain(m, u, c)
	}
	if post, ok := m.PosteriorCat(c); ok {
		pWrong, ok := em.CondWrongProb(c.Col, rowErrs)
		if !ok {
			return InfoGain(m, u, c)
		}
		// Blend the structural prediction with the worker's inherent
		// quality: the conditional describes the crowd's behaviour on this
		// column pair, the quality describes this worker.
		qInherent := m.CellQuality(u, c)
		qStruct := 1 - pWrong
		q := 0.5 * (qInherent + qStruct)
		return catInfoGain(post, q)
	}
	cond, ok := em.CondErrorNormal(c.Col, rowErrs)
	if !ok {
		return InfoGain(m, u, c)
	}
	// The effective answer variance is the expected squared error
	// E[e^2] = var + mean^2 of the conditional error distribution, blended
	// with the inherent variance in log space.
	sStruct := stats.Clamp(cond.Var+cond.Mu*cond.Mu, minEffectiveVariance, maxEffectiveVariance)
	sInherent := m.CellVarianceFor(u, c)
	s := math.Exp(0.5 * (math.Log(sStruct) + math.Log(sInherent)))
	return infoGainWithVariance(m, c, s)
}

// BatchInfoGain scores a whole batch D as the sum of per-cell gains
// (Eq. 9 under the independent-cells approximation the greedy top-K of
// Sec. 5.3 optimises).
func BatchInfoGain(m *core.Model, u tabular.WorkerID, cells []tabular.Cell) float64 {
	total := 0.0
	for _, c := range cells {
		total += InfoGain(m, u, c)
	}
	return total
}

// scoreAll computes score(c) for every candidate cell, fanning work across
// the persistent worker pool — the parallel assignment computation
// discussed at the end of Sec. 5.1 and measured in Fig. 11.
func scoreAll(cells []tabular.Cell, parallelism int, score func(tabular.Cell) float64) []float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	out := make([]float64, len(cells))
	if parallelism == 1 || len(cells) < 64 {
		for i, c := range cells {
			out[i] = score(c)
		}
		return out
	}
	pool.Run(parallelism, func(shard int) {
		lo, hi := pool.ChunkBounds(len(cells), parallelism, shard)
		for i := lo; i < hi; i++ {
			out[i] = score(cells[i])
		}
	})
	return out
}
