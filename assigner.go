package tcrowd

import (
	"errors"

	"tcrowd/internal/assign"
	"tcrowd/internal/core"
)

// AssignPolicy selects the task-assignment strategy of an Assigner.
type AssignPolicy int

const (
	// PolicyStructureAware uses structure-aware information gain (the
	// paper's default, Sec. 5.2).
	PolicyStructureAware AssignPolicy = iota
	// PolicyInherent uses inherent information gain (Sec. 5.1).
	PolicyInherent
	// PolicyEntropy assigns the cell with the highest uniform entropy.
	PolicyEntropy
	// PolicyRandom assigns random unanswered cells.
	PolicyRandom
	// PolicyLooping assigns cells round-robin.
	PolicyLooping
)

// AssignOptions configures an Assigner.
type AssignOptions struct {
	// Policy is the selection strategy (default PolicyStructureAware).
	Policy AssignPolicy
	// Infer tunes the embedded truth inference.
	Infer InferOptions
	// Seed drives random tie-breaking.
	Seed int64
}

// Assigner is the online task-assignment engine: feed it the answers
// collected so far (Observe), then ask which cells to hand to each arriving
// worker (Next). It embeds T-Crowd truth inference, so it also exposes the
// current truth estimates.
type Assigner struct {
	table *Table
	sys   *assign.TCrowdSystem
	log   *AnswerLog
}

// ErrNotObserved is returned by Next before the first Observe call.
var ErrNotObserved = errors.New("tcrowd: assigner has no observations; call Observe first")

// NewAssigner builds an assignment engine for the given table.
func NewAssigner(t *Table, opts AssignOptions) *Assigner {
	sys := assign.NewTCrowdSystem(opts.Seed)
	co := opts.Infer.toCore()
	if co.MaxIter == 0 {
		co.MaxIter = 12 // online refreshes need responsiveness, not full convergence
	}
	sys.Opts = co
	switch opts.Policy {
	case PolicyInherent:
		sys.Policy = assign.InherentIG{}
	case PolicyEntropy:
		sys.Policy = assign.Entropy{}
	case PolicyRandom:
		sys.Policy = assign.Random{}
	case PolicyLooping:
		sys.Policy = &assign.Looping{}
	default:
		sys.Policy = assign.StructureIG{}
	}
	return &Assigner{table: t, sys: sys}
}

// Observe refreshes the engine with the answers collected so far. Call it
// after every batch of submissions (running it on every single answer is
// unnecessary; the paper refreshes per incoming worker).
func (a *Assigner) Observe(log *AnswerLog) error {
	if err := a.sys.Refresh(a.table, log); err != nil && err != core.ErrNoAnswers {
		return err
	}
	a.log = log
	return nil
}

// Next returns up to k cells to assign to worker u, best first. It returns
// ErrNotObserved before the first Observe.
func (a *Assigner) Next(u WorkerID, k int) ([]Cell, error) {
	if a.log == nil {
		return nil, ErrNotObserved
	}
	cells := a.sys.Select(u, k, a.log)
	return cells, nil
}

// EstimatedTruth returns the engine's current truth estimates (nil before
// the first informative Observe).
func (a *Assigner) EstimatedTruth() [][]Value {
	est := a.sys.Estimates()
	if est == nil {
		return nil
	}
	return [][]Value(est)
}

// InformationGain scores one cell for one worker with the inherent
// information gain of Eq. 6 — exposed for clients building custom
// schedulers on top of the model. Returns 0 before the first informative
// Observe.
func (a *Assigner) InformationGain(u WorkerID, c Cell) float64 {
	m := a.model()
	if m == nil {
		return 0
	}
	return assign.InfoGain(m, u, c)
}

func (a *Assigner) model() *core.Model { return a.sys.Model() }
