package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/internal/platform"
)

// newTestServer spins a real platform behind httptest and returns a client
// pointed at it — the e2e harness the acceptance criteria call for.
func newTestServer(t *testing.T) (*Client, *platform.Platform) {
	t.Helper()
	p := platform.New(7)
	srv := httptest.NewServer(platform.NewServer(p))
	t.Cleanup(func() { srv.Close(); p.Close() })
	return New(srv.URL), p
}

func schema() api.Schema {
	return api.Schema{
		Key: "item",
		Columns: []api.Column{
			{Name: "category", Type: "categorical", Labels: []string{"book", "movie", "game"}},
			{Name: "price", Type: "continuous", Min: 0, Max: 500},
		},
	}
}

// TestClientEndToEnd drives every /v1 endpoint through the SDK against a
// live server: create, list, tasks, single + batch submission, consistent
// estimates with pagination, snapshot, project stats, shard stats.
func TestClientEndToEnd(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	if err := c.CreateProject(ctx, api.CreateProjectRequest{ID: "books", Schema: schema(), Rows: 4}); err != nil {
		t.Fatal(err)
	}

	// Duplicate create -> typed conflict.
	err := c.CreateProject(ctx, api.CreateProjectRequest{ID: "books", Schema: schema(), Rows: 4})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeDuplicateProject || ae.Status != http.StatusConflict {
		t.Fatalf("duplicate create: %v", err)
	}

	ids, err := c.Projects(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "books" {
		t.Fatalf("projects: %v %v", ids, err)
	}

	// Unknown project -> typed not-found.
	if _, err := c.Tasks(ctx, "ghost", "w1", 1); !errors.As(err, &ae) || ae.Code != api.CodeNoProject {
		t.Fatalf("ghost tasks: %v", err)
	}

	tasks, err := c.Tasks(ctx, "books", "w1", 3)
	if err != nil || len(tasks) != 3 {
		t.Fatalf("tasks: %v %v", tasks, err)
	}
	for _, task := range tasks {
		if task.Type == "categorical" && len(task.Labels) == 0 {
			t.Fatalf("categorical task without labels: %+v", task)
		}
	}

	// Single submission.
	res, err := c.SubmitAnswer(ctx, "books", api.LabelAnswer("w1", 0, "category", "movie"))
	if err != nil || res.Status != "recorded" || res.Recorded != 1 {
		t.Fatalf("single submit: %+v %v", res, err)
	}

	// Double answer -> typed conflict with the item's own code.
	_, err = c.SubmitAnswer(ctx, "books", api.LabelAnswer("w1", 0, "category", "book"))
	if !errors.As(err, &ae) || ae.Code != api.CodeAlreadyAnswered || ae.Status != http.StatusConflict {
		t.Fatalf("double submit: %v", err)
	}

	// Batch submission: two more workers agree on row 0.
	batch := []api.Answer{
		api.LabelAnswer("w2", 0, "category", "movie"),
		api.LabelAnswer("w3", 0, "category", "movie"),
		api.NumberAnswer("w1", 0, "price", 99),
		api.NumberAnswer("w2", 0, "price", 100),
		api.NumberAnswer("w3", 0, "price", 101),
	}
	bres, err := c.SubmitAnswers(ctx, "books", batch)
	if err != nil || bres.Recorded != len(batch) {
		t.Fatalf("batch submit: %+v %v", bres, err)
	}

	// Rejected batch: every bad row reported, nothing recorded.
	stBefore, err := c.Stats(ctx, "books")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitAnswers(ctx, "books", []api.Answer{
		api.LabelAnswer("w9", 0, "category", "movie"),
		api.LabelAnswer("w9", 99, "category", "movie"),
		api.LabelAnswer("w9", 1, "category", "spaceship"),
	})
	if !errors.As(err, &ae) || ae.Code != api.CodeBatchRejected {
		t.Fatalf("bad batch: %v", err)
	}
	if len(ae.Items) != 2 || ae.Items[0].Index != 1 || ae.Items[1].Index != 2 ||
		ae.Items[0].Code != api.CodeBadRequest {
		t.Fatalf("bad batch items: %+v", ae.Items)
	}
	// Log-level failures (double answers, incl. duplicates inside the
	// batch itself) reject atomically too, with their own code.
	_, err = c.SubmitAnswers(ctx, "books", []api.Answer{
		api.LabelAnswer("w9", 1, "category", "movie"),
		api.LabelAnswer("w9", 1, "category", "movie"), // intra-batch duplicate
	})
	if !errors.As(err, &ae) || ae.Code != api.CodeBatchRejected ||
		len(ae.Items) != 1 || ae.Items[0].Index != 1 || ae.Items[0].Code != api.CodeAlreadyAnswered {
		t.Fatalf("duplicate batch: %v", err)
	}
	st, err := c.Stats(ctx, "books")
	if err != nil || st.Answers != stBefore.Answers {
		t.Fatalf("rejected batch recorded answers: %+v -> %+v (%v)", stBefore, st, err)
	}

	// Strongly consistent read: MinGeneration above anything published
	// forces one refresh-if-stale round, so the body reflects every
	// answer above.
	est, err := c.Estimates(ctx, "books", EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Fresh || est.NextCursor != "" || est.Generation == 0 {
		t.Fatalf("estimates staleness/pagination: %+v", est)
	}
	assertRow0(t, est)
	if len(est.WorkerQuality) != 3 {
		t.Fatalf("worker quality: %+v", est.WorkerQuality)
	}

	// Paginated walk merges to the same estimates, pinned to the same
	// generation by the cursor.
	paged, err := c.AllEstimates(ctx, "books", 1, EstimatesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if paged.Generation != est.Generation {
		t.Fatalf("paged walk generation %d, want %d", paged.Generation, est.Generation)
	}
	if len(paged.Estimates) != len(est.Estimates) {
		t.Fatalf("paged walk: %d vs %d estimates", len(paged.Estimates), len(est.Estimates))
	}
	for i := range paged.Estimates {
		if paged.Estimates[i] != est.Estimates[i] &&
			(paged.Estimates[i].Entity != est.Estimates[i].Entity ||
				paged.Estimates[i].Column != est.Estimates[i].Column) {
			t.Fatalf("paged walk diverged at %d: %+v vs %+v", i, paged.Estimates[i], est.Estimates[i])
		}
	}

	// The default (latest-pinned, non-blocking) read serves the published
	// estimates, and a ?generation= re-read returns the same state.
	snap, err := c.Estimates(ctx, "books", EstimatesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	assertRow0(t, snap)
	again, err := c.Estimates(ctx, "books", EstimatesQuery{Generation: snap.Generation})
	if err != nil {
		t.Fatal(err)
	}
	if again.Generation != snap.Generation || len(again.Estimates) != len(snap.Estimates) {
		t.Fatalf("generation re-read diverged: %+v vs %+v", again, snap)
	}

	// Conditional GET: the copy we hold is current -> ErrNotModified.
	if _, err := c.Estimates(ctx, "books", EstimatesQuery{IfNotGeneration: snap.Generation}); !errors.Is(err, ErrNotModified) {
		t.Fatalf("conditional read of unchanged generation: %v", err)
	}

	// Shard stats are visible through the SDK.
	ss, err := c.ShardStats(ctx)
	if err != nil || ss.Workers == 0 || len(ss.Shards) != ss.Workers {
		t.Fatalf("shard stats: %+v %v", ss, err)
	}
	if ss.Totals.Completed == 0 {
		t.Fatalf("no completed refreshes in totals: %+v", ss.Totals)
	}

	// Delete the project; later reads get the typed not-found, and a
	// second delete is the same 404 (removal is final, not idempotent-OK).
	if err := c.DeleteProject(ctx, "books"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Estimates(ctx, "books", EstimatesQuery{}); !errors.As(err, &ae) || ae.Code != api.CodeNoProject {
		t.Fatalf("read after delete: %v", err)
	}
	if err := c.DeleteProject(ctx, "books"); !errors.As(err, &ae) || ae.Code != api.CodeNoProject {
		t.Fatalf("double delete: %v", err)
	}
}

// assertRow0 checks the unanimous row-0 truth: category "movie", price
// near 100.
func assertRow0(t *testing.T, est *api.EstimatesResponse) {
	t.Helper()
	foundCat, foundPrice := false, false
	for _, e := range est.Estimates {
		if e.Entity != "item-1" {
			continue
		}
		switch e.Column {
		case "category":
			foundCat = true
			if e.Label == nil || *e.Label != "movie" {
				t.Fatalf("category estimate: %+v", e)
			}
		case "price":
			foundPrice = true
			if e.Number == nil || *e.Number < 95 || *e.Number > 105 {
				t.Fatalf("price estimate: %+v", e)
			}
		}
	}
	if !foundCat || !foundPrice {
		t.Fatalf("row-0 estimates incomplete: %+v", est.Estimates)
	}
}

// TestClientRetryAfterBackoff pins the automatic 429 handling: the client
// honours Retry-After and retries, succeeding once the server recovers,
// and gives up with the typed error when retries are exhausted.
func TestClientRetryAfterBackoff(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/projects/p/estimates", func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = writeJSONBody(w, api.ErrorEnvelope{Err: api.Error{
				Code: api.CodeShardSaturated, Message: "busy", Retryable: true}})
			return
		}
		_ = writeJSONBody(w, api.EstimatesResponse{AnswersSeen: 42, Fresh: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, WithMaxRetries(3), WithMaxRetryWait(10*time.Millisecond))
	est, err := c.Estimates(context.Background(), "p", EstimatesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if est.AnswersSeen != 42 || calls != 3 {
		t.Fatalf("retry outcome: %+v after %d calls", est, calls)
	}

	// Exhausted retries surface the typed error.
	calls = -10
	c2 := New(srv.URL, WithMaxRetries(1), WithMaxRetryWait(time.Millisecond))
	_, err = c2.Estimates(context.Background(), "p", EstimatesQuery{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeShardSaturated || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("exhausted retries: %v", err)
	}

	// A cancelled context aborts the backoff wait.
	calls = -10
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c3 := New(srv.URL, WithMaxRetries(5))
	if _, err := c3.Estimates(ctx, "p", EstimatesQuery{}); err == nil {
		t.Fatal("cancelled context did not abort")
	}
}

func writeJSONBody(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// TestClientFollowsNotHome pins the cluster referral contract: a 421
// not_home envelope carrying a home address makes the client transparently
// re-issue the request there, and a referral loop gives up with the typed
// error instead of bouncing forever.
func TestClientFollowsNotHome(t *testing.T) {
	var homeCalls int
	homeMux := http.NewServeMux()
	homeMux.HandleFunc("GET /v1/projects/p/estimates", func(w http.ResponseWriter, r *http.Request) {
		homeCalls++
		_ = writeJSONBody(w, api.EstimatesResponse{AnswersSeen: 7, Fresh: true})
	})
	home := httptest.NewServer(homeMux)
	defer home.Close()

	writeNotHome := func(homeURL string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			_ = writeJSONBody(w, api.ErrorEnvelope{Err: api.Error{
				Code: api.CodeNotHome, Message: "project p lives elsewhere", Home: homeURL}})
		}
	}
	edge := httptest.NewServer(writeNotHome(home.URL))
	defer edge.Close()

	// Pointed at the wrong node, the client lands on the home and succeeds.
	c := New(edge.URL)
	est, err := c.Estimates(context.Background(), "p", EstimatesQuery{})
	if err != nil {
		t.Fatalf("follow failed: %v", err)
	}
	if est.AnswersSeen != 7 || homeCalls != 1 {
		t.Fatalf("followed read = %+v after %d home calls", est, homeCalls)
	}

	// Two nodes referring to each other (stale membership on both sides)
	// must terminate: the typed 421 surfaces once the follow budget is
	// spent, with the last referral's home preserved for the caller.
	var a, b *httptest.Server
	a = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeNotHome(b.URL)(w, r)
	}))
	defer a.Close()
	b = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeNotHome(a.URL)(w, r)
	}))
	defer b.Close()

	cLoop := New(a.URL)
	_, err = cLoop.Estimates(context.Background(), "p", EstimatesQuery{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeNotHome || ae.Status != http.StatusMisdirectedRequest {
		t.Fatalf("referral loop: %v, want typed not_home", err)
	}
	if ae.Home == "" {
		t.Fatalf("loop error lost the Home referral: %+v", ae)
	}
}
