package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tcrowd/internal/reputation"
	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

// ErrDurability is returned when the write-ahead log cannot make a
// mutation durable (failed append, failed fsync, wedged log). The answer
// is NOT recorded — acknowledgement means durable, so a failure to
// persist is a failure to accept. Retryable: the fault may be transient,
// and the WAL heals torn appends.
var ErrDurability = errors.New("platform: durability failure")

// WAL record types. walRecCheckpoint must stay distinct from every other
// type forever: replay locates its starting segment by it. The enum
// directive makes tcrowd-lint require every switch mentioning one of
// these to handle all of them — a new record type cannot silently skip a
// replay path.
//
//tcrowd:enum walrec
const (
	walRecCheckpoint byte = 1 // full project state (compaction artifact)
	walRecCreate     byte = 2 // project registration
	walRecBatch      byte = 3 // one accepted answer batch
	// walRecReputation carries the full reputation snapshots of workers
	// whose state just changed (a graduated-response verdict). Replay
	// applies the records in order, so the last snapshot per worker wins
	// — a ban acknowledged before a crash is a ban after recovery.
	walRecReputation byte = 4
)

// walTombstoneSuffix marks a project directory being deleted. The '#'
// cannot appear in url.PathEscape output, so no live project directory
// can collide with a tombstone. Recovery reaps tombstones instead of
// replaying them, making DeleteProject crash-safe: either the rename
// happened (project gone) or it did not (project intact).
const walTombstoneSuffix = "#deleted"

// compactJobSuffix namespaces compaction jobs in the shard scheduler's
// coalescing map, like assignJobSuffix for assignment refreshes: routed
// to the project's home shard, never coalesced into refresh jobs.
const compactJobSuffix = "\x00compact"

// WALOptions configures the platform's durable write-ahead log. A nil
// *WALOptions in Options disables durability (in-memory platform, as
// before).
type WALOptions struct {
	// Dir is the log root; each project logs under Dir/<escaped-id>/.
	Dir string
	// SegmentBytes is the per-segment rotation threshold (default
	// wal.DefaultSegmentBytes). Rotation also schedules compaction.
	SegmentBytes int64
	// Policy is the fsync policy (default wal.SyncAlways).
	Policy wal.SyncPolicy
	// Interval is the flush cadence for wal.SyncInterval.
	Interval time.Duration
	// FS overrides the filesystem (fault-injection tests). Default: the
	// real filesystem.
	FS wal.FS
}

func (o *WALOptions) fs() wal.FS {
	if o.FS != nil {
		return o.FS
	}
	return wal.OSFS()
}

// projDir is the per-project log directory. IDs are path-escaped so
// arbitrary project names map to safe single directory names.
func (o *WALOptions) projDir(id string) string {
	return filepath.Join(o.Dir, url.PathEscape(id))
}

// walOptions builds the wal.Options for one project log. A non-empty
// policyOverride (already validated by createProjectLocked or the create
// record's decoder) replaces the platform-wide fsync policy — hot
// projects can run "always" while bulk-import scratch projects run
// "never" on the same platform.
func (o *WALOptions) walOptions(policyOverride string) wal.Options {
	policy := o.Policy
	if policyOverride != "" {
		if p, err := wal.ParseSyncPolicy(policyOverride); err == nil {
			policy = p
		}
	}
	return wal.Options{
		SegmentBytes:   o.SegmentBytes,
		Policy:         policy,
		Interval:       o.Interval,
		FS:             o.FS,
		CheckpointType: walRecCheckpoint,
	}
}

// openProjectWAL mounts (creating if needed) one project's log.
func (o *WALOptions) openProjectWAL(id, policyOverride string) (*wal.Log, wal.Replay, error) {
	return wal.Open(o.projDir(id), o.walOptions(policyOverride))
}

// walCreateJSON is the payload of a create record: everything needed to
// re-register the project at replay.
type walCreateJSON struct {
	ID           string         `json:"id"`
	Schema       tabular.Schema `json:"schema"`
	Entities     []string       `json:"entities"`
	TCrowd       bool           `json:"tcrowd,omitempty"`
	RefreshEvery int            `json:"refresh_every,omitempty"`
	// FsyncPolicy is the project's durability override ("always",
	// "interval" or "never"; empty = platform default). Recorded so
	// recovery reopens the log under the same policy the project was
	// created with.
	FsyncPolicy string `json:"fsync_policy,omitempty"`
	// PolishFrac records the polish-cadence knob so recovery keeps the
	// refresh economics the project was created with.
	PolishFrac float64 `json:"polish_frac,omitempty"`
	// Reputation records whether the project runs the reputation engine
	// (whose verdicts ride the log as walRecReputation records).
	Reputation bool `json:"reputation,omitempty"`
}

// walCheckpointJSON is the payload of a checkpoint record. It embeds the
// create info because compaction deletes the segment holding the
// original create record; a checkpoint must be a self-sufficient replay
// start.
type walCheckpointJSON struct {
	Create walCreateJSON `json:"create"`
	// Generation is the published snapshot generation the checkpoint was
	// taken at (0 before the first publish) — diagnostic provenance tying
	// the compaction artifact to the copy-on-publish lineage.
	Generation int             `json:"generation"`
	Answers    json.RawMessage `json:"answers"`
	// Reputation is the full per-worker reputation state at checkpoint
	// time. Compaction deletes the segments holding the verdict records,
	// so the checkpoint must carry the folded state forward.
	Reputation []reputation.WorkerSnapshot `json:"reputation,omitempty"`
}

// walCreateInfo captures proj's registration facts. Caller holds p.mu.
func walCreateInfo(proj *Project) walCreateJSON {
	return walCreateJSON{
		ID:           proj.ID,
		Schema:       proj.Table.Schema,
		Entities:     proj.Table.Entities,
		TCrowd:       proj.sys != nil,
		RefreshEvery: proj.refreshEvery,
		FsyncPolicy:  proj.fsyncPolicy,
		PolishFrac:   proj.polishFrac,
		Reputation:   proj.rep != nil,
	}
}

// appendReputationRecord logs the current snapshots of the workers whose
// reputation state just changed. Caller holds p.mu (so the record lands
// in stream order relative to the answer batches that caused it). The
// returned bool reports a segment rotation, like wal.Log.Append.
func appendReputationRecord(proj *Project, workers []tabular.WorkerID) (bool, error) {
	snaps := make([]reputation.WorkerSnapshot, 0, len(workers))
	for _, u := range workers {
		snaps = append(snaps, proj.rep.SnapshotOf(u))
	}
	payload, err := json.Marshal(snaps)
	if err != nil {
		return false, err
	}
	return proj.wal.Append(wal.Record{Type: walRecReputation, Data: payload})
}

// appendCreateRecord logs the project's registration and forces it to
// stable storage regardless of the fsync policy: creations are rare and
// losing one invalidates every later record in the directory.
func appendCreateRecord(l *wal.Log, info walCreateJSON) error {
	payload, err := json.Marshal(info)
	if err != nil {
		return err
	}
	if _, err := l.Append(wal.Record{Type: walRecCreate, Data: payload}); err != nil {
		return err
	}
	return l.Sync()
}

// scheduleCompaction enqueues a compaction of proj's WAL on its home
// shard (own coalescing key, so it never collapses into refreshes).
// Best-effort: a shed job is retried at the next segment rotation.
func (p *Platform) scheduleCompaction(projectID string, proj *Project) {
	_, _ = p.sched.SubmitNotifyKeyed(projectID, projectID+compactJobSuffix,
		func() error { return p.compactProject(proj) })
}

// compactProject rewrites proj's WAL as one checkpoint record carrying
// the full current state. It runs on the project's shard worker and
// takes p.mu for the duration of the rewrite so the checkpoint and the
// append stream cannot interleave — the WAL stays an exact prefix-free
// replay of the in-memory log.
func (p *Platform) compactProject(proj *Project) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if proj.wal == nil {
		return nil
	}
	blob, err := tabular.MarshalAnswers(proj.Table.Schema, proj.Log.All())
	if err != nil {
		return err
	}
	gen := 0
	if snap := proj.snapshot.Load(); snap != nil {
		gen = snap.Generation
	}
	var repSnaps []reputation.WorkerSnapshot
	if proj.rep != nil {
		repSnaps = proj.rep.Snapshot()
	}
	payload, err := json.Marshal(walCheckpointJSON{
		Create:     walCreateInfo(proj),
		Generation: gen,
		Answers:    blob,
		Reputation: repSnaps,
	})
	if err != nil {
		return err
	}
	if err := proj.wal.Compact(wal.Record{Data: payload}); err != nil {
		// A deleted project's in-flight compaction lands on a closed log;
		// that is shutdown noise, not a fault.
		if errors.Is(err, wal.ErrClosed) {
			return nil
		}
		return err
	}
	return nil
}

// RecoveryReport summarises what Recover replayed.
type RecoveryReport struct {
	// Projects and Answers count what was rebuilt from the logs.
	Projects int
	Answers  int
	// TornProjects lists projects whose final segment ended in a torn
	// frame and was truncated back to the last durable record.
	TornProjects []string
}

// Recover boots a platform from its write-ahead logs: every project
// directory under the WAL root is replayed (create + batches, or the
// newest checkpoint + batches after it), torn tails are truncated, and
// projects with answers get a warmup refresh enqueued so the read path
// serves shortly after boot. Tombstoned directories (crashed deletes)
// and empty logs (crashed creates) are reaped.
//
// A bad frame before a log's tail is unattributable corruption: Recover
// refuses to boot with an error wrapping wal.ErrWALCorrupt rather than
// silently dropping history.
func Recover(seed int64, opts Options) (*Platform, RecoveryReport, error) {
	if opts.WAL == nil {
		return nil, RecoveryReport{}, errors.New("platform: Recover requires Options.WAL")
	}
	p := NewWithOptions(seed, opts)
	var rep RecoveryReport
	fs := opts.WAL.fs()
	if err := fs.MkdirAll(opts.WAL.Dir, 0o755); err != nil {
		p.Close()
		return nil, rep, fmt.Errorf("platform: wal root: %w", err)
	}
	entries, err := fs.ReadDir(opts.WAL.Dir)
	if err != nil {
		p.Close()
		return nil, rep, fmt.Errorf("platform: list wal root: %w", err)
	}
	var warm []*Project
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(opts.WAL.Dir, e.Name())
		if strings.HasSuffix(e.Name(), walTombstoneSuffix) {
			_ = fs.RemoveAll(dir) // crashed delete: finish it
			continue
		}
		proj, projRep, err := p.recoverProject(dir)
		if err != nil {
			p.Close()
			return nil, rep, fmt.Errorf("platform: recover %s: %w", e.Name(), err)
		}
		if proj == nil {
			continue // empty log (crashed create), reaped
		}
		rep.Projects++
		rep.Answers += proj.Log.Len()
		if projRep.Torn {
			rep.TornProjects = append(rep.TornProjects, proj.ID)
		}
		if proj.Log.Len() > 0 {
			warm = append(warm, proj)
		}
	}
	for _, proj := range warm {
		_ = p.sched.Submit(proj.ID, func() error { return p.refreshProject(proj) })
	}
	return p, rep, nil
}

// recoverProject replays one project directory. A nil project with nil
// error means the directory held no durable records and was removed.
func (p *Platform) recoverProject(dir string) (*Project, wal.Replay, error) {
	l, replay, err := wal.Open(dir, p.walOpts.walOptions(""))
	if err != nil {
		return nil, wal.Replay{}, err
	}
	if len(replay.Records) == 0 {
		// A crash between directory creation and the create record's
		// fsync: nothing was ever acknowledged, so nothing is lost.
		_ = l.Close()
		_ = p.walOpts.fs().RemoveAll(dir)
		return nil, wal.Replay{}, nil
	}

	var info walCreateJSON
	var answerBlobs []json.RawMessage
	// repBlobs collects reputation snapshots in log order (checkpoint
	// state first, then every verdict record); applied last-wins per
	// worker via Restore.
	var repBlobs [][]reputation.WorkerSnapshot
	first := replay.Records[0]
	//lint:allow errtable the switch partitions the enum on purpose: batch/reputation records at log head are corruption, rejected (with the raw byte) by the default arm
	switch first.Type {
	case walRecCreate:
		if err := json.Unmarshal(first.Data, &info); err != nil {
			return nil, wal.Replay{}, fmt.Errorf("%w: undecodable create record: %v", wal.ErrWALCorrupt, err)
		}
	case walRecCheckpoint:
		var ck walCheckpointJSON
		if err := json.Unmarshal(first.Data, &ck); err != nil {
			return nil, wal.Replay{}, fmt.Errorf("%w: undecodable checkpoint record: %v", wal.ErrWALCorrupt, err)
		}
		info = ck.Create
		if len(ck.Answers) > 0 {
			answerBlobs = append(answerBlobs, ck.Answers)
		}
		if len(ck.Reputation) > 0 {
			repBlobs = append(repBlobs, ck.Reputation)
		}
	default:
		return nil, wal.Replay{}, fmt.Errorf("%w: log starts with record type %d, want create or checkpoint", wal.ErrWALCorrupt, first.Type)
	}
	for i, rec := range replay.Records[1:] {
		//lint:allow errtable the switch partitions the enum on purpose: create/checkpoint records mid-log are corruption, rejected (with the raw byte) by the default arm
		switch rec.Type {
		case walRecBatch:
			answerBlobs = append(answerBlobs, rec.Data)
		case walRecReputation:
			var snaps []reputation.WorkerSnapshot
			if err := json.Unmarshal(rec.Data, &snaps); err != nil {
				return nil, wal.Replay{}, fmt.Errorf("%w: undecodable reputation record %d: %v", wal.ErrWALCorrupt, i+1, err)
			}
			repBlobs = append(repBlobs, snaps)
		default:
			return nil, wal.Replay{}, fmt.Errorf("%w: record %d has type %d mid-log, want batch or reputation", wal.ErrWALCorrupt, i+1, rec.Type)
		}
	}

	// A project created with a per-project fsync override must keep it
	// across restarts: reopen the healed log under the recorded policy.
	// An unknown policy string is unattributable corruption, same as any
	// other undecodable create field.
	if info.FsyncPolicy != "" {
		pol, perr := wal.ParseSyncPolicy(info.FsyncPolicy)
		if perr != nil {
			_ = l.Close()
			return nil, wal.Replay{}, fmt.Errorf("%w: create record: %v", wal.ErrWALCorrupt, perr)
		}
		if pol != p.walOpts.Policy {
			_ = l.Close()
			l, _, err = wal.Open(dir, p.walOpts.walOptions(info.FsyncPolicy))
			if err != nil {
				return nil, wal.Replay{}, err
			}
		}
	}

	p.mu.Lock()
	proj, err := p.createProjectLocked(info.ID, info.Schema, ProjectConfig{
		Rows:                len(info.Entities),
		Entities:            info.Entities,
		UseTCrowdAssignment: info.TCrowd,
		RefreshEvery:        info.RefreshEvery,
		FsyncPolicy:         info.FsyncPolicy,
		PolishFrac:          info.PolishFrac,
		Reputation:          info.Reputation,
	})
	if err == nil {
		for _, blob := range answerBlobs {
			as, derr := tabular.UnmarshalAnswers(blob, info.Schema)
			if derr != nil {
				err = fmt.Errorf("%w: undecodable answer batch: %v", wal.ErrWALCorrupt, derr)
				break
			}
			proj.Log.AddAll(as)
		}
	}
	if err == nil && proj.rep != nil {
		for _, snaps := range repBlobs {
			proj.rep.Restore(snaps)
		}
	}
	if err == nil {
		proj.wal = l
	} else if proj != nil {
		delete(p.projects, proj.ID)
	}
	p.mu.Unlock()
	if err != nil {
		_ = l.Close()
		return nil, wal.Replay{}, err
	}
	return proj, replay, nil
}

// DeleteProject unregisters a project and destroys its WAL. The delete
// is crash-safe: the project directory is atomically renamed to a
// tombstone before removal, and recovery reaps tombstones — a crash
// mid-removal can never resurrect a half-deleted project (or worse,
// replay its remaining segments as corrupt history).
//
// In-flight pinned reads against already-loaded snapshots keep working
// (the snapshots are immutable); new lookups fail with ErrNoProject, and
// the project's watch channels close.
func (p *Platform) DeleteProject(id string) error {
	p.mu.Lock()
	proj, ok := p.projects[id]
	if !ok {
		p.mu.Unlock()
		return ErrNoProject
	}
	if proj.follower {
		// Deletion is a write: it must land on the home node (which then
		// fans replica removal out via RemoveReplica).
		home := proj.homeAddr
		p.mu.Unlock()
		return &NotHomeError{Project: id, Home: home}
	}
	delete(p.projects, id)
	p.mu.Unlock()

	proj.hub.close()
	if proj.wal == nil {
		return nil
	}
	if err := proj.wal.Close(); err != nil {
		// The log is going away regardless; a flush error on close does
		// not block the delete.
		_ = err
	}
	fs := p.walOpts.fs()
	dir := p.walOpts.projDir(id)
	tomb := dir + walTombstoneSuffix
	if err := fs.Rename(dir, tomb); err != nil {
		return fmt.Errorf("%w: tombstone %s: %v", ErrDurability, id, err)
	}
	_ = fs.SyncDir(p.walOpts.Dir)
	_ = fs.RemoveAll(tomb) // best-effort; recovery reaps leftovers
	return nil
}

// SaveToFile atomically exports the platform's state (Save format) to
// path: the JSON is staged in a temp file in the same directory, fsynced,
// and renamed over the target — a crash mid-export can never destroy the
// previous export.
func (p *Platform) SaveToFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tcrowd-state-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := p.Save(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
