// Package pool provides a small persistent worker-goroutine pool for the
// CPU-bound fan-out/fan-in loops of the EM engine and the assignment
// scorer. The hot paths previously spawned fresh goroutines on every
// E-step / objective / gradient evaluation — thousands of spawns per
// inference run; the pool keeps GOMAXPROCS long-lived workers parked on a
// channel instead, so a parallel section costs one job handoff.
//
// Shards are claimed by atomic counter, and the submitting goroutine works
// the job too: even if every pool worker is busy (or the pool is saturated
// by a nested call), the caller alone completes all shards, so Run never
// deadlocks and needs no sizing guarantees.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// job is one Run invocation: shards [0, total) claimed by atomic counter.
type job struct {
	fn    func(int)
	next  atomic.Int64
	total int64
	wg    sync.WaitGroup
}

// work claims and executes shards until none remain.
func (j *job) work() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.total {
			return
		}
		j.fn(int(i))
		j.wg.Done()
	}
}

var (
	startOnce sync.Once
	jobs      chan *job
	size      int
)

func start() {
	size = runtime.GOMAXPROCS(0)
	jobs = make(chan *job, size)
	for i := 0; i < size; i++ {
		go func() {
			for j := range jobs {
				j.work()
			}
		}()
	}
}

// Size returns the number of persistent pool workers (GOMAXPROCS at pool
// start), starting the pool if needed. It is the shared GOMAXPROCS-derived
// sizing default for the layers above — notably the shard scheduler's
// worker count — so every parallelism decision in the process derives from
// the same number.
func Size() int {
	startOnce.Do(start)
	return size
}

// Run executes fn(shard) for every shard in [0, shards) across the
// persistent pool plus the calling goroutine, returning when all shards
// completed. fn must be safe for concurrent invocation with distinct shard
// indices; each index runs exactly once, so per-shard scratch indexed by
// the argument is race-free.
func Run(shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if shards == 1 {
		fn(0)
		return
	}
	startOnce.Do(start)
	j := &job{fn: fn, total: int64(shards)}
	j.wg.Add(shards)
	// Wake at most shards-1 helpers (the caller takes a share); skip
	// instead of blocking when the queue is full — remaining shards are
	// simply worked by whoever is free, caller included.
	for i := 0; i < size && i < shards-1; i++ {
		select {
		case jobs <- j:
		default:
		}
	}
	j.work()
	j.wg.Wait()
}

// ChunkBounds splits n items into parts near-equal contiguous chunks and
// returns the half-open bounds of chunk i: the shared range-sharding helper
// of the parallel E-step, M-step and scorer (previously copy-pasted at each
// site). Chunks are deterministic for fixed (n, parts), which keeps
// parallel floating-point reductions reproducible run to run.
func ChunkBounds(n, parts, i int) (lo, hi int) {
	if parts <= 0 {
		parts = 1
	}
	chunk := (n + parts - 1) / parts
	lo = i * chunk
	hi = lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
