// Command tcrowd-lint runs the project's static-analysis suite
// (internal/lint) over the given package patterns: lockcheck, detfold,
// noalloc and errtable — the comment-only invariants of the codebase
// turned into machine-checked contracts.
//
// Usage:
//
//	go run ./cmd/tcrowd-lint ./...
//
// Must run from inside the module (it resolves packages with `go list`
// and type-checks from source). Exit status is 1 when any unwaived
// finding or stale waiver exists, 0 otherwise. Waived findings
// (suppressed with "//lint:allow <analyzer> <reason>") never fail the
// run but are always printed, so every standing exception stays visible
// in CI logs and reviews.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcrowd/internal/lint"
)

func main() {
	var only string
	flag.StringVar(&only, "only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tcrowd-lint [-only lockcheck,detfold,...] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "tcrowd-lint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	pkgs, err := lint.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcrowd-lint: %v\n", err)
		os.Exit(2)
	}
	res, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcrowd-lint: %v\n", err)
		os.Exit(2)
	}

	failures := 0
	for _, d := range res.Unwaived() {
		fmt.Println(d)
		failures++
	}
	for _, d := range res.UnusedWaivers {
		fmt.Printf("%s:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		failures++
	}
	if waived := res.Waived(); len(waived) > 0 {
		fmt.Printf("\n%d waived finding(s) — standing exceptions, re-justify when touching these lines:\n", len(waived))
		for _, d := range waived {
			reason := d.WaiveReason
			if reason == "" {
				reason = "no reason given"
			}
			fmt.Printf("  %s [waived: %s]\n", d, reason)
		}
	}
	fmt.Printf("\ntcrowd-lint: %d package(s), %d finding(s) (%d unwaived, %d waived), %d stale waiver(s)\n",
		len(pkgs), len(res.Findings), len(res.Unwaived()), len(res.Waived()), len(res.UnusedWaivers))
	if failures > 0 {
		os.Exit(1)
	}
}
