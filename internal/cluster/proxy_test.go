package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/client"
	"tcrowd/internal/platform"
)

// TestClusterProxyErrorPassthrough pins the forwarding fix: a request
// proxied through a non-home edge must come back with the SAME status,
// typed error envelope, and backpressure headers the home node produced —
// byte for byte. A proxy that rewrote rate_limited into an opaque 502 (or
// dropped Retry-After) would break every SDK backoff loop behind it.
func TestClusterProxyErrorPassthrough(t *testing.T) {
	tc := startCluster(t, 2, RouteForward, false)
	set := tc.nodes[0].set
	edge, home := tc.nodes[0], tc.nodes[1]
	project := projectHomedOn(t, set, "n2")

	// A frozen clock makes the limiter's computed Retry-After identical on
	// every refused call, so proxied and direct responses must match
	// exactly.
	t0 := time.Now()
	home.local.SetRateLimiter(platform.NewRateLimiter(platform.RateLimiterConfig{
		Rate: 0.25, Burst: 1, Now: func() time.Time { return t0 },
	}))
	c := client.New(home.addr)
	if err := c.CreateProject(t.Context(), api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 3}); err != nil {
		t.Fatal(err)
	}

	// Ghost project id also homed on n2, so the edge forwards rather than
	// serving its own 404.
	ghost := ""
	for i := 0; ; i++ {
		id := fmt.Sprintf("ghost-%d", i)
		if set.HomeOf(id).ID == "n2" {
			ghost = id
			break
		}
	}

	// Drain worker wr's single token so the next tasks request is refused.
	if _, err := c.Tasks(t.Context(), project, "wr", 1); err != nil {
		t.Fatal(err)
	}

	// Each case builds its request per call: the limiter charges tokens by
	// worker, so the proxied and direct calls must spend DIFFERENT workers
	// or the second call would 429 for the wrong reason. The worker never
	// appears in the envelope, so byte-equality still holds. (The
	// rate-limited case deliberately reuses wr — a refused request charges
	// nothing, so it repeats identically.)
	badBatch := func(worker string) []byte {
		b, _ := json.Marshal(api.SubmitAnswersRequest{Answers: []api.Answer{
			api.LabelAnswer(worker, 0, "category", "novel"), // not in the label set
		}})
		return b
	}
	cases := []struct {
		name       string
		method     string
		request    func(worker string) (path string, body []byte)
		workers    [2]string
		wantStatus int
		wantCode   string
		retryAfter bool
	}{
		{
			name:   "tasks rate-limited",
			method: http.MethodGet,
			request: func(w string) (string, []byte) {
				return "/v1/projects/" + project + "/tasks?worker=" + w + "&count=1", nil
			},
			workers:    [2]string{"wr", "wr"},
			wantStatus: http.StatusTooManyRequests,
			wantCode:   api.CodeRateLimited,
			retryAfter: true,
		},
		{
			name:   "tasks missing project",
			method: http.MethodGet,
			request: func(w string) (string, []byte) {
				return "/v1/projects/" + ghost + "/tasks?worker=" + w + "&count=1", nil
			},
			workers:    [2]string{"ga", "gb"},
			wantStatus: http.StatusNotFound,
			wantCode:   api.CodeNoProject,
		},
		{
			name:   "batch rejected",
			method: http.MethodPost,
			request: func(w string) (string, []byte) {
				return "/v1/projects/" + project + "/answers", badBatch(w)
			},
			workers:    [2]string{"ba", "bb"},
			wantStatus: http.StatusBadRequest,
			wantCode:   api.CodeBatchRejected,
		},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			pPath, pBody := tcase.request(tcase.workers[0])
			dPath, dBody := tcase.request(tcase.workers[1])
			proxied := doRaw(t, tcase.method, edge.addr+pPath, pBody)
			direct := doRaw(t, tcase.method, home.addr+dPath, dBody)

			if proxied.status != tcase.wantStatus || direct.status != tcase.wantStatus {
				t.Fatalf("status proxied=%d direct=%d, want %d (proxied body %s)",
					proxied.status, direct.status, tcase.wantStatus, proxied.body)
			}
			if !bytes.Equal(proxied.body, direct.body) {
				t.Fatalf("proxied envelope differs from home's:\nproxied: %s\ndirect:  %s", proxied.body, direct.body)
			}
			var env api.ErrorEnvelope
			if err := json.Unmarshal(proxied.body, &env); err != nil {
				t.Fatalf("proxied body is not an error envelope: %v: %s", err, proxied.body)
			}
			if env.Err.Code != tcase.wantCode {
				t.Fatalf("proxied code = %q, want %q", env.Err.Code, tcase.wantCode)
			}
			if tcase.wantCode == api.CodeBatchRejected && len(env.Err.Items) == 0 {
				t.Fatal("batch_rejected envelope lost its per-item errors in transit")
			}
			if got := proxied.header.Get("Content-Type"); got != direct.header.Get("Content-Type") {
				t.Fatalf("Content-Type rewritten in transit: %q", got)
			}
			if tcase.retryAfter {
				p, d := proxied.header.Get("Retry-After"), direct.header.Get("Retry-After")
				if p == "" || p != d {
					t.Fatalf("Retry-After proxied=%q direct=%q — must survive the hop unchanged", p, d)
				}
			}
		})
	}
}

type rawResponse struct {
	status int
	header http.Header
	body   []byte
}

func doRaw(t *testing.T, method, url string, body []byte) rawResponse {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{status: resp.StatusCode, header: resp.Header, body: b}
}
