package core

// Failure-injection tests: adversarial and degenerate inputs the EM must
// survive without NaNs, panics or absurd output.

import (
	"math"
	"testing"

	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func TestInferSurvivesAdversarialWorkers(t *testing.T) {
	// A quarter of the crowd answers systematically wrong: always a wrong
	// label, always truth + large constant offset. T-Crowd must still beat
	// chance and must rank the adversaries below the honest workers.
	ds := simulate.Generate(stats.NewRNG(2000), simulate.TableConfig{
		Rows: 40, Cols: 6, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 20, SpammerFrac: 0},
	})
	crowd := simulate.NewCrowd(ds, 2001)
	log := crowd.FixedAssignment(4)

	// Replace the answers of 5 workers with adversarial ones.
	adversaries := map[tabular.WorkerID]bool{}
	for i := 0; i < 5; i++ {
		adversaries[ds.Workers[i].ID] = true
	}
	evil := tabular.NewAnswerLog()
	for _, a := range log.All() {
		if adversaries[a.Worker] {
			col := ds.Table.Schema.Columns[a.Cell.Col]
			truth := ds.Table.TruthAt(a.Cell)
			if col.Type == tabular.Categorical {
				wrong := (truth.L + 1) % col.NumLabels()
				a.Value = tabular.LabelValue(wrong)
			} else {
				a.Value = tabular.NumberValue(truth.X + (col.Max-col.Min)/3)
			}
		}
		evil.Add(a)
	}

	m, err := Infer(ds.Table, evil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(ds.Table, m.Estimates(), evil)
	if math.IsNaN(rep.ErrorRate) || rep.ErrorRate > 0.5 {
		t.Fatalf("error rate %v under adversaries", rep.ErrorRate)
	}
	// Honest workers should have smaller inferred variance than the
	// adversaries on average.
	var honest, adv []float64
	for k, u := range m.WorkerIDs {
		if adversaries[u] {
			adv = append(adv, math.Log(m.Phi[k]))
		} else {
			honest = append(honest, math.Log(m.Phi[k]))
		}
	}
	if stats.Mean(honest) >= stats.Mean(adv) {
		t.Fatalf("adversaries not detected: honest %v vs adversarial %v",
			stats.Mean(honest), stats.Mean(adv))
	}
}

func TestInferSingleWorker(t *testing.T) {
	// One worker answering everything: inference degenerates gracefully to
	// that worker's answers.
	ds := simulate.Generate(stats.NewRNG(2100), simulate.TableConfig{
		Rows: 10, Cols: 4, Population: simulate.PopulationConfig{N: 1},
	})
	crowd := simulate.NewCrowd(ds, 2101)
	log := crowd.FixedAssignment(1)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimates()
	for _, a := range log.All() {
		got := est[a.Cell.Row][a.Cell.Col]
		if got.Kind == tabular.Label && got.L != a.Value.L {
			t.Fatal("single-worker categorical estimate should follow the only answer")
		}
	}
}

func TestInferDegenerateColumn(t *testing.T) {
	// A continuous column where everyone answers the same constant: zero
	// variance must not produce NaNs.
	s := tabular.Schema{
		Key: "id",
		Columns: []tabular.Column{
			{Name: "const", Type: tabular.Continuous, Min: 0, Max: 10},
			{Name: "cat", Type: tabular.Categorical, Labels: []string{"a", "b"}},
		},
	}
	tbl := tabular.NewTable(s, 3)
	log := tabular.NewAnswerLog()
	for i := 0; i < 3; i++ {
		for _, u := range []tabular.WorkerID{"u1", "u2", "u3"} {
			log.Add(tabular.Answer{Worker: u, Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.NumberValue(5)})
			log.Add(tabular.Answer{Worker: u, Cell: tabular.Cell{Row: i, Col: 1}, Value: tabular.LabelValue(i % 2)})
		}
	}
	m, err := Infer(tbl, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimates()
	for i := 0; i < 3; i++ {
		if math.IsNaN(est[i][0].X) {
			t.Fatal("NaN estimate on degenerate column")
		}
		if math.Abs(est[i][0].X-5) > 1e-6 {
			t.Fatalf("constant column estimate %v", est[i][0].X)
		}
	}
	for _, phi := range m.Phi {
		if math.IsNaN(phi) || phi <= 0 {
			t.Fatalf("bad phi %v", phi)
		}
	}
}

func TestInferBinaryLabels(t *testing.T) {
	// |L| = 2 exercises the (|L|-1) = 1 denominators.
	s := tabular.Schema{
		Key:     "id",
		Columns: []tabular.Column{{Name: "flag", Type: tabular.Categorical, Labels: []string{"no", "yes"}}},
	}
	tbl := tabular.NewTable(s, 4)
	log := tabular.NewAnswerLog()
	for i := 0; i < 4; i++ {
		log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.LabelValue(1)})
		log.Add(tabular.Answer{Worker: "u2", Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.LabelValue(1)})
		log.Add(tabular.Answer{Worker: "u3", Cell: tabular.Cell{Row: i, Col: 0}, Value: tabular.LabelValue(i % 2)})
	}
	m, err := Infer(tbl, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimates()
	for i := 0; i < 4; i++ {
		if !est[i][0].Equal(tabular.LabelValue(1)) {
			t.Fatalf("row %d: majority should win, got %v", i, est[i][0])
		}
	}
}

func TestInferMissingCells(t *testing.T) {
	// Sparse coverage: most cells unanswered; estimates exist exactly for
	// answered cells.
	ds := simulate.Generate(stats.NewRNG(2200), simulate.TableConfig{Rows: 20, Cols: 5})
	crowd := simulate.NewCrowd(ds, 2201)
	log := tabular.NewAnswerLog()
	// Only the first three rows get answers.
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			log.Add(crowd.Answer(&ds.Workers[0], tabular.Cell{Row: i, Col: j}))
			log.Add(crowd.Answer(&ds.Workers[1], tabular.Cell{Row: i, Col: j}))
		}
	}
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimates()
	for i := 0; i < 20; i++ {
		for j := 0; j < 5; j++ {
			answered := i < 3
			if answered == est[i][j].IsNone() {
				t.Fatalf("cell (%d,%d): answered=%v estimate=%v", i, j, answered, est[i][j])
			}
		}
	}
}

func TestWarmStartConsistency(t *testing.T) {
	// Warm-started EM must land at (essentially) the same fit as cold EM.
	ds, log := smallDataset(2300)
	cold, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := Options{Warm: &Warm{
		Alpha: cold.Alpha,
		Beta:  cold.Beta,
		Phi:   map[tabular.WorkerID]float64{},
	}}
	for k, u := range cold.WorkerIDs {
		warmOpts.Warm.Phi[u] = cold.Phi[k]
	}
	warm, err := Infer(ds.Table, log, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm start took longer: %d vs %d", warm.Iterations, cold.Iterations)
	}
	ce, we := cold.Estimates(), warm.Estimates()
	diff := 0
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			if ce[i][j].Kind == tabular.Label && ce[i][j].L != we[i][j].L {
				diff++
			}
		}
	}
	if diff > 2 {
		t.Fatalf("warm fit diverged on %d categorical cells", diff)
	}
}
