package core

import (
	"math"

	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Estimates extracts the point estimates T̂_ij: the posterior argmax for
// categorical cells, the posterior mean (mapped back to natural units) for
// continuous cells. Cells without usable answers remain None. The returned
// grid is freshly allocated — callers may retain it across refreshes (the
// platform's immutable generation snapshots do). Hot refresh paths that
// own a reusable grid should use EstimatesInto instead.
func (m *Model) Estimates() metrics.Estimates {
	est := metrics.NewEstimates(m.Table)
	m.EstimatesInto(est)
	return est
}

// EstimatesInto fills a caller-owned grid (shaped for m.Table, e.g. by
// metrics.NewEstimates) with the current point estimates, allocating
// nothing. This is the steady-state path of the assignment engine's
// per-refresh state rebuild.
//
//tcrowd:noalloc
func (m *Model) EstimatesInto(est metrics.Estimates) {
	for i := 0; i < m.Table.NumRows(); i++ {
		row := est[i]
		for j := 0; j < m.Table.NumCols(); j++ {
			row[j] = m.EstimateCell(i, j)
		}
	}
}

// EstimateCell returns the current point estimate of one cell (None when
// unanswered).
//
//tcrowd:noalloc
func (m *Model) EstimateCell(i, j int) tabular.Value {
	if !m.Answered[i][j] {
		return tabular.Value{}
	}
	if post := m.CatPost[i][j]; post != nil {
		return tabular.LabelValue(argMax(post))
	}
	x := stats.Unstandardize(m.ContMu[i][j], m.ColMean[j], m.ColStd[j])
	return tabular.NumberValue(x)
}

func argMax(p []float64) int {
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// PhiFor returns the inferred variance of worker u, falling back to the
// median of all inferred variances (or InitPhi with no workers) for workers
// the model has not seen — the sensible prior for a fresh arrival in online
// assignment.
func (m *Model) PhiFor(u tabular.WorkerID) float64 {
	if k, ok := m.workerIdx[u]; ok {
		return m.Phi[k]
	}
	return m.MedianPhi()
}

// MedianPhi returns the population median variance (InitPhi when empty).
// The cache is written once at the end of the EM run; reads never mutate,
// so concurrent assignment scoring is race-free.
func (m *Model) MedianPhi() float64 {
	if m.medianPhi > 0 {
		return m.medianPhi
	}
	if len(m.Phi) == 0 {
		return m.Opts.InitPhi
	}
	return stats.Median(m.Phi)
}

// WorkerQuality returns the unified quality q_u = erf(eps / sqrt(2 phi_u))
// of Eq. 2.
func (m *Model) WorkerQuality(u tabular.WorkerID) float64 {
	return math.Erf(m.Opts.Eps / math.Sqrt(2*m.PhiFor(u)))
}

// CellVarianceFor returns the effective variance s = alpha_i beta_j phi_u
// that worker u's answer on cell c would carry.
func (m *Model) CellVarianceFor(u tabular.WorkerID, c tabular.Cell) float64 {
	return stats.Clamp(m.Alpha[c.Row]*m.Beta[c.Col]*m.PhiFor(u), minS, maxS)
}

// CellQuality returns q^u_ij = erf(eps / sqrt(2 alpha_i beta_j phi_u))
// (Sec. 4.2).
func (m *Model) CellQuality(u tabular.WorkerID, c tabular.Cell) float64 {
	return math.Erf(m.Opts.Eps / math.Sqrt(2*m.CellVarianceFor(u, c)))
}

// PosteriorCat returns a copy of the posterior label distribution for a
// categorical cell, falling back to the uniform prior when the cell is
// unanswered. The boolean is false for continuous cells.
func (m *Model) PosteriorCat(c tabular.Cell) ([]float64, bool) {
	col := m.Table.Schema.Columns[c.Col]
	if col.Type != tabular.Categorical {
		return nil, false
	}
	if post := m.CatPost[c.Row][c.Col]; post != nil {
		return append([]float64(nil), post...), true
	}
	return stats.NewCategoricalUniform(col.NumLabels()).P, true
}

// PosteriorCont returns the standardized posterior (mean, variance) of a
// continuous cell, falling back to the N(0,1) prior when unanswered. The
// boolean is false for categorical cells.
func (m *Model) PosteriorCont(c tabular.Cell) (mu, variance float64, ok bool) {
	if m.Table.Schema.Columns[c.Col].Type != tabular.Continuous {
		return 0, 0, false
	}
	if m.Answered[c.Row][c.Col] {
		return m.ContMu[c.Row][c.Col], m.ContVar[c.Row][c.Col], true
	}
	return 0, 1, true
}

// Entropy returns the uniform entropy H(T_ij) of Sec. 5.1: Shannon entropy
// for categorical cells, differential entropy (in standardized units) for
// continuous cells.
func (m *Model) Entropy(c tabular.Cell) float64 {
	if post, ok := m.PosteriorCat(c); ok {
		return stats.ShannonEntropy(post)
	}
	_, v, _ := m.PosteriorCont(c)
	return stats.DifferentialEntropyNormal(v)
}

// ToZ standardizes a natural-unit value of column j; FromZ inverts it.
func (m *Model) ToZ(j int, x float64) float64 {
	return stats.Standardize(x, m.ColMean[j], m.ColStd[j])
}

// FromZ maps a standardized value of column j back to natural units.
func (m *Model) FromZ(j int, z float64) float64 {
	return stats.Unstandardize(z, m.ColMean[j], m.ColStd[j])
}

// CatPosteriorWithAnswer returns the posterior after also observing a
// (hypothetical) answer with label `label` whose effective variance is s —
// the single-cell update behind information-gain scoring ("we update the
// truth distribution T_ij ... mostly and maintain other parameters",
// Sec. 5.1).
func CatPosteriorWithAnswer(post []float64, label int, eps, s float64) []float64 {
	l := len(post)
	lnQ, lnNotQ := logQ(eps, s)
	lnWrong := lnNotQ - math.Log(float64(l-1))
	logp := make([]float64, l)
	for z := range post {
		lp := math.Inf(-1)
		if post[z] > 0 {
			lp = math.Log(post[z])
		}
		if z == label {
			logp[z] = lp + lnQ
		} else {
			logp[z] = lp + lnWrong
		}
	}
	return stats.NormalizeLogProbs(logp)
}

// ContVarWithAnswer returns the posterior variance after also observing one
// answer of variance s: precisions add, independent of the answer's value —
// which is why continuous information gain needs no sampling under fixed
// parameters.
func ContVarWithAnswer(variance, s float64) float64 {
	return 1 / (1/variance + 1/s)
}

// AnswerDistribution returns the predictive distribution of worker u's
// hypothetical answer on categorical cell c: P(a = z') =
// sum_z P(T=z) P(a=z' | T=z) under the worker model.
func (m *Model) AnswerDistribution(u tabular.WorkerID, c tabular.Cell) ([]float64, bool) {
	post, ok := m.PosteriorCat(c)
	if !ok {
		return nil, false
	}
	s := m.CellVarianceFor(u, c)
	q := math.Erf(m.Opts.Eps / math.Sqrt(2*s))
	l := len(post)
	wrong := (1 - q) / float64(l-1)
	out := make([]float64, l)
	for zp := 0; zp < l; zp++ {
		p := 0.0
		for z := 0; z < l; z++ {
			if z == zp {
				p += post[z] * q
			} else {
				p += post[z] * wrong
			}
		}
		out[zp] = p
	}
	return out, true
}

// NumAnswersUsed reports how many answers survived the mode filter.
func (m *Model) NumAnswersUsed() int { return len(m.ilog.Ans) }
