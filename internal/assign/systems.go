package assign

import (
	"math"
	"math/rand"

	"tcrowd/internal/baselines"
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// TCrowdSystem is the full T-Crowd pipeline: Sec. 4 inference plus a
// Sec. 5 assignment policy (structure-aware IG by default).
type TCrowdSystem struct {
	// Policy selects tasks (default StructureIG).
	Policy Policy
	// Opts forwards to core.Infer. MaxIter defaults to 12 for online
	// refreshes (full convergence is only needed at evaluation points).
	Opts core.Options
	// Seed drives tie-breaking.
	Seed int64

	st       *State
	tieBreak *rand.Rand
	// gate, when set, decides whether a worker may receive tasks at all
	// (see WorkerGate); a rejected worker gets nil from Select.
	gate func(tabular.WorkerID) bool
}

// SetWorkerGate implements WorkerGate.
func (t *TCrowdSystem) SetWorkerGate(allow func(tabular.WorkerID) bool) { t.gate = allow }

// NewTCrowdSystem builds the default T-Crowd system.
func NewTCrowdSystem(seed int64) *TCrowdSystem {
	return &TCrowdSystem{Policy: StructureIG{}, Seed: seed}
}

// Name implements System.
func (t *TCrowdSystem) Name() string { return "T-Crowd" }

// Refresh implements System. Three tiers, fastest first:
//
//   - streaming: when the previous fit was made on this very log object
//     (grown in place — the serving loop's normal shape), the new suffix is
//     ingested into the fitted model's CSR store and a short incremental
//     polish re-converges it; refresh cost is O(batch), not O(log);
//   - warm rebuild: a different (but shape-compatible) log re-decodes from
//     scratch with EM seeded at the previous optimum;
//   - cold: no usable previous model.
func (t *TCrowdSystem) Refresh(tbl *tabular.Table, log *tabular.AnswerLog) error {
	if t.Policy == nil {
		t.Policy = StructureIG{}
	}
	if t.tieBreak == nil {
		t.tieBreak = stats.NewRNG(t.Seed)
	}
	if prev := t.Model(); t.Opts.Warm == nil && prev.CanIngestFrom(tbl, log) {
		if n, err := prev.IngestFrom(log); err == nil {
			if n == 0 {
				// Nothing landed since the last refresh: the fitted state
				// is current, skip the polish and the Estimates /
				// BuildErrorModel rebuild entirely.
				return nil
			}
			// Default (zero Opts) serving keeps the online-EM single
			// polish iteration; an explicitly configured EM budget keeps
			// the warm tier's convergence level (capped like the warm
			// rebuild below, stopping early on Tol).
			polish := 0
			if t.Opts.MaxIter > 0 {
				polish = min(t.Opts.MaxIter, 5)
			}
			t.applyRefresh(prev, log, prev.RefreshIncremental(polish))
			return nil
		}
		// Ingestion failure (e.g. a malformed answer) falls through to the
		// rebuild path, which re-validates the whole log.
	}
	opts := t.Opts
	if opts.MaxIter == 0 {
		opts.MaxIter = 12
	}
	if opts.MStepIter == 0 {
		opts.MStepIter = 10
	}
	// Online refreshes see a log that grew by a handful of answers:
	// InferWarm restarts EM next to the previous optimum (no cold-start
	// cost). The tight iteration cap applies only when the warm seed is
	// actually usable — after a table reshape the previous model is
	// incompatible and the refresh deserves its full cold budget.
	prev := t.Model()
	if opts.Warm != nil || !core.CanWarmStart(prev, tbl) {
		prev = nil
	}
	if prev != nil && opts.MaxIter > 5 {
		opts.MaxIter = 5
	}
	m, err := core.InferWarm(prev, tbl, log, opts)
	if err == core.ErrNoAnswers {
		t.st = &State{Log: log, RNG: t.tieBreak}
		return nil
	}
	if err != nil {
		return err
	}
	t.setState(m, log)
	return nil
}

// setState rebuilds the assignment state around a freshly (re)fitted model.
func (t *TCrowdSystem) setState(m *core.Model, log *tabular.AnswerLog) {
	st := &State{Model: m, Log: log, Est: m.Estimates(), RNG: t.tieBreak}
	if _, isStruct := t.Policy.(StructureIG); isStruct {
		st.Err = NewErrorModel(m)
		st.Err.Rebuild(st.Est)
	}
	t.st = st
}

// applyRefresh folds one streaming refresh into the existing assignment
// state in place — the zero-allocation steady-state path. A deferred-polish
// refresh changed only the batch's cells, so exactly those estimates are
// re-extracted and the error model's accumulators adjusted (UpdateCells); a
// polished refresh moved the global parameters, so the estimate grid is
// refilled and the error model rebuilt — both into the arenas the state
// already owns. Falls back to a fresh setState when no compatible state
// exists (first streaming refresh after a rebuild with a foreign grid, or a
// policy change mid-stream).
func (t *TCrowdSystem) applyRefresh(m *core.Model, log *tabular.AnswerLog, rs core.RefreshStats) {
	st := t.st
	if st == nil || st.Model != m || st.Est == nil {
		t.setState(m, log)
		return
	}
	st.Log = log
	if rs.Polished {
		m.EstimatesInto(st.Est)
	} else {
		nCols := m.Table.NumCols()
		for _, key := range rs.Cells {
			st.Est[key/nCols][key%nCols] = m.EstimateCell(key/nCols, key%nCols)
		}
	}
	if _, isStruct := t.Policy.(StructureIG); !isStruct {
		return
	}
	switch {
	case st.Err == nil:
		st.Err = NewErrorModel(m)
		st.Err.Rebuild(st.Est)
	case rs.Polished:
		st.Err.Rebuild(st.Est)
	default:
		st.Err.UpdateCells(st.Est, rs.Cells)
	}
}

// Select implements System.
func (t *TCrowdSystem) Select(u tabular.WorkerID, k int, log *tabular.AnswerLog) []tabular.Cell {
	if t.gate != nil && !t.gate(u) {
		return nil
	}
	if t.st == nil || t.st.Model == nil {
		return nil
	}
	t.st.Log = log
	return t.Policy.Select(t.st, u, k)
}

// Estimates implements System.
func (t *TCrowdSystem) Estimates() metrics.Estimates {
	if t.st == nil || t.st.Model == nil {
		return nil
	}
	return t.st.Model.Estimates()
}

// Model exposes the fitted inference model of the last Refresh (nil before
// the first informative refresh). The public API layers on top of it.
func (t *TCrowdSystem) Model() *core.Model {
	if t.st == nil {
		return nil
	}
	return t.st.Model
}

// voteState is the shared bookkeeping of the MV/median-based systems (CDAS
// and AskIt!): per-cell vote shares, sample statistics and estimates.
type voteState struct {
	tbl *tabular.Table
	est metrics.Estimates
	// share[i][j] is the leading vote share of a categorical cell;
	// count[i][j] the number of answers; sampleVar[i][j] the answer
	// variance of a continuous cell (natural units).
	share     [][]float64
	count     [][]int
	sampleVar [][]float64
	voteEnt   [][]float64
}

func buildVoteState(tbl *tabular.Table, log *tabular.AnswerLog) *voteState {
	n, m := tbl.NumRows(), tbl.NumCols()
	vs := &voteState{
		tbl:       tbl,
		est:       metrics.NewEstimates(tbl),
		share:     make([][]float64, n),
		count:     make([][]int, n),
		sampleVar: make([][]float64, n),
		voteEnt:   make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		vs.share[i] = make([]float64, m)
		vs.count[i] = make([]int, m)
		vs.sampleVar[i] = make([]float64, m)
		vs.voteEnt[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			c := tabular.Cell{Row: i, Col: j}
			as := log.ByCell(c)
			vs.count[i][j] = len(as)
			if len(as) == 0 {
				continue
			}
			if tbl.Schema.Columns[j].Type == tabular.Categorical {
				counts := make([]float64, tbl.Schema.Columns[j].NumLabels())
				for _, a := range as {
					counts[a.Value.L]++
				}
				best := 0
				for z := 1; z < len(counts); z++ {
					if counts[z] > counts[best] {
						best = z
					}
				}
				vs.est[i][j] = tabular.LabelValue(best)
				vs.share[i][j] = counts[best] / float64(len(as))
				vs.voteEnt[i][j] = stats.ShannonEntropy(stats.Categorical{P: counts}.Normalize().P)
			} else {
				xs := make([]float64, len(as))
				for k, a := range as {
					xs[k] = a.Value.X
				}
				vs.est[i][j] = tabular.NumberValue(stats.Median(xs))
				vs.sampleVar[i][j] = stats.Variance(xs)
			}
		}
	}
	return vs
}

// CDAS models the quality-sensitive answering system of Liu et al.
// (PVLDB'12): tasks whose current estimate is confident enough are
// "terminated" and leave the assignment pool; remaining tasks are assigned
// at random. Truth inference is simple (vote / median), which is why its
// final quality trails the model-based systems in Fig. 2.
type CDAS struct {
	// Confidence is the vote-share termination threshold (default 0.8).
	Confidence float64
	// RelStd is the relative-std termination threshold for continuous
	// tasks (default 0.35): terminate when std/sqrt(n) of the answers is
	// below RelStd times the column answer std.
	RelStd float64
	// MinAnswers gates termination (default 3).
	MinAnswers int
	// Seed drives random assignment.
	Seed int64

	vs         *voteState
	terminated map[tabular.Cell]bool
	colStd     []float64
	rng        *rand.Rand
}

// Name implements System.
func (*CDAS) Name() string { return "CDAS" }

// Refresh implements System.
func (c *CDAS) Refresh(tbl *tabular.Table, log *tabular.AnswerLog) error {
	if c.Confidence <= 0 {
		c.Confidence = 0.8
	}
	if c.RelStd <= 0 {
		c.RelStd = 0.35
	}
	if c.MinAnswers <= 0 {
		c.MinAnswers = 3
	}
	if c.rng == nil {
		c.rng = stats.NewRNG(c.Seed)
	}
	c.vs = buildVoteState(tbl, log)
	c.colStd = metrics.ColumnDenominators(tbl, log)
	c.terminated = map[tabular.Cell]bool{}
	for i := 0; i < tbl.NumRows(); i++ {
		for j := 0; j < tbl.NumCols(); j++ {
			if c.vs.count[i][j] < c.MinAnswers {
				continue
			}
			cell := tabular.Cell{Row: i, Col: j}
			if tbl.Schema.Columns[j].Type == tabular.Categorical {
				if c.vs.share[i][j] >= c.Confidence {
					c.terminated[cell] = true
				}
			} else {
				sem := math.Sqrt(c.vs.sampleVar[i][j] / float64(c.vs.count[i][j]))
				ref := c.colStd[j]
				if ref <= 0 {
					ref = 1
				}
				if sem <= c.RelStd*ref {
					c.terminated[cell] = true
				}
			}
		}
	}
	return nil
}

// Select implements System.
func (c *CDAS) Select(u tabular.WorkerID, k int, log *tabular.AnswerLog) []tabular.Cell {
	if c.vs == nil {
		return nil
	}
	all := candidateCells(c.vs.tbl, log, u)
	open := all[:0:0]
	for _, cell := range all {
		if !c.terminated[cell] {
			open = append(open, cell)
		}
	}
	if len(open) == 0 {
		open = all // everything confident: keep collecting at random
	}
	if len(open) == 0 {
		return nil
	}
	c.rng.Shuffle(len(open), func(a, b int) { open[a], open[b] = open[b], open[a] })
	if k > len(open) {
		k = len(open)
	}
	return open[:k]
}

// Estimates implements System.
func (c *CDAS) Estimates() metrics.Estimates {
	if c.vs == nil {
		return nil
	}
	return c.vs.est
}

// AskIt implements Boim et al. (ICDE'12): assign the task with the highest
// current uncertainty, inferred by majority vote / median. Uncertainty
// mixes raw Shannon entropy (categorical) with raw differential entropy in
// natural units (continuous) — the incomparability Sec. 5.1 criticises,
// which biases it toward continuous tasks first (Fig. 2's AskIt! shape).
type AskIt struct {
	// Seed drives tie-breaking.
	Seed int64

	vs  *voteState
	rng *rand.Rand
}

// Name implements System.
func (*AskIt) Name() string { return "AskIt!" }

// Refresh implements System.
func (a *AskIt) Refresh(tbl *tabular.Table, log *tabular.AnswerLog) error {
	if a.rng == nil {
		a.rng = stats.NewRNG(a.Seed)
	}
	a.vs = buildVoteState(tbl, log)
	return nil
}

// Select implements System.
func (a *AskIt) Select(u tabular.WorkerID, k int, log *tabular.AnswerLog) []tabular.Cell {
	if a.vs == nil {
		return nil
	}
	cands := candidateCells(a.vs.tbl, log, u)
	if len(cands) == 0 {
		return nil
	}
	scores := make([]float64, len(cands))
	for idx, cell := range cands {
		i, j := cell.Row, cell.Col
		col := a.vs.tbl.Schema.Columns[j]
		if col.Type == tabular.Categorical {
			if a.vs.count[i][j] == 0 {
				scores[idx] = math.Log(float64(col.NumLabels()))
			} else {
				scores[idx] = a.vs.voteEnt[i][j]
			}
		} else {
			// Differential entropy in natural units: unanswered cells use
			// the column domain's variance.
			v := a.vs.sampleVar[i][j]
			if a.vs.count[i][j] < 2 {
				width := col.Max - col.Min
				if width <= 0 {
					width = 1
				}
				v = width * width / 12
			}
			if v < 1e-9 {
				v = 1e-9
			}
			scores[idx] = 0.5 * math.Log(2*math.Pi*math.E*v)
		}
	}
	return topK(cands, scores, k)
}

// Estimates implements System.
func (a *AskIt) Estimates() metrics.Estimates {
	if a.vs == nil {
		return nil
	}
	return a.vs.est
}

// MethodSystem wraps a pure truth-inference method (CRH, CATD, ...) with
// random task assignment — how the paper runs them end-to-end ("they do
// not focus on task assignment, hence tasks are randomly assigned").
type MethodSystem struct {
	Method baselines.Method
	Seed   int64

	tbl *tabular.Table
	est metrics.Estimates
	rng *rand.Rand
}

// Name implements System.
func (ms *MethodSystem) Name() string { return ms.Method.Name() }

// Refresh implements System.
func (ms *MethodSystem) Refresh(tbl *tabular.Table, log *tabular.AnswerLog) error {
	if ms.rng == nil {
		ms.rng = stats.NewRNG(ms.Seed)
	}
	ms.tbl = tbl
	est, err := ms.Method.Infer(tbl, log)
	if err != nil {
		return err
	}
	ms.est = est
	return nil
}

// Select implements System.
func (ms *MethodSystem) Select(u tabular.WorkerID, k int, log *tabular.AnswerLog) []tabular.Cell {
	if ms.tbl == nil {
		return nil
	}
	cands := candidateCells(ms.tbl, log, u)
	if len(cands) == 0 {
		return nil
	}
	ms.rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k]
}

// Estimates implements System.
func (ms *MethodSystem) Estimates() metrics.Estimates { return ms.est }

// Fig2Systems returns the end-to-end line-up of Fig. 2.
func Fig2Systems(seed int64) []System {
	return []System{
		&AskIt{Seed: seed},
		&CDAS{Seed: seed},
		&MethodSystem{Method: baselines.CATD{}, Seed: seed},
		&MethodSystem{Method: baselines.CRH{}, Seed: seed},
		NewTCrowdSystem(seed),
	}
}
