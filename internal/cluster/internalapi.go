package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tcrowd/internal/platform"
)

// The internal replication API. Peer-only surface under /v1/internal/ —
// nodes are expected to firewall it from clients (same trust posture as
// a database replication port). Every mutation carries X-Tcrowd-Home so
// followers always know the current home's base URL.

// internalRouteTable drives both mux registration and the API-drift
// listing (cmd/tcrowd-apiroutes renders it into docs/api-routes.txt).
var internalRouteTable = []struct {
	method  string
	pattern string
	handler func(*Node, http.ResponseWriter, *http.Request)
	doc     string
}{
	{http.MethodPost, "/v1/internal/projects/{id}/generations", (*Node).applyGeneration,
		"home -> follower: install one published generation (creates the follower project on first contact)"},
	{http.MethodGet, "/v1/internal/projects/{id}/generations/latest", (*Node).latestGeneration,
		"follower -> home: fetch the newest published generation for cold catch-up"},
	{http.MethodGet, "/v1/internal/projects/{id}/wal", (*Node).shipWAL,
		"follower -> home: fetch WAL segments with index >= ?from= (plus the latest generation) to refresh the durable mirror"},
	{http.MethodPost, "/v1/internal/projects/{id}/wal", (*Node).adoptWAL,
		"old home -> new home: push the full WAL and latest generation; the receiver adopts the project (membership handoff)"},
	{http.MethodDelete, "/v1/internal/projects/{id}", (*Node).removeReplica,
		"home -> follower: drop the replica of a deleted project"},
}

// registerInternalRoutes installs the internal API on the node's mux.
func (n *Node) registerInternalRoutes() {
	for _, r := range internalRouteTable {
		h := r.handler
		n.mux.HandleFunc(r.method+" "+r.pattern, func(w http.ResponseWriter, req *http.Request) {
			h(n, w, req)
		})
	}
}

// InternalRoute is one documented internal endpoint, exposed for the
// API-drift listing.
type InternalRoute struct {
	Method  string
	Pattern string
	Doc     string
}

// InternalRoutes returns the internal route table in registration order.
func InternalRoutes() []InternalRoute {
	out := make([]InternalRoute, len(internalRouteTable))
	for i, r := range internalRouteTable {
		out[i] = InternalRoute{Method: r.method, Pattern: r.pattern, Doc: r.doc}
	}
	return out
}

// applyGeneration handles POST .../generations: install a replicated
// generation, then schedule a WAL catch-up pull so the durable mirror
// follows the serving state.
func (n *Node) applyGeneration(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var g platform.ReplicatedGeneration
	// Non-sentinel errors render as 400 bad_request via the fallback row.
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		platform.WriteError(w, fmt.Errorf("malformed replicated generation: %w", err))
		return
	}
	if g.Project != id {
		platform.WriteError(w, errors.New("payload project does not match URL"))
		return
	}
	home := r.Header.Get(homeHeader)
	if err := n.p.ApplyReplicatedGeneration(&g, home); err != nil {
		platform.WriteError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
	if n.p.HasWAL() {
		n.schedulePull(id, home)
	}
}

// latestGeneration handles GET .../generations/latest.
func (n *Node) latestGeneration(w http.ResponseWriter, r *http.Request) {
	g, ok, err := n.p.LatestReplicated(r.PathValue("id"))
	if err != nil {
		platform.WriteError(w, err)
		return
	}
	if !ok {
		platform.WriteError(w, platform.ErrNoSnapshot)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&g)
}

// shipWAL handles GET .../wal?from=N: the home answers with its segment
// tail plus the latest published generation, so one round trip refreshes
// both halves of a follower.
func (n *Node) shipWAL(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 1
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			platform.WriteError(w, fmt.Errorf("from must be a positive integer, got %q", s))
			return
		}
		from = v
	}
	segs, err := n.p.ShipWAL(id, from)
	if err != nil {
		platform.WriteError(w, err)
		return
	}
	env := walShipEnvelope{Segments: segs}
	if g, ok, err := n.p.LatestReplicated(id); err == nil && ok {
		env.Latest = &g
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&env)
}

// adoptWAL handles POST .../wal: a handoff push from the previous home.
// Responds {"adopted":true} when the project changed hands, false when it
// was already homed here (duplicate push) — either way the sender is
// clear to demote.
func (n *Node) adoptWAL(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var env walShipEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		platform.WriteError(w, fmt.Errorf("malformed WAL push: %w", err))
		return
	}
	adopted, err := n.p.AdoptWAL(id, env.Segments, env.Latest)
	if err != nil {
		platform.WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]bool{"adopted": adopted})
}

// removeReplica handles DELETE .../{id}: drop a follower replica after
// the home deleted the project. Idempotent — an already-absent project is
// success.
func (n *Node) removeReplica(w http.ResponseWriter, r *http.Request) {
	err := n.p.RemoveReplica(r.PathValue("id"))
	if err != nil && !errors.Is(err, platform.ErrNoProject) {
		platform.WriteError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
