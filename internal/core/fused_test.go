package core

import (
	"math"
	"testing"

	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// equivDataset builds a mixed-type workload for the equivalence tests.
func equivDataset(seed int64, rows int) (*simulate.Dataset, *tabular.AnswerLog) {
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows: rows, Cols: 8, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 30},
	})
	return ds, simulate.NewCrowd(ds, seed+1).FixedAssignment(4)
}

// assertModelsAgree checks two fits for numerical equivalence: identical
// EM iteration counts and estimates/parameters within tol.
func assertModelsAgree(t *testing.T, a, b *Model, tol float64) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Fatalf("EM iteration count diverged: %d vs %d", a.Iterations, b.Iterations)
	}
	if a.Converged != b.Converged {
		t.Fatalf("convergence flag diverged: %v vs %v", a.Converged, b.Converged)
	}
	ea, eb := a.Estimates(), b.Estimates()
	for i := 0; i < a.Table.NumRows(); i++ {
		for j := 0; j < a.Table.NumCols(); j++ {
			va, vb := ea[i][j], eb[i][j]
			if va.Kind != vb.Kind {
				t.Fatalf("estimate kind diverged at (%d,%d)", i, j)
			}
			if va.Kind == tabular.Label && va.L != vb.L {
				t.Fatalf("label diverged at (%d,%d): %d vs %d", i, j, va.L, vb.L)
			}
			if va.Kind == tabular.Number && math.Abs(va.X-vb.X) > tol*(1+math.Abs(va.X)) {
				t.Fatalf("number diverged at (%d,%d): %v vs %v", i, j, va.X, vb.X)
			}
		}
	}
	for k := range a.Phi {
		if math.Abs(a.Phi[k]-b.Phi[k]) > tol*(1+a.Phi[k]) {
			t.Fatalf("phi[%d] diverged: %v vs %v", k, a.Phi[k], b.Phi[k])
		}
	}
	for i := range a.Alpha {
		if math.Abs(a.Alpha[i]-b.Alpha[i]) > tol*(1+a.Alpha[i]) {
			t.Fatalf("alpha[%d] diverged: %v vs %v", i, a.Alpha[i], b.Alpha[i])
		}
	}
}

// TestFusedMatchesReference proves the fused-gradient engine computes the
// same fit as the unoptimised sequential reference M-step (separate
// objective and gradient passes): same EM iteration count, estimates and
// parameters within 1e-9.
func TestFusedMatchesReference(t *testing.T) {
	ds, log := equivDataset(2026, 40)
	fused, err := Infer(ds.Table, log, Options{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Infer(ds.Table, log, Options{MaxIter: 15, refMStep: true})
	if err != nil {
		t.Fatal(err)
	}
	assertModelsAgree(t, fused, ref, 1e-9)
}

// TestFusedMatchesSeedOptimizer checks the optimised engine against the
// seed's original optimizer (unfused passes AND the fixed-step line
// search, i.e. no step memory). The two take different line-search paths,
// so they agree at the EM fixed point rather than iterate-for-iterate:
// labels must match and continuous estimates / worker variances must be
// close.
func TestFusedMatchesSeedOptimizer(t *testing.T) {
	ds, log := equivDataset(2040, 40)
	fused, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := Infer(ds.Table, log, Options{refMStep: true, refFixedStep: true})
	if err != nil {
		t.Fatal(err)
	}
	fe, se := fused.Estimates(), seed.Estimates()
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			a, b := fe[i][j], se[i][j]
			if a.Kind != b.Kind {
				t.Fatalf("estimate kind diverged at (%d,%d)", i, j)
			}
			if a.Kind == tabular.Label && a.L != b.L {
				t.Fatalf("label diverged at (%d,%d): %d vs %d", i, j, a.L, b.L)
			}
			if a.Kind == tabular.Number && math.Abs(a.X-b.X) > 1e-3*(1+math.Abs(b.X)) {
				t.Fatalf("number diverged at (%d,%d): %v vs %v", i, j, a.X, b.X)
			}
		}
	}
	for k := range fused.Phi {
		if math.Abs(math.Log(fused.Phi[k])-math.Log(seed.Phi[k])) > 1e-2 {
			t.Fatalf("phi[%d] diverged: %v vs %v", k, fused.Phi[k], seed.Phi[k])
		}
	}
}

// TestFusedMatchesReferenceFixedDifficulty covers the FixDifficulty
// (worker-only) ablation path of the fused engine.
func TestFusedMatchesReferenceFixedDifficulty(t *testing.T) {
	ds, log := equivDataset(2027, 30)
	fused, err := Infer(ds.Table, log, Options{MaxIter: 10, FixDifficulty: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Infer(ds.Table, log, Options{MaxIter: 10, FixDifficulty: true, refMStep: true})
	if err != nil {
		t.Fatal(err)
	}
	assertModelsAgree(t, fused, ref, 1e-9)
}

// TestParallelMatchesSequentialFused proves the pool-sharded fused engine
// agrees with the sequential fused engine (floating-point reduction order
// is the only difference).
func TestParallelMatchesSequentialFused(t *testing.T) {
	ds, log := equivDataset(2028, 40)
	seq, err := Infer(ds.Table, log, Options{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Infer(ds.Table, log, Options{MaxIter: 15, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertModelsAgree(t, seq, par, 1e-9)
}

// TestQFusedMatchesSeparatePasses checks the fused objective+gradient
// evaluation against the separate qValue / qGradLog passes at a fixed
// parameter point.
func TestQFusedMatchesSeparatePasses(t *testing.T) {
	ds, log := equivDataset(2029, 30)
	m, err := newModel(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.eStep()
	// Nudge parameters off the initial point so the gradients are
	// non-trivial.
	for k := range m.Phi {
		m.Phi[k] = 0.05 + 0.01*float64(k%7)
	}
	for i := range m.Alpha {
		m.Alpha[i] = 1 + 0.02*float64(i%5)
	}

	m.ensureMStepScratch(len(m.Alpha) + len(m.Beta) + len(m.Phi))
	m.prepMStepConsts()
	ga := make([]float64, len(m.Alpha))
	gb := make([]float64, len(m.Beta))
	gp := make([]float64, len(m.Phi))
	val := m.qFused(m.Alpha, m.Beta, m.Phi, ga, gb, gp)

	wantVal := m.qValue(m.Alpha, m.Beta, m.Phi)
	wga, wgb, wgp := m.qGradLog(m.Alpha, m.Beta, m.Phi)

	if math.Abs(val-wantVal) > 1e-9*(1+math.Abs(wantVal)) {
		t.Fatalf("fused value %v vs separate %v", val, wantVal)
	}
	check := func(name string, got, want []float64) {
		t.Helper()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s[%d]: fused %v vs separate %v", name, i, got[i], want[i])
			}
		}
	}
	check("ga", ga, wga)
	check("gb", gb, wgb)
	check("gp", gp, wgp)

	// Fast value-only path agrees too (it must match the fused value
	// bitwise for the line search to take identical decisions).
	if fast := m.qValueFast(m.Alpha, m.Beta, m.Phi); fast != val {
		t.Fatalf("value-only path diverged from fused value: %v vs %v", fast, val)
	}
}

// TestEStepSteadyStateAllocs pins the sequential E-step at zero
// steady-state allocations: posteriors update in place in the arena.
func TestEStepSteadyStateAllocs(t *testing.T) {
	ds, log := equivDataset(2030, 30)
	m, err := newModel(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.eStep() // warm
	if avg := testing.AllocsPerRun(10, m.eStep); avg > 0 {
		t.Fatalf("E-step allocates in steady state: %.1f allocs/run", avg)
	}
}

// TestMStepSteadyStateAllocs pins the fused M-step at zero steady-state
// allocations once the scratch arena is warm.
func TestMStepSteadyStateAllocs(t *testing.T) {
	ds, log := equivDataset(2031, 30)
	m, err := newModel(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.eStep()
	m.mStep() // warm the scratch arena and optimizer workspace
	if avg := testing.AllocsPerRun(10, m.mStep); avg > 0 {
		t.Fatalf("M-step allocates in steady state: %.1f allocs/run", avg)
	}
}

// TestInferWarmMatchesCold checks that a warm-started re-inference after
// an answer batch reaches the same estimates as a cold fit on the grown
// log (same EM fixed point, modest tolerance: the two runs take different
// paths to it).
func TestInferWarmMatchesCold(t *testing.T) {
	ds, log := equivDataset(2032, 40)
	prev, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One more answer batch lands.
	simulate.NewCrowd(ds, 2033).AppendBatch(log, 60)
	warm, err := InferWarm(prev, ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > WarmMaxIter {
		t.Fatalf("warm run used %d iterations (cap %d)", warm.Iterations, WarmMaxIter)
	}
	// Same optimum: labels identical, continuous estimates and worker
	// variances close (EM tolerance, not bit precision).
	we, ce := warm.Estimates(), cold.Estimates()
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			a, b := we[i][j], ce[i][j]
			if a.Kind != b.Kind {
				t.Fatalf("estimate kind diverged at (%d,%d)", i, j)
			}
			if a.Kind == tabular.Label && a.L != b.L {
				t.Fatalf("label diverged at (%d,%d)", i, j)
			}
			if a.Kind == tabular.Number && math.Abs(a.X-b.X) > 1e-2*(1+math.Abs(b.X)) {
				t.Fatalf("number diverged at (%d,%d): %v vs %v", i, j, a.X, b.X)
			}
		}
	}
}

// TestInferWarmFallsBackCold covers the safety fallbacks: nil previous
// model and dimension mismatch both silently run a cold fit.
func TestInferWarmFallsBackCold(t *testing.T) {
	ds, log := equivDataset(2034, 20)
	m, err := InferWarm(nil, ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Iterations == 0 {
		t.Fatal("nil-prev warm start did not run")
	}

	other, logOther := equivDataset(2035, 25) // different row count
	prevOther, err := Infer(other.Table, logOther, Options{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := InferWarm(prevOther, ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Opts.Warm != nil {
		t.Fatal("dimension-mismatched warm start was not dropped")
	}
}
