package experiments

import (
	"fmt"
	"io"

	"tcrowd/internal/assign"
	"tcrowd/internal/simulate"
)

// fig2Checkpoints returns the answers-per-task grid of Fig. 2 per dataset.
func fig2Checkpoints(name string, quick bool) []float64 {
	if quick {
		return []float64{2, 3}
	}
	switch name {
	case "Celebrity":
		return []float64{2, 2.5, 3, 3.5, 4, 4.5, 5}
	case "Restaurant":
		return []float64{2, 2.5, 3, 3.5, 4}
	default: // Emotion
		return []float64{2, 4, 6, 8, 10}
	}
}

// Fig2 runs the end-to-end system comparison on one dataset and returns a
// curve per system.
func Fig2(dataset string, cfg Config) ([]assign.SimResult, error) {
	c := cfg.withDefaults()
	ds, err := simulate.StandIn(dataset, c.Seed)
	if err != nil {
		return nil, err
	}
	sim := assign.SimConfig{
		EvalAt:       fig2Checkpoints(dataset, c.Quick),
		Seed:         c.Seed + 2,
		RefreshEvery: 12,
		InitPerTask:  1,
	}
	var out []assign.SimResult
	for _, sys := range assign.Fig2Systems(c.Seed + 3) {
		// Each system replays the identical crowd (same seed), so curves
		// differ only by assignment/inference choices.
		r, err := assign.RunOnline(ds, sys, sim)
		if err != nil {
			return nil, fmt.Errorf("fig2: %s on %s: %w", sys.Name(), dataset, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runFig2(w io.Writer, cfg Config) error {
	c := cfg.withDefaults()
	datasets := simulate.StandInNames()
	if c.Quick {
		datasets = []string{"Restaurant"}
	}
	for _, d := range datasets {
		results, err := Fig2(d, c)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s --\n", d)
		fmt.Fprintf(w, "%-10s %8s %12s %12s\n", "System", "Ans/Task", "Error Rate", "MNAD")
		for _, r := range results {
			for _, pt := range r.Curve {
				fmt.Fprintf(w, "%-10s %8.1f %12s %12s\n",
					r.System, pt.AnswersPerTask, fmtMetric(pt.Report.ErrorRate), fmtMetric(pt.Report.MNAD))
			}
		}
	}
	return nil
}
