package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quadratic(center []float64) (Func, GradFunc) {
	f := func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - center[i]
			s += d * d
		}
		return s
	}
	g := func(x, grad []float64) {
		for i := range x {
			grad[i] = 2 * (x[i] - center[i])
		}
	}
	return f, g
}

func TestMinimizeQuadratic(t *testing.T) {
	center := []float64{3, -2, 0.5}
	f, g := quadratic(center)
	res := Minimize(f, g, []float64{0, 0, 0}, Options{})
	if !res.Converged {
		t.Fatal("quadratic should converge")
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-4 {
			t.Fatalf("x[%d]=%v want %v", i, res.X[i], center[i])
		}
	}
	if res.F > 1e-8 {
		t.Fatalf("objective %v not near 0", res.F)
	}
}

func TestMinimizeDoesNotMutateStart(t *testing.T) {
	f, g := quadratic([]float64{1, 1})
	x0 := []float64{5, 5}
	Minimize(f, g, x0, Options{})
	if x0[0] != 5 || x0[1] != 5 {
		t.Fatal("start vector mutated")
	}
}

func TestMinimizeRosenbrockDescends(t *testing.T) {
	// Rosenbrock is hard for plain GD; we only require strict descent and
	// approach toward the valley within a generous budget.
	f := func(x []float64) float64 {
		a, b := x[0], x[1]
		return (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	}
	g := func(x, grad []float64) {
		a, b := x[0], x[1]
		grad[0] = -2*(1-a) - 400*a*(b-a*a)
		grad[1] = 200 * (b - a*a)
	}
	start := []float64{-1.2, 1}
	res := Minimize(f, g, start, Options{MaxIter: 5000, GradTol: 1e-8})
	if res.F >= f(start) {
		t.Fatalf("no descent: %v -> %v", f(start), res.F)
	}
	if res.F > 0.5 {
		t.Fatalf("insufficient progress on Rosenbrock: f=%v", res.F)
	}
}

func TestMaximize(t *testing.T) {
	// max of -(x-2)^2 + 7 is 7 at x=2.
	f := func(x []float64) float64 { return -(x[0]-2)*(x[0]-2) + 7 }
	g := func(x, grad []float64) { grad[0] = -2 * (x[0] - 2) }
	res := Maximize(f, g, []float64{-3}, Options{})
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.F-7) > 1e-8 {
		t.Fatalf("Maximize got x=%v f=%v", res.X[0], res.F)
	}
}

func TestMinimizeNaNObjective(t *testing.T) {
	f := func(x []float64) float64 { return math.NaN() }
	g := func(x, grad []float64) { grad[0] = 1 }
	res := Minimize(f, g, []float64{1}, Options{})
	if res.Iters != 0 {
		t.Fatal("NaN start should bail out immediately")
	}
}

func TestMinimizeSkipsNaNRegions(t *testing.T) {
	// f is NaN for x < 0; descent from x=4 toward 0 must backtrack instead
	// of stepping into the NaN region.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 0.1) * (x[0] - 0.1)
	}
	g := func(x, grad []float64) { grad[0] = 2 * (x[0] - 0.1) }
	res := Minimize(f, g, []float64{4}, Options{MaxIter: 500})
	if math.Abs(res.X[0]-0.1) > 1e-3 {
		t.Fatalf("got %v want 0.1", res.X[0])
	}
}

func TestNumericalGradientMatchesAnalytic(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Sin(x[0])*math.Exp(x[1]) + x[0]*x[1]
	}
	x := []float64{0.7, -0.3}
	want := []float64{
		math.Cos(x[0])*math.Exp(x[1]) + x[1],
		math.Sin(x[0])*math.Exp(x[1]) + x[0],
	}
	got := make([]float64, 2)
	if err := NumericalGradient(f, x, 1e-6, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("grad[%d]=%v want %v", i, got[i], want[i])
		}
	}
	if err := NumericalGradient(f, x, 0, make([]float64, 1)); err != ErrDimension {
		t.Fatal("dimension mismatch not detected")
	}
}

func TestPositiveVecRoundTrip(t *testing.T) {
	pv := DefaultPositiveVec()
	p := []float64{1e-6, 0.5, 1, 42, 1e6}
	l := pv.ToLog(p, nil)
	back := pv.FromLog(l, nil)
	for i := range p {
		if math.Abs(back[i]-p[i])/p[i] > 1e-12 {
			t.Fatalf("round trip p[%d]: %v -> %v", i, p[i], back[i])
		}
	}
	// Non-positive input clamps to the floor instead of producing -Inf.
	l2 := pv.ToLog([]float64{0, -3}, nil)
	if l2[0] != pv.MinLog || l2[1] != pv.MinLog {
		t.Fatal("non-positive values must clamp")
	}
	// Out-of-range log clamps on the way back.
	if pv.FromLog([]float64{1e9}, nil)[0] != math.Exp(pv.MaxLog) {
		t.Fatal("FromLog must clamp")
	}
}

func TestChainRuleLog(t *testing.T) {
	p := []float64{2, 0.5}
	gp := []float64{3, -4}
	got := ChainRuleLog(p, gp, nil)
	if got[0] != 6 || got[1] != -2 {
		t.Fatalf("chain rule got %v", got)
	}
}

func TestQuickMinimizeNeverIncreasesQuadratic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	f := func(c0, c1, s0, s1 float64) bool {
		clampf := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 50)
		}
		center := []float64{clampf(c0), clampf(c1)}
		start := []float64{clampf(s0), clampf(s1)}
		obj, grad := quadratic(center)
		res := Minimize(obj, grad, start, Options{MaxIter: 300})
		return res.F <= obj(start)+1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLogSpacePositivity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	pv := DefaultPositiveVec()
	f := func(raw []float64) bool {
		out := pv.FromLog(raw, nil)
		for _, v := range out {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
