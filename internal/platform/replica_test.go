package platform

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

const homeURL = "http://home-node:8080"

// publishOnce records one fresh answer and runs inference, returning the
// published result.
func publishOnce(t *testing.T, p *Platform, project string, round int) *InferenceResult {
	t.Helper()
	w := fmt.Sprintf("w%d", round)
	if _, err := p.SubmitBatch(project, []tabular.Answer{catAnswer(w, round%3)}); err != nil {
		t.Fatalf("submit round %d: %v", round, err)
	}
	res, err := p.RunInference(project)
	if err != nil {
		t.Fatalf("inference round %d: %v", round, err)
	}
	return res
}

// TestReplicaApplyAndServe pins the follower lifecycle: a generation
// shipped from a home platform creates the project in follower mode, the
// whole pinned-read surface serves it, watchers see the bump, and every
// write path rejects with a NotHomeError carrying the home address.
func TestReplicaApplyAndServe(t *testing.T) {
	home := New(1)
	defer home.Close()
	follower := New(1)
	defer follower.Close()

	if _, err := home.CreateProject("books", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	res := publishOnce(t, home, "books", 0)
	g, ok, err := home.LatestReplicated("books")
	if err != nil || !ok {
		t.Fatalf("LatestReplicated: ok=%v err=%v", ok, err)
	}

	if err := follower.ApplyReplicatedGeneration(&g, homeURL); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// Watch BEFORE the next apply so the bump is observed live.
	wtch, err := follower.Watch("books")
	if err != nil {
		t.Fatal(err)
	}
	defer wtch.Close()

	snap, err := follower.Snapshot("books")
	if err != nil {
		t.Fatalf("follower snapshot: %v", err)
	}
	if snap.Generation != res.Generation || !reflect.DeepEqual(snap.Estimates, res.Estimates) {
		t.Fatalf("follower serves generation %d, home published %d", snap.Generation, res.Generation)
	}
	if _, err := follower.SnapshotAt("books", res.Generation); err != nil {
		t.Fatalf("pinned read on follower: %v", err)
	}
	// A generation the stream has not delivered yet is retryable staleness,
	// not a 404.
	if _, err := follower.SnapshotAt("books", res.Generation+5); !errors.Is(err, ErrReplicaStale) {
		t.Fatalf("future generation on follower: %v, want ErrReplicaStale", err)
	}
	st, err := follower.Stats("books")
	if err != nil || st.Answers != g.AnswersSeen {
		t.Fatalf("follower stats = %+v, %v; want %d answers", st, err, g.AnswersSeen)
	}

	// Every write path rejects with the typed referral.
	var nh *NotHomeError
	_, submitErr := follower.SubmitBatch("books", []tabular.Answer{catAnswer("wx", 1)})
	if !errors.As(submitErr, &nh) || nh.Home != homeURL {
		t.Fatalf("follower submit: %v", submitErr)
	}
	if !errors.Is(submitErr, ErrNotHome) {
		t.Fatalf("NotHomeError must unwrap to ErrNotHome: %v", submitErr)
	}
	if _, err := follower.RequestTasks("books", "wx", 1); !errors.As(err, &nh) {
		t.Fatalf("follower tasks: %v", err)
	}
	if _, err := follower.RunInference("books"); !errors.As(err, &nh) {
		t.Fatalf("follower inference: %v", err)
	}
	if err := follower.DeleteProject("books"); !errors.As(err, &nh) {
		t.Fatalf("follower delete: %v", err)
	}

	// Second generation: replicated bump reaches follower watchers, stale
	// redelivery is dropped.
	res2 := publishOnce(t, home, "books", 1)
	g2, _, _ := home.LatestReplicated("books")
	if err := follower.ApplyReplicatedGeneration(&g2, homeURL); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-wtch.Events():
		if ev.Generation != res2.Generation {
			t.Fatalf("follower watcher saw generation %d, want %d", ev.Generation, res2.Generation)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower watcher never saw the replicated bump")
	}
	if err := follower.ApplyReplicatedGeneration(&g, homeURL); err != nil {
		t.Fatalf("stale redelivery: %v", err)
	}
	if snap, _ := follower.Snapshot("books"); snap.Generation != res2.Generation {
		t.Fatalf("stale redelivery moved the follower back to generation %d", snap.Generation)
	}

	// Applying to a home project must fail loudly: split-brain guard.
	if err := home.ApplyReplicatedGeneration(&g2, homeURL); err == nil {
		t.Fatal("home accepted a replicated generation for its own project")
	}
}

// TestReplicaCrashMidShipConverges is the cluster crash satellite at the
// platform layer: a follower dies mid-segment-ship (injected write fault,
// then a hard crash over the wal.MemFS seam), restarts on the surviving
// bytes, resumes mirroring, and converges to the leader's exact answer
// log and latest generation with no torn state.
func TestReplicaCrashMidShipConverges(t *testing.T) {
	walOpts := func(fs *wal.MemFS) Options {
		return Options{WAL: &WALOptions{Dir: "walroot", FS: fs, Policy: wal.SyncAlways, SegmentBytes: 200}}
	}
	homeFS := wal.NewMemFS()
	home, _, err := Recover(1, walOpts(homeFS))
	if err != nil {
		t.Fatal(err)
	}
	defer home.Close()
	if _, err := home.CreateProject("conv", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		publishOnce(t, home, "conv", i)
	}
	segs, err := home.ShipWAL("conv", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Follower: the very first mirror write applies only half its bytes
	// and fails (mid-segment-ship kill), then the process hard-crashes
	// keeping a torn prefix of the unsynced bytes.
	fFS := wal.NewMemFS()
	follower, _, err := Recover(1, walOpts(fFS))
	if err != nil {
		t.Fatal(err)
	}
	fFS.ShortWrite(1)
	if _, err := follower.ReplicateWAL("conv", segs, homeURL); err == nil {
		t.Fatal("mid-ship write fault surfaced no error")
	}
	fFS.Crash(400)
	_ = follower.Close()

	// Restart on the surviving bytes. The partial mirror recovers through
	// the ordinary crash path — the torn tail truncates to the last whole
	// frame, which may leave a partial project (recovered as home;
	// follower mode is runtime state, and the cluster layer's boot
	// rebalance re-demotes it — emulated here) or nothing at all when the
	// tear hit the first frame. Both are valid crash outcomes; neither may
	// leave torn state behind.
	surFS := fFS.Recovered()
	f2, rep, err := Recover(1, walOpts(surFS))
	if err != nil {
		t.Fatalf("restart on torn mirror: %v", err)
	}
	leaderProj, err := home.Project("conv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Projects > 0 {
		if proj, err := f2.Project("conv"); err == nil {
			if got, want := proj.Log.Len(), leaderProj.Log.Len(); got >= want {
				t.Fatalf("torn mirror recovered %d answers, leader has %d — tear lost nothing?", got, want)
			}
		}
		if err := f2.DemoteToReplica("conv", homeURL); err != nil {
			t.Fatal(err)
		}
	}

	// Resume mirroring from scratch (the restart lost the watermark) and
	// seed the serving state from the leader's latest generation.
	segs2, err := home.ShipWAL("conv", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.ReplicateWAL("conv", segs2, homeURL); err != nil {
		t.Fatalf("resume mirroring: %v", err)
	}
	latest, ok, err := home.LatestReplicated("conv")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if err := f2.ApplyReplicatedGeneration(&latest, homeURL); err != nil {
		t.Fatal(err)
	}
	snap, err := f2.Snapshot("conv")
	if err != nil || snap.Generation != latest.Generation {
		t.Fatalf("follower serving generation %v (err %v), want %d", snap, err, latest.Generation)
	}
	_ = f2.Close()

	// Convergence proof: a fresh process recovering the follower's mirror
	// owns the leader's EXACT answer log — same answers, and a from-scratch
	// fit lands on the same estimates.
	f3, _, err := Recover(1, walOpts(surFS.Recovered()))
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer f3.Close()
	mirrorProj, err := f3.Project("conv")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mirrorProj.Log.Len(), leaderProj.Log.Len(); got != want {
		t.Fatalf("mirror holds %d answers, leader %d", got, want)
	}
	mres, err := f3.RunInference("conv")
	if err != nil {
		t.Fatal(err)
	}
	hres, _ := home.Snapshot("conv")
	if !reflect.DeepEqual(mres.Estimates, hres.Estimates) {
		t.Fatalf("mirror fit diverged from leader:\n%v\nvs\n%v", mres.Estimates, hres.Estimates)
	}
}

// TestRetainBytesCapsRing pins the -retain-bytes satellite: with a byte
// cap, old generations evict even when the count cap alone would keep
// them, the latest generation always survives, and without the cap the
// same workload stays fully addressable.
func TestRetainBytesCapsRing(t *testing.T) {
	run := func(retainBytes int64) (*Platform, []*InferenceResult) {
		p := NewWithOptions(1, Options{RetainGenerations: 32, RetainBytes: retainBytes})
		if _, err := p.CreateProject("ring", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
			t.Fatal(err)
		}
		var published []*InferenceResult
		for i := 0; i < 10; i++ {
			published = append(published, publishOnce(t, p, "ring", i))
		}
		return p, published
	}

	unlimited, published := run(0)
	defer unlimited.Close()
	if _, err := unlimited.SnapshotAt("ring", published[0].Generation); err != nil {
		t.Fatalf("count-capped ring evicted generation %d: %v", published[0].Generation, err)
	}

	capped, published := run(600)
	defer capped.Close()
	latest := published[len(published)-1]
	if _, err := capped.SnapshotAt("ring", latest.Generation); err != nil {
		t.Fatalf("latest generation must survive any byte cap: %v", err)
	}
	if _, err := capped.SnapshotAt("ring", published[0].Generation); !errors.Is(err, ErrGenerationGone) {
		t.Fatalf("oldest generation under a 600-byte cap: %v, want ErrGenerationGone", err)
	}
}
