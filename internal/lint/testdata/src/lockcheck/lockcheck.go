// Package lockcheck exercises the lockcheck analyzer: guarded fields
// (directive and legacy prose forms), caller-holds contracts, TryLock
// idioms, lock-order directives, goroutine escapes and waivers.
//
//tcrowd:lockorder Counter.feedMu < Counter.mu
package lockcheck

import "sync"

type Counter struct {
	mu sync.Mutex
	// n is the running count. guarded by mu.
	n int
	//tcrowd:guardedby mu
	total int

	feedMu sync.Mutex
	//tcrowd:guardedby feedMu
	feed []int
}

type Reader struct {
	//tcrowd:guardedby Counter.mu
	view int
}

// Queue has a struct-level contract: every non-sync field is guarded.
//
//tcrowd:guardedby mu
type Queue struct {
	mu    sync.Mutex
	items []int
	depth int
}

func pushBad(q *Queue, v int) {
	q.items = append(q.items, v) // want `guarded by Queue.mu`
}

func pushGood(q *Queue, v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.depth++
	q.mu.Unlock()
}

func good(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func bad(c *Counter) {
	c.n++ // want `guarded by Counter.mu`
}

func afterUnlock(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.total++ // want `guarded by Counter.mu`
}

func deferred(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.total++
}

// addLocked bumps the count. Caller holds c.mu.
func (c *Counter) addLocked(d int) {
	c.n += d
}

//tcrowd:locked mu
func (c *Counter) resetLocked() {
	c.n = 0
	c.total = 0
}

func callsLocked(c *Counter) {
	c.addLocked(1) // want `requires Counter.mu held`
	c.mu.Lock()
	c.addLocked(1)
	c.resetLocked()
	c.mu.Unlock()
	c.resetLocked() // want `requires Counter.mu held`
}

func tryLock(c *Counter) {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
	if !c.mu.TryLock() {
		return
	}
	c.total++
	c.mu.Unlock()
}

func branchLocksDoNotEscape(c *Counter, cond bool) {
	if cond {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `guarded by Counter.mu`
}

func order(c *Counter) {
	c.feedMu.Lock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.feedMu.Unlock()

	c.mu.Lock()
	c.feedMu.Lock() // want `lock order violation`
	c.feed = nil
	c.feedMu.Unlock()
	c.mu.Unlock()
}

func crossType(c *Counter, r *Reader) {
	_ = r.view // want `guarded by Counter.mu`
	c.mu.Lock()
	_ = r.view
	c.mu.Unlock()
}

func construct() *Counter {
	// Composite-literal keys are field names, not unguarded reads.
	return &Counter{n: 1, total: 2}
}

func goroutineHoldsNothing(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `guarded by Counter.mu`
	}()
}

func inlineClosureKeepsLocks(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn := func() {
		c.n++
	}
	fn()
}

func waived(c *Counter) {
	//lint:allow lockcheck single-goroutine init path
	c.n = 0 // waived `guarded by Counter.mu`
}
