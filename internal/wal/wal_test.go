package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const ckptType = 1 // test-reserved checkpoint record type

func openTest(t *testing.T, fs FS, opts Options) (*Log, Replay) {
	t.Helper()
	opts.FS = fs
	opts.CheckpointType = ckptType
	l, rep, err := Open("proj/alpha", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rep
}

func rec(tp byte, s string) Record { return Record{Type: tp, Data: []byte(s)} }

func wantRecords(t *testing.T, got []Record, want ...Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, got[i].Type, got[i].Data, want[i].Type, want[i].Data)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rep := openTest(t, fs, Options{})
	if len(rep.Records) != 0 || rep.Torn {
		t.Fatalf("fresh log replayed %+v", rep)
	}
	recs := []Record{rec(2, "create"), rec(3, "batch-1"), rec(3, ""), rec(3, "batch-2")}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rep = openTest(t, fs, Options{})
	wantRecords(t, rep.Records, recs...)
	if rep.Torn {
		t.Fatal("clean log reported torn")
	}
}

func TestRotationAndReplayAcrossSegments(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{SegmentBytes: 64})
	var want []Record
	rotations := 0
	for i := 0; i < 20; i++ {
		r := rec(3, fmt.Sprintf("record-%02d-padding-padding", i))
		rot, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if rot {
			rotations++
		}
		want = append(want, r)
	}
	if rotations == 0 {
		t.Fatal("no rotations at 64-byte segments")
	}
	segs, err := l.Segments()
	if err != nil || len(segs) < 2 {
		t.Fatalf("Segments = %v, %v; want >= 2 segments", segs, err)
	}
	l.Close()
	_, rep := openTest(t, fs, Options{SegmentBytes: 64})
	wantRecords(t, rep.Records, want...)
}

func TestSyncAlwaysSurvivesHardCrash(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	recs := []Record{rec(2, "create"), rec(3, "a"), rec(3, "b")}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	fs.Crash(0) // hard kill, no Close: every synced byte must survive
	_, rep := openTest(t, fs.Recovered(), Options{})
	wantRecords(t, rep.Records, recs...)
	if rep.Torn {
		t.Fatal("fully synced log reported torn")
	}
}

func TestSyncNeverLosesUnsyncedOnCrashButCloseFlushes(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncNever})
	l.Append(rec(3, "doomed"))
	fs2 := fs.Recovered() // power-cut view without Close
	_, rep := openTest(t, fs2, Options{})
	if len(rep.Records) != 0 {
		t.Fatalf("unsynced records survived crash: %+v", rep.Records)
	}

	// Same policy, but Close runs: Close must sync regardless of policy.
	fs = NewMemFS()
	l, _ = openTest(t, fs, Options{Policy: SyncNever})
	l.Append(rec(3, "kept"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rep = openTest(t, fs.Recovered(), Options{})
	wantRecords(t, rep.Records, rec(3, "kept"))
}

func TestSyncIntervalFlushesInBackground(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncInterval, Interval: time.Millisecond})
	l.Append(rec(3, "timed"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, rep := openTest(t, fs.Recovered(), Options{})
		if len(rep.Records) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced the append")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestTornTailTruncatesAndBoots(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncNever})
	synced := []Record{rec(2, "create"), rec(3, "durable")}
	for _, r := range synced {
		l.Append(r)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	l.Append(rec(3, "unsynced-will-tear"))
	fs.Crash(5) // keep a 5-byte torn prefix of the unsynced frame
	_, rep := openTest(t, fs.Recovered(), Options{})
	wantRecords(t, rep.Records, synced...)
	if !rep.Torn || rep.TornBytes != 5 {
		t.Fatalf("Torn=%v TornBytes=%d, want torn with 5 bytes dropped", rep.Torn, rep.TornBytes)
	}
}

func TestTrailingZerosAreATornTailNotPhantomFrames(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{})
	l.Append(rec(3, "real"))
	l.Close()
	// Preallocated/zero-filled tail, as a crashed filesystem can leave.
	f, err := fs.OpenFile("proj/alpha/"+segmentName(1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 256))
	f.Sync()
	f.Close()
	_, rep := openTest(t, fs.Recovered(), Options{})
	wantRecords(t, rep.Records, rec(3, "real"))
	if !rep.Torn || rep.TornBytes != 256 {
		t.Fatalf("Torn=%v TornBytes=%d, want 256 zero bytes truncated", rep.Torn, rep.TornBytes)
	}
}

func TestMidLogCorruptionRefusesBoot(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		l.Append(rec(3, fmt.Sprintf("record-%02d-padding-padding", i)))
	}
	l.Close()
	// Tear a frame in the FIRST segment: not attributable to a crash at
	// the tail, so boot must refuse with the typed error.
	seg := "proj/alpha/" + segmentName(1)
	info, err := fs.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	fs.Truncate(seg, info.Size()-3)
	_, _, err = Open("proj/alpha", Options{FS: fs, SegmentBytes: 64, CheckpointType: ckptType})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Open after mid-log damage = %v, want ErrWALCorrupt", err)
	}
}

func TestCompactionKeepsOnlyCheckpointOnward(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{SegmentBytes: 128})
	for i := 0; i < 10; i++ {
		l.Append(rec(3, fmt.Sprintf("old-%d-padding-padding-padding", i)))
	}
	if err := l.Compact(rec(0, "checkpoint-state")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.Append(rec(3, "after"))
	segs, _ := l.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments after compaction = %v, want exactly one", segs)
	}
	l.Close()
	_, rep := openTest(t, fs, Options{SegmentBytes: 128})
	wantRecords(t, rep.Records, rec(ckptType, "checkpoint-state"), rec(3, "after"))
}

func TestReplayIgnoresStaleSegmentsBehindCheckpoint(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{})
	l.Append(rec(3, "pre"))
	if err := l.Compact(rec(0, "ckpt")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.Append(rec(3, "post"))
	l.Close()
	// Recreate segment 1 as garbage: the leftover of a compaction that
	// crashed mid-delete. Replay must start at the checkpoint segment and
	// never look at it.
	f, err := fs.OpenFile("proj/alpha/"+segmentName(1), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("stale partially deleted garbage"))
	f.Sync()
	f.Close()
	_, rep := openTest(t, fs, Options{})
	wantRecords(t, rep.Records, rec(ckptType, "ckpt"), rec(3, "post"))
	if rep.Torn {
		t.Fatal("stale pre-checkpoint segment flagged the log torn")
	}
}

func TestFailedWriteHealsAndLaterAppendsSurvive(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	l.Append(rec(3, "first"))
	fs.FailWrite(1)
	if _, err := l.Append(rec(3, "doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append with injected fault = %v, want ErrInjected", err)
	}
	// The log healed: this acked record must survive replay.
	if _, err := l.Append(rec(3, "second")); err != nil {
		t.Fatalf("Append after heal: %v", err)
	}
	fs.Crash(0)
	_, rep := openTest(t, fs.Recovered(), Options{})
	wantRecords(t, rep.Records, rec(3, "first"), rec(3, "second"))
}

func TestShortWriteHealsAndLaterAppendsSurvive(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	l.Append(rec(3, "first"))
	fs.ShortWrite(1)
	if _, err := l.Append(rec(3, "torn-victim")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append with torn write = %v, want ErrInjected", err)
	}
	if _, err := l.Append(rec(3, "second")); err != nil {
		t.Fatalf("Append after torn-write heal: %v", err)
	}
	fs.Crash(0)
	_, rep := openTest(t, fs.Recovered(), Options{})
	wantRecords(t, rep.Records, rec(3, "first"), rec(3, "second"))
	if rep.Torn {
		t.Fatal("healed log reported torn at replay")
	}
}

func TestCrashWedgesLogWithStickyError(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	l.Append(rec(3, "pre"))
	fs.Crash(0)
	if _, err := l.Append(rec(3, "post-crash")); err == nil {
		t.Fatal("Append after filesystem crash succeeded")
	}
	// Sticky: the same failure keeps being reported.
	if _, err := l.Append(rec(3, "again")); err == nil {
		t.Fatal("second Append after crash succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync after crash succeeded")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncInterval, Interval: time.Millisecond})
	l.Append(rec(3, "x"))
	if err := l.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(rec(3, "y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{})
	if _, err := l.Append(Record{Type: 3, Data: make([]byte, MaxRecordBytes)}); err == nil {
		t.Fatal("oversize record accepted")
	}
	l.Close()
}

func TestOpenReapsStrayTempFiles(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("proj/alpha", 0o755)
	f, _ := fs.OpenFile("proj/alpha/"+segmentName(7)+".tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("crashed compaction leftovers"))
	f.Sync()
	f.Close()
	l, rep := openTest(t, fs, Options{})
	if len(rep.Records) != 0 || rep.Torn {
		t.Fatalf("temp file influenced replay: %+v", rep)
	}
	l.Close()
	if _, err := fs.Stat("proj/alpha/" + segmentName(7) + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stray temp file still present (stat err = %v)", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("SyncPolicy(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, rep, err := Open(dir, Options{CheckpointType: ckptType})
	if err != nil {
		t.Fatalf("Open on real fs: %v", err)
	}
	if len(rep.Records) != 0 {
		t.Fatalf("fresh real-fs log replayed %+v", rep)
	}
	recs := []Record{rec(2, "create"), rec(3, "payload")}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Compact(rec(0, "ckpt")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := l.Append(rec(3, "tail")); err != nil {
		t.Fatalf("Append post-compact: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rep, err = Open(dir, Options{CheckpointType: ckptType})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, rep.Records, rec(ckptType, "ckpt"), rec(3, "tail"))
}
