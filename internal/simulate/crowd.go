package simulate

import (
	"math"
	"math/rand"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Crowd synthesises answers from a dataset's generative model. It is the
// oracle behind both fixed-assignment replay (AMT-style, Sec. 6.1/6.2) and
// the online assignment simulator (Sec. 6.3): ask it what worker u would
// answer for cell c and it draws from Eq. 1 / Eq. 3 with the planted
// difficulties.
//
// Row confusion is sticky: whether worker u "recognises" entity i is decided
// once per (worker, row) pair and reused, so all of u's answers in that row
// degrade together — the within-row error correlation of Sec. 5.2.
type Crowd struct {
	DS  *Dataset
	rng *rand.Rand
	// rows memoises the sticky per-(worker,row) state: the confusion coin
	// flip and the shared directional bias of continuous answers.
	rows map[confKey]rowState
	// answered counts answers drawn per worker (via Answer/AnswerMeta),
	// which is what flips a Sleeper persona mid-stream.
	answered map[tabular.WorkerID]int
}

type confKey struct {
	w   tabular.WorkerID
	row int
}

type rowState struct {
	confused bool
	bias     float64 // standardized units, shared by the row's continuous cells
}

// NewCrowd builds a crowd with its own deterministic random stream.
func NewCrowd(ds *Dataset, seed int64) *Crowd {
	return &Crowd{
		DS:       ds,
		rng:      stats.NewRNG(seed),
		rows:     make(map[confKey]rowState),
		answered: make(map[tabular.WorkerID]int),
	}
}

// cellVariance returns the effective standardized variance of worker w on
// cell c, including the sticky row-confusion multiplier.
func (cr *Crowd) cellVariance(w *Worker, c tabular.Cell) float64 {
	v := cr.DS.Alpha[c.Row] * cr.DS.Beta[c.Col] * w.Phi
	if cr.rowState(w, c.Row).confused {
		v *= cr.DS.ConfusionFactor
	}
	return v
}

func (cr *Crowd) isConfused(w *Worker, row int) bool {
	return cr.rowState(w, row).confused
}

func (cr *Crowd) rowState(w *Worker, row int) rowState {
	k := confKey{w: w.ID, row: row}
	if v, ok := cr.rows[k]; ok {
		return v
	}
	p := stats.Clamp(cr.DS.RowConfusionBase*w.ConfusionProneness*cr.DS.Alpha[row], 0, 0.6)
	st := rowState{confused: cr.rng.Float64() < p}
	if sd := cr.DS.RowBiasStd; sd > 0 {
		scale := sd
		if st.confused {
			scale *= math.Sqrt(cr.DS.ConfusionFactor)
		}
		st.bias = scale * cr.rng.NormFloat64()
	}
	cr.rows[k] = st
	return st
}

// personaOf resolves worker w's EFFECTIVE persona at its current answer
// count: a Sleeper is Honest until TurnAfter answers, FastDeceiver after.
func (cr *Crowd) personaOf(w *Worker) Persona {
	if w.Persona == Sleeper {
		if cr.answered[w.ID] < w.TurnAfter {
			return Honest
		}
		return FastDeceiver
	}
	return w.Persona
}

// junkValue is RandomJunk behaviour: uniform over the column's labels or
// domain, no relation to the truth.
func (cr *Crowd) junkValue(c tabular.Cell) tabular.Value {
	col := cr.DS.Table.Schema.Columns[c.Col]
	if col.Type == tabular.Categorical {
		return tabular.LabelValue(cr.rng.Intn(len(col.Labels)))
	}
	lo, hi := col.Min, col.Max
	if hi <= lo {
		truth := cr.DS.Table.TruthAt(c)
		return tabular.NumberValue(truth.X + 10*cr.DS.ContScale[c.Col]*cr.rng.NormFloat64())
	}
	return tabular.NumberValue(lo + (hi-lo)*cr.rng.Float64())
}

// deceiveValue is FastDeceiver behaviour: the SAME deterministic wrong
// answer per cell for every deceiver — a coordinated bloc that mutually
// agrees, which is what makes the attack dangerous to agreement-only
// defenses and to the inference itself.
func (cr *Crowd) deceiveValue(c tabular.Cell) tabular.Value {
	col := cr.DS.Table.Schema.Columns[c.Col]
	truth := cr.DS.Table.TruthAt(c)
	if col.Type == tabular.Categorical {
		return tabular.LabelValue((truth.L + 1) % len(col.Labels))
	}
	dir := float64(((c.Row+c.Col)%2)*2 - 1)
	x := truth.X + dir*5*cr.DS.ContScale[c.Col]
	if col.Max > col.Min {
		x = stats.Clamp(x, col.Min, col.Max)
	}
	return tabular.NumberValue(x)
}

// AnswerValue draws the value worker w would submit for cell c.
func (cr *Crowd) AnswerValue(w *Worker, c tabular.Cell) tabular.Value {
	switch cr.personaOf(w) {
	case RandomJunk:
		return cr.junkValue(c)
	case FastDeceiver:
		return cr.deceiveValue(c)
	case Honest, Sleeper:
		// Fall through to the honest generative draw below. personaOf
		// already resolves Sleeper to Honest or FastDeceiver, so the
		// Sleeper arm is unreachable but keeps the switch exhaustive.
	}
	col := cr.DS.Table.Schema.Columns[c.Col]
	truth := cr.DS.Table.TruthAt(c)
	variance := cr.cellVariance(w, c)
	switch col.Type {
	case tabular.Categorical:
		// Eq. 3: correct with probability q, otherwise uniform over the
		// remaining labels.
		q := math.Erf(cr.DS.Eps / math.Sqrt(2*variance))
		if cr.rng.Float64() < q {
			return truth
		}
		k := len(col.Labels)
		wrong := cr.rng.Intn(k - 1)
		if wrong >= truth.L {
			wrong++
		}
		return tabular.LabelValue(wrong)
	default:
		// Eq. 1: a ~ N(truth, variance) in standardized units, mapped to
		// the column's natural units by ContScale, plus the worker's
		// sticky directional row bias (shared across the row's continuous
		// columns — the Fig. 6 signed correlation). Answers are clamped to
		// the column domain, as a crowdsourcing form's input widget would
		// do; without the clamp, spammer-and-confused draws produce
		// physically impossible values whose squared magnitudes dominate
		// every correlation estimate.
		z := math.Sqrt(variance)*cr.rng.NormFloat64() + cr.rowState(w, c.Row).bias
		x := truth.X + z*cr.DS.ContScale[c.Col]
		if col.Max > col.Min {
			x = stats.Clamp(x, col.Min, col.Max)
		}
		return tabular.NumberValue(x)
	}
}

// Answer draws a full Answer record.
func (cr *Crowd) Answer(w *Worker, c tabular.Cell) tabular.Answer {
	a := tabular.Answer{Worker: w.ID, Cell: c, Value: cr.AnswerValue(w, c)}
	cr.answered[w.ID]++
	return a
}

// WorkTimeMs draws the client-reported task time the worker's effective
// persona would submit: honest workers take seconds, junk and deceiver
// personas blast through in well under the plausibility floor.
func (cr *Crowd) WorkTimeMs(w *Worker) int64 {
	switch cr.personaOf(w) {
	case RandomJunk, FastDeceiver:
		return int64(40 + cr.rng.Intn(180))
	default:
		return int64(1200 + cr.rng.Intn(4800))
	}
}

// AnswerMeta draws a full answer plus its persona-consistent work time —
// the pair the adversarial scenarios submit over the /v1 wire.
func (cr *Crowd) AnswerMeta(w *Worker, c tabular.Cell) (tabular.Answer, int64) {
	ms := cr.WorkTimeMs(w)
	return cr.Answer(w, c), ms
}

// FixedAssignment replays the AMT collection protocol of Sec. 6.1: each row
// is a HIT covering all columns ("the number of tasks put in a HIT is the
// same as the number of columns"), and each HIT is answered by
// answersPerTask distinct workers. The resulting log therefore has exactly
// answersPerTask answers for every cell.
func (cr *Crowd) FixedAssignment(answersPerTask int) *tabular.AnswerLog {
	log := tabular.NewAnswerLog()
	nw := len(cr.DS.Workers)
	if answersPerTask > nw {
		answersPerTask = nw
	}
	for i := 0; i < cr.DS.Table.NumRows(); i++ {
		perm := cr.rng.Perm(nw)
		for k := 0; k < answersPerTask; k++ {
			w := &cr.DS.Workers[perm[k]]
			for j := 0; j < cr.DS.Table.NumCols(); j++ {
				log.Add(cr.Answer(w, tabular.Cell{Row: i, Col: j}))
			}
		}
	}
	return log
}

// PartialAssignment replays collection up to avg answers-per-task budget:
// it walks the same per-row HIT structure but stops once the total budget
// of budget answers is spent. Rows are visited round-robin so coverage
// stays uniform.
func (cr *Crowd) PartialAssignment(answersPerTask int, budget int) *tabular.AnswerLog {
	log := tabular.NewAnswerLog()
	nw := len(cr.DS.Workers)
	n, m := cr.DS.Table.NumRows(), cr.DS.Table.NumCols()
	for k := 0; k < answersPerTask; k++ {
		for i := 0; i < n; i++ {
			if log.Len() >= budget {
				return log
			}
			w := &cr.DS.Workers[cr.rng.Intn(nw)]
			for j := 0; j < m; j++ {
				log.Add(cr.Answer(w, tabular.Cell{Row: i, Col: j}))
			}
		}
	}
	return log
}

// AppendBatch appends n freshly drawn answers on a deterministic
// worker/cell rotation — the "one more answer batch landed" state that
// online-refresh benchmarks and warm-start tests replay.
func (cr *Crowd) AppendBatch(log *tabular.AnswerLog, n int) {
	rows, cols := cr.DS.Table.NumRows(), cr.DS.Table.NumCols()
	for k := 0; k < n; k++ {
		w := &cr.DS.Workers[k%len(cr.DS.Workers)]
		c := tabular.Cell{Row: (k * 7) % rows, Col: k % cols}
		log.Add(cr.Answer(w, c))
	}
}

// ArrivalOrder returns worker indices in a repeating random-arrival stream:
// the online assignment simulator pops workers from this sequence as they
// "show up" asking for HITs.
func (cr *Crowd) ArrivalOrder(totalArrivals int) []int {
	out := make([]int, 0, totalArrivals)
	for len(out) < totalArrivals {
		perm := cr.rng.Perm(len(cr.DS.Workers))
		need := totalArrivals - len(out)
		if need < len(perm) {
			perm = perm[:need]
		}
		out = append(out, perm...)
	}
	return out
}
