package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// TestRefreshIncrementalMatchesRebuild is the streaming equivalence
// property: for random logs split into arbitrary batch sequences,
// Ingest + RefreshIncremental(k) after every batch is EXACTLY — bit for
// bit, far inside the 1e-9 target — the model that InferWarm produces by
// re-decoding, re-sorting and re-indexing the grown log from scratch with
// the same EM budget. The streamed store (in-place CSR merge, constant
// updates, re-standardisation, dirty-cell E-step) therefore introduces
// zero numerical deviation; the only approximation in the streaming path
// is EM convergence itself, which the companion cold test bounds.
func TestRefreshIncrementalMatchesRebuild(t *testing.T) {
	opts := Options{MaxIter: 40, Tol: 1e-9, MStepIter: 25}
	splits := [][]int{
		{1, 49, 10, 40},    // mixed tiny/large batches
		{25, 25, 25, 25},   // uniform
		{97, 1, 1, 1},      // one bulk batch then single answers
		{5, 31, 1, 44, 13}, // ragged
	}
	for trial, split := range splits {
		seed := int64(3100 + trial*11)
		ds, full := equivDataset(seed, 25)
		all := full.All()
		prefix := len(all) / 2

		prefLog := tabular.NewAnswerLog()
		prefLog.AddAll(all[:prefix])
		m, err := Infer(ds.Table, prefLog, opts)
		if err != nil {
			t.Fatal(err)
		}
		// The rebuild reference starts from an identical prefix fit and
		// replays the same batches through the full rebuild path.
		ref, err := Infer(ds.Table, prefLog, opts)
		if err != nil {
			t.Fatal(err)
		}
		refLog := prefLog.Clone()

		at, si := prefix, 0
		for at < len(all) {
			n := split[si%len(split)]
			si++
			if at+n > len(all) {
				n = len(all) - at
			}
			batch := all[at : at+n]
			at += n

			if err := m.Ingest(batch); err != nil {
				t.Fatal(err)
			}
			m.RefreshIncremental(12)

			refLog.AddAll(batch)
			wopts := opts
			wopts.MaxIter = 12 // the polish budget
			ref, err = InferWarm(ref, ds.Table, refLog, wopts)
			if err != nil {
				t.Fatal(err)
			}
			assertBitwiseFit(t, trial, ref, m)
		}
	}
}

// assertBitwiseFit requires two fits to agree exactly: parameters,
// posteriors, iteration counts and estimates.
func assertBitwiseFit(t *testing.T, trial int, want, got *Model) {
	t.Helper()
	if want.Iterations != got.Iterations || want.Converged != got.Converged {
		t.Fatalf("trial %d: EM trajectory diverged: (%d, %v) vs (%d, %v)",
			trial, want.Iterations, want.Converged, got.Iterations, got.Converged)
	}
	chk := func(name string, xs, ys []float64) {
		t.Helper()
		if len(xs) != len(ys) {
			t.Fatalf("trial %d: %s length %d vs %d", trial, name, len(xs), len(ys))
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("trial %d: %s[%d]: %v vs %v (delta %.3g)",
					trial, name, i, xs[i], ys[i], math.Abs(xs[i]-ys[i]))
			}
		}
	}
	chk("alpha", want.Alpha, got.Alpha)
	chk("beta", want.Beta, got.Beta)
	chk("phi", want.Phi, got.Phi)
	for i := 0; i < want.Table.NumRows(); i++ {
		for j := 0; j < want.Table.NumCols(); j++ {
			if wp, gp := want.CatPost[i][j], got.CatPost[i][j]; wp != nil || gp != nil {
				chk(fmt.Sprintf("catpost(%d,%d)", i, j), wp, gp)
			}
			if want.ContMu[i][j] != got.ContMu[i][j] || want.ContVar[i][j] != got.ContVar[i][j] {
				t.Fatalf("trial %d: continuous posterior diverged at (%d,%d)", trial, i, j)
			}
		}
	}
}

// TestRefreshIncrementalMatchesCold bounds the remaining approximation of
// the streaming path — EM convergence itself: a streamed run polished to
// convergence and a cold Infer over the full log take different routes to
// the shared optimum, and independently converged float64 EM runs agree
// only to the line-search noise floor (~1e-8 on parameters; see the
// rebuild test for the exact, bitwise streaming guarantee). Labels must
// match exactly; continuous estimates to 1e-6 relative with ~20x measured
// margin.
func TestRefreshIncrementalMatchesCold(t *testing.T) {
	opts := Options{MaxIter: 600, Tol: 1e-12, MStepIter: 40, MStepGradTol: 1e-12}
	split := []int{3, 17, 1, 42, 9}
	for trial, seed := range []int64{3100, 3105, 3110} {
		ds, full := equivDataset(seed, 20)
		all := full.All()

		cold, err := Infer(ds.Table, full, opts)
		if err != nil {
			t.Fatal(err)
		}

		prefix := len(all) / 2
		prefLog := tabular.NewAnswerLog()
		prefLog.AddAll(all[:prefix])
		m, err := Infer(ds.Table, prefLog, opts)
		if err != nil {
			t.Fatal(err)
		}
		at, si := prefix, 0
		for at < len(all) {
			n := split[si%len(split)]
			si++
			if at+n > len(all) {
				n = len(all) - at
			}
			if err := m.Ingest(all[at : at+n]); err != nil {
				t.Fatal(err)
			}
			at += n
			m.RefreshIncremental(opts.MaxIter)
		}
		if !cold.Converged || !m.Converged {
			t.Fatalf("trial %d: run did not converge (cold %v, streamed %v)", trial, cold.Converged, m.Converged)
		}

		we, ge := cold.Estimates(), m.Estimates()
		for i := 0; i < ds.Table.NumRows(); i++ {
			for j := 0; j < ds.Table.NumCols(); j++ {
				a, b := we[i][j], ge[i][j]
				if a.Kind != b.Kind {
					t.Fatalf("trial %d: estimate kind diverged at (%d,%d)", trial, i, j)
				}
				if a.Kind == tabular.Label && a.L != b.L {
					t.Fatalf("trial %d: label diverged at (%d,%d): %d vs %d", trial, i, j, a.L, b.L)
				}
				if a.Kind == tabular.Number && math.Abs(a.X-b.X) > 1e-6*(1+math.Abs(a.X)) {
					t.Fatalf("trial %d: number diverged at (%d,%d): %v vs %v (delta %.3g)",
						trial, i, j, a.X, b.X, math.Abs(a.X-b.X))
				}
			}
		}
	}
}

// TestIngestFromSyncsSourceLog covers the source-log sync path: growing the
// fitted log in place and calling IngestFrom consumes exactly the suffix;
// foreign logs are rejected with ErrLogMismatch.
func TestIngestFromSyncsSourceLog(t *testing.T) {
	ds, log := equivDataset(3200, 25)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanIngestFrom(ds.Table, log) {
		t.Fatal("model cannot ingest from its own source log")
	}

	before := m.NumAnswersUsed()
	simulate.NewCrowd(ds, 3201).AppendBatch(log, 40)
	n, err := m.IngestFrom(log)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("IngestFrom consumed %d answers, want 40", n)
	}
	if m.NumAnswersUsed() != before+40 {
		t.Fatalf("store grew by %d answers, want 40", m.NumAnswersUsed()-before)
	}
	// A default-budget refresh below the polish backlog defers the EM
	// sweep: dirty-cell E-step only, zero reported iterations, debt kept.
	rs := m.RefreshIncremental(0)
	if rs.Polished || m.Iterations != 0 {
		t.Fatalf("refresh below backlog polished (stats %+v, iterations %d)", rs, m.Iterations)
	}
	if rs.Pending != 40 {
		t.Fatalf("refresh reported %d pending answers, want 40", rs.Pending)
	}
	if len(rs.Cells) == 0 {
		t.Fatal("refresh reported no refreshed cells")
	}
	// Growing the backlog past max(minPolishBacklog, frac*log) triggers the
	// deferred polish on the next default-budget refresh.
	simulate.NewCrowd(ds, 3202).AppendBatch(log, 2*minPolishBacklog)
	if _, err := m.IngestFrom(log); err != nil {
		t.Fatal(err)
	}
	rs = m.RefreshIncremental(0)
	if !rs.Polished || m.Iterations == 0 {
		t.Fatalf("refresh past backlog did not polish (stats %+v, iterations %d)", rs, m.Iterations)
	}
	// An explicit budget always polishes now, regardless of backlog.
	simulate.NewCrowd(ds, 3203).AppendBatch(log, 5)
	if _, err := m.IngestFrom(log); err != nil {
		t.Fatal(err)
	}
	if rs = m.RefreshIncremental(5); !rs.Polished || m.Iterations == 0 {
		t.Fatalf("explicit-budget refresh did not polish (stats %+v)", rs)
	}
	// Sync is idempotent once caught up.
	if n, err := m.IngestFrom(log); err != nil || n != 0 {
		t.Fatalf("caught-up IngestFrom = (%d, %v), want (0, nil)", n, err)
	}

	if m.CanIngestFrom(ds.Table, log.Clone()) {
		t.Fatal("CanIngestFrom accepted a foreign log")
	}
	if _, err := m.IngestFrom(log.Clone()); err != ErrLogMismatch {
		t.Fatalf("IngestFrom on a foreign log = %v, want ErrLogMismatch", err)
	}
}

// TestIngestExternalBatchKeepsSourceCursor pins the cursor contract: Ingest
// of an explicit external batch must not advance the source-log cursor, so
// a later IngestFrom still consumes every source answer.
func TestIngestExternalBatchKeepsSourceCursor(t *testing.T) {
	ds, log := equivDataset(3250, 20)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An external batch (not appended to the source log).
	external := tabular.NewAnswerLog()
	simulate.NewCrowd(ds, 3251).AppendBatch(external, 15)
	if err := m.Ingest(external.All()); err != nil {
		t.Fatal(err)
	}
	// The source log grows too; IngestFrom must still see all of it.
	simulate.NewCrowd(ds, 3252).AppendBatch(log, 20)
	n, err := m.IngestFrom(log)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("IngestFrom consumed %d source answers, want 20 (external ingest desynced the cursor)", n)
	}
}

// TestIngestNewWorkerAndCell exercises structural growth: a batch from an
// unseen worker on a previously unanswered cell registers the worker at the
// initial variance and allocates the cell's posterior.
func TestIngestNewWorkerAndCell(t *testing.T) {
	ds := simulate.Generate(stats.NewRNG(3300), simulate.TableConfig{
		Rows: 10, Cols: 4, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 8},
	})
	// Leave row 9 unanswered by fitting on rows 0-8 only.
	full := simulate.NewCrowd(ds, 3301).FixedAssignment(3)
	part := tabular.NewAnswerLog()
	for _, a := range full.All() {
		if a.Cell.Row < 9 {
			part.Add(a)
		}
	}
	m, err := Infer(ds.Table, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Answered[9][0] {
		t.Fatal("test premise broken: row 9 already answered")
	}

	var batch []tabular.Answer
	for j := 0; j < ds.Table.NumCols(); j++ {
		v := tabular.LabelValue(0)
		if ds.Table.Schema.Columns[j].Type == tabular.Continuous {
			v = tabular.NumberValue(ds.Table.Truth[9][j].X)
		}
		batch = append(batch, tabular.Answer{
			Worker: "fresh-worker", Cell: tabular.Cell{Row: 9, Col: j}, Value: v,
		})
	}
	if err := m.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	m.RefreshIncremental(0)

	if _, ok := m.workerIdx["fresh-worker"]; !ok {
		t.Fatal("new worker not registered")
	}
	if got := len(m.Phi); got != len(m.WorkerIDs) {
		t.Fatalf("phi vector (%d) out of sync with workers (%d)", got, len(m.WorkerIDs))
	}
	est := m.Estimates()
	for j := 0; j < ds.Table.NumCols(); j++ {
		if !m.Answered[9][j] {
			t.Fatalf("cell (9,%d) not marked answered", j)
		}
		if est[9][j].IsNone() {
			t.Fatalf("cell (9,%d) has no estimate after ingest", j)
		}
	}
}

// TestIngestRejectsBadBatchAtomically pins the validate-first contract: an
// invalid batch errors without mutating any model state.
func TestIngestRejectsBadBatchAtomically(t *testing.T) {
	ds, log := equivDataset(3400, 15)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumAnswersUsed()
	workers := len(m.WorkerIDs)
	bad := []tabular.Answer{
		{Worker: "w", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.NumberValue(1)}, // valid or not, col 0 type decides
		{Worker: "w", Cell: tabular.Cell{Row: 999, Col: 0}, Value: tabular.LabelValue(0)},
	}
	if err := m.Ingest(bad); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if m.NumAnswersUsed() != before || len(m.WorkerIDs) != workers {
		t.Fatal("failed Ingest mutated the model")
	}

	// An out-of-range label must be rejected up front too — merged, it
	// would index out of the posterior arena at the next refresh.
	catCol := -1
	for j, col := range ds.Table.Schema.Columns {
		if col.Type == tabular.Categorical {
			catCol = j
			break
		}
	}
	badLabel := []tabular.Answer{{
		Worker: "w",
		Cell:   tabular.Cell{Row: 0, Col: catCol},
		Value:  tabular.LabelValue(ds.Table.Schema.Columns[catCol].NumLabels()),
	}}
	if err := m.Ingest(badLabel); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if m.NumAnswersUsed() != before {
		t.Fatal("failed label Ingest mutated the model")
	}
	m.RefreshIncremental(1) // must not panic on arena indexing
}

// TestIngestSteadyStateAllocs pins streaming ingestion at O(batch)
// allocations: once capacity headroom is warm, absorbing a batch performs a
// small constant number of allocations regardless of the stored log's size.
func TestIngestSteadyStateAllocs(t *testing.T) {
	measure := func(rows int) float64 {
		ds, log := equivDataset(3500, rows)
		m, err := Infer(ds.Table, log, Options{})
		if err != nil {
			t.Fatal(err)
		}
		crowd := simulate.NewCrowd(ds, 3501)
		batch := tabular.NewAnswerLog()
		crowd.AppendBatch(batch, 50)
		// Warm headroom: a few batches grow every arena past its next
		// capacity step.
		for i := 0; i < 4; i++ {
			if err := m.Ingest(batch.All()); err != nil {
				t.Fatal(err)
			}
			m.RefreshIncremental(1)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if err := m.Ingest(batch.All()); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs - before.Mallocs)
	}

	small := measure(20) // ~1.6k answers
	large := measure(80) // ~6.4k answers
	// O(log) ingestion would cost thousands of allocations here (decode of
	// the full log); O(batch) costs a handful that do not grow with the
	// log.
	if small > 24 || large > 24 {
		t.Fatalf("steady-state ingest allocates too much: %0.f (small log) / %0.f (large log)", small, large)
	}
	if large > small+8 {
		t.Fatalf("ingest allocations scale with log size: %0.f -> %0.f", small, large)
	}
}

// TestEstimatesIntoSteadyStateAllocs pins the zero-alloc estimate fill:
// once a flat-backed Estimates exists, refreshing it in place allocates
// nothing — the assignment engine's applyRefresh depends on this to keep
// the streaming tier allocation-free.
func TestEstimatesIntoSteadyStateAllocs(t *testing.T) {
	ds, log := equivDataset(3600, 25)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimates()
	if avg := testing.AllocsPerRun(50, func() { m.EstimatesInto(est) }); avg > 0 {
		t.Fatalf("EstimatesInto allocates %.1f allocs/run, want 0", avg)
	}
}
