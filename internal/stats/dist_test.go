package stats

import (
	"math"
	"testing"
)

func TestNormalPDFGolden(t *testing.T) {
	n := Normal{Mu: 0, Var: 1}
	almostEqual(t, n.PDF(0), 1/math.Sqrt(2*math.Pi), 1e-12, "std normal peak")
	almostEqual(t, n.PDF(1), math.Exp(-0.5)/math.Sqrt(2*math.Pi), 1e-12, "pdf(1)")
	n2 := Normal{Mu: 3, Var: 4}
	almostEqual(t, n2.PDF(3), 1/math.Sqrt(8*math.Pi), 1e-12, "scaled peak")
	almostEqual(t, n2.LogPDF(5), math.Log(n2.PDF(5)), 1e-12, "log consistency")
}

func TestNormalCDFQuantile(t *testing.T) {
	n := Normal{Mu: 10, Var: 9}
	almostEqual(t, n.CDF(10), 0.5, 1e-12, "median CDF")
	almostEqual(t, n.CDF(13), 0.841344746, 1e-8, "one sigma")
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		almostEqual(t, n.CDF(n.Quantile(p)), p, 1e-10, "CDF/Quantile round trip")
	}
}

func TestNormalDegenerate(t *testing.T) {
	n := Normal{Mu: 2, Var: 0}
	if n.CDF(1.99) != 0 || n.CDF(2.01) != 1 {
		t.Fatal("degenerate CDF should be a step")
	}
	if !math.IsInf(n.Entropy(), -1) {
		t.Fatal("degenerate entropy should be -Inf")
	}
	if !math.IsInf(n.LogPDF(3), -1) {
		t.Fatal("degenerate LogPDF off-mean should be -Inf")
	}
}

func TestNormalEntropyGolden(t *testing.T) {
	// H = 0.5 ln(2 pi e) for the standard normal = 1.4189385...
	almostEqual(t, Normal{Var: 1}.Entropy(), 1.418938533, 1e-8, "std entropy")
	// Entropy increases with variance.
	if (Normal{Var: 2}).Entropy() <= (Normal{Var: 1}).Entropy() {
		t.Fatal("entropy must grow with variance")
	}
	almostEqual(t, DifferentialEntropyNormal(1), Normal{Var: 1}.Entropy(), 1e-12, "helper")
}

func TestNormalSampleMoments(t *testing.T) {
	rng := NewRNG(42)
	n := Normal{Mu: -2, Var: 2.25}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = n.Sample(rng)
	}
	m, v := MeanVariance(xs)
	almostEqual(t, m, -2, 0.05, "sample mean")
	almostEqual(t, v, 2.25, 0.1, "sample variance")
}

func TestFitNormal(t *testing.T) {
	n := FitNormal([]float64{1, 2, 3}, 1e-6)
	almostEqual(t, n.Mu, 2, 1e-12, "fit mean")
	almostEqual(t, n.Var, 2.0/3.0, 1e-12, "fit var")
	flat := FitNormal([]float64{5, 5, 5}, 1e-6)
	if flat.Var != 1e-6 {
		t.Fatal("variance must be floored")
	}
}

func TestBernoulli(t *testing.T) {
	b := Bernoulli{P: 0.3}
	almostEqual(t, b.PMF(1), 0.3, 1e-12, "pmf 1")
	almostEqual(t, b.PMF(0), 0.7, 1e-12, "pmf 0")
	almostEqual(t, b.Mean(), 0.3, 1e-12, "mean")
	// Entropy of fair coin = ln 2.
	almostEqual(t, Bernoulli{P: 0.5}.Entropy(), math.Ln2, 1e-12, "fair entropy")
	rng := NewRNG(7)
	ones := 0
	for i := 0; i < 10000; i++ {
		ones += b.Sample(rng)
	}
	almostEqual(t, float64(ones)/10000, 0.3, 0.02, "sample rate")
}

func TestFitBernoulliSmoothing(t *testing.T) {
	b := FitBernoulli([]float64{1, 1, 1, 1})
	if b.P >= 1 || b.P <= 0 {
		t.Fatalf("smoothed P must stay inside (0,1): %v", b.P)
	}
	almostEqual(t, FitBernoulli(nil).P, 0.5, 1e-12, "empty prior")
	almostEqual(t, FitBernoulli([]float64{0, 1}).P, 0.5, 1e-12, "balanced")
}

func TestCategorical(t *testing.T) {
	c := Categorical{P: []float64{2, 1, 1}}.Normalize()
	almostEqual(t, c.P[0], 0.5, 1e-12, "normalize")
	if c.ArgMax() != 0 {
		t.Fatal("argmax should be 0")
	}
	if (Categorical{P: []float64{0.1, 0.1, 0.8}}).ArgMax() != 2 {
		t.Fatal("argmax should be 2")
	}
	u := NewCategoricalUniform(4)
	almostEqual(t, u.Entropy(), math.Log(4), 1e-12, "uniform entropy")
	// Degenerate normalization falls back to uniform.
	d := Categorical{P: []float64{0, 0}}.Normalize()
	almostEqual(t, d.P[0], 0.5, 1e-12, "degenerate -> uniform")

	rng := NewRNG(3)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[c.Sample(rng)]++
	}
	almostEqual(t, float64(counts[0])/30000, 0.5, 0.02, "sample frequency")
}

func TestShannonEntropyBounds(t *testing.T) {
	if ShannonEntropy([]float64{1, 0, 0}) != 0 {
		t.Fatal("point mass entropy must be 0")
	}
	h := ShannonEntropy([]float64{0.25, 0.25, 0.25, 0.25})
	almostEqual(t, h, math.Log(4), 1e-12, "uniform is max")
}

func TestBivariateNormalConditional(t *testing.T) {
	b := BivariateNormal{MuX: 1, MuY: 2, VarX: 4, VarY: 9, Cov: 3}
	almostEqual(t, b.Rho(), 0.5, 1e-12, "rho")
	c := b.ConditionalY(3)
	// mu = 2 + 0.5 * (3/2) * (3-1) = 3.5 ; var = (1-0.25)*9 = 6.75
	almostEqual(t, c.Mu, 3.5, 1e-12, "conditional mean")
	almostEqual(t, c.Var, 6.75, 1e-12, "conditional var")

	// Independence: conditional equals marginal.
	ind := BivariateNormal{MuY: 5, VarX: 1, VarY: 2}
	c2 := ind.ConditionalY(100)
	almostEqual(t, c2.Mu, 5, 1e-12, "independent mean")
	almostEqual(t, c2.Var, 2, 1e-12, "independent var")
}

func TestFitBivariateNormalRecoversRho(t *testing.T) {
	rng := NewRNG(11)
	truth := BivariateNormal{MuX: -1, MuY: 2, VarX: 1, VarY: 4, Cov: 1.2}
	xs := make([]float64, 20000)
	ys := make([]float64, 20000)
	for i := range xs {
		xs[i], ys[i] = truth.Sample(rng)
	}
	fit := FitBivariateNormal(xs, ys, 1e-9)
	almostEqual(t, fit.MuX, truth.MuX, 0.05, "MuX")
	almostEqual(t, fit.MuY, truth.MuY, 0.1, "MuY")
	almostEqual(t, fit.Rho(), truth.Rho(), 0.05, "Rho")
}

func TestSampleLongTailAndTruncated(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := SampleLongTail(rng, 0.2, 1.0, 0.01)
		if v < 0.01 {
			t.Fatal("long tail must respect floor")
		}
	}
	for i := 0; i < 1000; i++ {
		v := SampleTruncatedNormal(rng, 0.5, 10, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("truncated sample out of range: %v", v)
		}
	}
}
