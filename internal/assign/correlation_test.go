package assign

import (
	"math"
	"testing"

	"tcrowd/internal/core"
	"tcrowd/internal/simulate"
	"tcrowd/internal/tabular"
)

func restaurantModel(t *testing.T) (*simulate.Dataset, *core.Model) {
	t.Helper()
	ds := simulate.Restaurant(11)
	log := simulate.NewCrowd(ds, 12).FixedAssignment(4)
	m, err := core.Infer(ds.Table, log, core.Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	return ds, m
}

func TestBuildErrorModelShapes(t *testing.T) {
	ds, m := restaurantModel(t)
	em := BuildErrorModel(m)
	nCols := ds.Table.NumCols()
	for j := 0; j < nCols; j++ {
		if ds.Table.Schema.Columns[j].Type == tabular.Categorical {
			p := em.MarginalCat(j).P
			if p <= 0 || p >= 1 {
				t.Fatalf("marginal cat %d: %v", j, p)
			}
		} else {
			n := em.MarginalCont(j)
			if n.Var <= 0 {
				t.Fatalf("marginal cont %d: var %v", j, n.Var)
			}
		}
	}
	// The simulator's row confusion makes StartTarget(3)/EndTarget(4)
	// errors positively correlated — the Fig. 6 effect the structure-aware
	// gain relies on.
	if w := em.W(3, 4); w < 0.05 {
		t.Fatalf("W(start,end)=%v, expected positive correlation", w)
	}
	// W is symmetric up to estimation (same samples, swapped order).
	if math.Abs(em.W(3, 4)-em.W(4, 3)) > 1e-9 {
		t.Fatalf("W asymmetric: %v vs %v", em.W(3, 4), em.W(4, 3))
	}
}

func TestCondWrongProbReactsToRowErrors(t *testing.T) {
	_, m := restaurantModel(t)
	em := BuildErrorModel(m)
	// Conditioning a categorical column on a wrong answer elsewhere in the
	// row must raise the wrong-probability relative to conditioning on a
	// correct answer (Fig. 6 left: 86% vs 73% correct).
	for j := 0; j < 3; j++ { // categorical columns of Restaurant
		var other int
		for other = 0; other < 3; other++ {
			if other != j && em.pairOK[j*em.nCols+other] {
				break
			}
		}
		if other >= 3 || !em.pairOK[j*em.nCols+other] {
			continue
		}
		pGood, ok1 := em.CondWrongProb(j, map[int]float64{other: 0})
		pBad, ok2 := em.CondWrongProb(j, map[int]float64{other: 1})
		if !ok1 || !ok2 {
			t.Fatalf("cond prob unavailable for pair (%d,%d)", j, other)
		}
		if pBad <= pGood {
			t.Fatalf("wrong neighbour should predict more errors: P(wrong|wrong)=%v P(wrong|right)=%v", pBad, pGood)
		}
		return // one verified pair suffices
	}
	t.Skip("no categorical pair with enough samples")
}

func TestCondErrorNormalReactsToRowErrors(t *testing.T) {
	_, m := restaurantModel(t)
	em := BuildErrorModel(m)
	if !em.pairOK[4*em.nCols+3] {
		t.Skip("start/end pair not fitted")
	}
	small, ok1 := em.CondErrorNormal(4, map[int]float64{3: 0.1})
	large, ok2 := em.CondErrorNormal(4, map[int]float64{3: 4.0})
	if !ok1 || !ok2 {
		t.Fatal("conditional unavailable")
	}
	// A large observed error on StartTarget should predict a larger
	// expected squared error on EndTarget.
	if large.Var+large.Mu*large.Mu <= small.Var+small.Mu*small.Mu {
		t.Fatalf("conditional did not inflate: small=%v large=%v", small, large)
	}
}

func TestRowErrors(t *testing.T) {
	ds, m := restaurantModel(t)
	em := BuildErrorModel(m)
	est := m.Estimates()
	// Pick a worker with answers in row 0.
	log := m.Log
	var u tabular.WorkerID
	for _, a := range log.All() {
		if a.Cell.Row == 0 {
			u = a.Worker
			break
		}
	}
	if u == "" {
		t.Fatal("no answers in row 0")
	}
	errs := em.RowErrors(u, 0, est)
	if len(errs) == 0 {
		t.Fatal("no row errors for an answering worker")
	}
	for j, e := range errs {
		if ds.Table.Schema.Columns[j].Type == tabular.Categorical {
			if e != 0 && e != 1 {
				t.Fatalf("categorical error %v", e)
			}
		} else if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("continuous error %v", e)
		}
	}
	// A stranger has no errors anywhere.
	if got := em.RowErrors("stranger", 0, est); len(got) != 0 {
		t.Fatal("stranger with row errors")
	}
}

func TestCondFallbacks(t *testing.T) {
	_, m := restaurantModel(t)
	em := BuildErrorModel(m)
	// Empty history: categorical falls back to the marginal.
	p, ok := em.CondWrongProb(0, map[int]float64{})
	if !ok {
		t.Fatal("marginal fallback missing")
	}
	if math.Abs(p-em.MarginalCat(0).P) > 1e-9 {
		t.Fatalf("fallback %v != marginal %v", p, em.MarginalCat(0).P)
	}
	// Continuous with empty history reports not-ok (caller uses inherent).
	if _, ok := em.CondErrorNormal(3, map[int]float64{}); ok {
		t.Fatal("continuous conditional from nothing")
	}
}

// TestErrorModelSteadyStateAllocs pins the accumulator-based error model
// at zero steady-state allocations: once the arenas are sized for the
// worker set, both a full Rebuild (polish anchors) and an incremental
// UpdateCells (deferred refreshes) run entirely in reused storage.
func TestErrorModelSteadyStateAllocs(t *testing.T) {
	ds, m := restaurantModel(t)
	em := NewErrorModel(m)
	est := m.Estimates()
	em.Rebuild(est) // size every arena

	if avg := testing.AllocsPerRun(20, func() { em.Rebuild(est) }); avg > 0 {
		t.Fatalf("warm Rebuild allocates %.1f allocs/run, want 0", avg)
	}

	cells := []int{0, ds.Table.NumCols() + 1, 3*ds.Table.NumCols() + 2}
	em.UpdateCells(est, cells)
	if avg := testing.AllocsPerRun(20, func() { em.UpdateCells(est, cells) }); avg > 0 {
		t.Fatalf("warm UpdateCells allocates %.1f allocs/run, want 0", avg)
	}
}
