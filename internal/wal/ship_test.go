package wal

import (
	"fmt"
	"testing"
)

// shipAll ships every segment of l starting at from, failing the test on
// error.
func shipAll(t *testing.T, l *Log, from int) []ShippedSegment {
	t.Helper()
	segs, err := l.ShipSegments(from)
	if err != nil {
		t.Fatalf("ShipSegments(%d): %v", from, err)
	}
	return segs
}

// TestShipRoundTrip pins the core shipping contract: laying a shipped
// segment set down in a fresh directory and replaying it through Open
// yields exactly the records the sender acknowledged.
func TestShipRoundTrip(t *testing.T) {
	src := NewMemFS()
	l, _ := openTest(t, src, Options{SegmentBytes: 64})
	var want []Record
	for i := 0; i < 12; i++ {
		r := rec(3, fmt.Sprintf("answer-batch-%02d-padding", i))
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	segs := shipAll(t, l, 1)
	if len(segs) < 2 {
		t.Fatalf("shipped %d segments, want >= 2 (rotation)", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Index <= segs[i-1].Index {
			t.Fatalf("shipped indices out of order: %d then %d", segs[i-1].Index, segs[i].Index)
		}
	}

	dst := NewMemFS()
	if err := WriteSegments(dst, "mirror/alpha", segs, true); err != nil {
		t.Fatalf("WriteSegments: %v", err)
	}
	opts := Options{FS: dst, CheckpointType: ckptType, SegmentBytes: 64}
	l2, rep, err := Open("mirror/alpha", opts)
	if err != nil {
		t.Fatalf("Open mirror: %v", err)
	}
	defer l2.Close()
	if rep.Torn {
		t.Fatal("mirror replay reported a torn tail")
	}
	wantRecords(t, rep.Records, want...)
	l.Close()
}

// TestShipFromWatermark pins incremental tail shipping: from skips lower
// segments, and laying the tail down with prune=false must keep the
// already-mirrored low segments intact.
func TestShipFromWatermark(t *testing.T) {
	src := NewMemFS()
	l, _ := openTest(t, src, Options{SegmentBytes: 64})
	var want []Record
	for i := 0; i < 12; i++ {
		r := rec(3, fmt.Sprintf("answer-batch-%02d-padding", i))
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	full := shipAll(t, l, 1)
	top := full[len(full)-1].Index
	if top < 2 {
		t.Fatalf("need >= 2 segments, got top %d", top)
	}

	// First contact mirrors everything; a later incremental round ships
	// only the tail.
	dst := NewMemFS()
	if err := WriteSegments(dst, "mirror/alpha", full, true); err != nil {
		t.Fatal(err)
	}
	tail := shipAll(t, l, top)
	if len(tail) == 0 || tail[0].Index != top {
		t.Fatalf("tail ship from %d = %+v", top, tail)
	}
	if err := WriteSegments(dst, "mirror/alpha", tail, false); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open("mirror/alpha", Options{FS: dst, CheckpointType: ckptType})
	if err != nil {
		t.Fatalf("Open mirror after tail refresh: %v", err)
	}
	wantRecords(t, rep.Records, want...)

	// The same tail written with prune=true deletes the live low segments
	// and silently loses history — pin that the flag controls it (and so
	// that incremental callers must pass false).
	dst2 := NewMemFS()
	if err := WriteSegments(dst2, "mirror/alpha", full, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteSegments(dst2, "mirror/alpha", tail, true); err != nil {
		t.Fatal(err)
	}
	l2, rep2, err := Open("mirror/alpha", Options{FS: dst2, CheckpointType: ckptType})
	if err != nil {
		t.Fatalf("Open pruned mirror: %v", err)
	}
	l2.Close()
	if len(rep2.Records) >= len(want) {
		t.Fatalf("pruned-to-tail mirror replayed %d records, want < %d (history behind the tail is gone)", len(rep2.Records), len(want))
	}
	l.Close()
}

// TestShipRejectsBadIndex pins that segment indices from the wire are
// validated before becoming file names.
func TestShipRejectsBadIndex(t *testing.T) {
	dst := NewMemFS()
	err := WriteSegments(dst, "mirror/alpha", []ShippedSegment{{Index: 0, Data: []byte("x")}}, true)
	if err == nil {
		t.Fatal("index 0 accepted")
	}
	err = WriteSegments(dst, "mirror/alpha", []ShippedSegment{{Index: -3, Data: nil}}, true)
	if err == nil {
		t.Fatal("negative index accepted")
	}
}
