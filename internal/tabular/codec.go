package tabular

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// JSON wire formats. The on-disk representation names labels by string (not
// index) so logs survive schema reordering, and it is the format the
// platform server speaks.

type schemaJSON struct {
	Key     string       `json:"key"`
	Columns []columnJSON `json:"columns"`
}

type columnJSON struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Labels []string `json:"labels,omitempty"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
}

// MarshalJSON implements json.Marshaler for Schema.
func (s Schema) MarshalJSON() ([]byte, error) {
	out := schemaJSON{Key: s.Key, Columns: make([]columnJSON, len(s.Columns))}
	for i, c := range s.Columns {
		out.Columns[i] = columnJSON{Name: c.Name, Type: c.Type.String(), Labels: c.Labels, Min: c.Min, Max: c.Max}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Schema.
func (s *Schema) UnmarshalJSON(b []byte) error {
	var in schemaJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	cols := make([]Column, len(in.Columns))
	for i, c := range in.Columns {
		var t ColumnType
		switch c.Type {
		case "categorical":
			t = Categorical
		case "continuous":
			t = Continuous
		default:
			return fmt.Errorf("tabular: unknown column type %q", c.Type)
		}
		cols[i] = Column{Name: c.Name, Type: t, Labels: c.Labels, Min: c.Min, Max: c.Max}
	}
	*s = Schema{Key: in.Key, Columns: cols}
	return nil
}

type answerJSON struct {
	Worker string   `json:"worker"`
	Row    int      `json:"row"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
}

// answerToJSON converts one answer to the wire element, resolving label
// indices through the schema.
func answerToJSON(s Schema, a Answer) (answerJSON, error) {
	if a.Cell.Col < 0 || a.Cell.Col >= len(s.Columns) {
		return answerJSON{}, fmt.Errorf("tabular: answer column %d out of schema range", a.Cell.Col)
	}
	col := s.Columns[a.Cell.Col]
	aj := answerJSON{Worker: string(a.Worker), Row: a.Cell.Row, Column: col.Name}
	switch a.Value.Kind {
	case Label:
		if a.Value.L < 0 || a.Value.L >= len(col.Labels) {
			return answerJSON{}, fmt.Errorf("tabular: label index %d out of range for %q", a.Value.L, col.Name)
		}
		lbl := col.Labels[a.Value.L]
		aj.Label = &lbl
	case Number:
		x := a.Value.X
		aj.Number = &x
	default:
		return answerJSON{}, fmt.Errorf("tabular: cannot encode empty value for %q", col.Name)
	}
	return aj, nil
}

// answerFromJSON converts one wire element back, resolving label strings
// and column names through the schema; i labels errors.
func answerFromJSON(s Schema, i int, aj answerJSON) (Answer, error) {
	j := s.ColumnIndex(aj.Column)
	if j < 0 {
		return Answer{}, fmt.Errorf("tabular: answer %d references unknown column %q", i, aj.Column)
	}
	col := s.Columns[j]
	var v Value
	switch {
	case aj.Label != nil:
		idx := -1
		for k, lbl := range col.Labels {
			if lbl == *aj.Label {
				idx = k
				break
			}
		}
		if idx < 0 {
			return Answer{}, fmt.Errorf("tabular: answer %d has unknown label %q for column %q", i, *aj.Label, col.Name)
		}
		v = LabelValue(idx)
	case aj.Number != nil:
		v = NumberValue(*aj.Number)
	default:
		return Answer{}, fmt.Errorf("tabular: answer %d carries neither label nor number", i)
	}
	if err := v.CheckAgainst(col); err != nil {
		return Answer{}, fmt.Errorf("tabular: answer %d: %w", i, err)
	}
	return Answer{Worker: WorkerID(aj.Worker), Cell: Cell{Row: aj.Row, Col: j}, Value: v}, nil
}

// MarshalAnswers renders an answer slice as a compact JSON array — the
// same element format as EncodeAnswers without indentation. It is the
// payload format of WAL batch records, where bytes cost fsync latency.
func MarshalAnswers(s Schema, as []Answer) ([]byte, error) {
	out := make([]answerJSON, 0, len(as))
	for _, a := range as {
		aj, err := answerToJSON(s, a)
		if err != nil {
			return nil, err
		}
		out = append(out, aj)
	}
	return json.Marshal(out)
}

// UnmarshalAnswers parses an answer array written by MarshalAnswers (or
// EncodeAnswers), validating every value against the schema.
func UnmarshalAnswers(b []byte, s Schema) ([]Answer, error) {
	var in []answerJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, err
	}
	out := make([]Answer, 0, len(in))
	for i, aj := range in {
		a, err := answerFromJSON(s, i, aj)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// EncodeAnswers writes the log as a JSON array resolving label indices via
// the schema.
func EncodeAnswers(w io.Writer, s Schema, l *AnswerLog) error {
	out := make([]answerJSON, 0, l.Len())
	for _, a := range l.All() {
		aj, err := answerToJSON(s, a)
		if err != nil {
			return err
		}
		out = append(out, aj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeAnswers reads a JSON answer array into a fresh log, resolving label
// strings and column names through the schema.
func DecodeAnswers(r io.Reader, s Schema) (*AnswerLog, error) {
	var in []answerJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	l := NewAnswerLog()
	for i, aj := range in {
		a, err := answerFromJSON(s, i, aj)
		if err != nil {
			return nil, err
		}
		l.Add(a)
	}
	return l, nil
}

// WriteAnswersCSV exports the log as CSV with header
// worker,row,column,value. Labels are written by name.
func WriteAnswersCSV(w io.Writer, s Schema, l *AnswerLog) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"worker", "row", "column", "value"}); err != nil {
		return err
	}
	for _, a := range l.All() {
		col := s.Columns[a.Cell.Col]
		var val string
		switch a.Value.Kind {
		case Label:
			val = col.Labels[a.Value.L]
		case Number:
			val = strconv.FormatFloat(a.Value.X, 'g', -1, 64)
		case None:
			// A kind-less value exports as an empty field; ReadAnswersCSV
			// rejects it on the way back in, keeping the round trip honest.
			val = ""
		}
		rec := []string{string(a.Worker), strconv.Itoa(a.Cell.Row), col.Name, val}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAnswersCSV parses the CSV format written by WriteAnswersCSV.
func ReadAnswersCSV(r io.Reader, s Schema) (*AnswerLog, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return NewAnswerLog(), nil
	}
	start := 0
	if len(recs[0]) == 4 && recs[0][0] == "worker" {
		start = 1 // skip header
	}
	l := NewAnswerLog()
	for i := start; i < len(recs); i++ {
		rec := recs[i]
		if len(rec) != 4 {
			return nil, fmt.Errorf("tabular: csv row %d has %d fields, want 4", i, len(rec))
		}
		row, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("tabular: csv row %d: bad row index: %w", i, err)
		}
		j := s.ColumnIndex(rec[2])
		if j < 0 {
			return nil, fmt.Errorf("tabular: csv row %d: unknown column %q", i, rec[2])
		}
		col := s.Columns[j]
		var v Value
		if col.Type == Categorical {
			idx := -1
			for k, lbl := range col.Labels {
				if lbl == rec[3] {
					idx = k
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("tabular: csv row %d: unknown label %q", i, rec[3])
			}
			v = LabelValue(idx)
		} else {
			x, err := strconv.ParseFloat(rec[3], 64)
			if err != nil {
				return nil, fmt.Errorf("tabular: csv row %d: bad number: %w", i, err)
			}
			v = NumberValue(x)
		}
		l.Add(Answer{Worker: WorkerID(rec[0]), Cell: Cell{Row: row, Col: j}, Value: v})
	}
	return l, nil
}
