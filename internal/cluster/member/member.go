// Package member implements static cluster membership: parsing the
// -peers flag into a validated member set and mapping project IDs to
// their home node over the same consistent-hash ring construction the
// in-process shard scheduler uses (shard.Ring on node IDs). Placement is
// a pure function of (member IDs, project ID) — every node that agrees on
// the flag agrees on every project's home with no coordination, which is
// the whole cluster design: membership is configuration, not consensus.
//
//tcrowd:deterministic
package member

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"tcrowd/internal/shard"
)

// Member is one cluster node: a stable ID (the ring key — renaming a node
// moves its projects) and the base URL peers reach it at.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Set is a validated, immutable member set with its placement ring.
type Set struct {
	self    Member
	members []Member // sorted by ID
	byID    map[string]Member
	ring    *shard.Ring
}

// Parse builds a Set from the -node-id/-peers flags. spec is
// comma-separated "id=base-url" entries and must include selfID — the
// flag describes the WHOLE cluster, identically on every node, so each
// node finds its own address there too:
//
//	n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080,n3=http://10.0.0.3:8080
//
// IDs must be unique and '='/','-free; addresses must be absolute
// http(s) URLs without path, query or fragment (trailing slash is
// trimmed). An empty spec with an empty selfID returns nil — the
// single-node, cluster-off configuration.
func Parse(selfID, spec string) (*Set, error) {
	if spec == "" {
		if selfID == "" {
			return nil, nil
		}
		return nil, fmt.Errorf("member: -node-id %q given without -peers", selfID)
	}
	if selfID == "" {
		return nil, fmt.Errorf("member: -peers given without -node-id")
	}
	s := &Set{byID: make(map[string]Member)}
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, addr, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("member: entry %q is not id=url", ent)
		}
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if id == "" {
			return nil, fmt.Errorf("member: entry %q has an empty node id", ent)
		}
		if _, dup := s.byID[id]; dup {
			return nil, fmt.Errorf("member: duplicate node id %q", id)
		}
		u, err := url.Parse(addr)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("member: node %q address %q is not an absolute http(s) URL", id, addr)
		}
		if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
			return nil, fmt.Errorf("member: node %q address %q must be scheme://host[:port] only", id, addr)
		}
		m := Member{ID: id, Addr: u.Scheme + "://" + u.Host}
		s.byID[id] = m
		s.members = append(s.members, m)
	}
	if len(s.members) == 0 {
		return nil, fmt.Errorf("member: -peers %q lists no nodes", spec)
	}
	self, ok := s.byID[selfID]
	if !ok {
		return nil, fmt.Errorf("member: -node-id %q does not appear in -peers (the spec must list every node, this one included)", selfID)
	}
	s.self = self
	sort.Slice(s.members, func(i, j int) bool { return s.members[i].ID < s.members[j].ID })
	ids := make([]string, len(s.members))
	for i, m := range s.members {
		ids[i] = m.ID
	}
	s.ring = shard.NewRing(ids, 0)
	return s, nil
}

// Self returns this node's own entry.
func (s *Set) Self() Member { return s.self }

// Members lists every node sorted by ID (a copy; callers may not mutate
// the set).
func (s *Set) Members() []Member { return append([]Member(nil), s.members...) }

// Peers lists every node except self, sorted by ID.
func (s *Set) Peers() []Member {
	out := make([]Member, 0, len(s.members)-1)
	for _, m := range s.members {
		if m.ID != s.self.ID {
			out = append(out, m)
		}
	}
	return out
}

// Lookup resolves a node ID.
func (s *Set) Lookup(id string) (Member, bool) {
	m, ok := s.byID[id]
	return m, ok
}

// Size returns the member count.
func (s *Set) Size() int { return len(s.members) }

// HomeOf maps a project ID to its home node: the ring owner of the key.
// Every node computes the same answer from the same -peers flag.
func (s *Set) HomeOf(projectID string) Member {
	return s.byID[s.ring.Locate(projectID)]
}

// IsHome reports whether this node is projectID's home.
func (s *Set) IsHome(projectID string) bool {
	return s.ring.Locate(projectID) == s.self.ID
}
