package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load expands the package patterns with `go list` (so build constraints
// and testdata/vendor exclusions match the toolchain exactly), parses the
// non-test sources and type-checks them with the standard library's
// source importer. It must run from inside the module, like the go tool
// itself. Test files are deliberately excluded: the contracts the suite
// enforces live in production code, and test scaffolding (fmt in
// helpers, maps in fixtures) would drown the signal.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One shared source importer: stdlib and intra-module dependencies
	// are checked once per process, not once per analyzed package.
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := CheckDir(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var listed []listedPackage
	dec := json.NewDecoder(outPipe)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			if err == io.EOF {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return listed, nil
}

// CheckDir parses and type-checks one package's files. It is exported
// for the linttest golden-file harness, which loads testdata packages
// that `go list` deliberately cannot see.
func CheckDir(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Result is the outcome of running the suite over a set of packages.
type Result struct {
	// Findings holds every diagnostic, waived or not, in stable order.
	Findings []Diagnostic
	// UnusedWaivers are //lint:allow comments that matched no finding —
	// stale waivers that should be deleted.
	UnusedWaivers []Diagnostic
}

// Unwaived returns the findings not covered by a waiver: the ones that
// fail the build.
func (r *Result) Unwaived() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Findings {
		if !d.Waived {
			out = append(out, d)
		}
	}
	return out
}

// Waived returns the findings suppressed by a //lint:allow comment, for
// the driver's waiver report.
func (r *Result) Waived() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Findings {
		if d.Waived {
			out = append(out, d)
		}
	}
	return out
}

// Run executes the analyzers over the packages and applies waivers.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		unused := applyWaivers(diags, collectWaivers(pkg.Fset, pkg.Files))
		res.Findings = append(res.Findings, diags...)
		for _, w := range unused {
			// A waiver can only be judged stale by the analyzer it names:
			// under a filtered run (-only) the other analyzers produced no
			// findings for it to match, which proves nothing.
			if !ran[w.analyzer] {
				continue
			}
			res.UnusedWaivers = append(res.UnusedWaivers, Diagnostic{
				Analyzer: w.analyzer,
				Pos:      token.Position{Filename: w.file, Line: w.line},
				Message:  "unused //lint:allow waiver (matches no finding)",
			})
		}
	}
	sortDiags(res.Findings)
	sortDiags(res.UnusedWaivers)
	res.Findings = dedupe(res.Findings)
	return res, nil
}

// dedupe drops findings identical in (analyzer, file, line, message) —
// one source line that trips a rule twice (e.g. a guarded field read and
// written in one statement) is one finding.
func dedupe(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if n := len(out); n > 0 {
			p := out[n-1]
			if p.Analyzer == d.Analyzer && p.Pos.Filename == d.Pos.Filename && p.Pos.Line == d.Pos.Line && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
