// Package ingest is the streaming answer store of the EM engine: a mutable
// CSR (compressed sparse row) layout of decoded answers that grows in place
// as answer batches land, instead of being rebuilt from the raw log on every
// refresh.
//
// Motivation. Online serving re-infers after every small answer batch. The
// cold path decodes the whole answer log, sorts it and rebuilds every index
// per refresh — O(|log| log |log|) work to absorb a handful of answers. The
// streaming store keeps the decoded answers permanently in CSR order and
// absorbs a batch with one in-place merge: O(|batch| log |batch|) to sort
// the batch plus a single linear move of the tail, never touching the
// relative order of the clean prefix. Cells that received answers are
// tracked as dirty, so the caller can re-run the E-step on exactly the
// posteriors that changed.
//
// Determinism: the sufficient-statistics groups are always re-accumulated
// in canonical CSR order so the float sums are bitwise batch-split
// invariant — tcrowd-lint (detfold) enforces that no fold here picks up
// map-order, clock or global-rand dependence (//tcrowd:deterministic at
// the end of this comment).
//
// Layout. Ans holds every decoded answer sorted by (cell key, worker,
// label, z) where key = row*cols + col; CellOff is the CSR index: cell key
// k owns Ans[CellOff[k]:CellOff[k+1]]. The sort order guarantees two
// invariants the EM hot loops rely on:
//
//   - a cell's answers are one contiguous run (E-step locality), and
//   - duplicate (row, column, worker) variance triples sit adjacent, so the
//     fused M-step reuses their transcendental work (memoisation).
//
// Sufficient statistics. On top of the per-answer layout the store
// maintains Groups: one accumulator per maximal run of answers sharing
// (cell, worker, label), carrying the run's Count, ΣZ and ΣZ². The M-step
// objective/gradient is a sum of per-answer terms that depend on the answer
// only through these moments, so the hot loops iterate Groups instead of
// re-reading the log — O(groups) per evaluation with group count bounded by
// distinct (cell, worker, label) triples, and the accumulators are updated
// at Append time from exactly the dirty cells. Group stats are always
// re-accumulated from the cell's answers in canonical CSR order, never
// adjusted in place, so they are a pure function of the final log content:
// any sequence of batch splits that yields the same log yields bitwise
// identical Groups.
//
// Concurrency. A Log is not safe for concurrent mutation; the owning model
// serialises Append against the EM loops. Read-only access from parallel
// E/M-step shards is safe because shards never mutate the store.
//
//tcrowd:deterministic
package ingest

import (
	"slices"
)

// Answer is one decoded observation: indices resolved against the model's
// worker table, continuous values standardized to z-scores. The raw value X
// is retained so continuous answers can be re-standardized in place when a
// batch shifts the column's standardisation constants.
type Answer struct {
	// W, I, J are the worker, row and column indices.
	W, I, J int
	// IsCat marks a categorical answer (Label valid) vs a continuous one
	// (Z and X valid).
	IsCat bool
	// Label is the answered label index of a categorical answer.
	Label int
	// Z is the standardized value of a continuous answer.
	Z float64
	// X is the raw (natural-unit) value of a continuous answer.
	X float64
}

// Group is one sufficient-statistics accumulator: a maximal run of stored
// answers sharing (cell, worker, label). For continuous cells Label is the
// decoded answers' (constant) label field and SumZ/SumZ2 carry the moments;
// for categorical cells SumZ/SumZ2 stay zero and Count alone matters.
type Group struct {
	// W, I, J are the worker, row and column indices of every answer in
	// the run.
	W, I, J int32
	// Label is the shared label index (categorical) or the constant label
	// field of the continuous answers.
	Label int32
	// Count is the number of answers in the run.
	Count int32
	// IsCat marks a categorical run.
	IsCat bool
	// SumZ and SumZ2 are Σz and Σz² over the run's standardized values.
	SumZ, SumZ2 float64
}

// Log is the mutable CSR answer store. The zero value is not usable; call
// NewLog.
type Log struct {
	// Ans holds the decoded answers in (cell key, worker, label, z) order.
	// Hot loops index it directly; everyone else should treat it as
	// read-only and mutate through Rebuild/Append.
	Ans []Answer
	// CellOff is the CSR index: cell key k owns Ans[CellOff[k]:CellOff[k+1]].
	CellOff []int32
	// Groups holds the sufficient-statistics runs in the same global order
	// as Ans; GroupOff is its CSR index: cell key k owns
	// Groups[GroupOff[k]:GroupOff[k+1]]. Maintained by Rebuild and Append.
	Groups   []Group
	GroupOff []int32

	rows, cols int
	// dirty flags + insertion-ordered key list of cells touched since the
	// last ClearDirty.
	dirty     []bool
	dirtyKeys []int

	// Scratch for the group splice in Append: ping-pong group buffer,
	// sorted dirty keys, and their freshly counted group sizes.
	spare      []Group
	keyScratch []int
	cntScratch []int32
}

// NewLog returns an empty store for a rows x cols table.
func NewLog(rows, cols int) *Log {
	return &Log{
		rows:     rows,
		cols:     cols,
		CellOff:  make([]int32, rows*cols+1),
		GroupOff: make([]int32, rows*cols+1),
		dirty:    make([]bool, rows*cols),
	}
}

// Rows and Cols return the table dimensions the store indexes.
func (l *Log) Rows() int { return l.rows }

// Cols returns the number of table columns.
func (l *Log) Cols() int { return l.cols }

// Len returns the number of stored answers.
func (l *Log) Len() int { return len(l.Ans) }

// Key returns the cell key of (i, j).
func (l *Log) Key(i, j int) int { return i*l.cols + j }

// CellRange returns the half-open Ans range of cell key k.
func (l *Log) CellRange(key int) (lo, hi int) {
	return int(l.CellOff[key]), int(l.CellOff[key+1])
}

// GroupRange returns the half-open Groups range of cell key k.
func (l *Log) GroupRange(key int) (lo, hi int) {
	return int(l.GroupOff[key]), int(l.GroupOff[key+1])
}

// NumGroups returns the number of sufficient-statistics groups.
func (l *Log) NumGroups() int { return len(l.Groups) }

// less is the canonical CSR ordering. Ties (identical key, worker, label
// and z) are fully interchangeable observations, so an unstable sort is
// fine.
func (l *Log) less(a, b *Answer) bool {
	ka, kb := a.I*l.cols+a.J, b.I*l.cols+b.J
	if ka != kb {
		return ka < kb
	}
	if a.W != b.W {
		return a.W < b.W
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	return a.Z < b.Z
}

func (l *Log) cmp(a, b Answer) int {
	if l.less(&a, &b) {
		return -1
	}
	if l.less(&b, &a) {
		return 1
	}
	return 0
}

// Rebuild bulk-loads the store from an unordered answer set: sort once,
// rebuild the CSR index, clear the dirty set. This is the cold-start path;
// Append is the streaming path.
func (l *Log) Rebuild(ans []Answer) {
	l.Ans = ans
	slices.SortFunc(l.Ans, l.cmp)
	for k := range l.CellOff {
		l.CellOff[k] = 0
	}
	for idx := range l.Ans {
		a := &l.Ans[idx]
		l.CellOff[a.I*l.cols+a.J+1]++
	}
	for key := 0; key < l.rows*l.cols; key++ {
		l.CellOff[key+1] += l.CellOff[key]
	}
	l.rebuildGroups()
	l.ClearDirty()
}

// rebuildGroups recomputes the whole sufficient-statistics index from the
// sorted answer array: one linear pass over Ans emitting a group per
// maximal (cell, worker, label) run, then a counting pass for GroupOff.
func (l *Log) rebuildGroups() {
	l.Groups = l.Groups[:0]
	for k := range l.GroupOff {
		l.GroupOff[k] = 0
	}
	for idx := 0; idx < len(l.Ans); {
		l.Groups = appendCellRunGroup(l.Groups, l.Ans, &idx, len(l.Ans))
	}
	for g := range l.Groups {
		gr := &l.Groups[g]
		l.GroupOff[int(gr.I)*l.cols+int(gr.J)+1]++
	}
	for key := 0; key < l.rows*l.cols; key++ {
		l.GroupOff[key+1] += l.GroupOff[key]
	}
}

// appendCellRunGroup consumes one maximal (cell, worker, label) run
// starting at *idx (bounded by hi and by any change of cell) and appends
// its accumulator. Stats are summed from scratch in canonical order, which
// keeps them a pure function of the stored content.
func appendCellRunGroup(dst []Group, ans []Answer, idx *int, hi int) []Group {
	a := &ans[*idx]
	g := Group{
		W: int32(a.W), I: int32(a.I), J: int32(a.J),
		Label: int32(a.Label), IsCat: a.IsCat,
	}
	for *idx < hi {
		b := &ans[*idx]
		if b.I != a.I || b.J != a.J || b.W != a.W || b.Label != a.Label {
			break
		}
		g.Count++
		g.SumZ += b.Z
		g.SumZ2 += b.Z * b.Z
		*idx++
	}
	return append(dst, g)
}

// countCellGroups returns the number of (worker, label) runs in cell key's
// current answer range.
func (l *Log) countCellGroups(key int) int32 {
	lo, hi := l.CellRange(key)
	var n int32
	for idx := lo; idx < hi; {
		a := &l.Ans[idx]
		for idx < hi && l.Ans[idx].W == a.W && l.Ans[idx].Label == a.Label {
			idx++
		}
		n++
	}
	return n
}

// appendCellGroups re-derives cell key's groups from its (already merged)
// answer range and appends them to dst.
func (l *Log) appendCellGroups(dst []Group, key int) []Group {
	lo, hi := l.CellRange(key)
	for idx := lo; idx < hi; {
		dst = appendCellRunGroup(dst, l.Ans, &idx, hi)
	}
	return dst
}

// Append merges a batch of decoded answers into the CSR layout in place and
// marks their cells dirty. The batch is sorted in place (caller's slice is
// reordered); the store's clean prefix — every run before the first dirty
// cell — is never re-sorted, only shifted: a single backward merge pass
// moves each suffix answer at most once, so the cost is O(|batch| log
// |batch| + moved), not O(|log| log |log|).
func (l *Log) Append(batch []Answer) {
	if len(batch) == 0 {
		return
	}
	slices.SortFunc(batch, l.cmp)

	// Mark dirty cells (batch is sorted, so duplicates are adjacent).
	prevKey := -1
	for idx := range batch {
		key := batch[idx].I*l.cols + batch[idx].J
		if key != prevKey {
			prevKey = key
			l.MarkDirty(key)
		}
	}

	// Backward in-place merge of the sorted prefix and the sorted batch.
	// Growth goes through slices.Grow, so steady-state streaming appends
	// reallocate (and copy the clean prefix) only amortised-O(1) times per
	// answer.
	old := len(l.Ans)
	l.Ans = slices.Grow(l.Ans, len(batch))[:old+len(batch)]
	i, j := old-1, len(batch)-1
	for k := old + len(batch) - 1; j >= 0; k-- {
		if i >= 0 && l.less(&batch[j], &l.Ans[i]) {
			l.Ans[k] = l.Ans[i]
			i--
		} else {
			l.Ans[k] = batch[j]
			j--
		}
	}

	// Shift the CSR offsets: CellOff[k+1] grows by the number of batch
	// answers at cells <= k. One linear pass over cells + batch.
	bi, add := 0, int32(0)
	cells := l.rows * l.cols
	for key := 0; key < cells; key++ {
		for bi < len(batch) && batch[bi].I*l.cols+batch[bi].J == key {
			bi++
			add++
		}
		l.CellOff[key+1] += add
	}

	l.regroupDirty()
}

// RecomputeDirtyGroups re-derives the sufficient statistics of every
// currently dirty cell from its stored answers. Append does this
// automatically; callers that mutate answer values in place (the model's
// re-standardisation path rewrites Z when a batch shifts a column's
// standardisation constants) and cannot immediately follow with an Append
// use this to bring Groups back in sync.
func (l *Log) RecomputeDirtyGroups() { l.regroupDirty() }

// regroupDirty splices fresh groups for every dirty cell into the
// sufficient-statistics index. Dirty cells' runs are re-accumulated from
// scratch in canonical order (bitwise batch-split invariance); clean cells'
// groups move by bulk copy into a ping-pong buffer, so the cost is
// O(|groups| memmove + dirty answers + cells), mirroring the answer merge.
func (l *Log) regroupDirty() {
	if len(l.dirtyKeys) == 0 {
		return
	}
	keys := append(l.keyScratch[:0], l.dirtyKeys...)
	slices.Sort(keys)
	cnt := l.cntScratch[:0]
	for _, key := range keys {
		cnt = append(cnt, l.countCellGroups(key))
	}

	// Build the new group array: alternate bulk copies of clean spans with
	// fresh scans of dirty cells.
	dst := l.spare[:0]
	prev := 0
	for _, key := range keys {
		dst = append(dst, l.Groups[l.GroupOff[prev]:l.GroupOff[key]]...)
		dst = l.appendCellGroups(dst, key)
		prev = key + 1
	}
	dst = append(dst, l.Groups[l.GroupOff[prev]:]...)
	l.spare, l.Groups = l.Groups[:0], dst
	l.keyScratch, l.cntScratch = keys, cnt

	// Rewrite GroupOff from the first dirty cell on: new end = old end plus
	// the accumulated group-count delta of dirty cells at or below the key.
	var shift int32
	si := 0
	oldStart := l.GroupOff[keys[0]]
	for key := keys[0]; key < l.rows*l.cols; key++ {
		oldEnd := l.GroupOff[key+1]
		if si < len(keys) && keys[si] == key {
			shift += cnt[si] - (oldEnd - oldStart)
			si++
		}
		l.GroupOff[key+1] = oldEnd + shift
		oldStart = oldEnd
	}
}

// MarkDirty flags a cell key as needing posterior recomputation.
func (l *Log) MarkDirty(key int) {
	if !l.dirty[key] {
		l.dirty[key] = true
		l.dirtyKeys = append(l.dirtyKeys, key)
	}
}

// DirtyKeys returns the cell keys touched since the last ClearDirty, in
// first-touched order. The slice is owned by the log; callers must not
// retain it across ClearDirty.
func (l *Log) DirtyKeys() []int { return l.dirtyKeys }

// ClearDirty resets the dirty set (answers stay).
func (l *Log) ClearDirty() {
	for _, key := range l.dirtyKeys {
		l.dirty[key] = false
	}
	l.dirtyKeys = l.dirtyKeys[:0]
}
