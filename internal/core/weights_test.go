package core

import (
	"math"
	"testing"

	"tcrowd/internal/simulate"
	"tcrowd/internal/tabular"
)

// TestWorkerWeightsAllOnesBitwise proves that installing all-ones weights
// (explicitly or via the options map) leaves the fit bitwise identical to
// an unweighted run: multiplying by 1.0 is an IEEE identity and the
// all-ones map collapses back to the nil fast path.
func TestWorkerWeightsAllOnesBitwise(t *testing.T) {
	ds, log := equivDataset(3001, 30)
	plain, err := Infer(ds.Table, log, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	w := make(map[tabular.WorkerID]float64, len(ds.Workers))
	for _, wk := range ds.Workers {
		w[wk.ID] = 1
	}
	weighted, err := Infer(ds.Table, log, Options{MaxIter: 10, WorkerWeights: w})
	if err != nil {
		t.Fatal(err)
	}
	if weighted.wgt != nil {
		t.Fatal("all-ones weight map did not collapse to the nil fast path")
	}
	assertModelsAgree(t, plain, weighted, 0) // tol 0: exact equality
	for k := range plain.Phi {
		if plain.Phi[k] != weighted.Phi[k] {
			t.Fatalf("phi[%d] not bitwise equal: %v vs %v", k, plain.Phi[k], weighted.Phi[k])
		}
	}
}

// TestWeightedFusedMatchesReference extends the fused==reference
// equivalence guarantee to weighted fits: with a mix of full, fractional
// and zero weights, the sufficient-statistics engine and the per-answer
// reference M-step still compute the same fit.
func TestWeightedFusedMatchesReference(t *testing.T) {
	ds, log := equivDataset(3002, 40)
	w := make(map[tabular.WorkerID]float64, len(ds.Workers))
	for i, wk := range ds.Workers {
		switch i % 3 {
		case 0:
			w[wk.ID] = 1
		case 1:
			w[wk.ID] = 0.35
		default:
			w[wk.ID] = 0
		}
	}
	fused, err := Infer(ds.Table, log, Options{MaxIter: 15, WorkerWeights: w})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Infer(ds.Table, log, Options{MaxIter: 15, WorkerWeights: w, refMStep: true})
	if err != nil {
		t.Fatal(err)
	}
	assertModelsAgree(t, fused, ref, 1e-9)
}

// TestWeightedParallelMatchesSequential covers the pool-sharded engine
// under weights (reduction order is the only allowed difference).
func TestWeightedParallelMatchesSequential(t *testing.T) {
	ds, log := equivDataset(3003, 40)
	w := map[tabular.WorkerID]float64{ds.Workers[0].ID: 0, ds.Workers[1].ID: 0.5}
	seq, err := Infer(ds.Table, log, Options{MaxIter: 15, WorkerWeights: w})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Infer(ds.Table, log, Options{MaxIter: 15, WorkerWeights: w, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertModelsAgree(t, seq, par, 1e-9)
}

// TestZeroWeightMatchesExclusion proves weight 0 means "this worker's
// answers carry no evidence": a fit with one worker zero-weighted reaches
// the same fixed point as a fit on a log with that worker's answers
// removed. The two runs differ in dimension (the zeroed worker's phi still
// exists, held up by its prior alone) and in the column standardisation
// constants (the zeroed worker's raw values still enter the column
// mean/std, so the N(0,1) prior and eps sit on slightly different
// scales), so they agree at the EM optimum to modest tolerance rather
// than iterate-for-iterate.
func TestZeroWeightMatchesExclusion(t *testing.T) {
	ds, log := equivDataset(3004, 40)
	out := ds.Workers[0].ID

	zeroed, err := Infer(ds.Table, log, Options{
		WorkerWeights: map[tabular.WorkerID]float64{out: 0},
	})
	if err != nil {
		t.Fatal(err)
	}

	filtered := tabular.NewAnswerLog()
	for _, a := range log.All() {
		if a.Worker != out {
			filtered.Add(a)
		}
	}
	excluded, err := Infer(ds.Table, filtered, Options{})
	if err != nil {
		t.Fatal(err)
	}

	ze, ee := zeroed.Estimates(), excluded.Estimates()
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			a, b := ze[i][j], ee[i][j]
			if b.Kind == tabular.None {
				// Cell answered only by the excluded worker: the zeroed fit
				// reports the prior, the filtered fit reports nothing.
				continue
			}
			if a.Kind != b.Kind {
				t.Fatalf("estimate kind diverged at (%d,%d)", i, j)
			}
			if a.Kind == tabular.Label && a.L != b.L {
				t.Fatalf("label diverged at (%d,%d): %d vs %d", i, j, a.L, b.L)
			}
			if a.Kind == tabular.Number && math.Abs(a.X-b.X) > 1e-2*(1+math.Abs(b.X)) {
				t.Fatalf("number diverged at (%d,%d): %v vs %v", i, j, a.X, b.X)
			}
		}
	}
	for k, u := range zeroed.WorkerIDs {
		if u == out {
			continue
		}
		want := excluded.Phi[excluded.workerIdx[u]]
		if math.Abs(math.Log(zeroed.Phi[k])-math.Log(want)) > 1e-2 {
			t.Fatalf("phi(%s) diverged: %v vs %v", u, zeroed.Phi[k], want)
		}
	}
}

// TestSetWorkerWeightsStreaming exercises the online path: weights set on a
// fitted model survive streamed batches (new workers arrive at weight 1)
// and take effect at the next refresh.
func TestSetWorkerWeightsStreaming(t *testing.T) {
	ds, log := equivDataset(3005, 30)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spam := ds.Workers[0].ID
	m.SetWorkerWeights(map[tabular.WorkerID]float64{spam: 0, ds.Workers[1].ID: -3})
	if got := m.WorkerWeight(spam); got != 0 {
		t.Fatalf("WorkerWeight(%s) = %v, want 0", spam, got)
	}
	if got := m.WorkerWeight(ds.Workers[1].ID); got != 0 {
		t.Fatalf("negative weight not clamped to 0: %v", got)
	}
	if got := m.WorkerWeight(ds.Workers[2].ID); got != 1 {
		t.Fatalf("unlisted worker weight = %v, want 1", got)
	}

	// A streamed batch introduces a brand-new worker mid-stream.
	fresh := tabular.WorkerID("fresh-worker")
	var batch []tabular.Answer
	for _, a := range simulate.NewCrowd(ds, 3006).FixedAssignment(1).All()[:10] {
		a.Worker = fresh
		batch = append(batch, a)
	}
	if err := m.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	m.RefreshIncremental(5)
	if got := m.WorkerWeight(fresh); got != 1 {
		t.Fatalf("streamed-in worker weight = %v, want 1", got)
	}
	est := m.Estimates()
	for i := range est {
		for j := range est[i] {
			if est[i][j].Kind == tabular.Number && math.IsNaN(est[i][j].X) {
				t.Fatalf("NaN estimate at (%d,%d) after weighted refresh", i, j)
			}
		}
	}

	// Clearing restores the unweighted fast path.
	m.SetWorkerWeights(nil)
	if m.wgt != nil {
		t.Fatal("SetWorkerWeights(nil) did not clear the weight vector")
	}
}
