package core

import (
	"math"
	"testing"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func tinyFixture(t *testing.T) (*Model, *tabular.Table) {
	t.Helper()
	s := tabular.Schema{
		Key: "id",
		Columns: []tabular.Column{
			{Name: "cat", Type: tabular.Categorical, Labels: []string{"a", "b", "c"}},
			{Name: "num", Type: tabular.Continuous, Min: 0, Max: 100},
		},
	}
	tbl := tabular.NewTable(s, 3)
	log := tabular.NewAnswerLog()
	// Three workers agree on row 0, disagree on row 1; row 2 is unanswered.
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(1)})
	log.Add(tabular.Answer{Worker: "u2", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(1)})
	log.Add(tabular.Answer{Worker: "u3", Cell: tabular.Cell{Row: 0, Col: 0}, Value: tabular.LabelValue(1)})
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 1, Col: 0}, Value: tabular.LabelValue(0)})
	log.Add(tabular.Answer{Worker: "u2", Cell: tabular.Cell{Row: 1, Col: 0}, Value: tabular.LabelValue(2)})
	log.Add(tabular.Answer{Worker: "u1", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(50)})
	log.Add(tabular.Answer{Worker: "u2", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(54)})
	log.Add(tabular.Answer{Worker: "u3", Cell: tabular.Cell{Row: 1, Col: 1}, Value: tabular.NumberValue(20)})
	m, err := Infer(tbl, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, tbl
}

func TestPosteriorAccessors(t *testing.T) {
	m, _ := tinyFixture(t)

	// Unanimous cell: posterior should prefer label 1 strongly.
	post, ok := m.PosteriorCat(tabular.Cell{Row: 0, Col: 0})
	if !ok || len(post) != 3 {
		t.Fatal("PosteriorCat shape")
	}
	if argMax(post) != 1 {
		t.Fatalf("posterior %v should prefer label 1", post)
	}
	sum := post[0] + post[1] + post[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior not normalised: %v", sum)
	}

	// Unanswered categorical cell falls back to uniform.
	post2, ok := m.PosteriorCat(tabular.Cell{Row: 2, Col: 0})
	if !ok || math.Abs(post2[0]-1.0/3) > 1e-12 {
		t.Fatalf("unanswered prior %v", post2)
	}

	// Continuous accessors.
	if _, ok := m.PosteriorCat(tabular.Cell{Row: 0, Col: 1}); ok {
		t.Fatal("PosteriorCat on continuous column")
	}
	mu, v, ok := m.PosteriorCont(tabular.Cell{Row: 0, Col: 1})
	if !ok || v <= 0 || v >= 1 {
		t.Fatalf("posterior var %v should shrink below the prior 1", v)
	}
	_ = mu
	// Unanswered continuous cell -> prior N(0,1).
	mu0, v0, ok := m.PosteriorCont(tabular.Cell{Row: 2, Col: 1})
	if !ok || mu0 != 0 || v0 != 1 {
		t.Fatal("unanswered continuous prior")
	}
	if _, _, ok := m.PosteriorCont(tabular.Cell{Row: 0, Col: 0}); ok {
		t.Fatal("PosteriorCont on categorical column")
	}
}

func TestEntropyShrinksWithAnswers(t *testing.T) {
	m, _ := tinyFixture(t)
	hUnanswered := m.Entropy(tabular.Cell{Row: 2, Col: 0})
	hUnanimous := m.Entropy(tabular.Cell{Row: 0, Col: 0})
	if hUnanimous >= hUnanswered {
		t.Fatalf("3 unanimous answers should reduce entropy: %v vs %v", hUnanimous, hUnanswered)
	}
	hc0 := m.Entropy(tabular.Cell{Row: 2, Col: 1}) // prior N(0,1)
	hc1 := m.Entropy(tabular.Cell{Row: 0, Col: 1}) // two answers
	if hc1 >= hc0 {
		t.Fatalf("answers should reduce differential entropy: %v vs %v", hc1, hc0)
	}
}

func TestWorkerQualityAccessors(t *testing.T) {
	m, _ := tinyFixture(t)
	q := m.WorkerQuality("u1")
	if q <= 0 || q >= 1 {
		t.Fatalf("quality out of range: %v", q)
	}
	// Unknown workers get the median-phi fallback.
	if got := m.PhiFor("stranger"); got != m.MedianPhi() {
		t.Fatal("PhiFor fallback")
	}
	cq := m.CellQuality("u1", tabular.Cell{Row: 0, Col: 0})
	if cq <= 0 || cq >= 1 {
		t.Fatalf("cell quality %v", cq)
	}
	s := m.CellVarianceFor("u1", tabular.Cell{Row: 0, Col: 0})
	if s <= 0 {
		t.Fatal("cell variance")
	}
}

func TestStandardisationRoundTrip(t *testing.T) {
	m, _ := tinyFixture(t)
	x := 42.0
	if got := m.FromZ(1, m.ToZ(1, x)); math.Abs(got-x) > 1e-9 {
		t.Fatalf("round trip %v", got)
	}
}

func TestCatPosteriorWithAnswer(t *testing.T) {
	post := []float64{0.5, 0.3, 0.2}
	upd := CatPosteriorWithAnswer(post, 0, 0.5, 0.05) // reliable confirmation of label 0
	if argMax(upd) != 0 || upd[0] <= post[0] {
		t.Fatalf("confirmation should boost label 0: %v", upd)
	}
	sum := upd[0] + upd[1] + upd[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatal("not normalised")
	}
	// An uninformative worker has q = 1/|L| (accuracy at chance): the
	// posterior must not move. Solve erf(eps/sqrt(2s)) = 1/3 for s.
	x := math.Erfinv(1.0 / 3.0)
	sChance := 0.5 * 0.5 / (2 * x * x)
	upd2 := CatPosteriorWithAnswer(post, 2, 0.5, sChance)
	for z := range post {
		if math.Abs(upd2[z]-post[z]) > 1e-9 {
			t.Fatalf("chance-level answer moved posterior: %v -> %v", post, upd2)
		}
	}
	// Zero-probability labels stay at zero.
	upd3 := CatPosteriorWithAnswer([]float64{0, 0.6, 0.4}, 1, 0.5, 0.1)
	if upd3[0] != 0 {
		t.Fatalf("resurrected dead label: %v", upd3)
	}
}

func TestContVarWithAnswer(t *testing.T) {
	v := ContVarWithAnswer(1, 1)
	if math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("two unit precisions should give var 0.5, got %v", v)
	}
	if got := ContVarWithAnswer(0.5, 1e12); got >= 0.5 {
		t.Fatal("even a terrible answer cannot raise variance")
	}
}

func TestAnswerDistribution(t *testing.T) {
	m, _ := tinyFixture(t)
	dist, ok := m.AnswerDistribution("u1", tabular.Cell{Row: 0, Col: 0})
	if !ok {
		t.Fatal("missing distribution")
	}
	sum := 0.0
	for _, p := range dist {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("answer distribution sums to %v", sum)
	}
	// The most likely answer from a decent worker is the posterior mode.
	if argMax(dist) != 1 {
		t.Fatalf("predictive mode %v", dist)
	}
	if _, ok := m.AnswerDistribution("u1", tabular.Cell{Row: 0, Col: 1}); ok {
		t.Fatal("AnswerDistribution on continuous column")
	}
}

func TestLogQStable(t *testing.T) {
	for _, s := range []float64{1e-8, 1e-4, 0.1, 1, 100, 1e8} {
		lnQ, lnNotQ := logQ(0.5, s)
		if math.IsNaN(lnQ) || math.IsNaN(lnNotQ) {
			t.Fatalf("logQ NaN at s=%v", s)
		}
		if lnQ > 0 || lnNotQ > 1e-12 {
			t.Fatalf("log-probabilities must be <= 0 at s=%v: %v %v", s, lnQ, lnNotQ)
		}
		// q + (1-q) = 1.
		total := math.Exp(lnQ) + math.Exp(lnNotQ)
		if math.Abs(total-1) > 1e-6 {
			t.Fatalf("q mass broken at s=%v: %v", s, total)
		}
	}
}

func TestQualityMonotoneInVariance(t *testing.T) {
	prev := 1.0
	for _, s := range []float64{0.01, 0.1, 1, 10, 100} {
		q := math.Erf(0.5 / math.Sqrt(2*s))
		if q >= prev {
			t.Fatal("quality must fall as variance grows")
		}
		prev = q
	}
	_ = stats.Eps
}
