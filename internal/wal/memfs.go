package wal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fault-injection sentinels surfaced by MemFS.
var (
	// ErrInjected is the error MemFS returns for a write failure armed
	// with FailWrite/ShortWrite.
	ErrInjected = errors.New("wal: injected write fault")
	// ErrCrashed is returned by every mutating operation after Crash: the
	// "process" died; only the durable bytes survive into Recovered().
	ErrCrashed = errors.New("wal: filesystem crashed")
)

// MemFS is an in-memory FS with an explicit durability model, built to
// torture the WAL:
//
//   - Every file tracks durable bytes (synced) separately from pending
//     bytes (written but not yet fsynced).
//   - FailWrite / ShortWrite arm a fault at the Nth subsequent write:
//     the write fails outright, or applies only a prefix before failing —
//     the torn-write and I/O-error cases Append must surface and heal.
//   - Crash simulates a hard kill (power loss / SIGKILL): unsynced bytes
//     are discarded except for a deterministic torn prefix per file, and
//     every later mutation fails with ErrCrashed. Recovered() then hands
//     back the surviving on-disk image as a fresh FS, exactly what a
//     restarted process would find.
//
// It is safe for concurrent use and intended only for tests.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool

	writes    int // Write calls observed, for arming faults
	failAt    int // fail the failAt-th write (1-based; 0 = disarmed)
	shortAt   int // short-write the shortAt-th write
	crashed   bool
	tornBytes int // prefix of pending kept per file on Crash
}

type memFile struct {
	durable []byte
	pending []byte
}

// contents is the live view of a file (what a reader in the same
// still-running process sees).
func (f *memFile) contents() []byte {
	out := make([]byte, 0, len(f.durable)+len(f.pending))
	out = append(out, f.durable...)
	return append(out, f.pending...)
}

// NewMemFS returns an empty in-memory filesystem with a root directory.
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{"/": true, ".": true},
	}
}

// FailWrite arms a full write failure at the n-th Write call from now
// (1 = the very next write). No bytes are applied.
func (m *MemFS) FailWrite(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAt, m.writes = n, 0
}

// ShortWrite arms a torn write at the n-th Write call from now: half the
// buffer is applied, then the write fails.
func (m *MemFS) ShortWrite(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shortAt, m.writes = n, 0
}

// Writes reports the number of Write calls observed since the last
// FailWrite/ShortWrite arming (or since creation).
func (m *MemFS) Writes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Crash hard-kills the filesystem: every file keeps its durable bytes
// plus at most tornBytes of its pending (unsynced) bytes — a torn tail —
// and every subsequent mutation fails with ErrCrashed. Reads keep
// working so the test can inspect the wreckage; use Recovered for the
// restarted-process view.
func (m *MemFS) Crash(tornBytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return
	}
	m.crashed = true
	m.tornBytes = tornBytes
	for _, f := range m.files {
		keep := min(tornBytes, len(f.pending))
		f.durable = append(f.durable, f.pending[:keep]...)
		f.pending = nil
	}
}

// Recovered returns the post-crash durable image as a fresh, writable
// MemFS — what the restarted process mounts. Calling it before Crash
// returns the synced-bytes-only view (i.e. it always answers "what
// survives a power cut right now?").
func (m *MemFS) Recovered() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		out.files[name] = &memFile{durable: append([]byte(nil), f.durable...)}
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

func norm(p string) string { return path.Clean(filepath.ToSlash(p)) }

func (m *MemFS) MkdirAll(p string, _ os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	p = norm(p)
	for p != "/" && p != "." {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = norm(name)
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		if m.crashed {
			return nil, ErrCrashed
		}
		f = &memFile{}
		m.files[name] = f
		for d := path.Dir(name); d != "/" && d != "."; d = path.Dir(d) {
			m.dirs[d] = true
		}
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	if writable && flag&os.O_TRUNC != 0 {
		// Truncation mutates the file, so it obeys the crash seam like any
		// write (segment shipping rewrites mirrored segments with O_TRUNC).
		if m.crashed {
			return nil, ErrCrashed
		}
		f.durable = f.durable[:0]
		f.pending = f.pending[:0]
	}
	return &memHandle{fs: m, name: name, writable: writable}, nil
}

func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = norm(name)
	if !m.dirs[name] {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	seen := map[string]os.DirEntry{}
	collect := func(p string, dir bool) {
		if p == name || !strings.HasPrefix(p, name+"/") {
			return
		}
		rest := strings.TrimPrefix(p, name+"/")
		child, _, nested := strings.Cut(rest, "/")
		if _, ok := seen[child]; !ok {
			seen[child] = memDirEntry{name: child, dir: dir || nested}
		}
	}
	for p := range m.dirs {
		collect(p, true)
	}
	for p := range m.files {
		collect(p, false)
	}
	out := make([]os.DirEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	oldpath, newpath = norm(oldpath), norm(newpath)
	if f, ok := m.files[oldpath]; ok {
		m.files[newpath] = f
		delete(m.files, oldpath)
		return nil
	}
	if !m.dirs[oldpath] {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	// Directory rename: move the subtree (like os.Rename on a directory).
	move := func(set map[string]bool) {
		for p := range set {
			if p == oldpath || strings.HasPrefix(p, oldpath+"/") {
				set[newpath+strings.TrimPrefix(p, oldpath)] = true
				delete(set, p)
			}
		}
	}
	move(m.dirs)
	for p, f := range m.files {
		if strings.HasPrefix(p, oldpath+"/") {
			m.files[newpath+strings.TrimPrefix(p, oldpath)] = f
			delete(m.files, p)
		}
	}
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	name = norm(name)
	if _, ok := m.files[name]; !ok {
		if !m.dirs[name] {
			return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
		}
		delete(m.dirs, name)
		return nil
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) RemoveAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	p = norm(p)
	for name := range m.files {
		if name == p || strings.HasPrefix(name, p+"/") {
			delete(m.files, name)
		}
	}
	for name := range m.dirs {
		if name == p || strings.HasPrefix(name, p+"/") {
			delete(m.dirs, name)
		}
	}
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[norm(name)]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	switch n := int(size); {
	case n <= len(f.durable):
		f.durable = f.durable[:n]
		f.pending = nil
	default:
		f.pending = f.pending[:n-len(f.durable)]
	}
	return nil
}

func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = norm(name)
	if f, ok := m.files[name]; ok {
		return memFileInfo{name: path.Base(name), size: int64(len(f.durable) + len(f.pending))}, nil
	}
	if m.dirs[name] {
		return memFileInfo{name: path.Base(name), dir: true}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// DurableBytes returns the bytes of name that would survive a crash right
// now (synced content only) — the assertion surface for flush tests.
func (m *MemFS) DurableBytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[norm(name)]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.durable...)
}

// memHandle is one open file. Reads see the live combined view; writes
// append to the pending (unsynced) region.
type memHandle struct {
	fs       *MemFS
	name     string
	off      int
	writable bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok || h.closed {
		return 0, fs.ErrClosed
	}
	data := f.contents()
	if h.off >= len(data) {
		return 0, io.EOF
	}
	n := copy(p, data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.writable {
		return 0, fs.ErrClosed
	}
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, fs.ErrClosed
	}
	h.fs.writes++
	switch h.fs.writes {
	case h.fs.failAt:
		return 0, fmt.Errorf("%w (write %d failed)", ErrInjected, h.fs.writes)
	case h.fs.shortAt:
		n := len(p) / 2
		f.pending = append(f.pending, p[:n]...)
		return n, fmt.Errorf("%w (write %d torn at %d/%d bytes)", ErrInjected, h.fs.writes, n, len(p))
	}
	f.pending = append(f.pending, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	f, ok := h.fs.files[h.name]
	if !ok {
		return fs.ErrClosed
	}
	f.durable = append(f.durable, f.pending...)
	f.pending = nil
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

// memDirEntry / memFileInfo implement the listing interfaces.
type memDirEntry struct {
	name string
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, dir: e.dir}, nil
}

type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }
