package tabular

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func logFixture() *AnswerLog {
	l := NewAnswerLog()
	l.Add(Answer{Worker: "u1", Cell: Cell{0, 0}, Value: LabelValue(0)})
	l.Add(Answer{Worker: "u1", Cell: Cell{0, 2}, Value: NumberValue(39)})
	l.Add(Answer{Worker: "u2", Cell: Cell{0, 0}, Value: LabelValue(0)})
	l.Add(Answer{Worker: "u2", Cell: Cell{0, 1}, Value: LabelValue(3)})
	l.Add(Answer{Worker: "u3", Cell: Cell{1, 0}, Value: LabelValue(1)})
	l.Add(Answer{Worker: "u3", Cell: Cell{1, 2}, Value: NumberValue(45)})
	return l
}

func TestAnswerLogIndexing(t *testing.T) {
	l := logFixture()
	if l.Len() != 6 {
		t.Fatal("Len")
	}
	if got := l.ByCell(Cell{0, 0}); len(got) != 2 || got[0].Worker != "u1" || got[1].Worker != "u2" {
		t.Fatalf("ByCell: %+v", got)
	}
	if l.CountByCell(Cell{0, 0}) != 2 || l.CountByCell(Cell{9, 9}) != 0 {
		t.Fatal("CountByCell")
	}
	if got := l.ByWorker("u3"); len(got) != 2 || !got[1].Value.Equal(NumberValue(45)) {
		t.Fatalf("ByWorker: %+v", got)
	}
	if l.CountByWorker("u1") != 2 || l.CountByWorker("nobody") != 0 {
		t.Fatal("CountByWorker")
	}
	if ws := l.Workers(); len(ws) != 3 || ws[0] != "u1" || ws[2] != "u3" {
		t.Fatalf("Workers: %v", ws)
	}
	if l.NumWorkers() != 3 {
		t.Fatal("NumWorkers")
	}
	if !l.HasAnswered("u1", Cell{0, 2}) || l.HasAnswered("u1", Cell{1, 0}) {
		t.Fatal("HasAnswered")
	}
	if a, ok := l.WorkerAnswerIn("u2", Cell{0, 1}); !ok || !a.Value.Equal(LabelValue(3)) {
		t.Fatal("WorkerAnswerIn")
	}
	if _, ok := l.WorkerAnswerIn("u2", Cell{5, 5}); ok {
		t.Fatal("phantom answer")
	}
	if ra := l.RowAnswersByWorker("u1", 0); len(ra) != 2 {
		t.Fatalf("RowAnswersByWorker: %+v", ra)
	}
	if ra := l.RowAnswersByWorker("u1", 1); len(ra) != 0 {
		t.Fatal("row filter leaked")
	}
	if got := l.AvgAnswersPerCell(); got != 6.0/5.0 {
		t.Fatalf("AvgAnswersPerCell=%v", got)
	}
	if (NewAnswerLog()).AvgAnswersPerCell() != 0 {
		t.Fatal("empty avg")
	}
	if l.At(4).Worker != "u3" {
		t.Fatal("At")
	}
	cells := l.CellsAnswered()
	if len(cells) != 5 || cells[0] != (Cell{0, 0}) || cells[4] != (Cell{1, 2}) {
		t.Fatalf("CellsAnswered: %v", cells)
	}
	sorted := l.SortedWorkers()
	if len(sorted) != 3 || sorted[0] != "u1" {
		t.Fatal("SortedWorkers")
	}
}

func TestAnswerLogClone(t *testing.T) {
	l := logFixture()
	c := l.Clone()
	c.Add(Answer{Worker: "u9", Cell: Cell{2, 2}, Value: NumberValue(1)})
	if l.Len() != 6 || c.Len() != 7 {
		t.Fatal("clone not independent")
	}
	if l.NumWorkers() != 3 || c.NumWorkers() != 4 {
		t.Fatal("clone workers not independent")
	}
}

func TestAnswerLogValidate(t *testing.T) {
	tbl := NewTable(testSchema(), 3)
	l := logFixture()
	if err := l.Validate(tbl); err != nil {
		t.Fatal(err)
	}
	bad := NewAnswerLog()
	bad.Add(Answer{Worker: "u1", Cell: Cell{99, 0}, Value: LabelValue(0)})
	if err := bad.Validate(tbl); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	bad2 := NewAnswerLog()
	bad2.Add(Answer{Worker: "", Cell: Cell{0, 0}, Value: LabelValue(0)})
	if err := bad2.Validate(tbl); err == nil {
		t.Fatal("empty worker accepted")
	}
	bad3 := NewAnswerLog()
	bad3.Add(Answer{Worker: "u", Cell: Cell{0, 0}, Value: NumberValue(3)})
	if err := bad3.Validate(tbl); err == nil {
		t.Fatal("mistyped value accepted")
	}
}

func TestJSONSchemaRoundTrip(t *testing.T) {
	s := testSchema()
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Schema
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back.Key != s.Key || len(back.Columns) != len(s.Columns) {
		t.Fatal("schema round trip lost structure")
	}
	for i := range s.Columns {
		a, bcol := s.Columns[i], back.Columns[i]
		if a.Name != bcol.Name || a.Type != bcol.Type || len(a.Labels) != len(bcol.Labels) || a.Min != bcol.Min || a.Max != bcol.Max {
			t.Fatalf("column %d mismatch: %+v vs %+v", i, a, bcol)
		}
	}
	var bad Schema
	if err := bad.UnmarshalJSON([]byte(`{"key":"k","columns":[{"name":"a","type":"weird"}]}`)); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestAnswersJSONRoundTrip(t *testing.T) {
	s := testSchema()
	l := logFixture()
	var buf bytes.Buffer
	if err := EncodeAnswers(&buf, s, l); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAnswers(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("lost answers: %d vs %d", back.Len(), l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		a, b := l.At(i), back.At(i)
		if a.Worker != b.Worker || a.Cell != b.Cell || !a.Value.Equal(b.Value) {
			t.Fatalf("answer %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestAnswersJSONErrors(t *testing.T) {
	s := testSchema()
	if _, err := DecodeAnswers(strings.NewReader(`[{"worker":"u","row":0,"column":"zzz","label":"x"}]`), s); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := DecodeAnswers(strings.NewReader(`[{"worker":"u","row":0,"column":"Name","label":"NotALabel"}]`), s); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := DecodeAnswers(strings.NewReader(`[{"worker":"u","row":0,"column":"Name"}]`), s); err == nil {
		t.Fatal("valueless answer accepted")
	}
	if _, err := DecodeAnswers(strings.NewReader(`not json`), s); err == nil {
		t.Fatal("garbage accepted")
	}
	// Encoding an empty value must fail.
	l := NewAnswerLog()
	l.Add(Answer{Worker: "u", Cell: Cell{0, 0}})
	var buf bytes.Buffer
	if err := EncodeAnswers(&buf, s, l); err == nil {
		t.Fatal("encoded a None value")
	}
}

func TestAnswersCSVRoundTrip(t *testing.T) {
	s := testSchema()
	l := logFixture()
	var buf bytes.Buffer
	if err := WriteAnswersCSV(&buf, s, l); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "worker,row,column,value\n") {
		t.Fatal("missing header")
	}
	back, err := ReadAnswersCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatal("csv round trip lost answers")
	}
	for i := 0; i < l.Len(); i++ {
		a, b := l.At(i), back.At(i)
		if a.Worker != b.Worker || a.Cell != b.Cell || !a.Value.Equal(b.Value) {
			t.Fatalf("answer %d mismatch", i)
		}
	}
	// Errors.
	if _, err := ReadAnswersCSV(strings.NewReader("worker,row,column,value\nu,zero,Name,Jet Li\n"), s); err == nil {
		t.Fatal("bad row index accepted")
	}
	if _, err := ReadAnswersCSV(strings.NewReader("u,0,Name,Nope\n"), s); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := ReadAnswersCSV(strings.NewReader("u,0,Age,abc\n"), s); err == nil {
		t.Fatal("bad number accepted")
	}
	if got, err := ReadAnswersCSV(strings.NewReader(""), s); err != nil || got.Len() != 0 {
		t.Fatal("empty csv should give empty log")
	}
}

func TestQuickAnswersJSONRoundTrip(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8) bool {
		l := NewAnswerLog()
		for k := 0; k < int(n%40); k++ {
			j := rng.Intn(4)
			var v Value
			if s.Columns[j].Type == Categorical {
				v = LabelValue(rng.Intn(len(s.Columns[j].Labels)))
			} else {
				v = NumberValue(float64(rng.Intn(1000)) / 7)
			}
			l.Add(Answer{
				Worker: WorkerID(string(rune('a' + rng.Intn(5)))),
				Cell:   Cell{Row: rng.Intn(6), Col: j},
				Value:  v,
			})
		}
		var buf bytes.Buffer
		if err := EncodeAnswers(&buf, s, l); err != nil {
			return false
		}
		back, err := DecodeAnswers(&buf, s)
		if err != nil || back.Len() != l.Len() {
			return false
		}
		for i := 0; i < l.Len(); i++ {
			a, b := l.At(i), back.At(i)
			if a.Worker != b.Worker || a.Cell != b.Cell || !a.Value.Equal(b.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
