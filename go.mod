module tcrowd

go 1.23
