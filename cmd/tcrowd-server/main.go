// Command tcrowd-server runs the AMT-like crowdsourcing platform over HTTP
// (the system architecture of the paper's Fig. 1).
//
// Usage:
//
//	tcrowd-server -addr :8080
//	tcrowd-server -addr :8080 -state platform.json   # load + persist state
//
// Endpoints:
//
//	POST /projects                  register a schema
//	GET  /projects/{id}/tasks       dynamic task assignment (external-HIT)
//	POST /projects/{id}/answers     submit a worker answer
//	GET  /projects/{id}/estimates   run truth inference
//	GET  /projects/{id}/stats       collection progress
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"tcrowd/internal/platform"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		state = flag.String("state", "", "optional JSON state file (loaded at start, saved on SIGINT/SIGTERM)")
		seed  = flag.Int64("seed", 1, "assignment tie-breaking seed")
	)
	flag.Parse()

	p := platform.New(*seed)
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			loaded, err := platform.Load(f, *seed)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("loading %s: %w", *state, err))
			}
			p = loaded
			fmt.Printf("loaded state from %s (%d projects)\n", *state, len(p.ProjectIDs()))
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: platform.NewServer(p)}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		if *state != "" {
			f, err := os.Create(*state)
			if err == nil {
				err = p.Save(f)
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcrowd-server: saving state: %v\n", err)
			} else {
				fmt.Printf("state saved to %s\n", *state)
			}
		}
		srv.Close()
	}()

	fmt.Printf("tcrowd-server listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcrowd-server: %v\n", err)
	os.Exit(1)
}
