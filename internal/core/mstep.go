package core

import (
	"math"

	"tcrowd/internal/optimize"
	"tcrowd/internal/pool"
	"tcrowd/internal/stats"
)

// mStep maximises Q(alpha, beta, phi) (Eq. 5) by gradient ascent over the
// log-parameters, holding the posteriors fixed. In log space the chain rule
// gives the same per-answer contribution s * dQ_a/ds to d/dlog(alpha_i),
// d/dlog(beta_j) and d/dlog(phi_u), so one pass over the answers yields the
// full gradient — the M-step is O(|A|) per gradient evaluation as analysed
// at the end of Sec. 4.3.
//
// The production path is fused: optimize.MinimizeFused evaluates the
// objective and the gradient in a single pass per line-search trial
// (qFusedRange), sharing the erf/log work of the quality model between the
// two, with all buffers drawn from the model scratch. Since PR 7 the fused
// loops iterate the ingest store's sufficient-statistics Groups instead of
// the raw answers: every answer in a (cell, worker, label) run shares its
// posterior term and its variance triple, so the run collapses to a single
// evaluation driven by (Count, ΣZ, ΣZ²) — the objective/gradient never
// re-reads the answer log. The unfused reference path (mStepReference)
// still performs separate per-answer value and gradient passes over the
// full log exactly as the paper describes; the equivalence tests pin the
// sufficient-stats path against it.
func (m *Model) mStep() {
	if m.Opts.refMStep {
		m.mStepReference()
		return
	}
	pv := optimize.DefaultPositiveVec()
	n, mm, u := len(m.Alpha), len(m.Beta), len(m.Phi)
	fixed := m.Opts.FixDifficulty
	dim := u
	if !fixed {
		dim += n + mm
	}

	scr := &m.scr
	m.ensureMStepScratch(dim)
	m.prepMStepConsts()
	theta := scr.theta[:dim]
	if fixed {
		pv.ToLog(m.Phi, theta)
	} else {
		pv.ToLog(m.Alpha, theta[:n])
		pv.ToLog(m.Beta, theta[n:n+mm])
		pv.ToLog(m.Phi, theta[n+mm:])
	}

	if scr.fg == nil {
		// One closure pair for the model's lifetime: per-call state lives
		// in the scratch, not the capture.
		scr.fg = m.negQFused
		scr.fv = m.negQValueFast
	}
	res := optimize.MinimizeFused(scr.fg, scr.fv, theta, optimize.Options{
		MaxIter:      m.Opts.MStepIter,
		GradTol:      m.gradTol(),
		FuncTol:      m.funcTol(),
		InitStep:     0.5,
		AdaptiveStep: true,
		Work:         &scr.work,
	})
	m.splitTheta(res.X, pv)
	copy(m.Phi, scr.phi)
	if !fixed {
		copy(m.Alpha, scr.alpha)
		copy(m.Beta, scr.beta)
	}
}

// gradTol resolves the M-step gradient-norm stopping tolerance.
func (m *Model) gradTol() float64 {
	if m.Opts.MStepGradTol > 0 {
		return m.Opts.MStepGradTol
	}
	return 1e-7
}

// funcTol resolves the M-step objective-improvement stopping tolerance: a
// sub-default MStepGradTol tightens it in lockstep (an ultra-precise
// gradient tolerance is pointless while the coarser objective cutoff still
// fires first), but a loosened gradient tolerance never loosens it.
func (m *Model) funcTol() float64 {
	if gt := m.Opts.MStepGradTol; gt > 0 && gt < 1e-10 {
		return gt
	}
	return 0 // optimizer default (1e-10)
}

// ensureMStepScratch sizes the M-step buffers (no-op once warm; grown with
// headroom so streaming ingestion doesn't reallocate every batch).
func (m *Model) ensureMStepScratch(dim int) {
	scr := &m.scr
	if cap(scr.theta) < dim {
		scr.theta = make([]float64, dim+dim/4+16)
	}
	if len(scr.alpha) != len(m.Alpha) {
		scr.alpha = make([]float64, len(m.Alpha))
		scr.ga = make([]float64, len(m.Alpha))
	}
	if len(scr.beta) != len(m.Beta) {
		scr.beta = make([]float64, len(m.Beta))
		scr.gb = make([]float64, len(m.Beta))
	}
	if len(scr.phi) != len(m.Phi) {
		scr.phi = make([]float64, len(m.Phi))
		scr.gp = make([]float64, len(m.Phi))
	}
	if ng := len(m.ilog.Groups); cap(scr.p) < ng {
		scr.p = make([]float64, ng+ng/4+64)
		scr.dv = make([]float64, ng+ng/4+64)
		scr.cnt = make([]float64, ng+ng/4+64)
	}
}

// prepMStepConsts precomputes the per-group quantities that stay constant
// across every objective/gradient evaluation of one M-step (the posteriors
// are frozen): the run's answer count, the posterior mass the run puts on
// its answered label (Count * CatPost), and the run's total squared
// residual plus posterior variance ΣZ² - 2μΣZ + Count(μ²+v) for continuous
// runs. This hoists the posterior double-indexing and all per-answer
// arithmetic out of the line-search loop — each evaluation is O(groups).
func (m *Model) prepMStepConsts() {
	scr := &m.scr
	ng := len(m.ilog.Groups)
	scr.p, scr.dv, scr.cnt = scr.p[:ng], scr.dv[:ng], scr.cnt[:ng]
	for idx := range m.ilog.Groups {
		g := &m.ilog.Groups[idx]
		cnt := float64(g.Count)
		// A group's objective and gradient terms are all linear in these
		// three constants, so scaling them by the worker's reputation
		// weight weights the entire fused M-step without touching the
		// hot loops (w=1 multiplies are exact identities).
		w := m.weightOf(int(g.W))
		scr.cnt[idx] = w * cnt
		if g.IsCat {
			scr.p[idx] = w * cnt * m.CatPost[g.I][g.J][g.Label]
		} else {
			mu, v := m.ContMu[g.I][g.J], m.ContVar[g.I][g.J]
			// Mathematically Σ(z-μ)² + Count·v ≥ 0; the moment form can
			// dip below zero by cancellation when residuals are tiny.
			scr.dv[idx] = w * math.Max(0, g.SumZ2-2*mu*g.SumZ+cnt*(mu*mu+v))
		}
	}
}

// splitTheta unpacks a theta vector into the scratch (alpha, beta, phi)
// views.
func (m *Model) splitTheta(theta []float64, pv optimize.PositiveVec) {
	scr := &m.scr
	if m.Opts.FixDifficulty {
		copy(scr.alpha, m.Alpha)
		copy(scr.beta, m.Beta)
		pv.FromLog(theta, scr.phi)
		return
	}
	n, mm := len(m.Alpha), len(m.Beta)
	pv.FromLog(theta[:n], scr.alpha)
	pv.FromLog(theta[n:n+mm], scr.beta)
	pv.FromLog(theta[n+mm:], scr.phi)
}

// negQFused is the fused optimize.FuncGrad of the negated MAP objective:
// one pass computes -Q and writes -dQ/dtheta into grad.
func (m *Model) negQFused(theta, grad []float64) float64 {
	pv := optimize.DefaultPositiveVec()
	m.splitTheta(theta, pv)
	scr := &m.scr
	var ga, gb, gp []float64
	if m.Opts.FixDifficulty {
		// alpha/beta gradients accumulate into scratch and are discarded.
		ga, gb, gp = scr.ga, scr.gb, grad
		zero(ga)
		zero(gb)
		zero(gp)
	} else {
		n, mm := len(m.Alpha), len(m.Beta)
		ga, gb, gp = grad[:n], grad[n:n+mm], grad[n+mm:]
		zero(grad)
	}
	val := m.qFused(scr.alpha, scr.beta, scr.phi, ga, gb, gp)
	for i := range grad {
		grad[i] = -grad[i]
	}
	return -val
}

// negQValueFast is the value-only companion of negQFused, used for
// backtracking retrials where the gradient would be discarded. It computes
// bit-identically the same objective as negQFused (same expressions, same
// accumulation order) from the same precomputed per-answer constants.
func (m *Model) negQValueFast(theta []float64) float64 {
	pv := optimize.DefaultPositiveVec()
	m.splitTheta(theta, pv)
	scr := &m.scr
	return -m.qValueFast(scr.alpha, scr.beta, scr.phi)
}

// qValueFast evaluates the MAP objective without gradients, with the same
// memoisation and per-group constants as the fused pass.
func (m *Model) qValueFast(alpha, beta, phi []float64) float64 {
	if w := m.effectiveParallelism(); w > 1 {
		m.ensureShards(w)
		scr := &m.scr
		ng := len(m.ilog.Groups)
		pool.Run(w, func(shard int) {
			lo, hi := pool.ChunkBounds(ng, w, shard)
			scr.shardVal[shard] = m.qValueFastRange(alpha, beta, phi, lo, hi)
		})
		val := 0.0
		for s := 0; s < w; s++ {
			val += scr.shardVal[s]
		}
		return m.paramLogPrior(alpha, beta, phi) + val
	}
	return m.paramLogPrior(alpha, beta, phi) + m.qValueFastRange(alpha, beta, phi, 0, len(m.ilog.Groups))
}

// qValueFastRange mirrors qFusedRange's value accumulation exactly, minus
// the gradient work.
//
//tcrowd:noalloc
func (m *Model) qValueFastRange(alpha, beta, phi []float64, lo, hi int) float64 {
	scr := &m.scr
	eps := m.Opts.Eps
	q := 0.0
	var prevI, prevJ, prevW int32 = -1, -1, -1
	var twoS, lnQ, lnNotQ, ln2pis float64
	for idx := lo; idx < hi; idx++ {
		g := &m.ilog.Groups[idx]
		if g.I != prevI || g.J != prevJ || g.W != prevW {
			prevI, prevJ, prevW = g.I, g.J, g.W
			s := stats.Clamp(alpha[g.I]*beta[g.J]*phi[g.W], minS, maxS)
			if g.IsCat {
				lnQ, lnNotQ = logQ(eps, s)
			} else {
				twoS = 2 * s
				ln2pis = math.Log(2 * math.Pi * s)
			}
		}
		if g.IsCat {
			sumP := scr.p[idx]
			q += sumP*lnQ + (scr.cnt[idx]-sumP)*(lnNotQ-m.lnL1[g.J])
		} else {
			q += -0.5*scr.cnt[idx]*ln2pis - scr.dv[idx]/twoS
		}
	}
	return q
}

// qFused evaluates the MAP objective (Eq. 5 plus parameter log-priors) AND
// accumulates its log-space gradient into (ga, gb, gp) in one pass over
// the sufficient-statistics groups.
func (m *Model) qFused(alpha, beta, phi []float64, ga, gb, gp []float64) float64 {
	if w := m.effectiveParallelism(); w > 1 {
		return m.qFusedParallel(alpha, beta, phi, ga, gb, gp, w)
	}
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	val := m.qFusedRange(alpha, beta, phi, 0, len(m.ilog.Groups), ga, gb, gp)
	return m.paramLogPrior(alpha, beta, phi) + val
}

// qFusedParallel shards qFusedRange over group ranges on the worker pool;
// per-shard partial values and gradients reduce in shard order (results
// deterministic for a fixed worker count).
func (m *Model) qFusedParallel(alpha, beta, phi []float64, ga, gb, gp []float64, workers int) float64 {
	m.ensureShards(workers)
	scr := &m.scr
	ng := len(m.ilog.Groups)
	pool.Run(workers, func(shard int) {
		lo, hi := pool.ChunkBounds(ng, workers, shard)
		sga, sgb, sgp := scr.shardGA[shard], scr.shardGB[shard], scr.shardGP[shard]
		zero(sga)
		zero(sgb)
		zero(sgp)
		scr.shardVal[shard] = m.qFusedRange(alpha, beta, phi, lo, hi, sga, sgb, sgp)
	})
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	val := 0.0
	for s := 0; s < workers; s++ {
		val += scr.shardVal[s]
		for i := range ga {
			ga[i] += scr.shardGA[s][i]
		}
		for j := range gb {
			gb[j] += scr.shardGB[s][j]
		}
		for k := range gp {
			gp[k] += scr.shardGP[s][k]
		}
	}
	return m.paramLogPrior(alpha, beta, phi) + val
}

// catTerms computes every quality-model transcendental a categorical
// answer needs, sharing the erf/erfc evaluations between the objective and
// the gradient: (ln q, ln(1-q)) for the value term and the gradient
// ratios D/q, D/(1-q) with D = x e^{-x^2}/sqrt(pi), so the per-answer
// gradient is g = (1-p) D/(1-q) - p D/q. In the common branch (x < 20)
// the ratios are computed directly from erf/erfc — one exp, no logs
// beyond the value's own; the deep tail falls back to log space where
// erfc would underflow.
func catTerms(eps, s float64) (lnQ, lnNotQ, dOverQ, dOverNotQ float64) {
	x := eps / math.Sqrt(2*s)
	if x < 20 {
		e := math.Erf(x)
		ec := math.Erfc(x)
		if e < 0.5 {
			lnQ, lnNotQ = math.Log(e), math.Log1p(-e)
		} else {
			lnQ, lnNotQ = math.Log1p(-ec), math.Log(ec)
		}
		d := x * math.Exp(-x*x) / math.SqrtPi
		return lnQ, lnNotQ, d / e, d / ec
	}
	lnQ, lnNotQ = stats.LogErf(x), stats.LogErfc(x)
	lnD := math.Log(x/math.SqrtPi) - x*x
	return lnQ, lnNotQ, math.Exp(lnD - lnQ), math.Exp(lnD - lnNotQ)
}

// qFusedRange is the fused hot loop: for sufficient-statistics groups
// [lo, hi) it returns the data term of Q and accumulates the per-group
// gradient contribution g = Σ_a s * dQ_a/ds into (ga, gb, gp) — see
// qValueRange / qGradLogRange for the per-answer derivations. A group's
// answers share their posterior term and variance triple, so the whole run
// contributes sumP*lnq + (cnt-sumP)*(ln(1-q)-ln(L-1)) with sumP = cnt*p
// (categorical), or -cnt*ln(2πs)/2 - Σdv/(2s) with Σdv precomputed from
// (ΣZ, ΣZ²) (continuous). The expensive transcendentals are computed once
// per variance triple and shared between value and gradient; consecutive
// groups with the same (row, column, worker) triple (adjacent label runs)
// reuse them outright.
//
//tcrowd:noalloc
func (m *Model) qFusedRange(alpha, beta, phi []float64, lo, hi int, ga, gb, gp []float64) float64 {
	scr := &m.scr
	eps := m.Opts.Eps
	q := 0.0
	var prevI, prevJ, prevW int32 = -1, -1, -1
	var twoS, lnQ, lnNotQ, dOverQ, dOverNotQ, ln2pis float64
	var clamped bool
	for idx := lo; idx < hi; idx++ {
		gr := &m.ilog.Groups[idx]
		if gr.I != prevI || gr.J != prevJ || gr.W != prevW {
			prevI, prevJ, prevW = gr.I, gr.J, gr.W
			raw := alpha[gr.I] * beta[gr.J] * phi[gr.W]
			clamped = raw < minS || raw > maxS
			s := stats.Clamp(raw, minS, maxS)
			if gr.IsCat {
				lnQ, lnNotQ, dOverQ, dOverNotQ = catTerms(eps, s)
			} else {
				twoS = 2 * s
				ln2pis = math.Log(2 * math.Pi * s)
			}
		}
		var g float64
		if gr.IsCat {
			sumP := scr.p[idx]
			rest := scr.cnt[idx] - sumP
			q += sumP*lnQ + rest*(lnNotQ-m.lnL1[gr.J])
			g = rest*dOverNotQ - sumP*dOverQ
		} else {
			dv := scr.dv[idx]
			q += -0.5*scr.cnt[idx]*ln2pis - dv/twoS
			g = -0.5*scr.cnt[idx] + dv/twoS
		}
		if clamped {
			// At the variance clamp the objective is flat; do not push
			// parameters further out.
			g = 0
		}
		ga[gr.I] += g
		gb[gr.J] += g
		gp[gr.W] += g
	}
	return q
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// mStepReference is the unfused M-step exactly as in the paper's
// description: gradient descent with separate objective and gradient
// passes (qValue / qGradLog). Kept as the ground truth the fused engine is
// verified against.
func (m *Model) mStepReference() {
	pv := optimize.DefaultPositiveVec()
	n, mm, u := len(m.Alpha), len(m.Beta), len(m.Phi)

	fixed := m.Opts.FixDifficulty
	dim := u
	if !fixed {
		dim += n + mm
	}
	theta0 := make([]float64, dim)
	if fixed {
		pv.ToLog(m.Phi, theta0)
	} else {
		pv.ToLog(m.Alpha, theta0[:n])
		pv.ToLog(m.Beta, theta0[n:n+mm])
		pv.ToLog(m.Phi, theta0[n+mm:])
	}

	// split maps a theta vector to (alpha, beta, phi) views without copies.
	alpha := make([]float64, n)
	beta := make([]float64, mm)
	phi := make([]float64, u)
	split := func(theta []float64) {
		if fixed {
			copy(alpha, m.Alpha)
			copy(beta, m.Beta)
			pv.FromLog(theta, phi)
			return
		}
		pv.FromLog(theta[:n], alpha)
		pv.FromLog(theta[n:n+mm], beta)
		pv.FromLog(theta[n+mm:], phi)
	}

	negQ := func(theta []float64) float64 {
		split(theta)
		return -m.qValue(alpha, beta, phi)
	}
	negGrad := func(theta, grad []float64) {
		split(theta)
		ga, gb, gp := m.qGradLog(alpha, beta, phi)
		k := 0
		if !fixed {
			for i := 0; i < n; i++ {
				grad[k] = -ga[i]
				k++
			}
			for j := 0; j < mm; j++ {
				grad[k] = -gb[j]
				k++
			}
		}
		for w := 0; w < u; w++ {
			grad[k] = -gp[w]
			k++
		}
	}

	res := optimize.Minimize(negQ, negGrad, theta0, optimize.Options{
		MaxIter:      m.Opts.MStepIter,
		GradTol:      m.gradTol(),
		FuncTol:      m.funcTol(),
		InitStep:     0.5,
		AdaptiveStep: !m.Opts.refFixedStep,
	})
	split(res.X)
	copy(m.Phi, phi)
	if !fixed {
		copy(m.Alpha, alpha)
		copy(m.Beta, beta)
	}
}

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 1
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// paramLogPrior returns the log-density of the parameter priors: a weak
// inverse-gamma on each phi_u and N(0, sigma^2) shrinkage on ln(alpha_i),
// ln(beta_j). Constant offsets are dropped.
func (m *Model) paramLogPrior(alpha, beta, phi []float64) float64 {
	o := m.Opts
	lp := 0.0
	for _, p := range phi {
		lp += -(o.PhiPriorA+1)*math.Log(p) - o.PhiPriorB/p
	}
	s2 := o.DiffPriorSigma * o.DiffPriorSigma
	if !o.FixDifficulty {
		for _, a := range alpha {
			la := math.Log(a)
			lp -= la * la / (2 * s2)
		}
		for _, b := range beta {
			lb := math.Log(b)
			lp -= lb * lb / (2 * s2)
		}
	}
	return lp
}

// qValue evaluates the MAP objective: Q (Eq. 5) plus the parameter
// log-priors, posteriors fixed. Truth-prior terms are constant w.r.t. the
// parameters and omitted. (Reference path; the production M-step uses
// qFused.)
func (m *Model) qValue(alpha, beta, phi []float64) float64 {
	if w := m.effectiveParallelism(); w > 1 {
		return m.qValueParallel(alpha, beta, phi, w)
	}
	return m.paramLogPrior(alpha, beta, phi) + m.qValueRange(alpha, beta, phi, 0, len(m.ilog.Ans))
}

// qValueRange evaluates the data term of Q over the answer range [lo, hi).
func (m *Model) qValueRange(alpha, beta, phi []float64, lo, hi int) float64 {
	q := 0.0
	for idx := lo; idx < hi; idx++ {
		a := &m.ilog.Ans[idx]
		s := stats.Clamp(alpha[a.I]*beta[a.J]*phi[a.W], minS, maxS)
		w := m.weightOf(a.W)
		if a.IsCat {
			post := m.CatPost[a.I][a.J]
			l := len(post)
			lnQ, lnNotQ := logQ(m.Opts.Eps, s)
			p := post[a.Label]
			q += w * (p*lnQ + (1-p)*(lnNotQ-math.Log(float64(l-1))))
		} else {
			mu, v := m.ContMu[a.I][a.J], m.ContVar[a.I][a.J]
			d := a.Z - mu
			q += w * (-0.5*math.Log(2*math.Pi*s) - (d*d+v)/(2*s))
		}
	}
	return q
}

// qGradLog returns dQ/dlog(alpha), dQ/dlog(beta), dQ/dlog(phi). Each answer
// contributes the same scalar g = s * dQ_a/ds to all three of its
// coordinates. (Reference path; the production M-step uses qFused.)
//
// Continuous (from Eq. 5): s*d/ds[-ln(2 pi s)/2 - (d^2+v)/(2s)]
// = -1/2 + (d^2+v)/(2s).
//
// Categorical: with x = eps/sqrt(2 s) and g(s) = erf(x),
// dg/ds = -(x/(sqrt(pi))) e^{-x^2} / s, so
// s*dQ_a/ds = (x e^{-x^2}/sqrt(pi)) * [(1-p)/(1-g) - p/g], with the deep
// q -> 1 tail evaluated in log space so it stays finite (see catTerms).
func (m *Model) qGradLog(alpha, beta, phi []float64) (ga, gb, gp []float64) {
	if w := m.effectiveParallelism(); w > 1 {
		return m.qGradLogParallel(alpha, beta, phi, w)
	}
	ga = make([]float64, len(alpha))
	gb = make([]float64, len(beta))
	gp = make([]float64, len(phi))
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	m.qGradLogRange(alpha, beta, phi, 0, len(m.ilog.Ans), ga, gb, gp)
	return ga, gb, gp
}

// priorGradLog accumulates the parameter-prior gradients in log space.
func (m *Model) priorGradLog(alpha, beta, phi, ga, gb, gp []float64) {
	o := m.Opts
	for k, p := range phi {
		gp[k] += -(o.PhiPriorA + 1) + o.PhiPriorB/p
	}
	if !o.FixDifficulty {
		s2 := o.DiffPriorSigma * o.DiffPriorSigma
		for i, a := range alpha {
			ga[i] -= math.Log(a) / s2
		}
		for j, b := range beta {
			gb[j] -= math.Log(b) / s2
		}
	}
}

// qGradLogRange accumulates the data-term gradients for answers [lo, hi).
func (m *Model) qGradLogRange(alpha, beta, phi []float64, lo, hi int, ga, gb, gp []float64) {
	for idx := lo; idx < hi; idx++ {
		a := &m.ilog.Ans[idx]
		s := alpha[a.I] * beta[a.J] * phi[a.W]
		clamped := s < minS || s > maxS
		s = stats.Clamp(s, minS, maxS)
		var g float64
		if a.IsCat {
			p := m.CatPost[a.I][a.J][a.Label]
			_, _, dOverQ, dOverNotQ := catTerms(m.Opts.Eps, s)
			g = (1-p)*dOverNotQ - p*dOverQ
		} else {
			mu, v := m.ContMu[a.I][a.J], m.ContVar[a.I][a.J]
			d := a.Z - mu
			g = -0.5 + (d*d+v)/(2*s)
		}
		g *= m.weightOf(a.W)
		if clamped {
			// At the variance clamp the objective is flat; do not push
			// parameters further out.
			g = 0
		}
		ga[a.I] += g
		gb[a.J] += g
		gp[a.W] += g
	}
}
