package experiments

import (
	"fmt"
	"io"
	"time"

	"tcrowd/internal/assign"
	"tcrowd/internal/baselines"
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
)

// AblationResult is one named design-choice comparison.
type AblationResult struct {
	Name     string
	Variant  string
	Report   metrics.Report
	Seconds  float64
	Comments string
}

// Ablations runs the design-choice comparisons the implementation calls out:
// unified vs per-datatype inference, cell difficulty on/off, structure-
// aware vs inherent assignment, M-step budget, and batch top-K size.
func Ablations(cfg Config) ([]AblationResult, error) {
	c := cfg.withDefaults()
	var out []AblationResult

	// 1. Unified quality vs per-datatype models (Celebrity).
	ds, log, err := fixedLog("Celebrity", c.Seed, 0)
	if err != nil {
		return nil, err
	}
	for _, m := range []baselines.Method{baselines.TCrowd{}, baselines.TCOnlyCate{}, baselines.TCOnlyCont{}} {
		est, err := m.Infer(ds.Table, log)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Name:    "unified-quality",
			Variant: m.Name(),
			Report:  metrics.Evaluate(ds.Table, est, log),
		})
	}

	// 2. Cell difficulty on/off, on a synthetic table with strong
	// difficulty spread so the effect is visible.
	sds := simulate.Generate(stats.NewRNG(c.Seed+11), simulate.TableConfig{
		Rows: 60, Cols: 8, CatRatio: 0.5, MeanDifficulty: 1.5, DifficultySpread: 0.7,
		Population: simulate.PopulationConfig{N: 40},
	})
	slog := simulate.NewCrowd(sds, c.Seed+12).FixedAssignment(5)
	for _, fix := range []bool{false, true} {
		m, err := core.Infer(sds.Table, slog, core.Options{FixDifficulty: fix})
		if err != nil {
			return nil, err
		}
		variant := "alpha-beta-learned"
		if fix {
			variant = "alpha-beta-frozen"
		}
		out = append(out, AblationResult{
			Name:    "cell-difficulty",
			Variant: variant,
			Report:  metrics.Evaluate(sds.Table, m.Estimates(), slog),
		})
	}

	// 3. Structure-aware vs inherent IG (Restaurant, end of budget).
	rds, err := simulate.StandIn("Restaurant", c.Seed)
	if err != nil {
		return nil, err
	}
	eval := []float64{3}
	if c.Quick {
		eval = []float64{2}
	}
	polResults, err := assign.RunPolicyComparison(rds,
		[]assign.Policy{assign.InherentIG{}, assign.StructureIG{}},
		assign.SimConfig{EvalAt: eval, Seed: c.Seed + 13, RefreshEvery: 12})
	if err != nil {
		return nil, err
	}
	for _, r := range polResults {
		out = append(out, AblationResult{
			Name:    "structure-aware",
			Variant: r.System,
			Report:  r.Curve[len(r.Curve)-1].Report,
		})
	}

	// 4. M-step gradient budget: quality/time trade-off.
	for _, iters := range []int{2, 20, 60} {
		start := time.Now()
		m, err := core.Infer(ds.Table, log, core.Options{MStepIter: iters})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Name:    "mstep-budget",
			Variant: fmt.Sprintf("%d-gradient-steps", iters),
			Report:  metrics.Evaluate(ds.Table, m.Estimates(), log),
			Seconds: time.Since(start).Seconds(),
		})
	}

	// 5. Batch size: greedy top-K with K=1 vs K=M (Sec. 5.3).
	for _, batch := range []int{1, rds.Table.NumCols()} {
		sys := assign.NewTCrowdSystem(c.Seed + 14)
		r, err := assign.RunOnline(rds, sys, assign.SimConfig{
			EvalAt: eval, Seed: c.Seed + 14, RefreshEvery: 12, Batch: batch,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Name:    "batch-size",
			Variant: fmt.Sprintf("K=%d", batch),
			Report:  r.Curve[len(r.Curve)-1].Report,
		})
	}
	return out, nil
}

func runAblations(w io.Writer, cfg Config) error {
	results, err := Ablations(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %-22s %12s %12s %10s\n", "Ablation", "Variant", "Error Rate", "MNAD", "Seconds")
	for _, r := range results {
		secs := ""
		if r.Seconds > 0 {
			secs = fmt.Sprintf("%.2f", r.Seconds)
		}
		fmt.Fprintf(w, "%-18s %-22s %12s %12s %10s\n",
			r.Name, r.Variant, fmtMetric(r.Report.ErrorRate), fmtMetric(r.Report.MNAD), secs)
	}
	return nil
}
