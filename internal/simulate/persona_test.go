package simulate

import (
	"testing"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func personaCounts(ws []Worker) map[Persona]int {
	out := make(map[Persona]int)
	for _, w := range ws {
		out[w.Persona]++
	}
	return out
}

func TestPopulationPersonaFractions(t *testing.T) {
	ws := NewPopulation(stats.NewRNG(7), PopulationConfig{
		N: 40, JunkFrac: 0.1, DeceiverFrac: 0.2, SleeperFrac: 0.05,
	})
	got := personaCounts(ws)
	if got[RandomJunk] != 4 || got[FastDeceiver] != 8 || got[Sleeper] != 2 {
		t.Fatalf("persona counts = %v", got)
	}
	if got[Honest] != 26 {
		t.Fatalf("honest count = %d, want 26", got[Honest])
	}
	for _, w := range ws {
		if w.Persona == Sleeper && w.TurnAfter != 30 {
			t.Fatalf("sleeper TurnAfter = %d, want default 30", w.TurnAfter)
		}
	}
}

func TestDeceiversCoordinate(t *testing.T) {
	ds := Generate(stats.NewRNG(31), TableConfig{
		Rows: 10, Cols: 6, CatRatio: 0.5,
		Population: PopulationConfig{N: 10, DeceiverFrac: 0.4},
	})
	cr := NewCrowd(ds, 32)
	var deceivers []*Worker
	for i := range ds.Workers {
		if ds.Workers[i].Persona == FastDeceiver {
			deceivers = append(deceivers, &ds.Workers[i])
		}
	}
	if len(deceivers) < 2 {
		t.Fatalf("setup: %d deceivers", len(deceivers))
	}
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			c := tabular.Cell{Row: i, Col: j}
			truth := ds.Table.TruthAt(c)
			v0 := cr.AnswerValue(deceivers[0], c)
			for _, w := range deceivers[1:] {
				if !cr.AnswerValue(w, c).Equal(v0) {
					t.Fatalf("deceivers disagree at %v", c)
				}
			}
			if v0.Equal(truth) && ds.Table.Schema.Columns[j].Type == tabular.Categorical {
				t.Fatalf("deceiver told the truth at %v", c)
			}
		}
	}
}

func TestSleeperTurns(t *testing.T) {
	ds := Generate(stats.NewRNG(41), TableConfig{
		Rows: 30, Cols: 4, CatRatio: 1,
		Population: PopulationConfig{N: 5, SleeperFrac: 0.2, SleeperTurnAfter: 10},
	})
	cr := NewCrowd(ds, 42)
	var sleeper *Worker
	for i := range ds.Workers {
		if ds.Workers[i].Persona == Sleeper {
			sleeper = &ds.Workers[i]
		}
	}
	if sleeper == nil {
		t.Fatal("setup: no sleeper in population")
	}
	// Honest phase: work times are plausible.
	for k := 0; k < sleeper.TurnAfter; k++ {
		a, ms := cr.AnswerMeta(sleeper, tabular.Cell{Row: k % ds.Table.NumRows(), Col: 0})
		if ms < 500 {
			t.Fatalf("sleeper answered fast (%dms) during honest phase (answer %d)", ms, k)
		}
		if a.Value.Kind != tabular.Label {
			t.Fatalf("unexpected value kind %v", a.Value.Kind)
		}
	}
	// Turned: coordinated wrong answers at junk speed.
	for k := 0; k < 10; k++ {
		c := tabular.Cell{Row: k, Col: 1}
		a, ms := cr.AnswerMeta(sleeper, c)
		if ms >= 500 {
			t.Fatalf("turned sleeper answered slow (%dms)", ms)
		}
		if a.Value.Equal(ds.Table.TruthAt(c)) {
			t.Fatalf("turned sleeper told the truth at %v", c)
		}
	}
}

func TestJunkCoversDomain(t *testing.T) {
	ds := Generate(stats.NewRNG(51), TableConfig{
		Rows: 40, Cols: 2, CatRatio: 1,
		Population: PopulationConfig{N: 4, JunkFrac: 0.25},
	})
	cr := NewCrowd(ds, 52)
	var junk *Worker
	for i := range ds.Workers {
		if ds.Workers[i].Persona == RandomJunk {
			junk = &ds.Workers[i]
		}
	}
	if junk == nil {
		t.Fatal("setup: no junk worker")
	}
	seen := make(map[int]bool)
	for k := 0; k < 200; k++ {
		v := cr.AnswerValue(junk, tabular.Cell{Row: k % ds.Table.NumRows(), Col: 0})
		seen[v.L] = true
	}
	if nl := ds.Table.Schema.Columns[0].NumLabels(); len(seen) != nl {
		t.Fatalf("junk labels covered %d of %d", len(seen), nl)
	}
}
