package platform

import (
	"testing"

	"tcrowd/internal/tabular"
)

// streamSchema is a small mixed schema for the streaming-inference tests.
func streamSchema() tabular.Schema {
	return tabular.Schema{
		Key: "restaurant",
		Columns: []tabular.Column{
			{Name: "cuisine", Type: tabular.Categorical, Labels: []string{"thai", "french", "diner"}},
			{Name: "price", Type: tabular.Continuous, Min: 0, Max: 100},
		},
	}
}

// TestRunInferenceStreamsDelta pins the platform's incremental path: after
// the first cold fit, repeated RunInference calls reuse and stream into the
// cached model instead of refitting, and reflect newly submitted answers.
func TestRunInferenceStreamsDelta(t *testing.T) {
	p := New(7)
	if _, err := p.CreateProject("r", streamSchema(), ProjectConfig{Rows: 4}); err != nil {
		t.Fatal(err)
	}
	submit := func(worker string, row int, col string, v tabular.Value) {
		t.Helper()
		if err := p.Submit("r", tabular.WorkerID(worker), row, col, v); err != nil {
			t.Fatal(err)
		}
	}
	for row := 0; row < 4; row++ {
		for _, w := range []string{"ann", "bob", "cho"} {
			submit(w, row, "cuisine", tabular.LabelValue(row%3))
			submit(w, row, "price", tabular.NumberValue(float64(10*row+5)))
		}
	}

	res1, err := p.RunInference("r")
	if err != nil {
		t.Fatal(err)
	}
	proj, _ := p.Project("r")
	m1 := proj.lastModel
	if m1 == nil {
		t.Fatal("no cached model after cold inference")
	}

	// New answers from a new worker: the next inference must stream them
	// into the same model, not rebuild.
	submit("dee", 0, "cuisine", tabular.LabelValue(1))
	submit("dee", 0, "price", tabular.NumberValue(95))
	res2, err := p.RunInference("r")
	if err != nil {
		t.Fatal(err)
	}
	if proj.lastModel != m1 {
		t.Fatal("incremental inference rebuilt the model")
	}
	if proj.logAtModel != proj.Log.Len() {
		t.Fatalf("model absorbed %d answers, log has %d", proj.logAtModel, proj.Log.Len())
	}
	if _, ok := res2.WorkerQuality["dee"]; !ok {
		t.Fatal("streamed worker missing from quality report")
	}
	if len(res2.Estimates) != len(res1.Estimates) {
		t.Fatalf("estimate table shape changed: %d vs %d rows", len(res2.Estimates), len(res1.Estimates))
	}

	// No new answers: the cached fit is served as is.
	if _, err := p.RunInference("r"); err != nil {
		t.Fatal(err)
	}
	if proj.lastModel != m1 {
		t.Fatal("idle inference rebuilt the model")
	}
}
