package wal

import (
	"sync"
	"time"
)

// Group commit for SyncInterval logs.
//
// A platform hosting N interval-policy projects used to run N flusher
// goroutines, each with its own ticker, each fsyncing its own log on its
// own cadence — N wakeups and up to N scattered fsyncs per interval even
// when most logs were clean. The shared flusher replaces them with ONE
// goroutine for the whole process: every SyncInterval log registers on
// Open and deregisters on Close, and the flusher walks the registered set
// on the shortest registered cadence, fsyncing only the logs with dirty
// appends outstanding. Durability is unchanged (at most one interval of
// acknowledged-but-unsynced data per log, exactly as before); what
// changes is the cost shape — one timer wheel entry and one batched walk
// instead of a goroutine-per-project stampede. See the
// wal/group-commit-16proj benchmark series.

// flusherGroup is the process-wide registry of SyncInterval logs. The
// mutex guards the map and the running flag; the walk itself snapshots
// the membership and releases the lock before touching any Log.mu, so
// a slow fsync never blocks Open/Close of other logs.
type flusherGroup struct {
	mu sync.Mutex
	//tcrowd:guardedby mu
	logs map[*Log]struct{}
	// running is true while the flusher goroutine is alive. The goroutine
	// exits (and clears it) when it wakes to an empty registry, so an idle
	// process carries no flusher at all.
	//tcrowd:guardedby mu
	running bool
}

var group = &flusherGroup{logs: make(map[*Log]struct{})}

// registerFlusher enrols a SyncInterval log with the shared flusher,
// starting the flusher goroutine if it is not running. No-op for other
// policies.
func registerFlusher(l *Log) {
	if l.opts.Policy != SyncInterval {
		return
	}
	group.mu.Lock()
	group.logs[l] = struct{}{}
	if !group.running {
		group.running = true
		go group.run()
	}
	group.mu.Unlock()
}

// unregisterFlusher removes a log from the shared flusher. Safe to call
// for logs that never registered (non-interval policies, double Close).
func unregisterFlusher(l *Log) {
	group.mu.Lock()
	delete(group.logs, l)
	group.mu.Unlock()
}

// run is the shared flusher loop: sleep the shortest registered interval,
// then flush every dirty registered log. Exits when the registry drains.
func (g *flusherGroup) run() {
	for {
		g.mu.Lock()
		if len(g.logs) == 0 {
			g.running = false
			g.mu.Unlock()
			return
		}
		interval := time.Duration(0)
		batch := make([]*Log, 0, len(g.logs))
		for l := range g.logs {
			batch = append(batch, l)
			if interval == 0 || l.opts.Interval < interval {
				interval = l.opts.Interval
			}
		}
		g.mu.Unlock()

		time.Sleep(interval)
		for _, l := range batch {
			// flushLocked is a no-op for clean, closed or wedged logs, so
			// racing a concurrent Close is benign: the snapshot may hold a
			// just-closed log once, and flushing it does nothing.
			l.mu.Lock()
			l.flushLocked()
			l.mu.Unlock()
		}
	}
}
