package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"tcrowd/internal/assign"
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// runFig3 prints the per-worker per-attribute error heat map of Fig. 3 for
// the Restaurant stand-in: error rates for categorical columns, error
// standard deviations for continuous ones, for the 25 most active workers.
func runFig3(w io.Writer, cfg Config) error {
	c := cfg.withDefaults()
	ds, log, err := fixedLog("Restaurant", c.Seed, 0)
	if err != nil {
		return err
	}
	mat := metrics.WorkerAttributeError(ds.Table, log)

	workers := log.Workers()
	sort.Slice(workers, func(a, b int) bool {
		ca, cb := log.CountByWorker(workers[a]), log.CountByWorker(workers[b])
		if ca != cb {
			return ca > cb
		}
		return workers[a] < workers[b]
	})
	top := 25
	if top > len(workers) {
		top = len(workers)
	}
	workers = workers[:top]

	fmt.Fprintf(w, "%-12s", "Attribute")
	for _, u := range workers {
		fmt.Fprintf(w, " %6s", string(u))
	}
	fmt.Fprintln(w)
	for j, col := range ds.Table.Schema.Columns {
		fmt.Fprintf(w, "%-12s", col.Name)
		for _, u := range workers {
			v := mat[u][j]
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %6s", "-")
			} else {
				fmt.Fprintf(w, " %6.2f", v)
			}
		}
		fmt.Fprintln(w)
	}

	// The headline claim behind the figure: per-worker error correlates
	// across attribute types.
	var catErr, contErr []float64
	for _, u := range log.Workers() {
		var cats, conts []float64
		for j, col := range ds.Table.Schema.Columns {
			v := mat[u][j]
			if math.IsNaN(v) {
				continue
			}
			if col.Type == tabular.Categorical {
				cats = append(cats, v)
			} else {
				conts = append(conts, v)
			}
		}
		if len(cats) > 0 && len(conts) > 0 {
			catErr = append(catErr, stats.Mean(cats))
			contErr = append(contErr, stats.Mean(conts))
		}
	}
	fmt.Fprintf(w, "cross-datatype worker error correlation r=%.3f (n=%d workers)\n",
		stats.Pearson(catErr, contErr), len(catErr))
	return nil
}

// Fig4Result carries the calibration measurements of Fig. 4.
type Fig4Result struct {
	// CatR and ContR are the estimated-vs-actual correlation coefficients
	// (the paper reports 0.844 and 0.841).
	CatR, ContR float64
	// N is the number of workers in each scatter.
	NCat, NCont int
}

// Fig4 fits T-Crowd on Restaurant and compares estimated worker quality
// against the quality computed from ground truth.
func Fig4(cfg Config) (Fig4Result, error) {
	c := cfg.withDefaults()
	ds, log, err := fixedLog("Restaurant", c.Seed, 0)
	if err != nil {
		return Fig4Result{}, err
	}
	m, err := core.Infer(ds.Table, log, core.Options{})
	if err != nil {
		return Fig4Result{}, err
	}
	actCat, actCont := metrics.ActualWorkerQuality(ds.Table, log)

	var estC, actC, estN, actN []float64
	for _, u := range m.WorkerIDs {
		// Estimated categorical quality: the error probability 1 - q_u.
		if a, ok := actCat[u]; ok {
			estC = append(estC, 1-m.WorkerQuality(u))
			actC = append(actC, a)
		}
		// Estimated continuous quality: the inferred std sqrt(phi_u).
		if a, ok := actCont[u]; ok {
			estN = append(estN, math.Sqrt(m.PhiFor(u)))
			actN = append(actN, a)
		}
	}
	return Fig4Result{
		CatR:  stats.Pearson(estC, actC),
		ContR: stats.Pearson(estN, actN),
		NCat:  len(estC),
		NCont: len(estN),
	}, nil
}

func runFig4(w io.Writer, cfg Config) error {
	res, err := Fig4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "categorical: estimated vs actual quality r=%.3f (n=%d; paper: 0.844)\n", res.CatR, res.NCat)
	fmt.Fprintf(w, "continuous:  estimated vs actual quality r=%.3f (n=%d; paper: 0.841)\n", res.ContR, res.NCont)
	return nil
}

// Fig5 compares the assignment heuristics (all with T-Crowd inference) on
// Restaurant.
func Fig5(cfg Config) ([]assign.SimResult, error) {
	c := cfg.withDefaults()
	ds, err := simulate.StandIn("Restaurant", c.Seed)
	if err != nil {
		return nil, err
	}
	eval := []float64{2, 2.5, 3, 3.5, 4}
	if c.Quick {
		eval = []float64{2, 3}
	}
	return assign.RunPolicyComparison(ds, assign.Policies(), assign.SimConfig{
		EvalAt:       eval,
		Seed:         c.Seed + 4,
		RefreshEvery: 12,
	})
}

func runFig5(w io.Writer, cfg Config) error {
	results, err := Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %8s %12s %12s\n", "Heuristic", "Ans/Task", "Error Rate", "MNAD")
	for _, r := range results {
		for _, pt := range r.Curve {
			fmt.Fprintf(w, "%-22s %8.1f %12s %12s\n",
				r.System, pt.AnswersPerTask, fmtMetric(pt.Report.ErrorRate), fmtMetric(pt.Report.MNAD))
		}
	}
	return nil
}

// Fig6Result carries the attribute-correlation case study.
type Fig6Result struct {
	// Contingency counts of (Aspect correct?, Sentiment correct?) pairs:
	// [0][0]=both correct, [0][1]=aspect correct/sentiment wrong, etc.
	Contingency [2][2]int
	// PCorrGivenCorr / PCorrGivenWrong: P(sentiment correct | aspect
	// correct / wrong); the paper reports 86% vs 73%.
	PCorrGivenCorr, PCorrGivenWrong float64
	// StartEnd is the bivariate normal fitted to (start error, end error).
	StartEnd stats.BivariateNormal
}

// Fig6 measures the correlations that motivate structure-aware assignment.
func Fig6(cfg Config) (Fig6Result, error) {
	c := cfg.withDefaults()
	ds, log, err := fixedLog("Restaurant", c.Seed, 0)
	if err != nil {
		return Fig6Result{}, err
	}
	var res Fig6Result
	aspect, sentiment := 0, 2
	start, end := 3, 4
	var se, ee []float64
	for i := 0; i < ds.Table.NumRows(); i++ {
		for _, a := range log.ByCell(tabular.Cell{Row: i, Col: aspect}) {
			s, ok := log.WorkerAnswerIn(a.Worker, tabular.Cell{Row: i, Col: sentiment})
			if !ok {
				continue
			}
			ai, si := 1, 1 // 0 = correct, 1 = wrong
			if a.Value.Equal(ds.Table.Truth[i][aspect]) {
				ai = 0
			}
			if s.Value.Equal(ds.Table.Truth[i][sentiment]) {
				si = 0
			}
			res.Contingency[ai][si]++
		}
		for _, a := range log.ByCell(tabular.Cell{Row: i, Col: start}) {
			e, ok := log.WorkerAnswerIn(a.Worker, tabular.Cell{Row: i, Col: end})
			if !ok {
				continue
			}
			se = append(se, a.Value.X-ds.Table.Truth[i][start].X)
			ee = append(ee, e.Value.X-ds.Table.Truth[i][end].X)
		}
	}
	cc := float64(res.Contingency[0][0])
	cw := float64(res.Contingency[0][1])
	wc := float64(res.Contingency[1][0])
	ww := float64(res.Contingency[1][1])
	if cc+cw > 0 {
		res.PCorrGivenCorr = cc / (cc + cw)
	}
	if wc+ww > 0 {
		res.PCorrGivenWrong = wc / (wc + ww)
	}
	// Winsorize at 3 robust sigmas, as the correlation model does: the
	// crowd's error distribution is long-tailed and a handful of spammer
	// answers would otherwise dominate the joint fit.
	lo, hi := stats.RobustBounds(se, 3)
	se = stats.Winsorize(se, lo, hi)
	lo, hi = stats.RobustBounds(ee, 3)
	ee = stats.Winsorize(ee, lo, hi)
	res.StartEnd = stats.FitBivariateNormal(se, ee, 1e-9)
	return res, nil
}

func runFig6(w io.Writer, cfg Config) error {
	res, err := Fig6(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Aspect x Sentiment contingency (rows: aspect correct/wrong; cols: sentiment correct/wrong):")
	fmt.Fprintf(w, "%-8s %8s %8s\n", "", "correct", "wrong")
	fmt.Fprintf(w, "%-8s %8d %8d\n", "correct", res.Contingency[0][0], res.Contingency[0][1])
	fmt.Fprintf(w, "%-8s %8d %8d\n", "wrong", res.Contingency[1][0], res.Contingency[1][1])
	fmt.Fprintf(w, "P(sentiment correct | aspect correct) = %.2f (paper: 0.86)\n", res.PCorrGivenCorr)
	fmt.Fprintf(w, "P(sentiment correct | aspect wrong)   = %.2f (paper: 0.73)\n", res.PCorrGivenWrong)
	fmt.Fprintf(w, "Start/End error joint: rho=%.3f", res.StartEnd.Rho())
	c0 := res.StartEnd.ConditionalY(0)
	c6 := res.StartEnd.ConditionalY(6)
	fmt.Fprintf(w, "; e_end | e_start=0 ~ N(%.2f, %.2f); e_end | e_start=6 ~ N(%.2f, %.2f)\n",
		c0.Mu, c0.Var, c6.Mu, c6.Var)
	return nil
}
