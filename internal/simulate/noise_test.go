package simulate

import (
	"math"
	"testing"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func TestAddNoisePreservesShape(t *testing.T) {
	ds := Generate(stats.NewRNG(21), TableConfig{Rows: 20, Cols: 6})
	cr := NewCrowd(ds, 22)
	log := cr.FixedAssignment(3)
	noisy := AddNoise(stats.NewRNG(23), ds.Table.Schema, log, 0.2)

	if noisy.Len() != log.Len() {
		t.Fatal("answer count changed")
	}
	for i := 0; i < log.Len(); i++ {
		a, b := log.At(i), noisy.At(i)
		if a.Worker != b.Worker || a.Cell != b.Cell {
			t.Fatal("noise must only touch values")
		}
		if err := b.Value.CheckAgainst(ds.Table.Schema.Columns[b.Cell.Col]); err != nil {
			t.Fatal(err)
		}
	}
	if err := noisy.Validate(ds.Table); err != nil {
		t.Fatal(err)
	}
	// Input untouched.
	if log.At(0).Value.IsNone() {
		t.Fatal("input mutated")
	}
}

func TestAddNoiseZeroGammaIsIdentity(t *testing.T) {
	ds := Generate(stats.NewRNG(25), TableConfig{Rows: 10, Cols: 4})
	cr := NewCrowd(ds, 26)
	log := cr.FixedAssignment(2)
	noisy := AddNoise(stats.NewRNG(27), ds.Table.Schema, log, 0)
	for i := 0; i < log.Len(); i++ {
		if !log.At(i).Value.Equal(noisy.At(i).Value) {
			t.Fatal("gamma=0 must not perturb")
		}
	}
}

func TestAddNoiseMagnitudeGrowsWithGamma(t *testing.T) {
	ds := Generate(stats.NewRNG(29), TableConfig{Rows: 40, Cols: 6, CatRatio: 0.5})
	cr := NewCrowd(ds, 30)
	log := cr.FixedAssignment(4)

	changed := func(gamma float64) float64 {
		noisy := AddNoise(stats.NewRNG(31), ds.Table.Schema, log, gamma)
		n := 0
		for i := 0; i < log.Len(); i++ {
			if !log.At(i).Value.Equal(noisy.At(i).Value) {
				n++
			}
		}
		return float64(n) / float64(log.Len())
	}
	c10 := changed(0.10)
	c40 := changed(0.40)
	if c10 <= 0 {
		t.Fatal("10% noise changed nothing")
	}
	if c40 <= c10 {
		t.Fatalf("more noise must change more answers: %v vs %v", c40, c10)
	}
	// Sampling with replacement + categorical relabel-to-same means the
	// changed fraction is below gamma, never above it by construction.
	if c40 > 0.40+1e-9 {
		t.Fatalf("changed fraction %v exceeds gamma", c40)
	}
}

func TestAddNoiseContinuousStaysFinite(t *testing.T) {
	ds := Emotion(33)
	cr := NewCrowd(ds, 34)
	log := cr.FixedAssignment(5)
	noisy := AddNoise(stats.NewRNG(35), ds.Table.Schema, log, 0.4)
	for _, a := range noisy.All() {
		if a.Value.Kind != tabular.Number {
			t.Fatal("emotion answers must stay numeric")
		}
		if math.IsNaN(a.Value.X) || math.IsInf(a.Value.X, 0) {
			t.Fatal("noise produced a non-finite value")
		}
	}
}
