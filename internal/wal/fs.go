package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam every WAL operation goes through. Production
// code uses OSFS (the default when Options.FS is nil); tests inject a
// fault-injecting implementation (MemFS) to exercise short writes, write
// errors at the Nth operation, and hard crashes that discard unsynced
// bytes — the failure modes a durability layer exists to survive.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens a file with os.OpenFile semantics. The WAL only ever
	// opens files for sequential reads or O_APPEND writes.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes one file; RemoveAll deletes a tree.
	Remove(name string) error
	RemoveAll(path string) error
	// Truncate cuts a file to size — how replay discards a torn tail.
	Truncate(name string, size int64) error
	// Stat reports file metadata.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so entry creates/renames/removes are
	// durable (a no-op on filesystems without directory sync).
	SyncDir(path string) error
}

// File is the subset of *os.File the WAL needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
}

// osFS is the production FS backed by the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem implementation (what a nil
// Options.FS resolves to).
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }

// SyncDir opens the directory and fsyncs it. Errors are swallowed for
// filesystems (or platforms) that refuse to sync directories: directory
// sync narrows the crash window around renames but is not load-bearing
// for replay correctness (replay tolerates leftover temp files and
// partially deleted segments).
func (osFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
