package assign

import (
	"math"

	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// ErrorModel is the attribute-correlation model of Sec. 5.2: marginal error
// distributions per column (Table 4), conditional error distributions per
// ordered column pair (Table 5, four datatype cases), and the correlation
// coefficients W_jk (Eq. 8) that weight the per-attribute conditionals in
// the linear combination of Eq. 7.
//
// An "error" is defined against the current estimated truth: for a
// categorical answer e = 1{a != T-hat}; for a continuous answer
// e = z(a) - z(T-hat) in standardized units.
type ErrorModel struct {
	m *core.Model
	// isCat[j] marks categorical columns.
	isCat []bool
	// margCat[j] is the marginal P(e_j = 1) for categorical columns.
	margCat []stats.Bernoulli
	// margCont[j] is the marginal N(mean, var) of continuous errors.
	margCont []stats.Normal
	// pair[j][k] is the fitted conditional of e_j given e_k (nil when too
	// few paired samples).
	pair [][]*pairModel
	// w[j][k] is the correlation coefficient W_jk.
	w [][]float64
	// minPairs is the sample-size floor below which a pair falls back to
	// the marginal.
	minPairs int
	// boundLo/boundHi winsorize continuous errors per column at 3 robust
	// sigmas: crowd error is long-tailed (a spammer's wild answers would
	// otherwise dominate every second-moment estimate below).
	boundLo, boundHi []float64
}

// pairModel holds the conditional distribution P(e_j | e_k) in the four
// datatype cases of Table 5.
type pairModel struct {
	jCat, kCat bool
	// catCat: P(e_j = 1 | e_k = 0) and P(e_j = 1 | e_k = 1).
	pGivenRight, pGivenWrong float64
	// contCont: joint bivariate normal of (e_j, e_k); conditional comes
	// from ConditionalY with the roles swapped accordingly.
	joint stats.BivariateNormal
	// contGivenCat (j continuous, k categorical): N when e_k = 0 / 1.
	contRight, contWrong stats.Normal
	// catGivenCont (j categorical, k continuous): per-class normals of e_k
	// given e_j plus the marginal P(e_j = 1), combined by Bayes.
	ekGivenRight, ekGivenWrong stats.Normal
	pj                         float64
}

// BuildErrorModel fits the marginal and pairwise error distributions from
// the model's answers and current estimates.
func BuildErrorModel(m *core.Model) *ErrorModel {
	tbl := m.Table
	nCols := tbl.NumCols()
	em := &ErrorModel{
		m:        m,
		isCat:    make([]bool, nCols),
		margCat:  make([]stats.Bernoulli, nCols),
		margCont: make([]stats.Normal, nCols),
		pair:     make([][]*pairModel, nCols),
		w:        make([][]float64, nCols),
		minPairs: 8,
	}
	est := m.Estimates()
	em.boundLo = make([]float64, nCols)
	em.boundHi = make([]float64, nCols)
	for j := 0; j < nCols; j++ {
		em.isCat[j] = tbl.Schema.Columns[j].Type == tabular.Categorical
		em.pair[j] = make([]*pairModel, nCols)
		em.w[j] = make([]float64, nCols)
	}

	// Per (worker,row) error vectors: errs[u][i][j] present if u answered
	// cell (i,j) and the cell has an estimate.
	type key struct {
		u tabular.WorkerID
		i int
	}
	rowErrs := map[key]map[int]float64{}
	perCol := make([][]float64, nCols)
	for _, a := range m.Log.All() {
		i, j := a.Cell.Row, a.Cell.Col
		guess := est[i][j]
		if guess.IsNone() {
			continue
		}
		var e float64
		if a.Value.Kind == tabular.Label {
			if !a.Value.Equal(guess) {
				e = 1
			}
		} else {
			e = m.ToZ(j, a.Value.X) - m.ToZ(j, guess.X)
		}
		k := key{a.Worker, i}
		if rowErrs[k] == nil {
			rowErrs[k] = map[int]float64{}
		}
		rowErrs[k][j] = e
		perCol[j] = append(perCol[j], e)
	}

	// Robust winsorization bounds per continuous column, applied to both
	// the fitting samples and (via addError) query-time row errors.
	for j := 0; j < nCols; j++ {
		if !em.isCat[j] && len(perCol[j]) > 0 {
			em.boundLo[j], em.boundHi[j] = stats.RobustBounds(perCol[j], 3)
			perCol[j] = stats.Winsorize(perCol[j], em.boundLo[j], em.boundHi[j])
		}
	}
	for _, errs := range rowErrs {
		for j, e := range errs {
			if !em.isCat[j] && em.boundHi[j] > em.boundLo[j] {
				errs[j] = stats.Clamp(e, em.boundLo[j], em.boundHi[j])
			}
		}
	}

	// Marginals (Table 4).
	for j := 0; j < nCols; j++ {
		if em.isCat[j] {
			em.margCat[j] = stats.FitBernoulli(perCol[j])
		} else {
			em.margCont[j] = stats.FitNormal(perCol[j], 1e-6)
		}
	}

	// Pairwise samples.
	type pairKey struct{ j, k int }
	pairSamples := map[pairKey][][2]float64{}
	for _, errs := range rowErrs {
		for j, ej := range errs {
			for k, ek := range errs {
				if j == k {
					continue
				}
				pk := pairKey{j, k}
				pairSamples[pk] = append(pairSamples[pk], [2]float64{ej, ek})
			}
		}
	}
	for pk, samples := range pairSamples {
		if len(samples) < em.minPairs {
			continue
		}
		ejs := make([]float64, len(samples))
		eks := make([]float64, len(samples))
		for i, s := range samples {
			ejs[i] = s[0]
			eks[i] = s[1]
		}
		em.w[pk.j][pk.k] = stats.Pearson(ejs, eks)
		em.pair[pk.j][pk.k] = fitPair(em.isCat[pk.j], em.isCat[pk.k], ejs, eks, em.margCat[pk.j])
	}
	return em
}

// fitPair fits one Table 5 conditional: e_j given e_k.
func fitPair(jCat, kCat bool, ejs, eks []float64, margJ stats.Bernoulli) *pairModel {
	pm := &pairModel{jCat: jCat, kCat: kCat}
	switch {
	case jCat && kCat:
		var right, wrong []float64
		for i := range ejs {
			if eks[i] != 0 {
				wrong = append(wrong, ejs[i])
			} else {
				right = append(right, ejs[i])
			}
		}
		pm.pGivenRight = stats.FitBernoulli(right).P
		pm.pGivenWrong = stats.FitBernoulli(wrong).P
	case !jCat && !kCat:
		pm.joint = stats.FitBivariateNormal(ejs, eks, 1e-6)
	case !jCat && kCat:
		var right, wrong []float64
		for i := range ejs {
			if eks[i] != 0 {
				wrong = append(wrong, ejs[i])
			} else {
				right = append(right, ejs[i])
			}
		}
		pm.contRight = fitNormalOrDefault(right)
		pm.contWrong = fitNormalOrDefault(wrong)
	default: // jCat && !kCat
		var right, wrong []float64
		for i := range ejs {
			if ejs[i] != 0 {
				wrong = append(wrong, eks[i])
			} else {
				right = append(right, eks[i])
			}
		}
		pm.ekGivenRight = fitNormalOrDefault(right)
		pm.ekGivenWrong = fitNormalOrDefault(wrong)
		pm.pj = margJ.P
	}
	return pm
}

func fitNormalOrDefault(xs []float64) stats.Normal {
	if len(xs) < 2 {
		return stats.Normal{Mu: 0, Var: 1}
	}
	return stats.FitNormal(xs, 1e-6)
}

// condCatWrong returns P(e_j = 1 | e_k = ek) for a categorical target j.
func (pm *pairModel) condCatWrong(ek float64) float64 {
	if pm.kCat {
		if ek != 0 {
			return pm.pGivenWrong
		}
		return pm.pGivenRight
	}
	// Bayes over the continuous conditioner (case d of Sec. 5.2).
	pw := pm.pj
	likWrong := pm.ekGivenWrong.PDF(ek) * pw
	likRight := pm.ekGivenRight.PDF(ek) * (1 - pw)
	den := likWrong + likRight
	if den <= 0 {
		return pw
	}
	return likWrong / den
}

// condContNormal returns the conditional N(mu, var) of a continuous target
// e_j given e_k = ek.
func (pm *pairModel) condContNormal(ek float64) stats.Normal {
	if pm.kCat {
		if ek != 0 {
			return pm.contWrong
		}
		return pm.contRight
	}
	// contCont: joint holds (e_j, e_k) as (X, Y); we need X | Y = ek, which
	// is ConditionalY on the swapped joint.
	swapped := stats.BivariateNormal{
		MuX: pm.joint.MuY, MuY: pm.joint.MuX,
		VarX: pm.joint.VarY, VarY: pm.joint.VarX,
		Cov: pm.joint.Cov,
	}
	return swapped.ConditionalY(ek)
}

// RowErrors computes worker u's observed errors E^u_i on row i against the
// current estimates: the inputs to Eq. 7. Columns without an estimate or
// without an answer by u are absent.
func (em *ErrorModel) RowErrors(u tabular.WorkerID, row int, est metrics.Estimates) map[int]float64 {
	out := map[int]float64{}
	for _, a := range em.m.Log.RowAnswersByWorker(u, row) {
		em.addError(out, a, est)
	}
	return out
}

// WorkerRowErrors computes the errors of every answer worker u has given,
// grouped by row, in one pass over u's history. Policies scoring thousands
// of candidate cells per arrival must use this instead of calling RowErrors
// per cell (which would rescan the history every time).
func (em *ErrorModel) WorkerRowErrors(u tabular.WorkerID, est metrics.Estimates) map[int]map[int]float64 {
	out := map[int]map[int]float64{}
	for _, a := range em.m.Log.ByWorker(u) {
		row := out[a.Cell.Row]
		if row == nil {
			row = map[int]float64{}
			out[a.Cell.Row] = row
		}
		em.addError(row, a, est)
	}
	return out
}

// addError records one answer's error against the estimates into dst.
func (em *ErrorModel) addError(dst map[int]float64, a tabular.Answer, est metrics.Estimates) {
	j := a.Cell.Col
	guess := est[a.Cell.Row][j]
	if guess.IsNone() {
		return
	}
	if a.Value.Kind == tabular.Label {
		if a.Value.Equal(guess) {
			dst[j] = 0
		} else {
			dst[j] = 1
		}
	} else {
		e := em.m.ToZ(j, a.Value.X) - em.m.ToZ(j, guess.X)
		if len(em.boundHi) > j && em.boundHi[j] > em.boundLo[j] {
			e = stats.Clamp(e, em.boundLo[j], em.boundHi[j])
		}
		dst[j] = e
	}
}

// CondWrongProb predicts P(worker's answer on categorical column j is
// wrong | row errors E) by the W-weighted linear combination of pairwise
// conditionals (Eq. 7). With no usable pair it returns the marginal; with
// no marginal signal it returns 1 - q for quality fallback by the caller
// (signalled by ok = false).
func (em *ErrorModel) CondWrongProb(j int, rowErrs map[int]float64) (p float64, ok bool) {
	num, den := 0.0, 0.0
	for k, ek := range rowErrs {
		pm := em.pair[j][k]
		if pm == nil {
			continue
		}
		w := math.Abs(em.w[j][k])
		if w <= 1e-9 {
			continue
		}
		num += w * pm.condCatWrong(ek)
		den += w
	}
	if den > 0 {
		return stats.Clamp(num/den, 1e-6, 1-1e-6), true
	}
	if len(em.margCat) > j {
		mp := em.margCat[j].P
		if mp > 0 && mp < 1 {
			return mp, true
		}
	}
	return 0, false
}

// CondErrorNormal predicts the continuous error distribution of column j
// given the row errors, as the W-weighted mixture of pairwise conditionals
// moment-matched to a single normal. ok is false when no pair is usable.
func (em *ErrorModel) CondErrorNormal(j int, rowErrs map[int]float64) (stats.Normal, bool) {
	var comps []stats.Normal
	var weights []float64
	for k, ek := range rowErrs {
		pm := em.pair[j][k]
		if pm == nil {
			continue
		}
		w := math.Abs(em.w[j][k])
		if w <= 1e-9 {
			continue
		}
		comps = append(comps, pm.condContNormal(ek))
		weights = append(weights, w)
	}
	if len(comps) == 0 {
		return stats.Normal{}, false
	}
	// Moment matching: mixture mean and variance.
	wsum := stats.Sum(weights)
	mu := 0.0
	for i, c := range comps {
		mu += weights[i] / wsum * c.Mu
	}
	v := 0.0
	for i, c := range comps {
		d := c.Mu - mu
		v += weights[i] / wsum * (c.Var + d*d)
	}
	if v <= 0 {
		v = 1e-6
	}
	return stats.Normal{Mu: mu, Var: v}, true
}

// W returns the correlation coefficient W_jk (Eq. 8); 0 when unestimated.
func (em *ErrorModel) W(j, k int) float64 { return em.w[j][k] }

// MarginalCat returns the marginal wrong-probability of categorical column
// j (Table 4).
func (em *ErrorModel) MarginalCat(j int) stats.Bernoulli { return em.margCat[j] }

// MarginalCont returns the marginal error normal of continuous column j
// (Table 4).
func (em *ErrorModel) MarginalCont(j int) stats.Normal { return em.margCont[j] }
