package tcrowd

import (
	"tcrowd/internal/assign"
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/tabular"
)

// Re-exported data-model types (see internal/tabular for full docs).
type (
	// Schema describes the table to crowdsource: a key attribute plus
	// categorical/continuous columns.
	Schema = tabular.Schema
	// Column is one attribute definition.
	Column = tabular.Column
	// ColumnType distinguishes categorical from continuous attributes.
	ColumnType = tabular.ColumnType
	// Table couples a schema with entities (and, in evaluations, truth).
	Table = tabular.Table
	// Cell addresses one task c_ij.
	Cell = tabular.Cell
	// Value is a tagged union: label index or number.
	Value = tabular.Value
	// Answer is one worker observation a^u_ij.
	Answer = tabular.Answer
	// AnswerLog is the indexed set of collected answers.
	AnswerLog = tabular.AnswerLog
	// WorkerID identifies a crowd worker.
	WorkerID = tabular.WorkerID
)

// Column datatypes.
const (
	Categorical = tabular.Categorical
	Continuous  = tabular.Continuous
)

// NewTable builds a table with n auto-named entities.
func NewTable(s Schema, n int) *Table { return tabular.NewTable(s, n) }

// NewAnswerLog returns an empty answer log.
func NewAnswerLog() *AnswerLog { return tabular.NewAnswerLog() }

// LabelValue returns a categorical value (index into Column.Labels).
func LabelValue(idx int) Value { return tabular.LabelValue(idx) }

// NumberValue returns a continuous value.
func NumberValue(x float64) Value { return tabular.NumberValue(x) }

// InferOptions tunes truth inference; the zero value gives the paper's
// defaults (eps 0.5, EM tolerance 1e-5, at most 50 iterations).
type InferOptions struct {
	// Eps is the quality window of the unified worker model, in
	// standardized units.
	Eps float64
	// MaxIter bounds EM iterations.
	MaxIter int
	// Tol is the parameter-change convergence threshold.
	Tol float64
	// FixDifficulty freezes alpha_i = beta_j = 1 (worker-only model).
	FixDifficulty bool
	// TrackObjective records the optimisation objective per EM iteration
	// in Result.Objective.
	TrackObjective bool
}

func (o InferOptions) toCore() core.Options {
	return core.Options{
		Eps:            o.Eps,
		MaxIter:        o.MaxIter,
		Tol:            o.Tol,
		FixDifficulty:  o.FixDifficulty,
		TrackObjective: o.TrackObjective,
	}
}

// Result is the outcome of truth inference.
type Result struct {
	// Estimates holds one value per cell (row-major); unanswered cells
	// are the zero Value (IsNone).
	Estimates [][]Value
	// WorkerQuality maps each worker to the unified quality
	// q_u = erf(eps / sqrt(2 phi_u)) in [0, 1].
	WorkerQuality map[WorkerID]float64
	// WorkerVariance maps each worker to phi_u (lower is better).
	WorkerVariance map[WorkerID]float64
	// RowDifficulty and ColumnDifficulty are alpha and beta.
	RowDifficulty, ColumnDifficulty []float64
	// Iterations is the number of EM iterations run; Converged reports
	// whether the tolerance fired before MaxIter.
	Iterations int
	Converged  bool
	// Objective is the per-iteration optimisation objective (only when
	// TrackObjective was set).
	Objective []float64

	model *core.Model
}

// Infer runs T-Crowd truth inference over the collected answers.
func Infer(t *Table, log *AnswerLog, opts InferOptions) (*Result, error) {
	m, err := core.Infer(t, log, opts.toCore())
	if err != nil {
		return nil, err
	}
	res := &Result{
		Estimates:        [][]Value(m.Estimates()),
		WorkerQuality:    make(map[WorkerID]float64, len(m.WorkerIDs)),
		WorkerVariance:   make(map[WorkerID]float64, len(m.WorkerIDs)),
		RowDifficulty:    append([]float64(nil), m.Alpha...),
		ColumnDifficulty: append([]float64(nil), m.Beta...),
		Iterations:       m.Iterations,
		Converged:        m.Converged,
		Objective:        append([]float64(nil), m.ObjTrace...),
		model:            m,
	}
	for k, u := range m.WorkerIDs {
		res.WorkerQuality[u] = m.WorkerQuality(u)
		res.WorkerVariance[u] = m.Phi[k]
	}
	return res, nil
}

// EstimateAt returns the estimate for one cell.
func (r *Result) EstimateAt(c Cell) Value { return r.Estimates[c.Row][c.Col] }

// Correlations returns the attribute error-correlation matrix W (Eq. 8 of
// the paper): W[j][k] is the Pearson correlation between worker errors on
// columns j and k of the same row. Entries without enough paired samples
// are 0.
func (r *Result) Correlations() [][]float64 {
	em := assign.BuildErrorModel(r.model)
	n := r.model.Table.NumCols()
	out := make([][]float64, n)
	for j := 0; j < n; j++ {
		out[j] = make([]float64, n)
		for k := 0; k < n; k++ {
			if j != k {
				out[j][k] = em.W(j, k)
			} else {
				out[j][k] = 1
			}
		}
	}
	return out
}

// ErrorRate computes the categorical mismatch rate of estimates against the
// table's ground truth (NaN without categorical cells or truth).
func ErrorRate(t *Table, est [][]Value, log *AnswerLog) float64 {
	return metrics.Evaluate(t, metrics.Estimates(est), log).ErrorRate
}

// MNAD computes the mean normalized absolute distance of continuous
// estimates against the table's ground truth: per-column RMSE divided by
// the column's answer std, averaged (NaN without continuous cells/truth).
func MNAD(t *Table, est [][]Value, log *AnswerLog) float64 {
	return metrics.Evaluate(t, metrics.Estimates(est), log).MNAD
}
