package tcrowd

import (
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
)

// SimulatedCrowd is a self-contained crowdsourcing workload: a table with
// known ground truth plus a worker population that answers tasks from the
// paper's generative model. It backs the runnable examples and lets users
// evaluate T-Crowd without hiring a crowd.
type SimulatedCrowd struct {
	ds    *simulate.Dataset
	crowd *simulate.Crowd
}

// StandInDataset builds a statistical stand-in for one of the paper's
// evaluation datasets: "Celebrity" (174x7 mixed), "Restaurant" (203x5
// mixed, correlated attributes) or "Emotion" (100x7 all-continuous).
func StandInDataset(name string, seed int64) (*SimulatedCrowd, error) {
	ds, err := simulate.StandIn(name, seed)
	if err != nil {
		return nil, err
	}
	return &SimulatedCrowd{ds: ds, crowd: simulate.NewCrowd(ds, seed+1)}, nil
}

// SyntheticConfig parameterises SyntheticDataset, mirroring the paper's
// synthetic generator (Sec. 6.5). Zero values take the paper's defaults
// (100 rows, 10 columns, half categorical, mean difficulty 1).
type SyntheticConfig struct {
	Rows, Cols     int
	CatRatio       float64
	MeanDifficulty float64
	Workers        int
	SpammerFrac    float64
}

// SyntheticDataset builds a synthetic workload.
func SyntheticDataset(cfg SyntheticConfig, seed int64) *SimulatedCrowd {
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows:           cfg.Rows,
		Cols:           cfg.Cols,
		CatRatio:       cfg.CatRatio,
		MeanDifficulty: cfg.MeanDifficulty,
		Population: simulate.PopulationConfig{
			N:           cfg.Workers,
			SpammerFrac: cfg.SpammerFrac,
		},
	})
	return &SimulatedCrowd{ds: ds, crowd: simulate.NewCrowd(ds, seed+1)}
}

// Table returns the workload's table, including its planted ground truth
// (so estimates can be scored with ErrorRate / MNAD).
func (s *SimulatedCrowd) Table() *Table { return s.ds.Table }

// Workers lists the worker population in arrival order.
func (s *SimulatedCrowd) Workers() []WorkerID {
	out := make([]WorkerID, len(s.ds.Workers))
	for i := range s.ds.Workers {
		out[i] = s.ds.Workers[i].ID
	}
	return out
}

// AnswersPerTask is the dataset's nominal answer multiplicity (5 for
// Celebrity, 4 for Restaurant, 10 for Emotion).
func (s *SimulatedCrowd) AnswersPerTask() int { return s.ds.AnswersPerTask }

// Collect replays the paper's AMT protocol: each row is a HIT answered by
// perTask distinct workers, yielding exactly perTask answers per cell.
func (s *SimulatedCrowd) Collect(perTask int) *AnswerLog {
	return s.crowd.FixedAssignment(perTask)
}

// Answer simulates worker u answering cell c, for driving online
// assignment loops. Unknown workers and out-of-range cells return ok=false.
func (s *SimulatedCrowd) Answer(u WorkerID, c Cell) (Answer, bool) {
	w := s.ds.WorkerByID(u)
	if w == nil {
		return Answer{}, false
	}
	if c.Row < 0 || c.Row >= s.ds.Table.NumRows() || c.Col < 0 || c.Col >= s.ds.Table.NumCols() {
		return Answer{}, false
	}
	return s.crowd.Answer(w, c), true
}

// TrueQuality returns the planted quality q_u of a worker (for calibration
// studies); ok is false for unknown workers.
func (s *SimulatedCrowd) TrueQuality(u WorkerID) (float64, bool) {
	w := s.ds.WorkerByID(u)
	if w == nil {
		return 0, false
	}
	return w.Quality(s.ds.Eps), true
}
