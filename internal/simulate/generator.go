package simulate

import (
	"fmt"
	"math/rand"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// TableConfig parameterises the synthetic generator exactly as Sec. 6.5
// does: number of rows N and columns M, ratio R of categorical columns,
// and average task difficulty mu_{alpha beta}. Label-set sizes are drawn
// from U(2,10) and continuous domains are [0, 1000], as in the paper.
type TableConfig struct {
	// Rows is N (default 100).
	Rows int
	// Cols is M (default 10).
	Cols int
	// CatRatio is R, the fraction of categorical columns (default 0.5).
	CatRatio float64
	// MeanDifficulty is mu_{alpha beta} (default 1).
	MeanDifficulty float64
	// DifficultySpread is the log-normal sigma of the per-row/column
	// difficulty factors (default 0.25; 0 plants uniform difficulty).
	DifficultySpread float64
	// MinLabels and MaxLabels bound categorical label-set sizes
	// (defaults 2 and 10, per the paper's U(2,10)).
	MinLabels, MaxLabels int
	// ContMin and ContMax bound continuous domains (defaults 0 and 1000).
	ContMin, ContMax float64
	// Population configures the worker crowd.
	Population PopulationConfig
	// Eps is the quality window (default 0.5).
	Eps float64
	// AnswersPerTask is the nominal answer multiplicity (default 5, the
	// Celebrity setting the synthetic experiments reuse).
	AnswersPerTask int
}

func (c TableConfig) withDefaults() TableConfig {
	if c.Rows <= 0 {
		c.Rows = 100
	}
	if c.Cols <= 0 {
		c.Cols = 10
	}
	if c.CatRatio < 0 {
		c.CatRatio = 0
	}
	if c.CatRatio > 1 {
		c.CatRatio = 1
	}
	if c.MeanDifficulty <= 0 {
		c.MeanDifficulty = 1
	}
	if c.DifficultySpread < 0 {
		c.DifficultySpread = 0
	}
	if c.DifficultySpread == 0 {
		c.DifficultySpread = 0.25
	}
	if c.MinLabels < 2 {
		c.MinLabels = 2
	}
	if c.MaxLabels < c.MinLabels {
		c.MaxLabels = 10
	}
	if c.ContMax <= c.ContMin {
		c.ContMin, c.ContMax = 0, 1000
	}
	if c.Eps <= 0 {
		c.Eps = 0.5
	}
	if c.AnswersPerTask <= 0 {
		c.AnswersPerTask = 5
	}
	return c
}

// Generate builds a synthetic dataset: schema, planted ground truth,
// planted difficulties and a worker population. The ground truth of each
// cell is drawn uniformly from the column domain, as in Sec. 6.5.
func Generate(rng *rand.Rand, cfg TableConfig) *Dataset {
	c := cfg.withDefaults()

	nCat := int(float64(c.Cols)*c.CatRatio + 0.5)
	cols := make([]tabular.Column, c.Cols)
	for j := range cols {
		if j < nCat {
			k := c.MinLabels + rng.Intn(c.MaxLabels-c.MinLabels+1)
			labels := make([]string, k)
			for l := range labels {
				labels[l] = fmt.Sprintf("c%d-l%d", j, l)
			}
			cols[j] = tabular.Column{Name: fmt.Sprintf("cat%d", j), Type: tabular.Categorical, Labels: labels}
		} else {
			cols[j] = tabular.Column{Name: fmt.Sprintf("num%d", j), Type: tabular.Continuous, Min: c.ContMin, Max: c.ContMax}
		}
	}
	// Interleave datatypes so neither datatype clusters at one end; some
	// assignment policies scan cells in order and must not get a free
	// datatype split.
	rng.Shuffle(len(cols), func(a, b int) { cols[a], cols[b] = cols[b], cols[a] })

	schema := tabular.Schema{Key: "entity", Columns: cols}
	tbl := tabular.NewTable(schema, c.Rows)
	tbl.Truth = make([][]tabular.Value, c.Rows)
	for i := range tbl.Truth {
		row := make([]tabular.Value, c.Cols)
		for j, col := range cols {
			if col.Type == tabular.Categorical {
				row[j] = tabular.LabelValue(rng.Intn(len(col.Labels)))
			} else {
				row[j] = tabular.NumberValue(col.Min + rng.Float64()*(col.Max-col.Min))
			}
		}
		tbl.Truth[i] = row
	}

	ds := &Dataset{
		Name:             fmt.Sprintf("synthetic-%dx%d", c.Rows, c.Cols),
		Table:            tbl,
		Alpha:            plantDifficulties(rng, c.Rows, c.MeanDifficulty, c.DifficultySpread),
		Beta:             plantDifficulties(rng, c.Cols, 1, c.DifficultySpread),
		Workers:          NewPopulation(rng, c.Population),
		Eps:              c.Eps,
		ContScale:        make([]float64, c.Cols),
		AnswersPerTask:   c.AnswersPerTask,
		RowConfusionBase: 0.08,
		ConfusionFactor:  25,
		RowBiasStd:       0.2,
	}
	for j, col := range cols {
		if col.Type == tabular.Continuous {
			// One standardized noise unit corresponds to 10% of the domain,
			// keeping continuous answer noise visible but not dominant.
			ds.ContScale[j] = (col.Max - col.Min) / 10
		}
	}
	return ds
}

// plantDifficulties draws n positive difficulty factors with the requested
// mean: log-normal shape rescaled so the arithmetic mean is exactly mean.
func plantDifficulties(rng *rand.Rand, n int, mean, spread float64) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = stats.SampleLongTail(rng, 1, spread, 0.05)
		sum += out[i]
	}
	scale := mean * float64(n) / sum
	for i := range out {
		out[i] *= scale
	}
	return out
}
