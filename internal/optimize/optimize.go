// Package optimize implements the first-order optimisation routines used by
// T-Crowd's M-step ("we apply gradient descent to find the values of alpha,
// beta and phi that locally maximize Q", Sec. 4.3 of the paper) and by the
// GLAD baseline.
//
// The package provides plain gradient descent with Armijo backtracking line
// search, a numerical differentiator used to cross-check analytic gradients
// in tests, and a log-space reparameterisation helper that keeps positive
// parameters (variances, difficulties) positive without projection.
package optimize

import (
	"errors"
	"math"
)

// ErrDimension is returned when a gradient or start vector has the wrong
// length.
var ErrDimension = errors.New("optimize: dimension mismatch")

// Func is an objective to be minimised.
type Func func(x []float64) float64

// GradFunc writes the gradient of the objective at x into grad.
type GradFunc func(x, grad []float64)

// FuncGrad evaluates the objective at x AND writes its gradient into grad,
// returning the objective value. Fusing the two lets an implementation make
// a single pass over its data and share expensive subexpressions (T-Crowd's
// M-step shares the erf/log work of the quality model between the value and
// the gradient), which is why MinimizeFused exists alongside Minimize.
type FuncGrad func(x, grad []float64) float64

// Options controls Minimize.
type Options struct {
	// MaxIter bounds the number of outer gradient steps. Default 200.
	MaxIter int
	// GradTol stops when the max-norm of the gradient falls below it.
	// Default 1e-6.
	GradTol float64
	// FuncTol stops when the relative objective improvement falls below
	// it. Default 1e-10.
	FuncTol float64
	// InitStep is the first trial step of each backtracking search.
	// Default 1.0.
	InitStep float64
	// Backtrack is the multiplicative step decay in (0,1). Default 0.5.
	Backtrack float64
	// Armijo is the sufficient-decrease coefficient in (0,1). Default 1e-4.
	Armijo float64
	// MaxBacktracks bounds the inner line search. Default 40.
	MaxBacktracks int
	// AdaptiveStep enables line-search step memory: each iteration's
	// first trial starts at twice the previously accepted step (capped at
	// InitStep) instead of always at InitStep. When the natural step is
	// far below InitStep this removes nearly all backtracking retrials —
	// the dominant cost of objectives with expensive evaluations. Off by
	// default to preserve the exact iterate sequence of existing callers.
	AdaptiveStep bool
	// Work, when non-nil, supplies reusable buffers so MinimizeFused runs
	// allocation-free across repeated calls (one workspace per caller; not
	// safe for concurrent use). Result.X then aliases workspace memory and
	// is only valid until the workspace's next use.
	Work *Workspace
}

// Workspace holds the scratch vectors of a MinimizeFused run so hot callers
// (EM loops re-minimising every iteration) avoid per-call allocations.
type Workspace struct {
	x, g, trial, gTrial []float64
}

// ensure sizes the workspace for an n-dimensional problem.
func (w *Workspace) ensure(n int) {
	if cap(w.x) < n {
		w.x = make([]float64, n)
		w.g = make([]float64, n)
		w.trial = make([]float64, n)
		w.gTrial = make([]float64, n)
	}
	w.x = w.x[:n]
	w.g = w.g[:n]
	w.trial = w.trial[:n]
	w.gTrial = w.gTrial[:n]
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.FuncTol <= 0 {
		o.FuncTol = 1e-10
	}
	if o.InitStep <= 0 {
		o.InitStep = 1.0
	}
	if o.Backtrack <= 0 || o.Backtrack >= 1 {
		o.Backtrack = 0.5
	}
	if o.Armijo <= 0 || o.Armijo >= 1 {
		o.Armijo = 1e-4
	}
	if o.MaxBacktracks <= 0 {
		o.MaxBacktracks = 40
	}
	return o
}

// Result reports the outcome of a minimisation.
type Result struct {
	X         []float64 // minimiser found
	F         float64   // objective at X
	Iters     int       // outer iterations performed
	Converged bool      // true if a tolerance fired before MaxIter
}

// Minimize runs gradient descent with Armijo backtracking from x0 and
// returns the best point found. f must be finite at x0. The input slice is
// not modified.
func Minimize(f Func, grad GradFunc, x0 []float64, opts Options) Result {
	o := opts.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	g := make([]float64, n)
	trial := make([]float64, n)

	fx := f(x)
	res := Result{X: x, F: fx}
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		return res
	}

	lastStep := o.InitStep
	for it := 0; it < o.MaxIter; it++ {
		res.Iters = it + 1
		grad(x, g)
		gnorm := maxNorm(g)
		if gnorm < o.GradTol {
			res.Converged = true
			break
		}
		g2 := dot(g, g)

		step := o.InitStep
		if o.AdaptiveStep && it > 0 {
			step = math.Min(o.InitStep, 2*lastStep)
		}
		improved := false
		for bt := 0; bt < o.MaxBacktracks; bt++ {
			for i := range x {
				trial[i] = x[i] - step*g[i]
			}
			ft := f(trial)
			if !math.IsNaN(ft) && !math.IsInf(ft, 0) && ft <= fx-o.Armijo*step*g2 {
				copy(x, trial)
				lastStep = step
				if relImprovement(fx, ft) < o.FuncTol {
					fx = ft
					res.Converged = true
					improved = true
					break
				}
				fx = ft
				improved = true
				break
			}
			step *= o.Backtrack
		}
		if !improved || res.Converged {
			if !improved {
				// Line search stalled: we are at numerical precision.
				res.Converged = true
			}
			break
		}
	}
	res.F = fx
	res.X = x
	return res
}

// MinimizeFused runs the same Armijo backtracking descent as Minimize but
// built around a fused objective+gradient callback. The first line-search
// trial of each iteration — accepted in the vast majority of steps — is
// evaluated fused, so an accepting iteration makes ONE pass over the data
// instead of Minimize's value pass plus a gradient pass at the next
// iteration. Backtracking retrials use the cheap value-only f (when
// non-nil); if such a trial is accepted, the gradient is recovered by one
// fused call at the start of the next iteration, and a stalled search
// (every trial rejected) never pays for gradients it discards.
//
// The step-acceptance decisions are identical to Minimize's whenever
// f(x) == fg(x, ·) pointwise and both are deterministic: the two routines
// then return the same iterates, objective values, and iteration counts.
//
// With Options.Work set the routine performs no allocations; Result.X then
// aliases the workspace and is only valid until its next use.
func MinimizeFused(fg FuncGrad, f Func, x0 []float64, opts Options) Result {
	o := opts.withDefaults()
	n := len(x0)
	w := o.Work
	if w == nil {
		w = &Workspace{}
	}
	w.ensure(n)
	x, g, trial, gTrial := w.x, w.g, w.trial, w.gTrial
	copy(x, x0)

	fx := fg(x, g)
	gradValid := true
	res := Result{X: x, F: fx}
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		return res
	}

	lastStep := o.InitStep
	for it := 0; it < o.MaxIter; it++ {
		res.Iters = it + 1
		if !gradValid {
			// The previous step was accepted from a value-only trial;
			// one fused call recovers the gradient (the value matches fx).
			fg(x, g)
			gradValid = true
		}
		gnorm := maxNorm(g)
		if gnorm < o.GradTol {
			res.Converged = true
			break
		}
		g2 := dot(g, g)

		step := o.InitStep
		if o.AdaptiveStep && it > 0 {
			step = math.Min(o.InitStep, 2*lastStep)
		}
		improved := false
		for bt := 0; bt < o.MaxBacktracks; bt++ {
			for i := range x {
				trial[i] = x[i] - step*g[i]
			}
			fused := bt == 0 || f == nil
			var ft float64
			if fused {
				ft = fg(trial, gTrial)
			} else {
				ft = f(trial)
			}
			if !math.IsNaN(ft) && !math.IsInf(ft, 0) && ft <= fx-o.Armijo*step*g2 {
				x, trial = trial, x
				lastStep = step
				if fused {
					g, gTrial = gTrial, g
				} else {
					gradValid = false
				}
				if relImprovement(fx, ft) < o.FuncTol {
					fx = ft
					res.Converged = true
					improved = true
					break
				}
				fx = ft
				improved = true
				break
			}
			step *= o.Backtrack
		}
		if !improved || res.Converged {
			if !improved {
				// Line search stalled: we are at numerical precision.
				res.Converged = true
			}
			break
		}
	}
	w.x, w.g, w.trial, w.gTrial = x, g, trial, gTrial
	res.F = fx
	res.X = x
	return res
}

// Maximize runs Minimize on the negated objective. The gradient callback
// must still produce the gradient of f (not -f).
func Maximize(f Func, grad GradFunc, x0 []float64, opts Options) Result {
	neg := func(x []float64) float64 { return -f(x) }
	negGrad := func(x, g []float64) {
		grad(x, g)
		for i := range g {
			g[i] = -g[i]
		}
	}
	res := Minimize(neg, negGrad, x0, opts)
	res.F = -res.F
	return res
}

// NumericalGradient writes the central-difference gradient of f at x into
// grad, using per-coordinate step h*(1+|x_i|). It is the reference
// implementation the analytic gradients are verified against.
func NumericalGradient(f Func, x []float64, h float64, grad []float64) error {
	if len(grad) != len(x) {
		return ErrDimension
	}
	if h <= 0 {
		h = 1e-6
	}
	xx := append([]float64(nil), x...)
	for i := range x {
		hi := h * (1 + math.Abs(x[i]))
		xx[i] = x[i] + hi
		fp := f(xx)
		xx[i] = x[i] - hi
		fm := f(xx)
		xx[i] = x[i]
		grad[i] = (fp - fm) / (2 * hi)
	}
	return nil
}

// PositiveVec maps between a positive parameter vector and its log-space
// representation, so unconstrained descent keeps variances/difficulties
// strictly positive. Bounds guard against numerical blow-up.
type PositiveVec struct {
	// MinLog and MaxLog clamp the log-space coordinates. Defaults span
	// roughly [3e-9, 3e8].
	MinLog, MaxLog float64
}

// DefaultPositiveVec uses log-bounds [-19.5, 19.5].
func DefaultPositiveVec() PositiveVec { return PositiveVec{MinLog: -19.5, MaxLog: 19.5} }

// ToLog writes ln(p) (clamped) into dst and returns it; dst may be nil.
func (pv PositiveVec) ToLog(p, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(p))
	}
	for i, v := range p {
		if v <= 0 {
			dst[i] = pv.MinLog
			continue
		}
		l := math.Log(v)
		if l < pv.MinLog {
			l = pv.MinLog
		} else if l > pv.MaxLog {
			l = pv.MaxLog
		}
		dst[i] = l
	}
	return dst
}

// FromLog writes exp(l) into dst and returns it; dst may be nil.
func (pv PositiveVec) FromLog(l, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(l))
	}
	for i, v := range l {
		if v < pv.MinLog {
			v = pv.MinLog
		} else if v > pv.MaxLog {
			v = pv.MaxLog
		}
		dst[i] = math.Exp(v)
	}
	return dst
}

// ChainRuleLog converts a gradient w.r.t. a positive parameter p into the
// gradient w.r.t. its log-space coordinate: d/d(log p) = p * d/dp.
func ChainRuleLog(p, gradP, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(p))
	}
	for i := range p {
		dst[i] = p[i] * gradP[i]
	}
	return dst
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func maxNorm(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

func relImprovement(old, new float64) float64 {
	return math.Abs(old-new) / (math.Abs(old) + 1)
}
