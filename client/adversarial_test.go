package client

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/internal/platform"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// This file is the adversarial end-to-end suite of the spam-defense work:
// simulated worker personas (honest, random junk, coordinated fast
// deceivers, a sleeper) drive the full /v1 surface through the official
// SDK against a live httptest server, once with the reputation defense on
// and once off, over the SAME pre-drawn answer stream. The defense must
// never touch an honest worker, must quarantine-or-ban the spammers, and
// must buy a pinned accuracy margin on the final estimates.

// apiSchema converts an internal schema to its wire form.
func apiSchema(s tabular.Schema) api.Schema {
	out := api.Schema{Key: s.Key}
	for _, col := range s.Columns {
		ac := api.Column{Name: col.Name, Min: col.Min, Max: col.Max}
		if col.Type == tabular.Categorical {
			ac.Type = "categorical"
			ac.Labels = col.Labels
		} else {
			ac.Type = "continuous"
		}
		out.Columns = append(out.Columns, ac)
	}
	return out
}

// apiAnswer converts a drawn answer plus its work time to the wire form.
func apiAnswer(s tabular.Schema, a tabular.Answer, ms int64) api.Answer {
	col := s.Columns[a.Cell.Col]
	out := api.Answer{
		Worker:     string(a.Worker),
		Row:        a.Cell.Row,
		Column:     col.Name,
		WorkTimeMs: ms,
		Client:     "simulate/1",
	}
	if col.Type == tabular.Categorical {
		l := col.Labels[a.Value.L]
		out.Label = &l
	} else {
		x := a.Value.X
		out.Number = &x
	}
	return out
}

// wireBatch is one worker's batch submission in arrival order.
type wireBatch struct {
	worker  string
	answers []api.Answer
}

// adversarialDataset plants an all-categorical table with a 50%-spam
// population: 1 random junk, 3 coordinated deceivers and 1 sleeper
// against 5 honest workers. Combined with the honest workers' partial
// coverage below, the coordinated bloc outvotes honest consensus on most
// cells — the regime where the undefended model actually gets flipped.
// All-categorical keeps accuracy a clean label-match count.
func adversarialDataset() *simulate.Dataset {
	return simulate.Generate(stats.NewRNG(11), simulate.TableConfig{
		Rows:      30,
		Cols:      3,
		CatRatio:  1,
		MinLabels: 3,
		MaxLabels: 4,
		Population: simulate.PopulationConfig{
			N:                10,
			MedianPhi:        0.12,
			JunkFrac:         0.1,
			DeceiverFrac:     0.3,
			SleeperFrac:      0.1,
			SleeperTurnAfter: 25,
		},
	})
}

// adversarialStream pre-draws the whole submission sequence so the
// defense-on and defense-off runs replay IDENTICAL traffic: cells are
// visited in row-major windows; within each window every worker submits
// its answers for that window as one batch, honest workers first (seeding
// each cell's peer consensus before spammers hit it, as task-ordered
// collection does). Honest workers cover ~60% of cells; spam personas
// blanket everything — full coverage is what makes the attack hurt.
func adversarialStream(ds *simulate.Dataset, seed int64) []wireBatch {
	cr := simulate.NewCrowd(ds, seed)
	cov := stats.NewRNG(seed + 1)
	rows, cols := ds.Table.NumRows(), ds.Table.NumCols()
	var cells []tabular.Cell
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			cells = append(cells, tabular.Cell{Row: i, Col: j})
		}
	}
	var order []int
	for i := range ds.Workers {
		if ds.Workers[i].Persona == simulate.Honest {
			order = append(order, i)
		}
	}
	for i := range ds.Workers {
		if ds.Workers[i].Persona != simulate.Honest {
			order = append(order, i)
		}
	}
	const window = 6
	var out []wireBatch
	for at := 0; at < len(cells); at += window {
		win := cells[at:min(at+window, len(cells))]
		for _, wi := range order {
			w := &ds.Workers[wi]
			var batch []api.Answer
			for _, c := range win {
				if w.Persona == simulate.Honest && cov.Float64() > 0.45 {
					continue
				}
				a, ms := cr.AnswerMeta(w, c)
				batch = append(batch, apiAnswer(ds.Table.Schema, a, ms))
			}
			if len(batch) > 0 {
				out = append(out, wireBatch{worker: string(w.ID), answers: batch})
			}
		}
	}
	return out
}

// runAdversarial replays the stream through the SDK against a fresh
// server with the defense on or off, tolerating only worker_banned
// rejections of spam personas, and returns the final fresh-read accuracy
// plus which workers got rejected along the way.
func runAdversarial(t *testing.T, ds *simulate.Dataset, stream []wireBatch, defense bool) (*Client, string, float64, map[string]bool) {
	t.Helper()
	c, _ := newTestServer(t)
	ctx := context.Background()
	id := fmt.Sprintf("adv-defense-%v", defense)
	if err := c.CreateProject(ctx, api.CreateProjectRequest{
		ID:           id,
		Schema:       apiSchema(ds.Table.Schema),
		Rows:         ds.Table.NumRows(),
		RefreshEvery: 40,
		Reputation:   defense,
	}); err != nil {
		t.Fatal(err)
	}
	rejected := make(map[string]bool)
	for _, b := range stream {
		if rejected[b.worker] {
			continue // a real client stops hammering after a 403
		}
		if _, err := c.SubmitAnswers(ctx, id, b.answers); err != nil {
			w := ds.WorkerByID(tabular.WorkerID(b.worker))
			if !IsWorkerBanned(err) || w == nil || w.Persona == simulate.Honest {
				t.Fatalf("defense=%v: worker %s rejected: %v", defense, b.worker, err)
			}
			rejected[b.worker] = true
		}
	}

	// Strongly consistent read: every accepted answer is reflected.
	est, err := c.AllEstimates(ctx, id, 64, EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatalf("defense=%v: estimates: %v", defense, err)
	}
	colIdx := make(map[string]int)
	for j, col := range ds.Table.Schema.Columns {
		colIdx[col.Name] = j
	}
	matched, total := 0, 0
	for _, e := range est.Estimates {
		if e.Label == nil {
			continue
		}
		var row int
		if _, err := fmt.Sscanf(e.Entity, "entity-%d", &row); err != nil {
			t.Fatalf("unparseable entity %q", e.Entity)
		}
		j := colIdx[e.Column]
		truth := ds.Table.TruthAt(tabular.Cell{Row: row - 1, Col: j})
		total++
		if ds.Table.Schema.Columns[j].Labels[truth.L] == *e.Label {
			matched++
		}
	}
	if total == 0 {
		t.Fatalf("defense=%v: no categorical estimates", defense)
	}
	return c, id, float64(matched) / float64(total), rejected
}

// TestAdversarialSpamDefenseEndToEnd is the headline acceptance test:
// same spam-laced traffic, defense on vs off, through the real wire.
func TestAdversarialSpamDefenseEndToEnd(t *testing.T) {
	ds := adversarialDataset()
	stream := adversarialStream(ds, 29)
	ctx := context.Background()

	cOff, idOff, accOff, rejOff := runAdversarial(t, ds, stream, false)
	if len(rejOff) != 0 {
		t.Fatalf("defense off rejected workers: %v", rejOff)
	}
	respOff, err := cOff.Workers(ctx, idOff)
	if err != nil || respOff.Defense {
		t.Fatalf("defense-off roster: %+v %v", respOff, err)
	}

	cOn, idOn, accOn, rejOn := runAdversarial(t, ds, stream, true)
	t.Logf("accuracy: defense off %.3f, on %.3f; banned on-wire: %v", accOff, accOn, rejOn)

	// The defense must buy a real accuracy margin on identical traffic.
	if accOn < accOff+0.10 {
		t.Fatalf("defense accuracy %.3f < off %.3f + 0.10 margin", accOn, accOff)
	}
	// At least one spammer must have hit the wire-level ban while the
	// stream was still flowing.
	if len(rejOn) == 0 {
		t.Fatal("no worker was banned on the wire with the defense on")
	}

	// Roster: honest workers untouched, junk and deceivers all
	// quarantined or banned (the sleeper's verdict depends on how soon it
	// turned; it must at least not be fully trusted anymore).
	resp, err := cOn.Workers(ctx, idOn)
	if err != nil || !resp.Defense {
		t.Fatalf("defense-on roster: %+v %v", resp, err)
	}
	states := make(map[string]string)
	for _, wr := range resp.Workers {
		states[wr.Worker] = wr.State
	}
	banned := ""
	for _, w := range ds.Workers {
		st := states[string(w.ID)]
		switch w.Persona {
		case simulate.Honest:
			if st != "active" {
				t.Errorf("honest worker %s not active: %q", w.ID, st)
			}
		case simulate.RandomJunk, simulate.FastDeceiver:
			if st != "quarantined" && st != "banned" {
				t.Errorf("spammer %s escaped: state %q", w.ID, st)
			}
			if st == "banned" {
				banned = string(w.ID)
			}
		case simulate.Sleeper:
			if st == "" {
				t.Errorf("sleeper %s missing from roster", w.ID)
			}
		}
	}
	if banned == "" {
		t.Fatal("no junk/deceiver reached the ban")
	}

	// Task assignment is gated: the banned worker gets the typed 403,
	// honest workers still get served without error.
	if _, err := cOn.Tasks(ctx, idOn, banned, 1); !IsWorkerBanned(err) {
		t.Fatalf("banned worker task request: %v", err)
	}
	var honest string
	for _, w := range ds.Workers {
		if w.Persona == simulate.Honest {
			honest = string(w.ID)
			break
		}
	}
	if _, err := cOn.Tasks(ctx, idOn, honest, 1); err != nil {
		t.Fatalf("honest worker task request: %v", err)
	}
}

// TestRateLimitEndToEnd drives the per-worker token buckets over the real
// wire: typed 429 with Retry-After once the burst is spent, all-or-nothing
// charging for atomic batches, per-worker isolation, and the SDK's
// automatic backoff-and-retry path.
func TestRateLimitEndToEnd(t *testing.T) {
	p := platform.New(7)
	h := platform.NewServer(p)
	h.SetRateLimiter(platform.NewRateLimiter(platform.RateLimiterConfig{Rate: 2, Burst: 3}))
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); p.Close() })
	c := New(srv.URL, WithMaxRetries(0)) // surface 429s instead of retrying
	ctx := context.Background()

	if err := c.CreateProject(ctx, api.CreateProjectRequest{ID: "lim", Schema: schema(), Rows: 50}); err != nil {
		t.Fatal(err)
	}

	// Burst of 3 accepted, 4th answers a typed retryable 429.
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitAnswer(ctx, "lim", api.LabelAnswer("w1", i, "category", "book")); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := c.SubmitAnswer(ctx, "lim", api.LabelAnswer("w1", 3, "category", "book"))
	ae := asAPIError(t, err)
	if ae.Status != 429 || ae.Code != api.CodeRateLimited || !ae.Retryable || ae.RetryAfter < time.Second {
		t.Fatalf("over-limit submit: %+v", ae)
	}
	// Task requests draw from the same bucket.
	if _, err := c.Tasks(ctx, "lim", "w1", 1); asAPIError(t, err).Code != api.CodeRateLimited {
		t.Fatalf("over-limit tasks: %v", err)
	}
	// Another worker's bucket is untouched.
	if _, err := c.Tasks(ctx, "lim", "w2", 1); err != nil {
		t.Fatalf("independent worker throttled: %v", err)
	}

	// Atomic batch, atomic charge: a 4-answer batch exceeds w3's burst of
	// 3 and is refused — but charges nothing, so a 3-answer batch still
	// fits afterwards.
	big := []api.Answer{
		api.LabelAnswer("w3", 0, "category", "book"),
		api.LabelAnswer("w3", 1, "category", "book"),
		api.LabelAnswer("w3", 2, "category", "book"),
		api.LabelAnswer("w3", 3, "category", "book"),
	}
	if _, err := c.SubmitAnswers(ctx, "lim", big); asAPIError(t, err).Code != api.CodeRateLimited {
		t.Fatalf("oversize batch: %v", err)
	}
	if _, err := c.SubmitAnswers(ctx, "lim", big[:3]); err != nil {
		t.Fatalf("refused batch was charged anyway: %v", err)
	}

	// The default SDK config handles the 429 itself: honour Retry-After,
	// back off, succeed.
	retrying := New(srv.URL)
	if _, err := retrying.SubmitAnswer(ctx, "lim", api.LabelAnswer("w3", 4, "category", "book")); err != nil {
		t.Fatalf("SDK auto-retry after 429: %v", err)
	}
}

func asAPIError(t *testing.T, err error) *APIError {
	t.Helper()
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	return ae
}
