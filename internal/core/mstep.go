package core

import (
	"math"

	"tcrowd/internal/optimize"
	"tcrowd/internal/stats"
)

// mStep maximises Q(alpha, beta, phi) (Eq. 5) by gradient ascent over the
// log-parameters, holding the posteriors fixed. In log space the chain rule
// gives the same per-answer contribution s * dQ_a/ds to d/dlog(alpha_i),
// d/dlog(beta_j) and d/dlog(phi_u), so one pass over the answers yields the
// full gradient — the M-step is O(|A|) per gradient evaluation as analysed
// at the end of Sec. 4.3.
func (m *Model) mStep() {
	pv := optimize.DefaultPositiveVec()
	n, mm, u := len(m.Alpha), len(m.Beta), len(m.Phi)

	fixed := m.Opts.FixDifficulty
	dim := u
	if !fixed {
		dim += n + mm
	}
	theta0 := make([]float64, dim)
	if fixed {
		pv.ToLog(m.Phi, theta0)
	} else {
		pv.ToLog(m.Alpha, theta0[:n])
		pv.ToLog(m.Beta, theta0[n:n+mm])
		pv.ToLog(m.Phi, theta0[n+mm:])
	}

	// split maps a theta vector to (alpha, beta, phi) views without copies.
	alpha := make([]float64, n)
	beta := make([]float64, mm)
	phi := make([]float64, u)
	split := func(theta []float64) {
		if fixed {
			copy(alpha, m.Alpha)
			copy(beta, m.Beta)
			pv.FromLog(theta, phi)
			return
		}
		pv.FromLog(theta[:n], alpha)
		pv.FromLog(theta[n:n+mm], beta)
		pv.FromLog(theta[n+mm:], phi)
	}

	negQ := func(theta []float64) float64 {
		split(theta)
		return -m.qValue(alpha, beta, phi)
	}
	negGrad := func(theta, grad []float64) {
		split(theta)
		ga, gb, gp := m.qGradLog(alpha, beta, phi)
		k := 0
		if !fixed {
			for i := 0; i < n; i++ {
				grad[k] = -ga[i]
				k++
			}
			for j := 0; j < mm; j++ {
				grad[k] = -gb[j]
				k++
			}
		}
		for w := 0; w < u; w++ {
			grad[k] = -gp[w]
			k++
		}
	}

	res := optimize.Minimize(negQ, negGrad, theta0, optimize.Options{
		MaxIter:  m.Opts.MStepIter,
		GradTol:  1e-7,
		InitStep: 0.5,
	})
	split(res.X)
	copy(m.Phi, phi)
	if !fixed {
		copy(m.Alpha, alpha)
		copy(m.Beta, beta)
	}
}

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 1
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// paramLogPrior returns the log-density of the parameter priors: a weak
// inverse-gamma on each phi_u and N(0, sigma^2) shrinkage on ln(alpha_i),
// ln(beta_j). Constant offsets are dropped.
func (m *Model) paramLogPrior(alpha, beta, phi []float64) float64 {
	o := m.Opts
	lp := 0.0
	for _, p := range phi {
		lp += -(o.PhiPriorA+1)*math.Log(p) - o.PhiPriorB/p
	}
	s2 := o.DiffPriorSigma * o.DiffPriorSigma
	if !o.FixDifficulty {
		for _, a := range alpha {
			la := math.Log(a)
			lp -= la * la / (2 * s2)
		}
		for _, b := range beta {
			lb := math.Log(b)
			lp -= lb * lb / (2 * s2)
		}
	}
	return lp
}

// qValue evaluates the MAP objective: Q (Eq. 5) plus the parameter
// log-priors, posteriors fixed. Truth-prior terms are constant w.r.t. the
// parameters and omitted.
func (m *Model) qValue(alpha, beta, phi []float64) float64 {
	if w := m.effectiveParallelism(); w > 1 {
		return m.qValueParallel(alpha, beta, phi, w)
	}
	return m.paramLogPrior(alpha, beta, phi) + m.qValueRange(alpha, beta, phi, 0, len(m.ans))
}

// qValueRange evaluates the data term of Q over the answer range [lo, hi).
func (m *Model) qValueRange(alpha, beta, phi []float64, lo, hi int) float64 {
	q := 0.0
	for idx := lo; idx < hi; idx++ {
		a := &m.ans[idx]
		s := stats.Clamp(alpha[a.i]*beta[a.j]*phi[a.w], minS, maxS)
		if a.isCat {
			post := m.CatPost[a.i][a.j]
			l := len(post)
			lnQ, lnNotQ := logQ(m.Opts.Eps, s)
			p := post[a.label]
			q += p*lnQ + (1-p)*(lnNotQ-math.Log(float64(l-1)))
		} else {
			mu, v := m.ContMu[a.i][a.j], m.ContVar[a.i][a.j]
			d := a.z - mu
			q += -0.5*math.Log(2*math.Pi*s) - (d*d+v)/(2*s)
		}
	}
	return q
}

// qGradLog returns dQ/dlog(alpha), dQ/dlog(beta), dQ/dlog(phi). Each answer
// contributes the same scalar g = s * dQ_a/ds to all three of its
// coordinates.
//
// Continuous (from Eq. 5): s*d/ds[-ln(2 pi s)/2 - (d^2+v)/(2s)]
// = -1/2 + (d^2+v)/(2s).
//
// Categorical: with x = eps/sqrt(2 s) and g(s) = erf(x),
// dg/ds = -(x/(sqrt(pi))) e^{-x^2} / s, so
// s*dQ_a/ds = (x e^{-x^2}/sqrt(pi)) * [(1-p)/(1-g) - p/g], evaluated in log
// space so the q -> 1 and q -> 0 tails stay finite.
func (m *Model) qGradLog(alpha, beta, phi []float64) (ga, gb, gp []float64) {
	if w := m.effectiveParallelism(); w > 1 {
		return m.qGradLogParallel(alpha, beta, phi, w)
	}
	ga = make([]float64, len(alpha))
	gb = make([]float64, len(beta))
	gp = make([]float64, len(phi))
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	m.qGradLogRange(alpha, beta, phi, 0, len(m.ans), ga, gb, gp)
	return ga, gb, gp
}

// priorGradLog accumulates the parameter-prior gradients in log space.
func (m *Model) priorGradLog(alpha, beta, phi, ga, gb, gp []float64) {
	o := m.Opts
	for k, p := range phi {
		gp[k] += -(o.PhiPriorA + 1) + o.PhiPriorB/p
	}
	if !o.FixDifficulty {
		s2 := o.DiffPriorSigma * o.DiffPriorSigma
		for i, a := range alpha {
			ga[i] -= math.Log(a) / s2
		}
		for j, b := range beta {
			gb[j] -= math.Log(b) / s2
		}
	}
}

// qGradLogRange accumulates the data-term gradients for answers [lo, hi).
func (m *Model) qGradLogRange(alpha, beta, phi []float64, lo, hi int, ga, gb, gp []float64) {
	for idx := lo; idx < hi; idx++ {
		a := &m.ans[idx]
		s := alpha[a.i] * beta[a.j] * phi[a.w]
		clamped := s < minS || s > maxS
		s = stats.Clamp(s, minS, maxS)
		var g float64
		if a.isCat {
			p := m.CatPost[a.i][a.j][a.label]
			x := m.Opts.Eps / math.Sqrt(2*s)
			lnD := math.Log(x/math.SqrtPi) - x*x
			lnQ, lnNotQ := logQ(m.Opts.Eps, s)
			termA := 0.0
			if p > 0 {
				termA = math.Exp(math.Log(p) + lnD - lnQ)
			}
			termB := 0.0
			if p < 1 {
				termB = math.Exp(math.Log(1-p) + lnD - lnNotQ)
			}
			g = termB - termA
		} else {
			mu, v := m.ContMu[a.i][a.j], m.ContVar[a.i][a.j]
			d := a.z - mu
			g = -0.5 + (d*d+v)/(2*s)
		}
		if clamped {
			// At the variance clamp the objective is flat; do not push
			// parameters further out.
			g = 0
		}
		ga[a.i] += g
		gb[a.j] += g
		gp[a.w] += g
	}
}
