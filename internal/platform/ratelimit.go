package platform

import (
	"math"
	"sync"
	"time"
)

// RateLimiterConfig sizes the per-worker token buckets. One token is one
// answer submitted or one task-request call; Rate is the steady-state
// refill in tokens per second and Burst the bucket capacity (how much a
// worker can front-load after an idle stretch).
type RateLimiterConfig struct {
	// Rate is the refill rate in tokens per second (required, > 0).
	Rate float64
	// Burst is the bucket capacity (default: max(Rate, 1)).
	Burst float64
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// RateLimiter is a per-worker token-bucket limiter: lazily created
// buckets keyed by worker ID, refilled continuously at Rate tokens/sec up
// to Burst. A nil *RateLimiter means no limiting (every check allows).
//
// Spam defense context: the reputation engine needs a handful of answers
// before it can judge a worker, so a throwaway identity gets a free
// burst. The rate limit bounds how fast that burst can be spent, which
// bounds the damage-per-second of identity cycling — the two defenses
// compose rather than overlap.
type RateLimiter struct {
	mu      sync.Mutex
	cfg     RateLimiterConfig
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter; rate <= 0 returns nil (disabled).
func NewRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.Rate, 1)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &RateLimiter{cfg: cfg, buckets: make(map[string]*tokenBucket)}
}

// Allow takes one token from key's bucket. See TakeAll for semantics.
func (l *RateLimiter) Allow(key string) (bool, time.Duration) {
	return l.TakeAll(map[string]float64{key: 1})
}

// TakeAll atomically takes tokens from several buckets: either every
// bucket has capacity and all tokens are deducted, or nothing is deducted
// and the wait until the scarcest bucket could satisfy its demand is
// returned (for Retry-After). All-or-nothing matches atomic batch
// submission: a rejected batch records nothing, so it must charge
// nothing. A demand above Burst can never be satisfied by waiting and is
// always refused (the client must split the batch); the reported wait is
// then the time to a full bucket rather than a nonsense duration.
func (l *RateLimiter) TakeAll(demand map[string]float64) (bool, time.Duration) {
	if l == nil || len(demand) == 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Now()
	var wait time.Duration
	short := false
	for key, n := range demand {
		b := l.buckets[key]
		if b == nil {
			b = &tokenBucket{tokens: l.cfg.Burst, last: now}
			l.buckets[key] = b
		} else {
			b.tokens = math.Min(l.cfg.Burst, b.tokens+now.Sub(b.last).Seconds()*l.cfg.Rate)
			b.last = now
		}
		if n > l.cfg.Burst || b.tokens < n {
			short = true
			need := math.Min(n, l.cfg.Burst) - b.tokens
			if w := time.Duration(need / l.cfg.Rate * float64(time.Second)); w > wait {
				wait = w
			}
		}
	}
	if short {
		return false, wait
	}
	for key, n := range demand {
		l.buckets[key].tokens -= n
	}
	return true, 0
}

// retryAfterSecs rounds a wait up to whole seconds for the Retry-After
// header, minimum 1.
func retryAfterSecs(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
