package tabular

import (
	"fmt"
	"sort"
)

// WorkerID identifies a crowd worker.
type WorkerID string

// Answer is one observation a^u_ij: worker u's value for cell c_ij
// (Definition 2 of the paper).
type Answer struct {
	Worker WorkerID
	Cell   Cell
	Value  Value
}

// AnswerLog is the append-only set A of all collected answers, indexed both
// by cell (for the E-step, which needs A_ij) and by worker (for the M-step
// and the per-worker error histories of the correlation model).
//
// The zero value is not usable; call NewAnswerLog.
type AnswerLog struct {
	all      []Answer
	byCell   map[Cell][]int
	byWorker map[WorkerID][]int
	workers  []WorkerID // insertion-ordered unique workers
}

// NewAnswerLog returns an empty log.
func NewAnswerLog() *AnswerLog {
	return &AnswerLog{
		byCell:   make(map[Cell][]int),
		byWorker: make(map[WorkerID][]int),
	}
}

// Add appends an answer.
func (l *AnswerLog) Add(a Answer) {
	idx := len(l.all)
	l.all = append(l.all, a)
	l.byCell[a.Cell] = append(l.byCell[a.Cell], idx)
	if _, seen := l.byWorker[a.Worker]; !seen {
		l.workers = append(l.workers, a.Worker)
	}
	l.byWorker[a.Worker] = append(l.byWorker[a.Worker], idx)
}

// AddAll appends every answer in as.
func (l *AnswerLog) AddAll(as []Answer) {
	for _, a := range as {
		l.Add(a)
	}
}

// Len returns |A|.
func (l *AnswerLog) Len() int { return len(l.all) }

// All returns the backing slice of answers in insertion order. The caller
// must not modify it.
func (l *AnswerLog) All() []Answer { return l.all }

// At returns the i-th answer in insertion order.
func (l *AnswerLog) At(i int) Answer { return l.all[i] }

// ByCell returns the answers A_ij for one cell, in insertion order. The
// returned slice is freshly allocated.
func (l *AnswerLog) ByCell(c Cell) []Answer {
	idxs := l.byCell[c]
	out := make([]Answer, len(idxs))
	for k, i := range idxs {
		out[k] = l.all[i]
	}
	return out
}

// CountByCell returns |A_ij| without allocating.
func (l *AnswerLog) CountByCell(c Cell) int { return len(l.byCell[c]) }

// CellIndices returns the indices (into All / At) of the answers on cell c,
// in insertion order — the zero-allocation counterpart of ByCell for hot
// paths that only walk a cell's answers. The returned slice is the log's
// internal index: callers must not mutate it and must not retain it across
// appends.
func (l *AnswerLog) CellIndices(c Cell) []int { return l.byCell[c] }

// ByWorker returns all answers by worker u, in insertion order.
func (l *AnswerLog) ByWorker(u WorkerID) []Answer {
	idxs := l.byWorker[u]
	out := make([]Answer, len(idxs))
	for k, i := range idxs {
		out[k] = l.all[i]
	}
	return out
}

// CountByWorker returns the number of answers worker u has given.
func (l *AnswerLog) CountByWorker(u WorkerID) int { return len(l.byWorker[u]) }

// Workers returns the distinct workers in first-seen order. The returned
// slice is freshly allocated.
func (l *AnswerLog) Workers() []WorkerID {
	return append([]WorkerID(nil), l.workers...)
}

// NumWorkers returns the number of distinct workers.
func (l *AnswerLog) NumWorkers() int { return len(l.workers) }

// HasAnswered reports whether worker u already answered cell c. Task
// assignment must never hand the same cell to the same worker twice.
func (l *AnswerLog) HasAnswered(u WorkerID, c Cell) bool {
	for _, i := range l.byWorker[u] {
		if l.all[i].Cell == c {
			return true
		}
	}
	return false
}

// WorkerAnswerIn returns worker u's answer in row i on column j, if any.
func (l *AnswerLog) WorkerAnswerIn(u WorkerID, c Cell) (Answer, bool) {
	for _, i := range l.byWorker[u] {
		if l.all[i].Cell == c {
			return l.all[i], true
		}
	}
	return Answer{}, false
}

// RowAnswersByWorker returns the cells in row i that worker u has answered,
// with their answers — the set L^u_i of Eq. 7.
func (l *AnswerLog) RowAnswersByWorker(u WorkerID, row int) []Answer {
	var out []Answer
	for _, i := range l.byWorker[u] {
		if l.all[i].Cell.Row == row {
			out = append(out, l.all[i])
		}
	}
	return out
}

// AvgAnswersPerCell returns |A| divided by the number of distinct answered
// cells (the x-axis of the paper's Fig. 2/5 convergence plots uses budget /
// #tasks; this helper reports the realised average).
func (l *AnswerLog) AvgAnswersPerCell() float64 {
	if len(l.byCell) == 0 {
		return 0
	}
	return float64(len(l.all)) / float64(len(l.byCell))
}

// Clone returns a deep, independent copy of the log.
func (l *AnswerLog) Clone() *AnswerLog {
	out := NewAnswerLog()
	out.all = append([]Answer(nil), l.all...)
	for c, idxs := range l.byCell {
		out.byCell[c] = append([]int(nil), idxs...)
	}
	for w, idxs := range l.byWorker {
		out.byWorker[w] = append([]int(nil), idxs...)
	}
	out.workers = append([]WorkerID(nil), l.workers...)
	return out
}

// Validate checks every answer against the table schema and bounds.
func (l *AnswerLog) Validate(t *Table) error {
	for i, a := range l.all {
		if a.Cell.Row < 0 || a.Cell.Row >= t.NumRows() || a.Cell.Col < 0 || a.Cell.Col >= t.NumCols() {
			return fmt.Errorf("tabular: answer %d addresses %v outside %dx%d table", i, a.Cell, t.NumRows(), t.NumCols())
		}
		if a.Worker == "" {
			return fmt.Errorf("tabular: answer %d has empty worker id", i)
		}
		if err := a.Value.CheckAgainst(t.Schema.Columns[a.Cell.Col]); err != nil {
			return fmt.Errorf("tabular: answer %d: %w", i, err)
		}
	}
	return nil
}

// SortedWorkers returns worker ids sorted lexicographically; used where
// deterministic iteration over map-backed state matters (reports, tests).
func (l *AnswerLog) SortedWorkers() []WorkerID {
	ws := l.Workers()
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}

// CellsAnswered returns the distinct cells with at least one answer, in
// row-major order.
func (l *AnswerLog) CellsAnswered() []Cell {
	out := make([]Cell, 0, len(l.byCell))
	for c := range l.byCell {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Row != out[b].Row {
			return out[a].Row < out[b].Row
		}
		return out[a].Col < out[b].Col
	})
	return out
}
