package baselines

import (
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// MajorityVote estimates each categorical cell as the most voted label
// (ties broken toward the lowest label index for determinism). Continuous
// cells are not estimated.
type MajorityVote struct{}

// Name implements Method.
func (MajorityVote) Name() string { return "Majority Voting" }

// Infer implements Method.
func (MajorityVote) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	est := metrics.NewEstimates(tbl)
	for _, j := range catColumns(tbl) {
		k := tbl.Schema.Columns[j].NumLabels()
		for i := 0; i < tbl.NumRows(); i++ {
			as := log.ByCell(tabular.Cell{Row: i, Col: j})
			if len(as) == 0 {
				continue
			}
			counts := make([]float64, k)
			for _, a := range as {
				counts[a.Value.L]++
			}
			est[i][j] = tabular.LabelValue(argMax(counts))
		}
	}
	return est, nil
}

// Median estimates each continuous cell as the median of its answers.
// Categorical cells are not estimated.
type Median struct{}

// Name implements Method.
func (Median) Name() string { return "Median" }

// Infer implements Method.
func (Median) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	est := metrics.NewEstimates(tbl)
	for _, j := range contColumns(tbl) {
		for i := 0; i < tbl.NumRows(); i++ {
			as := log.ByCell(tabular.Cell{Row: i, Col: j})
			if len(as) == 0 {
				continue
			}
			xs := make([]float64, len(as))
			for k, a := range as {
				xs[k] = a.Value.X
			}
			est[i][j] = tabular.NumberValue(stats.Median(xs))
		}
	}
	return est, nil
}

func argMax(p []float64) int {
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}
