package baselines

import (
	"math"

	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// CRH (Li et al., SIGMOD'14) resolves conflicts in heterogeneous data by
// minimising a weighted loss: iterate (1) truth update — weighted vote for
// categorical cells, weighted mean for continuous cells (distances
// normalised per column by the answers' std) — and (2) worker weight update
// w_u = ln(sum of all losses / loss_u).
type CRH struct {
	// MaxIter bounds the alternating iterations (default 30).
	MaxIter int
}

// Name implements Method.
func (CRH) Name() string { return "CRH" }

// Infer implements Method.
func (c CRH) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	maxIter := c.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	st := newHeteroState(tbl, log)
	if len(st.obs) == 0 {
		return metrics.NewEstimates(tbl), nil
	}

	for it := 0; it < maxIter; it++ {
		st.updateTruth()
		// Per-worker loss.
		loss := make([]float64, len(st.workerIDs))
		for _, o := range st.obs {
			loss[o.w] += st.distance(o)
		}
		total := stats.Sum(loss) + 1e-12
		delta := 0.0
		for w := range loss {
			nw := math.Log(total / (loss[w] + 1e-9))
			if d := math.Abs(nw - st.weight[w]); d > delta {
				delta = d
			}
			st.weight[w] = nw
		}
		if delta < 1e-7 && it > 0 {
			break
		}
	}
	st.updateTruth()
	return st.estimates(), nil
}

// heteroObs is a decoded answer for the weighted truth-discovery methods.
type heteroObs struct {
	w, i, j int
	isCat   bool
	label   int
	z       float64 // standardized continuous value
}

// heteroState is the shared machinery of CRH and CATD: decoded answers,
// standardisation constants, per-worker weights and current truth.
type heteroState struct {
	tbl       *tabular.Table
	obs       []heteroObs
	workerIDs []tabular.WorkerID
	weight    []float64
	byCell    map[[2]int][]int
	colMean   []float64
	colStd    []float64
	// current truth per cell.
	catTruth  map[[2]int]int
	contTruth map[[2]int]float64
}

func newHeteroState(tbl *tabular.Table, log *tabular.AnswerLog) *heteroState {
	st := &heteroState{
		tbl:       tbl,
		byCell:    map[[2]int][]int{},
		colMean:   make([]float64, tbl.NumCols()),
		colStd:    make([]float64, tbl.NumCols()),
		catTruth:  map[[2]int]int{},
		contTruth: map[[2]int]float64{},
	}
	perCol := make([][]float64, tbl.NumCols())
	for _, a := range log.All() {
		if a.Value.Kind == tabular.Number {
			perCol[a.Cell.Col] = append(perCol[a.Cell.Col], a.Value.X)
		}
	}
	for j := range st.colStd {
		st.colStd[j] = 1
		if len(perCol[j]) > 0 {
			m, v := stats.MeanVariance(perCol[j])
			st.colMean[j] = m
			if v > 1e-12 {
				st.colStd[j] = math.Sqrt(v)
			}
		}
	}
	workerIdx := map[tabular.WorkerID]int{}
	for _, a := range log.All() {
		w, ok := workerIdx[a.Worker]
		if !ok {
			w = len(st.workerIDs)
			workerIdx[a.Worker] = w
			st.workerIDs = append(st.workerIDs, a.Worker)
		}
		o := heteroObs{w: w, i: a.Cell.Row, j: a.Cell.Col}
		if a.Value.Kind == tabular.Label {
			o.isCat = true
			o.label = a.Value.L
		} else {
			o.z = stats.Standardize(a.Value.X, st.colMean[a.Cell.Col], st.colStd[a.Cell.Col])
		}
		key := [2]int{a.Cell.Row, a.Cell.Col}
		st.byCell[key] = append(st.byCell[key], len(st.obs))
		st.obs = append(st.obs, o)
	}
	st.weight = make([]float64, len(st.workerIDs))
	for w := range st.weight {
		st.weight[w] = 1
	}
	return st
}

// updateTruth recomputes the weighted vote / weighted mean per cell.
func (st *heteroState) updateTruth() {
	for key, idxs := range st.byCell {
		first := st.obs[idxs[0]]
		if first.isCat {
			counts := make([]float64, st.tbl.Schema.Columns[key[1]].NumLabels())
			for _, idx := range idxs {
				o := st.obs[idx]
				counts[o.label] += math.Max(st.weight[o.w], 1e-9)
			}
			st.catTruth[key] = argMax(counts)
		} else {
			num, den := 0.0, 0.0
			for _, idx := range idxs {
				o := st.obs[idx]
				w := math.Max(st.weight[o.w], 1e-9)
				num += w * o.z
				den += w
			}
			if den > 0 {
				st.contTruth[key] = num / den
			}
		}
	}
}

// distance is the per-answer loss: 0/1 for categorical, squared
// standardized distance for continuous.
func (st *heteroState) distance(o heteroObs) float64 {
	key := [2]int{o.i, o.j}
	if o.isCat {
		if st.catTruth[key] == o.label {
			return 0
		}
		return 1
	}
	d := o.z - st.contTruth[key]
	return d * d
}

func (st *heteroState) estimates() metrics.Estimates {
	est := metrics.NewEstimates(st.tbl)
	for key, l := range st.catTruth {
		est[key[0]][key[1]] = tabular.LabelValue(l)
	}
	for key, z := range st.contTruth {
		est[key[0]][key[1]] = tabular.NumberValue(stats.Unstandardize(z, st.colMean[key[1]], st.colStd[key[1]]))
	}
	return est
}
