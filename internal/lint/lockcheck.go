package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// LockCheck enforces the suite's lock contracts: annotated fields are
// only touched with their mutex held, annotated functions are only
// called with their mutex held (and analyze with it held at entry), and
// declared lock orders are respected.
//
// Annotations (field doc/trailing comment, function doc):
//
//	//tcrowd:guardedby mu            // field: sibling mutex on the struct
//	//tcrowd:guardedby Platform.mu   // field: mutex on another type
//	//tcrowd:locked mu               // func: caller holds receiver's mu
//	//tcrowd:locked Platform.mu      // func: caller holds Platform's mu
//
// The legacy prose forms "guarded by <mu>" and "Caller holds <mu>" parse
// to the same contracts, so the comments the codebase already carries
// are machine-checked without rewriting them.
//
// Package-level lock-order directives live in the package comment:
//
//	//tcrowd:lockorder Project.assignMu < Platform.mu
//
// meaning assignMu is acquired before mu: taking Project.assignMu while
// Platform.mu is held is a violation.
//
// The analysis is intra-procedural and deliberately conservative in what
// it tracks: Lock/RLock add a mutex to the held set, Unlock/RUnlock
// remove it, deferred unlocks keep it held to the end of the function,
// locks taken inside a branch do not survive the branch, and the
// "if x.TryLock() { ... }" / "if !x.TryLock() { return }" idioms are
// recognized. A held mutex satisfies a contract when either the guarding
// expression matches textually ("proj.assignMu" locked, "proj.assignAt"
// touched) or the mutex's owning type matches the annotation — the type
// match keeps aliased receivers (p vs proj) from raising false alarms at
// the cost of not distinguishing two instances of one type.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "reports accesses to guarded fields and calls to locked functions without the contracted mutex held",
	Run:  runLockCheck,
}

// guardSpec is one resolved lock contract: the mutex field name and the
// name of the type that owns it.
type guardSpec struct {
	mu    string
	owner string
	// structName is the type the annotation sits on (for messages).
	structName string
	// member is the annotated field/function name (for messages).
	member string
}

func (g guardSpec) guardName() string {
	if g.owner == "" {
		return g.mu
	}
	return g.owner + "." + g.mu
}

// heldKey identifies one held mutex: the rendered base expression it was
// locked through ("proj" for proj.assignMu.Lock), the mutex field name,
// and the owning type's bare name.
type heldKey struct {
	base string
	mu   string
	typ  string
}

type heldSet map[heldKey]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// satisfied reports whether some held mutex discharges a contract on
// muName owned by ownerType, accessed through baseRender ("" when the
// access has no usable base expression).
func (h heldSet) satisfied(muName, ownerType, baseRender string) bool {
	for k := range h {
		if k.mu != muName {
			continue
		}
		if baseRender != "" && k.base == baseRender {
			return true
		}
		if ownerType != "" && k.typ == ownerType {
			return true
		}
	}
	return false
}

// lockOrder declares that (firstOwner.firstMu) is acquired before
// (thenOwner.thenMu): taking first while then is held is a violation.
type lockOrder struct {
	firstOwner, firstMu string
	thenOwner, thenMu   string
}

func runLockCheck(pass *Pass) error {
	c := &lockChecker{
		pass:   pass,
		guards: collectFieldGuards(pass),
		locked: collectLockedFuncs(pass),
		orders: collectLockOrders(pass),
	}
	if len(c.guards) == 0 && len(c.locked) == 0 && len(c.orders) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := heldSet{}
			c.addEntryHeld(fd, held)
			c.stmts(fd.Body.List, held)
		}
	}
	return nil
}

// resolveGuardRef normalizes an annotation's mutex reference. "mu" and
// "p.mu" (lowercase receiver) resolve against the enclosing type;
// "Platform.mu" names the owning type explicitly.
func resolveGuardRef(ref, enclosingType string) (mu, owner string, ok bool) {
	ref = trimProseRef(ref)
	if ref == "" {
		return "", "", false
	}
	parts := strings.Split(ref, ".")
	switch len(parts) {
	case 1:
		if enclosingType == "" {
			return "", "", false
		}
		return parts[0], enclosingType, true
	case 2:
		first := []rune(parts[0])[0]
		if unicode.IsUpper(first) {
			return parts[1], parts[0], true
		}
		// "p.mu": receiver-relative prose form.
		if enclosingType == "" {
			return "", "", false
		}
		return parts[1], enclosingType, true
	}
	return "", "", false
}

// guardRefs extracts mutex references from directives and legacy prose
// in the comment groups.
func guardRefs(directive string, prose func(string) []string, groups ...*ast.CommentGroup) []string {
	var refs []string
	for _, d := range parseDirectives(groups...) {
		if d.Name == directive && len(d.Args) > 0 {
			refs = append(refs, d.Args[0])
		}
	}
	for _, g := range groups {
		if g == nil {
			continue
		}
		refs = append(refs, prose(g.Text())...)
	}
	return refs
}

func proseGuardRefs(text string) []string {
	var out []string
	for _, m := range proseGuard.FindAllStringSubmatch(text, -1) {
		out = append(out, m[1])
	}
	return out
}

func proseHoldsRefs(text string) []string {
	var out []string
	for _, m := range proseHolds.FindAllStringSubmatch(text, -1) {
		out = append(out, m[1])
	}
	return out
}

// collectFieldGuards maps struct field objects to their lock contracts.
// A //tcrowd:guardedby directive on the type declaration itself applies
// to every field except the sync primitives (the mutex cannot guard
// itself); per-field annotations override it.
func collectFieldGuards(pass *Pass) map[types.Object]guardSpec {
	out := map[types.Object]guardSpec{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var structRef string
				for _, d := range parseDirectives(gd.Doc, ts.Doc) {
					if d.Name == "guardedby" && len(d.Args) > 0 {
						structRef = d.Args[0]
					}
				}
				for _, field := range st.Fields.List {
					refs := guardRefs("guardedby", proseGuardRefs, field.Doc, field.Comment)
					if len(refs) == 0 && structRef != "" && !isSyncField(pass.TypesInfo, field) {
						refs = []string{structRef}
					}
					if len(refs) == 0 {
						continue
					}
					mu, owner, ok := resolveGuardRef(refs[0], ts.Name.Name)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							out[obj] = guardSpec{mu: mu, owner: owner, structName: ts.Name.Name, member: name.Name}
						}
					}
				}
			}
		}
	}
	return out
}

// isSyncField reports whether the field's type lives in package sync
// (Mutex, RWMutex, Cond, Once, WaitGroup, ...), directly or behind a
// pointer — the fields a struct-level guardedby must not cover.
func isSyncField(info *types.Info, field *ast.Field) bool {
	t := info.TypeOf(field.Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// collectLockedFuncs maps function objects to their caller-holds
// contracts.
func collectLockedFuncs(pass *Pass) map[types.Object]guardSpec {
	out := map[types.Object]guardSpec{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			refs := guardRefs("locked", proseHoldsRefs, fd.Doc)
			if len(refs) == 0 {
				continue
			}
			mu, owner, ok := resolveGuardRef(refs[0], recvTypeName(fd))
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				out[obj] = guardSpec{mu: mu, owner: owner, structName: recvTypeName(fd), member: fd.Name.Name}
			}
		}
	}
	return out
}

func collectLockOrders(pass *Pass) []lockOrder {
	var out []lockOrder
	for _, d := range pass.packageDirectives() {
		if d.Name != "lockorder" || len(d.Args) != 3 || d.Args[1] != "<" {
			continue
		}
		fm, fo, ok1 := resolveGuardRef(d.Args[0], "")
		tm, to, ok2 := resolveGuardRef(d.Args[2], "")
		if !ok1 || !ok2 {
			continue
		}
		out = append(out, lockOrder{firstOwner: fo, firstMu: fm, thenOwner: to, thenMu: tm})
	}
	return out
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// ---- the walker ----

type lockChecker struct {
	pass   *Pass
	guards map[types.Object]guardSpec
	locked map[types.Object]guardSpec
	orders []lockOrder
}

// lockOp is one recognized mutex method call.
type lockOp struct {
	key     heldKey
	acquire bool
	read    bool // RLock/RUnlock
	try     bool
}

// lockCall recognizes x.Lock() / x.RLock() / x.Unlock() / x.RUnlock() /
// x.TryLock() / x.TryRLock() where the method belongs to package sync
// (including promoted embedded mutexes).
func (c *lockChecker) lockCall(e ast.Expr) (lockOp, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return lockOp{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op.acquire = true
	case "RLock":
		op.acquire, op.read = true, true
	case "TryLock":
		op.acquire, op.try = true, true
	case "TryRLock":
		op.acquire, op.read, op.try = true, true, true
	case "Unlock":
	case "RUnlock":
		op.read = true
	default:
		return lockOp{}, false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	switch me := sel.X.(type) {
	case *ast.SelectorExpr:
		op.key = heldKey{base: exprString(me.X), mu: me.Sel.Name, typ: namedTypeName(c.pass.TypesInfo, me.X)}
	case *ast.Ident:
		op.key = heldKey{mu: me.Name, typ: ""}
	default:
		op.key = heldKey{base: exprString(me), mu: "?", typ: namedTypeName(c.pass.TypesInfo, me)}
	}
	return op, true
}

func (c *lockChecker) applyLock(op lockOp, held heldSet, pos token.Pos) {
	if op.acquire {
		for _, o := range c.orders {
			if op.key.mu != o.firstMu || op.key.typ != o.firstOwner {
				continue
			}
			for k := range held {
				if k.mu == o.thenMu && k.typ == o.thenOwner {
					c.pass.Reportf(pos, "lock order violation: %s.%s acquired while %s.%s is held (declared order: %s.%s < %s.%s)",
						o.firstOwner, o.firstMu, o.thenOwner, o.thenMu, o.firstOwner, o.firstMu, o.thenOwner, o.thenMu)
				}
			}
		}
		held[op.key] = true
		return
	}
	// Release: drop every entry for the same (base, mu) pair.
	for k := range held {
		if k.mu == op.key.mu && k.base == op.key.base {
			delete(held, k)
		}
	}
}

func (c *lockChecker) addEntryHeld(fd *ast.FuncDecl, held heldSet) {
	obj := c.pass.TypesInfo.Defs[fd.Name]
	spec, ok := c.locked[obj]
	if !ok {
		return
	}
	recvName := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvName = fd.Recv.List[0].Names[0].Name
	}
	if spec.owner == recvTypeName(fd) && recvName != "" {
		held[heldKey{base: recvName, mu: spec.mu, typ: spec.owner}] = true
		return
	}
	held[heldKey{base: "", mu: spec.mu, typ: spec.owner}] = true
}

func (c *lockChecker) stmts(list []ast.Stmt, held heldSet) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *lockChecker) stmt(s ast.Stmt, held heldSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if op, ok := c.lockCall(s.X); ok {
			c.applyLock(op, held, s.X.Pos())
			return
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		if op, ok := c.lockCall(s.Call); ok {
			if op.acquire {
				c.applyLock(op, held, s.Call.Pos())
			}
			// Deferred unlock: the mutex stays held to function end.
			return
		}
		c.expr(s.Call, held)
	case *ast.GoStmt:
		// Arguments evaluate now (under the current locks); the body
		// runs later on another goroutine holding nothing.
		for _, a := range s.Call.Args {
			c.expr(a, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, heldSet{})
		} else {
			c.checkCallTarget(s.Call, heldSet{})
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		bodyHeld := held.clone()
		afterOp, afterOK := lockOp{}, false
		if op, ok := c.tryLockCond(s.Cond, false); ok {
			// if x.TryLock() { ... held inside ... }
			bodyHeld[op.key] = true
		} else if op, ok := c.tryLockCond(s.Cond, true); ok && terminates(s.Body) {
			// if !x.TryLock() { return } — held after the if.
			afterOp, afterOK = op, true
		} else {
			c.expr(s.Cond, held)
		}
		c.stmts(s.Body.List, bodyHeld)
		if s.Else != nil {
			c.stmt(s.Else, held.clone())
		}
		if afterOK {
			held[afterOp.key] = true
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held)
		}
		inner := held.clone()
		c.stmts(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		if s.Key != nil {
			c.expr(s.Key, held)
		}
		if s.Value != nil {
			c.expr(s.Value, held)
		}
		c.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					c.expr(e, held)
				}
				c.stmts(clause.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.stmts(clause.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				inner := held.clone()
				if clause.Comm != nil {
					c.stmt(clause.Comm, inner)
				}
				c.stmts(clause.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, held)
					}
				}
			}
		}
	}
}

// tryLockCond matches a TryLock/TryRLock call condition, optionally
// under a single negation.
func (c *lockChecker) tryLockCond(cond ast.Expr, negated bool) (lockOp, bool) {
	if negated {
		un, ok := cond.(*ast.UnaryExpr)
		if !ok || un.Op != token.NOT {
			return lockOp{}, false
		}
		cond = un.X
	}
	op, ok := c.lockCall(cond)
	if !ok || !op.try {
		return lockOp{}, false
	}
	return op, true
}

// terminates reports whether the block always leaves the enclosing
// function or loop iteration (return, branch, panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr walks an expression, checking guarded-field accesses and calls to
// locked functions against the current held set.
func (c *lockChecker) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Inline closures (sort.Slice comparators, etc.) run on this
			// goroutine under the current locks.
			c.stmts(n.Body.List, held.clone())
			return false
		case *ast.CompositeLit:
			// Struct-literal keys are field names, not reads; values are.
			isStruct := false
			if t := c.pass.TypesInfo.TypeOf(n); t != nil {
				_, isStruct = t.Underlying().(*types.Struct)
			}
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok && isStruct {
					c.expr(kv.Value, held)
					continue
				}
				c.expr(elt, held)
			}
			return false
		case *ast.CallExpr:
			c.checkCallTarget(n, held)
			return true
		case *ast.SelectorExpr:
			c.checkGuardedAccess(n, held)
			return true
		}
		return true
	})
}

func (c *lockChecker) checkGuardedAccess(sel *ast.SelectorExpr, held heldSet) {
	obj := c.pass.TypesInfo.Uses[sel.Sel]
	spec, ok := c.guards[obj]
	if !ok {
		return
	}
	if held.satisfied(spec.mu, spec.owner, exprString(sel.X)) {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s but the lock is not held here",
		spec.structName, spec.member, spec.guardName())
}

func (c *lockChecker) checkCallTarget(call *ast.CallExpr, held heldSet) {
	var obj types.Object
	base := ""
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
		base = exprString(fun.X)
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	default:
		return
	}
	spec, ok := c.locked[obj]
	if !ok {
		return
	}
	if held.satisfied(spec.mu, spec.owner, base) {
		return
	}
	c.pass.Reportf(call.Pos(), "call to %s requires %s held (declared by its caller-holds contract)",
		spec.member, spec.guardName())
}
