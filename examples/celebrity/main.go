// Celebrity: the paper's flagship workload (174 celebrities x 7 mixed
// attributes, 5 answers per task). This example collects a full AMT-style
// answer set from the simulated crowd, runs T-Crowd inference, and compares
// it against plain majority voting / mean aggregation — the Table 7
// comparison in miniature.
package main

import (
	"fmt"
	"log"
	"sort"

	"tcrowd"
)

func main() {
	sim, err := tcrowd.StandInDataset("Celebrity", 42)
	if err != nil {
		log.Fatal(err)
	}
	table := sim.Table()
	answers := sim.Collect(sim.AnswersPerTask())
	fmt.Printf("collected %d answers (%d per task) from %d workers\n",
		answers.Len(), sim.AnswersPerTask(), answers.NumWorkers())

	// T-Crowd inference.
	res, err := tcrowd.Infer(table, answers, tcrowd.InferOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tcER := tcrowd.ErrorRate(table, res.Estimates, answers)
	tcMN := tcrowd.MNAD(table, res.Estimates, answers)

	// Equal-weight baseline: majority vote / mean, computed by hand to
	// show what the model buys you.
	naive := make([][]tcrowd.Value, table.NumRows())
	for i := range naive {
		naive[i] = make([]tcrowd.Value, table.NumCols())
		for j, col := range table.Schema.Columns {
			as := answers.ByCell(tcrowd.Cell{Row: i, Col: j})
			if len(as) == 0 {
				continue
			}
			if col.Type == tcrowd.Categorical {
				counts := make([]int, len(col.Labels))
				for _, a := range as {
					counts[a.Value.L]++
				}
				best := 0
				for z, c := range counts {
					if c > counts[best] {
						best = z
					}
				}
				naive[i][j] = tcrowd.LabelValue(best)
			} else {
				sum := 0.0
				for _, a := range as {
					sum += a.Value.X
				}
				naive[i][j] = tcrowd.NumberValue(sum / float64(len(as)))
			}
		}
	}
	mvER := tcrowd.ErrorRate(table, naive, answers)
	mvMN := tcrowd.MNAD(table, naive, answers)

	fmt.Printf("\n%-16s %12s %12s\n", "Method", "Error Rate", "MNAD")
	fmt.Printf("%-16s %12.4f %12.4f\n", "T-Crowd", tcER, tcMN)
	fmt.Printf("%-16s %12.4f %12.4f\n", "Vote/Mean", mvER, mvMN)

	// Worker quality: estimated vs planted.
	type wq struct {
		u        tcrowd.WorkerID
		est, tru float64
	}
	var ws []wq
	for u, q := range res.WorkerQuality {
		if tq, ok := sim.TrueQuality(u); ok {
			ws = append(ws, wq{u, q, tq})
		}
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].est > ws[b].est })
	fmt.Println("\nTop-5 workers (estimated vs planted quality):")
	for _, w := range ws[:5] {
		fmt.Printf("  %s: estimated %.3f, planted %.3f\n", w.u, w.est, w.tru)
	}
	fmt.Println("Bottom-3 workers:")
	for _, w := range ws[len(ws)-3:] {
		fmt.Printf("  %s: estimated %.3f, planted %.3f\n", w.u, w.est, w.tru)
	}

	// Column difficulty: which attributes are hard?
	fmt.Println("\nColumn difficulty beta_j (higher = harder):")
	for j, col := range table.Schema.Columns {
		fmt.Printf("  %-12s %.2f\n", col.Name, res.ColumnDifficulty[j])
	}
}
