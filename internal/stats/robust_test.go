package stats

import (
	"math"
	"testing"
)

func TestMAD(t *testing.T) {
	// Median 5, deviations {4,1,0,1,4} -> MAD 1.
	xs := []float64{1, 4, 5, 6, 9}
	almostEqual(t, MAD(xs), 1, 1e-12, "MAD")
	if MAD(nil) != 0 {
		t.Fatal("empty MAD")
	}
	// Outlier-resistant: one wild value barely moves it.
	withOutlier := []float64{1, 4, 5, 6, 9, 1e6}
	if MAD(withOutlier) > 3 {
		t.Fatalf("MAD not robust: %v", MAD(withOutlier))
	}
}

func TestRobustBounds(t *testing.T) {
	xs := []float64{1, 4, 5, 6, 9}
	lo, hi := RobustBounds(xs, 3)
	almostEqual(t, lo, 5-3*MADScale, 1e-9, "lo")
	almostEqual(t, hi, 5+3*MADScale, 1e-9, "hi")

	// Constant data: bounds collapse to the point.
	lo, hi = RobustBounds([]float64{7, 7, 7}, 3)
	if lo != 7 || hi != 7 {
		t.Fatalf("constant bounds: %v %v", lo, hi)
	}

	// Zero MAD but positive std (half the mass at the median): falls back
	// to std.
	mixed := []float64{5, 5, 5, 5, 100, -90}
	lo, hi = RobustBounds(mixed, 3)
	if !(lo < 5 && hi > 5) || math.IsNaN(lo) {
		t.Fatalf("fallback bounds: %v %v", lo, hi)
	}
}

func TestWinsorize(t *testing.T) {
	xs := []float64{-10, 0, 5, 10, 100}
	out := Winsorize(xs, 0, 10)
	want := []float64{0, 0, 5, 10, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Winsorize[%d]=%v want %v", i, out[i], want[i])
		}
	}
	// Input untouched.
	if xs[0] != -10 || xs[4] != 100 {
		t.Fatal("input mutated")
	}
}

func TestWinsorizedPearsonKillsOutlierFlip(t *testing.T) {
	// The failure mode that motivated RobustBounds: n correlated points
	// plus two huge anti-correlated outliers flip the naive Pearson; the
	// winsorized version keeps the bulk's sign.
	rng := NewRNG(99)
	var xs, ys []float64
	for i := 0; i < 400; i++ {
		shared := rng.NormFloat64()
		xs = append(xs, shared+0.5*rng.NormFloat64())
		ys = append(ys, shared+0.5*rng.NormFloat64())
	}
	xs = append(xs, 80, -80)
	ys = append(ys, -80, 80)
	naive := Pearson(xs, ys)
	if naive > 0 {
		t.Skip("outliers did not flip this draw") // deterministic seed: should not happen
	}
	loX, hiX := RobustBounds(xs, 3)
	loY, hiY := RobustBounds(ys, 3)
	robust := Pearson(Winsorize(xs, loX, hiX), Winsorize(ys, loY, hiY))
	if robust < 0.5 {
		t.Fatalf("winsorized Pearson %v should recover the bulk correlation", robust)
	}
}
