// Package metrics implements the effectiveness measures of the paper's
// evaluation (Sec. 6.2): Error Rate for categorical data and MNAD (mean
// normalized absolute distance — per-column RMSE normalised by the column's
// answer standard deviation, averaged over continuous columns), plus the
// per-worker error summaries behind the case studies (Figs. 3, 4).
package metrics

import (
	"fmt"
	"math"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Estimates holds one estimated truth value per cell (row-major), with
// Value{} (None) marking cells a method did not estimate.
type Estimates [][]tabular.Value

// NewEstimates allocates an all-None estimate grid for table t.
func NewEstimates(t *tabular.Table) Estimates {
	// Flat backing: two allocations regardless of the row count, so the
	// per-refresh estimate extraction stays off the allocator's hot path.
	n, m := t.NumRows(), t.NumCols()
	e := make(Estimates, n)
	flat := make([]tabular.Value, n*m)
	for i := range e {
		e[i] = flat[i*m : (i+1)*m : (i+1)*m]
	}
	return e
}

// At returns the estimate for cell c.
func (e Estimates) At(c tabular.Cell) tabular.Value { return e[c.Row][c.Col] }

// Set stores the estimate for cell c.
func (e Estimates) Set(c tabular.Cell, v tabular.Value) { e[c.Row][c.Col] = v }

// Report aggregates the paper's two effectiveness measures over one table.
type Report struct {
	// ErrorRate is the fraction of categorical cells whose estimate
	// mismatches the ground truth. NaN when the table has no evaluated
	// categorical cells.
	ErrorRate float64
	// MNAD is the mean over continuous columns of RMSE / column answer
	// std. NaN when the table has no evaluated continuous cells.
	MNAD float64
	// CatCells and ContCells count the cells evaluated per datatype.
	CatCells, ContCells int
}

// String renders the report the way the paper's tables do.
func (r Report) String() string {
	er := "/"
	if !math.IsNaN(r.ErrorRate) {
		er = fmt.Sprintf("%.4f", r.ErrorRate)
	}
	mn := "/"
	if !math.IsNaN(r.MNAD) {
		mn = fmt.Sprintf("%.4f", r.MNAD)
	}
	return fmt.Sprintf("ErrorRate=%s MNAD=%s", er, mn)
}

// Evaluate compares est against the ground truth of t. The answer log
// supplies the per-column normalisation denominators for MNAD ("the
// normalization denominator is the standard deviation of answers in each
// column", Sec. 6.5.2); when log is nil the ground-truth std is used
// instead. Cells with no truth or no estimate are skipped.
func Evaluate(t *tabular.Table, est Estimates, log *tabular.AnswerLog) Report {
	if !t.HasTruth() {
		return Report{ErrorRate: math.NaN(), MNAD: math.NaN()}
	}
	denom := ColumnDenominators(t, log)

	rep := Report{}
	wrong := 0
	// Per-column squared error accumulators for continuous columns.
	sqErr := make([]float64, t.NumCols())
	cnt := make([]int, t.NumCols())

	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumCols(); j++ {
			truth := t.Truth[i][j]
			guess := est[i][j]
			if truth.IsNone() || guess.IsNone() {
				continue
			}
			switch t.Schema.Columns[j].Type {
			case tabular.Categorical:
				rep.CatCells++
				if !truth.Equal(guess) {
					wrong++
				}
			case tabular.Continuous:
				rep.ContCells++
				d := guess.X - truth.X
				sqErr[j] += d * d
				cnt[j]++
			}
		}
	}

	if rep.CatCells > 0 {
		rep.ErrorRate = float64(wrong) / float64(rep.CatCells)
	} else {
		rep.ErrorRate = math.NaN()
	}

	sum := 0.0
	cols := 0
	for j := range sqErr {
		if cnt[j] == 0 {
			continue
		}
		rmse := math.Sqrt(sqErr[j] / float64(cnt[j]))
		d := denom[j]
		if d <= 0 {
			// Degenerate column: count the raw RMSE so a constant column
			// with perfect estimates still contributes 0.
			d = 1
		}
		sum += rmse / d
		cols++
	}
	if cols > 0 {
		rep.MNAD = sum / float64(cols)
	} else {
		rep.MNAD = math.NaN()
	}
	return rep
}

// ColumnDenominators returns, per column, the standard deviation used to
// normalise that column's RMSE: the std of the collected answers when log
// is non-nil and has answers in the column, otherwise the std of the ground
// truth values.
func ColumnDenominators(t *tabular.Table, log *tabular.AnswerLog) []float64 {
	out := make([]float64, t.NumCols())
	var perCol [][]float64
	if log != nil {
		perCol = make([][]float64, t.NumCols())
		for _, a := range log.All() {
			if a.Value.Kind == tabular.Number {
				perCol[a.Cell.Col] = append(perCol[a.Cell.Col], a.Value.X)
			}
		}
	}
	for j := 0; j < t.NumCols(); j++ {
		if t.Schema.Columns[j].Type != tabular.Continuous {
			continue
		}
		if perCol != nil && len(perCol[j]) > 1 {
			out[j] = stats.StdDev(perCol[j])
			continue
		}
		if t.HasTruth() {
			var xs []float64
			for i := 0; i < t.NumRows(); i++ {
				if v := t.Truth[i][j]; v.Kind == tabular.Number {
					xs = append(xs, v.X)
				}
			}
			out[j] = stats.StdDev(xs)
		}
	}
	return out
}

// SpamDetection scores a spam-defense run: precision and recall of the
// flagged worker set against the planted spammer set.
type SpamDetection struct {
	Precision, Recall           float64
	TruePos, FalsePos, FalseNeg int
}

// EvaluateSpamDetection compares the workers a defense flagged (quarantined
// or banned) against the planted spammers. Precision is NaN when nothing
// was flagged; recall is NaN when nothing was planted.
func EvaluateSpamDetection(spammers, flagged []tabular.WorkerID) SpamDetection {
	planted := make(map[tabular.WorkerID]bool, len(spammers))
	for _, u := range spammers {
		planted[u] = true
	}
	var d SpamDetection
	seen := make(map[tabular.WorkerID]bool, len(flagged))
	for _, u := range flagged {
		if seen[u] {
			continue
		}
		seen[u] = true
		if planted[u] {
			d.TruePos++
		} else {
			d.FalsePos++
		}
	}
	d.FalseNeg = len(planted) - d.TruePos
	if n := d.TruePos + d.FalsePos; n > 0 {
		d.Precision = float64(d.TruePos) / float64(n)
	} else {
		d.Precision = math.NaN()
	}
	if n := d.TruePos + d.FalseNeg; n > 0 {
		d.Recall = float64(d.TruePos) / float64(n)
	} else {
		d.Recall = math.NaN()
	}
	return d
}

// CurvePoint is one sample of a convergence curve: metrics after the crowd
// has supplied avg answers per task (the x-axis of Figs. 2 and 5).
type CurvePoint struct {
	AnswersPerTask float64
	Report         Report
}

// WorkerAttributeError returns, for each worker and column, the error
// statistic plotted in the Fig. 3 heat map: the fraction of wrong answers
// for categorical columns and the standard deviation of (answer - truth)
// for continuous columns. Workers with no answers in a column get NaN.
func WorkerAttributeError(t *tabular.Table, log *tabular.AnswerLog) map[tabular.WorkerID][]float64 {
	out := make(map[tabular.WorkerID][]float64, log.NumWorkers())
	for _, u := range log.Workers() {
		row := make([]float64, t.NumCols())
		for j := range row {
			row[j] = math.NaN()
		}
		perColDiffs := make([][]float64, t.NumCols())
		wrong := make([]int, t.NumCols())
		total := make([]int, t.NumCols())
		for _, a := range log.ByWorker(u) {
			truth := t.Truth[a.Cell.Row][a.Cell.Col]
			if truth.IsNone() {
				continue
			}
			j := a.Cell.Col
			switch t.Schema.Columns[j].Type {
			case tabular.Categorical:
				total[j]++
				if !a.Value.Equal(truth) {
					wrong[j]++
				}
			case tabular.Continuous:
				perColDiffs[j] = append(perColDiffs[j], a.Value.X-truth.X)
			}
		}
		for j := 0; j < t.NumCols(); j++ {
			switch t.Schema.Columns[j].Type {
			case tabular.Categorical:
				if total[j] > 0 {
					row[j] = float64(wrong[j]) / float64(total[j])
				}
			case tabular.Continuous:
				if len(perColDiffs[j]) > 0 {
					row[j] = stats.StdDev(perColDiffs[j])
				}
			}
		}
		out[u] = row
	}
	return out
}

// ActualWorkerQuality computes the "actual quality" axes of the Fig. 4
// calibration plots: per worker, the categorical error rate over all
// categorical answers and the std of standardized continuous errors
// (standardized by the per-column truth std so columns are commensurable).
// Workers without answers of a kind are absent from the respective map.
func ActualWorkerQuality(t *tabular.Table, log *tabular.AnswerLog) (cat, cont map[tabular.WorkerID]float64) {
	cat = make(map[tabular.WorkerID]float64)
	cont = make(map[tabular.WorkerID]float64)
	denom := ColumnDenominators(t, nil)
	for _, u := range log.Workers() {
		wrong, total := 0, 0
		var zerrs []float64
		for _, a := range log.ByWorker(u) {
			truth := t.Truth[a.Cell.Row][a.Cell.Col]
			if truth.IsNone() {
				continue
			}
			switch t.Schema.Columns[a.Cell.Col].Type {
			case tabular.Categorical:
				total++
				if !a.Value.Equal(truth) {
					wrong++
				}
			case tabular.Continuous:
				d := denom[a.Cell.Col]
				if d <= 0 {
					d = 1
				}
				zerrs = append(zerrs, (a.Value.X-truth.X)/d)
			}
		}
		if total > 0 {
			cat[u] = float64(wrong) / float64(total)
		}
		if len(zerrs) > 0 {
			cont[u] = stats.StdDev(zerrs)
		}
	}
	return cat, cont
}
