package simulate

import (
	"math/rand"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// AddNoise implements the perturbation protocol of Sec. 6.5.2: it picks
// round(gamma * |A|) answers uniformly at random *with replacement* and
// perturbs each draw (an answer drawn twice is perturbed twice):
//
//   - a categorical answer is replaced by a label drawn uniformly from the
//     column's domain;
//   - a continuous answer is z-scored against the column's answers, gets
//     N(0,1) noise added in z-space, and is mapped back to natural units.
//
// The input log is not modified; a fresh log with the same answer order is
// returned.
func AddNoise(rng *rand.Rand, schema tabular.Schema, log *tabular.AnswerLog, gamma float64) *tabular.AnswerLog {
	answers := append([]tabular.Answer(nil), log.All()...)

	// Per-column answer statistics for the z-transform.
	perCol := make([][]float64, len(schema.Columns))
	for _, a := range answers {
		if a.Value.Kind == tabular.Number {
			perCol[a.Cell.Col] = append(perCol[a.Cell.Col], a.Value.X)
		}
	}
	colMean := make([]float64, len(schema.Columns))
	colStd := make([]float64, len(schema.Columns))
	for j, xs := range perCol {
		if len(xs) > 0 {
			colMean[j] = stats.Mean(xs)
			colStd[j] = stats.Clamp(stats.StdDev(xs), 1e-9, 1e18)
		}
	}

	n := int(float64(len(answers))*gamma + 0.5)
	for k := 0; k < n; k++ {
		idx := rng.Intn(len(answers))
		a := answers[idx]
		col := schema.Columns[a.Cell.Col]
		switch col.Type {
		case tabular.Categorical:
			a.Value = tabular.LabelValue(rng.Intn(len(col.Labels)))
		case tabular.Continuous:
			z := stats.Standardize(a.Value.X, colMean[a.Cell.Col], colStd[a.Cell.Col])
			z += rng.NormFloat64()
			a.Value = tabular.NumberValue(stats.Unstandardize(z, colMean[a.Cell.Col], colStd[a.Cell.Col]))
		}
		answers[idx] = a
	}

	out := tabular.NewAnswerLog()
	out.AddAll(answers)
	return out
}
