package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcrowd/internal/core"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func fittedModel(t *testing.T, seed int64) (*simulate.Dataset, *core.Model) {
	t.Helper()
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows: 20, Cols: 6, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 20},
	})
	log := simulate.NewCrowd(ds, seed+1).FixedAssignment(3)
	m, err := core.Infer(ds.Table, log, core.Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// naiveCatInfoGain is the O(|L|^2) reference implementation of the
// preposterior delta entropy; the O(|L|) production path must match it.
func naiveCatInfoGain(post []float64, q float64, eps float64) float64 {
	l := len(post)
	q = stats.Clamp(q, 1e-9, 1-1e-9)
	s := sFromQuality(eps, q)
	h0 := stats.ShannonEntropy(post)
	r := (1 - q) / float64(l-1)
	expH := 0.0
	for zp := 0; zp < l; zp++ {
		// Predictive probability of answer zp.
		pa := 0.0
		for z := 0; z < l; z++ {
			if z == zp {
				pa += post[z] * q
			} else {
				pa += post[z] * r
			}
		}
		upd := core.CatPosteriorWithAnswer(post, zp, eps, s)
		expH += pa * stats.ShannonEntropy(upd)
	}
	return h0 - expH
}

func TestCatInfoGainMatchesNaive(t *testing.T) {
	cases := []struct {
		post []float64
		q    float64
	}{
		{[]float64{0.5, 0.3, 0.2}, 0.8},
		{[]float64{0.25, 0.25, 0.25, 0.25}, 0.6},
		{[]float64{0.9, 0.05, 0.05}, 0.95},
		{[]float64{0.1, 0.9}, 0.5},
		{[]float64{0.98, 0.01, 0.005, 0.005}, 0.2},
	}
	for _, tc := range cases {
		fast := catInfoGain(tc.post, tc.q)
		slow := naiveCatInfoGain(tc.post, tc.q, 0.5)
		if math.Abs(fast-slow) > 1e-9 {
			t.Fatalf("post=%v q=%v: fast %v slow %v", tc.post, tc.q, fast, slow)
		}
	}
}

func TestQuickCatInfoGainNonNegative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	f := func(raw []float64, rawQ float64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		post := make([]float64, len(raw))
		for i, r := range raw {
			v := math.Abs(r)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			post[i] = 0.01 + math.Mod(v, 1)
		}
		post = stats.Categorical{P: post}.Normalize().P
		q := 0.01 + 0.98*math.Abs(math.Mod(rawQ, 1))
		ig := catInfoGain(post, q)
		// Information never hurts in expectation (Jensen): IG >= 0. It is
		// also bounded by the current entropy.
		return ig >= -1e-9 && ig <= stats.ShannonEntropy(post)+1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCatInfoGainMonotoneInQuality(t *testing.T) {
	post := []float64{0.4, 0.35, 0.25}
	prev := -1.0
	// A more reliable worker answers more informatively (for q above
	// chance level 1/3).
	for _, q := range []float64{0.4, 0.5, 0.7, 0.9, 0.99} {
		ig := catInfoGain(post, q)
		if ig <= prev {
			t.Fatalf("IG should grow with quality: q=%v ig=%v prev=%v", q, ig, prev)
		}
		prev = ig
	}
}

func TestCatInfoGainChanceLevelIsZero(t *testing.T) {
	post := []float64{0.5, 0.25, 0.25}
	ig := catInfoGain(post, 1.0/3)
	if math.Abs(ig) > 1e-9 {
		t.Fatalf("chance-level worker should carry zero information, got %v", ig)
	}
}

func TestContInfoGainProperties(t *testing.T) {
	_, m := fittedModel(t, 40)
	var contCell, catCell tabular.Cell
	foundCont, foundCat := false, false
	for j, col := range m.Table.Schema.Columns {
		if col.Type == tabular.Continuous && !foundCont {
			contCell = tabular.Cell{Row: 0, Col: j}
			foundCont = true
		}
		if col.Type == tabular.Categorical && !foundCat {
			catCell = tabular.Cell{Row: 0, Col: j}
			foundCat = true
		}
	}
	u := m.WorkerIDs[0]
	igCont := InfoGain(m, u, contCell)
	igCat := InfoGain(m, u, catCell)
	if igCont < 0 || igCat < 0 {
		t.Fatalf("negative IG: cont=%v cat=%v", igCont, igCat)
	}
	// A better worker (lower phi) has higher continuous IG.
	good := tabular.WorkerID("synthetic-good")
	// Unknown worker -> median phi. Compare against best existing worker.
	best := m.WorkerIDs[0]
	for _, w := range m.WorkerIDs {
		if m.PhiFor(w) < m.PhiFor(best) {
			best = w
		}
	}
	if m.PhiFor(best) < m.PhiFor(good) {
		if InfoGain(m, best, contCell) <= InfoGain(m, good, contCell) {
			t.Fatal("lower-variance worker must have higher continuous IG")
		}
	}
}

func TestBatchInfoGainIsSumOfParts(t *testing.T) {
	_, m := fittedModel(t, 50)
	u := m.WorkerIDs[0]
	cells := []tabular.Cell{{Row: 0, Col: 0}, {Row: 1, Col: 1}, {Row: 2, Col: 2}}
	want := 0.0
	for _, c := range cells {
		want += InfoGain(m, u, c)
	}
	if got := BatchInfoGain(m, u, cells); math.Abs(got-want) > 1e-12 {
		t.Fatalf("batch IG %v want %v", got, want)
	}
}

func TestStructInfoGainFallsBackWithoutHistory(t *testing.T) {
	_, m := fittedModel(t, 60)
	em := BuildErrorModel(m)
	est := m.Estimates()
	// A brand-new worker has no row history anywhere: structure-aware
	// must equal inherent on every cell.
	u := tabular.WorkerID("fresh-worker")
	for _, c := range []tabular.Cell{{Row: 0, Col: 0}, {Row: 3, Col: 4}} {
		a := InfoGain(m, u, c)
		b := StructInfoGain(m, em, est, u, c)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("fallback mismatch at %v: %v vs %v", c, a, b)
		}
	}
	// Nil error model is also a fallback.
	if math.Abs(StructInfoGain(m, nil, est, m.WorkerIDs[0], tabular.Cell{Row: 0, Col: 0})-
		InfoGain(m, m.WorkerIDs[0], tabular.Cell{Row: 0, Col: 0})) > 1e-12 {
		t.Fatal("nil error model fallback")
	}
}

func TestScoreAllParallelMatchesSerial(t *testing.T) {
	_, m := fittedModel(t, 70)
	cells := m.Table.Cells()
	score := func(c tabular.Cell) float64 { return m.Entropy(c) }
	serial := scoreAll(cells, 1, score)
	parallel := scoreAll(cells, 4, score)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel scoring diverged at %d", i)
		}
	}
}

func TestSFromQualityInvertsQuality(t *testing.T) {
	for _, q := range []float64{0.1, 0.3, 0.5, 0.8, 0.99} {
		s := sFromQuality(0.5, q)
		back := math.Erf(0.5 / math.Sqrt(2*s))
		if math.Abs(back-q) > 1e-9 {
			t.Fatalf("q=%v -> s=%v -> q=%v", q, s, back)
		}
	}
	// Degenerate qualities clamp instead of exploding.
	if s := sFromQuality(0.5, 0); !(s > 0) || math.IsInf(s, 0) {
		t.Fatal("q=0 clamp")
	}
	if s := sFromQuality(0.5, 1); !(s > 0) {
		t.Fatal("q=1 clamp")
	}
}

func TestTopK(t *testing.T) {
	cells := []tabular.Cell{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 0, Col: 2}, {Row: 0, Col: 3}}
	scores := []float64{0.1, 0.9, 0.5, 0.7}
	got := topK(cells, scores, 2)
	if len(got) != 2 || got[0] != (tabular.Cell{Row: 0, Col: 1}) || got[1] != (tabular.Cell{Row: 0, Col: 3}) {
		t.Fatalf("topK got %v", got)
	}
	// k beyond len.
	if got := topK(cells, scores, 99); len(got) != 4 {
		t.Fatal("overlong k")
	}
}
