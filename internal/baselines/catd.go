package baselines

import (
	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// CATD (Li et al., PVLDB'15) weights each source by the upper bound of the
// (1-alpha) confidence interval of its error variance, designed for the
// long-tail regime where most workers give few answers: a worker with n_u
// answers and accumulated loss L_u gets weight
// chi^2_{alpha/2, n_u} / L_u, so sparsely observed workers are discounted
// toward their confidence bound rather than trusted at face value.
type CATD struct {
	// MaxIter bounds the alternating iterations (default 30).
	MaxIter int
	// Alpha is the confidence level (default 0.05).
	Alpha float64
}

// Name implements Method.
func (CATD) Name() string { return "CATD" }

// Infer implements Method.
func (c CATD) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	maxIter := c.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	alpha := c.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	st := newHeteroState(tbl, log)
	if len(st.obs) == 0 {
		return metrics.NewEstimates(tbl), nil
	}

	// Answer counts per worker; the chi-square quantile per worker is
	// fixed across iterations.
	counts := make([]float64, len(st.workerIDs))
	for _, o := range st.obs {
		counts[o.w]++
	}
	quantile := make([]float64, len(st.workerIDs))
	for w := range quantile {
		quantile[w] = stats.ChiSquareQuantile(alpha/2, counts[w])
	}

	for it := 0; it < maxIter; it++ {
		st.updateTruth()
		loss := make([]float64, len(st.workerIDs))
		for _, o := range st.obs {
			loss[o.w] += st.distance(o)
		}
		delta := 0.0
		for w := range loss {
			nw := quantile[w] / (loss[w] + 1e-6)
			if d := absf(nw - st.weight[w]); d > delta {
				delta = d
			}
			st.weight[w] = nw
		}
		if delta < 1e-7 && it > 0 {
			break
		}
	}
	st.updateTruth()
	return st.estimates(), nil
}
