package ingest

import (
	"math/rand"
	"testing"
)

// randomAnswers draws n random decoded answers over a rows x cols table.
func randomAnswers(rng *rand.Rand, rows, cols, workers, n int) []Answer {
	out := make([]Answer, n)
	for k := range out {
		a := Answer{
			W: rng.Intn(workers),
			I: rng.Intn(rows),
			J: rng.Intn(cols),
		}
		if a.J%2 == 0 {
			a.IsCat = true
			a.Label = rng.Intn(4)
		} else {
			a.X = rng.NormFloat64() * 10
			a.Z = a.X / 10
		}
		out[k] = a
	}
	return out
}

// checkInvariants asserts the CSR layout: offsets consistent, answers
// sorted, each cell's run holding exactly its answers.
func checkInvariants(t *testing.T, l *Log) {
	t.Helper()
	if int(l.CellOff[0]) != 0 || int(l.CellOff[len(l.CellOff)-1]) != len(l.Ans) {
		t.Fatalf("CSR bounds broken: [%d, %d] over %d answers",
			l.CellOff[0], l.CellOff[len(l.CellOff)-1], len(l.Ans))
	}
	for key := 0; key < l.Rows()*l.Cols(); key++ {
		lo, hi := l.CellRange(key)
		if lo > hi {
			t.Fatalf("cell %d has negative run [%d, %d)", key, lo, hi)
		}
		for idx := lo; idx < hi; idx++ {
			if got := l.Key(l.Ans[idx].I, l.Ans[idx].J); got != key {
				t.Fatalf("answer %d in run of cell %d belongs to cell %d", idx, key, got)
			}
		}
	}
	for idx := 1; idx < len(l.Ans); idx++ {
		if l.less(&l.Ans[idx], &l.Ans[idx-1]) {
			t.Fatalf("answers out of order at %d", idx)
		}
	}
}

// TestAppendMatchesRebuild is the core streaming property: any batch split
// of an answer set, appended incrementally, yields exactly the CSR layout a
// bulk Rebuild of the full set produces.
func TestAppendMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 3+rng.Intn(8), 2+rng.Intn(5)
		all := randomAnswers(rng, rows, cols, 6, 40+rng.Intn(200))

		bulk := NewLog(rows, cols)
		bulk.Rebuild(append([]Answer(nil), all...))

		inc := NewLog(rows, cols)
		lo := 0
		for lo < len(all) {
			hi := lo + 1 + rng.Intn(30)
			if hi > len(all) {
				hi = len(all)
			}
			inc.Append(append([]Answer(nil), all[lo:hi]...))
			lo = hi
		}

		checkInvariants(t, inc)
		checkInvariants(t, bulk)
		if len(inc.Ans) != len(bulk.Ans) {
			t.Fatalf("trial %d: %d answers incremental vs %d bulk", trial, len(inc.Ans), len(bulk.Ans))
		}
		for idx := range inc.Ans {
			if inc.Ans[idx] != bulk.Ans[idx] {
				t.Fatalf("trial %d: answer %d diverged: %+v vs %+v",
					trial, idx, inc.Ans[idx], bulk.Ans[idx])
			}
		}
		for key := range inc.CellOff {
			if inc.CellOff[key] != bulk.CellOff[key] {
				t.Fatalf("trial %d: CellOff[%d] diverged: %d vs %d",
					trial, key, inc.CellOff[key], bulk.CellOff[key])
			}
		}
		// The sufficient-statistics store must be batch-split invariant
		// BITWISE: groups are always re-accumulated in canonical CSR
		// order, so the float sums (SumZ, SumZ2) of any split schedule
		// equal the bulk rebuild's exactly — which is what lets the
		// group-based M-step replace the full-log read without any
		// split-dependent drift.
		if inc.NumGroups() != bulk.NumGroups() {
			t.Fatalf("trial %d: %d groups incremental vs %d bulk", trial, inc.NumGroups(), bulk.NumGroups())
		}
		for g := range inc.Groups {
			if inc.Groups[g] != bulk.Groups[g] {
				t.Fatalf("trial %d: group %d diverged: %+v vs %+v",
					trial, g, inc.Groups[g], bulk.Groups[g])
			}
		}
		for key := range inc.GroupOff {
			if inc.GroupOff[key] != bulk.GroupOff[key] {
				t.Fatalf("trial %d: GroupOff[%d] diverged: %d vs %d",
					trial, key, inc.GroupOff[key], bulk.GroupOff[key])
			}
		}
	}
}

// TestDirtyTracking pins the dirty set: exactly the cells of the appended
// batch, cleared by ClearDirty, re-markable after.
func TestDirtyTracking(t *testing.T) {
	l := NewLog(4, 3)
	l.Rebuild([]Answer{
		{W: 0, I: 0, J: 0, IsCat: true},
		{W: 1, I: 2, J: 1, Z: 0.5, X: 5},
	})
	if len(l.DirtyKeys()) != 0 {
		t.Fatalf("Rebuild left dirty cells: %v", l.DirtyKeys())
	}

	l.Append([]Answer{
		{W: 2, I: 0, J: 0, IsCat: true, Label: 1},
		{W: 2, I: 3, J: 2, Z: 1, X: 10},
		{W: 0, I: 3, J: 2, Z: -1, X: -10},
	})
	want := map[int]bool{l.Key(0, 0): true, l.Key(3, 2): true}
	got := l.DirtyKeys()
	if len(got) != len(want) {
		t.Fatalf("dirty keys %v, want cells %v", got, want)
	}
	for _, key := range got {
		if !want[key] {
			t.Fatalf("unexpected dirty key %d", key)
		}
	}

	l.ClearDirty()
	if len(l.DirtyKeys()) != 0 {
		t.Fatal("ClearDirty did not clear")
	}
	l.MarkDirty(l.Key(1, 1))
	l.MarkDirty(l.Key(1, 1))
	if n := len(l.DirtyKeys()); n != 1 {
		t.Fatalf("MarkDirty deduplication broken: %d keys", n)
	}
}

// TestAppendSteadyStateAllocs pins streaming appends at a small constant
// number of allocations once capacity headroom is grown — independent of
// the stored log's size.
func TestAppendSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l := NewLog(50, 8)
	l.Rebuild(randomAnswers(rng, 50, 8, 10, 4000))
	batch := randomAnswers(rng, 50, 8, 10, 50)
	// Warm capacity headroom.
	l.Append(append([]Answer(nil), batch...))
	l.ClearDirty()

	avg := testing.AllocsPerRun(20, func() {
		l.Append(batch)
		l.ClearDirty()
	})
	// slices.SortFunc is allocation-free and the store grows with headroom;
	// the occasional capacity doubling amortises below a handful of allocs.
	if avg > 4 {
		t.Fatalf("streaming append allocates %.1f allocs/run in steady state", avg)
	}
}
