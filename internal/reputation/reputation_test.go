package reputation

import (
	"fmt"
	"math"
	"testing"

	"tcrowd/internal/tabular"
)

// seedCell gives a cell an agreement baseline: n prior label-0 answers
// from throwaway seed workers.
func seedCell(e *Engine, c tabular.Cell, n int) {
	for i := 0; i < n; i++ {
		e.Observe(Observation{Answer: tabular.Answer{
			Worker: tabular.WorkerID(fmt.Sprintf("seed-%d-%d-%d", c.Row, c.Col, i)),
			Cell:   c,
			Value:  tabular.LabelValue(0),
		}})
	}
}

// answer feeds one categorical answer from u on a freshly-seeded cell and
// returns any verdict. agree selects the plurality label (0) or not (1).
func answer(e *Engine, u tabular.WorkerID, row int, agree bool, workMs int64) (Verdict, bool) {
	c := tabular.Cell{Row: row, Col: 0}
	seedCell(e, c, 3)
	l := 1
	if agree {
		l = 0
	}
	return e.Observe(Observation{
		Answer:     tabular.Answer{Worker: u, Cell: c, Value: tabular.LabelValue(l)},
		WorkTimeMs: workMs,
	})
}

func TestHonestWorkerStaysActive(t *testing.T) {
	e := NewEngine(Config{})
	u := tabular.WorkerID("honest")
	for i := 0; i < 100; i++ {
		if v, changed := answer(e, u, i, true, 4000); changed {
			t.Fatalf("honest worker changed state: %+v", v)
		}
	}
	if st := e.State(u); st != Active {
		t.Fatalf("honest worker state = %v, want active", st)
	}
	if w := e.Weight(u); w != 1 {
		t.Fatalf("honest worker weight = %v, want 1", w)
	}
	if !e.Assignable(u) {
		t.Fatal("honest worker not assignable")
	}
}

func TestJunkWorkerEscalatesToBan(t *testing.T) {
	e := NewEngine(Config{})
	u := tabular.WorkerID("junk")
	var got []State
	for i := 0; i < 60; i++ {
		if v, changed := answer(e, u, i, false, 0); changed {
			got = append(got, v.To)
			if v.From != Active && got[len(got)-1] != v.To {
				t.Fatalf("unexpected transition %+v", v)
			}
		}
	}
	want := []State{Watched, Quarantined, Banned}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}
	if e.Assignable(u) {
		t.Fatal("banned worker still assignable")
	}
	if w := e.Weight(u); w != 0 {
		t.Fatalf("banned worker weight = %v, want 0", w)
	}

	// Bans are sticky: agreement afterwards never de-escalates.
	for i := 100; i < 160; i++ {
		if v, changed := answer(e, u, i, true, 4000); changed {
			t.Fatalf("banned worker de-escalated: %+v", v)
		}
	}
	if st := e.State(u); st != Banned {
		t.Fatalf("state after agreeing = %v, want banned", st)
	}
}

// TestFastAloneOnlyWatches pins the signal mix: a worker who agrees with
// everyone but answers suspiciously fast can reach Watched (down-weighted)
// but never Quarantined or Banned — speed alone is not disagreement
// evidence.
func TestFastAloneOnlyWatches(t *testing.T) {
	e := NewEngine(Config{})
	u := tabular.WorkerID("speedy")
	seen := Active
	for i := 0; i < 200; i++ {
		answer(e, u, i, true, 50)
		if st := e.State(u); st > seen {
			seen = st
		}
	}
	if seen != Watched {
		t.Fatalf("fast-but-agreeing worker peaked at %v, want watched", seen)
	}
}

// TestSleeperCaught: an honest history does not shield a worker that turns
// malicious — the EWMA forgets, so the sleeper converges to a ban within a
// bounded number of post-turn answers.
func TestSleeperCaught(t *testing.T) {
	e := NewEngine(Config{})
	u := tabular.WorkerID("sleeper")
	for i := 0; i < 80; i++ {
		answer(e, u, i, true, 4000)
	}
	if st := e.State(u); st != Active {
		t.Fatalf("sleeper flagged while honest: %v", st)
	}
	bannedAfter := -1
	for i := 0; i < 60; i++ {
		answer(e, u, 1000+i, false, 100)
		if e.State(u) == Banned {
			bannedAfter = i + 1
			break
		}
	}
	if bannedAfter < 0 {
		t.Fatal("sleeper never banned after turning malicious")
	}
	if bannedAfter > 45 {
		t.Fatalf("sleeper took %d post-turn answers to ban; EWMA too slow", bannedAfter)
	}
}

// TestModelQualityDoesNotPerturbVerdicts: interleaving model-quality
// updates anywhere in the stream leaves the verdict sequence bitwise
// unchanged — the property the platform's batch-split determinism rests
// on.
func TestModelQualityDoesNotPerturbVerdicts(t *testing.T) {
	run := func(pushQuality bool) []Verdict {
		e := NewEngine(Config{})
		u := tabular.WorkerID("w")
		var vs []Verdict
		for i := 0; i < 60; i++ {
			if pushQuality && i%3 == 0 {
				e.ObserveModelQuality(u, 0.1+0.01*float64(i%7))
			}
			if v, changed := answer(e, u, i, i%4 != 0, 100); changed {
				vs = append(vs, v)
			}
		}
		return vs
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("verdict count diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWeightModulation(t *testing.T) {
	e := NewEngine(Config{})
	u := tabular.WorkerID("w")
	// Drive into Quarantined.
	for i := 0; e.State(u) != Quarantined && i < 100; i++ {
		answer(e, u, i, false, 0)
	}
	if st := e.State(u); st != Quarantined {
		t.Fatalf("setup failed: state %v", st)
	}
	if w := e.Weight(u); w != 0.05 {
		t.Fatalf("quarantined weight = %v, want 0.05", w)
	}
	// A model-certified poor worker shrinks further.
	e.ObserveModelQuality(u, 0.2)
	if w := e.Weight(u); math.Abs(w-0.02) > 1e-12 {
		t.Fatalf("modulated weight = %v, want 0.02", w)
	}
	// Good model quality never boosts above the state weight.
	e.ObserveModelQuality(u, 0.95)
	if w := e.Weight(u); w != 0.05 {
		t.Fatalf("weight with good model quality = %v, want 0.05", w)
	}
	ws := e.Weights()
	if ws[u] != 0.05 {
		t.Fatalf("Weights() missing quarantined worker: %v", ws)
	}
	for id, w := range ws {
		if w == 1 {
			t.Fatalf("Weights() contains unit entry for %s", id)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := NewEngine(Config{})
	workers := []tabular.WorkerID{"a", "b", "c"}
	for i := 0; i < 40; i++ {
		u := workers[i%len(workers)]
		answer(e, u, i, u == "a", int64(100+i*200))
	}
	e.ObserveModelQuality("b", 0.3)

	snaps := e.Snapshot()
	e2 := NewEngine(Config{})
	e2.Restore(snaps)
	for _, u := range workers {
		if e2.State(u) != e.State(u) {
			t.Fatalf("state(%s) diverged after restore", u)
		}
		if e2.Weight(u) != e.Weight(u) {
			t.Fatalf("weight(%s) diverged after restore", u)
		}
		if e2.Score(u) != e.Score(u) {
			t.Fatalf("score(%s) diverged after restore", u)
		}
		if e2.SnapshotOf(u) != e.SnapshotOf(u) {
			t.Fatalf("snapshot(%s) diverged after restore", u)
		}
	}
}
