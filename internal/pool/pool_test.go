package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunExecutesEachShardOnce checks the atomic shard-claiming protocol:
// every index in [0, shards) runs exactly once, for shard counts below,
// at, and far above the pool size.
func TestRunExecutesEachShardOnce(t *testing.T) {
	for _, shards := range []int{0, 1, 2, runtime.GOMAXPROCS(0), 64, 1000} {
		counts := make([]int64, shards+1)
		Run(shards, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		for i := 0; i < shards; i++ {
			if c := atomic.LoadInt64(&counts[i]); c != 1 {
				t.Fatalf("shards=%d: shard %d ran %d times", shards, i, c)
			}
		}
	}
}

// TestRunNested checks that a Run issued from inside a pool worker cannot
// deadlock: the calling goroutine works its own job, so progress is
// guaranteed even with every worker busy.
func TestRunNested(t *testing.T) {
	var total atomic.Int64
	outer := 2 * runtime.GOMAXPROCS(0)
	Run(outer, func(int) {
		Run(8, func(int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != int64(outer*8) {
		t.Fatalf("nested Run executed %d inner shards, want %d", got, outer*8)
	}
}

// TestChunkBounds checks the shared range-sharding helper: chunks must be
// disjoint, ordered, and cover [0, n) exactly, with trailing chunks empty
// when parts > n.
func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {3, 10}, {10, 1}, {10, 0},
	} {
		parts := tc.parts
		if parts <= 0 {
			parts = 1
		}
		next := 0
		for i := 0; i < parts; i++ {
			lo, hi := ChunkBounds(tc.n, tc.parts, i)
			if lo != next && !(lo == tc.n && hi == tc.n) {
				t.Fatalf("n=%d parts=%d chunk %d: lo=%d, want %d", tc.n, tc.parts, i, lo, next)
			}
			if hi < lo || hi > tc.n {
				t.Fatalf("n=%d parts=%d chunk %d: bad range [%d,%d)", tc.n, tc.parts, i, lo, hi)
			}
			if lo < tc.n {
				next = hi
			}
		}
		if next != tc.n {
			t.Fatalf("n=%d parts=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.parts, next, tc.n)
		}
	}
}
