package lint

import (
	"go/ast"
	"go/types"
)

// NoAlloc flags allocating constructs in functions annotated
// //tcrowd:noalloc — the steady-state hot paths whose AllocsPerRun
// benchmark pins promise zero allocations. The pins sample one code
// path per run; the analyzer covers every branch of the annotated
// function, so an allocating construct on a rarely taken branch cannot
// hide behind a green benchmark.
//
// Flagged constructs: append and make (growth), new, map/slice composite
// literals, variable-capturing closures, calls into package fmt, and
// boxing a concrete non-pointer value into an interface. Amortized cold
// paths inside a hot function (arena growth, first-call setup) are real
// and intentional — waive them line by line with
// "//lint:allow noalloc <reason>" so the exception is visible in the
// lint report instead of silent.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reports allocating constructs in //tcrowd:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasDirective(fd.Doc, "noalloc") {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

func hasDirective(doc *ast.CommentGroup, name string) bool {
	for _, d := range parseDirectives(doc) {
		if d.Name == name {
			return true
		}
	}
	return false
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "append"):
				pass.Reportf(n.Pos(), "append in a //tcrowd:noalloc function: growth past capacity allocates")
			case isBuiltin(info, n.Fun, "make"):
				pass.Reportf(n.Pos(), "make in a //tcrowd:noalloc function allocates")
			case isBuiltin(info, n.Fun, "new"):
				pass.Reportf(n.Pos(), "new in a //tcrowd:noalloc function allocates")
			case isFmtCall(info, n.Fun):
				pass.Reportf(n.Pos(), "fmt call in a //tcrowd:noalloc function: formatting allocates")
			default:
				checkBoxedArgs(pass, n)
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in a //tcrowd:noalloc function allocates")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in a //tcrowd:noalloc function allocates")
			}
		case *ast.FuncLit:
			if free := capturedVars(info, n); len(free) > 0 {
				pass.Reportf(n.Pos(), "closure capturing %s in a //tcrowd:noalloc function allocates", free[0].Name())
			}
		}
		return true
	})
}

func isFmtCall(info *types.Info, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "fmt"
}

// checkBoxedArgs flags concrete non-pointer values passed to
// interface-typed parameters: the conversion boxes the value on the
// heap (pointers ride in the interface word directly and are exempt).
func checkBoxedArgs(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through, no boxing
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants box into static data, not per-call heap
		}
		pass.Reportf(arg.Pos(), "passing %s to an interface parameter boxes it on the heap in a //tcrowd:noalloc function", at.String())
	}
}

// boxFree reports whether converting a value of type t to an interface
// never allocates: interfaces, pointers, channels, maps, funcs, and
// unsafe pointers all fit the interface data word.
func boxFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}

// capturedVars returns variables referenced by the closure body but
// declared outside it (and not at package scope) — the captures that
// force a heap-allocated closure context.
func capturedVars(info *types.Info, fl *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: no capture needed
		}
		if v.Pos() == 0 || (v.Pos() >= fl.Pos() && v.Pos() <= fl.End()) {
			return true // declared inside the closure (params, locals)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}
