// Package stats provides the numerical substrate for T-Crowd: probability
// distributions, special functions, descriptive statistics, entropy measures
// and pseudo-random sampling.
//
// The package is self-contained on top of the Go standard library. All
// formulas needed by the paper (Gauss error function manipulations,
// chi-square quantiles for CATD, bivariate normal conditionals for the
// attribute-correlation model) are implemented here and pinned by golden
// tests against published reference values.
//
// Everything here is deterministic by contract (tcrowd-lint detfold):
// sampling goes through explicitly seeded RNG instances, never the
// globally seeded math/rand source or the wall clock.
//
//tcrowd:deterministic
package stats

import (
	"errors"
	"math"
)

// Common errors returned by estimation helpers.
var (
	// ErrEmpty is returned when a statistic is requested over no data.
	ErrEmpty = errors.New("stats: empty sample")
	// ErrDomain is returned when an argument is outside a function's domain.
	ErrDomain = errors.New("stats: argument outside domain")
)

// Eps is a tolerance used by iterative routines in this package.
const Eps = 1e-12

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (dividing by n).
// It returns 0 for samples with fewer than one element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased sample variance of xs (dividing by
// n-1). It returns 0 when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// MeanVariance returns both the mean and the population variance of xs in a
// single pass (Welford's algorithm, numerically stable).
func MeanVariance(xs []float64) (mean, variance float64) {
	n := 0
	m := 0.0
	m2 := 0.0
	for _, x := range xs {
		n++
		d := x - m
		m += d / float64(n)
		m2 += d * (x - m)
	}
	if n == 0 {
		return 0, 0
	}
	return m, m2 / float64(n)
}

// Median returns the median of xs without modifying the input slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	insertionSort(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// insertionSort sorts small slices in place; answer multiplicities per cell
// are tiny (4-10 in the paper's datasets) so this beats sort.Float64s on the
// hot path and avoids the interface allocation.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Covariance returns the population covariance of the paired samples xs, ys.
// The slices must have equal length.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx := Mean(xs)
	my := Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n)
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs, ys, as used for the attribute correlation weights W_jk (Eq. 8 of the
// paper). It returns 0 when either sample has zero variance.
func Pearson(xs, ys []float64) float64 {
	sx := StdDev(xs)
	sy := StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// LinearFit fits y = a + b*x by least squares and returns the intercept a,
// slope b and the correlation coefficient r. Used by the worker-quality
// calibration study (Fig. 4).
func LinearFit(xs, ys []float64) (a, b, r float64) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0, 0, 0
	}
	vx := Variance(xs)
	if vx == 0 {
		return Mean(ys), 0, 0
	}
	cov := Covariance(xs, ys)
	b = cov / vx
	a = Mean(ys) - b*Mean(xs)
	r = Pearson(xs, ys)
	return a, b, r
}

// MAD returns the median absolute deviation of xs around its median. It is
// the robust scale estimate used to winsorize long-tail crowd errors.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// MADScale is the consistency constant mapping MAD to the standard
// deviation of a normal distribution.
const MADScale = 1.4826

// RobustBounds returns [median - k*sigma, median + k*sigma] where sigma is
// the MAD-based robust scale (falling back to the classic std when MAD is
// 0). Winsorizing at these bounds keeps a handful of spammer outliers from
// dominating second-moment statistics.
func RobustBounds(xs []float64, k float64) (lo, hi float64) {
	med := Median(xs)
	sigma := MAD(xs) * MADScale
	if sigma == 0 {
		sigma = StdDev(xs)
	}
	if sigma == 0 {
		return med, med
	}
	return med - k*sigma, med + k*sigma
}

// Winsorize clamps every element of xs into [lo, hi], returning a new
// slice.
func Winsorize(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = Clamp(x, lo, hi)
	}
	return out
}

// Standardize returns (x - mean) / std. When std is zero it returns 0 so
// that degenerate (constant) columns do not poison downstream math.
func Standardize(x, mean, std float64) float64 {
	if std == 0 {
		return 0
	}
	return (x - mean) / std
}

// Unstandardize inverts Standardize.
func Unstandardize(z, mean, std float64) float64 { return z*std + mean }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// LogSumExp returns log(sum(exp(xs))) computed stably. It returns -Inf for
// an empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// NormalizeLogProbs exponentiates and normalises a vector of
// log-probabilities in place, returning it as a proper distribution.
// All-(-Inf) input yields the uniform distribution.
func NormalizeLogProbs(logp []float64) []float64 {
	lse := LogSumExp(logp)
	if math.IsInf(lse, -1) {
		u := 1.0 / float64(len(logp))
		for i := range logp {
			logp[i] = u
		}
		return logp
	}
	for i := range logp {
		logp[i] = math.Exp(logp[i] - lse)
	}
	return logp
}
