package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"tcrowd/internal/shard"
	"tcrowd/internal/tabular"
)

// Server exposes the platform over HTTP — the interface a crowdsourcing
// frontend (or AMT external-HIT iframe) would talk to. See
// cmd/tcrowd-server/README.md for the full API reference.
//
//	POST /projects                     {"id", "schema", "rows"}
//	GET  /projects                     -> ["id", ...]
//	GET  /projects/{id}/tasks?worker=u&count=k
//	POST /projects/{id}/answers        {"worker", "row", "column", "label"|"number"}
//	GET  /projects/{id}/estimates      -> inferred truth + worker quality (consistent; may wait on EM)
//	GET  /projects/{id}/snapshot       -> last published estimates (never blocks on EM)
//	GET  /projects/{id}/stats          -> collection progress
//	GET  /stats                        -> shard-scheduler metrics
//
// Backpressure: endpoints that need shard-queue capacity (POST .../answers
// for the async refresh, GET .../estimates for the consistent read) answer
// 429 Too Many Requests when the project's shard is saturated.
type Server struct {
	p   *Platform
	mux *http.ServeMux
}

// NewServer wraps a platform with HTTP handlers.
func NewServer(p *Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /projects", s.createProject)
	s.mux.HandleFunc("GET /projects", s.listProjects)
	s.mux.HandleFunc("GET /projects/{id}/tasks", s.tasks)
	s.mux.HandleFunc("POST /projects/{id}/answers", s.submit)
	s.mux.HandleFunc("GET /projects/{id}/estimates", s.estimates)
	s.mux.HandleFunc("GET /projects/{id}/snapshot", s.snapshot)
	s.mux.HandleFunc("GET /projects/{id}/stats", s.stats)
	s.mux.HandleFunc("GET /stats", s.shardStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoProject), errors.Is(err, ErrNoSnapshot):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicateID), errors.Is(err, ErrAlreadyAnswered):
		status = http.StatusConflict
	case errors.Is(err, shard.ErrShardSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, shard.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type createProjectReq struct {
	ID     string         `json:"id"`
	Schema tabular.Schema `json:"schema"`
	Rows   int            `json:"rows"`
	TCrowd bool           `json:"tcrowd_assignment"`
	// RefreshEvery bounds submissions between inference refreshes
	// (0 = default 25, 1 = refresh per answer).
	RefreshEvery int `json:"refresh_every"`
}

func (s *Server) createProject(w http.ResponseWriter, r *http.Request) {
	var req createProjectReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	if req.ID == "" {
		writeErr(w, errors.New("platform: project id required"))
		return
	}
	_, err := s.p.CreateProject(req.ID, req.Schema, ProjectConfig{
		Rows:                req.Rows,
		UseTCrowdAssignment: req.TCrowd,
		RefreshEvery:        req.RefreshEvery,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) listProjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.ProjectIDs())
}

func (s *Server) tasks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, errors.New("platform: worker query parameter required"))
		return
	}
	count := 0
	if c := r.URL.Query().Get("count"); c != "" {
		if _, err := fmt.Sscanf(c, "%d", &count); err != nil {
			writeErr(w, fmt.Errorf("platform: bad count: %w", err))
			return
		}
	}
	tasks, err := s.p.RequestTasks(id, tabular.WorkerID(worker), count)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tasks)
}

type submitReq struct {
	Worker string   `json:"worker"`
	Row    int      `json:"row"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req submitReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("platform: bad request body: %w", err))
		return
	}
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	var v tabular.Value
	switch {
	case req.Label != nil:
		j := proj.Table.Schema.ColumnIndex(req.Column)
		if j < 0 {
			writeErr(w, fmt.Errorf("platform: unknown column %q", req.Column))
			return
		}
		idx := -1
		for k, lbl := range proj.Table.Schema.Columns[j].Labels {
			if lbl == *req.Label {
				idx = k
				break
			}
		}
		if idx < 0 {
			writeErr(w, fmt.Errorf("platform: unknown label %q", *req.Label))
			return
		}
		v = tabular.LabelValue(idx)
	case req.Number != nil:
		v = tabular.NumberValue(*req.Number)
	default:
		writeErr(w, errors.New("platform: answer needs label or number"))
		return
	}
	if err := s.p.Submit(id, tabular.WorkerID(req.Worker), req.Row, req.Column, v); err != nil {
		// On both backpressure (429) and shutdown (503) the answer WAS
		// recorded; only its estimate refresh was shed. The body keeps
		// the status:"recorded" marker so clients don't resubmit (that
		// would 409) — slow down before the NEXT submission instead.
		if errors.Is(err, shard.ErrShardSaturated) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"status":  "recorded",
				"refresh": "deferred",
				"error":   err.Error(),
			})
			return
		}
		if errors.Is(err, shard.ErrClosed) {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status":  "recorded",
				"refresh": "shutdown",
				"error":   err.Error(),
			})
			return
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
}

type estimateJSON struct {
	Entity string   `json:"entity"`
	Column string   `json:"column"`
	Label  *string  `json:"label,omitempty"`
	Number *float64 `json:"number,omitempty"`
}

type estimatesResp struct {
	Estimates     []estimateJSON     `json:"estimates"`
	WorkerQuality map[string]float64 `json:"worker_quality"`
	Iterations    int                `json:"iterations"`
	Converged     bool               `json:"converged"`
	// AnswersSeen is the log length the estimates reflect; Fresh reports
	// whether that equals the current log length (snapshot reads may lag).
	AnswersSeen int  `json:"answers_seen"`
	Fresh       bool `json:"fresh"`
}

// renderEstimates converts an InferenceResult into the wire shape shared by
// the /estimates (consistent) and /snapshot (non-blocking) endpoints.
func renderEstimates(proj *Project, res *InferenceResult, answersNow int) estimatesResp {
	resp := estimatesResp{
		WorkerQuality: make(map[string]float64, len(res.WorkerQuality)),
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		AnswersSeen:   res.AnswersSeen,
		Fresh:         res.AnswersSeen == answersNow,
	}
	for u, q := range res.WorkerQuality {
		resp.WorkerQuality[string(u)] = q
	}
	for i := 0; i < proj.Table.NumRows(); i++ {
		for j, col := range proj.Table.Schema.Columns {
			v := res.Estimates[i][j]
			if v.IsNone() {
				continue
			}
			ej := estimateJSON{Entity: proj.Table.Entities[i], Column: col.Name}
			if v.Kind == tabular.Label {
				lbl := col.Labels[v.L]
				ej.Label = &lbl
			} else {
				x := v.X
				ej.Number = &x
			}
			resp.Estimates = append(resp.Estimates, ej)
		}
	}
	return resp
}

func (s *Server) estimates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.p.RunInference(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, _ := s.p.Stats(id)
	writeJSON(w, http.StatusOK, renderEstimates(proj, res, st.Answers))
}

// snapshot serves the last published estimates without ever waiting on
// inference — the read path that stays fast no matter how backlogged the
// project's shard is. 404 until the first refresh publishes.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	proj, err := s.p.Project(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.p.Snapshot(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, _ := s.p.Stats(id)
	writeJSON(w, http.StatusOK, renderEstimates(proj, res, st.Answers))
}

// shardStatsResp is the GET /stats payload: per-shard scheduler counters
// plus process-wide totals.
type shardStatsResp struct {
	Workers int             `json:"workers"`
	Shards  []shard.Metrics `json:"shards"`
	Totals  shardTotals     `json:"totals"`
}

// shardTotals aggregates the per-shard counters.
type shardTotals struct {
	Depth     int     `json:"depth"`
	Enqueued  uint64  `json:"enqueued"`
	Coalesced uint64  `json:"coalesced"`
	Rejected  uint64  `json:"rejected"`
	Completed uint64  `json:"completed"`
	Failed    uint64  `json:"failed"`
	BusyNs    int64   `json:"busy_ns"`
	AvgJobMs  float64 `json:"avg_job_ms"`
}

func (s *Server) shardStats(w http.ResponseWriter, r *http.Request) {
	ms := s.p.ShardMetrics()
	resp := shardStatsResp{Workers: s.p.NumShardWorkers(), Shards: ms}
	for _, m := range ms {
		resp.Totals.Depth += m.Depth
		resp.Totals.Enqueued += m.Enqueued
		resp.Totals.Coalesced += m.Coalesced
		resp.Totals.Rejected += m.Rejected
		resp.Totals.Completed += m.Completed
		resp.Totals.Failed += m.Failed
		resp.Totals.BusyNs += m.BusyNs
	}
	if resp.Totals.Completed > 0 {
		resp.Totals.AvgJobMs = float64(resp.Totals.BusyNs) / float64(resp.Totals.Completed) / 1e6
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	st, err := s.p.Stats(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
