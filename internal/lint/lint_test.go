package lint_test

import (
	"testing"

	"tcrowd/internal/lint"
	"tcrowd/internal/lint/linttest"
)

// Each analyzer gets a golden-file package under testdata/src/<name>
// with seeded violations (`// want`), clean idioms (no comment), and
// waived findings (`// waived`), so annotation parsing, the checks
// themselves and the //lint:allow machinery are all pinned.

func TestLockCheckGolden(t *testing.T) {
	linttest.Run(t, ".", "lockcheck", lint.LockCheck)
}

func TestDetFoldGolden(t *testing.T) {
	linttest.Run(t, ".", "detfold", lint.DetFold)
}

func TestNoAllocGolden(t *testing.T) {
	linttest.Run(t, ".", "noalloc", lint.NoAlloc)
}

func TestErrTableGolden(t *testing.T) {
	linttest.Run(t, ".", "errtable", lint.ErrTable)
}
